# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race test-race check bench bench-json bench-smoke experiments examples fuzz fuzz-short cover fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout=5m ./...

# The race detector slows the heavy GFP suites ~8x; internal/core alone
# runs close to 5 minutes, so the race leg gets double the plain timeout.
race:
	$(GO) test -race -timeout=10m ./...

test-race: race

# The full pre-merge gate: build, vet, tests, the race detector, and a
# short fuzzing pass over every parser.
check: build vet test test-race fuzz-short

# Regenerate the checked-in hot-path benchmark report.
bench-json:
	$(GO) run ./cmd/experiments -bench-json > BENCH_extract.json

bench:
	$(GO) test -bench . -benchmem ./...

# One iteration of each warm-extraction and mutate-burst benchmark under the
# race detector: keeps the incremental Stage 1–3 paths and the batching write
# pipeline exercised with concurrency checking on without paying for a full
# benchmark run. The WAL rides along so its group-commit ticker and append
# path stay race-clean.
bench-smoke:
	$(GO) test -race -run='^$$' -bench='^(BenchmarkWarmExtract|BenchmarkMutateBurst)' -benchtime=1x ./internal/experiments/
	$(GO) test -race ./internal/wal/

experiments:
	$(GO) run ./cmd/experiments -all

examples:
	@for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d || exit 1; done

# Fuzzing pass over every parser (longer runs: raise FUZZTIME).
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz='^FuzzParseOEM$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -fuzz='^FuzzReadText$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -fuzz='^FuzzFromJSON$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/typing/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/datalog/
	$(GO) test -fuzz='^FuzzParsePath$$' -fuzztime $(FUZZTIME) ./internal/query/
	$(GO) test -fuzz='^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/wal/

# 30 seconds per fuzzer; part of `make check`.
fuzz-short:
	$(MAKE) fuzz FUZZTIME=30s

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out test_output.txt bench_output.txt
