// Property tests for delta sessions: for any delta stream, Prepared.Apply
// followed by ExtractPrepared must be observationally identical to loading
// and extracting the mutated graph from scratch — byte-identical schemas,
// defects, and per-object assignments — at serial and parallel execution,
// across the Table 1 shapes and the DBG dataset, whichever path Apply took
// (structural sharing, label-universe recompile, atomic-flip recompile, or
// the incremental-GFP budget fallback).
package schemex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/synth"
)

// genDelta builds a random, guaranteed-applicable delta against cur: every
// candidate edit is validated in order against a scratch clone, and edits
// the clone rejects are skipped. The stream mixes edge insertions (existing
// and brand-new labels), edge removals, fresh objects with atomic
// attributes, idempotent re-adds, and object detachments (including atomic
// ones, which force the full-recompile path).
func genDelta(r *rand.Rand, cur *graph.DB, step, nOps int, newLabelP, flipP float64) *Delta {
	sim := cur.Clone()
	d := NewDelta()
	labels := cur.Labels()
	var links []graph.Edge
	cur.Links(func(e graph.Edge) { links = append(links, e) })
	var complexObjs, allObjs []graph.ObjectID
	cur.Objects(func(o graph.ObjectID) {
		allObjs = append(allObjs, o)
		if !cur.IsAtomic(o) {
			complexObjs = append(complexObjs, o)
		}
	})
	if len(complexObjs) == 0 {
		return d
	}
	name := func(o graph.ObjectID) string { return cur.Name(o) }

	for i := 0; i < nOps; i++ {
		switch op := r.Intn(10); {
		case op <= 2: // add a link between existing objects
			from := complexObjs[r.Intn(len(complexObjs))]
			to := allObjs[r.Intn(len(allObjs))]
			label := labels[r.Intn(len(labels))]
			if r.Float64() < newLabelP {
				label = fmt.Sprintf("lbl_%d_%d", step, i)
			}
			if sim.IsAtomic(from) {
				continue // detached-then-readded bookkeeping: stay conservative
			}
			if err := sim.AddLink(from, to, label); err == nil {
				d.Link(name(from), name(to), label)
			}
		case op <= 5: // remove an existing link
			if len(links) == 0 {
				continue
			}
			e := links[r.Intn(len(links))]
			if sim.RemoveLink(e.From, e.To, e.Label) {
				d.Unlink(name(e.From), name(e.To), e.Label)
			}
		case op == 6: // fresh object with an atomic attribute, linked in
			parent := complexObjs[r.Intn(len(complexObjs))]
			if sim.IsAtomic(parent) {
				continue
			}
			obj := fmt.Sprintf("new_%d_%d", step, i)
			atom := obj + ".v"
			label := labels[r.Intn(len(labels))]
			if err := sim.SetAtomic(sim.Intern(atom), graph.Value{Sort: graph.SortInt, Text: "17"}); err != nil {
				continue
			}
			if sim.AddLink(parent, sim.Intern(obj), label) != nil {
				continue
			}
			_ = sim.AddLink(sim.Intern(obj), sim.Intern(atom), label)
			d.Atom(atom, "17")
			d.Link(name(parent), obj, label)
			d.Link(obj, atom, label)
		case op == 7: // idempotent re-add of an existing link (must be a no-op)
			if len(links) == 0 {
				continue
			}
			e := links[r.Intn(len(links))]
			if sim.HasEdge(e.From, e.To, e.Label) {
				d.Link(name(e.From), name(e.To), e.Label)
			}
		case op == 8 && r.Float64() < flipP: // detach an atomic object: flips it complex
			atomics := sim.AtomicObjects()
			if len(atomics) == 0 {
				continue
			}
			o := atomics[r.Intn(len(atomics))]
			if int(o) >= cur.NumObjects() {
				continue
			}
			for _, e := range append(append([]graph.Edge(nil), sim.Out(o)...), sim.In(o)...) {
				sim.RemoveLink(e.From, e.To, e.Label)
			}
			d.Remove(name(o))
		case op == 9: // detach a complex object
			o := complexObjs[r.Intn(len(complexObjs))]
			for _, e := range append(append([]graph.Edge(nil), sim.Out(o)...), sim.In(o)...) {
				sim.RemoveLink(e.From, e.To, e.Label)
			}
			d.Remove(name(o))
		}
	}
	return d
}

func applyCases(t *testing.T) []struct {
	name string
	db   *graph.DB
	k    int
} {
	t.Helper()
	var cases []struct {
		name string
		db   *graph.DB
		k    int
	}
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			db   *graph.DB
			k    int
		}{fmt.Sprintf("DB%d", p.DBNo), db, p.Intended()})
	}
	for _, seed := range []int64{0, 3} {
		db, _ := dbg.Generate(dbg.Options{Seed: seed})
		cases = append(cases, struct {
			name string
			db   *graph.DB
			k    int
		}{fmt.Sprintf("dbg-seed%d", seed), db, 6})
	}
	return cases
}

// TestApplyExtractEquivalence drives a random delta stream through a chain
// of sessions and checks each link of the chain against a from-scratch
// extraction of an independent deep copy of the mutated graph.
func TestApplyExtractEquivalence(t *testing.T) {
	for _, c := range applyCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(len(c.name)) * 1315423911))
			g := &Graph{db: c.db}
			sess, err := Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			if sess.Version() != 0 {
				t.Fatalf("fresh session version = %d, want 0", sess.Version())
			}
			// Seed the Stage 1 memo so the first Apply has warm state.
			if _, err := ExtractPrepared(sess, Options{K: c.k}); err != nil {
				t.Fatal(err)
			}
			const steps = 6
			for step := 0; step < steps; step++ {
				cur := sess.Graph().DB()
				nOps := 1 + r.Intn(4)
				newLabelP, flipP := 0.0, 0.0
				switch step {
				case 2:
					newLabelP = 0.5 // label-universe growth: full-recompile path
				case 3:
					flipP = 1.0 // atomic detach: position-shift path
				case 4:
					nOps = cur.NumLinks()/3 + 4 // big delta: GFP budget fallback
				}
				delta := genDelta(r, cur, step, nOps, newLabelP, flipP)
				child, info, err := sess.Apply(delta)
				if err != nil {
					t.Fatalf("step %d: apply: %v\ndelta:\n%s", step, err, delta)
				}
				if child.Version() != uint64(step+1) {
					t.Fatalf("step %d: version = %d, want %d", step, child.Version(), step+1)
				}
				scratch := &Graph{db: child.Graph().DB().Clone()}
				for _, par := range []int{1, 0} {
					opts := Options{K: c.k, Parallelism: par}
					label := fmt.Sprintf("step=%d par=%d incr=%v touched=%d", step, par, info.Incremental, info.TouchedObjects)
					cold, err := Extract(scratch, opts)
					if err != nil {
						t.Fatalf("%s: scratch extract: %v", label, err)
					}
					warm, err := ExtractPrepared(child, opts)
					if err != nil {
						t.Fatalf("%s: session extract: %v", label, err)
					}
					assertSameExtraction(t, scratch.db, cold, warm, label)
				}
				// Extract between applies on even steps only, so odd steps
				// exercise warm-hint chaining across un-extracted parents.
				if step%2 == 1 {
					child, _, err = sess.Apply(delta) // re-branch: parent must still be intact
					if err != nil {
						t.Fatalf("step %d: re-apply on parent: %v", step, err)
					}
				}
				sess = child
			}
		})
	}
}

// TestApplyParentUnaffected checks that a session's graph, snapshot, and
// results survive deltas applied to it: branching is copy-on-write all the
// way down.
func TestApplyParentUnaffected(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	g := &Graph{db: db}
	sess, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ExtractPrepared(sess, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	stats := db.Stats()

	r := rand.New(rand.NewSource(7))
	children := make([]*Prepared, 0, 3)
	for i := 0; i < 3; i++ { // several siblings branched off one parent
		delta := genDelta(r, sess.Graph().DB(), i, 5, 0.2, 0.2)
		child, _, err := sess.Apply(delta)
		if err != nil {
			t.Fatalf("branch %d: %v", i, err)
		}
		children = append(children, child)
	}
	if got := db.Stats(); got != stats {
		t.Fatalf("parent graph changed: %v -> %v", stats, got)
	}
	after, err := ExtractPrepared(sess, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertSameExtraction(t, db, before, after, "parent after branching")
	for i, child := range children {
		scratch := &Graph{db: child.Graph().DB().Clone()}
		cold, err := Extract(scratch, Options{K: 6})
		if err != nil {
			t.Fatalf("sibling %d scratch: %v", i, err)
		}
		warm, err := ExtractPrepared(child, Options{K: 6})
		if err != nil {
			t.Fatalf("sibling %d: %v", i, err)
		}
		assertSameExtraction(t, scratch.db, cold, warm, fmt.Sprintf("sibling %d", i))
	}
}

// TestDeltaRoundTrip checks the delta text format round-trips through
// String and ParseDelta.
func TestDeltaRoundTrip(t *testing.T) {
	d := NewDelta().
		Link("a", "b c", "label with space").
		Unlink("a", "b c", "label with space").
		Atom("x.v", "42").
		Remove("a")
	text := d.String()
	back, err := ParseDelta(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\ntext:\n%s", err, text)
	}
	if back.String() != text {
		t.Fatalf("round trip changed delta:\nbefore:\n%s\nafter:\n%s", text, back.String())
	}
	if back.Len() != 4 {
		t.Fatalf("len = %d, want 4", back.Len())
	}
}
