// Benchmarks regenerating the paper's evaluation (§7): one benchmark per
// table/figure plus the ablations called out in DESIGN.md. Custom metrics
// (defect, perfect-types, …) are reported alongside timing so the shape of
// each result is visible in `go test -bench . -benchmem` output; the
// experiment tables themselves are printed by cmd/experiments.
package schemex

import (
	"fmt"
	"runtime"
	"testing"

	"schemex/internal/bisim"
	"schemex/internal/cluster"
	"schemex/internal/core"
	"schemex/internal/dataguide"
	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/query"
	"schemex/internal/recast"
	"schemex/internal/synth"
	"schemex/internal/typing"
)

// BenchmarkTable1 runs the full three-stage pipeline on each of the eight
// synthetic datasets of Table 1, reporting the measured perfect-type count
// and defect next to the timing.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for _, p := range synth.Presets() {
		p := p
		b.Run(fmt.Sprintf("DB%d", p.DBNo), func(b *testing.B) {
			b.ReportAllocs()
			db, err := p.Build()
			if err != nil {
				b.Fatal(err)
			}
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = core.Extract(db, core.Options{K: p.Intended()})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.PerfectTypes), "perfect-types")
			b.ReportMetric(float64(res.Defect.Total()), "defect")
		})
	}
}

// BenchmarkFigure1DBG extracts the 6-type optimal typing of the DBG
// dataset (Figure 1).
func BenchmarkFigure1DBG(b *testing.B) {
	b.ReportAllocs()
	db, roles := dbg.Generate(dbg.Options{})
	var res *core.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PerfectTypes), "perfect-types")
	b.ReportMetric(float64(res.Defect.Total()), "defect")
}

// BenchmarkPrepareOnceExtractMany contrasts serving repeated extraction
// requests cold (parse state rebuilt per call: Extract compiles a snapshot
// each time) against warm (Prepare once, ExtractPrepared per call, sharing
// the compiled snapshot and the Stage 1 memo). The warm path is what the
// HTTP API's snapshot cache exercises on repeat traffic.
func BenchmarkPrepareOnceExtractMany(b *testing.B) {
	for _, p := range synth.Presets() {
		p := p
		db, err := p.Build()
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{K: p.Intended()}
		b.Run(fmt.Sprintf("DB%d/cold", p.DBNo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Extract(db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DB%d/warm", p.DBNo), func(b *testing.B) {
			b.ReportAllocs()
			prep, err := core.Prepare(db)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ExtractPrepared(prep, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6Sweep runs the full sensitivity sweep on DBG (Figure 6):
// clustering from the 53-type perfect typing down to one type, recasting
// and measuring the defect at every size.
func BenchmarkFigure6Sweep(b *testing.B) {
	b.ReportAllocs()
	db, roles := dbg.Generate(dbg.Options{})
	var sw *core.SweepResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err = core.Sweep(db, core.Options{NameFor: roles.NameFor})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sw.Knee()), "suggested-k")
	if p, ok := sw.At(6); ok {
		b.ReportMetric(float64(p.Defect), "defect-at-6")
	}
	if p, ok := sw.At(1); ok {
		b.ReportMetric(float64(p.Defect), "defect-at-1")
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkGFP compares the two specialized greatest-fixpoint evaluators on
// the Stage 1 program Q_D of the DBG dataset: the straightforward downward
// iteration of §4 vs the support-counting propagation.
func BenchmarkGFP(b *testing.B) {
	b.ReportAllocs()
	db, _ := dbg.Generate(dbg.Options{Scale: 2})
	qd, _ := perfect.BuildQD(db)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			typing.EvalGFPNaive(qd, db)
		}
	})
	b.Run("support-count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			typing.EvalGFP(qd, db)
		}
	})
}

// BenchmarkGFPChain compares the evaluators on their worst-case-separating
// workload: a long next-chain typed by a recursive rule, where the naive
// method needs one full round per removed object (quadratic) while support
// counting propagates each removal in constant work (linear). The DBG
// workload above shows the flip side: on shape-regular data the naive
// method converges in a few rounds and wins.
func BenchmarkGFPChain(b *testing.B) {
	b.ReportAllocs()
	const n = 2000
	db := graphChain(n)
	prog := typing.MustParse(`type cell = ->next[cell] & ->val[0]`)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			typing.EvalGFPNaive(prog, db)
		}
	})
	b.Run("support-count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			typing.EvalGFP(prog, db)
		}
	})
}

// graphChain builds o0 -> o1 -> ... -> o(n-1), each with a val attribute
// except the last, so the recursive cell type unravels from the tail.
func graphChain(n int) *graph.DB {
	db := graph.New()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("o%d", i)
		if i+1 < n {
			db.Link(name, fmt.Sprintf("o%d", i+1), "next")
			db.LinkAtom(name, "val", name+".v", "x")
		}
	}
	return db
}

// BenchmarkStage1 compares the GFP-based minimal perfect typing against the
// bisimulation partition refinement (§4's comparison point).
func BenchmarkStage1(b *testing.B) {
	b.ReportAllocs()
	db, _ := dbg.Generate(dbg.Options{Scale: 2})
	b.Run("gfp-classes", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			res, err := perfect.Minimal(db, perfect.Options{})
			if err != nil {
				b.Fatal(err)
			}
			n = res.Program.Len()
		}
		b.ReportMetric(float64(n), "classes")
	})
	b.Run("bisimulation", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n = bisim.Compute(db).NumBlocks()
		}
		b.ReportMetric(float64(n), "blocks")
	})
}

// BenchmarkDeltaSweep runs the DBG pipeline at k=6 under each of the five
// candidate distance functions of §5.2, reporting the end-to-end defect so
// the functions' quality can be compared, not just their speed.
func BenchmarkDeltaSweep(b *testing.B) {
	b.ReportAllocs()
	db, roles := dbg.Generate(dbg.Options{})
	for _, d := range cluster.Deltas {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Extract(db, core.Options{K: 6, Delta: d, NameFor: roles.NameFor})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Defect.Total()), "defect")
		})
	}
}

// BenchmarkStage2 compares the two Stage 2 engines end to end on DBG at
// k=6: the greedy coalescing the paper uses ("because of its lower time
// complexity and implementation ease") against the local-search k-median
// heuristic of its citation [12]. Defect of the recast assignment is the
// quality metric.
func BenchmarkStage2(b *testing.B) {
	b.ReportAllocs()
	db, roles := dbg.Generate(dbg.Options{})
	stage1, err := perfect.Minimal(db, perfect.Options{NameFor: roles.NameFor})
	if err != nil {
		b.Fatal(err)
	}
	homes := func(mapping []int) map[graph.ObjectID][]int {
		out := make(map[graph.ObjectID][]int, len(stage1.Home))
		for o, h := range stage1.Home {
			if c := mapping[h]; c != cluster.EmptySlot {
				out[o] = []int{c}
			}
		}
		return out
	}
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		var d int
		for i := 0; i < b.N; i++ {
			g := cluster.NewGreedy(stage1.Program.Clone(), cluster.Config{})
			g.RunTo(6)
			prog, mapping := g.Program()
			rc := recast.Recast(db, prog, homes(mapping), recast.DefaultOptions())
			d = rc.Defect.Total()
		}
		b.ReportMetric(float64(d), "defect")
	})
	b.Run("local-search", func(b *testing.B) {
		b.ReportAllocs()
		var d int
		for i := 0; i < b.N; i++ {
			ls := cluster.LocalSearchKMedian(stage1.Program, 6, 0, 0)
			prog, mapping := ls.Materialize(stage1.Program)
			rc := recast.Recast(db, prog, homes(mapping), recast.DefaultOptions())
			d = rc.Defect.Total()
		}
		b.ReportMetric(float64(d), "defect")
	})
}

// BenchmarkDatalogVsSpecialized compares the generic datalog GFP engine
// against the specialized typing evaluator on the Figure 1 six-type program
// over DBG — the cost of generality.
func BenchmarkDatalogVsSpecialized(b *testing.B) {
	b.ReportAllocs()
	db, roles := dbg.Generate(dbg.Options{})
	res, err := core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor})
	if err != nil {
		b.Fatal(err)
	}
	prog := res.Program
	b.Run("specialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			typing.EvalGFP(prog, db)
		}
	})
	b.Run("datalog-engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := typing.EvalGFPDatalog(prog, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreedyClustering isolates Stage 2 on the largest synthetic
// dataset (DB7: 303 perfect types), the dominant cost of the pipeline.
func BenchmarkGreedyClustering(b *testing.B) {
	b.ReportAllocs()
	p := synth.Presets()[6]
	db, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	stage1, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := cluster.NewGreedy(stage1.Program.Clone(), cluster.Config{})
		g.RunTo(p.Intended())
	}
}

// BenchmarkQuery compares naive path-query evaluation (scan every object)
// against schema-guided evaluation (solve the path over the extracted
// typing first, then inspect only objects of realizable types) — the
// paper's §1 motivation that structure speeds up query processing. The
// guide is built once, like an index.
func BenchmarkQuery(b *testing.B) {
	b.ReportAllocs()
	db, _ := dbg.Generate(dbg.Options{Scale: 8})
	stage1, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		b.Fatal(err)
	}
	guide := query.NewGuide(db, stage1.Program, stage1.Extent.Member)
	paths := map[string]query.Path{
		"degree.school":   query.MustParsePath("degree.school"),
		"closure-ps":      query.MustParsePath("#.postscript"),
		"advisor-2hop":    query.MustParsePath("advisor.birthday.year"),
		"project-members": query.MustParsePath("project.project-member.name"),
	}
	for name, p := range paths {
		p := p
		b.Run("naive/"+name, func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(query.Find(db, p))
			}
			b.ReportMetric(float64(n), "matches")
		})
		b.Run("guided/"+name, func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(guide.Find(p))
			}
			b.ReportMetric(float64(n), "matches")
			b.ReportMetric(float64(guide.CandidateCount(p)), "candidates")
		})
		b.Run("trusted/"+name, func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(guide.FindTrusted(p))
			}
			b.ReportMetric(float64(n), "matches")
		})
	}
}

// BenchmarkScale measures the full pipeline as the DBG dataset grows
// (populations ×1, ×4, ×16; the shape quotient, and therefore the number of
// perfect types, stays fixed at 53).
func BenchmarkScale(b *testing.B) {
	b.ReportAllocs()
	for _, scale := range []int{1, 4, 16} {
		scale := scale
		b.Run(fmt.Sprintf("dbg-x%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			db, roles := dbg.Generate(dbg.Options{Scale: scale})
			b.ReportMetric(float64(db.NumObjects()), "objects")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSummarySizes compares the sizes of competing structure
// summaries on DBG: the strong DataGuide of the related work [10] (exact,
// outgoing-only, unique roles) against the minimal perfect typing and the
// 6-type approximate typing — the paper's argument that exact summaries are
// near data-sized on irregular data.
func BenchmarkSummarySizes(b *testing.B) {
	b.ReportAllocs()
	db, _ := dbg.Generate(dbg.Options{})
	b.Run("dataguide", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n = dataguide.Build(db, nil).NumNodes()
		}
		b.ReportMetric(float64(n), "nodes")
	})
	b.Run("perfect-typing", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			res, err := perfect.Minimal(db, perfect.Options{})
			if err != nil {
				b.Fatal(err)
			}
			n = res.Program.Len()
		}
		b.ReportMetric(float64(n), "types")
	})
	b.Run("approximate-typing", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			res, err := core.Extract(db, core.Options{K: 6})
			if err != nil {
				b.Fatal(err)
			}
			n = res.Program.Len()
		}
		b.ReportMetric(float64(n), "types")
	})
}

// BenchmarkMultiRoleDecomposition isolates the §4.2 cover search (Remark
// 4.4: O(n²) in the number of types).
func BenchmarkMultiRoleDecomposition(b *testing.B) {
	b.ReportAllocs()
	db, _ := dbg.Generate(dbg.Options{})
	stage1, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfect.FindCovers(stage1.Program)
	}
}

// --- Parallelism ablations ----------------------------------------------
//
// Each stage's worker pool against the exact serial code path
// (Parallelism: 1). Results are bit-identical by construction (see the
// determinism tests in internal/core); these benchmarks measure only the
// cost/benefit of the fan-out on the current machine.

// stageWorkerCounts returns the ablation points: the serial baseline and
// one worker per CPU (identical on a single-CPU machine, where the pool
// should then cost ~nothing).
func stageWorkerCounts() map[string]int {
	return map[string]int{"serial": 1, "numcpu": runtime.GOMAXPROCS(0)}
}

// BenchmarkStage1Parallelism ablates the Stage 1 worker pool: Q_D candidate
// construction and GFP support seeding, serial vs one worker per CPU.
func BenchmarkStage1Parallelism(b *testing.B) {
	db, _ := dbg.Generate(dbg.Options{Scale: 2})
	db.Freeze()
	for name, workers := range stageWorkerCounts() {
		workers := workers
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := perfect.Minimal(db, perfect.Options{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStage2Parallelism ablates the Stage 2 worker pool on DB7 (303
// perfect types): distance-matrix seeding, batched row repair, and touched
// recomputation, serial vs one worker per CPU.
func BenchmarkStage2Parallelism(b *testing.B) {
	p := synth.Presets()[6]
	db, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	stage1, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for name, workers := range stageWorkerCounts() {
		workers := workers
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := cluster.NewGreedy(stage1.Program.Clone(), cluster.Config{Parallelism: workers})
				g.RunTo(p.Intended())
			}
		})
	}
}

// BenchmarkStage3Parallelism ablates the Stage 3 worker pool: per-object
// classification over the bitset kernels, serial vs one worker per CPU.
func BenchmarkStage3Parallelism(b *testing.B) {
	db, roles := dbg.Generate(dbg.Options{Scale: 2})
	res, err := core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor})
	if err != nil {
		b.Fatal(err)
	}
	for name, workers := range stageWorkerCounts() {
		workers := workers
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			rc := recast.DefaultOptions()
			rc.Parallelism = workers
			for i := 0; i < b.N; i++ {
				recast.Recast(db, res.Program, res.Homes, rc)
			}
		})
	}
}
