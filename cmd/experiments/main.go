// Command experiments regenerates every table and figure of the paper's
// evaluation section (§7):
//
//	experiments -table1   Table 1 (eight synthetic datasets)
//	experiments -fig1     Figure 1 (optimal 6-type program for DBG)
//	experiments -fig6     Figure 6 (DBG sensitivity graph)
//	experiments -all      everything
//
// Measured values are printed next to the paper's where available; the
// datasets are calibrated substitutes (see DESIGN.md), so shapes — not
// absolute numbers — are the comparison target. The logic lives in
// internal/experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"schemex/internal/experiments"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	fig1 := flag.Bool("fig1", false, "regenerate Figure 1")
	fig6 := flag.Bool("fig6", false, "regenerate Figure 6")
	benchJSON := flag.Bool("bench-json", false, "measure the extraction hot paths and emit BENCH_extract.json")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()
	if *all {
		*table1, *fig1, *fig6 = true, true, true
	}
	if !*table1 && !*fig1 && !*fig6 && !*benchJSON {
		flag.Usage()
		os.Exit(2)
	}
	if *benchJSON {
		rep, err := experiments.RunBench()
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteBenchJSON(os.Stdout, rep); err != nil {
			fatal(err)
		}
		return
	}
	if *table1 {
		rows, err := experiments.Table1()
		if err != nil {
			fatal(err)
		}
		experiments.WriteTable1(os.Stdout, rows)
	}
	if *fig1 {
		res, err := experiments.Figure1()
		if err != nil {
			fatal(err)
		}
		experiments.WriteFigure1(os.Stdout, res)
	}
	if *fig6 {
		sw, err := experiments.Figure6()
		if err != nil {
			fatal(err)
		}
		experiments.WriteFigure6(os.Stdout, sw)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
