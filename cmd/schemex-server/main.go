// Command schemex-server serves schema extraction over HTTP (JSON API).
//
//	schemex-server -addr :8080 -cache-entries 8
//
//	curl -s localhost:8080/v1/extract -d '{
//	  "data": "{\"name\": \"Ada\", \"age\": 36}",
//	  "format": "json",
//	  "options": {"useSorts": true}
//	}'
//
// Endpoints: POST /v1/extract, /v1/sweep, /v1/check, /v1/query; the delta
// session family under /v1/session; GET /v1/healthz. See internal/httpapi
// for the envelope formats.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"schemex/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", httpapi.DefaultCacheEntries,
		"prepared-snapshot LRU capacity (must be positive)")
	sessionEntries := flag.Int("session-entries", httpapi.DefaultSessionEntries,
		"maximum live delta sessions (must be positive)")
	flag.Parse()
	if *cacheEntries <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -cache-entries must be positive, got %d\n", *cacheEntries)
		os.Exit(2)
	}
	if *sessionEntries <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -session-entries must be positive, got %d\n", *sessionEntries)
		os.Exit(2)
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: httpapi.NewHandler(httpapi.Config{
			CacheEntries:   *cacheEntries,
			SessionEntries: *sessionEntries,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	log.Printf("schemex-server listening on %s (cache %d, sessions %d)",
		*addr, *cacheEntries, *sessionEntries)
	log.Fatal(srv.ListenAndServe())
}
