// Command schemex-server serves schema extraction over HTTP (JSON API).
//
//	schemex-server -addr :8080
//
//	curl -s localhost:8080/v1/extract -d '{
//	  "data": "{\"name\": \"Ada\", \"age\": 36}",
//	  "format": "json",
//	  "options": {"useSorts": true}
//	}'
//
// Endpoints: POST /v1/extract, /v1/sweep, /v1/check, /v1/query;
// GET /v1/healthz. See internal/httpapi for the envelope formats.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"schemex/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	log.Printf("schemex-server listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
