// Command schemex-server serves schema extraction over HTTP (JSON API).
//
//	schemex-server -addr :8080 -cache-entries 8
//	schemex-server -data-dir /var/lib/schemex -sync every=8
//
//	curl -s localhost:8080/v1/extract -d '{
//	  "data": "{\"name\": \"Ada\", \"age\": 36}",
//	  "format": "json",
//	  "options": {"useSorts": true}
//	}'
//
// Endpoints: POST /v1/extract, /v1/sweep, /v1/check, /v1/query; the delta
// session family under /v1/session; GET /v1/healthz. See internal/httpapi
// for the envelope formats.
//
// With -data-dir, delta sessions are durable: accepted deltas are logged to a
// per-session write-ahead log before they are acknowledged, and a restart
// recovers every session from disk. -sync picks the fsync cadence (always,
// never, every=N, interval=DURATION).
//
// SIGTERM or SIGINT triggers a graceful shutdown: the listener stops, in-
// flight requests drain (up to -drain), session logs are flushed, and the
// process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schemex/internal/httpapi"
	"schemex/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", httpapi.DefaultCacheEntries,
		"prepared-snapshot LRU capacity (must be positive)")
	sessionEntries := flag.Int("session-entries", httpapi.DefaultSessionEntries,
		"maximum live delta sessions (must be positive)")
	dataDir := flag.String("data-dir", "",
		"directory for durable session state (empty: sessions are in-memory only)")
	sync := flag.String("sync", "always",
		"WAL fsync policy: always, never, every=N, or interval=DURATION")
	spillEvery := flag.Int("spill-every", httpapi.DefaultSpillEvery,
		"deltas between session snapshot spills (must be positive)")
	spillBytes := flag.Int64("spill-bytes", 0,
		"also spill a session snapshot once its log exceeds this many bytes (0: delta count only)")
	recoverConc := flag.Int("recover-concurrency", httpapi.DefaultRecoverConcurrency,
		"sessions recovered concurrently at startup (must be positive)")
	memBudget := flag.Int64("mem-budget", 0,
		"approximate bytes of CSR shards kept resident per snapshot lineage; spilled shards fault back on demand (0: everything stays resident)")
	queueDepth := flag.Int("queue-depth", httpapi.DefaultQueueDepth,
		"queued-but-unapplied mutations per session before shedding 429 (must be positive)")
	batchMax := flag.Int("batch-max", httpapi.DefaultBatchMax,
		"maximum queued deltas applied as one batch; 1 disables batching (must be positive)")
	batchWindow := flag.Duration("batch-window", 0,
		"how long the drainer waits for a burst to accumulate before each batch (0: drain immediately)")
	drain := flag.Duration("drain", 30*time.Second,
		"graceful-shutdown drain timeout for in-flight requests")
	flag.Parse()
	if *cacheEntries <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -cache-entries must be positive, got %d\n", *cacheEntries)
		os.Exit(2)
	}
	if *sessionEntries <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -session-entries must be positive, got %d\n", *sessionEntries)
		os.Exit(2)
	}
	if *spillEvery <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -spill-every must be positive, got %d\n", *spillEvery)
		os.Exit(2)
	}
	if *spillBytes < 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -spill-bytes must be non-negative, got %d\n", *spillBytes)
		os.Exit(2)
	}
	if *recoverConc <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -recover-concurrency must be positive, got %d\n", *recoverConc)
		os.Exit(2)
	}
	if *memBudget < 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -mem-budget must be non-negative, got %d\n", *memBudget)
		os.Exit(2)
	}
	if *queueDepth <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -queue-depth must be positive, got %d\n", *queueDepth)
		os.Exit(2)
	}
	if *batchMax <= 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -batch-max must be positive, got %d\n", *batchMax)
		os.Exit(2)
	}
	if *batchWindow < 0 {
		fmt.Fprintf(os.Stderr, "schemex-server: -batch-window must be non-negative, got %s\n", *batchWindow)
		os.Exit(2)
	}
	pol, err := wal.ParseSyncPolicy(*sync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemex-server: -sync: %v\n", err)
		os.Exit(2)
	}

	api, err := httpapi.NewServer(httpapi.Config{
		CacheEntries:       *cacheEntries,
		SessionEntries:     *sessionEntries,
		DataDir:            *dataDir,
		SyncEvery:          pol.Every,
		SyncInterval:       pol.Interval,
		SpillEvery:         *spillEvery,
		SpillBytes:         *spillBytes,
		RecoverConcurrency: *recoverConc,
		MemBudget:          *memBudget,
		QueueDepth:         *queueDepth,
		BatchMax:           *batchMax,
		BatchWindow:        *batchWindow,
	})
	if err != nil {
		log.Fatalf("schemex-server: %v", err)
	}

	srv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("schemex-server: %v", err)
	}
	durable := "in-memory sessions"
	if *dataDir != "" {
		durable = fmt.Sprintf("durable sessions in %s (sync %s)", *dataDir, *sync)
	}
	// The resolved address (not the flag) so ":0" callers learn the port.
	log.Printf("schemex-server listening on %s (cache %d, sessions %d, %s)",
		ln.Addr(), *cacheEntries, *sessionEntries, durable)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("schemex-server: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("schemex-server: shutting down (drain %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	clean := true
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("schemex-server: drain incomplete: %v", err)
		srv.Close()
		clean = false
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("schemex-server: serve: %v", err)
		clean = false
	}
	// Flush session logs only after the last in-flight mutation finished.
	if err := api.Close(); err != nil {
		log.Printf("schemex-server: closing sessions: %v", err)
		clean = false
	}
	if !clean {
		os.Exit(1)
	}
	log.Printf("schemex-server: clean shutdown")
}
