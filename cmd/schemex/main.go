// Command schemex extracts schema from semistructured data files.
//
// Usage:
//
//	schemex extract [-k N] [-delta NAME] [-multirole] [-empty] [-sorts] [-seed FILE] [-oem] <file>
//	schemex perfect [-sorts] [-oem] <file>
//	schemex sweep   [-delta NAME] [-oem] <file>
//	schemex assign  [-k N] [-oem] <file>
//	schemex gen     [-preset N | -dbg] [-out FILE]
//	schemex check   -schema FILE [-oem] <file>
//	schemex validate [-oem] <file>
//	schemex stats   [-oem] <file>
//
// Input files use the line-oriented link/atomic format, or the OEM
// nested-object syntax with -oem. "-" reads standard input. The command
// logic lives in internal/cli.
package main

import (
	"os"

	"schemex/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], cli.DefaultEnv()))
}
