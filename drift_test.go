package schemex

import "testing"

func TestDriftReport(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 8; i++ {
		n := "p" + string(rune('0'+i))
		g.LinkAtom(n, "name", "x")
		g.LinkAtom(n, "mail", "y")
	}
	res, err := Extract(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No drift yet.
	d := res.Drift(1)
	if d.NewObjects != 0 || d.IllFitting != 0 || d.TotalObjects != 8 {
		t.Fatalf("fresh drift = %+v", d)
	}
	if d.ShouldReextract(0.25) {
		t.Fatal("fresh result should not need re-extraction")
	}

	// Two well-fitting newcomers and one alien page.
	g.LinkAtom("new1", "name", "x")
	g.LinkAtom("new1", "mail", "y")
	g.LinkAtom("new2", "name", "x")
	g.LinkAtom("alien", "zzz1", "a")
	g.LinkAtom("alien", "zzz2", "b")
	g.LinkAtom("alien", "zzz3", "c")

	d = res.Drift(1)
	if d.NewObjects != 3 || d.TotalObjects != 11 {
		t.Fatalf("drift = %+v", d)
	}
	if d.IllFitting != 1 {
		t.Fatalf("ill-fitting = %d, want 1 (the alien)", d.IllFitting)
	}
	if !d.ShouldReextract(0.5) {
		t.Fatal("an ill-fitting object should trigger re-extraction")
	}

	// With no cutoff the alien still lands on the closest type: only the
	// new-fraction policy can fire.
	d = res.Drift(-1)
	if d.IllFitting != 0 {
		t.Fatalf("no-cutoff drift = %+v", d)
	}
	if !d.ShouldReextract(0.1) {
		t.Fatal("27%% new objects should exceed a 10%% policy")
	}
	if d.ShouldReextract(0.5) {
		t.Fatal("27%% new objects should pass a 50%% policy")
	}
}

func TestDriftEmptyGraphPolicy(t *testing.T) {
	var d DriftReport
	if d.ShouldReextract(0.1) {
		t.Fatal("empty report should not trigger")
	}
}

func TestUseBisimulationPublicAPI(t *testing.T) {
	g := buildQuickstart()
	a, err := Extract(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(g, Options{K: 2, UseBisimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.PerfectTypes() != b.PerfectTypes() || a.Defect() != b.Defect() {
		t.Fatalf("bisim engine diverged: %d/%d vs %d/%d",
			a.PerfectTypes(), a.Defect(), b.PerfectTypes(), b.Defect())
	}
	if _, err := Extract(g, Options{UseBisimulation: true, UseSorts: true}); err == nil {
		t.Fatal("bisim + sorts accepted")
	}
}
