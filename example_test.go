package schemex_test

import (
	"fmt"
	"log"
	"strings"

	"schemex"
)

// Example reproduces Figure 2 of the paper end to end: the manager/firm
// database is typed into two recursive classes under greatest-fixpoint
// semantics.
func Example() {
	g := schemex.NewGraph()
	g.Link("gates", "microsoft", "is-manager-of")
	g.Link("jobs", "apple", "is-manager-of")
	g.Link("microsoft", "gates", "is-managed-by")
	g.Link("apple", "jobs", "is-managed-by")
	g.LinkAtom("gates", "name", "Gates")
	g.LinkAtom("jobs", "name", "Jobs")
	g.LinkAtom("microsoft", "name", "Microsoft")
	g.LinkAtom("apple", "name", "Apple")

	res, err := schemex.Extract(g, schemex.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("types:", res.NumTypes(), "defect:", res.Defect())
	fmt.Println("gates is a", strings.Join(res.TypesOf("gates"), ", "))
	// Output:
	// types: 2 defect: 0
	// gates is a is-managed-by
}

// ExampleParseJSON infers a schema from a JSON document — arrays become
// repeated edges, scalars become sorted atomic values.
func ExampleParseJSON() {
	g, err := schemex.ParseJSON(strings.NewReader(
		`{"title": "Lore", "year": 1997, "authors": ["Widom", "McHugh"]}`), "paper")
	if err != nil {
		log.Fatal(err)
	}
	res, err := schemex.Extract(g, schemex.Options{K: 1, UseSorts: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Schema())
	// Output:
	// type class0 = ->authors[0:string] & ->title[0:string] & ->year[0:int]
}

// ExampleCheck validates data against a schema: under greatest-fixpoint
// semantics there can be excess but never deficit (§2 of the paper).
func ExampleCheck() {
	g := schemex.NewGraph()
	g.LinkAtom("rec1", "name", "x")
	g.LinkAtom("rec1", "mail", "y")
	g.LinkAtom("rec2", "name", "z") // mail missing: rec2 satisfies nothing

	report, err := schemex.Check(g, "type person = ->name[0] & ->mail[0]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conforms:", report.Conforms())
	fmt.Println("|person| =", report.Types["person"], "unclassified:", report.Unclassified)
	// Output:
	// conforms: false
	// |person| = 1 unclassified: 1
}

// ExampleParseSchema canonicalizes a hand-written schema in arrow notation.
func ExampleParseSchema() {
	out, err := schemex.ParseSchema(`
		type firm   = ->employs[person] , ->name[0]
		type person = <-employs[firm] & ->age[0:int]
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	// Output:
	// type firm = ->employs[person] & ->name[0]
	// type person = <-employs[firm] & ->age[0:int]
}

// ExampleResult_ClassifyNew types an object that arrives after extraction
// (§6 of the paper).
func ExampleResult_ClassifyNew() {
	g := schemex.NewGraph()
	for _, n := range []string{"a", "b", "c"} {
		g.LinkAtom(n, "name", n)
		g.LinkAtom(n, "mail", n+"@x")
	}
	res, err := schemex.Extract(g, schemex.Options{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	g.LinkAtom("late", "name", "late")
	g.LinkAtom("late", "mail", "late@x")
	fmt.Println(res.ClassifyNew("late", -1))
	// Output:
	// [class0]
}

// ExampleGraph_FindPath answers a path query naively; Result.FindPath
// answers it schema-guided.
func ExampleGraph_FindPath() {
	g := schemex.NewGraph()
	g.Link("group", "ada", "member")
	g.LinkAtom("ada", "name", "Ada")
	matches, err := g.FindPath("member.name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(matches)
	// Output:
	// [group]
}

// ExampleSweepAnalysis explores the defect/size trade-off of §7.2 and picks
// the elbow.
func ExampleSweepAnalysis() {
	g := schemex.NewGraph()
	for i := 0; i < 4; i++ {
		n := fmt.Sprintf("r%d", i)
		g.LinkAtom(n, "name", "x")
		if i%2 == 0 {
			g.LinkAtom(n, "extra", "y")
		}
	}
	sw, err := schemex.SweepAnalysis(g, schemex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range sw.Points {
		fmt.Printf("k=%d defect=%d\n", p.K, p.Defect)
	}
	// Output:
	// k=2 defect=0
	// k=1 defect=2
}
