// Cartographic plays out the second motivating scenario of the paper's
// introduction: "cartographic data servers … typically have thousands of
// records with hundreds of properties, most of which are null for any given
// object." On such sparse records the perfect typing is near data-sized —
// "roughly of the order of the size of the data set, which would prohibit
// its use" — while a small approximate typing recovers the latent feature
// kinds at a modest, quantified defect.
//
//	go run ./examples/cartographic
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"schemex"
	"schemex/internal/synth"
)

func main() {
	db, _, err := synth.Cartographic(synth.CartographicOptions{
		RecordsPerKind: 250,
		Kinds:          8,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Move the data across the public boundary the way a user would: via
	// the text serialization.
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		log.Fatal(err)
	}
	g, err := schemex.ReadGraph(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cartographic server:", g.Stats())

	res, err := schemex.Extract(g, schemex.Options{K: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperfect typing: %d types — near data-sized, useless as a summary\n", res.PerfectTypes())
	fmt.Printf("approximate typing: %d types, defect %d (excess %d, deficit %d)\n\n",
		res.NumTypes(), res.Defect(), res.Excess(), res.Deficit())

	// Cluster purity versus the latent kind encoded in each record name
	// ("road#17" → road).
	fmt.Println("records per (cluster, latent kind):")
	for _, ti := range res.Types() {
		perKind := map[string]int{}
		for _, member := range res.Members(ti.Name) {
			kind := member
			if i := strings.IndexByte(member, '#'); i > 0 {
				kind = member[:i]
			}
			perKind[kind]++
		}
		fmt.Printf("  %-14s %v\n", ti.Name, perKind)
	}
}
