// Homepages plays out the motivating scenario from the paper's
// introduction: the home pages of members of a group contain similar
// information (name, email, address, photo), but fields are missing from
// some pages and extra information appears on others. The example generates
// such irregular pages, runs the sensitivity analysis to pick a natural
// number of types, and prints the resulting approximate schema with its
// defect.
//
//	go run ./examples/homepages
package main

import (
	"fmt"
	"log"
	"math/rand"

	"schemex"
)

func main() {
	g := schemex.NewGraph()
	rng := rand.New(rand.NewSource(2026))

	// 60 member pages. Everyone has a name; email, address, photo and the
	// rest appear with varying regularity — some fields are rare extras.
	optional := []struct {
		label string
		prob  float64
	}{
		{"email", 0.95},
		{"address", 0.8},
		{"photo", 0.75},
		{"phone", 0.5},
		{"hobbies", 0.2},
		{"quote-of-the-day", 0.08},
	}
	for i := 0; i < 60; i++ {
		page := fmt.Sprintf("member%02d", i)
		g.LinkAtom(page, "name", fmt.Sprintf("Member %d", i))
		for _, f := range optional {
			if rng.Float64() < f.prob {
				g.LinkAtom(page, f.label, f.label+" of "+page)
			}
		}
	}
	// A few seminar pages with a different shape.
	for i := 0; i < 8; i++ {
		page := fmt.Sprintf("seminar%d", i)
		g.LinkAtom(page, "title", fmt.Sprintf("Seminar %d", i))
		g.LinkAtom(page, "speaker", fmt.Sprintf("Speaker %d", i))
		if rng.Float64() < 0.5 {
			g.LinkAtom(page, "slides", "slides.ps")
		}
	}

	fmt.Println("data:", g.Stats())

	// Sensitivity analysis (§7.2): defect and clustering distance as
	// functions of the number of types.
	sw, err := schemex.SweepAnalysis(g, schemex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntypes  defect  distance")
	for i := len(sw.Points) - 1; i >= 0; i-- {
		p := sw.Points[i]
		fmt.Printf("%5d  %6d  %8.1f\n", p.K, p.Defect, p.TotalDistance)
	}
	fmt.Printf("\nsuggested number of types: %d\n\n", sw.Suggested)

	res, err := schemex.Extract(g, schemex.Options{K: sw.Suggested})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema with %d types (perfect typing had %d):\n", res.NumTypes(), res.PerfectTypes())
	fmt.Print(res.Schema())
	fmt.Printf("\ndefect: %d (excess %d, deficit %d)\n", res.Defect(), res.Excess(), res.Deficit())
	for _, ti := range res.Types() {
		fmt.Printf("  %-12s %3d home objects, %d typed links\n", ti.Name, ti.Weight, ti.Size)
	}
}
