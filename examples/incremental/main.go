// Incremental demonstrates §6's treatment of objects that arrive after the
// typing has been extracted: new objects are assigned every type they
// satisfy completely, fall back to the closest type, or stay unclassified
// past a distance cutoff. It also shows schema conformance checking — under
// greatest-fixpoint semantics a perfect schema admits excess but never
// deficit, so drift shows up as excess facts and unclassified objects.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"schemex"
)

func main() {
	g := schemex.NewGraph()
	for i := 0; i < 8; i++ {
		page := fmt.Sprintf("member%d", i)
		g.LinkAtom(page, "name", fmt.Sprintf("Member %d", i))
		g.LinkAtom(page, "email", fmt.Sprintf("m%d@db", i))
		if i%2 == 0 {
			g.LinkAtom(page, "photo", "photo.gif")
		}
	}

	res, err := schemex.Extract(g, schemex.Options{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	schema := res.Schema()
	fmt.Println("schema extracted from the first crawl:")
	fmt.Print(schema)

	// The next crawl discovers new pages of varying fidelity.
	g.LinkAtom("newcomer", "name", "Newcomer")
	g.LinkAtom("newcomer", "email", "new@db")
	g.LinkAtom("newcomer", "photo", "photo.gif")

	g.LinkAtom("minimal", "name", "Minimal Page")

	g.LinkAtom("spam", "buy-now", "$$$")
	g.LinkAtom("spam", "click-here", "link")

	fmt.Println("\nclassifying the newly crawled pages (§6):")
	for _, page := range []string{"newcomer", "minimal", "spam"} {
		exact := res.ClassifyNew(page, -1)
		strict := res.ClassifyNew(page, 1) // allow at most one missing/extra link
		fmt.Printf("  %-9s -> %v   (with cutoff 1: %v)\n", page, exact, strict)
	}

	// Conformance report for the grown graph against the old schema.
	report, err := schemex.Check(g, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconformance of the grown data against the old schema:")
	for name, n := range report.Types {
		fmt.Printf("  |%s| = %d\n", name, n)
	}
	fmt.Printf("  excess facts: %d, unclassified objects: %d, conforms: %v\n",
		report.Excess, report.Unclassified, report.Conforms())
	fmt.Println("\nWhen too many new objects fit poorly, re-run extraction —")
	fmt.Println("the paper leaves 'how many is too many' open (§6).")
}
