// Jsonschema infers a schema from JSON documents — the 1998 paper applied
// to today's most common semistructured data. JSON objects map onto the
// link/atomic graph model directly (arrays become repeated edges, which the
// set-semantics typed links summarize for free), so the full pipeline —
// perfect typing, clustering, defect — works unchanged.
//
//	go run ./examples/jsonschema
package main

import (
	"fmt"
	"log"
	"strings"

	"schemex"
)

// A batch of API events of two rough kinds, with the usual real-world
// irregularities: optional fields, heterogeneous value types, varying
// array lengths.
var documents = []string{
	`{"kind": "order", "id": 1, "total": 99.5, "items": ["a", "b"], "customer": {"name": "Ada", "email": "ada@x"}}`,
	`{"kind": "order", "id": 2, "total": 15.0, "items": ["c"], "customer": {"name": "Bob", "email": "bob@x"}, "coupon": "WELCOME"}`,
	`{"kind": "order", "id": 3, "total": 7.25, "items": ["d", "e", "f"], "customer": {"name": "Cid", "email": "cid@x"}}`,
	`{"kind": "signup", "id": 4, "user": {"name": "Dee", "email": "dee@x"}, "plan": "free"}`,
	`{"kind": "signup", "id": 5, "user": {"name": "Eve", "email": "eve@x"}, "plan": "pro", "referrer": "news"}`,
}

func main() {
	g := schemex.NewGraph()
	for i, doc := range documents {
		if _, err := g.AddJSON(strings.NewReader(doc), fmt.Sprintf("event%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("loaded:", g.Stats())

	res, err := schemex.Extract(g, schemex.Options{UseSorts: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperfect typing: %d types; chosen size: %d; defect: %d\n\n",
		res.PerfectTypes(), res.NumTypes(), res.Defect())
	fmt.Println("inferred schema (atomic sorts on):")
	fmt.Print(res.Schema())

	fmt.Println("\nevent classifications:")
	for i := range documents {
		name := fmt.Sprintf("event%d", i)
		fmt.Printf("  %s -> %v\n", name, res.TypesOf(name))
	}
}
