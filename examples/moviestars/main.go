// Moviestars reproduces Example 4.3 (Figure 5): soccer stars, movie stars,
// and Cantona, who is both. With multiple-roles decomposition the
// conjunction type "soccer-and-movie star" is eliminated and Cantona gets
// two home types — the paper's argument for typings with multiple roles.
//
//	go run ./examples/moviestars
package main

import (
	"fmt"
	"log"

	"schemex"
)

func main() {
	g := schemex.NewGraph()

	add := func(name string, attrs map[string]string) {
		for label, value := range attrs {
			g.Atom(name+"/"+label, value)
			g.Link(name, name+"/"+label, label)
		}
	}
	// Figure 5's three objects.
	add("scholes", map[string]string{"name": "Scholes", "country": "England", "team": "Man Utd"})
	add("cantona", map[string]string{"name": "Cantona", "country": "France", "team": "Man Utd", "movie": "Le Bonheur est dans le pré"})
	add("binoche", map[string]string{"name": "Binoche", "country": "France", "movie": "Bleu"})
	// A second movie for Binoche: multiplicity does not change typing.
	g.Atom("binoche/movie2", "Damage")
	g.Link("binoche", "binoche/movie2", "movie")
	// Populate the two pure roles so weights are meaningful.
	add("beckham", map[string]string{"name": "Beckham", "country": "England", "team": "Man Utd"})
	add("adjani", map[string]string{"name": "Adjani", "country": "France", "movie": "Camille Claudel"})

	fmt.Println("WITHOUT multiple roles (each object needs a single home type):")
	res, err := schemex.Extract(g, schemex.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Schema())
	fmt.Printf("-> %d types; cantona is in %v\n\n", res.NumTypes(), res.TypesOf("cantona"))

	fmt.Println("WITH multiple roles (conjunction types decomposed, §4.2):")
	res, err = schemex.Extract(g, schemex.Options{K: 2, MultiRole: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Schema())
	fmt.Printf("-> %d types; cantona now plays roles %v\n", res.NumTypes(), res.TypesOf("cantona"))
	fmt.Println("\nThe combinatorial explosion of employee-soccer-player-foreigner")
	fmt.Println("types is avoided: objects live in several simple types instead.")
}
