// Oemimport loads a nested OEM-style document — the exchange format of the
// Tsimmis/Lore systems the paper builds on — into the link/atomic graph
// model and extracts its schema. Shared references (&name / *name) produce
// a genuine graph, not a tree: projects and people point at each other.
//
//	go run ./examples/oemimport
package main

import (
	"fmt"
	"log"

	"schemex"
)

const document = `
# A miniature research-group export in OEM syntax.
&lore {
	title: "Lore: a DBMS for semistructured data",
	member: *widom, member: *mchugh,
}
&tsimmis {
	title: "TSIMMIS: integration of heterogeneous sources",
	member: *widom,
}
&widom {
	name: "J. Widom", email: "widom@db", works-on: *lore, works-on: *tsimmis,
	wrote: { title: "Lore paper", year: 1997, venue: "SIGMOD Record" },
}
&mchugh {
	name: "J. McHugh", email: "mchugh@db", works-on: *lore,
	wrote: { title: "Query optimization for XML", year: 1999 },
}
`

func main() {
	g, err := schemex.ParseOEMString(document)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:", g.Stats())

	res, err := schemex.Extract(g, schemex.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschema with 3 types (perfect typing had %d; defect %d):\n",
		res.PerfectTypes(), res.Defect())
	fmt.Print(res.Schema())

	fmt.Println("\nclassifications:")
	for _, o := range []string{"lore", "tsimmis", "widom", "mchugh"} {
		fmt.Printf("  %-8s -> %v\n", o, res.TypesOf(o))
	}
}
