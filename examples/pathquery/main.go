// Pathquery demonstrates the paper's core motivation (§1): extracted
// structure speeds up querying. A path query is answered twice — naively,
// by scanning every object, and schema-guided, by first solving the path
// over the extracted typing and then touching only objects of realizable
// types.
//
//	go run ./examples/pathquery
package main

import (
	"fmt"
	"log"
	"time"

	"schemex"
)

func main() {
	// A research-group graph: many people, some with nested degree
	// sub-objects; only degrees carry a school attribute.
	g := schemex.NewGraph()
	for i := 0; i < 300; i++ {
		person := fmt.Sprintf("person%03d", i)
		g.LinkAtom(person, "name", fmt.Sprintf("Person %d", i))
		g.LinkAtom(person, "email", fmt.Sprintf("p%d@db", i))
		if i%3 == 0 {
			deg := person + "/degree"
			g.Link(person, deg, "degree")
			g.LinkAtom(deg, "school", "Stanford")
			g.LinkAtom(deg, "year", fmt.Sprint(1970+i%30))
		}
	}
	for i := 0; i < 200; i++ {
		doc := fmt.Sprintf("doc%03d", i)
		g.LinkAtom(doc, "title", fmt.Sprintf("Doc %d", i))
		g.Link(doc, fmt.Sprintf("person%03d", i%300), "author")
	}

	res, err := schemex.Extract(g, schemex.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema:")
	fmt.Print(res.Schema())

	const path = "degree.school"
	t0 := time.Now()
	naive, err := g.FindPath(path)
	if err != nil {
		log.Fatal(err)
	}
	naiveDur := time.Since(t0)

	t0 = time.Now()
	guided, err := res.FindPath(path)
	if err != nil {
		log.Fatal(err)
	}
	guidedDur := time.Since(t0)

	fmt.Printf("\nquery %q:\n", path)
	fmt.Printf("  naive scan:    %4d matches in %v (inspected all %d objects)\n",
		len(naive), naiveDur, g.NumObjects())
	fmt.Printf("  schema-guided: %4d matches in %v (only types that can realize the path)\n",
		len(guided), guidedDur)
	if len(naive) != len(guided) {
		log.Fatalf("result mismatch: %d vs %d", len(naive), len(guided))
	}
	vals, err := g.PathValues("person000", "degree.*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperson000.degree.* -> %v\n", vals)
}
