// Quickstart: build the manager/firm graph of Figure 2 of the paper and
// extract its schema.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"schemex"
)

func main() {
	g := schemex.NewGraph()

	// Two managers, two firms, mutual links plus name attributes — exactly
	// the database of Figure 2.
	g.Link("gates", "microsoft", "is-manager-of")
	g.Link("jobs", "apple", "is-manager-of")
	g.Link("microsoft", "gates", "is-managed-by")
	g.Link("apple", "jobs", "is-managed-by")
	g.LinkAtom("gates", "name", "Gates")
	g.LinkAtom("jobs", "name", "Jobs")
	g.LinkAtom("microsoft", "name", "Microsoft")
	g.LinkAtom("apple", "name", "Apple")

	res, err := schemex.Extract(g, schemex.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("data:", g.Stats())
	fmt.Printf("perfect typing: %d types; defect: %d\n\n", res.PerfectTypes(), res.Defect())
	fmt.Println("extracted schema (arrow notation):")
	fmt.Print(res.Schema())
	fmt.Println("\nas monadic datalog (greatest-fixpoint semantics):")
	fmt.Print(res.Datalog())

	fmt.Println("\nobject classifications:")
	for _, o := range []string{"gates", "jobs", "microsoft", "apple"} {
		fmt.Printf("  %-10s -> %v\n", o, res.TypesOf(o))
	}
}
