// Relational demonstrates the paper's first justification of the typing
// semantics (§2): relational data represented in the link/atomic model —
// tuples as complex objects, attribute values as atomic objects — is
// classified with exactly one type per relation, and the extraction is
// perfect (zero defect). It then injects nulls and dangling references to
// show how the defect measure quantifies the departure from first normal
// form.
//
//	go run ./examples/relational
package main

import (
	"fmt"
	"log"

	"schemex"
)

func main() {
	g := schemex.NewGraph()

	// Relation emp(name, salary, dept): dept is a foreign key modeled as a
	// link to the department tuple.
	depts := []string{"toys", "shoes", "books"}
	for i, d := range depts {
		row := fmt.Sprintf("dept:%s", d)
		g.LinkAtom(row, "dname", d)
		g.LinkAtom(row, "budget", fmt.Sprintf("%d", (i+1)*1000))
	}
	for i := 0; i < 9; i++ {
		row := fmt.Sprintf("emp:%d", i)
		g.LinkAtom(row, "ename", fmt.Sprintf("Employee %d", i))
		g.LinkAtom(row, "salary", fmt.Sprintf("%d", 50000+i*1000))
		g.Link(row, "dept:"+depts[i%3], "works-in")
	}

	res, err := schemex.Extract(g, schemex.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean relational data:", g.Stats())
	fmt.Printf("one type per relation, defect %d:\n%s\n", res.Defect(), res.Schema())

	// Now the semistructured reality: nulls (missing salary) and an extra
	// attribute on one tuple.
	g.LinkAtom("emp:null", "ename", "New Hire") // salary missing, no dept
	g.LinkAtom("emp:extra", "ename", "Veteran")
	g.LinkAtom("emp:extra", "salary", "90000")
	g.LinkAtom("emp:extra", "parking-spot", "A7")
	g.Link("emp:extra", "dept:toys", "works-in")

	res, err = schemex.Extract(g, schemex.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after adding irregular tuples:", g.Stats())
	fmt.Printf("perfect typing needs %d types; at 2 types the defect is %d (excess %d, deficit %d):\n%s",
		res.PerfectTypes(), res.Defect(), res.Excess(), res.Deficit(), res.Schema())
	fmt.Printf("\nemp:null  classified as %v (missing fields are deficit)\n", res.TypesOf("emp:null"))
	fmt.Printf("emp:extra classified as %v (parking-spot is excess)\n", res.TypesOf("emp:extra"))
}
