// Valuesplit implements the paper's closing suggestion in §2: "one may want
// to use in the typing specific atomic values ... This would for instance
// allow to classify differently objects with values 'Male' or 'Female' in a
// sex subobject." With ValueLabels the extraction produces value-predicate
// types like ->sex[0="Male"]; without it, the same objects are structurally
// indistinguishable.
//
//	go run ./examples/valuesplit
package main

import (
	"fmt"
	"log"

	"schemex"
)

func main() {
	g := schemex.NewGraph()
	people := []struct{ name, sex, role string }{
		{"ada", "Female", "engineer"},
		{"grace", "Female", "admiral"},
		{"alan", "Male", "logician"},
		{"kurt", "Male", "logician"},
		{"emmy", "Female", "algebraist"},
	}
	for _, p := range people {
		g.LinkAtom(p.name, "name", p.name)
		g.LinkAtom(p.name, "sex", p.sex)
		g.LinkAtom(p.name, "occupation", p.role)
	}

	fmt.Println("structural typing only (sex is just another attribute):")
	res, err := schemex.Extract(g, schemex.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d perfect types\n%s\n", res.PerfectTypes(), res.Schema())

	fmt.Println("with the sex value participating in typing (ValueLabels):")
	res, err = schemex.Extract(g, schemex.Options{K: 2, ValueLabels: []string{"sex"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d perfect types\n%s\n", res.PerfectTypes(), res.Schema())
	for _, p := range people {
		fmt.Printf("  %-6s -> %v\n", p.name, res.TypesOf(p.name))
	}
}
