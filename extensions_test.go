package schemex

import (
	"fmt"
	"strings"
	"testing"
)

// TestUseSortsSplitsTypes exercises the Remark 2.1 extension: with sorts on,
// records whose "id" values are integers separate from records whose ids
// are strings, even though the label structure is identical.
func TestUseSortsSplitsTypes(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 3; i++ {
		n := "num" + string(rune('0'+i))
		g.LinkAtom(n, "id", "123") // int-sorted
		g.LinkAtom(n, "name", "numeric record")
	}
	for i := 0; i < 3; i++ {
		n := "str" + string(rune('0'+i))
		g.LinkAtom(n, "id", "abc") // string-sorted
		g.LinkAtom(n, "name", "string record")
	}

	// Without sorts the six records are indistinguishable: one class.
	plain, err := Extract(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.PerfectTypes() != 1 {
		t.Fatalf("without sorts: %d perfect types, want 1", plain.PerfectTypes())
	}

	// With sorts they split into two classes.
	sorted, err := Extract(g, Options{K: 2, UseSorts: true})
	if err != nil {
		t.Fatal(err)
	}
	if sorted.PerfectTypes() != 2 {
		t.Fatalf("with sorts: %d perfect types, want 2\n%s", sorted.PerfectTypes(), sorted.PerfectSchema())
	}
	if !strings.Contains(sorted.PerfectSchema(), "[0:int]") ||
		!strings.Contains(sorted.PerfectSchema(), "[0:string]") {
		t.Fatalf("sorted schema missing sort annotations:\n%s", sorted.PerfectSchema())
	}
	// The types separate num* from str*.
	tn, ts := sorted.TypesOf("num0"), sorted.TypesOf("str0")
	if len(tn) == 0 || len(ts) == 0 || tn[0] == ts[0] {
		t.Fatalf("records not separated by sort: %v vs %v", tn, ts)
	}
	// And the defect stays zero: each record fits its sorted type exactly.
	if sorted.Defect() != 0 {
		t.Fatalf("sorted extraction defect = %d, want 0", sorted.Defect())
	}
}

func TestSortedSchemaRoundtrips(t *testing.T) {
	src := "type person = ->age[0:int] & ->name[0:string] & ->score[0:float] & ->active[0:bool] & ->misc[0]"
	out, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"[0:int]", "[0:string]", "[0:float]", "[0:bool]", "->misc[0]"} {
		if !strings.Contains(out, frag) {
			t.Errorf("canonical form lost %q:\n%s", frag, out)
		}
	}
	if _, err := ParseSchema("type x = ->a[0:frob]"); err == nil {
		t.Error("unknown sort accepted")
	}
}

// TestSeedSchemaPinned exercises the a-priori-knowledge extension: seed
// types always survive clustering and absorb matching discovered types.
func TestSeedSchemaPinned(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 5; i++ {
		n := "p" + string(rune('0'+i))
		g.LinkAtom(n, "name", "x")
		g.LinkAtom(n, "mail", "x")
	}
	g.LinkAtom("q", "name", "x") // partial record

	seed := "type person = ->name[0] & ->mail[0]"
	res, err := Extract(g, Options{K: 1, SeedSchema: seed})
	if err != nil {
		t.Fatal(err)
	}
	// K=1 with one pinned seed: everything collapses into the seed.
	if res.NumTypes() != 1 {
		t.Fatalf("types = %d, want 1:\n%s", res.NumTypes(), res.Schema())
	}
	if res.Types()[0].Name != "person" {
		t.Fatalf("surviving type = %q, want the pinned seed", res.Types()[0].Name)
	}
	// The seed's definition survives verbatim.
	if !strings.Contains(res.Schema(), "->mail[0]") || !strings.Contains(res.Schema(), "->name[0]") {
		t.Fatalf("seed definition altered:\n%s", res.Schema())
	}
	// All records assigned to person.
	if got := res.TypesOf("p0"); len(got) != 1 || got[0] != "person" {
		t.Fatalf("p0 -> %v, want [person]", got)
	}
	if got := res.TypesOf("q"); len(got) != 1 || got[0] != "person" {
		t.Fatalf("q -> %v, want [person] (closest)", got)
	}
}

func TestSeedSchemaInvalid(t *testing.T) {
	g := NewGraph()
	g.LinkAtom("a", "x", "1")
	if _, err := Extract(g, Options{SeedSchema: "type broken = ->x[nowhere]"}); err == nil {
		t.Fatal("invalid seed schema accepted")
	}
}

func TestSeedSchemaNameCollision(t *testing.T) {
	g := NewGraph()
	// DefaultClassName will call the discovered class "attr"; the seed is
	// also named "attr": names must be disambiguated, both kept at K=2.
	g.Link("root", "a1", "attr")
	g.Link("root", "a2", "attr")
	g.LinkAtom("a1", "x", "1")
	g.LinkAtom("a2", "x", "1")
	res, err := Extract(g, Options{K: 3, SeedSchema: "type attr = ->zzz[0]"})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ti := range res.Types() {
		if names[ti.Name] {
			t.Fatalf("duplicate type name %q", ti.Name)
		}
		names[ti.Name] = true
	}
}

func TestClassifyNew(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		n := "emp" + string(rune('0'+i))
		g.LinkAtom(n, "name", "x")
		g.LinkAtom(n, "salary", "100")
	}
	res, err := Extract(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	typeName := res.Types()[0].Name

	// A full new record satisfies the type exactly.
	g.LinkAtom("emp9", "name", "x")
	g.LinkAtom("emp9", "salary", "200")
	if got := res.ClassifyNew("emp9", -1); len(got) != 1 || got[0] != typeName {
		t.Fatalf("ClassifyNew(full) = %v, want [%s]", got, typeName)
	}
	// A partial record falls back to the closest type.
	g.LinkAtom("emp10", "name", "x")
	if got := res.ClassifyNew("emp10", -1); len(got) != 1 || got[0] != typeName {
		t.Fatalf("ClassifyNew(partial) = %v, want [%s]", got, typeName)
	}
	// With a zero cutoff the partial record stays unclassified.
	g.LinkAtom("emp11", "other", "x")
	if got := res.ClassifyNew("emp11", 0); len(got) != 0 {
		t.Fatalf("ClassifyNew(cutoff) = %v, want none", got)
	}
	// Unknown and atomic names yield nil.
	if res.ClassifyNew("nope", -1) != nil {
		t.Fatal("unknown object classified")
	}
	if res.ClassifyNew("emp9.name", -1) != nil {
		t.Fatal("atomic object classified")
	}
}

func TestCheckConformance(t *testing.T) {
	g := buildQuickstart()
	res, err := Extract(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Check(g, res.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() {
		t.Fatalf("extracted schema should conform to its own data: %+v", report)
	}
	for name, n := range report.Types {
		if n != 2 {
			t.Errorf("type %s extent = %d, want 2", name, n)
		}
	}

	// Break conformance: an alien object and an unjustified edge.
	g.LinkAtom("stray", "hobby", "golf")
	report, err = Check(g, res.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if report.Conforms() {
		t.Fatal("alien object should break conformance")
	}
	if report.Excess == 0 || report.Unclassified != 1 {
		t.Fatalf("report = %+v, want excess > 0 and 1 unclassified", report)
	}

	if _, err := Check(g, "type broken = ->x[nowhere]"); err == nil {
		t.Fatal("broken schema accepted")
	}
}

// TestValueLabelsPublicAPI exercises the value-predicate extension through
// the facade: sex values split types; the value-typed schema round-trips and
// conformance-checks.
func TestValueLabelsPublicAPI(t *testing.T) {
	g := NewGraph()
	for _, p := range []struct{ name, sex string }{
		{"a", "Male"}, {"b", "Male"}, {"c", "Female"},
	} {
		g.LinkAtom(p.name, "name", p.name)
		g.LinkAtom(p.name, "sex", p.sex)
	}
	res, err := Extract(g, Options{K: 2, ValueLabels: []string{"sex"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfectTypes() != 2 {
		t.Fatalf("perfect types = %d, want 2", res.PerfectTypes())
	}
	if !strings.Contains(res.Schema(), `->sex[0="Male"]`) {
		t.Fatalf("schema missing value predicate:\n%s", res.Schema())
	}
	ta, tc := res.TypesOf("a"), res.TypesOf("c")
	if len(ta) == 0 || len(tc) == 0 || ta[0] == tc[0] {
		t.Fatalf("a %v and c %v should differ by sex", ta, tc)
	}
	// The value-typed schema re-parses and the data conforms to it.
	report, err := Check(g, res.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() {
		t.Fatalf("value-typed schema should conform: %+v", report)
	}
}

// TestCheckNoDeficitUnderGFP documents §2's closing remark: the greatest
// fixpoint semantics may lead to excess but cannot yield deficit — Check
// therefore reports no deficit field at all, and every object in an extent
// satisfies its type.
func TestCheckNoDeficitUnderGFP(t *testing.T) {
	g := NewGraph()
	g.LinkAtom("full", "a", "1")
	g.LinkAtom("full", "b", "2")
	g.LinkAtom("partial", "a", "1")
	report, err := Check(g, "type ab = ->a[0] & ->b[0]")
	if err != nil {
		t.Fatal(err)
	}
	// partial does not satisfy ab, so it is unclassified (never "assigned
	// with missing links" — that is Stage 3 recasting, not GFP).
	if report.Types["ab"] != 1 || report.Unclassified != 1 {
		t.Fatalf("report = %+v, want extent 1 and 1 unclassified", report)
	}
}

// TestClassifyNewSnapshotUnknownLabel pins down late classification over the
// prepared-snapshot path when the new object's picture uses labels that were
// never compiled into the snapshot's label table: the classifier reads the
// live graph, so unknown labels must degrade to "does not satisfy any type"
// rather than panic or misindex.
func TestClassifyNewSnapshotUnknownLabel(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		n := fmt.Sprintf("emp%d", i)
		g.LinkAtom(n, "name", "x")
		g.LinkAtom(n, "salary", "100")
	}
	prep, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractPrepared(prep, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	typeName := res.Types()[0].Name

	// The new object mixes a compiled label with one the snapshot has never
	// seen; the extra link keeps it from satisfying the type, so it must
	// fall back to the closest type.
	g.LinkAtom("emp9", "name", "x")
	g.LinkAtom("emp9", "badge", "7")
	if got := res.ClassifyNew("emp9", -1); len(got) != 1 || got[0] != typeName {
		t.Fatalf("ClassifyNew(mixed labels) = %v, want [%s]", got, typeName)
	}
	// An object carrying only unknown labels is still classifiable by
	// distance but never by satisfaction; with a zero cutoff it stays out.
	g.LinkAtom("emp10", "badge", "8")
	if got := res.ClassifyNew("emp10", 0); len(got) != 0 {
		t.Fatalf("ClassifyNew(unknown-only, cutoff 0) = %v, want none", got)
	}
	if got := res.ClassifyNew("emp10", -1); len(got) != 1 {
		t.Fatalf("ClassifyNew(unknown-only) = %v, want closest type", got)
	}
}

// TestClassifyNewAfterApply classifies objects introduced by a delta session:
// the child's extraction sees labels its parent never compiled, and
// ClassifyNew over the child result must handle yet another layer of
// post-extraction labels.
func TestClassifyNewAfterApply(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		n := fmt.Sprintf("emp%d", i)
		g.LinkAtom(n, "name", "x")
		g.LinkAtom(n, "salary", "100")
	}
	parent, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractPrepared(parent, Options{K: 1}); err != nil {
		t.Fatal(err)
	}
	// The delta introduces a label absent from the parent's label table.
	d := NewDelta().Atom("emp5.name", "x").Atom("emp5.badge", "9").
		Link("emp5", "emp5.name", "name").Link("emp5", "emp5.badge", "badge")
	child, info, err := parent.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Incremental {
		t.Fatal("new label should force a full recompile")
	}
	res, err := ExtractPrepared(child, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	typeName := res.Types()[0].Name
	// A fresh object added after the child's extraction, with one more
	// never-compiled label.
	cg := child.Graph()
	cg.LinkAtom("emp6", "name", "x")
	cg.LinkAtom("emp6", "clearance", "top")
	if got := res.ClassifyNew("emp6", -1); len(got) != 1 || got[0] != typeName {
		t.Fatalf("ClassifyNew(child) = %v, want [%s]", got, typeName)
	}
}
