module schemex

go 1.22
