package schemex_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"schemex"
)

// TestEndToEndLifecycle walks the whole library surface the way a user
// would: load the checked-in OEM sample, convert it across formats, extract
// a schema, validate conformance, answer queries both ways, absorb new data
// and watch the drift report.
func TestEndToEndLifecycle(t *testing.T) {
	f, err := os.Open("testdata/dbgroup.oem")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := schemex.ParseOEM(f)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the text format.
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := schemex.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumObjects() != g.NumObjects() || g2.NumLinks() != g.NumLinks() {
		t.Fatal("text round trip lost data")
	}
	// And through the OEM writer (structure-preserving).
	buf.Reset()
	if err := g.WriteOEM(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := schemex.ParseOEMString(buf.String()); err != nil {
		t.Fatalf("OEM output does not re-parse: %v", err)
	}

	// Extract, with the size chosen automatically.
	res, err := schemex.Extract(g, schemex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTypes() < 2 || res.NumTypes() > res.PerfectTypes() {
		t.Fatalf("auto-sized schema has %d types (perfect %d)", res.NumTypes(), res.PerfectTypes())
	}
	// The projects share a type; so do the people.
	lore, tsimmis := res.TypesOf("lore"), res.TypesOf("tsimmis")
	if len(lore) == 0 || len(tsimmis) == 0 || lore[0] != tsimmis[0] {
		t.Fatalf("projects not co-typed: %v vs %v", lore, tsimmis)
	}
	widom, mchugh := res.TypesOf("widom"), res.TypesOf("mchugh")
	if len(widom) == 0 || len(mchugh) == 0 || widom[0] != mchugh[0] {
		t.Fatalf("people not co-typed: %v vs %v", widom, mchugh)
	}

	// The perfect schema conforms; the extracted schema re-parses.
	report, err := schemex.Check(g, res.PerfectSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() {
		t.Fatalf("perfect schema does not conform: %+v", report)
	}
	if _, err := schemex.ParseSchema(res.Schema()); err != nil {
		t.Fatal(err)
	}

	// Queries: naive and schema-guided agree.
	for _, path := range []string{"member.wrote.title", "works-on.title", "#.venue"} {
		naive, err := g.FindPath(path)
		if err != nil {
			t.Fatal(err)
		}
		guided, err := res.FindPath(path)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(naive, ",") != strings.Join(guided, ",") {
			t.Fatalf("path %s: naive %v vs guided %v", path, naive, guided)
		}
	}

	// New members arrive; drift is visible and classification works.
	g.Link("goldman", "lore", "works-on")
	g.LinkAtom("goldman", "name", "R. Goldman")
	g.LinkAtom("goldman", "email", "goldman@db")
	classes := res.ClassifyNew("goldman", -1)
	if len(classes) == 0 {
		t.Fatal("newcomer unclassified")
	}
	d := res.Drift(-1)
	if d.NewObjects != 1 {
		t.Fatalf("drift = %+v", d)
	}
}

// TestSampleFileMatchesExample keeps the checked-in sample aligned with the
// oemimport example's statistics (6 complex objects, 2 paper sub-objects).
func TestSampleFileMatchesExample(t *testing.T) {
	f, err := os.Open("testdata/dbgroup.oem")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := schemex.ParseOEM(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumObjects()-g.NumLinks() > g.NumObjects() { // sanity only
		t.Fatal("impossible")
	}
	res, err := schemex.Extract(g, schemex.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTypes() != 3 {
		t.Fatalf("types = %d", res.NumTypes())
	}
}
