// Package bisim computes the coarsest partition of a semistructured
// database's complex objects stable under bisimulation over both incoming
// and outgoing labeled edges — the comparison point §4 of the paper draws
// ("the process of partitioning objects into a collection of home types is
// similar in spirit to bisimulation").
//
// All atomic objects form one fixed block (the paper's type₀). Refinement is
// signature based: each round recomputes, for every complex object, the set
// of (direction, label, neighbour-block) triples, and splits blocks whose
// members disagree. The process is the splitting procedure the paper
// sketches, run to fixpoint.
package bisim

import (
	"sort"
	"strconv"
	"strings"

	"schemex/internal/graph"
)

// Partition assigns each complex object to a block. Blocks are numbered
// 0..N-1; atomic objects have block -1 (type₀).
type Partition struct {
	db      *graph.DB
	BlockOf map[graph.ObjectID]int
	Blocks  [][]graph.ObjectID
	Rounds  int // refinement rounds until stable
}

// AtomicBlock is the block of all atomic objects.
const AtomicBlock = -1

// Compute returns the coarsest in/out bisimulation partition of db.
func Compute(db *graph.DB) *Partition {
	p, _ := ComputeCheck(db, nil)
	return p
}

// ComputeCheck is Compute with a cooperative cancellation checkpoint
// consulted once per refinement round (nil check: never cancel). Each round
// touches every object, so the per-round check bounds cancel latency at one
// round's work without perturbing the refinement itself.
func ComputeCheck(db *graph.DB, check func() error) (*Partition, error) {
	objs := db.ComplexObjects()
	blockOf := make(map[graph.ObjectID]int, len(objs))
	for _, o := range objs {
		blockOf[o] = 0
	}
	nBlocks := 1
	if len(objs) == 0 {
		return &Partition{db: db, BlockOf: blockOf}, nil
	}

	rounds := 0
	for {
		rounds++
		if check != nil {
			if err := check(); err != nil {
				return nil, err
			}
		}
		sig := make(map[graph.ObjectID]string, len(objs))
		for _, o := range objs {
			sig[o] = signature(db, o, blockOf)
		}
		// Split every block by signature. Block numbering is deterministic:
		// blocks ordered by (old block, signature).
		type key struct {
			old int
			sig string
		}
		groups := make(map[key][]graph.ObjectID)
		for _, o := range objs {
			k := key{blockOf[o], sig[o]}
			groups[k] = append(groups[k], o)
		}
		keys := make([]key, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].old != keys[j].old {
				return keys[i].old < keys[j].old
			}
			return keys[i].sig < keys[j].sig
		})
		if len(keys) == nBlocks {
			// Stable: materialize the result.
			p := &Partition{db: db, BlockOf: blockOf, Rounds: rounds}
			p.Blocks = make([][]graph.ObjectID, nBlocks)
			for _, o := range objs {
				b := blockOf[o]
				p.Blocks[b] = append(p.Blocks[b], o)
			}
			for _, b := range p.Blocks {
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			}
			return p, nil
		}
		newBlockOf := make(map[graph.ObjectID]int, len(objs))
		for nb, k := range keys {
			for _, o := range groups[k] {
				newBlockOf[o] = nb
			}
		}
		blockOf = newBlockOf
		nBlocks = len(keys)
	}
}

// signature encodes the local picture of o under the current partition: the
// sorted set of distinct (direction, label, neighbour block) triples.
func signature(db *graph.DB, o graph.ObjectID, blockOf map[graph.ObjectID]int) string {
	seen := make(map[string]bool)
	for _, e := range db.Out(o) {
		b := AtomicBlock
		if !db.IsAtomic(e.To) {
			b = blockOf[e.To]
		}
		seen[">"+e.Label+"\x00"+strconv.Itoa(b)] = true
	}
	for _, e := range db.In(o) {
		seen["<"+e.Label+"\x00"+strconv.Itoa(blockOf[e.From])] = true
	}
	parts := make([]string, 0, len(seen))
	for s := range seen {
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// NumBlocks returns the number of blocks of complex objects.
func (p *Partition) NumBlocks() int { return len(p.Blocks) }

// Same reports whether two complex objects are bisimilar.
func (p *Partition) Same(a, b graph.ObjectID) bool {
	ba, oka := p.BlockOf[a]
	bb, okb := p.BlockOf[b]
	return oka && okb && ba == bb
}
