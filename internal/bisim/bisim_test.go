package bisim_test

import (
	"math/rand"
	"testing"

	"schemex/internal/bisim"
	"schemex/internal/graph"
	"schemex/internal/perfect"
)

func figure4DB() *graph.DB {
	db := graph.New()
	db.Link("o1", "o2", "a")
	db.Link("o1", "o3", "a")
	db.Link("o1", "o4", "a")
	db.Atom("o5", "v5")
	db.Atom("o6", "v6")
	db.Atom("o7", "v7")
	db.Atom("o7c", "v7c")
	db.Link("o2", "o5", "b")
	db.Link("o3", "o6", "b")
	db.Link("o4", "o7", "b")
	db.Link("o4", "o7c", "c")
	return db
}

func TestFigure4Partition(t *testing.T) {
	db := figure4DB()
	p := bisim.Compute(db)
	if p.NumBlocks() != 3 {
		t.Fatalf("bisimulation found %d blocks, want 3", p.NumBlocks())
	}
	if !p.Same(db.Lookup("o2"), db.Lookup("o3")) {
		t.Error("o2 and o3 should be bisimilar")
	}
	if p.Same(db.Lookup("o2"), db.Lookup("o4")) {
		t.Error("o2 and o4 should not be bisimilar (o4 has a c edge)")
	}
	if p.Same(db.Lookup("o1"), db.Lookup("o2")) {
		t.Error("o1 and o2 should not be bisimilar")
	}
}

func TestSeparatesByIncomingEdges(t *testing.T) {
	// Two otherwise-identical objects with different incoming labels must
	// be split: bisimulation here is over in- and out-edges (as in §4).
	db := graph.New()
	db.Link("r", "x", "left")
	db.Link("r", "y", "right")
	db.LinkAtom("x", "name", "nx", "v")
	db.LinkAtom("y", "name", "ny", "v")
	p := bisim.Compute(db)
	if p.Same(db.Lookup("x"), db.Lookup("y")) {
		t.Fatal("objects with different incoming labels should be split")
	}
}

func TestCycleBisimulation(t *testing.T) {
	// A uniform cycle is fully bisimilar.
	db := graph.New()
	db.Link("a", "b", "next")
	db.Link("b", "c", "next")
	db.Link("c", "a", "next")
	p := bisim.Compute(db)
	if p.NumBlocks() != 1 {
		t.Fatalf("uniform cycle should be one block, got %d", p.NumBlocks())
	}
}

// TestAgreesWithStage1OnDeterministicData compares bisimulation with the
// GFP-based Stage 1 classes on a case where they coincide (tree-like data).
// In general Stage 1 (mutual simulation containment) can be coarser.
func TestAgreesWithStage1OnDeterministicData(t *testing.T) {
	db := figure4DB()
	bp := bisim.Compute(db)
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumBlocks() != res.Program.Len() {
		t.Fatalf("bisim %d blocks vs stage1 %d classes", bp.NumBlocks(), res.Program.Len())
	}
	// Partition equality: same objects together.
	for _, o1 := range db.ComplexObjects() {
		for _, o2 := range db.ComplexObjects() {
			sameB := bp.Same(o1, o2)
			sameS := res.Home[o1] == res.Home[o2]
			if sameB != sameS {
				t.Fatalf("%s/%s: bisim=%v stage1=%v", db.Name(o1), db.Name(o2), sameB, sameS)
			}
		}
	}
}

// TestBisimRefinesStage1 documents the relationship on random data:
// bisimilar objects always share a Stage 1 class (bisimulation refines the
// mutual-simulation equivalence of the minimal perfect typing).
func TestBisimRefinesStage1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		db := randomDB(rng, 5+rng.Intn(10))
		bp := bisim.Compute(db)
		res, err := perfect.Minimal(db, perfect.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, block := range bp.Blocks {
			for i := 1; i < len(block); i++ {
				if res.Home[block[0]] != res.Home[block[i]] {
					t.Fatalf("trial %d: bisimilar objects %s, %s in different stage1 classes",
						trial, db.Name(block[0]), db.Name(block[i]))
				}
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	db := graph.New()
	p := bisim.Compute(db)
	if p.NumBlocks() != 0 {
		t.Fatalf("empty db: %d blocks", p.NumBlocks())
	}
	db.Intern("only")
	p = bisim.Compute(db)
	if p.NumBlocks() != 1 {
		t.Fatalf("singleton db: %d blocks", p.NumBlocks())
	}
}

func randomDB(rng *rand.Rand, n int) *graph.DB {
	db := graph.New()
	labels := []string{"a", "b"}
	names := make([]string, n)
	for i := range names {
		names[i] = "o" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		db.Intern(names[i])
	}
	for i := 0; i < n*2; i++ {
		f, to := rng.Intn(n), rng.Intn(n)
		if f != to {
			db.Link(names[f], names[to], labels[rng.Intn(len(labels))])
		}
	}
	return db
}
