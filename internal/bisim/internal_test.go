package bisim

import (
	"math/rand"
	"testing"

	"schemex/internal/graph"
)

// TestPartitionIsStable: within a block, all objects have the same signature
// under the final partition (the definition of the fixpoint). Uses the
// unexported signature helper, so it lives in the package.
func TestPartitionIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		db := randomTestDB(rng, 6+rng.Intn(14))
		p := Compute(db)
		for _, block := range p.Blocks {
			if len(block) < 2 {
				continue
			}
			first := signature(db, block[0], p.BlockOf)
			for _, o := range block[1:] {
				if signature(db, o, p.BlockOf) != first {
					t.Fatalf("trial %d: block not signature-stable", trial)
				}
			}
		}
	}
}

func randomTestDB(rng *rand.Rand, n int) *graph.DB {
	db := graph.New()
	labels := []string{"a", "b"}
	names := make([]string, n)
	for i := range names {
		names[i] = "o" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		db.Intern(names[i])
	}
	for i := 0; i < n*2; i++ {
		f, to := rng.Intn(n), rng.Intn(n)
		if f != to {
			db.Link(names[f], names[to], labels[rng.Intn(len(labels))])
		}
	}
	return db
}
