// Package bitset provides a dense bit set used by the fixpoint evaluators
// for object-membership matrices and by the clustering/recast stages for
// typed-link hypercube points (popcount distance kernels).
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to size one.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold bits [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity n the set was created with.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll sets every bit in [0, n).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := uint(s.n) & 63; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether s and t hold the same bits. Sets of different
// capacity are never equal.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Grown returns an independent copy of s resized to hold bits [0, n) with
// n >= s.Len(); bits beyond the original capacity are zero. It is how the
// incremental compiler extends a parent snapshot's sets to a delta-grown
// object universe without mutating the shared parent.
func (s *Set) Grown(n int) *Set {
	if n < s.n {
		panic("bitset: Grown to smaller capacity")
	}
	c := New(n)
	copy(c.words, s.words)
	return c
}

// Hash returns an FNV-style hash of the contents, for grouping equal sets.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		h ^= w
		h *= prime
	}
	return h
}

// ForEach calls fn for every set bit, in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Subset reports whether every bit of s is also set in t.
func (s *Set) Subset(t *Set) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectionCount returns |s ∩ t|.
func (s *Set) IntersectionCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// XorCount returns |s Δ t|, the size of the symmetric difference — the
// Manhattan distance between the two sets as points on the binary hypercube
// (§5.2). Sets must have equal capacity.
func (s *Set) XorCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w ^ t.words[i])
	}
	return c
}

// AndNotCount returns |s \ t|. A zero result means s ⊆ t.
func (s *Set) AndNotCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ t.words[i])
	}
	return c
}

// Or sets s to s ∪ t, in place.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNot sets s to s \ t, in place.
func (s *Set) AndNot(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// NewBlock returns count sets of capacity n backed by a single contiguous
// words allocation: three allocations total regardless of count, and
// adjacent sets share cache lines, which matters for the all-pairs distance
// kernels.
func NewBlock(count, n int) []*Set {
	w := (n + 63) / 64
	words := make([]uint64, count*w)
	sets := make([]Set, count)
	out := make([]*Set, count)
	for i := range sets {
		sets[i] = Set{words: words[i*w : (i+1)*w : (i+1)*w], n: n}
		out[i] = &sets[i]
	}
	return out
}
