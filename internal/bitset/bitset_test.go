package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		if s.Test(i) {
			t.Errorf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
}

func TestSetAllMasksTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Errorf("New(%d).SetAll().Count() = %d, want %d", n, got, n)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(100)
	a.Set(3)
	a.Set(99)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set(50)
	if a.Equal(b) {
		t.Fatal("sets equal after divergence")
	}
	if a.Equal(New(101)) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{0, 5, 64, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestSubsetAndIntersection(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	a.Set(64)
	b.Set(1)
	b.Set(64)
	b.Set(100)
	if !a.Subset(b) {
		t.Error("a should be subset of b")
	}
	if b.Subset(a) {
		t.Error("b should not be subset of a")
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
}

func TestHashEqualityProperty(t *testing.T) {
	// Equal contents hash equally; differing contents rarely collide (not
	// asserted), and hash is order-insensitive in construction.
	f := func(bits []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, x := range bits {
			a.Set(int(x))
		}
		for i := len(bits) - 1; i >= 0; i-- {
			b.Set(int(bits[i]))
		}
		return a.Hash() == b.Hash() && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(1000)
	ref := make(map[int]bool)
	for i := 0; i < 500; i++ {
		x := rng.Intn(1000)
		if rng.Intn(2) == 0 {
			s.Set(x)
			ref[x] = true
		} else {
			s.Clear(x)
			delete(ref, x)
		}
		if s.Count() != len(ref) {
			t.Fatalf("after %d ops: Count=%d, ref=%d", i, s.Count(), len(ref))
		}
	}
}
