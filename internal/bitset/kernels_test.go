package bitset

import (
	"math/rand"
	"testing"
)

// randomPair builds two random sets of capacity n plus reference maps.
func randomPair(rng *rand.Rand, n, fill int) (a, b *Set, ra, rb map[int]bool) {
	a, b = New(n), New(n)
	ra, rb = make(map[int]bool), make(map[int]bool)
	for i := 0; i < fill; i++ {
		x := rng.Intn(n)
		a.Set(x)
		ra[x] = true
		y := rng.Intn(n)
		b.Set(y)
		rb[y] = true
	}
	return
}

func TestXorCountMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b, ra, rb := randomPair(rng, n, rng.Intn(2*n))
		want := 0
		for x := range ra {
			if !rb[x] {
				want++
			}
		}
		for x := range rb {
			if !ra[x] {
				want++
			}
		}
		if got := a.XorCount(b); got != want {
			t.Fatalf("trial %d (n=%d): XorCount=%d, want %d", trial, n, got, want)
		}
		if got := b.XorCount(a); got != want {
			t.Fatalf("trial %d: XorCount not symmetric", trial)
		}
		if a.XorCount(a) != 0 {
			t.Fatal("XorCount(s, s) != 0")
		}
	}
}

func TestAndNotCountMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b, ra, rb := randomPair(rng, n, rng.Intn(2*n))
		want := 0
		for x := range ra {
			if !rb[x] {
				want++
			}
		}
		if got := a.AndNotCount(b); got != want {
			t.Fatalf("trial %d (n=%d): AndNotCount=%d, want %d", trial, n, got, want)
		}
		// AndNotCount == 0 iff subset.
		if (a.AndNotCount(b) == 0) != a.Subset(b) {
			t.Fatalf("trial %d: AndNotCount==0 disagrees with Subset", trial)
		}
	}
}

func TestXorIdentity(t *testing.T) {
	// |a Δ b| = |a| + |b| - 2|a ∩ b| and |a Δ b| = |a\b| + |b\a|.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		a, b, _, _ := randomPair(rng, n, rng.Intn(n))
		xor := a.XorCount(b)
		if want := a.Count() + b.Count() - 2*a.IntersectionCount(b); xor != want {
			t.Fatalf("inclusion-exclusion violated: %d != %d", xor, want)
		}
		if want := a.AndNotCount(b) + b.AndNotCount(a); xor != want {
			t.Fatalf("difference decomposition violated: %d != %d", xor, want)
		}
	}
}

func TestOrAndNotInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		a, b, ra, rb := randomPair(rng, n, rng.Intn(n))
		u := a.Clone()
		u.Or(b)
		d := a.Clone()
		d.AndNot(b)
		for x := 0; x < n; x++ {
			if u.Test(x) != (ra[x] || rb[x]) {
				t.Fatalf("Or wrong at bit %d", x)
			}
			if d.Test(x) != (ra[x] && !rb[x]) {
				t.Fatalf("AndNot wrong at bit %d", x)
			}
		}
		// In-place ops must not disturb the operand.
		for x := 0; x < n; x++ {
			if b.Test(x) != rb[x] {
				t.Fatalf("operand mutated at bit %d", x)
			}
		}
	}
}

func TestReset(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 63, 64, 199} {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
	if s.Len() != 200 {
		t.Fatalf("Len changed by Reset")
	}
}

func TestNewBlock(t *testing.T) {
	for _, tc := range []struct{ count, n int }{{0, 0}, {1, 1}, {3, 64}, {5, 130}, {2, 0}} {
		sets := NewBlock(tc.count, tc.n)
		if len(sets) != tc.count {
			t.Fatalf("NewBlock(%d, %d) returned %d sets", tc.count, tc.n, len(sets))
		}
		for i, s := range sets {
			if s.Len() != tc.n {
				t.Fatalf("set %d has capacity %d, want %d", i, s.Len(), tc.n)
			}
			if s.Count() != 0 {
				t.Fatalf("set %d not empty", i)
			}
		}
		// Sets must be independent despite the shared backing array.
		if tc.count >= 2 && tc.n >= 1 {
			sets[0].Set(tc.n - 1)
			if sets[1].Test(tc.n - 1) {
				t.Fatal("NewBlock sets share bits")
			}
		}
	}
}

func TestNewBlockAllocations(t *testing.T) {
	allocs := testing.AllocsPerRun(20, func() {
		NewBlock(64, 1024)
	})
	if allocs > 3 {
		t.Fatalf("NewBlock(64, 1024) allocates %.0f times, want <= 3", allocs)
	}
}

// --- Micro-benchmarks for the distance kernels --------------------------

func benchSets(n int) (*Set, *Set) {
	rng := rand.New(rand.NewSource(42))
	a, b := New(n), New(n)
	for i := 0; i < n/2; i++ {
		a.Set(rng.Intn(n))
		b.Set(rng.Intn(n))
	}
	return a, b
}

func BenchmarkXorCount(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		a, s := benchSets(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += a.XorCount(s)
			}
			_ = sink
		})
	}
}

func BenchmarkAndNotCount(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		a, s := benchSets(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += a.AndNotCount(s)
			}
			_ = sink
		})
	}
}

func BenchmarkOrInPlace(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		a, s := benchSets(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Or(s)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<16:
		return "64k"
	case n >= 1<<12:
		return "4k"
	default:
		return "256"
	}
}
