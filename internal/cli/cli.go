// Package cli implements the schemex command line. cmd/schemex is a thin
// wrapper; keeping the logic here makes every command unit-testable with
// in-memory readers and writers.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"schemex"
	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/synth"
	"schemex/internal/wal"
)

// Env carries the command environment (streams and a file opener), so tests
// can run commands without touching the real file system for stdin/stdout.
type Env struct {
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
}

// DefaultEnv is the process environment.
func DefaultEnv() *Env {
	return &Env{Stdin: os.Stdin, Stdout: os.Stdout, Stderr: os.Stderr}
}

// Run dispatches a schemex command line (without the program name) and
// returns the exit code. SIGINT/SIGTERM cancel the running command
// gracefully: extraction stops at its next checkpoint, partial stats are
// printed, and the process exits with the conventional code 130.
func Run(args []string, env *Env) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return RunContext(ctx, args, env)
}

// RunContext is Run under a caller-supplied context (no signal handling),
// which makes cancellation behaviour unit-testable. Exit codes: 0 success,
// 1 command error (including deadline expiry), 2 usage error, 130
// cancellation.
func RunContext(ctx context.Context, args []string, env *Env) int {
	if env == nil {
		env = DefaultEnv()
	}
	if len(args) < 1 {
		usage(env.Stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "extract":
		err = cmdExtract(ctx, rest, env)
	case "apply":
		err = cmdApply(ctx, rest, env)
	case "perfect":
		err = cmdPerfect(rest, env)
	case "sweep":
		err = cmdSweep(ctx, rest, env)
	case "assign":
		err = cmdAssign(ctx, rest, env)
	case "gen":
		err = cmdGen(rest, env)
	case "query":
		err = cmdQuery(rest, env)
	case "convert":
		err = cmdConvert(rest, env)
	case "check":
		err = cmdCheck(rest, env)
	case "validate":
		err = cmdValidate(rest, env)
	case "stats":
		err = cmdStats(rest, env)
	case "help", "-h", "--help":
		usage(env.Stdout)
		return 0
	default:
		fmt.Fprintf(env.Stderr, "schemex: unknown command %q\n", cmd)
		usage(env.Stderr)
		return 2
	}
	if err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintln(env.Stderr, "schemex:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		if errors.Is(err, context.Canceled) {
			return 130 // the conventional "terminated by SIGINT" code
		}
		return 1
	}
	return 0
}

// usageError marks a flag-parsing failure, mapped to exit code 2.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usageErr(err error) error {
	if err == flag.ErrHelp {
		return err
	}
	return usageError{err}
}

// withTimeout arms a -timeout flag value on ctx; zero means no limit.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// reportPartial prints the loaded graph's stats to stderr when extraction
// was cancelled or timed out, so an interrupted run still reports what it
// was working on. The error is returned unchanged.
func reportPartial(env *Env, g *schemex.Graph, err error) error {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		fmt.Fprintf(env.Stderr, "# interrupted; partial stats: %s\n", g.Stats())
	}
	return err
}

func usage(w io.Writer) {
	fmt.Fprint(w, `schemex — schema extraction from semistructured data (SIGMOD '98)

commands:
  extract   run the full three-stage extraction and print the typing
  apply     apply a delta file to a dataset (print or re-extract the result)
  perfect   print the minimal perfect typing (Stage 1 only)
  sweep     print the defect/#types sensitivity curve
  assign    print the per-object type assignment
  gen       generate a built-in dataset (Table 1 presets or DBG)
  query     answer a path query (naive or schema-guided)
  convert   convert between data formats (text, oem, json in; text, oem out)
  check     validate data against a schema file (conformance report)
  validate  check a data file against the model constraints
  stats     print dataset statistics

run "schemex <command> -h" for flags.
`)
}

func newFlagSet(name string, env *Env) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	return fs
}

func loadGraph(path string, oem bool, env *Env) (*schemex.Graph, error) {
	return loadGraphFmt(path, oem, false, env)
}

func loadGraphFmt(path string, oem, jsonIn bool, env *Env) (*schemex.Graph, error) {
	var r io.Reader
	if path == "-" {
		r = env.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch {
	case oem && jsonIn:
		return nil, fmt.Errorf("pass at most one of -oem and -json")
	case oem:
		return schemex.ParseOEM(r)
	case jsonIn:
		return schemex.ParseJSON(r, "root")
	default:
		return schemex.ReadGraph(r)
	}
}

func fileArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one input file (or -), got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdExtract(ctx context.Context, args []string, env *Env) error {
	fs := newFlagSet("extract", env)
	k := fs.Int("k", 0, "target number of types (0 = automatic)")
	delta := fs.String("delta", "", "distance function: delta1..delta5 or weighted-manhattan")
	multiRole := fs.Bool("multirole", false, "decompose conjunction types (multiple roles)")
	empty := fs.Bool("empty", false, "allow the empty type (unclassified objects)")
	sorts := fs.Bool("sorts", false, "distinguish atomic values by sort (int, string, ...)")
	seedPath := fs.String("seed", "", "file with a-priori known types in arrow notation")
	oem := fs.Bool("oem", false, "input is OEM syntax")
	jsonIn := fs.Bool("json", false, "input is a JSON document")
	showPerfect := fs.Bool("show-perfect", false, "also print the minimal perfect typing")
	datalog := fs.Bool("datalog", false, "also print the typing as datalog rules")
	parallel := fs.Int("p", 0, "worker goroutines per stage (0 = one per CPU, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort extraction after this long (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraphFmt(path, *oem, *jsonIn, env)
	if err != nil {
		return err
	}
	opts := schemex.Options{
		K: *k, Delta: *delta, MultiRole: *multiRole, AllowEmpty: *empty, UseSorts: *sorts,
		Parallelism: *parallel,
	}
	if *seedPath != "" {
		seed, err := os.ReadFile(*seedPath)
		if err != nil {
			return err
		}
		opts.SeedSchema = string(seed)
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	res, err := schemex.ExtractContext(ctx, g, opts)
	if err != nil {
		return reportPartial(env, g, err)
	}
	fmt.Fprintf(env.Stdout, "# %s\n", g.Stats())
	fmt.Fprintf(env.Stdout, "# perfect typing: %d types; approximate typing: %d types", res.PerfectTypes(), res.NumTypes())
	if res.AutoK() > 0 {
		fmt.Fprintf(env.Stdout, " (chosen automatically)")
	}
	fmt.Fprintf(env.Stdout, "\n# defect: %d (excess %d + deficit %d); unclassified objects: %d\n\n",
		res.Defect(), res.Excess(), res.Deficit(), res.Unclassified())
	fmt.Fprint(env.Stdout, res.Schema())
	if *showPerfect {
		fmt.Fprintf(env.Stdout, "\n# minimal perfect typing:\n%s", res.PerfectSchema())
	}
	if *datalog {
		fmt.Fprintf(env.Stdout, "\n# datalog form:\n%s", res.Datalog())
	}
	return nil
}

// cmdApply loads a dataset, applies one or more delta files in order through
// the session API, and either writes the mutated graph (default) or
// re-extracts a schema from it. -v narrates each step's apply path, which is
// how a user can see whether edits stayed on the incremental fast path.
func cmdApply(ctx context.Context, args []string, env *Env) error {
	fs := newFlagSet("apply", env)
	var deltas deltaFiles
	fs.Var(&deltas, "d", "delta file in link/unlink/atomic/remove line format (repeatable, - for stdin)")
	oem := fs.Bool("oem", false, "input is OEM syntax")
	jsonIn := fs.Bool("json", false, "input is a JSON document")
	extract := fs.Bool("extract", false, "extract a schema from the mutated data instead of printing it")
	k := fs.Int("k", 0, "target number of types for -extract (0 = automatic)")
	parallel := fs.Int("p", 0, "worker goroutines per stage (0 = one per CPU, 1 = serial)")
	verbose := fs.Bool("v", false, "report each delta's apply path on stderr")
	timeout := fs.Duration("timeout", 0, "abort after this long (0 = no limit)")
	logPath := fs.String("log", "", "write-ahead log: replay its deltas first, then append each -d delta (created if missing)")
	memBudget := fs.Int64("mem-budget", 0, "approximate bytes of CSR shards kept resident; spilled shards fault back on demand (0 = everything stays resident)")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	if *memBudget < 0 {
		return usageErr(fmt.Errorf("-mem-budget must be non-negative, got %d", *memBudget))
	}
	if len(deltas) == 0 && *logPath == "" {
		return usageErr(fmt.Errorf("apply needs at least one -d delta file (or -log)"))
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraphFmt(path, *oem, *jsonIn, env)
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	sess, err := schemex.PrepareOptions(ctx, g, schemex.Options{Parallelism: *parallel, MemBudget: *memBudget})
	if err != nil {
		return reportPartial(env, g, err)
	}
	var wlog *wal.Log
	if *logPath != "" {
		if sess, wlog, err = openApplyLog(ctx, *logPath, sess, *verbose, *memBudget, env); err != nil {
			return err
		}
		defer wlog.Close()
	}
	// Parse every -d file up front, then apply them as one coalesced batch:
	// one incremental apply over the union footprint and one WAL group append
	// instead of an apply and an fsync per file. Results are bit-identical to
	// applying the files in order.
	parsed := make([]*schemex.Delta, 0, len(deltas))
	for _, dpath := range deltas {
		var r io.Reader
		if dpath == "-" {
			r = env.Stdin
		} else {
			f, err := os.Open(dpath)
			if err != nil {
				return err
			}
			r = f
		}
		d, err := schemex.ParseDelta(r)
		if c, ok := r.(io.Closer); ok {
			c.Close()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", dpath, err)
		}
		parsed = append(parsed, d)
	}
	if len(parsed) > 0 {
		next, info, err := sess.ApplyBatchContext(ctx, parsed...)
		if err != nil {
			// Nothing committed. Re-run the files sequentially on a scratch
			// branch purely to name the one that fails.
			scratch := sess
			for i, d := range parsed {
				if scratch, _, err = scratch.ApplyContext(ctx, d); err != nil {
					return fmt.Errorf("applying %s: %w", deltas[i], err)
				}
			}
			return fmt.Errorf("applying delta batch: %w", err)
		}
		if *verbose {
			ops := 0
			for _, d := range parsed {
				ops += d.Len()
			}
			path := "incremental"
			if !info.Incremental {
				path = "full recompile"
			}
			st := next.IncrStats()
			fmt.Fprintf(env.Stderr, "# batch: %d deltas, %d ops (%d coalesced away), %s, touched %d objects (%d new)\n",
				len(parsed), ops, st.CoalescedOps, path, info.TouchedObjects, info.NewObjects)
		}
		if wlog != nil {
			payloads := make([][]byte, len(parsed))
			for i, d := range parsed {
				payloads[i] = []byte(d.String())
			}
			if _, err := wlog.AppendAll(wal.KindDelta, payloads); err != nil {
				return fmt.Errorf("logging delta batch: %w", err)
			}
		}
		sess = next
	}
	if *verbose && *memBudget > 0 {
		rs := schemex.ReadResidencyStats()
		fmt.Fprintf(env.Stderr, "# shard residency: %d faults, %d evictions, %d pins (budget %d bytes)\n",
			rs.ShardFaults, rs.ShardEvictions, rs.ShardPins, *memBudget)
	}
	if !*extract {
		return sess.Graph().Write(env.Stdout)
	}
	res, err := schemex.ExtractPreparedContext(ctx, sess, schemex.Options{K: *k, Parallelism: *parallel})
	if err != nil {
		return reportPartial(env, sess.Graph(), err)
	}
	fmt.Fprintf(env.Stdout, "# %s (after %d deltas)\n", sess.Graph().Stats(), len(deltas))
	fmt.Fprintf(env.Stdout, "# defect: %d; unclassified objects: %d\n\n", res.Defect(), res.Unclassified())
	fmt.Fprint(env.Stdout, res.Schema())
	return nil
}

// openApplyLog wires cmdApply's -log flag: an existing log is replayed on top
// of the freshly prepared session (a base record replaces the state outright,
// delta records apply in order), then reopened for appending — a torn final
// frame from an interrupted earlier run is dropped with a warning. A missing
// log is created, seeded with the session's graph as its base record so the
// log replays standalone next time.
func openApplyLog(ctx context.Context, path string, sess *schemex.Prepared, verbose bool, memBudget int64, env *Env) (*schemex.Prepared, *wal.Log, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		l, err := wal.Create(path, wal.SyncPolicy{})
		if err != nil {
			return nil, nil, err
		}
		var base strings.Builder
		if err := sess.Graph().Write(&base); err != nil {
			l.Close()
			return nil, nil, err
		}
		if _, err := l.Append(wal.KindBase, []byte(base.String())); err != nil {
			l.Close()
			return nil, nil, err
		}
		if verbose {
			fmt.Fprintf(env.Stderr, "# %s: created, base %d objects\n", path, sess.Graph().NumObjects())
		}
		return sess, l, nil
	}
	replayed := 0
	_, torn, err := wal.Replay(path, 0, func(r wal.Record) error {
		switch r.Kind {
		case wal.KindBase:
			g, err := schemex.ReadGraph(strings.NewReader(string(r.Payload)))
			if err != nil {
				return fmt.Errorf("base record at offset %d: %w", r.Offset, err)
			}
			p, err := schemex.PrepareOptions(ctx, g, schemex.Options{MemBudget: memBudget})
			if err != nil {
				return err
			}
			sess = p
		case wal.KindDelta:
			d, err := schemex.ParseDelta(strings.NewReader(string(r.Payload)))
			if err != nil {
				return fmt.Errorf("delta record at offset %d: %w", r.Offset, err)
			}
			next, _, err := sess.ApplyContext(ctx, d)
			if err != nil {
				return fmt.Errorf("replaying delta at offset %d: %w", r.Offset, err)
			}
			sess = next
			replayed++
		}
		return nil
	})
	if err != nil {
		// *wal.CorruptError already names the file and offset.
		var ce *wal.CorruptError
		if errors.As(err, &ce) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if torn {
		fmt.Fprintf(env.Stderr, "# %s: dropped torn final record (interrupted write)\n", path)
	}
	if verbose {
		fmt.Fprintf(env.Stderr, "# %s: replayed %d logged deltas\n", path, replayed)
	}
	l, err := wal.Open(path, wal.SyncPolicy{})
	if err != nil {
		return nil, nil, err // wal errors name the file
	}
	return sess, l, nil
}

// deltaFiles collects repeated -d flags in order.
type deltaFiles []string

func (d *deltaFiles) String() string { return strings.Join(*d, ",") }
func (d *deltaFiles) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func cmdPerfect(args []string, env *Env) error {
	fs := newFlagSet("perfect", env)
	oem := fs.Bool("oem", false, "input is OEM syntax")
	sorts := fs.Bool("sorts", false, "distinguish atomic values by sort")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	res, err := perfect.Minimal(g.DB(), perfect.Options{UseSorts: *sorts})
	if err != nil {
		return err
	}
	fmt.Fprintf(env.Stdout, "# %s\n# minimal perfect typing: %d types\n\n", g.Stats(), res.Program.Len())
	fmt.Fprint(env.Stdout, res.Program.String())
	return nil
}

func cmdSweep(ctx context.Context, args []string, env *Env) error {
	fs := newFlagSet("sweep", env)
	delta := fs.String("delta", "", "distance function")
	oem := fs.Bool("oem", false, "input is OEM syntax")
	csv := fs.Bool("csv", false, "emit CSV for plotting")
	parallel := fs.Int("p", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	sw, err := schemex.SweepAnalysisContext(ctx, g, schemex.Options{Delta: *delta, Parallelism: *parallel})
	if err != nil {
		return reportPartial(env, g, err)
	}
	if *csv {
		fmt.Fprintln(env.Stdout, "types,defect,excess,deficit,total_distance,unclassified")
		for i := len(sw.Points) - 1; i >= 0; i-- {
			p := sw.Points[i]
			fmt.Fprintf(env.Stdout, "%d,%d,%d,%d,%.1f,%d\n",
				p.K, p.Defect, p.Excess, p.Deficit, p.TotalDistance, p.Unclassified)
		}
		return nil
	}
	fmt.Fprintln(env.Stdout, "types  defect  excess  deficit  total-distance  unclassified")
	for i := len(sw.Points) - 1; i >= 0; i-- {
		p := sw.Points[i]
		fmt.Fprintf(env.Stdout, "%5d  %6d  %6d  %7d  %14.1f  %12d\n",
			p.K, p.Defect, p.Excess, p.Deficit, p.TotalDistance, p.Unclassified)
	}
	fmt.Fprintf(env.Stdout, "# suggested number of types: %d\n", sw.Suggested)
	return nil
}

func cmdAssign(ctx context.Context, args []string, env *Env) error {
	fs := newFlagSet("assign", env)
	k := fs.Int("k", 0, "target number of types (0 = automatic)")
	oem := fs.Bool("oem", false, "input is OEM syntax")
	parallel := fs.Int("p", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort the assignment after this long (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	res, err := schemex.ExtractContext(ctx, g, schemex.Options{K: *k, Parallelism: *parallel})
	if err != nil {
		return reportPartial(env, g, err)
	}
	for _, ti := range res.Types() {
		members := res.Members(ti.Name)
		fmt.Fprintf(env.Stdout, "%s (%d members):\n", ti.Name, len(members))
		for _, m := range members {
			fmt.Fprintf(env.Stdout, "  %s\n", m)
		}
	}
	return nil
}

func cmdGen(args []string, env *Env) error {
	fs := newFlagSet("gen", env)
	preset := fs.Int("preset", 0, "Table 1 preset number (1-8)")
	useDBG := fs.Bool("dbg", false, "generate the DBG dataset")
	specPath := fs.String("spec", "", "generate from a JSON spec file (see internal/synth)")
	out := fs.String("out", "-", "output file")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}

	w := env.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case *useDBG:
		db, _ := dbg.Generate(dbg.Options{})
		return db.Write(w)
	case *specPath != "":
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		spec, err := synth.ReadSpec(f)
		if err != nil {
			return err
		}
		db, err := spec.Generate()
		if err != nil {
			return err
		}
		return db.Write(w)
	case *preset >= 1 && *preset <= 8:
		p := synth.Presets()[*preset-1]
		db, err := p.Build()
		if err != nil {
			return err
		}
		return db.Write(w)
	default:
		return fmt.Errorf("gen: pass -dbg, -preset 1..8, or -spec file.json")
	}
}

func cmdQuery(args []string, env *Env) error {
	fs := newFlagSet("query", env)
	pathExpr := fs.String("path", "", "path expression, e.g. member.publication.conference (required)")
	guided := fs.Bool("guided", false, "use the extracted schema to prune the search")
	oem := fs.Bool("oem", false, "input is OEM syntax")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	if *pathExpr == "" {
		return fmt.Errorf("query: -path is required")
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	var matches []string
	if *guided {
		res, err := schemex.Extract(g, schemex.Options{K: 1})
		if err != nil {
			return err
		}
		matches, err = res.FindPath(*pathExpr)
		if err != nil {
			return err
		}
	} else {
		matches, err = g.FindPath(*pathExpr)
		if err != nil {
			return err
		}
	}
	for _, m := range matches {
		fmt.Fprintln(env.Stdout, m)
	}
	fmt.Fprintf(env.Stdout, "# %d objects match %s\n", len(matches), *pathExpr)
	return nil
}

func cmdConvert(args []string, env *Env) error {
	fs := newFlagSet("convert", env)
	oem := fs.Bool("oem", false, "input is OEM syntax")
	jsonIn := fs.Bool("json", false, "input is a JSON document")
	to := fs.String("to", "text", "output format: text or oem")
	out := fs.String("out", "-", "output file")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraphFmt(path, *oem, *jsonIn, env)
	if err != nil {
		return err
	}
	w := env.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *to {
	case "text":
		return g.Write(w)
	case "oem":
		return g.WriteOEM(w)
	default:
		return fmt.Errorf("convert: unknown output format %q (text, oem)", *to)
	}
}

func cmdCheck(args []string, env *Env) error {
	fs := newFlagSet("check", env)
	schemaPath := fs.String("schema", "", "schema file in arrow notation (required)")
	oem := fs.Bool("oem", false, "input is OEM syntax")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	if *schemaPath == "" {
		return fmt.Errorf("check: -schema is required")
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	schemaBytes, err := os.ReadFile(*schemaPath)
	if err != nil {
		return err
	}
	report, err := schemex.Check(g, string(schemaBytes))
	if err != nil {
		return err
	}
	names := make([]string, 0, len(report.Types))
	for n := range report.Types {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(env.Stdout, "%6d  %s\n", report.Types[n], n)
	}
	fmt.Fprintf(env.Stdout, "excess facts: %d; unclassified objects: %d\n", report.Excess, report.Unclassified)
	if report.Conforms() {
		fmt.Fprintln(env.Stdout, "data conforms to the schema")
		return nil
	}
	return fmt.Errorf("data does not conform to the schema")
}

func cmdValidate(args []string, env *Env) error {
	fs := newFlagSet("validate", env)
	oem := fs.Bool("oem", false, "input is OEM syntax")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	fmt.Fprintf(env.Stdout, "ok: %s\n", g.Stats())
	return nil
}

func cmdStats(args []string, env *Env) error {
	fs := newFlagSet("stats", env)
	oem := fs.Bool("oem", false, "input is OEM syntax")
	topLabels := fs.Int("top", 10, "show the N most frequent labels")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	path, err := fileArg(fs)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, *oem, env)
	if err != nil {
		return err
	}
	db := g.DB()
	fmt.Fprintln(env.Stdout, g.Stats())
	counts := make(map[string]int)
	db.Links(func(e graph.Edge) { counts[e.Label]++ })
	type lc struct {
		label string
		n     int
	}
	ranked := make([]lc, 0, len(counts))
	for l, n := range counts {
		ranked = append(ranked, lc{l, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].label < ranked[j].label
	})
	if *topLabels > len(ranked) {
		*topLabels = len(ranked)
	}
	for _, r := range ranked[:*topLabels] {
		fmt.Fprintf(env.Stdout, "%6d  %s\n", r.n, r.label)
	}
	return nil
}
