package cli

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schemex/internal/wal"
)

// run executes a command line with captured streams.
func run(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	env := &Env{Stdin: strings.NewReader(stdin), Stdout: &out, Stderr: &errb}
	code = Run(args, env)
	return code, out.String(), errb.String()
}

const sampleData = `link gates microsoft is-manager-of
link jobs apple is-manager-of
link microsoft gates is-managed-by
link apple jobs is-managed-by
link gates gn name
link jobs jn name
link microsoft mn name
link apple an name
atomic gn string Gates
atomic jn string Jobs
atomic mn string Microsoft
atomic an string Apple
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := run(t, "")
	if code != 2 || !strings.Contains(stderr, "commands:") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := run(t, "", "frobnicate")
	if code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestHelp(t *testing.T) {
	code, stdout, _ := run(t, "", "help")
	if code != 0 || !strings.Contains(stdout, "extract") {
		t.Fatalf("code=%d stdout=%q", code, stdout)
	}
}

func TestExtractFromStdin(t *testing.T) {
	code, stdout, stderr := run(t, sampleData, "extract", "-k", "2", "-")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "perfect typing: 2 types") {
		t.Errorf("missing perfect-typing line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "type ") || !strings.Contains(stdout, "->name[0]") {
		t.Errorf("missing schema:\n%s", stdout)
	}
}

func TestExtractShowPerfectAndDatalog(t *testing.T) {
	code, stdout, _ := run(t, sampleData, "extract", "-k", "2", "-show-perfect", "-datalog", "-")
	if code != 0 {
		t.Fatal("extract failed")
	}
	if !strings.Contains(stdout, "# minimal perfect typing:") {
		t.Error("missing perfect typing section")
	}
	if !strings.Contains(stdout, ":- link(") {
		t.Error("missing datalog section")
	}
}

func TestPerfectCommand(t *testing.T) {
	path := writeTemp(t, "data.txt", sampleData)
	code, stdout, stderr := run(t, "", "perfect", path)
	if code != 0 {
		t.Fatalf("stderr=%q", stderr)
	}
	if !strings.Contains(stdout, "minimal perfect typing: 2 types") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestSweepCommand(t *testing.T) {
	code, stdout, _ := run(t, sampleData, "sweep", "-")
	if code != 0 {
		t.Fatal("sweep failed")
	}
	if !strings.Contains(stdout, "types  defect") || !strings.Contains(stdout, "suggested number of types") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestSweepCSV(t *testing.T) {
	code, stdout, _ := run(t, sampleData, "sweep", "-csv", "-")
	if code != 0 {
		t.Fatal("sweep -csv failed")
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if lines[0] != "types,defect,excess,deficit,total_distance,unclassified" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) < 2 || !strings.Contains(lines[1], ",") {
		t.Fatalf("csv body:\n%s", stdout)
	}
}

func TestAssignCommand(t *testing.T) {
	code, stdout, _ := run(t, sampleData, "assign", "-k", "2", "-")
	if code != 0 {
		t.Fatal("assign failed")
	}
	if !strings.Contains(stdout, "gates") || !strings.Contains(stdout, "members") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestGenAndRoundtrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dbg.txt")
	code, _, stderr := run(t, "", "gen", "-dbg", "-out", out)
	if code != 0 {
		t.Fatalf("gen failed: %q", stderr)
	}
	code, stdout, _ := run(t, "", "validate", out)
	if code != 0 || !strings.Contains(stdout, "ok:") {
		t.Fatalf("validate failed: %q", stdout)
	}
	code, stdout, _ = run(t, "", "stats", "-top", "3", out)
	if code != 0 || !strings.Contains(stdout, "name") {
		t.Fatalf("stats failed:\n%s", stdout)
	}
}

func TestGenPreset(t *testing.T) {
	code, stdout, _ := run(t, "", "gen", "-preset", "1")
	if code != 0 {
		t.Fatal("gen preset failed")
	}
	if !strings.Contains(stdout, "link ") {
		t.Error("preset output missing link facts")
	}
	code, _, stderr := run(t, "", "gen")
	if code != 1 || !strings.Contains(stderr, "-dbg, -preset 1..8, or -spec") {
		t.Fatalf("gen without args: code=%d stderr=%q", code, stderr)
	}
}

func TestQueryCommand(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	code, stdout, _ := run(t, "", "query", "-path", "is-manager-of.name", data)
	if code != 0 {
		t.Fatal("query failed")
	}
	if !strings.Contains(stdout, "gates") || !strings.Contains(stdout, "jobs") ||
		!strings.Contains(stdout, "2 objects match") {
		t.Errorf("output:\n%s", stdout)
	}
	// Guided mode returns the same matches.
	code, guidedOut, _ := run(t, "", "query", "-guided", "-path", "is-manager-of.name", data)
	if code != 0 || !strings.Contains(guidedOut, "2 objects match") {
		t.Errorf("guided output:\n%s", guidedOut)
	}
	// Missing -path.
	code, _, stderr := run(t, "", "query", data)
	if code != 1 || !strings.Contains(stderr, "-path is required") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	// Bad path expression.
	code, _, _ = run(t, "", "query", "-path", "a..b", data)
	if code != 1 {
		t.Fatal("bad path accepted")
	}
}

func TestConvertCommand(t *testing.T) {
	// JSON -> OEM -> text: every hop must parse.
	code, oemOut, stderr := run(t, `{"a": 1, "kids": [{"x": true}, {"x": false}]}`,
		"convert", "-json", "-to", "oem", "-")
	if code != 0 {
		t.Fatalf("json->oem failed: %q", stderr)
	}
	if !strings.Contains(oemOut, "&root") || !strings.Contains(oemOut, "kids:") {
		t.Fatalf("oem output:\n%s", oemOut)
	}
	code, textOut, _ := run(t, oemOut, "convert", "-oem", "-to", "text", "-")
	if code != 0 {
		t.Fatal("oem->text failed")
	}
	if !strings.Contains(textOut, "link root ") {
		t.Fatalf("text output:\n%s", textOut)
	}
	// Unknown output format.
	code, _, stderr = run(t, "{}", "convert", "-json", "-to", "xml", "-")
	if code != 1 || !strings.Contains(stderr, "unknown output format") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestCheckCommand(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	schema := writeTemp(t, "schema.types", `
type person = ->is-manager-of[firm] & ->name[0] & <-is-managed-by[firm]
type firm = ->is-managed-by[person] & ->name[0] & <-is-manager-of[person]
`)
	code, stdout, _ := run(t, "", "check", "-schema", schema, data)
	if code != 0 {
		t.Fatalf("conforming data rejected:\n%s", stdout)
	}
	if !strings.Contains(stdout, "data conforms") {
		t.Errorf("output:\n%s", stdout)
	}

	// Non-conforming data exits 1.
	bad := writeTemp(t, "bad.txt", sampleData+"link stray gn has-name\n")
	code, stdout, stderr := run(t, "", "check", "-schema", schema, bad)
	if code != 1 {
		t.Fatalf("non-conforming data accepted: %q %q", stdout, stderr)
	}

	// Missing -schema flag.
	code, _, stderr = run(t, "", "check", data)
	if code != 1 || !strings.Contains(stderr, "-schema is required") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestExtractWithSeedAndSorts(t *testing.T) {
	data := writeTemp(t, "d.txt", `
link r1 a1 id
link r2 a2 id
atomic a1 int 1
atomic a2 int 2
`)
	seed := writeTemp(t, "seed.types", "type numbered = ->id[0:int]\n")
	code, stdout, stderr := run(t, "", "extract", "-k", "1", "-sorts", "-seed", seed, data)
	if code != 0 {
		t.Fatalf("stderr=%q", stderr)
	}
	if !strings.Contains(stdout, "type numbered") || !strings.Contains(stdout, "[0:int]") {
		t.Errorf("seeded sorted schema missing:\n%s", stdout)
	}
}

func TestJSONInput(t *testing.T) {
	code, stdout, stderr := run(t, `{"name": "x", "tags": ["a", "b"], "nested": {"k": 1}}`,
		"extract", "-json", "-k", "2", "-")
	if code != 0 {
		t.Fatalf("json extract failed: %q", stderr)
	}
	if !strings.Contains(stdout, "->tags[0]") || !strings.Contains(stdout, "->nested[") {
		t.Errorf("output:\n%s", stdout)
	}
	// -oem and -json together is an error.
	code, _, stderr = run(t, `{}`, "extract", "-json", "-oem", "-")
	if code != 1 || !strings.Contains(stderr, "at most one") {
		t.Fatalf("conflicting flags: code=%d stderr=%q", code, stderr)
	}
}

func TestOEMInput(t *testing.T) {
	code, stdout, _ := run(t, `&a { name: "x", friend: *b } &b { name: "y", friend: *a }`,
		"extract", "-k", "1", "-oem", "-")
	if code != 0 {
		t.Fatal("oem extract failed")
	}
	if !strings.Contains(stdout, "->friend[") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestBadInputErrors(t *testing.T) {
	code, _, stderr := run(t, "garbage here\n", "extract", "-")
	if code != 1 || stderr == "" {
		t.Fatalf("bad input accepted: code=%d", code)
	}
	code, _, _ = run(t, "", "extract", "/nonexistent/file.txt")
	if code != 1 {
		t.Fatal("missing file accepted")
	}
	code, _, _ = run(t, "", "extract") // no file arg
	if code != 1 {
		t.Fatal("missing file arg accepted")
	}
}

// runCtx executes a command line under a caller-supplied context.
func runCtx(t *testing.T, ctx context.Context, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	env := &Env{Stdin: strings.NewReader(stdin), Stdout: &out, Stderr: &errb}
	code = RunContext(ctx, args, env)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	dataFile := writeTemp(t, "data.txt", sampleData)
	cases := []struct {
		name  string
		ctx   context.Context
		stdin string
		args  []string
		want  int
	}{
		{"success", context.Background(), sampleData, []string{"extract", "-k", "2", "-"}, 0},
		{"no args", context.Background(), "", nil, 2},
		{"unknown command", context.Background(), "", []string{"frobnicate"}, 2},
		{"bad flag", context.Background(), "", []string{"extract", "-no-such-flag"}, 2},
		{"missing file", context.Background(), "", []string{"extract", "/no/such/file"}, 1},
		{"bad data", context.Background(), "not a record\n", []string{"extract", "-"}, 1},
		{"cancelled extract", cancelled, sampleData, []string{"extract", "-k", "2", dataFile}, 130},
		{"cancelled sweep", cancelled, sampleData, []string{"sweep", dataFile}, 130},
		{"cancelled assign", cancelled, sampleData, []string{"assign", "-k", "2", dataFile}, 130},
		{"timeout", context.Background(), "", []string{"extract", "-timeout", "1ns", dataFile}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := runCtx(t, c.ctx, c.stdin, c.args...)
			if code != c.want {
				t.Fatalf("exit code %d, want %d (stderr: %q)", code, c.want, stderr)
			}
		})
	}
}

func TestCancelledExtractPrintsPartialStats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dataFile := writeTemp(t, "data.txt", sampleData)
	code, _, stderr := runCtx(t, ctx, "", "extract", "-k", "2", dataFile)
	if code != 130 {
		t.Fatalf("exit code %d, want 130", code)
	}
	if !strings.Contains(stderr, "partial stats") || !strings.Contains(stderr, "objects") {
		t.Fatalf("no partial stats on cancel; stderr: %q", stderr)
	}
}

func TestTimeoutFlagParses(t *testing.T) {
	// A generous timeout must not interfere with a successful run.
	code, stdout, stderr := run(t, sampleData, "extract", "-k", "2", "-timeout", "1m", "-")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "type ") {
		t.Fatalf("no schema printed:\n%s", stdout)
	}
}

func TestApplyPrintsMutatedGraph(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	delta := writeTemp(t, "delta.txt", "link gates jobs knows\nunlink gates gn name\n")
	code, stdout, stderr := run(t, "", "apply", "-d", delta, data)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "link gates jobs knows") {
		t.Errorf("added link missing:\n%s", stdout)
	}
	if strings.Contains(stdout, "link gates gn name") {
		t.Errorf("removed link still present:\n%s", stdout)
	}
}

func TestApplyExtractAndVerbose(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	d1 := writeTemp(t, "d1.txt", "link torvalds linux is-manager-of\nlink linux torvalds is-managed-by\n"+
		"link torvalds tn name\nlink linux ln name\natomic tn string Torvalds\natomic ln string Linux\n")
	d2 := writeTemp(t, "d2.txt", "link gates jobs rival\n")
	code, stdout, stderr := run(t, "", "apply", "-d", d1, "-d", d2, "-extract", "-k", "2", "-v", data)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "after 2 deltas") || !strings.Contains(stdout, "type ") {
		t.Errorf("missing extraction output:\n%s", stdout)
	}
	// Repeated -d files are applied as one coalesced batch; verbose reports
	// the batch and which apply path it took.
	if !strings.Contains(stderr, "# batch: 2 deltas") {
		t.Errorf("verbose batch line missing:\n%s", stderr)
	}
	if !strings.Contains(stderr, "incremental") && !strings.Contains(stderr, "full recompile") {
		t.Errorf("verbose apply path missing:\n%s", stderr)
	}
}

func TestApplyDeltaFromStdin(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	code, stdout, stderr := run(t, "remove gates\n", "apply", "-d", "-", data)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if strings.Contains(stdout, "link gates microsoft is-manager-of") {
		t.Errorf("detached object still linked:\n%s", stdout)
	}
}

func TestApplyLogReplaysAcrossRuns(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	logPath := filepath.Join(t.TempDir(), "apply.wal")

	// First run creates the log and appends one delta.
	code, _, stderr := run(t, "", "apply", "-log", logPath,
		"-d", writeTemp(t, "d1.txt", "link gates jobs knows\n"), data)
	if code != 0 {
		t.Fatalf("first run: code=%d stderr=%q", code, stderr)
	}
	// Second run replays it — no -d needed — so the earlier edit shows in
	// the printed graph alongside the new one.
	code, stdout, stderr := run(t, "", "apply", "-log", logPath, "-v",
		"-d", writeTemp(t, "d2.txt", "link jobs gates knows\n"), data)
	if code != 0 {
		t.Fatalf("second run: code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "link gates jobs knows") || !strings.Contains(stdout, "link jobs gates knows") {
		t.Errorf("logged delta not replayed:\n%s", stdout)
	}
	if !strings.Contains(stderr, "replayed 1 logged deltas") {
		t.Errorf("verbose replay note missing: %q", stderr)
	}
	// Third run with only -log (no -d) replays both.
	code, stdout, _ = run(t, "", "apply", "-log", logPath, data)
	if code != 0 || !strings.Contains(stdout, "link jobs gates knows") {
		t.Fatalf("log-only run: code=%d\n%s", code, stdout)
	}
}

func TestApplyLogTornTailWarning(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	logPath := filepath.Join(t.TempDir(), "apply.wal")
	if code, _, stderr := run(t, "", "apply", "-log", logPath,
		"-d", writeTemp(t, "d.txt", "link gates jobs knows\n"), data); code != 0 {
		t.Fatalf("seed run: code=%d stderr=%q", code, stderr)
	}
	st, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.TruncateAt(logPath, st.Size()-4); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := run(t, "", "apply", "-log", logPath, data)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "torn final record") {
		t.Errorf("no torn-tail warning: %q", stderr)
	}
	// The torn delta dropped; the graph is the base state.
	if strings.Contains(stdout, "link gates jobs knows") {
		t.Errorf("torn delta applied anyway:\n%s", stdout)
	}
}

func TestApplyErrors(t *testing.T) {
	data := writeTemp(t, "data.txt", sampleData)
	if code, _, _ := run(t, "", "apply", data); code != 2 {
		t.Fatalf("missing -d: code=%d, want 2", code)
	}
	bad := writeTemp(t, "bad.txt", "unlink gates apple nope\n")
	code, _, stderr := run(t, "", "apply", "-d", bad, data)
	if code != 1 || !strings.Contains(stderr, "applying") {
		t.Fatalf("invalid delta: code=%d stderr=%q", code, stderr)
	}
	garbled := writeTemp(t, "garbled.txt", "frobnicate x\n")
	if code, _, _ := run(t, "", "apply", "-d", garbled, data); code != 1 {
		t.Fatalf("garbled delta: code=%d, want 1", code)
	}
}

// TestApplyMemBudget: apply under a paging budget produces output identical
// to the fully resident run, -v reports the shard residency stats, and a
// negative budget is a usage error.
func TestApplyMemBudget(t *testing.T) {
	var chain strings.Builder
	for i := 0; i < 255; i++ {
		fmt.Fprintf(&chain, "link n%d n%d next\n", i, i+1)
	}
	data := writeTemp(t, "chain.txt", chain.String())
	d := writeTemp(t, "d.txt", "link n255 n256 next\n")

	code, want, stderr := run(t, "", "apply", "-d", d, "-extract", "-k", "2", data)
	if code != 0 {
		t.Fatalf("resident run: code=%d stderr=%q", code, stderr)
	}
	code, got, stderr := run(t, "", "apply", "-d", d, "-extract", "-k", "2", "-mem-budget", "4096", "-v", data)
	if code != 0 {
		t.Fatalf("budgeted run: code=%d stderr=%q", code, stderr)
	}
	if got != want {
		t.Errorf("budgeted output differs from resident output:\n%s\nvs\n%s", got, want)
	}
	if !strings.Contains(stderr, "# shard residency:") || !strings.Contains(stderr, "faults") {
		t.Errorf("verbose budget run missing residency stats:\n%s", stderr)
	}

	code, _, stderr = run(t, "", "apply", "-d", d, "-mem-budget", "-5", data)
	if code != 2 || !strings.Contains(stderr, "mem-budget") {
		t.Errorf("negative budget: code=%d stderr=%q", code, stderr)
	}
}
