package cluster

import (
	"sort"

	"schemex/internal/typing"
)

// This file covers the bipartite special case of §5.2: when all typed links
// point to atomic objects (relational data, or data from a file of
// records), each type is simply the set of labels on its outgoing links —
// the hypercube has no class-valued dimensions, so coalescing never
// projects it and the greedy engine degenerates to plain weighted set
// clustering. Even this case is NP-hard, per the paper.

// IsBipartiteProgram reports whether every typed link of p targets atomic
// objects. The greedy engine needs no hypercube projection on such
// programs; this predicate is also used by tests and reporting.
func IsBipartiteProgram(p *typing.Program) bool {
	for _, t := range p.Types {
		for _, l := range t.Links {
			if l.Target != typing.AtomicTarget {
				return false
			}
		}
	}
	return true
}

// AttributeSets returns the per-type label sets of a bipartite program —
// the "attributes in the relational case" view of §5.2. It returns false
// when the program is not bipartite.
func AttributeSets(p *typing.Program) ([][]string, bool) {
	if !IsBipartiteProgram(p) {
		return nil, false
	}
	out := make([][]string, len(p.Types))
	for i, t := range p.Types {
		seen := make(map[string]bool, len(t.Links))
		for _, l := range t.Links {
			seen[l.Label] = true
		}
		labels := make([]string, 0, len(seen))
		for l := range seen {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		out[i] = labels
	}
	return out, true
}
