package cluster

import (
	"testing"

	"schemex/internal/perfect"
	"schemex/internal/synth"
	"schemex/internal/typing"
)

func TestIsBipartiteProgram(t *testing.T) {
	bip := typing.MustParse(`
		type a = ->x[0] & ->y[0]
		type b = ->z[0]
	`)
	if !IsBipartiteProgram(bip) {
		t.Fatal("atomic-only program not recognized as bipartite")
	}
	gen := typing.MustParse(`
		type a = ->x[0] & ->ref[b]
		type b = ->z[0]
	`)
	if IsBipartiteProgram(gen) {
		t.Fatal("program with a complex target reported bipartite")
	}
}

func TestAttributeSets(t *testing.T) {
	bip := typing.MustParse(`
		type a = ->y[0] & ->x[0]
		type b = ->z[0] & ->z[0]
	`)
	sets, ok := AttributeSets(bip)
	if !ok || len(sets) != 2 {
		t.Fatalf("sets = %v ok=%v", sets, ok)
	}
	if len(sets[0]) != 2 || sets[0][0] != "x" || sets[0][1] != "y" {
		t.Fatalf("sets[0] = %v, want [x y]", sets[0])
	}
	if len(sets[1]) != 1 || sets[1][0] != "z" {
		t.Fatalf("sets[1] = %v, want [z]", sets[1])
	}
	if _, ok := AttributeSets(typing.MustParse(`type a = ->r[a]`)); ok {
		t.Fatal("AttributeSets accepted a non-bipartite program")
	}
}

// TestBipartiteStage1ProducesBipartiteProgram: bipartite data yields a
// bipartite Stage 1 program (the §5.2 special case arises automatically),
// and the greedy run never projects (distances between untouched clusters
// are stable).
func TestBipartiteStage1ProducesBipartiteProgram(t *testing.T) {
	preset := synth.Presets()[0] // DB1: bipartite
	db, err := preset.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsBipartiteProgram(res.Program) {
		t.Fatal("Stage 1 of bipartite data must be bipartite")
	}
	g := NewGreedy(res.Program.Clone(), Config{})
	before := int(g.distAt(0, 1))
	g.RunTo(res.Program.Len() - 3)
	// Neither 0 nor 1 was merged away? Find two still-active original slots
	// and confirm their distance is unchanged (no projection can occur).
	var a, b = -1, -1
	for i := 0; i < g.n; i++ {
		if g.active[i] && len(g.members[i]) == 1 {
			if a < 0 {
				a = i
			} else if b < 0 {
				b = i
				break
			}
		}
	}
	if a == 0 && b == 1 && int(g.distAt(0, 1)) != before {
		t.Fatal("distance between untouched bipartite clusters changed (spurious projection)")
	}
}
