package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceBest replicates the original full-pair scan over the engine's
// current state, returning the move the unoptimized greedy would take.
func bruteForceBest(g *Greedy) (from, to int, cost float64, ok bool) {
	delta := g.cfg.delta()
	bestCost := math.Inf(1)
	bestFrom, bestTo := -1, -2
	consider := func(f, t int, c float64) {
		if c < bestCost ||
			(c == bestCost && (t < bestTo || (t == bestTo && f < bestFrom))) {
			bestCost, bestFrom, bestTo = c, f, t
		}
	}
	for i := 0; i < g.n; i++ {
		if !g.active[i] {
			continue
		}
		for j := 0; j < g.n; j++ {
			if i == j || !g.active[j] || g.cfg.pinned(j) {
				continue
			}
			d := int(g.distAt(i, j))
			consider(j, i, delta.Eval(g.weight[i], g.weight[j], d, g.L))
		}
		if g.cfg.AllowEmpty && !g.cfg.pinned(i) {
			d := g.size[i]
			w1 := len(g.inEmpty)
			if w1 == 0 {
				w1 = 1
			}
			consider(i, EmptySlot, delta.Eval(w1, g.weight[i], d, g.L)*g.cfg.emptyBias())
		}
	}
	return bestFrom, bestTo, bestCost, bestFrom >= 0
}

// TestCachedSelectionMatchesBruteForce drives full greedy runs over random
// programs under every distance function (and with the empty type and
// pinning mixed in), checking before each step that the cached row selection
// picks exactly the move the original full scan would.
func TestCachedSelectionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(12)
		p := randomClusterProgram(rng, n)
		cfg := Config{Delta: Deltas[trial%len(Deltas)]}
		if trial%4 == 1 {
			cfg.AllowEmpty = true
			cfg.EmptyBias = 0.3
		}
		if trial%5 == 2 {
			cfg.Pinned = make([]bool, n)
			cfg.Pinned[rng.Intn(n)] = true
		}
		g := NewGreedy(p, cfg)
		for step := 0; ; step++ {
			if g.NumActive() < 2 {
				// Both selection strategies stop here by contract.
				if _, ok := g.Step(); ok {
					t.Fatalf("trial %d: Step moved with < 2 active types", trial)
				}
				break
			}
			wantFrom, wantTo, wantCost, wantOK := bruteForceBest(g)
			st, ok := g.Step()
			if ok != wantOK {
				t.Fatalf("trial %d step %d: ok=%v, brute force %v", trial, step, ok, wantOK)
			}
			if !ok {
				break
			}
			if st.From != wantFrom || st.To != wantTo || st.Cost != wantCost {
				t.Fatalf("trial %d step %d: cached picked (%d->%d, %v), brute force (%d->%d, %v)",
					trial, step, st.From, st.To, st.Cost, wantFrom, wantTo, wantCost)
			}
		}
	}
}
