package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"schemex/internal/typing"
)

// TestExample52Distances checks the worked Manhattan distances of
// Example 5.2: τ1 = ->a[0] & ->b[τ2], τ2 = ->a[0] & ->b[τ1],
// τ3 = ->b[τ1] & ->b[τ2] & ->b[τ3]; d(τ1,τ2)=2, d(τ1,τ3)=3, d(τ2,τ3)=3.
func TestExample52Distances(t *testing.T) {
	p := typing.MustParse(`
		type t1 = ->a[0] & ->b[t2]
		type t2 = ->a[0] & ->b[t1]
		type t3 = ->b[t1] & ->b[t2] & ->b[t3]
	`)
	sets := make([]typing.LinkSet, 3)
	for i, ty := range p.Types {
		sets[i] = typing.NewLinkSet(ty.Links)
	}
	cases := []struct{ i, j, want int }{
		{0, 1, 2},
		{0, 2, 3},
		{1, 2, 3},
	}
	for _, c := range cases {
		if got := Manhattan(sets[c.i], sets[c.j]); got != c.want {
			t.Errorf("d(t%d, t%d) = %d, want %d", c.i+1, c.j+1, got, c.want)
		}
		if got := ManhattanSlices(p.Types[c.i].Links, p.Types[c.j].Links); got != c.want {
			t.Errorf("slice d(t%d, t%d) = %d, want %d", c.i+1, c.j+1, got, c.want)
		}
	}
}

func TestManhattanIsMetric(t *testing.T) {
	links := []typing.TypedLink{
		{Dir: typing.Out, Label: "a", Target: typing.AtomicTarget},
		{Dir: typing.Out, Label: "b", Target: 0},
		{Dir: typing.In, Label: "c", Target: 1},
		{Dir: typing.Out, Label: "d", Target: 2},
		{Dir: typing.In, Label: "e", Target: 0},
	}
	mk := func(bits uint8) typing.LinkSet {
		s := make(typing.LinkSet)
		for i, l := range links {
			if bits&(1<<i) != 0 {
				s[l] = true
			}
		}
		return s
	}
	f := func(a, b, c uint8) bool {
		x, y, z := mk(a&31), mk(b&31), mk(c&31)
		dxy, dyx := Manhattan(x, y), Manhattan(y, x)
		if dxy != dyx {
			return false // symmetry
		}
		if (dxy == 0) != (a&31 == b&31) {
			return false // identity of indiscernibles
		}
		return Manhattan(x, z) <= dxy+Manhattan(y, z) // triangle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeltaProperties(t *testing.T) {
	// §5.2 asks for δ increasing in d, decreasing in w1, increasing in w2.
	// δ1 satisfies all three (for L >= 2); δ2 is increasing in d and w2 but
	// constant in w1; δ5 is decreasing in w1 and increasing in w2.
	const L = 10
	if !(Delta1.Eval(5, 5, 2, L) > Delta1.Eval(5, 5, 1, L)) {
		t.Error("delta1 not increasing in d")
	}
	if !(Delta1.Eval(10, 5, 2, L) < Delta1.Eval(5, 5, 2, L)) {
		t.Error("delta1 not decreasing in w1")
	}
	if !(Delta1.Eval(5, 10, 2, L) < Delta1.Eval(5, 5, 2, L)) {
		// δ1 is actually DEcreasing in w2 as well — the paper notes some
		// candidates don't satisfy all properties.
		t.Error("delta1 behaviour in w2 changed")
	}
	if !(Delta2.Eval(1, 5, 3, L) == 15) {
		t.Errorf("delta2(.,5,3) = %v, want 15", Delta2.Eval(1, 5, 3, L))
	}
	if !(Delta5.Eval(10, 5, 2, L) < Delta5.Eval(2, 5, 2, L)) {
		t.Error("delta5 not decreasing in w1")
	}
	if !(Delta5.Eval(5, 10, 2, L) > Delta5.Eval(5, 5, 2, L)) {
		t.Error("delta5 not increasing in w2")
	}
	// d = 0 is free for every function.
	for _, d := range Deltas {
		if got := d.Eval(3, 7, 0, L); got != 0 {
			t.Errorf("%s.Eval(d=0) = %v, want 0", d.Name, got)
		}
	}
}

func TestDeltaByName(t *testing.T) {
	for _, name := range []string{"delta1", "delta2", "delta3", "delta4", "delta5", "weighted-manhattan"} {
		if _, ok := DeltaByName(name); !ok {
			t.Errorf("DeltaByName(%q) not found", name)
		}
	}
	if _, ok := DeltaByName("nope"); ok {
		t.Error("DeltaByName accepted unknown name")
	}
}

// TestExample51Projection reproduces Example 5.1: four types where
// coalescing τ1 and τ2 makes τ3 and τ4 identical via hypercube projection.
func TestExample51Projection(t *testing.T) {
	p := typing.MustParse(`
		type t1 = ->a[0] & ->b[t3]
		type t2 = ->a[0] & ->b[t4]
		type t3 = ->a[0] & ->b[t1]
		type t4 = ->a[0] & ->b[t2]
	`)
	for _, ty := range p.Types {
		ty.Weight = 10
	}
	g := NewGreedy(p, Config{Delta: Delta2})
	// All pairwise distances are 2 initially (defs differ in one link each
	// way); merge t2 into t1.
	g.merge(0, 1)
	// After projection, t3 = ->a[0] & ->b[t1] and t4 = ->a[0] & ->b[t1]:
	// identical, distance 0.
	if d := g.distAt(2, 3); d != 0 {
		t.Fatalf("after coalescing t1,t2: d(t3,t4) = %d, want 0 (projection)", d)
	}
	// The next greedy step must take the free merge.
	st, ok := g.Step()
	if !ok || st.D != 0 || st.Cost != 0 {
		t.Fatalf("next step = %+v, want free merge of t3,t4", st)
	}
}

func TestGreedyRunToAndProgram(t *testing.T) {
	p := typing.MustParse(`
		type a = ->x[0] & ->y[0]
		type b = ->x[0] & ->y[0] & ->z[0]
		type c = ->q[0]
		type d = ->q[0] & ->r[0]
	`)
	weights := []int{10, 3, 8, 2}
	for i, ty := range p.Types {
		ty.Weight = weights[i]
	}
	g := NewGreedy(p, Config{Delta: Delta2})
	if got := g.RunTo(2); got != 2 {
		t.Fatalf("RunTo(2) left %d types", got)
	}
	prog, mapping := g.Program()
	if prog.Len() != 2 {
		t.Fatalf("materialized %d types, want 2", prog.Len())
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// The cheap merges are b->a (d=1, w=3) and d->c (d=1, w=2): mapping
	// must send a,b together and c,d together.
	if mapping[0] != mapping[1] || mapping[2] != mapping[3] || mapping[0] == mapping[2] {
		t.Fatalf("mapping = %v, want {a,b} and {c,d} merged", mapping)
	}
	// Weights accumulate.
	total := 0
	for _, ty := range prog.Types {
		total += ty.Weight
	}
	if total != 23 {
		t.Fatalf("total weight = %d, want 23", total)
	}
	// Survivor definitions are the heavier types' definitions.
	for _, ty := range prog.Types {
		if len(ty.Links) == 3 {
			t.Errorf("survivor kept absorbed type's definition: %v", ty.Links)
		}
	}
	if g.TotalDistance() != float64(1*3+1*2) {
		t.Errorf("TotalDistance = %v, want 5", g.TotalDistance())
	}
	if g.DefectEstimate() != 5 {
		t.Errorf("DefectEstimate = %d, want 5", g.DefectEstimate())
	}
	if len(g.Trace()) != 2 {
		t.Errorf("trace has %d steps, want 2", len(g.Trace()))
	}
}

// TestExample53EmptyType: with the empty type allowed, a small distant type
// is retired to the empty set rather than merged into a faraway big type.
func TestExample53EmptyType(t *testing.T) {
	// τ1: 100000 objects, ->a[0] & ->b[0]; τ2: 1000 objects with k extra
	// links; τ3: 100 objects, ->a[0] & ->b[0] & ->c[0].
	mk := func(k int) *typing.Program {
		p := typing.NewProgram()
		t1 := &typing.Type{Name: "t1", Weight: 100000, Links: []typing.TypedLink{
			{Dir: typing.Out, Label: "a", Target: typing.AtomicTarget},
			{Dir: typing.Out, Label: "b", Target: typing.AtomicTarget},
		}}
		t2 := &typing.Type{Name: "t2", Weight: 1000, Links: []typing.TypedLink{
			{Dir: typing.Out, Label: "a", Target: typing.AtomicTarget},
			{Dir: typing.Out, Label: "b", Target: typing.AtomicTarget},
		}}
		for i := 0; i < k; i++ {
			t2.Links = append(t2.Links, typing.TypedLink{
				Dir: typing.Out, Label: "l" + string(rune('a'+i)), Target: typing.AtomicTarget,
			})
		}
		t3 := &typing.Type{Name: "t3", Weight: 100, Links: []typing.TypedLink{
			{Dir: typing.Out, Label: "a", Target: typing.AtomicTarget},
			{Dir: typing.Out, Label: "b", Target: typing.AtomicTarget},
			{Dir: typing.Out, Label: "c", Target: typing.AtomicTarget},
		}}
		p.Add(t1)
		p.Add(t2)
		p.Add(t3)
		return p
	}
	// Small k: t3 merges into t1 (cost d=1 × w=100 = 100 beats t2's k×1000).
	g := NewGreedy(mk(1), Config{Delta: Delta2, AllowEmpty: true})
	st, _ := g.Step()
	if st.To == EmptySlot || st.From != 2 {
		t.Fatalf("k=1: first move %+v, want t3 -> t1", st)
	}
	// Large k with a bias favoring unclassification: retiring t3 (cost
	// 3×100×bias) beats merging t2 (k×1000) and merging t3 (1×100)? No —
	// the d=1 merge stays cheapest under δ2. With bias 0.2 the empty move
	// costs 60 < 100, so t3 is unclassified first.
	g = NewGreedy(mk(16), Config{Delta: Delta2, AllowEmpty: true, EmptyBias: 0.2})
	st, _ = g.Step()
	if st.To != EmptySlot || st.From != 2 {
		t.Fatalf("k=16 with bias: first move %+v, want t3 -> empty", st)
	}
	prog, mapping := g.Program()
	if prog.Len() != 2 {
		t.Fatalf("after empty move: %d active types, want 2", prog.Len())
	}
	if mapping[2] != EmptySlot {
		t.Fatalf("mapping[2] = %d, want EmptySlot", mapping[2])
	}
}

func TestGreedyMatchesExactOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 15; trial++ {
		p := typing.NewProgram()
		n := 4 + rng.Intn(4)
		for i := 0; i < n; i++ {
			ty := &typing.Type{Name: "t" + string(rune('0'+i)), Weight: 1 + rng.Intn(9)}
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					ty.Links = append(ty.Links, typing.TypedLink{
						Dir: typing.Out, Label: l, Target: typing.AtomicTarget,
					})
				}
			}
			p.Add(ty)
		}
		k := 1 + rng.Intn(3)
		exact, _ := ExactKMedian(p, k)
		greedy := GreedyKMedianCost(p, k)
		if greedy+1e-9 < exact {
			t.Fatalf("trial %d: greedy %v beat exact %v (exact search bug)", trial, greedy, exact)
		}
		// Near-optimality: the greedy heuristic stays within a small factor
		// on these bipartite instances (the paper cites an O(log n) bound).
		if exact > 0 && greedy > 6*exact {
			t.Errorf("trial %d: greedy %v much worse than exact %v", trial, greedy, exact)
		}
	}
}

func TestJumpCluster(t *testing.T) {
	p := typing.MustParse(`
		type a1 = ->x[0] & ->y[0]
		type a2 = ->x[0] & ->y[0] & ->rare[0]
		type b1 = ->p[0] & ->q[0]
		type b2 = ->p[0] & ->q[0] & ->odd[0]
	`)
	weights := []int{20, 2, 15, 1}
	for i, ty := range p.Types {
		ty.Weight = weights[i]
	}
	res := JumpCluster(p, 2)
	if res.Program.Len() != 2 {
		t.Fatalf("JumpCluster produced %d clusters, want 2", res.Program.Len())
	}
	if res.Mapping[0] != res.Mapping[1] || res.Mapping[2] != res.Mapping[3] || res.Mapping[0] == res.Mapping[2] {
		t.Fatalf("mapping = %v, want {a1,a2} and {b1,b2}", res.Mapping)
	}
	// The jump heuristic must drop the rare attributes (support 2 or 1 vs
	// 22 or 16).
	for _, ty := range res.Program.Types {
		for _, l := range ty.Links {
			if l.Label == "rare" || l.Label == "odd" {
				t.Errorf("center kept rare link %v", l)
			}
		}
	}
	// Weights accumulate per cluster.
	got := map[int]bool{}
	for _, ty := range res.Program.Types {
		got[ty.Weight] = true
	}
	if !got[22] || !got[16] {
		t.Errorf("cluster weights wrong: %+v", res.Program.Types)
	}
}

func TestExactKMedianDegenerate(t *testing.T) {
	p := typing.MustParse(`
		type a = ->x[0]
		type b = ->y[0]
	`)
	cost, centers := ExactKMedian(p, 2)
	if cost != 0 || len(centers) != 2 {
		t.Fatalf("k = n should be free, got cost %v centers %v", cost, centers)
	}
	cost, _ = ExactKMedian(p, 5)
	if cost != 0 {
		t.Fatalf("k > n should be free, got %v", cost)
	}
}

func TestGreedyTieBreakDeterministic(t *testing.T) {
	build := func() *typing.Program {
		p := typing.MustParse(`
			type a = ->x[0]
			type b = ->x[0] & ->y[0]
			type c = ->x[0] & ->z[0]
		`)
		for _, ty := range p.Types {
			ty.Weight = 5
		}
		return p
	}
	g1 := NewGreedy(build(), Config{})
	g2 := NewGreedy(build(), Config{})
	g1.RunTo(1)
	g2.RunTo(1)
	tr1, tr2 := g1.Trace(), g2.Trace()
	if len(tr1) != len(tr2) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, tr1[i], tr2[i])
		}
	}
}

func TestDeltaInfinityComparable(t *testing.T) {
	// δ4 = L^d·w2 can overflow to +Inf for large d; the greedy must still
	// pick a move.
	v := Delta4.Eval(1, 1000, 5000, 100)
	if !math.IsInf(v, 1) {
		t.Skipf("expected overflow to +Inf, got %v", v)
	}
	p := typing.MustParse(`
		type a = ->x[0]
		type b = ->y[0]
	`)
	p.Types[0].Weight, p.Types[1].Weight = 1, 1
	g := NewGreedy(p, Config{Delta: Delta4})
	if _, ok := g.Step(); !ok {
		t.Fatal("greedy failed to pick a move with infinite costs")
	}
}
