// Package cluster implements Stage 2 of the paper's method (§5): reducing
// the number of types by greedily coalescing similar types. Types are points
// on the {0,1}^L hypercube of typed links; coalescing two classes projects
// the hypercube (links targeting the absorbed class are rewritten to the
// survivor), which can make further types identical (Example 5.1). Finding
// the optimal k types is NP-hard even for bipartite graphs, so a greedy
// algorithm in the style of facility-location heuristics is used; package
// tests compare it against an exact brute force on tiny instances.
package cluster

import (
	"math"

	"schemex/internal/typing"
)

// Manhattan returns the base distance d of §5.2 between two typed-link
// sets: the number of links in their symmetric difference (the Manhattan
// path between the two points on the binary hypercube).
func Manhattan(a, b typing.LinkSet) int {
	d := 0
	for l := range a {
		if !b[l] {
			d++
		}
	}
	for l := range b {
		if !a[l] {
			d++
		}
	}
	return d
}

// ManhattanSlices is Manhattan over canonical sorted slices.
func ManhattanSlices(a, b []typing.TypedLink) int {
	i, j, d := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			d++
			i++
		case c > 0:
			d++
			j++
		default:
			i++
			j++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

// Delta is a weighted, directional distance between types: δ(w1, w2, d)
// measures the cost of moving the objects of a type with weight w2 into a
// type with weight w1 at Manhattan distance d. L is the total number of
// distinct typed links in the Stage 1 program. The paper (§5.2) asks for δ
// increasing in d, decreasing in w1 and increasing in w2; of the five
// candidates below, δ2 and δ4 are not decreasing in w1, as the paper itself
// notes ("some of them don't satisfy all three properties").
type Delta struct {
	Name string
	Func func(w1, w2, d, L int) float64
}

// Eval applies the function; a zero Manhattan distance always costs 0 (the
// types are already identical, so the move is free).
func (f Delta) Eval(w1, w2, d, L int) float64 {
	if d == 0 {
		return 0
	}
	return f.Func(w1, w2, d, L)
}

// The five candidate distance functions of §5.2.
var (
	// Delta1 is δ1 = L^d / (w1·w2).
	Delta1 = Delta{"delta1", func(w1, w2, d, L int) float64 {
		return math.Pow(float64(L), float64(d)) / (float64(w1) * float64(w2))
	}}
	// Delta2 is δ2 = d·w2, the weighted Manhattan distance used in the
	// paper's experiments; for a single coalescing it measures the defect
	// exactly, and for a series of coalescings it upper-bounds the defect of
	// the final program.
	Delta2 = Delta{"delta2", func(w1, w2, d, L int) float64 {
		return float64(d) * float64(w2)
	}}
	// Delta3 is δ3 = (w1·w2)^(1/d).
	Delta3 = Delta{"delta3", func(w1, w2, d, L int) float64 {
		return math.Pow(float64(w1)*float64(w2), 1/float64(d))
	}}
	// Delta4 is δ4 = L^d · w2.
	Delta4 = Delta{"delta4", func(w1, w2, d, L int) float64 {
		return math.Pow(float64(L), float64(d)) * float64(w2)
	}}
	// Delta5 is δ5 = (w2/w1)^(1/d).
	Delta5 = Delta{"delta5", func(w1, w2, d, L int) float64 {
		return math.Pow(float64(w2)/float64(w1), 1/float64(d))
	}}
	// WeightedManhattan is the paper's experimental choice (δ2).
	WeightedManhattan = Delta2
)

// CacheKey returns a stable identity for memoizing work computed with this
// distance function, and whether one exists. The zero Delta (the δ2 default)
// and every registry function keyed by its name are cacheable; an anonymous
// Func, or a name the registry does not know, is not — func values cannot be
// compared, so reuse across calls would be unsound.
func (f Delta) CacheKey() (string, bool) {
	if f.Func == nil {
		return "", true
	}
	if _, ok := DeltaByName(f.Name); !ok {
		return "", false
	}
	return f.Name, true
}

// Deltas lists the five candidate functions by paper index.
var Deltas = []Delta{Delta1, Delta2, Delta3, Delta4, Delta5}

// DeltaByName returns the distance function with the given name, or false.
func DeltaByName(name string) (Delta, bool) {
	for _, d := range Deltas {
		if d.Name == name {
			return d, true
		}
	}
	if name == "weighted-manhattan" {
		return WeightedManhattan, true
	}
	return Delta{}, false
}
