package cluster

import (
	"math"

	"schemex/internal/typing"
)

// This file provides an exact reference optimizer for tiny instances. The
// paper proves that finding the best k-typing is NP-hard (even for bipartite
// data), so the exact search is exponential and only used to validate the
// greedy heuristic in tests and to demonstrate its near-optimality.
//
// The objective mirrors the greedy's δ2 accounting on the k-median view of
// §5.1: choose k of the n types as centers and move every other type to a
// center, paying d(center, t)·w_t; the total is the δ2 upper bound on the
// defect of the resulting program. Hypercube projection is ignored here
// (projection only lowers distances, so the exact value is a valid
// upper-bound baseline for comparing against the greedy's δ2 total).

// ExactKMedian returns the minimum total cost Σ d(center(t), t)·w_t over all
// choices of k centers among the types of p, together with one optimal
// center set. It is exponential in n choose k; intended for n ≲ 15.
func ExactKMedian(p *typing.Program, k int) (float64, []int) {
	n := len(p.Types)
	if k >= n {
		return 0, identity(n)
	}
	sets := make([]typing.LinkSet, n)
	weights := make([]int, n)
	for i, t := range p.Types {
		sets[i] = typing.NewLinkSet(t.Links)
		weights[i] = t.Weight
		if weights[i] == 0 {
			weights[i] = 1
		}
	}
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			dist[i][j] = Manhattan(sets[i], sets[j])
		}
	}

	best := math.Inf(1)
	var bestCenters []int
	centers := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			cost := 0.0
			for t := 0; t < n; t++ {
				min := math.MaxInt32
				for _, c := range centers {
					if dist[c][t] < min {
						min = dist[c][t]
					}
				}
				cost += float64(min * weights[t])
			}
			if cost < best {
				best = cost
				bestCenters = append([]int(nil), centers...)
			}
			return
		}
		for c := start; c <= n-(k-depth); c++ {
			centers[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)
	return best, bestCenters
}

// GreedyKMedianCost runs the greedy engine down to k types under δ2 and
// returns its δ2 total, for comparison against ExactKMedian.
func GreedyKMedianCost(p *typing.Program, k int) float64 {
	g := NewGreedy(p.Clone(), Config{Delta: Delta2})
	g.RunTo(k)
	return float64(g.DefectEstimate())
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
