package cluster

import (
	"fmt"
	"math"

	"schemex/internal/typing"
)

// EmptySlot is the pseudo-destination of a move that unclassifies a type's
// objects (the "empty set type" of Example 5.3).
const EmptySlot = -1

// Config configures the greedy coalescing.
type Config struct {
	// Delta is the weighted distance function; Delta2 (the weighted
	// Manhattan distance of the paper's experiments) if zero.
	Delta Delta
	// AllowEmpty permits moving a type to the empty set type, i.e. choosing
	// not to classify its objects. The empty type does not count toward the
	// number of types.
	AllowEmpty bool
	// EmptyBias scales the cost of empty moves; values below 1 favor
	// unclassification over distant merges. Defaults to 1.
	EmptyBias float64
	// Pinned marks type slots that must survive clustering: a pinned slot
	// can absorb other types but is never merged away or retired to the
	// empty type. Used for a-priori known types (the §2 extension of
	// integrating data with a known structure). May be nil or shorter than
	// the program; missing entries are unpinned.
	Pinned []bool
}

func (c Config) pinned(slot int) bool {
	return slot < len(c.Pinned) && c.Pinned[slot]
}

func (c Config) delta() Delta {
	if c.Delta.Func == nil {
		return Delta2
	}
	return c.Delta
}

func (c Config) emptyBias() float64 {
	if c.EmptyBias == 0 {
		return 1
	}
	return c.EmptyBias
}

// Step records one coalescing operation.
type Step struct {
	From     int     // slot whose objects were moved
	To       int     // destination slot, or EmptySlot
	D        int     // Manhattan distance at the time of the move
	Cost     float64 // δ value paid
	NumTypes int     // active types after the step
}

// Greedy is the incremental coalescing engine. Construct with NewGreedy,
// then call Step until the desired number of types remains; Program
// materializes the current typing at any point, so a single run yields the
// whole sensitivity curve of §7.2.
type Greedy struct {
	cfg     Config
	links   []typing.LinkSet // slot -> current definition (targets are slots)
	weight  []int
	name    []string
	members [][]int // slot -> original type indices absorbed
	active  []bool
	inEmpty []int // original type indices moved to the empty type

	slotOf []int // original type index -> current slot, or EmptySlot
	dist   [][]int32
	nAct   int
	L      int

	totalDistance  float64
	defectEstimate int
	movedWeight    int // weight retired by the most recent move
	trace          []Step

	// Per-row best-move caches: bestCost[k]/bestTo[k] describe the cheapest
	// move FROM slot k under the current state; rowValid[k] marks rows whose
	// cache is current. Merges invalidate only the affected rows, turning
	// the cubic全-pair rescan into a near-quadratic pass in practice.
	bestCost []float64
	bestTo   []int
	rowValid []bool
}

// NewGreedy initializes the engine from a Stage 1 program. Type weights must
// be set (home-class sizes); link targets refer to type indices of p.
func NewGreedy(p *typing.Program, cfg Config) *Greedy {
	n := len(p.Types)
	g := &Greedy{
		cfg:     cfg,
		links:   make([]typing.LinkSet, n),
		weight:  make([]int, n),
		name:    make([]string, n),
		members: make([][]int, n),
		active:  make([]bool, n),
		slotOf:  make([]int, n),
		nAct:    n,
		L:       p.DistinctLinks(),
	}
	for i, t := range p.Types {
		t.Canonicalize() // sorted-slice distances below require canonical links
		g.links[i] = typing.NewLinkSet(t.Links)
		g.weight[i] = t.Weight
		if g.weight[i] == 0 {
			g.weight[i] = 1
		}
		g.name[i] = t.Name
		g.members[i] = []int{i}
		g.active[i] = true
		g.slotOf[i] = i
	}
	g.dist = make([][]int32, n)
	for i := range g.dist {
		g.dist[i] = make([]int32, n)
	}
	g.bestCost = make([]float64, n)
	g.bestTo = make([]int, n)
	g.rowValid = make([]bool, n)
	// The initial distance matrix is the hot spot for large programs;
	// canonical sorted slices make each pairwise distance a linear merge
	// instead of two map scans. (Later recomputations run on the mutated
	// LinkSets, which only a small touched set ever needs.)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := int32(ManhattanSlices(p.Types[i].Links, p.Types[j].Links))
			g.dist[i][j], g.dist[j][i] = d, d
		}
	}
	return g
}

// NumActive returns the number of active (non-coalesced) types.
func (g *Greedy) NumActive() int { return g.nAct }

// TotalDistance returns the cumulative δ cost paid so far (the "distance"
// curve of Figure 6).
func (g *Greedy) TotalDistance() float64 { return g.totalDistance }

// DefectEstimate returns Σ d·w₂ over the moves so far — the δ2 accounting
// that upper-bounds the defect of the final program (§5.2).
func (g *Greedy) DefectEstimate() int { return g.defectEstimate }

// Trace returns the steps performed so far.
func (g *Greedy) Trace() []Step { return g.trace }

// Step performs the cheapest available move. It reports false when fewer
// than two active types remain and no move was made.
func (g *Greedy) Step() (Step, bool) {
	if g.nAct < 2 {
		return Step{}, false
	}
	bestCost := math.Inf(1)
	bestFrom, bestTo := -1, -2
	for k := 0; k < len(g.links); k++ {
		if !g.active[k] || g.cfg.pinned(k) {
			continue
		}
		if !g.rowValid[k] {
			g.computeRow(k)
		}
		if g.bestTo[k] == -2 {
			continue // no legal move from k
		}
		cost, to := g.bestCost[k], g.bestTo[k]
		if cost < bestCost ||
			(cost == bestCost && (to < bestTo || (to == bestTo && k < bestFrom))) {
			bestCost, bestFrom, bestTo = cost, k, to
		}
	}
	if bestFrom < 0 {
		return Step{}, false
	}
	var bestD int
	if bestTo == EmptySlot {
		bestD = len(g.links[bestFrom])
		g.moveToEmpty(bestFrom)
	} else {
		bestD = int(g.dist[bestTo][bestFrom])
		g.merge(bestTo, bestFrom)
	}
	st := Step{From: bestFrom, To: bestTo, D: bestD, Cost: bestCost, NumTypes: g.nAct}
	g.totalDistance += bestCost
	g.defectEstimate += bestD * g.movedWeight
	g.trace = append(g.trace, st)
	return st, true
}

// RunTo performs steps until k active types remain (or no further move is
// possible). It returns the number of active types afterwards.
func (g *Greedy) RunTo(k int) int {
	for g.nAct > k {
		if _, ok := g.Step(); !ok {
			break
		}
	}
	return g.nAct
}

// computeRow refreshes the cached cheapest move from slot k: the best
// merge destination (ties to the smallest slot, matching the original
// full-scan ordering) and, when allowed, the empty move.
func (g *Greedy) computeRow(k int) {
	delta := g.cfg.delta()
	best := math.Inf(1)
	bestTo := -2
	for m := 0; m < len(g.links); m++ {
		if m == k || !g.active[m] {
			continue
		}
		d := int(g.dist[m][k])
		cost := delta.Eval(g.weight[m], g.weight[k], d, g.L)
		if cost < best || (cost == best && m < bestTo) {
			best, bestTo = cost, m
		}
	}
	if g.cfg.AllowEmpty {
		d := len(g.links[k])
		w1 := len(g.inEmpty)
		if w1 == 0 {
			w1 = 1
		}
		cost := delta.Eval(w1, g.weight[k], d, g.L) * g.cfg.emptyBias()
		if cost < best || (cost == best && EmptySlot < bestTo) {
			best, bestTo = cost, EmptySlot
		}
	}
	g.bestCost[k], g.bestTo[k] = best, bestTo
	g.rowValid[k] = true
}

// merge moves the objects of slot j into slot i: i's definition survives
// (after projection), weights add, and every remaining definition that
// referenced class j is rewritten to reference class i (the hypercube
// projection of §5.1).
func (g *Greedy) merge(i, j int) {
	g.movedWeight = g.weight[j]
	g.weight[i] += g.weight[j]
	g.members[i] = append(g.members[i], g.members[j]...)
	for _, orig := range g.members[j] {
		g.slotOf[orig] = i
	}
	g.active[j] = false
	g.nAct--
	touched := g.project(j, i)
	touched[i] = true
	g.recompute(touched)
	// Repair the row caches. Stale information comes from three places: j
	// is gone, i's weight grew (all move costs into i changed), and the
	// projection changed the touched clusters' definitions, hence every
	// distance to a touched cluster. A row must be recomputed when its
	// cached destination is any of those; otherwise the only way its best
	// can IMPROVE is via one of the changed destinations, which are folded
	// in directly.
	delta := g.cfg.delta()
	for k := range g.links {
		if !g.active[k] || !g.rowValid[k] {
			continue
		}
		if k == i || touched[k] || g.bestTo[k] == j || g.bestTo[k] == i || touchedHas(touched, g.bestTo[k]) {
			g.rowValid[k] = false
			continue
		}
		for t := range touched {
			if t == k || !g.active[t] {
				continue
			}
			d := int(g.dist[t][k])
			cost := delta.Eval(g.weight[t], g.weight[k], d, g.L)
			if cost < g.bestCost[k] || (cost == g.bestCost[k] && t < g.bestTo[k]) {
				g.bestCost[k], g.bestTo[k] = cost, t
			}
		}
	}
	g.rowValid[i] = false
}

func touchedHas(touched map[int]bool, slot int) bool {
	return slot >= 0 && touched[slot]
}

// moveToEmpty retires slot i to the empty type: its objects become
// unclassified, and links referencing class i are dropped from the remaining
// definitions (nothing can witness a link to an unclassified class).
func (g *Greedy) moveToEmpty(i int) {
	g.movedWeight = g.weight[i]
	g.inEmpty = append(g.inEmpty, g.members[i]...)
	for _, orig := range g.members[i] {
		g.slotOf[orig] = EmptySlot
	}
	g.active[i] = false
	g.nAct--
	touched := g.project(i, EmptySlot)
	g.recompute(touched)
	// Empty moves are rare and change the empty type's weight, which feeds
	// every row's empty candidate: invalidate everything.
	for k := range g.rowValid {
		g.rowValid[k] = false
	}
}

// project rewrites links targeting slot old: retargeted to repl (merge) or
// removed (repl == EmptySlot). It returns the slots whose definitions
// changed.
func (g *Greedy) project(old, repl int) map[int]bool {
	touched := make(map[int]bool)
	for c := range g.links {
		if !g.active[c] {
			continue
		}
		var changedLinks []typing.TypedLink
		for l := range g.links[c] {
			if l.Target == old {
				changedLinks = append(changedLinks, l)
			}
		}
		if len(changedLinks) == 0 {
			continue
		}
		for _, l := range changedLinks {
			delete(g.links[c], l)
			if repl != EmptySlot {
				nl := l
				nl.Target = repl
				g.links[c][nl] = true
			}
		}
		touched[c] = true
	}
	return touched
}

// recompute refreshes distance rows for the touched slots.
func (g *Greedy) recompute(touched map[int]bool) {
	for c := range touched {
		if !g.active[c] {
			continue
		}
		for x := range g.links {
			if x == c || !g.active[x] {
				continue
			}
			d := int32(Manhattan(g.links[c], g.links[x]))
			g.dist[c][x], g.dist[x][c] = d, d
		}
	}
}

// Program materializes the current typing: the active slots become a compact
// program (weights = accumulated weights), and the returned slice maps every
// original type index to its compact cluster index, or EmptySlot for types
// retired to the empty type.
func (g *Greedy) Program() (*typing.Program, []int) {
	compact := make(map[int]int)
	p := typing.NewProgram()
	for slot := range g.links {
		if !g.active[slot] {
			continue
		}
		compact[slot] = len(p.Types)
		t := &typing.Type{Name: g.name[slot], Weight: g.weight[slot]}
		for l := range g.links[slot] {
			t.Links = append(t.Links, l)
		}
		p.Add(t)
	}
	// Remap link targets from slots to compact indices.
	for _, t := range p.Types {
		for li, l := range t.Links {
			if l.Target == typing.AtomicTarget {
				continue
			}
			ci, ok := compact[l.Target]
			if !ok {
				panic(fmt.Sprintf("cluster: link targets inactive slot %d", l.Target))
			}
			t.Links[li].Target = ci
		}
		t.Canonicalize()
	}
	mapping := make([]int, len(g.slotOf))
	for orig, slot := range g.slotOf {
		if slot == EmptySlot {
			mapping[orig] = EmptySlot
		} else {
			mapping[orig] = compact[slot]
		}
	}
	return p, mapping
}
