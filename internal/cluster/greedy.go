package cluster

import (
	"fmt"
	"math"

	"schemex/internal/bitset"
	"schemex/internal/compile"
	"schemex/internal/par"
	"schemex/internal/typing"
)

// EmptySlot is the pseudo-destination of a move that unclassifies a type's
// objects (the "empty set type" of Example 5.3).
const EmptySlot = -1

// Config configures the greedy coalescing.
type Config struct {
	// Delta is the weighted distance function; Delta2 (the weighted
	// Manhattan distance of the paper's experiments) if zero.
	Delta Delta
	// AllowEmpty permits moving a type to the empty set type, i.e. choosing
	// not to classify its objects. The empty type does not count toward the
	// number of types.
	AllowEmpty bool
	// EmptyBias scales the cost of empty moves; values below 1 favor
	// unclassification over distant merges. Defaults to 1.
	EmptyBias float64
	// Pinned marks type slots that must survive clustering: a pinned slot
	// can absorb other types but is never merged away or retired to the
	// empty type. Used for a-priori known types (the §2 extension of
	// integrating data with a known structure). May be nil or shorter than
	// the program; missing entries are unpinned.
	Pinned []bool
	// Check, if non-nil, is a cooperative cancellation checkpoint consulted
	// when seeding the distance matrix and at the top of every Step. A
	// non-nil return makes the engine refuse further moves; the error is
	// available from Err. Checks never alter any computed distance or move,
	// so the merge sequence stays bit-identical.
	Check func() error
	// Parallelism bounds the worker goroutines used for distance-matrix
	// seeding, touched-row recomputation, and batched best-move repair;
	// <= 0 means one per CPU, 1 runs everything inline. The merge sequence
	// and every reported cost are bit-identical at any setting (per-shard
	// bests are folded with index tie-breaks).
	Parallelism int
}

func (c Config) pinned(slot int) bool {
	return slot < len(c.Pinned) && c.Pinned[slot]
}

func (c Config) delta() Delta {
	if c.Delta.Func == nil {
		return Delta2
	}
	return c.Delta
}

func (c Config) emptyBias() float64 {
	if c.EmptyBias == 0 {
		return 1
	}
	return c.EmptyBias
}

// Step records one coalescing operation.
type Step struct {
	From     int     // slot whose objects were moved
	To       int     // destination slot, or EmptySlot
	D        int     // Manhattan distance at the time of the move
	Cost     float64 // δ value paid
	NumTypes int     // active types after the step
}

// Greedy is the incremental coalescing engine. Construct with NewGreedy,
// then call Step until the desired number of types remains; Program
// materializes the current typing at any point, so a single run yields the
// whole sensitivity curve of §7.2.
//
// Internally every type definition is a point on the {0,1}^U hypercube of
// interned typed links: a link is a (base, target) pair where the base
// carries direction/label/sort/value and the target column is the atomic
// pseudo-slot or one of the n original type slots. Definitions are bitsets
// over that closed universe, so the §5.2 Manhattan distance is a word-wise
// popcount (bitset.XorCount) and the §5.1 hypercube projection is a column
// rewrite — no map walks on the hot path.
type Greedy struct {
	cfg     Config
	workers int

	bases []typing.TypedLink // base id -> representative link (Target meaningless)
	// Base interning. With a compiled snapshot, plain bases (no sort or
	// value constraint, label present in the data) are keyed arithmetically
	// as dir*nL+labelID into plainBase — the universe comes pre-interned
	// from the snapshot's label table and no map is built for them.
	// Constrained bases and labels absent from the data (seed schemas may
	// reference either) fall back to baseID; without a snapshot everything
	// goes through baseID.
	snap      *compile.Snapshot
	plainBase []int32
	baseID    map[typing.TypedLink]int
	stride    int // columns per base: column 0 = atomic, column s+1 = slot s

	set     []*bitset.Set // slot -> definition over the universe
	size    []int         // slot -> |definition| (cached popcount)
	weight  []int
	name    []string
	members [][]int // slot -> original type indices absorbed
	active  []bool
	inEmpty []int // original type indices moved to the empty type

	err error // sticky cancellation error; set once, refuses further moves

	slotOf []int    // original type index -> current slot, or EmptySlot
	dist   []uint32 // strict upper triangle of the n×n distance matrix, row-major
	// distShared marks dist as aliased by a captured State (or by the parent
	// State a fully-clean warm start aliased): the first mutating move clones
	// it, so captures stay immutable and clean reuse never copies up front.
	distShared bool
	prog       *typing.Program // the pre-clustering program the engine was seeded from
	warmState  *State          // parent state when seeding aliased it wholesale
	seedCopied int             // matrix cells copied from a parent State
	seedCount  int             // matrix cells popcounted at seeding time
	n          int             // original slot count (fixed)
	nAct       int
	L          int

	totalDistance  float64
	defectEstimate int
	movedWeight    int // weight retired by the most recent move
	trace          []Step

	// Per-row best-move caches: bestCost[k]/bestTo[k] describe the cheapest
	// move FROM slot k under the current state; rowValid[k] marks rows whose
	// cache is current. Merges invalidate only the affected rows, turning
	// the cubic all-pair rescan into a near-quadratic pass in practice.
	bestCost []float64
	bestTo   []int
	rowValid []bool

	rowQueue    []int  // scratch: stale rows gathered per Step
	touchedMark []bool // scratch: touched-slot membership during a move
}

// NewGreedy initializes the engine from a Stage 1 program. Type weights must
// be set (home-class sizes); link targets refer to type indices of p.
func NewGreedy(p *typing.Program, cfg Config) *Greedy {
	return NewGreedySnap(p, nil, cfg)
}

// NewGreedySnap is NewGreedy with the typed-link universe pre-interned from
// a compiled snapshot: plain link bases are resolved arithmetically against
// the snapshot's label table instead of through a freshly built map. A nil
// snapshot falls back to map-only interning. The engine's behavior is
// identical either way (base IDs only index hypercube columns; distances
// and the merge sequence do not depend on their order).
func NewGreedySnap(p *typing.Program, snap *compile.Snapshot, cfg Config) *Greedy {
	return NewGreedySnapWarm(p, snap, cfg, nil)
}

// NewGreedySnapWarm is NewGreedySnap with an optional warm start: matrix
// cells between two slots that w maps onto a parent State are copied from the
// captured triangle instead of popcounted (see the package comment of
// state.go for why the copy is exact). When every slot maps identically the
// parent triangle is aliased outright — no cells are copied or counted until
// the first merge clones it. A nil or unusable w is exactly NewGreedySnap;
// the seeded matrix, the merge sequence, and every reported cost are
// bit-identical either way, at any Parallelism.
func NewGreedySnapWarm(p *typing.Program, snap *compile.Snapshot, cfg Config, w *Warm) *Greedy {
	n := len(p.Types)
	g := &Greedy{
		cfg:         cfg,
		workers:     par.Workers(cfg.Parallelism),
		snap:        snap,
		prog:        p,
		stride:      n + 1,
		weight:      make([]int, n),
		name:        make([]string, n),
		members:     make([][]int, n),
		active:      make([]bool, n),
		slotOf:      make([]int, n),
		n:           n,
		nAct:        n,
		L:           p.DistinctLinks(),
		touchedMark: make([]bool, n),
	}
	if snap != nil {
		g.plainBase = make([]int32, 2*snap.NumLabels())
		for i := range g.plainBase {
			g.plainBase[i] = -1
		}
	}
	for _, t := range p.Types {
		for _, l := range t.Links {
			g.internBase(baseKey(l))
		}
	}
	g.set = bitset.NewBlock(n, len(g.bases)*g.stride)
	g.size = make([]int, n)
	memberBacking := make([]int, n) // one arena; merges grow out of it via append
	for i, t := range p.Types {
		for _, l := range t.Links {
			g.set[i].Set(g.bitOf(l))
		}
		g.size[i] = g.set[i].Count()
		g.weight[i] = t.Weight
		if g.weight[i] == 0 {
			g.weight[i] = 1
		}
		g.name[i] = t.Name
		memberBacking[i] = i
		g.members[i] = memberBacking[i : i+1 : i+1]
		g.active[i] = true
		g.slotOf[i] = i
	}
	// The initial distance matrix is the hot spot for large programs: the
	// strict upper triangle is stored flat (half the memory of a square
	// matrix, contiguous rows) and seeded with the popcount kernel. Rows
	// shrink toward the end of the triangle, so they are scheduled
	// dynamically; each row has a single writer. A warm start replaces the
	// popcount with a copy for every clean-clean cell (identical by the
	// renaming argument in state.go), or aliases the parent triangle outright
	// when the mapping is the identity.
	tri := n * (n - 1) / 2
	switch {
	case w.usable(n) && w.isIdentity(n):
		g.dist = w.State.dist
		g.distShared = true
		g.warmState = w.State
		g.seedCopied = tri
	case w.usable(n):
		st, m := w.State, w.Map
		clean := 0
		for _, p := range m {
			if p != DirtySlot {
				clean++
			}
		}
		g.seedCopied = clean * (clean - 1) / 2
		g.seedCount = tri - g.seedCopied
		g.dist = make([]uint32, tri)
		g.err = par.DoItemsErr(g.workers, n-1, func(i int) error {
			if cfg.Check != nil {
				if err := cfg.Check(); err != nil {
					return err
				}
			}
			row := g.dist[g.rowOffset(i):]
			si := g.set[i]
			pi := m[i]
			for j := i + 1; j < n; j++ {
				if pi != DirtySlot && m[j] != DirtySlot {
					row[j-i-1] = st.at(pi, m[j])
				} else {
					row[j-i-1] = uint32(si.XorCount(g.set[j]))
				}
			}
			return nil
		})
	default:
		g.seedCount = tri
		g.dist = make([]uint32, tri)
		g.err = par.DoItemsErr(g.workers, n-1, func(i int) error {
			if cfg.Check != nil {
				if err := cfg.Check(); err != nil {
					return err
				}
			}
			row := g.dist[g.rowOffset(i):]
			si := g.set[i]
			for j := i + 1; j < n; j++ {
				row[j-i-1] = uint32(si.XorCount(g.set[j]))
			}
			return nil
		})
	}
	g.bestCost = make([]float64, n)
	g.bestTo = make([]int, n)
	g.rowValid = make([]bool, n)
	return g
}

// baseKey normalizes a link to its universe base: everything but the target.
func baseKey(l typing.TypedLink) typing.TypedLink {
	l.Target = 0
	return l
}

// plainSlot returns the arithmetic interning cell of a base key, or nil when
// the key cannot be keyed through the snapshot (no snapshot, constrained
// base, or a label absent from the data).
func (g *Greedy) plainSlot(key typing.TypedLink) *int32 {
	if g.plainBase == nil || key.Sort != typing.AnySort || key.HasValue {
		return nil
	}
	lid, ok := g.snap.LabelID(key.Label)
	if !ok {
		return nil
	}
	return &g.plainBase[int(key.Dir)*g.snap.NumLabels()+lid]
}

// internBase assigns the key a base ID if it does not have one yet.
func (g *Greedy) internBase(key typing.TypedLink) {
	if cell := g.plainSlot(key); cell != nil {
		if *cell < 0 {
			*cell = int32(len(g.bases))
			g.bases = append(g.bases, key)
		}
		return
	}
	if g.baseID == nil {
		g.baseID = make(map[typing.TypedLink]int)
	}
	if _, ok := g.baseID[key]; !ok {
		g.baseID[key] = len(g.bases)
		g.bases = append(g.bases, key)
	}
}

// baseOf resolves the base ID of an already-interned key.
func (g *Greedy) baseOf(key typing.TypedLink) int {
	if cell := g.plainSlot(key); cell != nil {
		return int(*cell)
	}
	return g.baseID[key]
}

// bitOf returns the universe bit index of a concrete typed link.
func (g *Greedy) bitOf(l typing.TypedLink) int {
	col := 0
	if l.Target != typing.AtomicTarget {
		col = l.Target + 1
	}
	return g.baseOf(baseKey(l))*g.stride + col
}

// rowOffset returns the flat index of cell (i, i+1) in the strict upper
// triangle.
func (g *Greedy) rowOffset(i int) int {
	return i*(g.n-1) - i*(i-1)/2
}

// distAt returns the current Manhattan distance between slots i and j.
func (g *Greedy) distAt(i, j int) uint32 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return g.dist[g.rowOffset(i)+j-i-1]
}

func (g *Greedy) setDist(i, j int, d uint32) {
	if i > j {
		i, j = j, i
	}
	g.dist[g.rowOffset(i)+j-i-1] = d
}

// State captures the engine's seeded pre-merge matrix for warm re-entry into
// a later engine (NewGreedySnapWarm). It must be called before the first
// Step — the matrix is mutated by moves — and returns nil afterwards (or
// after a cancellation). Capturing is O(1): the triangle is aliased and the
// engine clones it lazily on its first move, so a capture never copies; when
// the engine was itself warm-started through the identity mapping, the
// parent's State is returned unchanged.
func (g *Greedy) State() *State {
	if len(g.trace) > 0 || g.err != nil {
		return nil
	}
	if g.warmState != nil {
		return g.warmState
	}
	g.distShared = true
	return &State{prog: g.prog, n: g.n, dist: g.dist}
}

// SeedStats reports how the distance matrix was seeded: cells copied from a
// parent State (or aliased wholesale, for an identity warm start) versus
// cells popcounted from the definitions.
func (g *Greedy) SeedStats() (copied, counted int) { return g.seedCopied, g.seedCount }

// ensureDistOwned clones the triangle before the first mutating move when it
// is aliased by a captured (or parent) State.
func (g *Greedy) ensureDistOwned() {
	if g.distShared {
		g.dist = append([]uint32(nil), g.dist...)
		g.distShared = false
		g.warmState = nil
	}
}

// NumActive returns the number of active (non-coalesced) types.
func (g *Greedy) NumActive() int { return g.nAct }

// TotalDistance returns the cumulative δ cost paid so far (the "distance"
// curve of Figure 6).
func (g *Greedy) TotalDistance() float64 { return g.totalDistance }

// DefectEstimate returns Σ d·w₂ over the moves so far — the δ2 accounting
// that upper-bounds the defect of the final program (§5.2).
func (g *Greedy) DefectEstimate() int { return g.defectEstimate }

// Trace returns the steps performed so far.
func (g *Greedy) Trace() []Step { return g.trace }

// Err returns the cancellation error that stopped the engine, if any. Once
// set (by Config.Check failing during NewGreedy or Step), every further Step
// reports no move; the partially coalesced state remains readable.
func (g *Greedy) Err() error { return g.err }

// Step performs the cheapest available move. It reports false when fewer
// than two active types remain and no move was made.
func (g *Greedy) Step() (Step, bool) {
	if g.err != nil || g.nAct < 2 {
		return Step{}, false
	}
	if g.cfg.Check != nil {
		if err := g.cfg.Check(); err != nil {
			g.err = err
			return Step{}, false
		}
	}
	// Refresh stale row caches as a parallel batch: each row is an
	// independent scan writing only its own cache slot, so the batch is
	// race-free and identical to recomputing rows one at a time.
	rows := g.rowQueue[:0]
	for k := 0; k < g.n; k++ {
		if g.active[k] && !g.cfg.pinned(k) && !g.rowValid[k] {
			rows = append(rows, k)
		}
	}
	g.rowQueue = rows
	par.DoItems(g.workers, len(rows), func(ri int) { g.computeRow(rows[ri]) })

	bestCost := math.Inf(1)
	bestFrom, bestTo := -1, -2
	for k := 0; k < g.n; k++ {
		if !g.active[k] || g.cfg.pinned(k) {
			continue
		}
		if g.bestTo[k] == -2 {
			continue // no legal move from k
		}
		cost, to := g.bestCost[k], g.bestTo[k]
		if cost < bestCost ||
			(cost == bestCost && (to < bestTo || (to == bestTo && k < bestFrom))) {
			bestCost, bestFrom, bestTo = cost, k, to
		}
	}
	if bestFrom < 0 {
		return Step{}, false
	}
	var bestD int
	if bestTo == EmptySlot {
		bestD = g.size[bestFrom]
		g.moveToEmpty(bestFrom)
	} else {
		bestD = int(g.distAt(bestTo, bestFrom))
		g.merge(bestTo, bestFrom)
	}
	st := Step{From: bestFrom, To: bestTo, D: bestD, Cost: bestCost, NumTypes: g.nAct}
	g.totalDistance += bestCost
	g.defectEstimate += bestD * g.movedWeight
	g.trace = append(g.trace, st)
	return st, true
}

// RunTo performs steps until k active types remain (or no further move is
// possible). It returns the number of active types afterwards.
func (g *Greedy) RunTo(k int) int {
	for g.nAct > k {
		if _, ok := g.Step(); !ok {
			break
		}
	}
	return g.nAct
}

// computeRow refreshes the cached cheapest move from slot k: the best
// merge destination (ties to the smallest slot, matching the original
// full-scan ordering) and, when allowed, the empty move.
func (g *Greedy) computeRow(k int) {
	delta := g.cfg.delta()
	best := math.Inf(1)
	bestTo := -2
	for m := 0; m < g.n; m++ {
		if m == k || !g.active[m] {
			continue
		}
		d := int(g.distAt(m, k))
		cost := delta.Eval(g.weight[m], g.weight[k], d, g.L)
		if cost < best || (cost == best && m < bestTo) {
			best, bestTo = cost, m
		}
	}
	if g.cfg.AllowEmpty {
		d := g.size[k]
		w1 := len(g.inEmpty)
		if w1 == 0 {
			w1 = 1
		}
		cost := delta.Eval(w1, g.weight[k], d, g.L) * g.cfg.emptyBias()
		if cost < best || (cost == best && EmptySlot < bestTo) {
			best, bestTo = cost, EmptySlot
		}
	}
	g.bestCost[k], g.bestTo[k] = best, bestTo
	g.rowValid[k] = true
}

// merge moves the objects of slot j into slot i: i's definition survives
// (after projection), weights add, and every remaining definition that
// referenced class j is rewritten to reference class i (the hypercube
// projection of §5.1).
func (g *Greedy) merge(i, j int) {
	g.ensureDistOwned()
	g.movedWeight = g.weight[j]
	g.weight[i] += g.weight[j]
	g.members[i] = append(g.members[i], g.members[j]...)
	for _, orig := range g.members[j] {
		g.slotOf[orig] = i
	}
	g.active[j] = false
	g.nAct--
	touched := g.project(j, i)
	// i's move costs changed (its weight grew) even if its definition did
	// not; treat it as touched so its distances and dependents refresh.
	if !g.touchedMark[i] {
		g.touchedMark[i] = true
		touched = insertSorted(touched, i)
	}
	g.recompute(touched)
	g.repairRows(touched, j, i)
	for _, c := range touched {
		g.touchedMark[c] = false
	}
	g.rowValid[i] = false
}

// repairRows repairs the row caches after merging j into i. Stale
// information comes from three places: j is gone, i's weight grew (all move
// costs into i changed), and the projection changed the touched clusters'
// definitions, hence every distance to a touched cluster. A row must be
// recomputed when its cached destination is any of those; otherwise the
// only way its best can IMPROVE is via one of the changed destinations,
// which are folded in directly (in ascending slot order, preserving the
// smallest-slot tie-break). Each row touches only its own cache entries, so
// rows are repaired in parallel.
func (g *Greedy) repairRows(touched []int, j, i int) {
	delta := g.cfg.delta()
	par.DoItems(g.workers, g.n, func(k int) {
		if !g.active[k] || !g.rowValid[k] {
			return
		}
		to := g.bestTo[k]
		if k == i || g.touchedMark[k] || to == j || to == i || (to >= 0 && g.touchedMark[to]) {
			g.rowValid[k] = false
			return
		}
		for _, t := range touched {
			if t == k || !g.active[t] {
				continue
			}
			d := int(g.distAt(t, k))
			cost := delta.Eval(g.weight[t], g.weight[k], d, g.L)
			if cost < g.bestCost[k] || (cost == g.bestCost[k] && t < g.bestTo[k]) {
				g.bestCost[k], g.bestTo[k] = cost, t
			}
		}
	})
}

// moveToEmpty retires slot i to the empty type: its objects become
// unclassified, and links referencing class i are dropped from the remaining
// definitions (nothing can witness a link to an unclassified class).
func (g *Greedy) moveToEmpty(i int) {
	g.ensureDistOwned()
	g.movedWeight = g.weight[i]
	g.inEmpty = append(g.inEmpty, g.members[i]...)
	for _, orig := range g.members[i] {
		g.slotOf[orig] = EmptySlot
	}
	g.active[i] = false
	g.nAct--
	touched := g.project(i, EmptySlot)
	g.recompute(touched)
	for _, c := range touched {
		g.touchedMark[c] = false
	}
	// Empty moves are rare and change the empty type's weight, which feeds
	// every row's empty candidate: invalidate everything.
	for k := range g.rowValid {
		g.rowValid[k] = false
	}
}

// project rewrites links targeting slot old: retargeted to repl (merge) or
// removed (repl == EmptySlot). On the hypercube this is a column rewrite:
// for every base, a bit in old's column is cleared and, for a merge, the
// bit in repl's column is set (collapsing duplicates for free). It returns
// the sorted slots whose definitions changed, with touchedMark set for each.
func (g *Greedy) project(old, repl int) []int {
	var touched []int
	colOld := old + 1
	for c := 0; c < g.n; c++ {
		if !g.active[c] {
			continue
		}
		s := g.set[c]
		changed := false
		for b := range g.bases {
			id := b*g.stride + colOld
			if !s.Test(id) {
				continue
			}
			s.Clear(id)
			if repl != EmptySlot {
				s.Set(b*g.stride + repl + 1)
			}
			changed = true
		}
		if changed {
			g.size[c] = s.Count()
			g.touchedMark[c] = true
			touched = append(touched, c)
		}
	}
	return touched
}

func insertSorted(xs []int, v int) []int {
	i := 0
	for i < len(xs) && xs[i] < v {
		i++
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// recompute refreshes the distance cells incident to the touched slots
// (touchedMark must be set for them). Work is sharded by touched slot; a
// touched–touched pair is computed only by its larger member, so every
// matrix cell has exactly one writer and the batch is race-free.
func (g *Greedy) recompute(touched []int) {
	par.DoItems(g.workers, len(touched), func(ti int) {
		c := touched[ti]
		sc := g.set[c]
		for x := 0; x < g.n; x++ {
			if x == c || !g.active[x] {
				continue
			}
			if g.touchedMark[x] && x > c {
				continue // the (c, x) cell is x's job
			}
			g.setDist(c, x, uint32(sc.XorCount(g.set[x])))
		}
	})
}

// Program materializes the current typing: the active slots become a compact
// program (weights = accumulated weights), and the returned slice maps every
// original type index to its compact cluster index, or EmptySlot for types
// retired to the empty type.
func (g *Greedy) Program() (*typing.Program, []int) {
	compact := make(map[int]int)
	p := typing.NewProgram()
	for slot := 0; slot < g.n; slot++ {
		if !g.active[slot] {
			continue
		}
		compact[slot] = len(p.Types)
		t := &typing.Type{Name: g.name[slot], Weight: g.weight[slot]}
		g.set[slot].ForEach(func(id int) {
			l := g.bases[id/g.stride]
			if col := id % g.stride; col == 0 {
				l.Target = typing.AtomicTarget
			} else {
				l.Target = col - 1
			}
			t.Links = append(t.Links, l)
		})
		p.Add(t)
	}
	// Remap link targets from slots to compact indices.
	for _, t := range p.Types {
		for li, l := range t.Links {
			if l.Target == typing.AtomicTarget {
				continue
			}
			ci, ok := compact[l.Target]
			if !ok {
				panic(fmt.Sprintf("cluster: link targets inactive slot %d", l.Target))
			}
			t.Links[li].Target = ci
		}
		t.Canonicalize()
	}
	mapping := make([]int, len(g.slotOf))
	for orig, slot := range g.slotOf {
		if slot == EmptySlot {
			mapping[orig] = EmptySlot
		} else {
			mapping[orig] = compact[slot]
		}
	}
	return p, mapping
}
