package cluster

import (
	"math/rand"
	"testing"

	"schemex/internal/typing"
)

// randomClusterProgram builds a random program whose link targets are valid
// self-referencing indices, with random weights — fuel for the invariant
// tests below.
func randomClusterProgram(rng *rand.Rand, n int) *typing.Program {
	labels := []string{"a", "b", "c", "d"}
	p := typing.NewProgram()
	for i := 0; i < n; i++ {
		ty := &typing.Type{Name: "t" + itoa(i), Weight: 1 + rng.Intn(20)}
		for j := 0; j < 1+rng.Intn(4); j++ {
			l := typing.TypedLink{Label: labels[rng.Intn(len(labels))]}
			switch rng.Intn(3) {
			case 0:
				l.Dir, l.Target = typing.Out, typing.AtomicTarget
			case 1:
				l.Dir, l.Target = typing.Out, rng.Intn(n)
			default:
				l.Dir, l.Target = typing.In, rng.Intn(n)
			}
			ty.Links = append(ty.Links, l)
		}
		p.Add(ty)
	}
	return p
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// TestGreedyInvariants checks, across random programs and every intermediate
// k of a full run: total weight is conserved, the materialized program
// validates, the mapping covers every original type, and per-cluster weights
// equal the mapped weight sums.
func TestGreedyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(10)
		orig := randomClusterProgram(rng, n)
		totalWeight := 0
		origWeights := make([]int, n)
		for i, ty := range orig.Types {
			totalWeight += ty.Weight
			origWeights[i] = ty.Weight
		}
		allowEmpty := trial%3 == 0
		g := NewGreedy(orig.Clone(), Config{Delta: Deltas[trial%len(Deltas)], AllowEmpty: allowEmpty, EmptyBias: 0.5})
		for {
			prog, mapping := g.Program()
			if err := prog.Validate(); err != nil {
				t.Fatalf("trial %d at k=%d: invalid program: %v\n%s", trial, g.NumActive(), err, prog)
			}
			if prog.Len() != g.NumActive() {
				t.Fatalf("trial %d: program size %d != active %d", trial, prog.Len(), g.NumActive())
			}
			if len(mapping) != n {
				t.Fatalf("trial %d: mapping covers %d of %d types", trial, len(mapping), n)
			}
			// Weight accounting: each cluster's weight is the sum of the
			// original weights mapped to it; retired weight is excluded.
			sums := make([]int, prog.Len())
			retired := 0
			for i, c := range mapping {
				if c == EmptySlot {
					retired += origWeights[i]
					continue
				}
				if c < 0 || c >= prog.Len() {
					t.Fatalf("trial %d: mapping[%d]=%d out of range", trial, i, c)
				}
				sums[c] += origWeights[i]
			}
			for ci, ty := range prog.Types {
				if ty.Weight != sums[ci] {
					t.Fatalf("trial %d at k=%d: cluster %d weight %d != mapped sum %d",
						trial, g.NumActive(), ci, ty.Weight, sums[ci])
				}
			}
			clusterTotal := 0
			for _, ty := range prog.Types {
				clusterTotal += ty.Weight
			}
			if clusterTotal+retired != totalWeight {
				t.Fatalf("trial %d: weight not conserved: %d + %d retired != %d",
					trial, clusterTotal, retired, totalWeight)
			}
			if _, ok := g.Step(); !ok {
				break
			}
		}
	}
}

// TestGreedyTraceAccounting: the number of steps equals the number of
// retired types, and NumTypes in the trace decreases by one per step.
func TestGreedyTraceAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomClusterProgram(rng, 9)
	g := NewGreedy(p, Config{})
	g.RunTo(1)
	trace := g.Trace()
	if len(trace) != 8 {
		t.Fatalf("trace has %d steps, want 8", len(trace))
	}
	for i, st := range trace {
		if st.NumTypes != 9-(i+1) {
			t.Fatalf("step %d: NumTypes=%d, want %d", i, st.NumTypes, 9-(i+1))
		}
		if st.Cost < 0 || st.D < 0 {
			t.Fatalf("step %d has negative cost/distance: %+v", i, st)
		}
	}
}

// TestPinnedSurviveToOne: with pinned slots, RunTo(1) stops when only
// pinned types remain (they can never be retired).
func TestPinnedSurviveToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomClusterProgram(rng, 6)
	pinned := make([]bool, 6)
	pinned[2], pinned[4] = true, true
	g := NewGreedy(p, Config{Pinned: pinned})
	got := g.RunTo(1)
	if got != 2 {
		t.Fatalf("RunTo(1) left %d types, want the 2 pinned", got)
	}
	prog, mapping := g.Program()
	if prog.Len() != 2 {
		t.Fatalf("program has %d types", prog.Len())
	}
	// The pinned slots map to themselves (never moved).
	if mapping[2] == mapping[4] {
		t.Fatal("pinned slots merged")
	}
}
