package cluster

import (
	"sort"

	"schemex/internal/typing"
)

// This file implements the "variation to k-clustering" of §5.2: first
// cluster the Stage 1 types without their weights under the plain Manhattan
// distance, then use the weights within each cluster and a measure of the
// relative importance of each typed link (the jump function of [14]) to
// choose the cluster's center definition.

// JumpResult is the outcome of the unweighted clustering variation.
type JumpResult struct {
	// Program has one type per cluster; definitions are the jump-selected
	// centers, with weights summed over cluster members.
	Program *typing.Program
	// Mapping sends each original type index to its cluster index.
	Mapping []int
}

// JumpCluster groups the types of p into k clusters by greedy agglomeration
// under the unweighted Manhattan distance, then derives each cluster's
// center by the jump heuristic: typed links are ranked by their weighted
// support within the cluster, and the center keeps the links above the
// largest relative gap ("jump") in the support sequence. As the paper warns,
// the approach can misbehave when the hypercube is densely populated; it is
// provided as the comparison variation.
func JumpCluster(p *typing.Program, k int) *JumpResult {
	n := len(p.Types)
	if k < 1 {
		k = 1
	}
	sets := make([]typing.LinkSet, n)
	for i, t := range p.Types {
		sets[i] = typing.NewLinkSet(t.Links)
	}

	// Greedy agglomeration on unweighted d: repeatedly merge the closest
	// pair of clusters (single linkage over type representatives' union).
	parent := identity(n)
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	type pair struct{ i, j, d int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j, Manhattan(sets[i], sets[j])})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].d != pairs[b].d {
			return pairs[a].d < pairs[b].d
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	clusters := n
	for _, pr := range pairs {
		if clusters <= k {
			break
		}
		ri, rj := find(pr.i), find(pr.j)
		if ri != rj {
			parent[rj] = ri
			clusters--
		}
	}

	// Materialize clusters.
	clusterIdx := make(map[int]int)
	var memberLists [][]int
	mapping := make([]int, n)
	for t := 0; t < n; t++ {
		r := find(t)
		ci, ok := clusterIdx[r]
		if !ok {
			ci = len(memberLists)
			clusterIdx[r] = ci
			memberLists = append(memberLists, nil)
		}
		memberLists[ci] = append(memberLists[ci], t)
		mapping[t] = ci
	}

	// Center of each cluster by the jump heuristic. Support counts use the
	// weights ("only use the weights within a cluster to determine its type
	// definition corresponding to its center").
	out := typing.NewProgram()
	for _, members := range memberLists {
		support := make(map[typing.TypedLink]int)
		weight := 0
		for _, t := range members {
			w := p.Types[t].Weight
			if w == 0 {
				w = 1
			}
			weight += w
			for _, l := range p.Types[t].Links {
				support[l] += w
			}
		}
		links := selectByJump(support)
		name := p.Types[members[0]].Name
		t := &typing.Type{Name: name, Links: links, Weight: weight}
		out.Add(t)
	}
	// Link targets still refer to original type indices; retarget through
	// the mapping.
	for _, t := range out.Types {
		for li, l := range t.Links {
			if l.Target != typing.AtomicTarget {
				t.Links[li].Target = mapping[l.Target]
			}
		}
		t.Canonicalize()
	}
	return &JumpResult{Program: out, Mapping: mapping}
}

// selectByJump ranks links by descending support and keeps those above the
// largest relative gap between consecutive supports. With uniform supports
// all links are kept.
func selectByJump(support map[typing.TypedLink]int) []typing.TypedLink {
	type ls struct {
		l typing.TypedLink
		s int
	}
	ranked := make([]ls, 0, len(support))
	for l, s := range support {
		ranked = append(ranked, ls{l, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].l.Compare(ranked[j].l) < 0
	})
	if len(ranked) == 0 {
		return nil
	}
	cut := len(ranked)
	bestRatio := 1.0
	for i := 0; i+1 < len(ranked); i++ {
		if ranked[i+1].s == 0 {
			cut = i + 1
			break
		}
		ratio := float64(ranked[i].s) / float64(ranked[i+1].s)
		if ratio > bestRatio {
			bestRatio = ratio
			cut = i + 1
		}
	}
	links := make([]typing.TypedLink, 0, cut)
	for _, r := range ranked[:cut] {
		links = append(links, r.l)
	}
	return links
}
