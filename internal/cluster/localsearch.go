package cluster

import (
	"math"
	"math/rand"
	"sort"

	"schemex/internal/typing"
)

// This file implements the local-search heuristic for the k-median view of
// Stage 2 — the paper's citation [12] (Korupolu, Plaxton, Rajaraman,
// "Analysis of a local search heuristic for facility location problems"):
// pick k types as centers, assign every type to its nearest center paying
// d·w, and repeatedly swap a center for a non-center while the total cost
// improves. It serves as the alternative Stage 2 engine in the ablations;
// the greedy coalescing remains the default, as in the paper's experiments.

// LocalSearchResult is a k-median clustering of a typing program.
type LocalSearchResult struct {
	// Centers are the chosen type indices, sorted.
	Centers []int
	// Assign maps every type index to its center.
	Assign []int
	// Cost is Σ d(center(t), t)·w_t under the Manhattan distance.
	Cost float64
	// Swaps is the number of improving swaps performed.
	Swaps int
}

// LocalSearchKMedian runs single-swap local search from a greedy-seeded
// start. maxSwaps bounds the number of improving swaps (0 means a generous
// default). The result is a local optimum: no single center swap improves
// the cost.
func LocalSearchKMedian(p *typing.Program, k int, seed int64, maxSwaps int) *LocalSearchResult {
	n := len(p.Types)
	if k >= n {
		res := &LocalSearchResult{Assign: identity(n)}
		res.Centers = identity(n)
		return res
	}
	if k < 1 {
		k = 1
	}
	if maxSwaps <= 0 {
		maxSwaps = 20 * n
	}
	sets := make([]typing.LinkSet, n)
	weights := make([]float64, n)
	for i, t := range p.Types {
		sets[i] = typing.NewLinkSet(t.Links)
		w := t.Weight
		if w == 0 {
			w = 1
		}
		weights[i] = float64(w)
	}
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			dist[i][j] = Manhattan(sets[i], sets[j])
		}
	}

	// Seed: the k heaviest types as centers (a cheap, deterministic start),
	// perturbed by the seed for restart experiments.
	order := identity(n)
	rng := rand.New(rand.NewSource(seed))
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	if seed != 0 {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	isCenter := make([]bool, n)
	centers := make([]int, 0, k)
	for _, t := range order[:k] {
		isCenter[t] = true
		centers = append(centers, t)
	}

	cost := func() float64 {
		total := 0.0
		for t := 0; t < n; t++ {
			best := math.MaxInt32
			for _, c := range centers {
				if dist[c][t] < best {
					best = dist[c][t]
				}
			}
			total += float64(best) * weights[t]
		}
		return total
	}

	cur := cost()
	res := &LocalSearchResult{}
	for swaps := 0; swaps < maxSwaps; {
		improved := false
		for ci := 0; ci < len(centers) && !improved; ci++ {
			old := centers[ci]
			for cand := 0; cand < n && !improved; cand++ {
				if isCenter[cand] {
					continue
				}
				centers[ci] = cand
				isCenter[old], isCenter[cand] = false, true
				if next := cost(); next < cur-1e-9 {
					cur = next
					improved = true
					swaps++
					res.Swaps++
				} else {
					centers[ci] = old
					isCenter[old], isCenter[cand] = true, false
				}
			}
		}
		if !improved {
			break
		}
	}

	res.Cost = cur
	res.Assign = make([]int, n)
	for t := 0; t < n; t++ {
		best, bestD := -1, math.MaxInt32
		for _, c := range centers {
			if dist[c][t] < bestD || (dist[c][t] == bestD && c < best) {
				best, bestD = c, dist[c][t]
			}
		}
		res.Assign[t] = best
	}
	sort.Ints(centers)
	res.Centers = centers
	return res
}

// Materialize turns a local-search clustering into a typing program plus a
// type-to-cluster mapping, mirroring Greedy.Program: center definitions
// survive with their link targets projected through the clustering, and
// weights accumulate.
func (r *LocalSearchResult) Materialize(p *typing.Program) (*typing.Program, []int) {
	compact := make(map[int]int, len(r.Centers))
	out := typing.NewProgram()
	for _, c := range r.Centers {
		compact[c] = out.Add(p.Types[c].Clone())
	}
	mapping := make([]int, len(r.Assign))
	for t, c := range r.Assign {
		mapping[t] = compact[c]
	}
	for ci, t := range out.Types {
		t.Weight = 0
		for orig, c := range mapping {
			if c == ci {
				w := p.Types[orig].Weight
				if w == 0 {
					w = 1
				}
				t.Weight += w
			}
		}
		for li, l := range t.Links {
			if l.Target != typing.AtomicTarget {
				t.Links[li].Target = mapping[l.Target]
			}
		}
		t.Canonicalize()
	}
	return out, mapping
}
