package cluster

import (
	"math/rand"
	"testing"

	"schemex/internal/typing"
)

func TestLocalSearchBasics(t *testing.T) {
	p := typing.MustParse(`
		type a1 = ->x[0] & ->y[0]
		type a2 = ->x[0] & ->y[0] & ->z[0]
		type b1 = ->p[0] & ->q[0]
		type b2 = ->p[0]
	`)
	weights := []int{10, 2, 8, 3}
	for i, ty := range p.Types {
		ty.Weight = weights[i]
	}
	res := LocalSearchKMedian(p, 2, 0, 0)
	if len(res.Centers) != 2 {
		t.Fatalf("centers = %v, want 2", res.Centers)
	}
	// The natural clustering: {a1,a2} and {b1,b2}.
	if res.Assign[0] != res.Assign[1] || res.Assign[2] != res.Assign[3] || res.Assign[0] == res.Assign[2] {
		t.Fatalf("assign = %v, want a-family and b-family separated", res.Assign)
	}
	// Cost: min moves are a2->a1 (d=1,w=2) and b2->b1 (d=1,w=3) = 5.
	if res.Cost != 5 {
		t.Fatalf("cost = %v, want 5", res.Cost)
	}
}

func TestLocalSearchMatchesExactOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	labels := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 12; trial++ {
		p := typing.NewProgram()
		n := 4 + rng.Intn(4)
		for i := 0; i < n; i++ {
			ty := &typing.Type{Name: "t" + string(rune('0'+i)), Weight: 1 + rng.Intn(9)}
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					ty.Links = append(ty.Links, typing.TypedLink{
						Dir: typing.Out, Label: l, Target: typing.AtomicTarget,
					})
				}
			}
			p.Add(ty)
		}
		k := 1 + rng.Intn(3)
		exact, _ := ExactKMedian(p, k)
		ls := LocalSearchKMedian(p, k, 0, 0)
		if ls.Cost+1e-9 < exact {
			t.Fatalf("trial %d: local search %v beat exact %v", trial, ls.Cost, exact)
		}
		// Single-swap local optima for k-median are within a constant factor
		// of optimal [12]; on these tiny instances it is nearly always exact.
		if exact > 0 && ls.Cost > 5*exact {
			t.Errorf("trial %d: local search %v far above exact %v", trial, ls.Cost, exact)
		}
	}
}

func TestLocalSearchDegenerate(t *testing.T) {
	p := typing.MustParse(`
		type a = ->x[0]
		type b = ->y[0]
	`)
	res := LocalSearchKMedian(p, 5, 0, 0)
	if res.Cost != 0 || len(res.Centers) != 2 {
		t.Fatalf("k >= n should be free: %+v", res)
	}
}

func TestLocalSearchMaterialize(t *testing.T) {
	p := typing.MustParse(`
		type a1 = ->x[0] & ->ref[b1]
		type a2 = ->x[0] & ->ref[b2]
		type b1 = ->y[0]
		type b2 = ->y[0] & ->z[0]
	`)
	for _, ty := range p.Types {
		ty.Weight = 5
	}
	res := LocalSearchKMedian(p, 2, 0, 0)
	prog, mapping := res.Materialize(p)
	if prog.Len() != 2 {
		t.Fatalf("materialized %d types", prog.Len())
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid program: %v\n%s", err, prog)
	}
	total := 0
	for _, ty := range prog.Types {
		total += ty.Weight
	}
	if total != 20 {
		t.Fatalf("total weight = %d, want 20", total)
	}
	if len(mapping) != 4 {
		t.Fatalf("mapping = %v", mapping)
	}
	// Link targets must point inside the compact program.
	for _, ty := range prog.Types {
		for _, l := range ty.Links {
			if l.Target != typing.AtomicTarget && (l.Target < 0 || l.Target >= prog.Len()) {
				t.Fatalf("dangling target %d", l.Target)
			}
		}
	}
}

// TestLocalSearchVsGreedyAblation compares the two Stage 2 engines' δ2
// totals on a mid-sized random instance: both should land in the same
// ballpark, documenting the paper's choice of greedy "because of its lower
// time complexity and implementation ease".
func TestLocalSearchVsGreedyAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomClusterProgram(rng, 30)
	k := 5
	greedy := GreedyKMedianCost(p.Clone(), k)
	ls := LocalSearchKMedian(p, k, 0, 0)
	if ls.Cost <= 0 || greedy <= 0 {
		t.Skip("degenerate instance")
	}
	ratio := greedy / ls.Cost
	if ratio > 4 || ratio < 0.25 {
		t.Errorf("greedy %v vs local search %v: unexpectedly far apart", greedy, ls.Cost)
	}
	t.Logf("greedy δ2 total %.0f, local search cost %.0f (swaps %d)", greedy, ls.Cost, ls.Swaps)
}
