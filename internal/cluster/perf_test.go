package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestNewGreedyAllocations pins the flat-triangle representation: seeding the
// engine performs a small constant number of allocations regardless of the
// program size (the old [][]int32 matrix allocated one row slice per type).
func TestNewGreedyAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := randomClusterProgram(rng, 20)
	large := randomClusterProgram(rng, 120)
	const bound = 40 // struct fields + interning map; far below one-per-type
	countFor := func(p func() *Greedy) float64 {
		return testing.AllocsPerRun(10, func() { _ = p() })
	}
	smallAllocs := countFor(func() *Greedy { return NewGreedy(small, Config{Parallelism: 1}) })
	largeAllocs := countFor(func() *Greedy { return NewGreedy(large, Config{Parallelism: 1}) })
	if smallAllocs > bound {
		t.Fatalf("NewGreedy(n=20) allocates %.0f times, want <= %d", smallAllocs, bound)
	}
	if largeAllocs > bound {
		t.Fatalf("NewGreedy(n=120) allocates %.0f times, want <= %d", largeAllocs, bound)
	}
	// 6x the types must not mean more allocations (no per-row slices).
	if largeAllocs > smallAllocs+4 {
		t.Fatalf("allocations grow with program size: n=20 -> %.0f, n=120 -> %.0f",
			smallAllocs, largeAllocs)
	}
}

// TestGreedyParallelismDeterminism: the full merge trace, every materialized
// program, and the final mapping are bit-identical at any worker count.
func TestGreedyParallelismDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(30)
		p := randomClusterProgram(rng, n)
		cfg := Config{Delta: Deltas[trial%len(Deltas)]}
		if trial%2 == 1 {
			cfg.AllowEmpty = true
			cfg.EmptyBias = 0.4
		}
		run := func(workers int) ([]Step, string, []int) {
			c := cfg
			c.Parallelism = workers
			g := NewGreedy(p.Clone(), c)
			g.RunTo(2)
			prog, mapping := g.Program()
			return g.Trace(), prog.String(), mapping
		}
		refTrace, refProg, refMap := run(1)
		for _, workers := range []int{2, 3, 8} {
			trace, prog, mapping := run(workers)
			if !reflect.DeepEqual(trace, refTrace) {
				t.Fatalf("trial %d: trace diverges at %d workers:\nserial:   %+v\nparallel: %+v",
					trial, workers, refTrace, trace)
			}
			if prog != refProg {
				t.Fatalf("trial %d: program diverges at %d workers", trial, workers)
			}
			if !reflect.DeepEqual(mapping, refMap) {
				t.Fatalf("trial %d: mapping diverges at %d workers", trial, workers)
			}
		}
	}
}
