// Warm re-entry for the greedy engine. Seeding the distance matrix is the
// Stage 2 hot spot: every cell is a popcount over universe-sized bitsets, and
// the whole strict upper triangle is recomputed on every extraction even when
// a delta perturbed only a handful of types. A State captures the seeded
// pre-merge triangle of one engine run; a later run over a program that
// provably mirrors the captured one (up to an injective renaming of type
// slots) copies the surviving cells instead of recounting them and popcounts
// only the cells a dirty slot touches.
//
// Soundness. A matrix cell is |defᵢ Δ defⱼ| where definitions are sets of
// (base, target-slot) pairs — the base carries direction/label/sort/value.
// Symmetric-difference cardinality is invariant under any injective renaming
// of the pair alphabet, and renaming target slots (bases fixed) is injective
// whenever the slot map is. MatchDefinitions verifies exactly that: child
// slot i may map to parent slot m(i) only if i's definition is the image of
// m(i)'s under the map. A warm-seeded matrix is therefore cell-for-cell equal
// to the cold-seeded one, and since the merge sequence is a deterministic
// function of the matrix, weights, and config, warm runs are bit-identical
// to cold runs — the copy is a shortcut, never an approximation.
package cluster

import (
	"schemex/internal/typing"
)

// DirtySlot marks a child slot with no usable parent counterpart in a warm
// mapping: its matrix cells are recomputed from scratch.
const DirtySlot = -1

// State is an immutable capture of a Greedy engine's seeded, pre-merge
// distance matrix together with the program it was seeded from. Obtain one
// with Greedy.State before the first Step; feed it back through Warm to seed
// a later engine. A State is safe for concurrent use by any number of warm
// constructions.
type State struct {
	prog *typing.Program
	n    int
	dist []uint32 // strict upper triangle, row-major; read-only once captured
}

// NumTypes returns the number of type slots the captured matrix covers.
func (s *State) NumTypes() int { return s.n }

// Program returns the captured pre-clustering program. Callers must not
// mutate it.
func (s *State) Program() *typing.Program { return s.prog }

// at reads the captured triangle; i and j must be distinct and < n.
func (s *State) at(i, j int) uint32 {
	if i > j {
		i, j = j, i
	}
	return s.dist[i*(s.n-1)-i*(i-1)/2+j-i-1]
}

// Warm seeds a new engine from a parent State. Map[i] names the parent slot
// whose definition child slot i provably mirrors, or DirtySlot. Build the
// mapping with MatchDefinitions; a hand-rolled map that violates its
// invariants produces a wrong matrix (warm seeding trusts the map).
type Warm struct {
	State *State
	Map   []int
}

// usable reports whether w can seed an engine over n child slots.
func (w *Warm) usable(n int) bool {
	return w != nil && w.State != nil && len(w.Map) == n
}

// isIdentity reports whether every child slot maps to the same parent slot
// and the slot counts agree — the child program mirrors the parent exactly,
// so the parent matrix can be aliased rather than copied.
func (w *Warm) isIdentity(n int) bool {
	if w.State.n != n {
		return false
	}
	for i, m := range w.Map {
		if m != i {
			return false
		}
	}
	return true
}

// MatchDefinitions vets a proposed child-slot → parent-slot mapping against
// the definitions on both sides, returning the mapping with every unprovable
// entry demoted to DirtySlot plus the number of surviving (clean) slots.
//
// proposal[i] is the candidate parent slot for child slot i (DirtySlot for
// none); callers typically propose by Stage 1 class-membership equality. An
// entry survives only if
//   - the candidate is in range and no other child slot claimed it
//     (injectivity), and
//   - child i's links equal parent proposal[i]'s links with every class
//     target c rewritten to proposal[c] — which requires each such target to
//     be matched itself.
//
// The check is purely local (no fixpoint): a matrix cell depends only on the
// two definitions as link sets, so target slots need matched members, not
// matched definitions of their own.
func MatchDefinitions(child *typing.Program, st *State, proposal []int) ([]int, int) {
	n := len(child.Types)
	vetted := make([]int, n)
	claimed := make([]bool, st.n)
	for i := range vetted {
		vetted[i] = DirtySlot
		if i >= len(proposal) {
			continue
		}
		if p := proposal[i]; p >= 0 && p < st.n && !claimed[p] {
			vetted[i] = p
			claimed[p] = true
		}
	}
	clean := 0
	var scratch map[typing.TypedLink]int
	for i, p := range vetted {
		if p == DirtySlot {
			continue
		}
		if definitionMirrors(child.Types[i].Links, st.prog.Types[p].Links, vetted, &scratch) {
			clean++
		} else {
			vetted[i] = DirtySlot
		}
	}
	return vetted, clean
}

// definitionMirrors reports whether childLinks equals parentLinks with every
// class target rewritten through m (child slot → parent slot). Links are
// compared as multisets; the rewrite (base, c) → (base, m(c)) is injective
// because m is, so multiset equality after rewriting is definition equality
// up to the renaming.
func definitionMirrors(childLinks, parentLinks []typing.TypedLink, m []int, scratch *map[typing.TypedLink]int) bool {
	if len(childLinks) != len(parentLinks) {
		return false
	}
	counts := *scratch
	if counts == nil {
		counts = make(map[typing.TypedLink]int, len(parentLinks))
		*scratch = counts
	}
	for _, l := range parentLinks {
		counts[l]++
	}
	ok := true
	for _, l := range childLinks {
		if l.Target != typing.AtomicTarget {
			if l.Target >= len(m) || m[l.Target] == DirtySlot {
				ok = false
				break
			}
			l.Target = m[l.Target]
		}
		if counts[l] == 0 {
			ok = false
			break
		}
		counts[l]--
	}
	for _, l := range parentLinks { // reset scratch for the next type
		delete(counts, l)
	}
	return ok
}
