package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"schemex/internal/typing"
)

// permuteProgram builds a child program whose slot i is parent slot perm[i],
// with every class target rewritten into child space. The child provably
// mirrors the parent under the mapping m[i] = perm[i].
func permuteProgram(parent *typing.Program, perm []int) *typing.Program {
	inv := make([]int, len(perm))
	for ci, pi := range perm {
		inv[pi] = ci
	}
	child := typing.NewProgram()
	for _, pi := range perm {
		t := parent.Types[pi].Clone()
		for li, l := range t.Links {
			if l.Target != typing.AtomicTarget {
				t.Links[li].Target = inv[l.Target]
			}
		}
		child.Add(t)
	}
	return child
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// TestWarmSeedPermutedMatchesCold: a warm-seeded matrix over a slot-permuted
// (and partially dirtied) child program is cell-for-cell equal to the
// cold-seeded one, and the whole merge run stays bit-identical, at any
// Parallelism.
func TestWarmSeedPermutedMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(25)
		parent := randomClusterProgram(rng, n)
		cfg := Config{Parallelism: 1}
		if trial%2 == 1 {
			cfg.AllowEmpty = true
		}
		st := NewGreedy(parent.Clone(), cfg).State()
		if st == nil {
			t.Fatal("State() before any Step returned nil")
		}

		perm := rng.Perm(n)
		child := permuteProgram(parent, perm)
		proposal := append([]int(nil), perm...)
		nDirty := 0
		if trial >= 2 {
			// Dirty a few slots: change their definitions and disown their
			// proposals, as a membership diff would.
			nDirty = 1 + rng.Intn(3)
			for d := 0; d < nDirty; d++ {
				i := rng.Intn(n)
				child.Types[i].Links = append(child.Types[i].Links, typing.TypedLink{
					Dir: typing.Out, Label: "zz", Target: typing.AtomicTarget,
				})
				proposal[i] = DirtySlot
			}
		}
		m, clean := MatchDefinitions(child, st, proposal)
		if nDirty == 0 && clean != n {
			t.Fatalf("trial %d: pure permutation matched %d/%d slots", trial, clean, n)
		}

		for _, workers := range []int{1, 0, 3} {
			c := cfg
			c.Parallelism = workers
			warm := NewGreedySnapWarm(child.Clone(), nil, c, &Warm{State: st, Map: m})
			cold := NewGreedySnapWarm(child.Clone(), nil, c, nil)
			if !reflect.DeepEqual(warm.dist, cold.dist) {
				t.Fatalf("trial %d (par=%d): warm-seeded matrix differs from cold", trial, workers)
			}
			copied, counted := warm.SeedStats()
			if nDirty == 0 && counted != 0 {
				t.Fatalf("trial %d: fully clean warm start still popcounted %d cells", trial, counted)
			}
			if copied+counted != n*(n-1)/2 {
				t.Fatalf("trial %d: seed stats %d+%d don't cover the triangle", trial, copied, counted)
			}
			warm.RunTo(2)
			cold.RunTo(2)
			if !reflect.DeepEqual(warm.Trace(), cold.Trace()) {
				t.Fatalf("trial %d (par=%d): warm trace diverges from cold", trial, workers)
			}
			wp, wm := warm.Program()
			cp, cm := cold.Program()
			if wp.String() != cp.String() || !reflect.DeepEqual(wm, cm) {
				t.Fatalf("trial %d (par=%d): warm program/mapping diverges", trial, workers)
			}
		}
	}
}

// TestMatchDefinitionsVetting exercises the demotion rules on a hand-built
// program: injectivity, range, definition mismatch, and dirty-target
// propagation.
func TestMatchDefinitionsVetting(t *testing.T) {
	p := typing.NewProgram()
	p.Add(&typing.Type{Name: "t0", Weight: 1, Links: []typing.TypedLink{
		{Dir: typing.Out, Label: "a", Target: typing.AtomicTarget},
	}})
	p.Add(&typing.Type{Name: "t1", Weight: 1, Links: []typing.TypedLink{
		{Dir: typing.Out, Label: "b", Target: 0},
	}})
	p.Add(&typing.Type{Name: "t2", Weight: 1, Links: []typing.TypedLink{
		{Dir: typing.Out, Label: "a", Target: 1},
	}})
	st := NewGreedy(p.Clone(), Config{Parallelism: 1}).State()

	if m, clean := MatchDefinitions(p, st, []int{0, 1, 2}); clean != 3 {
		t.Fatalf("identity proposal: clean = %d (%v), want 3", clean, m)
	}
	// Two slots claiming parent 0: the second is demoted, and slot 2 —
	// whose definition targets slot 1 — is dragged down with it.
	if m, clean := MatchDefinitions(p, st, []int{0, 0, 2}); clean != 1 || m[1] != DirtySlot || m[2] != DirtySlot {
		t.Fatalf("duplicate claim: m = %v clean = %d, want [0 -1 -1] 1", m, clean)
	}
	// Out-of-range proposals are demoted, not chased.
	if m, clean := MatchDefinitions(p, st, []int{0, 1, 7}); m[2] != DirtySlot || clean != 2 {
		t.Fatalf("out of range: m = %v clean = %d, want [0 1 -1] 2", m, clean)
	}
	// A definition mismatch is caught even when members would have agreed.
	q := p.Clone()
	q.Types[2].Links[0].Label = "c"
	if m, clean := MatchDefinitions(q, st, []int{0, 1, 2}); m[2] != DirtySlot || clean != 2 {
		t.Fatalf("leaf definition mismatch: m = %v clean = %d, want [0 1 -1] 2", m, clean)
	}
	// Dirtying a slot other slots target cascades: nothing downstream of it
	// can be proven either.
	q = p.Clone()
	q.Types[0].Links[0].Label = "c"
	if m, clean := MatchDefinitions(q, st, []int{0, 1, 2}); m[0] != DirtySlot || clean != 0 {
		t.Fatalf("root definition mismatch: m = %v clean = %d, want all dirty", m, clean)
	}
	// A cross-slot permutation is accepted when targets are remapped: child
	// {0<->1} with slot targets rewritten accordingly.
	perm := permuteProgram(p, []int{1, 0, 2})
	if m, clean := MatchDefinitions(perm, st, []int{1, 0, 2}); clean != 3 {
		t.Fatalf("permuted proposal: clean = %d (%v), want 3", clean, m)
	}
}

// TestStateCaptureWindow: State is only available on the seeded, pre-merge
// engine; after a Step (or a seeding cancellation) it reports nil.
func TestStateCaptureWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomClusterProgram(rng, 12)
	g := NewGreedy(p.Clone(), Config{Parallelism: 1})
	if g.State() == nil {
		t.Fatal("pre-merge State is nil")
	}
	if _, ok := g.Step(); !ok {
		t.Fatal("no step possible")
	}
	if g.State() != nil {
		t.Fatal("State after a Step must be nil (matrix already mutated)")
	}
}

// TestWarmIdentityAliasesMatrix pins the copy-on-write contract of clean
// reuse: an identity warm start aliases the parent triangle outright — no
// copy, no recount — re-capturing costs zero allocations, and the first
// mutating move clones, leaving the captured State bit-identical for the
// next consumer.
func TestWarmIdentityAliasesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomClusterProgram(rng, 40)
	cfg := Config{Parallelism: 1}
	st := NewGreedy(p.Clone(), cfg).State()
	frozen := append([]uint32(nil), st.dist...)

	g := NewGreedySnapWarm(p.Clone(), nil, cfg, &Warm{State: st, Map: identityMap(40)})
	if &g.dist[0] != &st.dist[0] {
		t.Fatal("identity warm start copied the triangle instead of aliasing it")
	}
	if copied, counted := g.SeedStats(); counted != 0 || copied != 40*39/2 {
		t.Fatalf("identity warm start seeded %d copied / %d counted, want %d / 0",
			copied, counted, 40*39/2)
	}
	if g.State() != st {
		t.Fatal("re-capturing an identity-warm engine must return the parent State")
	}
	if allocs := testing.AllocsPerRun(20, func() { _ = g.State() }); allocs != 0 {
		t.Fatalf("re-capture allocates %.0f times, want 0", allocs)
	}

	g.RunTo(39) // one merge: the engine must clone before mutating
	if len(g.trace) == 0 {
		t.Fatal("expected one merge")
	}
	if &g.dist[0] == &st.dist[0] {
		t.Fatal("merge mutated the aliased parent triangle in place")
	}
	if !reflect.DeepEqual(st.dist, frozen) {
		t.Fatal("captured State changed after the child's merge")
	}
}
