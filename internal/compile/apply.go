package compile

import (
	"sort"

	"schemex/internal/graph"
	"schemex/internal/par"
)

// ApplyInfo describes how a delta-derived snapshot was built, in the terms
// the incremental extraction layers need to decide whether warm starts are
// sound.
type ApplyInfo struct {
	// Touched lists, in ascending ID order, every object whose incident edge
	// set or atomic value the delta changed, including all objects it
	// created. Only these objects' CSR rows and histogram rows differ from
	// the parent's.
	Touched []graph.ObjectID
	// NewObjects is how many objects the delta created; their IDs are the
	// top NewObjects of the new snapshot's ID space.
	NewObjects int
	// Shared reports that the snapshot was built incrementally with
	// structural sharing. False means Apply fell back to a full Compile
	// (label universe changed, or an existing object flipped between atomic
	// and complex).
	Shared bool
	// PosStable reports that every pre-existing complex object kept its
	// dense complex position (new complex objects are appended at the end).
	// This is what makes the parent's positional Stage 1 state reusable; it
	// is false only when an existing object flipped atomic↔complex.
	PosStable bool
}

// Apply builds the snapshot of snap's database with delta applied, sharing
// structure with snap wherever the delta permits, using one worker per CPU.
//
// The fast path rebuilds only the shards the delta touches: the label table
// and its intern map are aliased outright, untouched histogram chunks are
// aliased from the parent (only chunks holding a touched row are
// re-accumulated), and — the shard payoff — every shard holding no touched
// object keeps its parent's CSR block wholesale, so a delta confined to one
// shard rebuilds one shard and leaves the rest untouched no matter how
// large the graph is. Within a rebuilt shard, contiguous runs of untouched
// objects are block-copied in one memmove per run and only touched objects
// are re-scanned edge by edge. The atomic/position/sort tables are aliased
// when the delta creates no objects (extend-copied otherwise). Object IDs
// are dense and append-only, so pre-existing complex positions are stable
// and everything positional in the parent remains meaningful against the
// child.
//
// Two delta shapes invalidate parent structure wholesale and fall back to a
// full Compile of the mutated database (Shared=false in the returned info):
// a change to the label universe — a label unseen by the parent, or the
// removal of a label's last occurrence — renumbers the dense label IDs every
// compiled array is expressed in; and an existing object flipping between
// atomic and complex shifts the dense complex positions (PosStable=false).
// The fallback keeps the parent's shard geometry, so a session's layout is
// stable across its whole delta stream.
//
// The receiver snapshot and its database are never mutated; extractions
// holding them remain valid. Either way the result is semantically identical
// to Compile over a scratch-built copy of the mutated database.
func Apply(snap *Snapshot, delta *graph.Delta) (*Snapshot, *ApplyInfo, error) {
	return ApplyCheck(snap, delta, 0, nil)
}

// ApplyCheck is Apply with an explicit worker count (<= 0 means one per CPU,
// 1 runs serially) and a cooperative cancellation checkpoint (nil means
// "never cancel"), mirroring CompileCheck. Dirty shards rebuild in parallel
// on the worker pool; a single-shard snapshot's incremental path runs
// serially as before (it is memmove-bound, and deltas are small).
func ApplyCheck(snap *Snapshot, delta *graph.Delta, workers int, check func() error) (*Snapshot, *ApplyInfo, error) {
	child, eff, err := snap.db.ApplyDelta(delta)
	if err != nil {
		return nil, nil, err
	}
	info := &ApplyInfo{
		Touched:    eff.Touched,
		NewObjects: child.NumObjects() - eff.OldObjects,
		PosStable:  !eff.Flipped,
	}
	if eff.Flipped || labelUniverseChanged(snap, eff) {
		ns, err := compileShift(child, snap.shardShift, workers, check)
		if err != nil {
			return nil, nil, err
		}
		// The fallback child stays in the parent's residency lineage: its
		// shards enter the same byte-budgeted LRU.
		if snap.res != nil {
			if err := ns.attach(snap.res); err != nil {
				return nil, nil, err
			}
		}
		return ns, info, nil
	}
	ns, err := applyIncremental(snap, child, eff, workers, check)
	if err != nil {
		return nil, nil, err
	}
	info.Shared = true
	return ns, info, nil
}

// labelUniverseChanged reports whether the delta grew or shrank the set of
// distinct edge labels. Growth is a map miss on the parent's intern table;
// shrinkage needs the parent's occurrence count of each net-removed label,
// which one pass over the shards' label arrays provides.
func labelUniverseChanged(snap *Snapshot, eff *graph.DeltaEffect) bool {
	var shrinkCand []int
	for lab, d := range eff.LabelDelta {
		id, known := snap.labelID[lab]
		if !known {
			return true // d > 0 here: a removal of an unknown label cannot apply
		}
		if d < 0 {
			shrinkCand = append(shrinkCand, id)
		}
	}
	if len(shrinkCand) == 0 {
		return false
	}
	counts := make(map[int]int, len(shrinkCand))
	for _, id := range shrinkCand {
		counts[id] = 0
	}
	for si := range snap.shards {
		sh := snap.shard(si)
		for _, lab := range sh.OutLab {
			if _, ok := counts[int(lab)]; ok {
				counts[int(lab)]++
			}
		}
	}
	for _, id := range shrinkCand {
		if counts[id]+eff.LabelDelta[snap.Labels[id]] == 0 {
			return true
		}
	}
	return false
}

// applyIncremental compiles child against its parent snapshot. Preconditions
// established by ApplyCheck: the label universe is unchanged and no existing
// object flipped atomic↔complex, so parent label IDs, complex positions, and
// every untouched object's CSR and histogram rows remain valid verbatim.
//
// The child inherits the parent's shard geometry. A shard holding no
// touched object is aliased from the parent outright (pointer-identical
// when the delta created no objects; the same CSR arrays behind rebound
// table views otherwise), so the work — and the memory traffic — is
// proportional to the dirty shards, not the graph.
func applyIncremental(parent *Snapshot, child *graph.DB, eff *graph.DeltaEffect, workers int, check func() error) (*Snapshot, error) {
	child.Freeze()
	n := child.NumObjects()
	oldN := eff.OldObjects
	shift := parent.shardShift

	s := &Snapshot{
		db:         child,
		Labels:     parent.Labels, // universe unchanged: alias table and intern map
		labelID:    parent.labelID,
		shardShift: shift,
		res:        parent.res, // same residency lineage (nil when unbudgeted)
	}
	if n == oldN {
		// No objects created, and none flipped on this path: the atomic
		// bitset, sort table, and the whole complex-position mapping are the
		// parent's verbatim. Alias them.
		s.Atomic = parent.Atomic
		s.Pos = parent.Pos
		s.Sorts = parent.Sorts
		s.Complex = parent.Complex
	} else {
		s.Atomic = parent.Atomic.Grown(n)
		s.Pos = make([]int32, n)
		s.Sorts = make([]uint8, n)
		s.Complex = parent.Complex[:len(parent.Complex):len(parent.Complex)]
		copy(s.Pos, parent.Pos)
		copy(s.Sorts, parent.Sorts)
		for i := oldN; i < n; i++ {
			o := graph.ObjectID(i)
			if v, ok := child.AtomicValue(o); ok {
				s.Atomic.Set(i)
				s.Sorts[i] = uint8(v.Sort)
				s.Pos[i] = -1
			} else {
				s.Pos[i] = int32(len(s.Complex))
				s.Complex = append(s.Complex, o)
			}
		}
	}
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}

	// The shard dirty-set: shards holding a touched object, plus — when the
	// delta created objects — the parent's (possibly partial) last shard
	// and every shard past it.
	nSh := numShards(n, shift)
	dirty := make([]bool, nSh)
	for _, o := range eff.Touched {
		dirty[int(o)>>shift] = true
	}
	boundSi := nSh // first shard whose position range needs recounting
	if n > oldN {
		boundSi = oldN >> int(shift)
		for si := boundSi; si < nSh; si++ {
			dirty[si] = true
		}
	}

	// Position ranges chain through the shards: a shard strictly below the
	// growth boundary keeps its parent range verbatim (no flips on this
	// path), the boundary shard and anything past it recount from the
	// freshly extended Pos table.
	posLo := make([]int, nSh)
	posN := make([]int, nSh)
	next := 0
	for si := 0; si < nSh; si++ {
		lo := next
		if si < len(parent.shards) {
			lo = parent.shardMeta(si).posBase
		}
		pn := 0
		if si < boundSi {
			pn = parent.shardMeta(si).posN
		} else {
			base := si << shift
			end := base + 1<<shift
			if end > n {
				end = n
			}
			for gi := base; gi < end; gi++ {
				if s.Pos[gi] >= 0 {
					pn++
				}
			}
		}
		posLo[si], posN[si] = lo, pn
		next = lo + pn
	}

	// Build the shard table: untouched shards alias the parent, dirty ones
	// rebuild independently in parallel. Under a residency manager a clean
	// shard shares the parent's spillable ref instead — the parent's copy is
	// never forced into RAM just to derive a child, and one resident copy
	// (or one file) serves the whole lineage. Ref sharing needs no reslice:
	// a clean shard's view values are equal between parent and child, and a
	// faulted shard carries owned, value-equal views anyway.
	s.shards = make([]*Shard, nSh)
	if parent.res != nil {
		s.refs = make([]*shardRef, nSh)
	}
	if err := par.DoItemsErr(workers, nSh, func(si int) error {
		if !dirty[si] {
			switch {
			case parent.res != nil:
				s.refs[si] = parent.refs[si]
			case n == oldN:
				s.shards[si] = parent.shards[si]
			default:
				s.shards[si] = parent.shards[si].reslice(s)
			}
			return nil
		}
		return s.rebuildShard(si, parent, eff, posLo[si], posN[si], check)
	}); err != nil {
		return nil, err
	}
	for si := range s.shards {
		s.nLinks += s.shardMeta(si).nOut
	}

	// Histograms: alias every chunk whose rows are untouched; chunks holding
	// a touched row — plus any chunk reaching past the parent's row count,
	// whose parent backing is too short — are allocated fresh and
	// re-accumulated from the child CSR built above. Re-deriving the
	// untouched rows inside a dirty chunk is deterministic recounting, so
	// the result is bit-identical to a scratch compile.
	nC := len(s.Complex)
	parentNC := len(parent.Complex)
	nChunks := (nC + histChunkMask) >> histChunkShift
	dirtyChunks := make([]bool, nChunks)
	if nC > parentNC {
		for c := parentNC >> histChunkShift; c < nChunks; c++ {
			dirtyChunks[c] = true
		}
	}
	for _, o := range eff.Touched {
		if p := s.Pos[o]; p >= 0 {
			dirtyChunks[int(p)>>histChunkShift] = true
		}
	}
	s.OutComplex = deriveHist(parent.OutComplex, nC, dirtyChunks)
	s.OutAtomic = deriveHist(parent.OutAtomic, nC, dirtyChunks)
	s.InComplex = deriveHist(parent.InComplex, nC, dirtyChunks)
	s.OutAtomicSort = deriveHist(parent.OutAtomicSort, nC, dirtyChunks)
	for c, d := range dirtyChunks {
		if !d {
			continue
		}
		lo := c << histChunkShift
		hi := lo + histChunkRows
		if hi > nC {
			hi = nC
		}
		for p := lo; p < hi; p++ {
			o := graph.ObjectID(s.Complex[p])
			outC := s.OutComplex.row(p)
			outA := s.OutAtomic.row(p)
			outAS := s.OutAtomicSort.row(p)
			inC := s.InComplex.row(p)
			to, labs := s.Out(o)
			for k := range to {
				lab := labs[k]
				if t := int(to[k]); s.Atomic.Test(t) {
					outA[lab]++
					outAS[int(lab)*NumSorts+int(s.Sorts[t])]++
				} else {
					outC[lab]++
				}
			}
			_, inLabs := s.In(o)
			for _, lab := range inLabs {
				inC[lab]++
			}
		}
	}
	// Spill the rebuilt dirty shards through the codec and hand them to the
	// lineage's residency manager; clean shards already share the parent's
	// refs, so from here the child pages exactly like its parent.
	if s.res != nil {
		if err := s.attach(s.res); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// rebuildShard rebuilds dirty shard si of s against the parent snapshot:
// untouched objects keep their parent degree and have their CSR spans
// block-copied run by run from the parent shard's (shard-local) arrays,
// touched and newly created objects are re-scanned from the child database.
// All indexing is shard-local, so concurrent rebuilds of different shards
// share nothing but the read-only parent.
func (s *Snapshot) rebuildShard(si int, parent *Snapshot, eff *graph.DeltaEffect, posLo, posN int, check func() error) error {
	child := s.db
	sh := newShard(s, si, posLo, posLo+posN)
	// The parent shard feeds the untouched-run block copies below; pin it
	// for the whole rebuild so a concurrent rebuild's eviction pressure
	// cannot fault it back in once per run.
	var ps *Shard
	if si < len(parent.shards) {
		if parent.res != nil && parent.refs[si] != nil {
			var unpin func()
			ps, unpin = parent.refs[si].pin()
			defer unpin()
		} else {
			ps = parent.shards[si]
		}
	}

	// The shard's touched flags: binary-search the (ascending) touched list
	// down to the shard's ID range, then flag everything past the parent's
	// object count.
	oldN := eff.OldObjects
	touched := make([]bool, sh.N)
	k := sort.Search(len(eff.Touched), func(i int) bool { return int(eff.Touched[i]) >= sh.Base })
	for ; k < len(eff.Touched) && int(eff.Touched[k]) < sh.Base+sh.N; k++ {
		touched[int(eff.Touched[k])-sh.Base] = true
	}
	for gi := max(oldN, sh.Base); gi < sh.Base+sh.N; gi++ {
		touched[gi-sh.Base] = true
	}

	// Offsets: untouched objects keep their parent degree, touched ones use
	// the child's edge lists. Untouched objects always existed in the
	// parent shard, so ps indexing is in range wherever it is reached.
	for i := 0; i < sh.N; i++ {
		if !touched[i] {
			sh.OutOff[i+1] = sh.OutOff[i] + (ps.OutOff[i+1] - ps.OutOff[i])
			sh.InOff[i+1] = sh.InOff[i] + (ps.InOff[i+1] - ps.InOff[i])
		} else {
			o := graph.ObjectID(sh.Base + i)
			sh.OutOff[i+1] = sh.OutOff[i] + int32(len(child.Out(o)))
			sh.InOff[i+1] = sh.InOff[i] + int32(len(child.In(o)))
		}
	}
	sh.alloc()

	// Edge arrays: each maximal run of untouched objects shifts by a
	// constant offset, so it moves as one block copy per array; only touched
	// objects are re-scanned edge by edge.
	copyRun := func(a, b int) {
		if a >= b {
			return
		}
		copy(sh.OutTo[sh.OutOff[a]:sh.OutOff[b]], ps.OutTo[ps.OutOff[a]:ps.OutOff[b]])
		copy(sh.OutLab[sh.OutOff[a]:sh.OutOff[b]], ps.OutLab[ps.OutOff[a]:ps.OutOff[b]])
		copy(sh.InFrom[sh.InOff[a]:sh.InOff[b]], ps.InFrom[ps.InOff[a]:ps.InOff[b]])
		copy(sh.InLab[sh.InOff[a]:sh.InOff[b]], ps.InLab[ps.InOff[a]:ps.InOff[b]])
	}
	run := 0
	for i := 0; i < sh.N; i++ {
		if check != nil && i%checkEvery == 0 {
			if err := check(); err != nil {
				return err
			}
		}
		if !touched[i] {
			continue
		}
		copyRun(run, i)
		run = i + 1
		o := graph.ObjectID(sh.Base + i)
		at := sh.OutOff[i]
		for _, e := range child.Out(o) {
			sh.OutTo[at] = int32(e.To)
			sh.OutLab[at] = int32(s.labelID[e.Label])
			at++
		}
		at = sh.InOff[i]
		for _, e := range child.In(o) {
			sh.InFrom[at] = int32(e.From)
			sh.InLab[at] = int32(s.labelID[e.Label])
			at++
		}
	}
	copyRun(run, sh.N)
	s.shards[si] = sh
	return nil
}
