package compile

import (
	"schemex/internal/graph"
)

// ApplyInfo describes how a delta-derived snapshot was built, in the terms
// the incremental extraction layers need to decide whether warm starts are
// sound.
type ApplyInfo struct {
	// Touched lists, in ascending ID order, every object whose incident edge
	// set or atomic value the delta changed, including all objects it
	// created. Only these objects' CSR rows and histogram rows differ from
	// the parent's.
	Touched []graph.ObjectID
	// NewObjects is how many objects the delta created; their IDs are the
	// top NewObjects of the new snapshot's ID space.
	NewObjects int
	// Shared reports that the snapshot was built incrementally with
	// structural sharing. False means Apply fell back to a full Compile
	// (label universe changed, or an existing object flipped between atomic
	// and complex).
	Shared bool
	// PosStable reports that every pre-existing complex object kept its
	// dense complex position (new complex objects are appended at the end).
	// This is what makes the parent's positional Stage 1 state reusable; it
	// is false only when an existing object flipped atomic↔complex.
	PosStable bool
}

// Apply builds the snapshot of snap's database with delta applied, sharing
// structure with snap wherever the delta permits, using one worker per CPU.
//
// The fast path rebuilds only what the delta touches: the label table and
// its intern map are aliased outright, untouched histogram chunks are
// aliased from the parent (only chunks holding a touched row are
// re-accumulated), contiguous runs of untouched objects have their CSR
// spans block-copied in one memmove per run, and the atomic/position/sort
// tables are aliased when the delta creates no objects (extend-copied
// otherwise). Object IDs are dense and append-only, so pre-existing complex
// positions are stable and everything positional in the parent remains
// meaningful against the child.
//
// Two delta shapes invalidate parent structure wholesale and fall back to a
// full Compile of the mutated database (Shared=false in the returned info):
// a change to the label universe — a label unseen by the parent, or the
// removal of a label's last occurrence — renumbers the dense label IDs every
// compiled array is expressed in; and an existing object flipping between
// atomic and complex shifts the dense complex positions (PosStable=false).
//
// The receiver snapshot and its database are never mutated; extractions
// holding them remain valid. Either way the result is semantically identical
// to Compile over a scratch-built copy of the mutated database.
func Apply(snap *Snapshot, delta *graph.Delta) (*Snapshot, *ApplyInfo, error) {
	return ApplyCheck(snap, delta, 0, nil)
}

// ApplyCheck is Apply with an explicit worker count (<= 0 means one per CPU,
// 1 runs serially) and a cooperative cancellation checkpoint (nil means
// "never cancel"), mirroring CompileCheck. The incremental path is always
// serial — it is memmove-bound, and deltas are small — so workers only
// affects the full-recompile fallback.
func ApplyCheck(snap *Snapshot, delta *graph.Delta, workers int, check func() error) (*Snapshot, *ApplyInfo, error) {
	child, eff, err := snap.db.ApplyDelta(delta)
	if err != nil {
		return nil, nil, err
	}
	info := &ApplyInfo{
		Touched:    eff.Touched,
		NewObjects: child.NumObjects() - eff.OldObjects,
		PosStable:  !eff.Flipped,
	}
	if eff.Flipped || labelUniverseChanged(snap, eff) {
		ns, err := CompileCheck(child, workers, check)
		if err != nil {
			return nil, nil, err
		}
		return ns, info, nil
	}
	ns, err := applyIncremental(snap, child, eff, check)
	if err != nil {
		return nil, nil, err
	}
	info.Shared = true
	return ns, info, nil
}

// labelUniverseChanged reports whether the delta grew or shrank the set of
// distinct edge labels. Growth is a map miss on the parent's intern table;
// shrinkage needs the parent's occurrence count of each net-removed label,
// which one pass over the parent's flat label array provides.
func labelUniverseChanged(snap *Snapshot, eff *graph.DeltaEffect) bool {
	var shrinkCand []int
	for lab, d := range eff.LabelDelta {
		id, known := snap.labelID[lab]
		if !known {
			return true // d > 0 here: a removal of an unknown label cannot apply
		}
		if d < 0 {
			shrinkCand = append(shrinkCand, id)
		}
	}
	if len(shrinkCand) == 0 {
		return false
	}
	counts := make(map[int]int, len(shrinkCand))
	for _, id := range shrinkCand {
		counts[id] = 0
	}
	for _, lab := range snap.OutLab {
		if _, ok := counts[int(lab)]; ok {
			counts[int(lab)]++
		}
	}
	for _, id := range shrinkCand {
		if counts[id]+eff.LabelDelta[snap.Labels[id]] == 0 {
			return true
		}
	}
	return false
}

// applyIncremental compiles child against its parent snapshot. Preconditions
// established by ApplyCheck: the label universe is unchanged and no existing
// object flipped atomic↔complex, so parent label IDs, complex positions, and
// every untouched object's CSR and histogram rows remain valid verbatim.
//
// It runs serially: the work is a handful of large memmoves over untouched
// CSR runs plus per-edge scans of the (small) touched set, which parallel
// shards would only slow down with fork/join overhead.
func applyIncremental(parent *Snapshot, child *graph.DB, eff *graph.DeltaEffect, check func() error) (*Snapshot, error) {
	child.Freeze()
	n := child.NumObjects()
	oldN := eff.OldObjects

	s := &Snapshot{
		db:      child,
		Labels:  parent.Labels, // universe unchanged: alias table and intern map
		labelID: parent.labelID,
	}
	if n == oldN {
		// No objects created, and none flipped on this path: the atomic
		// bitset, sort table, and the whole complex-position mapping are the
		// parent's verbatim. Alias them.
		s.Atomic = parent.Atomic
		s.Pos = parent.Pos
		s.Sorts = parent.Sorts
		s.Complex = parent.Complex
	} else {
		s.Atomic = parent.Atomic.Grown(n)
		s.Pos = make([]int32, n)
		s.Sorts = make([]uint8, n)
		s.Complex = parent.Complex[:len(parent.Complex):len(parent.Complex)]
		copy(s.Pos, parent.Pos)
		copy(s.Sorts, parent.Sorts)
		for i := oldN; i < n; i++ {
			o := graph.ObjectID(i)
			if v, ok := child.AtomicValue(o); ok {
				s.Atomic.Set(i)
				s.Sorts[i] = uint8(v.Sort)
				s.Pos[i] = -1
			} else {
				s.Pos[i] = int32(len(s.Complex))
				s.Complex = append(s.Complex, o)
			}
		}
	}
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}

	// Touched objects (the delta's own list plus everything newly created)
	// as a dense flag array: the loops below test it once per object, and a
	// map lookup there would dominate the whole rebuild.
	touched := make([]bool, n)
	for _, o := range eff.Touched {
		touched[o] = true
	}
	for i := oldN; i < n; i++ {
		touched[i] = true
	}

	// Offsets: untouched objects keep their parent degree, touched ones use
	// the child's edge lists. One serial prefix-sum pass, as in CompileCheck.
	s.OutOff = make([]int32, n+1)
	s.InOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		if !touched[i] {
			s.OutOff[i+1] = s.OutOff[i] + (parent.OutOff[i+1] - parent.OutOff[i])
			s.InOff[i+1] = s.InOff[i] + (parent.InOff[i+1] - parent.InOff[i])
		} else {
			o := graph.ObjectID(i)
			s.OutOff[i+1] = s.OutOff[i] + int32(len(child.Out(o)))
			s.InOff[i+1] = s.InOff[i] + int32(len(child.In(o)))
		}
	}
	nE := int(s.OutOff[n])
	s.OutTo = make([]int32, nE)
	s.OutLab = make([]int32, nE)
	s.InFrom = make([]int32, nE)
	s.InLab = make([]int32, nE)

	// Edge arrays: each maximal run of untouched objects shifts by a
	// constant offset, so it moves as one block copy per array; only touched
	// objects are re-scanned edge by edge. Runs never cross a touched or new
	// object, so parent offsets are always in range.
	copyRun := func(a, b int) {
		if a >= b {
			return
		}
		copy(s.OutTo[s.OutOff[a]:s.OutOff[b]], parent.OutTo[parent.OutOff[a]:parent.OutOff[b]])
		copy(s.OutLab[s.OutOff[a]:s.OutOff[b]], parent.OutLab[parent.OutOff[a]:parent.OutOff[b]])
		copy(s.InFrom[s.InOff[a]:s.InOff[b]], parent.InFrom[parent.InOff[a]:parent.InOff[b]])
		copy(s.InLab[s.InOff[a]:s.InOff[b]], parent.InLab[parent.InOff[a]:parent.InOff[b]])
	}
	const checkEvery = 1024
	run := 0
	for i := 0; i < n; i++ {
		if check != nil && i%checkEvery == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		if !touched[i] {
			continue
		}
		copyRun(run, i)
		run = i + 1
		o := graph.ObjectID(i)
		at := s.OutOff[i]
		for _, e := range child.Out(o) {
			s.OutTo[at] = int32(e.To)
			s.OutLab[at] = int32(s.labelID[e.Label])
			at++
		}
		at = s.InOff[i]
		for _, e := range child.In(o) {
			s.InFrom[at] = int32(e.From)
			s.InLab[at] = int32(s.labelID[e.Label])
			at++
		}
	}
	copyRun(run, n)

	// Histograms: alias every chunk whose rows are untouched; chunks holding
	// a touched row — plus any chunk reaching past the parent's row count,
	// whose parent backing is too short — are allocated fresh and
	// re-accumulated from the child CSR built above. Re-deriving the
	// untouched rows inside a dirty chunk is deterministic recounting, so
	// the result is bit-identical to a scratch compile.
	nC := len(s.Complex)
	parentNC := len(parent.Complex)
	nChunks := (nC + histChunkMask) >> histChunkShift
	dirty := make([]bool, nChunks)
	if nC > parentNC {
		for c := parentNC >> histChunkShift; c < nChunks; c++ {
			dirty[c] = true
		}
	}
	for _, o := range eff.Touched {
		if p := s.Pos[o]; p >= 0 {
			dirty[int(p)>>histChunkShift] = true
		}
	}
	s.OutComplex = deriveHist(parent.OutComplex, nC, dirty)
	s.OutAtomic = deriveHist(parent.OutAtomic, nC, dirty)
	s.InComplex = deriveHist(parent.InComplex, nC, dirty)
	s.OutAtomicSort = deriveHist(parent.OutAtomicSort, nC, dirty)
	for c, d := range dirty {
		if !d {
			continue
		}
		lo := c << histChunkShift
		hi := lo + histChunkRows
		if hi > nC {
			hi = nC
		}
		for p := lo; p < hi; p++ {
			o := int(s.Complex[p])
			outC := s.OutComplex.row(p)
			outA := s.OutAtomic.row(p)
			outAS := s.OutAtomicSort.row(p)
			inC := s.InComplex.row(p)
			for k := s.OutOff[o]; k < s.OutOff[o+1]; k++ {
				lab := s.OutLab[k]
				if to := int(s.OutTo[k]); s.Atomic.Test(to) {
					outA[lab]++
					outAS[int(lab)*NumSorts+int(s.Sorts[to])]++
				} else {
					outC[lab]++
				}
			}
			for k := s.InOff[o]; k < s.InOff[o+1]; k++ {
				inC[s.InLab[k]]++
			}
		}
	}
	return s, nil
}
