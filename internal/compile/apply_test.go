package compile

import (
	"fmt"
	"reflect"
	"testing"

	"schemex/internal/graph"
)

// buildDB assembles a small mixed graph: a root fanning out to three members,
// each holding an atomic attribute, plus a back edge.
func buildDB(t *testing.T) *graph.DB {
	t.Helper()
	db := graph.New()
	add := func(from, to, label string) {
		if err := db.AddLink(db.Intern(from), db.Intern(to), label); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []string{"a", "b", "c"} {
		add("root", m, "member")
		v := m + ".name"
		if err := db.SetAtomic(db.Intern(v), graph.Value{Sort: graph.SortString, Text: m}); err != nil {
			t.Fatal(err)
		}
		add(m, v, "name")
	}
	add("c", "root", "owner")
	return db
}

// flatView flattens a snapshot's sharded CSR back into the global-array
// form, so snapshots compare field-by-field regardless of shard layout.
type flatView struct {
	Labels                           []string
	OutTo, OutLab, InFrom, InLab     []int32
	AtomicBits                       string
	Complex                          []graph.ObjectID
	Pos                              []int32
	Sorts                            []uint8
	OutComplex, OutAtomic, InComplex Hist
	OutAtomicSort                    Hist
}

func flatten(s *Snapshot) flatView {
	v := flatView{
		Labels: s.Labels, AtomicBits: fmt.Sprint(s.Atomic),
		Complex: s.Complex, Pos: s.Pos, Sorts: s.Sorts,
		OutComplex: s.OutComplex, OutAtomic: s.OutAtomic,
		InComplex: s.InComplex, OutAtomicSort: s.OutAtomicSort,
	}
	for i := 0; i < s.NumObjects(); i++ {
		to, lab := s.Out(graph.ObjectID(i))
		v.OutTo = append(v.OutTo, to...)
		v.OutLab = append(v.OutLab, lab...)
		from, flab := s.In(graph.ObjectID(i))
		v.InFrom = append(v.InFrom, from...)
		v.InLab = append(v.InLab, flab...)
	}
	return v
}

// snapEqual compares two snapshots' contents through the flattened view,
// so snapshots with different shard layouts compare equal iff they describe
// the same compiled graph bit for bit.
func snapEqual(t *testing.T, got, want *Snapshot, label string) {
	t.Helper()
	if g, w := flatten(got), flatten(want); !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: snapshots differ:\ngot  %+v\nwant %+v", label, g, w)
	}
}

// TestApplyMatchesFullCompile checks that every Apply path — structural
// sharing, label-universe recompile, and flip recompile — produces a snapshot
// field-identical to compiling the mutated graph from scratch.
func TestApplyMatchesFullCompile(t *testing.T) {
	cases := []struct {
		name          string
		delta         func(d *graph.Delta)
		wantShared    bool
		wantPosStable bool
	}{
		{"add-existing-label", func(d *graph.Delta) {
			d.AddLink("a", "b", "member")
		}, true, true},
		{"remove-link", func(d *graph.Delta) {
			d.RemoveLink("root", "b", "member")
		}, true, true},
		{"new-object", func(d *graph.Delta) {
			d.AddLink("root", "d", "member")
			d.AddAtomic("d.name", graph.Value{Sort: graph.SortString, Text: "d"})
			d.AddLink("d", "d.name", "name")
		}, true, true},
		{"new-label", func(d *graph.Delta) {
			d.AddLink("root", "a", "chair")
		}, false, true},
		{"label-vanishes", func(d *graph.Delta) {
			d.RemoveLink("c", "root", "owner") // only "owner" edge in the graph
		}, false, true},
		{"atomic-flip", func(d *graph.Delta) {
			d.RemoveObject("a.name") // detaches the value: a.name becomes complex
		}, false, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			db := buildDB(t)
			parent := Compile(db)
			parentRef := Compile(db.Clone())

			var d graph.Delta
			c.delta(&d)
			got, info, err := Apply(parent, &d)
			if err != nil {
				t.Fatal(err)
			}
			if info.Shared != c.wantShared || info.PosStable != c.wantPosStable {
				t.Fatalf("info = {Shared:%v PosStable:%v}, want {%v %v}",
					info.Shared, info.PosStable, c.wantShared, c.wantPosStable)
			}
			snapEqual(t, got, Compile(got.DB().Clone()), "apply vs full compile")
			// The parent snapshot must be untouched by the child's existence.
			snapEqual(t, parent, parentRef, "parent after apply")
		})
	}
}

// TestApplySharesUntouchedRows checks the structural-sharing contract the
// incremental path is for: untouched label-table memory is aliased, and a
// shared apply reports Shared.
func TestApplySharesUntouchedRows(t *testing.T) {
	db := buildDB(t)
	parent := Compile(db)
	var d graph.Delta
	d.AddLink("a", "c", "member")
	got, info, err := Apply(parent, &d)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Shared {
		t.Fatal("expected shared apply")
	}
	if len(got.Labels) != len(parent.Labels) || &got.Labels[0] != &parent.Labels[0] {
		t.Fatal("label table not aliased on shared apply")
	}
	if len(info.Touched) != 2 {
		t.Fatalf("touched = %v, want the two endpoints", info.Touched)
	}
}

// TestApplyErrorLeavesParentUsable checks a failing delta reports the error
// without corrupting the parent snapshot.
func TestApplyErrorLeavesParentUsable(t *testing.T) {
	db := buildDB(t)
	parent := Compile(db)
	parentRef := Compile(db.Clone())
	var d graph.Delta
	d.RemoveLink("root", "nope", "member")
	if _, _, err := Apply(parent, &d); err == nil {
		t.Fatal("expected error for missing link")
	}
	snapEqual(t, parent, parentRef, "parent after failed apply")
}
