// Shard and snapshot-core codecs: versioned, checksummed binary
// serialization of one Shard (the unit the residency manager spills and
// faults) and of a snapshot's shard-independent core (label universe, global
// position/sort tables, degree histograms, shard geometry). A shard file is
// self-contained — it carries the shard's slice of the global tables as
// owned arrays, so decoding never needs the snapshot it came from — which is
// what lets a spilled shard be faulted into any snapshot sharing the same
// ref, parent or delta-derived child alike.
//
// Both formats are little-endian with an 8-byte version magic followed by a
// CRC-32C (Castagnoli) of the payload, like the write-ahead log's frames: a
// truncated or bit-flipped file is detected before any of it is trusted.
// Encoding is deterministic (no maps are walked), so equal shards encode to
// equal bytes — the round-trip property tests pin this.
package compile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"schemex/internal/graph"
)

// shardMagic / coreMagic version the two on-disk formats; bump the trailing
// digits on any layout change so stale files are refused, not misread.
const (
	shardMagic = "SXSHRD01"
	coreMagic  = "SXCORE01"
)

// codecHeaderLen is the fixed prefix of both formats: magic plus payload
// checksum.
const codecHeaderLen = 8 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CodecError reports a shard or core file that failed validation: wrong
// magic (File names the expected format), a checksum mismatch, or a length
// inconsistency between header counts and payload size.
type CodecError struct {
	Format string // "shard" or "core"
	Reason string
}

func (e *CodecError) Error() string {
	return fmt.Sprintf("compile: bad %s encoding: %s", e.Format, e.Reason)
}

// enc is a little-endian append-only writer over a preallocated buffer.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

func (e *enc) i32s(v []int32) {
	for _, x := range v {
		e.u32(uint32(x))
	}
}

func (e *enc) bytes(v []byte) { e.b = append(e.b, v...) }

// dec is the matching reader; out-of-bounds reads flip err instead of
// panicking so corrupt length fields surface as *CodecError.
type dec struct {
	b   []byte
	off int
	err bool
}

func (d *dec) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// count reads a u32 length field that will size an allocation: anything that
// cannot fit in the remaining payload (at min bytes per element) is corrupt,
// so a bit-flipped length can never trigger a giant allocation.
func (d *dec) count(min int) int {
	n := int(d.u32())
	if n < 0 || (min > 0 && n > (len(d.b)-d.off)/min) {
		d.err = true
		return 0
	}
	return n
}

func (d *dec) i32s(n int) []int32 {
	if n < 0 || d.off+4*n > len(d.b) {
		d.err = true
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.b[d.off+4*i:]))
	}
	d.off += 4 * n
	return out
}

func (d *dec) bytes(n int) []byte {
	if n < 0 || d.off+n > len(d.b) {
		d.err = true
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += n
	return out
}

// seal prepends the magic and payload checksum to an encoded payload.
func seal(magic string, payload []byte) []byte {
	out := make([]byte, 0, codecHeaderLen+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// unseal validates the magic and checksum and returns the payload.
func unseal(format, magic string, data []byte) ([]byte, error) {
	if len(data) < codecHeaderLen {
		return nil, &CodecError{format, "truncated header"}
	}
	if string(data[:8]) != magic {
		return nil, &CodecError{format, fmt.Sprintf("bad magic %q (want %q)", data[:8], magic)}
	}
	payload := data[codecHeaderLen:]
	want := binary.LittleEndian.Uint32(data[8:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &CodecError{format, fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
	}
	return payload, nil
}

// EncodeShard serializes one shard, including its slice of the snapshot's
// global tables, into the versioned checksummed shard format. The result is
// self-contained: DecodeShard reconstructs the shard with owned arrays.
func EncodeShard(sh *Shard) []byte {
	size := 6*4 + // base, n, posBase, posN, nOut, nIn
		4*(len(sh.OutOff)+len(sh.InOff)+len(sh.OutTo)+len(sh.OutLab)+
			len(sh.InFrom)+len(sh.InLab)+len(sh.Pos)+len(sh.Complex)) +
		len(sh.Sorts)
	e := enc{b: make([]byte, 0, size)}
	e.u32(uint32(sh.Base))
	e.u32(uint32(sh.N))
	e.u32(uint32(sh.PosBase))
	e.u32(uint32(sh.PosN))
	e.u32(uint32(len(sh.OutTo)))
	e.u32(uint32(len(sh.InFrom)))
	e.i32s(sh.OutOff)
	e.i32s(sh.InOff)
	e.i32s(sh.OutTo)
	e.i32s(sh.OutLab)
	e.i32s(sh.InFrom)
	e.i32s(sh.InLab)
	e.i32s(sh.Pos)
	e.bytes(sh.Sorts)
	e.i32s(complexToInt32(sh.Complex))
	return seal(shardMagic, e.b)
}

// DecodeShard reconstructs a shard from EncodeShard's output. Every array is
// freshly allocated and owned by the result: the decoded shard's table views
// are value-equal copies of the snapshot slices the encoder saw, valid for
// any snapshot whose global tables agree over the shard's range (which every
// snapshot sharing the shard's residency ref does, by construction).
func DecodeShard(data []byte) (*Shard, error) {
	payload, err := unseal("shard", shardMagic, data)
	if err != nil {
		return nil, err
	}
	d := dec{b: payload}
	sh := &Shard{
		Base:    int(d.u32()),
		N:       int(d.count(0)),
		PosBase: int(d.u32()),
		PosN:    int(d.count(0)),
	}
	nOut := d.count(0)
	nIn := d.count(0)
	// Exact-size check: the six counts fully determine the payload length.
	want := 6*4 + 4*(2*(sh.N+1)+2*nOut+2*nIn+sh.N+sh.PosN) + sh.N
	if d.err || want != len(payload) {
		return nil, &CodecError{"shard", "length fields inconsistent with payload size"}
	}
	sh.OutOff = d.i32s(sh.N + 1)
	sh.InOff = d.i32s(sh.N + 1)
	sh.OutTo = d.i32s(nOut)
	sh.OutLab = d.i32s(nOut)
	sh.InFrom = d.i32s(nIn)
	sh.InLab = d.i32s(nIn)
	sh.Pos = d.i32s(sh.N)
	sh.Sorts = d.bytes(sh.N)
	sh.Complex = int32ToComplex(d.i32s(sh.PosN))
	if d.err || int(sh.OutOff[sh.N]) != nOut || int(sh.InOff[sh.N]) != nIn {
		return nil, &CodecError{"shard", "offset totals inconsistent with edge counts"}
	}
	return sh, nil
}

func complexToInt32(v []graph.ObjectID) []int32 {
	out := make([]int32, len(v))
	for i, o := range v {
		out[i] = int32(o)
	}
	return out
}

func int32ToComplex(v []int32) []graph.ObjectID {
	out := make([]graph.ObjectID, len(v))
	for i, o := range v {
		out[i] = graph.ObjectID(o)
	}
	return out
}

// EncodeCore serializes everything of the snapshot except the shard CSR
// blocks: the label universe, the global position/sort tables, the degree
// histograms, the shard geometry, and per-shard metadata (position range and
// edge counts) sufficient to attach non-resident shard refs without reading
// a single shard file. The atomic bitset and the Complex table are not
// written — both are pure functions of Pos (Pos[o] == -1 exactly for atomic
// objects, and Complex lists the rest in ID order), so LoadSnapshot rebuilds
// them bit-identically.
func (s *Snapshot) EncodeCore() []byte {
	e := enc{}
	e.u32(uint32(s.shardShift))
	e.u64(uint64(s.nLinks))
	e.u32(uint32(s.NumObjects()))
	e.u32(uint32(len(s.Labels)))
	for _, l := range s.Labels {
		e.u32(uint32(len(l)))
		e.bytes([]byte(l))
	}
	e.i32s(s.Pos)
	e.bytes(s.Sorts)
	nSh := s.NumShards()
	e.u32(uint32(nSh))
	for si := 0; si < nSh; si++ {
		m := s.shardMeta(si)
		e.u32(uint32(m.posBase))
		e.u32(uint32(m.posN))
		e.u32(uint32(m.nOut))
		e.u32(uint32(m.nIn))
	}
	encodeHist(&e, s.OutComplex)
	encodeHist(&e, s.OutAtomic)
	encodeHist(&e, s.InComplex)
	encodeHist(&e, s.OutAtomicSort)
	return seal(coreMagic, e.b)
}

func encodeHist(e *enc, h Hist) {
	e.u32(uint32(h.nRows))
	e.u32(uint32(h.rowLen))
	for _, c := range h.chunks {
		e.i32s(c)
	}
}

// decodeHist reads one histogram. maxRows bounds nRows before makeHist runs:
// when rowLen > 0 the remaining payload bounds nRows anyway, but a rowLen of
// zero carries no payload bytes per row, and without the cap a crafted nRows
// could still force a giant chunk-header allocation.
func decodeHist(d *dec, maxRows int) Hist {
	nRows := d.count(0)
	rowLen := d.count(0)
	if d.err || nRows > maxRows || (rowLen > 0 && nRows > (len(d.b)-d.off)/(4*rowLen)) {
		d.err = true
		return Hist{}
	}
	h := makeHist(nRows, rowLen)
	for _, c := range h.chunks {
		v := d.i32s(len(c))
		if d.err {
			return Hist{}
		}
		copy(c, v)
	}
	return h
}

// LoadSnapshot reconstructs a snapshot of db from an EncodeCore blob and one
// shard file per shard, written by EncodeShard (ShardBytes). No shard file
// is read here: every shard is attached to the returned snapshot's residency
// manager as a non-resident ref, and is faulted in — checksum-verified — the
// first time an accessor touches its object range. memBudget bounds the
// resident-shard bytes exactly as in CompileBudget (<= 0 means unlimited
// residency, still lazily loaded).
//
// The db must be the same instance the encoded snapshot was compiled from
// (or a value-identical reconstruction, e.g. the graph text the serving
// layer spills beside the shard files); object and label counts are
// cross-checked, deeper disagreement is undetectable here and yields
// garbage extractions, exactly like mutating a db under a live snapshot.
func LoadSnapshot(db *graph.DB, core []byte, shardFiles []string, memBudget int64) (*Snapshot, error) {
	payload, err := unseal("core", coreMagic, core)
	if err != nil {
		return nil, err
	}
	db.Freeze()
	d := dec{b: payload}
	s := &Snapshot{db: db, shardShift: uint(d.u32()), nLinks: int(d.u64())}
	// Counts that size allocations use positive per-element minima so a
	// corrupt length (valid CRC, untrusted source) fails as a CodecError
	// instead of attempting a multi-gigabyte make: every object costs at
	// least 5 payload bytes (4 of Pos + 1 of Sorts), every label at least
	// its 4-byte length field.
	n := d.count(5)
	nLab := d.count(4)
	if d.err {
		return nil, &CodecError{"core", "truncated header"}
	}
	if n != db.NumObjects() {
		return nil, &CodecError{"core", fmt.Sprintf("object count %d does not match database (%d)", n, db.NumObjects())}
	}
	s.Labels = make([]string, nLab)
	for i := range s.Labels {
		s.Labels[i] = string(d.bytes(d.count(1)))
	}
	s.Pos = d.i32s(n)
	s.Sorts = d.bytes(n)
	nSh := d.count(16) // each shard carries 16 bytes of meta below
	if d.err || nSh != numShards(n, s.shardShift) {
		return nil, &CodecError{"core", "shard count inconsistent with object count"}
	}
	if len(shardFiles) != nSh {
		return nil, &CodecError{"core", fmt.Sprintf("%d shard files for %d shards", len(shardFiles), nSh)}
	}
	metas := make([]shardMeta, nSh)
	for si := range metas {
		metas[si] = shardMeta{
			posBase: int(d.u32()), posN: int(d.count(0)),
			nOut: int(d.count(0)), nIn: int(d.count(0)),
		}
	}
	s.OutComplex = decodeHist(&d, n)
	s.OutAtomic = decodeHist(&d, n)
	s.InComplex = decodeHist(&d, n)
	s.OutAtomicSort = decodeHist(&d, n)
	if d.err || d.off != len(payload) {
		return nil, &CodecError{"core", "length fields inconsistent with payload size"}
	}

	// Rebuild the derived tables and intern map from Pos.
	s.Atomic = bitsetFromPos(s.Pos)
	for i, p := range s.Pos {
		if p >= 0 {
			if int(p) != len(s.Complex) {
				return nil, &CodecError{"core", "position table is not dense in ID order"}
			}
			s.Complex = append(s.Complex, graph.ObjectID(i))
		}
	}
	s.labelID = make(map[string]int, len(s.Labels))
	for i, l := range s.Labels {
		s.labelID[l] = i
	}
	if len(s.Complex) != s.OutComplex.nRows {
		return nil, &CodecError{"core", "histogram row count inconsistent with complex objects"}
	}

	res, err := newResidency(memBudgetFor(memBudget))
	if err != nil {
		return nil, err
	}
	s.shards = make([]*Shard, nSh)
	s.refs = make([]*shardRef, nSh)
	for si := range s.refs {
		s.refs[si] = res.adopt(shardFiles[si], metas[si])
	}
	s.res = res
	return s, nil
}

// ShardBytes returns shard si in the encoded shard format, faulting it in if
// it is not resident. The serving layer's shard-granular spill writes these
// blobs next to an EncodeCore blob; LoadSnapshot reads them back lazily.
func (s *Snapshot) ShardBytes(si int) []byte { return EncodeShard(s.shard(si)) }
