package compile

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
)

// codecDBs are the graphs the codec properties run over: the paper's DBG
// shape plus a multi-shard chain.
func codecDBs(t *testing.T) map[string]*graph.DB {
	t.Helper()
	dbgDB, _ := dbg.Generate(dbg.Options{})
	return map[string]*graph.DB{"dbg": dbgDB, "chain256": chainDB(t, 256)}
}

// TestShardCodecRoundTrip pins the shard codec property: decode(encode(sh))
// is value-identical to sh, and re-encoding the decoded shard reproduces the
// original bytes bit for bit, for every shard of every layout.
func TestShardCodecRoundTrip(t *testing.T) {
	for name, db := range codecDBs(t) {
		for _, shards := range []int{1, 4, 0} {
			s, err := CompileShardsCheck(db, shards, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			for si := 0; si < s.NumShards(); si++ {
				sh := s.Shard(si)
				blob := EncodeShard(sh)
				got, err := DecodeShard(blob)
				if err != nil {
					t.Fatalf("%s shards=%d shard %d: %v", name, shards, si, err)
				}
				if !reflect.DeepEqual(got, sh) {
					t.Fatalf("%s shards=%d shard %d: decoded shard differs", name, shards, si)
				}
				if blob2 := EncodeShard(got); !reflect.DeepEqual(blob2, blob) {
					t.Fatalf("%s shards=%d shard %d: re-encode not bit-identical", name, shards, si)
				}
			}
		}
	}
}

// TestShardCodecRejectsCorruption: wrong magic, any flipped payload byte,
// truncation, and inconsistent length fields all surface as *CodecError.
func TestShardCodecRejectsCorruption(t *testing.T) {
	s, err := CompileShardsCheck(chainDB(t, 256), 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeShard(s.Shard(1))

	wantErr := func(t *testing.T, data []byte) {
		t.Helper()
		if _, err := DecodeShard(data); err == nil {
			t.Fatal("corrupt shard decoded without error")
		} else if _, ok := err.(*CodecError); !ok {
			t.Fatalf("error type = %T, want *CodecError", err)
		}
	}
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, codecHeaderLen, len(blob) - 1} {
			wantErr(t, blob[:n])
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte("SXNOPE99"), blob[8:]...)
		wantErr(t, bad)
	})
	t.Run("bit-flips", func(t *testing.T) {
		// Every byte position matters: header flips fail the magic or
		// checksum, payload flips fail the checksum.
		for i := 0; i < len(blob); i += 7 {
			bad := append([]byte(nil), blob...)
			bad[i] ^= 0x40
			wantErr(t, bad)
		}
	})
	t.Run("appended-garbage", func(t *testing.T) {
		wantErr(t, append(append([]byte(nil), blob...), 0xff))
	})
}

// writeShardFiles spills every shard of s into dir and returns the paths, in
// shard order — the shape the serving layer's shard-granular spill produces.
func writeShardFiles(t *testing.T, s *Snapshot, dir string) []string {
	t.Helper()
	files := make([]string, s.NumShards())
	for si := range files {
		files[si] = filepath.Join(dir, fmt.Sprintf("shard-%d.shard", si))
		if err := os.WriteFile(files[si], s.ShardBytes(si), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// TestCoreCodecRoundTrip pins the full out-of-core round trip: EncodeCore +
// per-shard files + LoadSnapshot reconstruct a snapshot bit-identical to the
// original (via the flattened view) at an unlimited budget and at a budget
// so small that every access faults.
func TestCoreCodecRoundTrip(t *testing.T) {
	for name, db := range codecDBs(t) {
		for _, shards := range []int{1, 4, 0} {
			s, err := CompileShardsCheck(db, shards, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			core := s.EncodeCore()
			files := writeShardFiles(t, s, t.TempDir())
			for _, budget := range []int64{0, 1} {
				got, err := LoadSnapshot(db, core, files, budget)
				if err != nil {
					t.Fatalf("%s shards=%d budget=%d: %v", name, shards, budget, err)
				}
				snapEqual(t, got, s, fmt.Sprintf("%s shards=%d budget=%d", name, shards, budget))
				if budget == 1 && s.NumShards() > 1 && ResidencyStats().Faults == 0 {
					t.Fatal("tiny budget produced no shard faults")
				}
				// The core re-encodes bit-identically from the loaded snapshot.
				if !reflect.DeepEqual(got.EncodeCore(), core) {
					t.Fatalf("%s shards=%d budget=%d: core re-encode not bit-identical", name, shards, budget)
				}
			}
		}
	}
}

// TestCoreCodecRejectsMismatch: a core blob loaded against the wrong
// database, with the wrong shard-file count, or corrupted, is refused.
func TestCoreCodecRejectsMismatch(t *testing.T) {
	db := chainDB(t, 256)
	s, err := CompileShardsCheck(db, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	core := s.EncodeCore()
	files := writeShardFiles(t, s, t.TempDir())

	if _, err := LoadSnapshot(chainDB(t, 128), core, files[:2], 0); err == nil {
		t.Fatal("wrong database accepted")
	}
	if _, err := LoadSnapshot(db, core, files[:2], 0); err == nil {
		t.Fatal("wrong shard-file count accepted")
	}
	bad := append([]byte(nil), core...)
	bad[len(bad)-3] ^= 1
	if _, err := LoadSnapshot(db, bad, files, 0); err == nil {
		t.Fatal("corrupt core accepted")
	}
}

// TestLoadSnapshotFaultPanicsOnBadFile: a shard file that is missing or
// corrupt surfaces as a panic at fault time (the accessors have no error
// path; the facade contains it), not as silent garbage.
func TestLoadSnapshotFaultPanicsOnBadFile(t *testing.T) {
	db := chainDB(t, 256)
	s, err := CompileShardsCheck(db, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	files := writeShardFiles(t, s, t.TempDir())
	if err := os.Truncate(files[2], 10); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(db, s.EncodeCore(), files, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shards 0, 1, 3 fault fine.
	got.Out(graph.ObjectID(0))
	got.Out(graph.ObjectID(200))
	defer func() {
		if recover() == nil {
			t.Fatal("fault on truncated shard file did not panic")
		}
	}()
	got.Out(graph.ObjectID(130))
}
