// Package compile turns a graph.DB into an immutable, index-backed
// Snapshot that every extraction stage shares: CSR-style adjacency (flat
// []int32 edge arrays with per-object offsets), edge labels interned into a
// dense label universe, atomic objects as a bitset, dense positions for
// complex objects, and the per-(object, label) degree histograms that seed
// the greatest-fixpoint support counts.
//
// The paper's three-stage method (minimal perfect typing → greedy
// clustering → recast, §4–§6) runs many passes over the same link/atomic
// instance. Compiling the instance once and handing the same Snapshot to
// every pass removes the per-stage rebuild of label maps, position tables,
// and degree histograms, and replaces string comparisons on the hot paths
// with int32 label-ID comparisons.
//
// A Snapshot is immutable after Compile returns: concurrent readers need no
// synchronization, and a single Snapshot can back any number of concurrent
// extractions (the basis of core.Prepared and the HTTP snapshot cache).
// Label IDs are per-snapshot: they are dense indexes into this snapshot's
// sorted label table, not stable identifiers across graphs.
package compile

import (
	"schemex/internal/bitset"
	"schemex/internal/graph"
	"schemex/internal/par"
)

// NumSorts is the number of atomic value sorts (graph.SortString..SortBool).
const NumSorts = 4

// Histogram rows are grouped into fixed-size chunks of complex positions so
// Apply can alias the untouched chunks of the parent snapshot and rebuild
// only the chunks a delta dirtied. 64 rows keeps a chunk around a few KB for
// realistic label universes — big enough that chunk bookkeeping is noise,
// small enough that a single-edge delta rebuilds a sliver of the matrix.
const (
	histChunkShift = 6
	histChunkRows  = 1 << histChunkShift
	histChunkMask  = histChunkRows - 1
)

// Hist is a (complex position × column) count matrix stored as fixed-size
// row chunks: chunk c holds rows [c*64, (c+1)*64). Chunks are immutable
// after compilation, so a delta-derived snapshot shares every chunk the
// delta did not touch with its parent and allocates only the dirty ones.
type Hist struct {
	rowLen int
	nRows  int
	chunks [][]int32
}

// makeHist allocates a zeroed nRows×rowLen matrix. All chunks slice one
// backing array; each is capped to its own range so it can never grow into
// a neighbour.
func makeHist(nRows, rowLen int) Hist {
	h := Hist{rowLen: rowLen, nRows: nRows}
	if nRows == 0 {
		return h
	}
	nChunks := (nRows + histChunkMask) >> histChunkShift
	h.chunks = make([][]int32, nChunks)
	backing := make([]int32, nRows*rowLen)
	for c := range h.chunks {
		lo := c << histChunkShift
		hi := lo + histChunkRows
		if hi > nRows {
			hi = nRows
		}
		h.chunks[c] = backing[lo*rowLen : hi*rowLen : hi*rowLen]
	}
	return h
}

// deriveHist builds an nRows-row matrix over the same row length as parent,
// aliasing parent's chunk for every index where dirty is false and
// allocating a zeroed chunk (to be re-accumulated by the caller) where it is
// true. The caller must mark as dirty every chunk whose row range is not
// bit-identical in the parent — touched rows, and any chunk extending past
// the parent's last full row.
func deriveHist(parent Hist, nRows int, dirty []bool) Hist {
	h := Hist{rowLen: parent.rowLen, nRows: nRows}
	if nRows == 0 {
		return h
	}
	h.chunks = make([][]int32, len(dirty))
	for c := range dirty {
		if !dirty[c] {
			h.chunks[c] = parent.chunks[c]
			continue
		}
		lo := c << histChunkShift
		hi := lo + histChunkRows
		if hi > nRows {
			hi = nRows
		}
		h.chunks[c] = make([]int32, (hi-lo)*h.rowLen)
	}
	return h
}

// At returns the count at (row, col). Columns are label IDs for the plain
// degree histograms and labelID*NumSorts+sort for the sort-split one.
func (h *Hist) At(row, col int) int32 {
	return h.chunks[row>>histChunkShift][(row&histChunkMask)*h.rowLen+col]
}

// row returns the mutable backing slice of one row, for accumulation during
// compilation. Never call it on a chunk shared with a parent snapshot.
func (h *Hist) row(r int) []int32 {
	off := (r & histChunkMask) * h.rowLen
	return h.chunks[r>>histChunkShift][off : off+h.rowLen]
}

// Snapshot is the compiled, immutable view of a graph.DB.
//
// Layout invariants:
//   - Label IDs are dense indexes into Labels, which is sorted; because
//     graph.DB sorts each object's edge lists by (label string, neighbor),
//     every per-object CSR run is sorted by (label ID, neighbor) too.
//   - OutTo[OutOff[o]:OutOff[o+1]] / OutLab[...] are the targets/labels of
//     object o's outgoing edges; InFrom/InLab mirror them for incoming edges.
//   - Pos maps an ObjectID to its dense complex position (or -1 for atomic
//     objects); Complex is the inverse, in ObjectID order.
//   - The degree histograms are chunked (pos, column) matrices — see Hist —
//     addressed At(pos, labelID) and counting o's ℓ-edges to complex
//     targets, to atomic targets, and from complex sources; OutAtomicSort
//     further splits the atomic counts by value sort, At(pos,
//     labelID*NumSorts+sort).
//
// All fields are exported for the stage packages but must be treated as
// read-only; mutating a Snapshot breaks every extraction sharing it.
type Snapshot struct {
	db *graph.DB

	// Labels is the dense label universe, sorted ascending.
	Labels []string
	// OutOff/InOff have length NumObjects()+1; the edges of object o occupy
	// [Off[o], Off[o+1]).
	OutOff, InOff []int32
	// OutTo/OutLab hold the target object ID and label ID of each outgoing
	// edge; InFrom/InLab the source object ID and label ID of each incoming
	// edge.
	OutTo, OutLab, InFrom, InLab []int32
	// Atomic marks atomic objects, as a bitset over ObjectIDs.
	Atomic *bitset.Set
	// Complex lists the complex objects in ObjectID order; Pos is its
	// inverse (Pos[o] == -1 for atomic objects).
	Complex []graph.ObjectID
	Pos     []int32
	// Sorts[o] is the value sort of atomic object o (meaningless for
	// complex objects).
	Sorts []uint8

	// Degree histograms over (complex position, label ID); see the layout
	// invariants above. They seed the GFP support counts, so the fixpoint
	// evaluator never rebuilds them.
	OutComplex, OutAtomic, InComplex Hist
	OutAtomicSort                    Hist

	labelID map[string]int
}

// Compile builds the snapshot of db using one worker per CPU. The result is
// identical at any worker count (shards write disjoint rows).
func Compile(db *graph.DB) *Snapshot {
	s, _ := CompileCheck(db, 0, nil)
	return s
}

// CompileCheck is Compile with an explicit worker count (<= 0 means one per
// CPU, 1 runs serially) and a cooperative cancellation checkpoint (nil
// means "never cancel"). On a non-nil check error compilation stops, all
// workers are joined, and the error is returned with a nil snapshot.
func CompileCheck(db *graph.DB, workers int, check func() error) (*Snapshot, error) {
	db.Freeze() // flush lazy edge sorting before (possibly concurrent) reads
	n := db.NumObjects()

	s := &Snapshot{
		db:     db,
		Labels: db.Labels(),
		Atomic: bitset.New(n),
		Pos:    make([]int32, n),
		Sorts:  make([]uint8, n),
	}
	s.labelID = make(map[string]int, len(s.Labels))
	for i, l := range s.Labels {
		s.labelID[l] = i
	}
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}

	// Dense complex positions and the atomic bitset/sort table.
	for i := 0; i < n; i++ {
		o := graph.ObjectID(i)
		if v, ok := db.AtomicValue(o); ok {
			s.Atomic.Set(i)
			s.Sorts[i] = uint8(v.Sort)
			s.Pos[i] = -1
		} else {
			s.Pos[i] = int32(len(s.Complex))
			s.Complex = append(s.Complex, o)
		}
	}

	// CSR offsets from the per-object degrees, then a sharded fill: each
	// object owns its own [Off[o], Off[o+1]) run, so shards never race.
	s.OutOff = make([]int32, n+1)
	s.InOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		s.OutOff[i+1] = s.OutOff[i] + int32(len(db.Out(graph.ObjectID(i))))
		s.InOff[i+1] = s.InOff[i] + int32(len(db.In(graph.ObjectID(i))))
	}
	nE := int(s.OutOff[n])
	s.OutTo = make([]int32, nE)
	s.OutLab = make([]int32, nE)
	s.InFrom = make([]int32, nE)
	s.InLab = make([]int32, nE)

	nC := len(s.Complex)
	nL := len(s.Labels)
	s.OutComplex = makeHist(nC, nL)
	s.OutAtomic = makeHist(nC, nL)
	s.InComplex = makeHist(nC, nL)
	s.OutAtomicSort = makeHist(nC, nL*NumSorts)

	const checkEvery = 1024
	if err := par.DoErr(workers, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if check != nil && i%checkEvery == 0 {
				if err := check(); err != nil {
					return err
				}
			}
			o := graph.ObjectID(i)
			var outC, outA, outAS, inC []int32
			if p := s.Pos[i]; p >= 0 {
				outC = s.OutComplex.row(int(p))
				outA = s.OutAtomic.row(int(p))
				outAS = s.OutAtomicSort.row(int(p))
				inC = s.InComplex.row(int(p))
			}
			at := s.OutOff[i]
			for _, e := range db.Out(o) {
				lab := int32(s.labelID[e.Label])
				s.OutTo[at] = int32(e.To)
				s.OutLab[at] = lab
				at++
				if outC != nil {
					if s.Atomic.Test(int(e.To)) {
						outA[lab]++
						outAS[int(lab)*NumSorts+int(s.Sorts[e.To])]++
					} else {
						outC[lab]++
					}
				}
			}
			at = s.InOff[i]
			for _, e := range db.In(o) {
				lab := int32(s.labelID[e.Label])
				s.InFrom[at] = int32(e.From)
				s.InLab[at] = lab
				at++
				if inC != nil {
					inC[lab]++
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// DB returns the database the snapshot was compiled from. The snapshot
// holds positional indexes into it, so the database must not be mutated
// while the snapshot is in use.
func (s *Snapshot) DB() *graph.DB { return s.db }

// NumObjects reports the number of objects (complex plus atomic).
func (s *Snapshot) NumObjects() int { return len(s.Pos) }

// NumComplex reports the number of complex objects.
func (s *Snapshot) NumComplex() int { return len(s.Complex) }

// NumLabels reports the size of the label universe.
func (s *Snapshot) NumLabels() int { return len(s.Labels) }

// NumLinks reports the number of link facts.
func (s *Snapshot) NumLinks() int { return len(s.OutTo) }

// LabelID returns the dense ID of a label, if it occurs in the data.
func (s *Snapshot) LabelID(label string) (int, bool) {
	id, ok := s.labelID[label]
	return id, ok
}

// IsAtomic reports whether object o is atomic.
func (s *Snapshot) IsAtomic(o graph.ObjectID) bool { return s.Atomic.Test(int(o)) }

// Value returns the value of an atomic object.
func (s *Snapshot) Value(o graph.ObjectID) (graph.Value, bool) { return s.db.AtomicValue(o) }

// Out returns the targets and label IDs of o's outgoing edges, sorted by
// (label ID, target). The slices alias the snapshot and must not be
// modified.
func (s *Snapshot) Out(o graph.ObjectID) (to, lab []int32) {
	return s.OutTo[s.OutOff[o]:s.OutOff[o+1]], s.OutLab[s.OutOff[o]:s.OutOff[o+1]]
}

// In returns the sources and label IDs of o's incoming edges, sorted by
// (label ID, source). The slices alias the snapshot and must not be
// modified.
func (s *Snapshot) In(o graph.ObjectID) (from, lab []int32) {
	return s.InFrom[s.InOff[o]:s.InOff[o+1]], s.InLab[s.InOff[o]:s.InOff[o+1]]
}
