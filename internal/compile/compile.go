// Package compile turns a graph.DB into an immutable, index-backed
// Snapshot that every extraction stage shares: CSR-style adjacency (flat
// []int32 edge arrays with per-object offsets, partitioned into fixed-range
// object shards), edge labels interned into a dense label universe, atomic
// objects as a bitset, dense positions for complex objects, and the
// per-(object, label) degree histograms that seed the greatest-fixpoint
// support counts.
//
// The paper's three-stage method (minimal perfect typing → greedy
// clustering → recast, §4–§6) runs many passes over the same link/atomic
// instance. Compiling the instance once and handing the same Snapshot to
// every pass removes the per-stage rebuild of label maps, position tables,
// and degree histograms, and replaces string comparisons on the hot paths
// with int32 label-ID comparisons.
//
// A Snapshot is immutable after Compile returns: concurrent readers need no
// synchronization, and a single Snapshot can back any number of concurrent
// extractions (the basis of core.Prepared and the HTTP snapshot cache).
// Label IDs are per-snapshot: they are dense indexes into this snapshot's
// sorted label table, not stable identifiers across graphs.
package compile

import (
	"schemex/internal/bitset"
	"schemex/internal/graph"
	"schemex/internal/par"
)

// NumSorts is the number of atomic value sorts (graph.SortString..SortBool).
const NumSorts = 4

// Histogram rows are grouped into fixed-size chunks of complex positions so
// Apply can alias the untouched chunks of the parent snapshot and rebuild
// only the chunks a delta dirtied. 64 rows keeps a chunk around a few KB for
// realistic label universes — big enough that chunk bookkeeping is noise,
// small enough that a single-edge delta rebuilds a sliver of the matrix.
const (
	histChunkShift = 6
	histChunkRows  = 1 << histChunkShift
	histChunkMask  = histChunkRows - 1
)

// Hist is a (complex position × column) count matrix stored as fixed-size
// row chunks: chunk c holds rows [c*64, (c+1)*64). Chunks are immutable
// after compilation, so a delta-derived snapshot shares every chunk the
// delta did not touch with its parent and allocates only the dirty ones.
type Hist struct {
	rowLen int
	nRows  int
	chunks [][]int32
}

// makeHist allocates a zeroed nRows×rowLen matrix. All chunks slice one
// backing array; each is capped to its own range so it can never grow into
// a neighbour.
func makeHist(nRows, rowLen int) Hist {
	h := Hist{rowLen: rowLen, nRows: nRows}
	if nRows == 0 {
		return h
	}
	nChunks := (nRows + histChunkMask) >> histChunkShift
	h.chunks = make([][]int32, nChunks)
	backing := make([]int32, nRows*rowLen)
	for c := range h.chunks {
		lo := c << histChunkShift
		hi := lo + histChunkRows
		if hi > nRows {
			hi = nRows
		}
		h.chunks[c] = backing[lo*rowLen : hi*rowLen : hi*rowLen]
	}
	return h
}

// deriveHist builds an nRows-row matrix over the same row length as parent,
// aliasing parent's chunk for every index where dirty is false and
// allocating a zeroed chunk (to be re-accumulated by the caller) where it is
// true. The caller must mark as dirty every chunk whose row range is not
// bit-identical in the parent — touched rows, and any chunk extending past
// the parent's last full row.
func deriveHist(parent Hist, nRows int, dirty []bool) Hist {
	h := Hist{rowLen: parent.rowLen, nRows: nRows}
	if nRows == 0 {
		return h
	}
	h.chunks = make([][]int32, len(dirty))
	for c := range dirty {
		if !dirty[c] {
			h.chunks[c] = parent.chunks[c]
			continue
		}
		lo := c << histChunkShift
		hi := lo + histChunkRows
		if hi > nRows {
			hi = nRows
		}
		h.chunks[c] = make([]int32, (hi-lo)*h.rowLen)
	}
	return h
}

// At returns the count at (row, col). Columns are label IDs for the plain
// degree histograms and labelID*NumSorts+sort for the sort-split one.
func (h *Hist) At(row, col int) int32 {
	return h.chunks[row>>histChunkShift][(row&histChunkMask)*h.rowLen+col]
}

// row returns the mutable backing slice of one row, for accumulation during
// compilation. Never call it on a chunk shared with a parent snapshot.
func (h *Hist) row(r int) []int32 {
	off := (r & histChunkMask) * h.rowLen
	return h.chunks[r>>histChunkShift][off : off+h.rowLen]
}

// Snapshot is the compiled, immutable view of a graph.DB.
//
// Layout invariants:
//   - Label IDs are dense indexes into Labels, which is sorted; because
//     graph.DB sorts each object's edge lists by (label string, neighbor),
//     every per-object CSR run is sorted by (label ID, neighbor) too.
//   - The object-ID space is partitioned into fixed ranges of ShardSize()
//     IDs; each Shard holds the CSR block of its range with shard-local
//     offsets (see Shard). Out/In hide the dispatch.
//   - Pos maps an ObjectID to its dense complex position (or -1 for atomic
//     objects); Complex is the inverse, in ObjectID order. Positions follow
//     ID order, so every shard owns one contiguous position range.
//   - The degree histograms are chunked (pos, column) matrices — see Hist —
//     addressed At(pos, labelID) and counting o's ℓ-edges to complex
//     targets, to atomic targets, and from complex sources; OutAtomicSort
//     further splits the atomic counts by value sort, At(pos,
//     labelID*NumSorts+sort).
//
// All exported fields are for the stage packages but must be treated as
// read-only; mutating a Snapshot breaks every extraction sharing it.
//
// The shard layout is purely representational: a snapshot's contents are
// bit-identical at every shard count, which the shard property tests pin.
type Snapshot struct {
	db *graph.DB

	// Labels is the dense label universe, sorted ascending.
	Labels []string
	// Atomic marks atomic objects, as a bitset over ObjectIDs.
	Atomic *bitset.Set
	// Complex lists the complex objects in ObjectID order; Pos is its
	// inverse (Pos[o] == -1 for atomic objects).
	Complex []graph.ObjectID
	Pos     []int32
	// Sorts[o] is the value sort of atomic object o (meaningless for
	// complex objects).
	Sorts []uint8

	// Degree histograms over (complex position, label ID); see the layout
	// invariants above. They seed the GFP support counts, so the fixpoint
	// evaluator never rebuilds them.
	OutComplex, OutAtomic, InComplex Hist
	OutAtomicSort                    Hist

	labelID map[string]int

	// shards partitions the CSR adjacency by object range; shardShift is
	// the log2 shard size and nLinks the total out-edge count. With a
	// residency manager attached (res != nil), shards[si] may be nil and
	// refs[si] holds the spillable handle — the accessors fault through it.
	shards     []*Shard
	refs       []*shardRef
	res        *Residency
	shardShift uint
	nLinks     int
}

// Compile builds the snapshot of db using one worker per CPU and automatic
// shard layout. The result is identical at any worker count (workers write
// disjoint rows).
func Compile(db *graph.DB) *Snapshot {
	s, _ := CompileCheck(db, 0, nil)
	return s
}

// CompileCheck is Compile with an explicit worker count (<= 0 means one per
// CPU, 1 runs serially) and a cooperative cancellation checkpoint (nil
// means "never cancel"). On a non-nil check error compilation stops, all
// workers are joined, and the error is returned with a nil snapshot.
func CompileCheck(db *graph.DB, workers int, check func() error) (*Snapshot, error) {
	return CompileShardsCheck(db, 0, workers, check)
}

// CompileShardsCheck is CompileCheck with an explicit shard count: 0 sizes
// shards automatically from the graph, 1 compiles the single flat block of
// the pre-sharding layout, and k > 1 partitions the object space into (at
// most) k fixed ranges. Purely a layout knob — the snapshot's contents are
// bit-identical at any setting.
func CompileShardsCheck(db *graph.DB, shards, workers int, check func() error) (*Snapshot, error) {
	return CompileBudget(db, shards, workers, 0, check)
}

// CompileBudget is CompileShardsCheck with a resident-shard memory budget in
// bytes. A positive budget (or the TestMemBudgetEnv override when the budget
// is 0) attaches a residency manager after compilation: every shard is
// spilled through the codec to a write-once file and the byte-budgeted LRU
// keeps only the hottest shards resident, faulting the rest in behind the
// Out/In accessor seam. Budget 0 without the override keeps the snapshot
// fully resident. Purely a paging knob — results are bit-identical at any
// budget.
func CompileBudget(db *graph.DB, shards, workers int, memBudget int64, check func() error) (*Snapshot, error) {
	s, err := compileShift(db, shardShiftFor(shards, db.NumObjects()), workers, check)
	if err != nil {
		return nil, err
	}
	if budget := memBudgetFor(memBudget); budget > 0 {
		res, err := newResidency(budget)
		if err != nil {
			return nil, err
		}
		if err := s.attach(res); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// compileShift compiles db at a fixed shard-size exponent. Apply's
// full-recompile fallback comes through here with the parent's exponent, so
// a session's shard geometry is stable across fallbacks.
func compileShift(db *graph.DB, shift uint, workers int, check func() error) (*Snapshot, error) {
	db.Freeze() // flush lazy edge sorting before (possibly concurrent) reads
	n := db.NumObjects()

	s := &Snapshot{
		db:         db,
		Labels:     db.Labels(),
		Atomic:     bitset.New(n),
		Pos:        make([]int32, n),
		Sorts:      make([]uint8, n),
		shardShift: shift,
	}
	s.labelID = make(map[string]int, len(s.Labels))
	for i, l := range s.Labels {
		s.labelID[l] = i
	}
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}

	// Dense complex positions and the atomic bitset/sort table, recording
	// the position watermark at every shard boundary: positions follow ID
	// order, so shard si's complex objects are exactly positions
	// [posBase[si], posBase[si+1]).
	nSh := numShards(n, shift)
	posBase := make([]int, nSh+1)
	mask := 1<<shift - 1
	for i := 0; i < n; i++ {
		if i&mask == 0 {
			posBase[i>>shift] = len(s.Complex)
		}
		o := graph.ObjectID(i)
		if v, ok := db.AtomicValue(o); ok {
			s.Atomic.Set(i)
			s.Sorts[i] = uint8(v.Sort)
			s.Pos[i] = -1
		} else {
			s.Pos[i] = int32(len(s.Complex))
			s.Complex = append(s.Complex, o)
		}
	}
	posBase[nSh] = len(s.Complex)

	// Per-shard CSR blocks: offsets are a prefix sum local to each shard,
	// so shards size and allocate their arrays independently in parallel.
	s.shards = make([]*Shard, nSh)
	if err := par.DoItemsErr(workers, nSh, func(si int) error {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		sh := newShard(s, si, posBase[si], posBase[si+1])
		for i := 0; i < sh.N; i++ {
			o := graph.ObjectID(sh.Base + i)
			sh.OutOff[i+1] = sh.OutOff[i] + int32(len(db.Out(o)))
			sh.InOff[i+1] = sh.InOff[i] + int32(len(db.In(o)))
		}
		sh.alloc()
		s.shards[si] = sh
		return nil
	}); err != nil {
		return nil, err
	}
	for _, sh := range s.shards {
		s.nLinks += len(sh.OutTo)
	}

	nC := len(s.Complex)
	nL := len(s.Labels)
	s.OutComplex = makeHist(nC, nL)
	s.OutAtomic = makeHist(nC, nL)
	s.InComplex = makeHist(nC, nL)
	s.OutAtomicSort = makeHist(nC, nL*NumSorts)

	// Fill, parallel over shard subranges: spans are sized by worker count
	// and clipped at shard boundaries, so a single huge shard still fans
	// out over every worker. Each object owns its CSR run and histogram
	// row, so spans never race.
	spans := s.fillSpans(workers)
	if err := par.DoItemsErr(workers, len(spans), func(k int) error {
		sp := spans[k]
		return s.fillRange(s.shards[sp.shard], sp.lo, sp.hi, check)
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// span is one shard-local object range [lo, hi) of shard shard.
type span struct{ shard, lo, hi int }

// fillSpans splits the object space into per-shard subranges of roughly
// n/workers objects, so the fill saturates the pool even when one shard
// dominates (shards=1 degenerates to exactly the pre-sharding chunking).
func (s *Snapshot) fillSpans(workers int) []span {
	per := (s.NumObjects() + par.Workers(workers) - 1) / par.Workers(workers)
	if per < 1 {
		per = 1
	}
	var out []span
	for si, sh := range s.shards {
		for lo := 0; lo < sh.N; lo += per {
			hi := lo + per
			if hi > sh.N {
				hi = sh.N
			}
			out = append(out, span{si, lo, hi})
		}
	}
	return out
}

const checkEvery = 1024

// fillRange scans the database rows of sh's local objects [lo, hi) into the
// shard's CSR block and accumulates their histogram rows. Only Compile uses
// it: Apply re-accumulates dirty histogram chunks separately, because a
// rebuilt shard may still alias clean chunks of the parent's histograms.
func (s *Snapshot) fillRange(sh *Shard, lo, hi int, check func() error) error {
	db := s.db
	for i := lo; i < hi; i++ {
		if check != nil && i%checkEvery == 0 {
			if err := check(); err != nil {
				return err
			}
		}
		gi := sh.Base + i
		o := graph.ObjectID(gi)
		var outC, outA, outAS, inC []int32
		if p := s.Pos[gi]; p >= 0 {
			outC = s.OutComplex.row(int(p))
			outA = s.OutAtomic.row(int(p))
			outAS = s.OutAtomicSort.row(int(p))
			inC = s.InComplex.row(int(p))
		}
		at := sh.OutOff[i]
		for _, e := range db.Out(o) {
			lab := int32(s.labelID[e.Label])
			sh.OutTo[at] = int32(e.To)
			sh.OutLab[at] = lab
			at++
			if outC != nil {
				if s.Atomic.Test(int(e.To)) {
					outA[lab]++
					outAS[int(lab)*NumSorts+int(s.Sorts[e.To])]++
				} else {
					outC[lab]++
				}
			}
		}
		at = sh.InOff[i]
		for _, e := range db.In(o) {
			lab := int32(s.labelID[e.Label])
			sh.InFrom[at] = int32(e.From)
			sh.InLab[at] = lab
			at++
			if inC != nil {
				inC[lab]++
			}
		}
	}
	return nil
}

// DB returns the database the snapshot was compiled from. The snapshot
// holds positional indexes into it, so the database must not be mutated
// while the snapshot is in use.
func (s *Snapshot) DB() *graph.DB { return s.db }

// NumObjects reports the number of objects (complex plus atomic).
func (s *Snapshot) NumObjects() int { return len(s.Pos) }

// NumComplex reports the number of complex objects.
func (s *Snapshot) NumComplex() int { return len(s.Complex) }

// NumLabels reports the size of the label universe.
func (s *Snapshot) NumLabels() int { return len(s.Labels) }

// NumLinks reports the number of link facts.
func (s *Snapshot) NumLinks() int { return s.nLinks }

// LabelID returns the dense ID of a label, if it occurs in the data.
func (s *Snapshot) LabelID(label string) (int, bool) {
	id, ok := s.labelID[label]
	return id, ok
}

// IsAtomic reports whether object o is atomic.
func (s *Snapshot) IsAtomic(o graph.ObjectID) bool { return s.Atomic.Test(int(o)) }

// Value returns the value of an atomic object.
func (s *Snapshot) Value(o graph.ObjectID) (graph.Value, bool) { return s.db.AtomicValue(o) }

// Out returns the targets and label IDs of o's outgoing edges, sorted by
// (label ID, target). The slices alias the snapshot and must not be
// modified.
func (s *Snapshot) Out(o graph.ObjectID) (to, lab []int32) {
	si := int(o) >> s.shardShift
	sh := s.shards[si]
	if sh == nil {
		sh = s.refs[si].get()
	}
	i := int(o) - sh.Base
	a, b := sh.OutOff[i], sh.OutOff[i+1]
	return sh.OutTo[a:b], sh.OutLab[a:b]
}

// In returns the sources and label IDs of o's incoming edges, sorted by
// (label ID, source). The slices alias the snapshot and must not be
// modified.
func (s *Snapshot) In(o graph.ObjectID) (from, lab []int32) {
	si := int(o) >> s.shardShift
	sh := s.shards[si]
	if sh == nil {
		sh = s.refs[si].get()
	}
	i := int(o) - sh.Base
	a, b := sh.InOff[i], sh.InOff[i+1]
	return sh.InFrom[a:b], sh.InLab[a:b]
}
