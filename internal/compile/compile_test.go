package compile

import (
	"errors"
	"fmt"
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
)

func buildSample() *graph.DB {
	db := graph.New()
	db.Link("gates", "microsoft", "is-manager-of")
	db.LinkAtom("gates", "name", "gates.name", "Gates")
	db.LinkAtom("microsoft", "name", "microsoft.name", "Microsoft")
	db.Link("ballmer", "microsoft", "works-for")
	db.LinkAtom("ballmer", "age", "ballmer.age", "42")
	return db
}

func TestSnapshotMirrorsDB(t *testing.T) {
	db := buildSample()
	s := Compile(db)

	if s.NumObjects() != db.NumObjects() {
		t.Fatalf("NumObjects = %d, want %d", s.NumObjects(), db.NumObjects())
	}
	if s.NumLinks() != db.NumLinks() {
		t.Fatalf("NumLinks = %d, want %d", s.NumLinks(), db.NumLinks())
	}
	wantLabels := db.Labels()
	if fmt.Sprint(s.Labels) != fmt.Sprint(wantLabels) {
		t.Fatalf("Labels = %v, want %v", s.Labels, wantLabels)
	}

	// Every CSR edge must match the DB's edge lists, in order.
	db.Objects(func(o graph.ObjectID) {
		to, lab := s.Out(o)
		edges := db.Out(o)
		if len(to) != len(edges) {
			t.Fatalf("obj %v: %d out edges, want %d", o, len(to), len(edges))
		}
		for i, e := range edges {
			if graph.ObjectID(to[i]) != e.To || s.Labels[lab[i]] != e.Label {
				t.Fatalf("obj %v out edge %d: (%d,%s) want (%v,%s)", o, i, to[i], s.Labels[lab[i]], e.To, e.Label)
			}
		}
		from, lab := s.In(o)
		edges = db.In(o)
		for i, e := range edges {
			if graph.ObjectID(from[i]) != e.From || s.Labels[lab[i]] != e.Label {
				t.Fatalf("obj %v in edge %d mismatch", o, i)
			}
		}
		if s.IsAtomic(o) != db.IsAtomic(o) {
			t.Fatalf("obj %v: IsAtomic mismatch", o)
		}
	})

	// Dense complex positions round-trip.
	for i, o := range s.Complex {
		if s.Pos[o] != int32(i) {
			t.Fatalf("Pos[%v] = %d, want %d", o, s.Pos[o], i)
		}
	}
	for _, o := range db.AtomicObjects() {
		if s.Pos[o] != -1 {
			t.Fatalf("atomic %v has position %d", o, s.Pos[o])
		}
	}
}

func TestSnapshotHistograms(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	s := Compile(db)
	for pi, o := range s.Complex {
		wantOutC := make(map[string]int32)
		wantOutA := make(map[string]int32)
		for _, e := range db.Out(o) {
			if db.IsAtomic(e.To) {
				wantOutA[e.Label]++
			} else {
				wantOutC[e.Label]++
			}
		}
		wantIn := make(map[string]int32)
		for _, e := range db.In(o) {
			wantIn[e.Label]++
		}
		for li, l := range s.Labels {
			if got := s.OutComplex.At(pi, li); got != wantOutC[l] {
				t.Fatalf("OutComplex[%v,%s] = %d, want %d", o, l, got, wantOutC[l])
			}
			if got := s.OutAtomic.At(pi, li); got != wantOutA[l] {
				t.Fatalf("OutAtomic[%v,%s] = %d, want %d", o, l, got, wantOutA[l])
			}
			if got := s.InComplex.At(pi, li); got != wantIn[l] {
				t.Fatalf("InComplex[%v,%s] = %d, want %d", o, l, got, wantIn[l])
			}
			var sortSum int32
			for si := 0; si < NumSorts; si++ {
				sortSum += s.OutAtomicSort.At(pi, li*NumSorts+si)
			}
			if sortSum != wantOutA[l] {
				t.Fatalf("OutAtomicSort[%v,%s] sums to %d, want %d", o, l, sortSum, wantOutA[l])
			}
		}
	}
}

func TestCompileDeterministicAcrossWorkers(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	serial, err := CompileCheck(db, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CompileCheck(db, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, parallel, serial, "parallel vs serial compile")
}

func TestCompileCancelled(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	boom := errors.New("boom")
	s, err := CompileCheck(db, 1, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s != nil {
		t.Fatal("cancelled compile returned a snapshot")
	}
}

func TestEmptyDB(t *testing.T) {
	s := Compile(graph.New())
	if s.NumObjects() != 0 || s.NumComplex() != 0 || s.NumLabels() != 0 || s.NumLinks() != 0 {
		t.Fatal("empty snapshot has nonzero counts")
	}
}
