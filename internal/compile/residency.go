// Residency manager: a byte-budgeted LRU of resident shards behind the
// Snapshot.Out/In accessor seam. With a memory budget attached, a
// snapshot's shards live behind shardRefs — shared, immutable-content
// handles that a parent and every delta-derived child alias — and the
// manager spills the least recently used unpinned shard to its write-once
// file whenever resident bytes exceed the budget. An accessor touching a
// non-resident shard faults it back in from the file, checksum-verified.
//
// Invariants:
//   - A shard's file is written exactly once, when the ref is created
//     (res.add) or adopted from a serving-layer spill (res.adopt). Shards
//     are immutable, so the file is never stale and eviction is a pointer
//     drop, never a write.
//   - A ref is in the LRU iff it is resident and unpinned; only LRU members
//     are ever evicted. Pinned shards can therefore overcommit the budget:
//     pins win, the budget is a target, not a hard cap.
//   - Readers holding a *Shard (or slices into one) stay valid across
//     eviction — the GC keeps the arrays alive for exactly as long as
//     anyone uses them. Pinning is an anti-thrash measure for phases that
//     re-enter a shard many times (a GFP propagation round, a dirty-shard
//     rebuild), not a correctness requirement.
//   - Lock order: ref.mu (per-shard fault serialization) before res.mu
//     (LRU bookkeeping). Eviction takes only res.mu and flips the resident
//     pointer atomically, so it never waits on a fault in progress.
//     Residency locks are leaves: nothing is called under them, so callers
//     holding serving-layer locks (the HTTP stripe locks) can fault freely.
//
// A fault that cannot read its shard file panics; the facade's panic
// containment converts that into an *InternalError, the same contract as
// any other broken invariant behind the error-free accessors.
package compile

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"schemex/internal/bitset"
)

// TestMemBudgetEnv, when set to a positive integer (bytes), applies that
// memory budget to every snapshot whose caller did not set one explicitly —
// the residency analogue of TestShardsEnv, letting CI drive the whole test
// suite through constant shard faulting without threading an option into
// every call site. Explicit budgets win.
const TestMemBudgetEnv = "SCHEMEX_TEST_MEM_BUDGET"

// memBudgetFor resolves the effective memory budget: an explicit positive
// budget wins, otherwise the TestMemBudgetEnv override applies, otherwise
// zero (fully resident snapshots, no residency manager).
func memBudgetFor(budget int64) int64 {
	if budget > 0 {
		return budget
	}
	if v, err := strconv.ParseInt(os.Getenv(TestMemBudgetEnv), 10, 64); err == nil && v > 0 {
		return v
	}
	return 0
}

// Process-wide residency counters, aggregated across every manager (serving
// processes hold one per session lineage). Exposed through ResidencyStats
// for /v1/metrics and the CLI's -v reporting.
var (
	statShardFaults atomic.Uint64
	statShardEvicts atomic.Uint64
	statShardPins   atomic.Uint64
)

// ResidencyStatsSnapshot is a point-in-time copy of the process-wide shard
// residency counters.
type ResidencyStatsSnapshot struct {
	// Faults counts shards decoded back in from their spill files.
	Faults uint64
	// Evictions counts resident shards dropped to meet a budget.
	Evictions uint64
	// Pins counts pin acquisitions (GFP phases, dirty-shard rebuilds).
	Pins uint64
}

// ResidencyStats returns the process-wide shard fault/evict/pin counters.
func ResidencyStats() ResidencyStatsSnapshot {
	return ResidencyStatsSnapshot{
		Faults:    statShardFaults.Load(),
		Evictions: statShardEvicts.Load(),
		Pins:      statShardPins.Load(),
	}
}

// shardMeta is the part of a shard the snapshot must answer questions about
// without faulting the shard in: its position range (Apply's offset
// chaining) and edge counts (nLinks, size accounting).
type shardMeta struct {
	posBase, posN int
	nOut, nIn     int
}

// Residency owns the resident-shard budget of one snapshot lineage (a root
// Prepare and every child derived through Apply share the manager, so the
// budget bounds the lineage's live CSR bytes, not each snapshot's). Spill
// files for shards it creates live in a private temp directory removed when
// the manager is garbage collected; adopted files (a serving layer's
// durable shard spill) are read-only and never deleted here.
type Residency struct {
	budget int64 // <= 0: unlimited (lazy loading without eviction)
	dir    string

	mu   sync.Mutex
	used int64
	seq  int
	lru  *list.List // of *shardRef; front = most recently used
}

// newResidency creates a manager with its spill directory. budget <= 0
// means unlimited: shards still load lazily through refs (LoadSnapshot
// needs that), but nothing is ever evicted.
func newResidency(budget int64) (*Residency, error) {
	dir, err := os.MkdirTemp("", "schemex-shards-")
	if err != nil {
		return nil, fmt.Errorf("compile: residency spill dir: %w", err)
	}
	r := &Residency{budget: budget, dir: dir, lru: list.New()}
	// The snapshot lineage holds the manager for as long as any snapshot
	// lives; once the last one is collected the spill files are garbage.
	runtime.SetFinalizer(r, func(r *Residency) { os.RemoveAll(r.dir) })
	return r, nil
}

// shardRef is the shared handle of one spillable shard. Parent and child
// snapshots whose shard si is untouched alias the same ref, so one resident
// copy (or one file) serves the whole lineage. The shard's global-table
// views are value-equal for every sharer — an untouched shard's slice of
// Pos/Sorts/Complex is identical across the Applys that shared it — which
// is why a faulted shard (owned arrays, see DecodeShard) needs no rebinding
// per snapshot.
type shardRef struct {
	res   *Residency
	file  string
	owned bool // file lives in res.dir and is managed by the finalizer
	size  int64
	meta  shardMeta

	mu   sync.Mutex // serializes fault decode for this ref
	pins int
	elem *list.Element // non-nil iff in res.lru (resident && unpinned)
	ptr  atomic.Pointer[Shard]
	hits atomic.Uint32 // fast-path accesses since creation, drives LRU touches
}

// shardSize estimates a shard's resident bytes (array payloads; headers are
// noise at any realistic shard size).
func shardSize(sh *Shard) int64 {
	return int64(4*(len(sh.OutOff)+len(sh.InOff)+len(sh.OutTo)+len(sh.OutLab)+
		len(sh.InFrom)+len(sh.InLab)+len(sh.Pos)+len(sh.Complex)) + len(sh.Sorts))
}

// add registers a freshly built shard: its spill file is written through the
// codec immediately (write-once; eviction never writes), and the shard
// enters the LRU resident. Compile attaches every shard this way at the end
// of its fill, and Apply attaches each rebuilt dirty shard.
func (r *Residency) add(sh *Shard) (*shardRef, error) {
	r.mu.Lock()
	r.seq++
	name := filepath.Join(r.dir, fmt.Sprintf("s%d.shard", r.seq))
	r.mu.Unlock()
	if err := os.WriteFile(name, EncodeShard(sh), 0o644); err != nil {
		return nil, fmt.Errorf("compile: spilling shard: %w", err)
	}
	ref := &shardRef{
		res: r, file: name, owned: true, size: shardSize(sh),
		meta: shardMeta{posBase: sh.PosBase, posN: sh.PosN, nOut: len(sh.OutTo), nIn: len(sh.InFrom)},
	}
	r.mu.Lock()
	ref.ptr.Store(sh)
	r.used += ref.size
	ref.elem = r.lru.PushFront(ref)
	r.evictLocked()
	r.mu.Unlock()
	return ref, nil
}

// adopt registers an existing shard file (a serving layer's durable spill)
// as a non-resident ref: nothing is read until the first fault. The file is
// not owned — the serving layer controls its lifetime and must keep it
// until the lineage is dropped. size stays zero until the first fault
// measures the decoded shard (fault stores shardSize before any budget
// accounting touches the ref), so adopted refs never charge the budget with
// an estimate — don't use size for admission decisions before a fault.
func (r *Residency) adopt(file string, meta shardMeta) *shardRef {
	return &shardRef{res: r, file: file, meta: meta}
}

// evictLocked drops LRU-tail shards until resident bytes fit the budget.
// Caller holds r.mu.
func (r *Residency) evictLocked() {
	for r.budget > 0 && r.used > r.budget {
		back := r.lru.Back()
		if back == nil {
			return // everything resident is pinned: pins win
		}
		ref := back.Value.(*shardRef)
		r.lru.Remove(back)
		ref.elem = nil
		ref.ptr.Store(nil)
		r.used -= ref.size
		statShardEvicts.Add(1)
	}
}

// lruTouchPeriod bounds how stale a resident shard's LRU recency can get:
// get's lock-free fast path promotes the ref to the LRU front every Nth hit
// rather than on every hit, keeping recency meaningful for hot shards
// without paying a lock per access.
const lruTouchPeriod = 64

// get returns the shard, faulting it in from its file if non-resident. The
// resident fast path is one atomic load plus a counter increment; every
// lruTouchPeriod-th hit additionally refreshes the ref's LRU position so
// eviction order tracks real access recency, not just fault order.
func (ref *shardRef) get() *Shard {
	if sh := ref.ptr.Load(); sh != nil {
		if ref.hits.Add(1)%lruTouchPeriod == 0 {
			ref.touch()
		}
		return sh
	}
	return ref.fault(false)
}

// touch refreshes the ref's LRU recency; a no-op if the shard was evicted
// or pinned in the meantime (elem is nil in both cases).
func (ref *shardRef) touch() {
	r := ref.res
	r.mu.Lock()
	if ref.elem != nil {
		r.lru.MoveToFront(ref.elem)
	}
	r.mu.Unlock()
}

// fault decodes the shard from its spill file and re-registers it resident.
// pin additionally takes a pin before releasing the bookkeeping lock, so
// the caller's pinned shard cannot be evicted in between.
//
// The body is a loop, never a recursive call: ref.mu is held for the whole
// fault and sync.Mutex is not reentrant, so re-entering fault would
// self-deadlock. When eviction races the optimistic resident check (the
// shard is dropped between the ptr load and res.mu), the loop falls through
// to the decode branch on the next iteration — and since ref.mu serializes
// faults, nobody else can flip the shard back to resident in between.
func (ref *shardRef) fault(pin bool) *Shard {
	ref.mu.Lock()
	defer ref.mu.Unlock()
	r := ref.res
	for {
		if sh := ref.ptr.Load(); sh != nil {
			r.mu.Lock()
			sh = ref.ptr.Load()
			if sh != nil { // still resident: touch / pin
				if pin {
					ref.pinLocked()
				} else if ref.elem != nil {
					r.lru.MoveToFront(ref.elem)
				}
			}
			r.mu.Unlock()
			if sh != nil {
				return sh
			}
			continue // evicted between the load and the lock: decode
		}
		data, err := os.ReadFile(ref.file)
		var sh *Shard
		if err == nil {
			sh, err = DecodeShard(data)
		}
		if err != nil {
			// The accessors have no error path; the facade's panic
			// containment turns this into an *InternalError.
			panic(fmt.Errorf("compile: faulting shard: %w", err))
		}
		statShardFaults.Add(1)
		// The true decoded size replaces any pre-fault placeholder so the
		// budget accounts real bytes.
		ref.size = shardSize(sh)
		r.mu.Lock()
		ref.ptr.Store(sh)
		r.used += ref.size
		if ref.pins == 0 {
			ref.elem = r.lru.PushFront(ref)
		}
		if pin {
			ref.pinLocked()
		}
		r.evictLocked()
		r.mu.Unlock()
		return sh
	}
}

// pin faults the shard in if needed and holds it resident until the
// returned release runs. Pins nest.
func (ref *shardRef) pin() (*Shard, func()) {
	sh := ref.fault(true)
	return sh, ref.unpin
}

// pinLocked takes one pin; caller holds res.mu and the ref is resident.
func (ref *shardRef) pinLocked() {
	ref.pins++
	statShardPins.Add(1)
	if ref.elem != nil {
		ref.res.lru.Remove(ref.elem)
		ref.elem = nil
	}
}

func (ref *shardRef) unpin() {
	r := ref.res
	r.mu.Lock()
	ref.pins--
	if ref.pins == 0 && ref.ptr.Load() != nil && ref.elem == nil {
		ref.elem = r.lru.PushFront(ref)
		r.evictLocked()
	}
	r.mu.Unlock()
}

// attach moves a fully built snapshot's shards behind residency refs: every
// shard's spill file is written through the codec and the resident copies
// become evictable. Until attach runs the shards are plain resident — the
// compile fill span and Apply's rebuilds operate on pinned-equivalent
// state by construction.
func (s *Snapshot) attach(res *Residency) error {
	if s.refs == nil {
		s.refs = make([]*shardRef, len(s.shards))
	}
	for si, sh := range s.shards {
		if sh == nil {
			continue // already behind a ref (shared from the parent)
		}
		ref, err := res.add(sh)
		if err != nil {
			return err
		}
		s.refs[si] = ref
		s.shards[si] = nil
	}
	s.res = res
	return nil
}

// shard returns shard si, faulting it in when the snapshot is budgeted and
// the shard is not resident.
func (s *Snapshot) shard(si int) *Shard {
	if sh := s.shards[si]; sh != nil {
		return sh
	}
	return s.refs[si].get()
}

// shardMeta answers position-range and edge-count questions about shard si
// without faulting it in.
func (s *Snapshot) shardMeta(si int) shardMeta {
	if sh := s.shards[si]; sh != nil {
		return shardMeta{posBase: sh.PosBase, posN: sh.PosN, nOut: len(sh.OutTo), nIn: len(sh.InFrom)}
	}
	return s.refs[si].meta
}

// PinShards faults every shard in and holds the whole snapshot resident
// until the returned release runs. The shard-parallel GFP propagation wraps
// each run in a pin so no frontier-exchange phase faults mid-round; with a
// budget smaller than the snapshot this deliberately overcommits (pins
// win). A no-op without a residency manager.
func (s *Snapshot) PinShards() (release func()) {
	if s.res == nil {
		return func() {}
	}
	unpins := make([]func(), 0, len(s.refs))
	for si, ref := range s.refs {
		if ref == nil {
			continue // still plain resident (pre-attach)
		}
		_, unpin := ref.pin()
		unpins = append(unpins, unpin)
		_ = si
	}
	return func() {
		for _, u := range unpins {
			u()
		}
	}
}

// MemBudget reports the lineage's resident-shard byte budget (0 when the
// snapshot is fully resident with no residency manager attached).
func (s *Snapshot) MemBudget() int64 {
	if s.res == nil {
		return 0
	}
	if s.res.budget < 0 {
		return 0
	}
	return s.res.budget
}

// bitsetFromPos rebuilds the atomic bitset from the position table:
// Pos[o] == -1 exactly for atomic objects.
func bitsetFromPos(pos []int32) *bitset.Set {
	b := bitset.New(len(pos))
	for i, p := range pos {
		if p < 0 {
			b.Set(i)
		}
	}
	return b
}
