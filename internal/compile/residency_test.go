package compile

import (
	"fmt"
	"sync"
	"testing"

	"schemex/internal/graph"
)

// budgetFor2 returns a budget that fits roughly two of s's shards, the
// tight-residency regime the acceptance criteria pin.
func budgetFor2(s *Snapshot) int64 {
	var max int64
	for si := 0; si < s.NumShards(); si++ {
		if sz := shardSize(s.Shard(si)); sz > max {
			max = sz
		}
	}
	return 2 * max
}

// TestBudgetedCompileMatchesResident: a memory-budgeted compile answers every
// accessor bit-identically to the fully resident snapshot, while actually
// evicting and faulting shards.
func TestBudgetedCompileMatchesResident(t *testing.T) {
	db := chainDB(t, 512)
	resident, err := CompileShardsCheck(db, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := ResidencyStats()
	budgeted, err := CompileBudget(db, 8, 0, budgetFor2(resident), nil)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.res == nil {
		t.Fatal("budgeted compile did not attach a residency manager")
	}
	if budgeted.MemBudget() == 0 {
		t.Fatal("MemBudget() = 0 on a budgeted snapshot")
	}
	// Two full sweeps: the second one re-faults what the first evicted.
	for pass := 0; pass < 2; pass++ {
		snapEqual(t, budgeted, resident, fmt.Sprintf("pass %d", pass))
	}
	after := ResidencyStats()
	if after.Evictions == before.Evictions {
		t.Fatal("tight budget evicted nothing")
	}
	if after.Faults == before.Faults {
		t.Fatal("tight budget faulted nothing")
	}
}

// TestBudgetedApplyLineage: a delta stream over a budgeted snapshot stays
// bit-identical to scratch compiles, with clean shards shared by ref across
// the lineage and dirty shards re-entering the LRU.
func TestBudgetedApplyLineage(t *testing.T) {
	db := chainDB(t, 256)
	cur, err := CompileBudget(db, 4, 0, 1<<10, nil) // ~1 shard resident
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		var d graph.Delta
		d.AddLink(fmt.Sprintf("n%d", step*13), fmt.Sprintf("n%d", 255-step*17), "next")
		next, info, err := Apply(cur, &d)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Shared {
			t.Fatalf("step %d: expected shared apply", step)
		}
		if next.res != cur.res {
			t.Fatalf("step %d: child left the residency lineage", step)
		}
		scratch, err := CompileShardsCheck(next.DB().Clone(), 4, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		snapEqual(t, next, scratch, fmt.Sprintf("step %d", step))
		cur = next
	}
}

// TestBudgetedApplyFallbackLineage: the full-recompile fallback (new label)
// keeps the child in the parent's residency lineage.
func TestBudgetedApplyFallbackLineage(t *testing.T) {
	cur, err := CompileBudget(chainDB(t, 256), 4, 0, 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	var d graph.Delta
	d.AddLink("n0", "n100", "brand-new-label")
	next, info, err := Apply(cur, &d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shared {
		t.Fatal("new label should force the fallback")
	}
	if next.res != cur.res {
		t.Fatal("fallback child left the residency lineage")
	}
	scratch, err := CompileShardsCheck(next.DB().Clone(), 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, next, scratch, "fallback vs scratch")
}

// TestPinShardsHoldsResidency: with everything pinned, sweeping the snapshot
// evicts nothing (pins overcommit the budget); releasing re-enables
// eviction.
func TestPinShardsHoldsResidency(t *testing.T) {
	s, err := CompileBudget(chainDB(t, 512), 8, 0, 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	release := s.PinShards()
	pinnedAt := ResidencyStats()
	flatten(s) // full sweep while pinned
	if ev := ResidencyStats().Evictions; ev != pinnedAt.Evictions {
		t.Fatalf("evictions while fully pinned: %d", ev-pinnedAt.Evictions)
	}
	for si := 0; si < s.NumShards(); si++ {
		if s.refs[si].ptr.Load() == nil {
			t.Fatalf("shard %d not resident while pinned", si)
		}
	}
	release()
	// Unpinned again: a sweep must shrink residency back under the budget.
	flatten(s)
	if ResidencyStats().Evictions == pinnedAt.Evictions {
		t.Fatal("no evictions after release")
	}
}

// TestResidencyConcurrentReaders: many goroutines sweeping a tightly
// budgeted snapshot race faults against evictions; run under -race in CI.
// Each reader checks its own slice contents, so a torn fault would surface
// as a data mismatch as well as a race report.
func TestResidencyConcurrentReaders(t *testing.T) {
	db := chainDB(t, 512)
	resident, err := CompileShardsCheck(db, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := flatten(resident)
	s, err := CompileBudget(db, 8, 0, budgetFor2(resident), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				at := 0
				for i := 0; i < s.NumObjects(); i++ {
					to, _ := s.Out(graph.ObjectID(i))
					for k, v := range to {
						if want.OutTo[at+k] != v {
							errs <- fmt.Sprintf("reader %d: object %d edge %d differs", g, i, k)
							return
						}
					}
					at += len(to)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestFaultEvictRace: pins, gets, and unpins race eviction on a one-byte
// budget, so every unpin evicts and fault's optimistic resident check
// constantly observes a shard that is gone by the time it reaches res.mu.
// Regression test for the self-deadlock where that path re-entered fault
// recursively while still holding ref.mu: the old code hung here, the loop
// form must complete. Run under -race in CI.
func TestFaultEvictRace(t *testing.T) {
	s, err := CompileBudget(chainDB(t, 512), 8, 0, 1, nil) // evict on every unpin
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				for _, ref := range s.refs {
					if ref == nil {
						continue
					}
					_, unpin := ref.pin()
					ref.get()
					unpin()
					ref.get()
				}
			}
		}()
	}
	wg.Wait()
	for si := range s.refs {
		if got := s.Shard(si); got == nil {
			t.Fatalf("shard %d unreadable after race", si)
		}
	}
}

// TestMemBudgetEnvOverride: the env override applies only when no explicit
// budget is given, mirroring TestShardsEnv.
func TestMemBudgetEnvOverride(t *testing.T) {
	t.Setenv(TestMemBudgetEnv, "2048")
	if got := memBudgetFor(0); got != 2048 {
		t.Fatalf("memBudgetFor(0) = %d, want 2048 from env", got)
	}
	if got := memBudgetFor(1 << 20); got != 1<<20 {
		t.Fatalf("memBudgetFor(1MiB) = %d, explicit budget must win", got)
	}
	s := Compile(chainDB(t, 512))
	if s.res == nil {
		t.Fatal("env override did not attach a residency manager")
	}
}
