// Sharded snapshot layout: objects are partitioned into fixed ranges of
// 2^shardShift IDs, and each Shard owns the CSR block, position/sort/atomic
// views, and complex-position range of its object range. The scheme
// generalizes the chunked Hist pattern — immutable fixed-range blocks that a
// delta-derived snapshot aliases wholesale when untouched — from histogram
// rows to the entire snapshot, which is what makes compile, Apply, and the
// GFP propagation shard-parallel and lets the server lock mutations
// per shard instead of per snapshot.
package compile

import (
	"os"
	"strconv"

	"schemex/internal/graph"
)

const (
	// minShardShift floors the shard size at 64 objects so a shard range is
	// always a whole number of bitset words: shard-parallel writers (the GFP
	// frontier exchange, the atomic-bitset fill) never touch a word another
	// shard's worker owns.
	minShardShift = 6
	// autoShardShift sizes shards when the caller asks for automatic layout
	// (Shards == 0): 8192 objects per shard keeps a shard's CSR block in the
	// hundreds-of-KB range for realistic degrees — big enough that per-shard
	// bookkeeping is noise, small enough that a point delta rebuilds a
	// sliver of the snapshot and compile fans out on every core.
	autoShardShift = 13
	// maxShardShift makes "one shard" exact for any graph that fits in the
	// int32 object-ID space.
	maxShardShift = 31
)

// TestShardsEnv, when set to a positive integer, overrides the automatic
// shard count (and only the automatic one — explicit Shards settings win) so
// the whole test suite can be driven through a fixed shard layout without
// threading an option into every call site. CI runs the race-detector leg
// under SCHEMEX_TEST_SHARDS=1 and =4.
const TestShardsEnv = "SCHEMEX_TEST_SHARDS"

// shardShiftFor picks the shard-size exponent for a requested shard count
// over an n-object graph: 0 means automatic, 1 means a single flat block
// (the pre-sharding layout), and k > 1 means the smallest power-of-two size
// (≥ the 64-object floor) that covers n with at most k shards.
func shardShiftFor(shards, n int) uint {
	if shards <= 0 {
		if v, err := strconv.Atoi(os.Getenv(TestShardsEnv)); err == nil && v > 0 {
			return shardShiftFor(v, n)
		}
		return autoShardShift
	}
	if shards == 1 {
		return maxShardShift
	}
	per := (n + shards - 1) / shards
	s := uint(minShardShift)
	for s < maxShardShift && 1<<s < per {
		s++
	}
	return s
}

// numShards is the shard count covering n objects at the given size
// exponent: zero for an empty graph.
func numShards(n int, shift uint) int {
	return (n + (1 << shift) - 1) >> shift
}

// Shard is one fixed range of the object-ID space and everything the
// snapshot knows about it. CSR offsets are local to the shard (OutOff[0] is
// always 0), so a shard's block is self-contained: Apply rebuilds or aliases
// shards independently, and a future out-of-core layout can spill one
// shard's arrays without touching its neighbours.
//
// Pos, Sorts, and Complex are views into the snapshot's global tables
// (Pos[Base:Base+N] etc.), not copies: the shard owns its slice of those
// tables, while positional consumers (the GFP count matrices, Stage 2
// signatures) keep the O(1) global indexing they were written against.
type Shard struct {
	// Base is the first object ID of the shard's range; N the number of
	// objects in it (only the last shard of a snapshot may be short).
	Base, N int
	// PosBase is the dense complex position of the shard's first complex
	// object; PosN how many complex objects the shard holds. Positions are
	// assigned in object-ID order, so a shard's complex objects occupy the
	// contiguous range [PosBase, PosBase+PosN).
	PosBase, PosN int

	// OutOff/InOff have length N+1 and are shard-local: the edges of the
	// shard's i-th object occupy [Off[i], Off[i+1]) of the shard's arrays.
	OutOff, InOff []int32
	// OutTo/OutLab hold the target object ID (global) and label ID of each
	// outgoing edge; InFrom/InLab mirror them for incoming edges.
	OutTo, OutLab, InFrom, InLab []int32

	// Views into the snapshot's global tables for this shard's ranges; see
	// the type comment. Sorts[i] is meaningful only for atomic objects.
	Pos     []int32
	Sorts   []uint8
	Complex []graph.ObjectID
}

// newShard allocates the offset arrays and table views for shard si of s.
// The snapshot's global Pos/Sorts/Complex tables must already be built.
func newShard(s *Snapshot, si int, posLo, posHi int) *Shard {
	size := 1 << s.shardShift
	base := si * size
	n := s.NumObjects() - base
	if n > size {
		n = size
	}
	sh := &Shard{
		Base: base, N: n,
		PosBase: posLo, PosN: posHi - posLo,
		OutOff: make([]int32, n+1),
		InOff:  make([]int32, n+1),
		Pos:    s.Pos[base : base+n : base+n],
		Sorts:  s.Sorts[base : base+n : base+n],
	}
	sh.Complex = s.Complex[posLo:posHi:posHi]
	return sh
}

// alloc sizes the shard's edge arrays from its completed offset arrays.
// Unlike the global layout, a shard's in-degree and out-degree totals need
// not match: only the whole graph's do.
func (sh *Shard) alloc() {
	nOut := int(sh.OutOff[sh.N])
	sh.OutTo = make([]int32, nOut)
	sh.OutLab = make([]int32, nOut)
	nIn := int(sh.InOff[sh.N])
	sh.InFrom = make([]int32, nIn)
	sh.InLab = make([]int32, nIn)
}

// reslice returns a copy of the shard whose table views point into the given
// snapshot's (equal-valued) global tables. Apply uses it when new objects
// forced fresh global tables: the shard's CSR arrays — the bulk — stay
// shared with the parent, only the three view headers are rebound.
func (sh *Shard) reslice(s *Snapshot) *Shard {
	c := *sh
	c.Pos = s.Pos[c.Base : c.Base+c.N : c.Base+c.N]
	c.Sorts = s.Sorts[c.Base : c.Base+c.N : c.Base+c.N]
	c.Complex = s.Complex[c.PosBase : c.PosBase+c.PosN : c.PosBase+c.PosN]
	return &c
}

// NumShards reports how many fixed-range object shards the snapshot holds
// (zero for an empty graph).
func (s *Snapshot) NumShards() int { return len(s.shards) }

// ShardSize reports the number of object IDs each shard range spans (the
// last shard may hold fewer objects).
func (s *Snapshot) ShardSize() int { return 1 << s.shardShift }

// ShardOf reports the index of the shard owning object o.
func (s *Snapshot) ShardOf(o graph.ObjectID) int { return int(o) >> s.shardShift }

// Shard returns shard i, faulting it in from its spill file when the
// snapshot is memory-budgeted and the shard is not resident. The shard and
// everything it references are immutable, like the snapshot itself.
func (s *Snapshot) Shard(i int) *Shard { return s.shard(i) }
