package compile

import (
	"fmt"
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
)

// chainDB builds n complex objects n0..n(n-1) linked in a chain by "next":
// IDs are assigned in creation order, so object n<i> has ID i and shard
// membership is predictable from the shard size.
func chainDB(t *testing.T, n int) *graph.DB {
	t.Helper()
	db := graph.New()
	for i := 0; i+1 < n; i++ {
		if err := db.AddLink(db.Intern(fmt.Sprintf("n%d", i)), db.Intern(fmt.Sprintf("n%d", i+1)), "next"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestShardedCompileMatchesFlat pins the core sharding contract: the same
// graph compiles to bit-identical contents at any shard count, serial or
// parallel, and every shard's ranges and table views are consistent with
// the snapshot's global tables.
func TestShardedCompileMatchesFlat(t *testing.T) {
	dbgDB, _ := dbg.Generate(dbg.Options{})
	for _, tc := range []struct {
		name string
		db   *graph.DB
	}{
		{"dbg", dbgDB},
		{"chain256", chainDB(t, 256)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			flat, err := CompileShardsCheck(tc.db, 1, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if flat.NumObjects() > 0 && flat.NumShards() != 1 {
				t.Fatalf("shards=1 produced %d shards", flat.NumShards())
			}
			for _, shards := range []int{0, 2, 4, 7} {
				for _, workers := range []int{1, 0} {
					s, err := CompileShardsCheck(tc.db, shards, workers, nil)
					if err != nil {
						t.Fatal(err)
					}
					snapEqual(t, s, flat, fmt.Sprintf("shards=%d workers=%d", shards, workers))
					checkShardInvariants(t, s)
				}
			}
		})
	}
}

// checkShardInvariants verifies the layout every consumer of the sharded
// snapshot relies on: shards tile the ID space, complex-position ranges
// chain, per-shard degrees sum to the shard's edge arrays, and the
// Pos/Sorts/Complex views alias the snapshot's global tables.
func checkShardInvariants(t *testing.T, s *Snapshot) {
	t.Helper()
	base, posBase := 0, 0
	for si := 0; si < s.NumShards(); si++ {
		sh := s.Shard(si)
		if sh.Base != base {
			t.Fatalf("shard %d: Base = %d, want %d", si, sh.Base, base)
		}
		if sh.PosBase != posBase {
			t.Fatalf("shard %d: PosBase = %d, want %d", si, sh.PosBase, posBase)
		}
		if sh.N <= 0 || sh.N > s.ShardSize() {
			t.Fatalf("shard %d: N = %d outside (0, %d]", si, sh.N, s.ShardSize())
		}
		if int(sh.OutOff[sh.N]) != len(sh.OutTo) || int(sh.InOff[sh.N]) != len(sh.InFrom) {
			t.Fatalf("shard %d: offsets do not cover the edge arrays", si)
		}
		nComplex := 0
		for i := 0; i < sh.N; i++ {
			if sh.Pos[i] != s.Pos[sh.Base+i] {
				t.Fatalf("shard %d: Pos view diverges at %d", si, i)
			}
			if sh.Pos[i] >= 0 {
				nComplex++
			}
		}
		if sh.PosN != nComplex {
			t.Fatalf("shard %d: PosN = %d, want %d", si, sh.PosN, nComplex)
		}
		// Faulted shards carry owned, value-equal views (checked above); only
		// fully resident snapshots alias the global tables directly.
		if s.res == nil {
			if sh.N > 0 && &sh.Pos[0] != &s.Pos[sh.Base] {
				t.Fatalf("shard %d: Pos view is a copy, not an alias", si)
			}
			if sh.PosN > 0 && &sh.Complex[0] != &s.Complex[sh.PosBase] {
				t.Fatalf("shard %d: Complex view is a copy, not an alias", si)
			}
		}
		base += sh.N
		posBase += sh.PosN
	}
	if base != s.NumObjects() || posBase != s.NumComplex() {
		t.Fatalf("shards cover %d objects / %d complex, want %d / %d",
			base, posBase, s.NumObjects(), s.NumComplex())
	}
}

// TestShardsEnvOverride checks SCHEMEX_TEST_SHARDS drives the automatic
// layout and only the automatic one — explicit shard counts win.
func TestShardsEnvOverride(t *testing.T) {
	db := chainDB(t, 256)
	t.Setenv(TestShardsEnv, "4")
	auto := Compile(db)
	if auto.NumShards() != 4 {
		t.Fatalf("auto shards under env override = %d, want 4", auto.NumShards())
	}
	explicit, err := CompileShardsCheck(db, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.NumShards() != 1 {
		t.Fatalf("explicit shards=1 under env override = %d, want 1", explicit.NumShards())
	}
}

// sharedShard reports whether got's shard si is structurally shared with
// parent's: pointer-identical for fully resident snapshots, the same
// spillable ref under a residency manager (where the resident copy comes and
// goes but one file backs the lineage).
func sharedShard(got, parent *Snapshot, si int) bool {
	if got.res != nil {
		return got.refs[si] != nil && got.refs[si] == parent.refs[si]
	}
	return got.Shard(si) == parent.Shard(si)
}

// applyBoundary applies d to a 4-shard (64 objects each) compile of db and
// checks the result against a scratch compile of the mutated graph.
func applyBoundary(t *testing.T, db *graph.DB, d *graph.Delta, wantShared bool) (parent, got *Snapshot) {
	t.Helper()
	parent, err := CompileShardsCheck(db, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if parent.ShardSize() != 64 || parent.NumShards() != 4 {
		t.Fatalf("fixture layout = %d shards of %d, want 4 of 64", parent.NumShards(), parent.ShardSize())
	}
	got, info, err := Apply(parent, d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shared != wantShared {
		t.Fatalf("Shared = %v, want %v", info.Shared, wantShared)
	}
	scratch, err := CompileShardsCheck(got.DB().Clone(), 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, scratch, "apply vs scratch compile")
	return parent, got
}

// TestShardBoundaryCrossLink applies a link whose endpoints live in the
// first and last shard: both endpoint shards rebuild, the middle two are
// aliased pointer-identically (no objects were created).
func TestShardBoundaryCrossLink(t *testing.T) {
	var d graph.Delta
	d.AddLink("n10", "n200", "next")
	parent, got := applyBoundary(t, chainDB(t, 256), &d, true)
	for si, wantAliased := range []bool{false, true, true, false} {
		if aliased := sharedShard(got, parent, si); aliased != wantAliased {
			t.Errorf("shard %d: aliased = %v, want %v", si, aliased, wantAliased)
		}
	}
}

// TestShardBoundaryEmptyShard removes every object of shard 1: the shard's
// CSR block drains to zero edges but the layout (and the result) stays
// identical to a scratch compile.
func TestShardBoundaryEmptyShard(t *testing.T) {
	var d graph.Delta
	for i := 64; i < 128; i++ {
		d.RemoveObject(fmt.Sprintf("n%d", i))
	}
	parent, got := applyBoundary(t, chainDB(t, 256), &d, true)
	if sh := got.Shard(1); len(sh.OutTo) != 0 || len(sh.InFrom) != 0 {
		t.Fatalf("shard 1 still holds %d out / %d in edges", len(sh.OutTo), len(sh.InFrom))
	}
	// Shards 0 and 2 are dirty only at their boundary objects (n63, n128);
	// shard 3 is untouched and must stay shared.
	if !sharedShard(got, parent, 3) {
		t.Fatal("untouched shard 3 not shared with parent")
	}
}

// TestShardBoundaryGrowth adds enough new objects past the last shard to
// grow the snapshot by two shards. Untouched interior shards keep their CSR
// arrays (rebound views, same backing), and the result matches scratch.
func TestShardBoundaryGrowth(t *testing.T) {
	var d graph.Delta
	for i := 0; i < 71; i++ {
		d.AddLink("n255", fmt.Sprintf("m%d", i), "next")
	}
	parent, got := applyBoundary(t, chainDB(t, 256), &d, true)
	if want := 6; got.NumShards() != want { // 327 objects / 64 per shard
		t.Fatalf("NumShards = %d, want %d", got.NumShards(), want)
	}
	for _, si := range []int{0, 1, 2} {
		if got.res != nil {
			// Under a residency manager clean shards share the parent's ref
			// outright — no reslice, owned value-equal views on fault.
			if !sharedShard(got, parent, si) {
				t.Fatalf("shard %d: not sharing the parent's ref", si)
			}
			continue
		}
		g, p := got.Shard(si), parent.Shard(si)
		if g == p {
			t.Fatalf("shard %d: pointer-aliased despite new global tables", si)
		}
		if len(g.OutTo) > 0 && &g.OutTo[0] != &p.OutTo[0] {
			t.Fatalf("shard %d: CSR arrays copied, want shared with parent", si)
		}
	}
}

// TestApplyAliasesUntouchedShards pins the per-shard sharing contract: a
// delta confined to one shard leaves every other shard pointer-identical to
// the parent's when no objects were created.
func TestApplyAliasesUntouchedShards(t *testing.T) {
	var d graph.Delta
	d.AddLink("n1", "n3", "next")
	parent, got := applyBoundary(t, chainDB(t, 256), &d, true)
	if sharedShard(got, parent, 0) {
		t.Fatal("touched shard 0 was not rebuilt")
	}
	for si := 1; si < 4; si++ {
		if !sharedShard(got, parent, si) {
			t.Fatalf("untouched shard %d not shared with parent", si)
		}
	}
}

// TestEmptyDBSharded: an empty graph compiles to zero shards at any count.
func TestEmptyDBSharded(t *testing.T) {
	for _, shards := range []int{0, 1, 4} {
		s, err := CompileShardsCheck(graph.New(), shards, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumShards() != 0 || s.NumObjects() != 0 {
			t.Fatalf("shards=%d: non-empty snapshot from empty graph", shards)
		}
	}
}
