package core

import (
	"context"
	"reflect"
	"testing"

	"schemex/internal/graph"
	"schemex/internal/synth"
)

// TestApplyBatchShardDeterminism is the batch acceptance property: replaying
// a delta stream through ApplyBatch (4 deltas per pass) lands on the same
// extraction outcome, bit for bit, as the sequential flat-serial reference,
// at every batch boundary, across Shards {1,4,0} x Parallelism {1,0}. The
// stream covers cross-shard deltas, new-object growth, link removal,
// label-universe fallbacks, and RemoveObject detachment.
func TestApplyBatchShardDeterminism(t *testing.T) {
	presets := synth.Presets()
	db, err := presets[6].Build() // DB7: graph-shaped, overlapping classes
	if err != nil {
		t.Fatal(err)
	}
	const hops = 12
	deltas, refs := buildShardStream(t, db, 31, hops)

	ctx := context.Background()
	const batch = 4
	for _, cfg := range shardConfigs {
		cur, err := PrepareContext(ctx, db, cfg.par, cfg.shards)
		if err != nil {
			t.Fatal(err)
		}
		batches := 0
		for i := 0; i < len(deltas); i += batch {
			end := min(i+batch, len(deltas))
			next, _, err := cur.ApplyBatchContext(ctx, deltas[i:end], cfg.par)
			if err != nil {
				t.Fatalf("shards=%d p=%d batch [%d,%d): %v", cfg.shards, cfg.par, i, end, err)
			}
			cur = next
			batches++
			if got, want := cur.Version(), uint64(end); got != want {
				t.Fatalf("shards=%d p=%d: version %d after %d deltas", cfg.shards, cfg.par, got, want)
			}
			res, err := ExtractPreparedContext(ctx, cur, Options{K: 5, Parallelism: cfg.par})
			if err != nil {
				t.Fatalf("shards=%d p=%d extract after %d: %v", cfg.shards, cfg.par, end, err)
			}
			if got := outcomeOf(res); !reflect.DeepEqual(got, refs[end-1]) {
				t.Fatalf("shards=%d p=%d: outcome diverges after delta %d:\nref: %+v\ngot: %+v",
					cfg.shards, cfg.par, end-1, refs[end-1], got)
			}
		}
		s := cur.Stats()
		if s.Batches < uint64(batches) || s.BatchedDeltas < uint64(len(deltas)) {
			t.Fatalf("shards=%d p=%d: stats batches=%d batchedDeltas=%d, want >= %d/%d",
				cfg.shards, cfg.par, s.Batches, s.BatchedDeltas, batches, len(deltas))
		}
	}
}

// TestApplyBatchCoalesces pins that a cancelling burst actually coalesces
// (the counter moves) and still advances the version by the full batch size.
func TestApplyBatchCoalesces(t *testing.T) {
	db := graph.New()
	db.Link("root", "a", "child")
	db.Link("root", "b", "child")
	db.Freeze()
	p, err := Prepare(db)
	if err != nil {
		t.Fatal(err)
	}
	ds := []*graph.Delta{
		new(graph.Delta).AddLink("a", "b", "tmp"),
		new(graph.Delta).RemoveLink("a", "b", "tmp"),
		new(graph.Delta).AddLink("a", "b", "peer"),
	}
	child, _, err := p.ApplyBatchContext(context.Background(), ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := child.Version(); got != 3 {
		t.Fatalf("version=%d want 3", got)
	}
	if got := child.DB().NumLinks(); got != db.NumLinks()+1 {
		t.Fatalf("links=%d want %d", got, db.NumLinks()+1)
	}
	s := child.Stats()
	if s.CoalescedOps < 2 {
		t.Fatalf("coalescedOps=%d want >= 2 (cancelled add/remove pair)", s.CoalescedOps)
	}
}

// TestApplyBatchFailureLeavesParent asserts batch atomicity: a batch with a
// failing delta commits nothing, and the parent session stays fully usable.
func TestApplyBatchFailureLeavesParent(t *testing.T) {
	db := graph.New()
	db.Link("root", "a", "child")
	db.Freeze()
	p, err := Prepare(db)
	if err != nil {
		t.Fatal(err)
	}
	ds := []*graph.Delta{
		new(graph.Delta).AddLink("a", "fresh", "x"),
		new(graph.Delta).RemoveLink("a", "ghost", "nope"), // fails sequentially
	}
	if _, _, err := p.ApplyBatchContext(context.Background(), ds, 1); err == nil {
		t.Fatal("expected batch failure")
	}
	if got := p.Version(); got != 0 {
		t.Fatalf("parent version moved to %d", got)
	}
	// The parent is untouched and the good delta still applies on its own.
	child, _, err := p.ApplyContext(context.Background(), ds[0], 1)
	if err != nil {
		t.Fatalf("parent unusable after failed batch: %v", err)
	}
	if got := child.Version(); got != 1 {
		t.Fatalf("version=%d want 1", got)
	}
}
