package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"schemex/internal/dbg"
	"schemex/internal/graph"
)

func dbgGraph(t *testing.T) *graph.DB {
	t.Helper()
	db, _ := dbg.Generate(dbg.Options{})
	return db
}

func TestExtractContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExtractContext(ctx, dbgGraph(t), Options{K: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestExtractContextCancelMidRun(t *testing.T) {
	// Cancel while the pipeline is running (the DBG extraction takes well
	// over 10ms) and require the call to return ctx.Err() within 100ms of
	// the cancellation — the acceptance bound for checkpoint spacing.
	db := dbgGraph(t)
	for _, p := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := ExtractContext(ctx, db, Options{K: 3, Parallelism: p})
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		start := time.Now()
		cancel()
		select {
		case err := <-done:
			// A fast machine may legitimately finish before the cancel.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("p=%d: got %v, want context.Canceled or nil", p, err)
			}
			if took := time.Since(start); took > 100*time.Millisecond {
				t.Fatalf("p=%d: cancellation honoured after %v, want <100ms", p, took)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("p=%d: extraction ignored cancellation", p)
		}
	}
}

func TestCancelledExtractLeaksNoGoroutines(t *testing.T) {
	db := dbgGraph(t)
	for _, p := range []int{1, 2, 8} {
		baseline := runtime.NumGoroutine()
		for i := 0; i < 3; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			_, _ = ExtractContext(ctx, db, Options{K: 3, Parallelism: p})
			cancel()
		}
		// Give exiting goroutines (the cancel helpers above and any worker
		// in its final return) a moment to unwind before counting.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > baseline {
			t.Fatalf("p=%d: %d goroutines before, %d after cancelled extracts", p, baseline, got)
		}
	}
}

func TestSweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepContext(ctx, dbgGraph(t), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestExtractLimitObjects(t *testing.T) {
	db := dbgGraph(t)
	_, err := Extract(db, Options{K: 3, Limits: Limits{MaxObjects: 10}})
	var le *graph.LimitError
	if !errors.As(err, &le) || le.Resource != "objects" {
		t.Fatalf("got %v, want objects *LimitError", err)
	}
	if int(le.Actual) != db.NumObjects() {
		t.Fatalf("Actual = %d, want %d", le.Actual, db.NumObjects())
	}
}

func TestExtractLimitLinks(t *testing.T) {
	_, err := Extract(dbgGraph(t), Options{K: 3, Limits: Limits{MaxLinks: 5}})
	var le *graph.LimitError
	if !errors.As(err, &le) || le.Resource != "links" {
		t.Fatalf("got %v, want links *LimitError", err)
	}
}

func TestExtractLimitTypes(t *testing.T) {
	// DBG's perfect typing has well over 3 types.
	_, err := Extract(dbgGraph(t), Options{K: 3, Limits: Limits{MaxTypes: 3}})
	var le *graph.LimitError
	if !errors.As(err, &le) || le.Resource != "types" {
		t.Fatalf("got %v, want types *LimitError", err)
	}
}

func TestExtractLimitWallTime(t *testing.T) {
	_, err := Extract(dbgGraph(t), Options{K: 3, Limits: Limits{MaxWallTime: time.Nanosecond}})
	var le *graph.LimitError
	if !errors.As(err, &le) || le.Resource != "wall-time" {
		t.Fatalf("got %v, want wall-time *LimitError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("wall-time error should wrap context.DeadlineExceeded")
	}
}

func TestCallerDeadlineIsNotRewritten(t *testing.T) {
	// When the CALLER's deadline expires, the error must stay a plain
	// context error — the wall-time LimitError is only for our own budget.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := ExtractContext(ctx, dbgGraph(t), Options{K: 3})
	var le *graph.LimitError
	if errors.As(err, &le) {
		t.Fatalf("caller deadline rewritten to %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestCancelledRunMatchesUncancelled(t *testing.T) {
	// A run that completes under a generous budget must be bit-identical to
	// one with no budget at all: checkpoints may only abort, never perturb.
	db := dbgGraph(t)
	plain, err := Extract(db, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := ExtractContext(context.Background(), db, Options{K: 3, Limits: Limits{MaxWallTime: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Program.String() != budgeted.Program.String() {
		t.Fatal("budgeted run produced a different schema")
	}
	if plain.Defect != budgeted.Defect {
		t.Fatal("budgeted run produced a different defect")
	}
}
