// Package core orchestrates the paper's three-stage schema-extraction
// method: Stage 1 minimal perfect typing (internal/perfect), Stage 2 greedy
// type clustering (internal/cluster), and Stage 3 recasting with defect
// accounting (internal/recast, internal/defect). It also implements the
// sensitivity sweep of §7.2 (defect and total distance as functions of the
// number of types) and the automatic choice of a "natural" number of types.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schemex/internal/cluster"
	"schemex/internal/compile"
	"schemex/internal/defect"
	"schemex/internal/graph"
	"schemex/internal/par"
	"schemex/internal/perfect"
	"schemex/internal/recast"
	"schemex/internal/typing"
)

// Options configure the extraction pipeline.
type Options struct {
	// K is the target number of types. K <= 0 selects the number
	// automatically from the sensitivity sweep (elbow of the defect curve).
	K int
	// Delta is the Stage 2 weighted distance; the paper's weighted Manhattan
	// distance (δ2) if unset.
	Delta cluster.Delta
	// AllowEmpty lets Stage 2 move types to the empty set type
	// (unclassified objects); EmptyBias scales the cost of doing so.
	AllowEmpty bool
	EmptyBias  float64
	// MultiRole applies the §4.2 conjunction-type decomposition between
	// Stages 1 and 2, so objects may have several home types.
	MultiRole bool
	// Recast configures Stage 3. Zero value means recast.DefaultOptions.
	Recast *recast.Options
	// NameFor overrides Stage 1 class naming.
	NameFor func(db *graph.DB, members []graph.ObjectID, classIdx int) string
	// UseNaiveGFP selects the reference fixpoint evaluator (benchmarks).
	UseNaiveGFP bool
	// UseBisimulation selects bisimulation partition refinement as the
	// Stage 1 engine (faster; refines the paper's equivalence).
	UseBisimulation bool
	// UseSorts distinguishes atomic targets by value sort (Remark 2.1)
	// throughout the pipeline.
	UseSorts bool
	// ValueLabels lists labels whose atomic values participate in typing
	// (the value-predicate extension), e.g. ["sex"].
	ValueLabels []string
	// Seed supplies a-priori known types (the §2 extension for integrating
	// data with a known structure). Seed types are added to the clustering
	// as pinned slots: they can absorb discovered types but always survive
	// into the final program. Link targets inside Seed refer to Seed's own
	// types.
	Seed *typing.Program
	// Parallelism bounds the worker goroutines used inside each stage
	// (Stage 1 candidate construction and fixpoint seeding, Stage 2
	// distance-matrix work, Stage 3 object classification); <= 0 means one
	// per CPU, 1 runs the exact serial code paths. Every result is
	// bit-identical at any setting.
	Parallelism int
	// Shards partitions the compiled snapshot's object space into fixed
	// ranges: 0 sizes shards automatically from the graph, 1 forces the
	// single flat block of the pre-sharding layout, k > 1 requests (at
	// most) k shards. Like Parallelism this is purely a layout/performance
	// knob — extraction results are bit-identical at any setting.
	Shards int
	// MaxAffectedFrac tunes incremental Stage 1 maintenance on a Prepared
	// derived via Apply: when the delta's affected (type, object) pairs
	// exceed this fraction of the full matrix, the fixpoint is recomputed
	// from scratch instead (typing.DefaultMaxAffectedFrac when zero). Purely
	// a performance knob — results are bit-identical either way.
	MaxAffectedFrac float64
	// MaxDirtyTypesFrac tunes incremental Stages 2–3, mirroring
	// MaxAffectedFrac: when a delta leaves more than this fraction of the
	// Stage 1 classes dirty (members or definition changed), warm clustering
	// falls back to a full matrix seeding; the same budget caps the fraction
	// of objects the warm recast may reclassify before it, too, falls back.
	// DefaultMaxDirtyTypesFrac when zero; a negative value disables warm
	// Stages 2–3 outright (every extraction falls back). Purely a
	// performance knob — results are bit-identical on either path.
	MaxDirtyTypesFrac float64
	// Limits bounds the resources an extraction may consume. Violations
	// surface as *graph.LimitError. The zero value imposes no caps.
	Limits Limits
	// MemBudget bounds the bytes of compiled shard data held resident at
	// once: shards past the budget spill to disk through the shard codec and
	// fault back in on access (LRU). 0 means fully resident (or the
	// SCHEMEX_TEST_MEM_BUDGET override). Purely a paging knob — results are
	// bit-identical at any budget; pinned phases may transiently overcommit.
	MemBudget int64
}

// Limits bounds the resources an extraction run may consume. Each cap is
// checked before or during the stage it protects, so a violating run fails
// early with a typed *graph.LimitError instead of running to completion (or
// OOM). Zero or negative fields mean "unlimited".
type Limits struct {
	// MaxObjects caps the database size (objects, complex plus atomic)
	// accepted by the pipeline; checked before Stage 1.
	MaxObjects int
	// MaxLinks caps the number of link facts; checked before Stage 1.
	MaxLinks int
	// MaxTypes caps the size of the pre-clustering program (the Stage 1
	// perfect typing, after any multi-role decomposition and seeding).
	// Stage 2 is quadratic in this count, so the cap bounds clustering
	// memory and time.
	MaxTypes int
	// MaxWallTime caps the total wall-clock time of the run. When the
	// budget expires the pipeline stops at its next checkpoint and returns
	// a *graph.LimitError wrapping context.DeadlineExceeded.
	MaxWallTime time.Duration
}

// checkGraph enforces the input-size caps against db.
func (l Limits) checkGraph(db *graph.DB) error {
	if l.MaxObjects > 0 && db.NumObjects() > l.MaxObjects {
		return &graph.LimitError{Resource: "objects", Limit: int64(l.MaxObjects), Actual: int64(db.NumObjects())}
	}
	if l.MaxLinks > 0 && db.NumLinks() > l.MaxLinks {
		return &graph.LimitError{Resource: "links", Limit: int64(l.MaxLinks), Actual: int64(db.NumLinks())}
	}
	return nil
}

// checkTypes enforces the pre-clustering program-size cap.
func (l Limits) checkTypes(p *typing.Program) error {
	if l.MaxTypes > 0 && p.Len() > l.MaxTypes {
		return &graph.LimitError{Resource: "types", Limit: int64(l.MaxTypes), Actual: int64(p.Len())}
	}
	return nil
}

// withWallClock arms the MaxWallTime budget on ctx. It returns the derived
// context, its cancel func (always call it), and a wrapper that rewrites
// context.DeadlineExceeded into a *graph.LimitError — but only when it was
// our own budget that fired, not a deadline the caller already carried.
func (l Limits) withWallClock(ctx context.Context) (context.Context, context.CancelFunc, func(error) error) {
	if l.MaxWallTime <= 0 {
		return ctx, func() {}, func(err error) error { return err }
	}
	parent := ctx
	ctx, cancel := context.WithTimeout(ctx, l.MaxWallTime)
	wrap := func(err error) error {
		if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
			return &graph.LimitError{
				Resource: "wall-time",
				Limit:    l.MaxWallTime.Milliseconds(),
				Err:      context.DeadlineExceeded,
			}
		}
		return err
	}
	return ctx, cancel, wrap
}

// checkFunc adapts a context into the cooperative checkpoint closure the
// stage packages consume. A context that can never be cancelled yields nil,
// which disables checkpointing entirely (the PR 1 fast path).
func checkFunc(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

func (o Options) recastOptions(check func() error) recast.Options {
	rc := recast.DefaultOptions()
	if o.Recast != nil {
		rc = *o.Recast
	}
	if o.UseSorts {
		rc.UseSorts = true
	}
	if len(o.ValueLabels) > 0 {
		rc.ValueLabels = append([]string(nil), o.ValueLabels...)
	}
	if rc.Parallelism == 0 {
		rc.Parallelism = o.Parallelism
	}
	rc.Check = check
	return rc
}

func (o Options) perfectOptions(check func() error) perfect.Options {
	return perfect.Options{
		NameFor:         o.NameFor,
		UseNaiveGFP:     o.UseNaiveGFP,
		UseSorts:        o.UseSorts,
		ValueLabels:     o.ValueLabels,
		UseBisimulation: o.UseBisimulation,
		Parallelism:     o.Parallelism,
		Check:           check,
	}
}

func (o Options) clusterConfig(pinned []bool, check func() error) cluster.Config {
	return cluster.Config{
		Delta:       o.Delta,
		AllowEmpty:  o.AllowEmpty,
		EmptyBias:   o.EmptyBias,
		Pinned:      pinned,
		Parallelism: o.Parallelism,
		Check:       check,
	}
}

// Result is the outcome of Extract.
type Result struct {
	// Stage1 is the minimal perfect typing.
	Stage1 *perfect.Result
	// Roles is the multiple-roles decomposition, when Options.MultiRole is
	// set (nil otherwise). Clustering then starts from Roles.Program.
	Roles *perfect.RolesResult
	// PerfectTypes is the number of types in the minimal perfect typing.
	PerfectTypes int
	// Program is the final approximate typing with K types.
	Program *typing.Program
	// Mapping sends each pre-clustering type index (Stage1 or Roles program)
	// to its final cluster, or cluster.EmptySlot.
	Mapping []int
	// Homes maps each object to its home clusters in Program.
	Homes map[graph.ObjectID][]int
	// Assignment is the Stage 3 recast assignment.
	Assignment *typing.Assignment
	// Defect is the excess/deficit accounting of the assignment.
	Defect defect.Report
	// Unclassified counts objects with no assigned type.
	Unclassified int
	// TotalDistance is the cumulative Stage 2 δ cost.
	TotalDistance float64
	// AutoK reports the automatically selected K when Options.K <= 0.
	AutoK int
	// Incr reports which stages ran incrementally for this extraction.
	Incr IncrInfo
	// Timing records the wall-clock spent per stage.
	Timing Timing
}

// IncrInfo describes how much of one extraction was derived incrementally
// from retained state rather than recomputed. Observability only: every
// combination of flags yields bit-identical results.
type IncrInfo struct {
	// Stage1Warm: the minimal perfect typing in this result was produced by
	// the incremental fixpoint evaluator (warm start within budget).
	Stage1Warm bool
	// Stage2Warm: the clustering distance matrix was seeded from the parent
	// extraction's captured state instead of popcounted from scratch.
	Stage2Warm bool
	// Stage3Warm: the recast reclassified only the delta's dirty objects,
	// copying every other assignment row from the parent.
	Stage3Warm bool
	// FastPath: the whole result was replayed from the retained state of an
	// identical earlier extraction (same options, nothing touched since).
	FastPath bool
	// DirtyTypes is the number of Stage 1 classes the warm clustering had to
	// reseed (-1 when no parent state was available to diff against).
	DirtyTypes int
	// DirtyObjects is the number of objects the warm recast reclassified
	// (-1 when the recast ran cold).
	DirtyObjects int
}

// Timing is the per-stage wall clock of one extraction. Stage2 includes the
// auto-K sweep when one ran; FastPath results carry only Total.
type Timing struct {
	Stage1 time.Duration
	Stage2 time.Duration
	Stage3 time.Duration
	Total  time.Duration
}

// DefaultMaxDirtyTypesFrac is the fallback threshold of warm Stages 2–3:
// past this dirty fraction, incremental maintenance has lost its edge over
// recomputing and the pipeline reseeds from scratch.
const DefaultMaxDirtyTypesFrac = 0.25

// IncrStats counts incremental-versus-fallback decisions across a session
// lineage: one instance is shared by a root Prepared and every descendant
// derived through Apply, so the observable speedup of delta extraction can
// be monitored per session. All counters are atomic; read them with
// Snapshot.
type IncrStats struct {
	stage2Warm, stage2Full uint64
	stage3Warm, stage3Full uint64
	fastPath               uint64
	batches, batchedDeltas uint64
	coalescedOps           uint64
}

// IncrStatsSnapshot is a point-in-time copy of IncrStats.
type IncrStatsSnapshot struct {
	// Stage2Warm / Stage2Full count extractions whose clustering matrix was
	// warm-seeded versus fully popcounted (cold runs, missing or mismatched
	// state, and MaxDirtyTypesFrac fallbacks all count as full).
	Stage2Warm, Stage2Full uint64
	// Stage3Warm / Stage3Full count recasts that reclassified only dirty
	// objects versus everything.
	Stage3Warm, Stage3Full uint64
	// FastPath counts whole-result replays (repeat extraction with identical
	// options and no intervening changes).
	FastPath uint64
	// Batches / BatchedDeltas count ApplyBatch passes and the deltas they
	// covered; BatchedDeltas/Batches is the observed amortization factor.
	Batches, BatchedDeltas uint64
	// CoalescedOps counts ops dropped by delta coalescing before compilation
	// (cancelling add/remove pairs, idempotent re-adds, subsumed ops).
	CoalescedOps uint64
}

// record tallies one extraction's incremental decisions.
func (s *IncrStats) record(in IncrInfo) {
	if s == nil {
		return
	}
	if in.FastPath {
		atomic.AddUint64(&s.fastPath, 1)
		return
	}
	if in.Stage2Warm {
		atomic.AddUint64(&s.stage2Warm, 1)
	} else {
		atomic.AddUint64(&s.stage2Full, 1)
	}
	if in.Stage3Warm {
		atomic.AddUint64(&s.stage3Warm, 1)
	} else {
		atomic.AddUint64(&s.stage3Full, 1)
	}
}

// recordBatch tallies one ApplyBatch pass: the number of deltas it stood in
// for and the ops coalescing removed before compilation.
func (s *IncrStats) recordBatch(deltas, dropped int) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.batches, 1)
	atomic.AddUint64(&s.batchedDeltas, uint64(deltas))
	atomic.AddUint64(&s.coalescedOps, uint64(dropped))
}

// Snapshot returns a consistent-enough copy of the counters (each counter is
// read atomically; the set is not a single linearization point).
func (s *IncrStats) Snapshot() IncrStatsSnapshot {
	if s == nil {
		return IncrStatsSnapshot{}
	}
	return IncrStatsSnapshot{
		Stage2Warm:    atomic.LoadUint64(&s.stage2Warm),
		Stage2Full:    atomic.LoadUint64(&s.stage2Full),
		Stage3Warm:    atomic.LoadUint64(&s.stage3Warm),
		Stage3Full:    atomic.LoadUint64(&s.stage3Full),
		FastPath:      atomic.LoadUint64(&s.fastPath),
		Batches:       atomic.LoadUint64(&s.batches),
		BatchedDeltas: atomic.LoadUint64(&s.batchedDeltas),
		CoalescedOps:  atomic.LoadUint64(&s.coalescedOps),
	}
}

// Prepared is a compiled, reusable extraction context for one database: the
// immutable snapshot every stage reads, plus a memo of the most recent
// Stage 1 result. Preparing once and extracting many times (different K,
// Delta, Recast options, sweeps) skips both the snapshot compilation and —
// when the Stage-1-relevant options are unchanged — the minimal perfect
// typing itself. A Prepared is safe for concurrent use; results are
// bit-identical to the unprepared path.
type Prepared struct {
	db      *graph.DB
	snap    *compile.Snapshot
	version uint64

	// stats is shared by the whole session lineage (root and every child
	// derived through Apply); nil only for a zero-value Prepared.
	stats *IncrStats

	mu    sync.Mutex
	s1key stage1Key
	s1    *perfect.Result
	// warm is the Stage 1 warm-start hint installed by Apply: the parent
	// session's Q_D fixpoint plus the accumulated touched set, valid for
	// extractions whose Stage-1-relevant options match warmKey. The memo
	// itself never crosses Apply — a delta invalidates it by construction
	// (the child starts with s1 == nil).
	warm    *perfect.Warm
	warmKey stage1Key
	// s23 retains the Stage 2/3 state of the most recent eligible
	// extraction. Unlike s1 it does cross Apply — the captured distance
	// matrix is keyed by class membership and the assignment by ObjectID,
	// both of which survive a delta — accumulating the touched sets of every
	// hop so warm extraction knows what to re-derive.
	s23 *stage23
}

// stage23 is the warm-start state for Stages 2 and 3.
type stage23 struct {
	// matrixKey guards the captured clustering state: it is valid for
	// extractions whose Stage-1-relevant options match (the matrix is a pure
	// function of the Stage 1 program).
	matrixKey stage1Key
	// state is the pre-merge seeded distance matrix plus the program it was
	// seeded from.
	state *cluster.State
	// classes are the parent extraction's Stage 1 classes (sorted member
	// lists), diffed against a child's to propose the slot mapping.
	classes [][]graph.ObjectID
	// res is the parent's full result, retained when the full option set is
	// memoizable (resOK): it feeds the whole-result fast path and the warm
	// recast. resKey guards both.
	resOK  bool
	resKey stage23Key
	res    *Result
	// touched accumulates the delta-touched objects of every Apply since the
	// state was captured.
	touched []graph.ObjectID
}

// stage23Key identifies every option that influences Stages 2 and 3 given a
// fixed Stage 1 result (parallelism, budgets, and limits never do).
type stage23Key struct {
	s1          stage1Key
	k           int
	deltaName   string
	allowEmpty  bool
	emptyBias   float64
	keepHome    bool
	noClosest   bool
	maxDistance int
	rcUseSorts  bool
	rcValues    string
}

// stage23KeyOf derives the Stage 2/3 memo key, reporting false when the
// options are not memoizable (uncacheable Stage 1, multi-role or seeded
// clustering — whose pre-clustering program is not the Stage 1 program the
// captured state describes — or an anonymous distance function).
func stage23KeyOf(opts Options) (stage23Key, bool) {
	s1, ok := stage1KeyOf(opts)
	if !ok || opts.MultiRole || opts.Seed != nil {
		return stage23Key{}, false
	}
	dn, ok := opts.Delta.CacheKey()
	if !ok {
		return stage23Key{}, false
	}
	rc := recast.DefaultOptions()
	if opts.Recast != nil {
		rc = *opts.Recast
	}
	return stage23Key{
		s1:          s1,
		k:           opts.K,
		deltaName:   dn,
		allowEmpty:  opts.AllowEmpty,
		emptyBias:   opts.EmptyBias,
		keepHome:    rc.KeepHome,
		noClosest:   rc.NoClosest,
		maxDistance: rc.MaxDistance,
		rcUseSorts:  rc.UseSorts,
		rcValues:    strings.Join(rc.ValueLabels, "\x00"),
	}, true
}

// stage1Key identifies the options that influence the Stage 1 result
// (parallelism and cancellation never do; naming does, so non-nil NameFor
// disables the memo — func values cannot be compared).
type stage1Key struct {
	useNaiveGFP     bool
	useSorts        bool
	useBisimulation bool
	valueLabels     string
}

func stage1KeyOf(opts Options) (stage1Key, bool) {
	if opts.NameFor != nil {
		return stage1Key{}, false
	}
	return stage1Key{
		useNaiveGFP:     opts.UseNaiveGFP,
		useSorts:        opts.UseSorts,
		useBisimulation: opts.UseBisimulation,
		valueLabels:     strings.Join(opts.ValueLabels, "\x00"),
	}, true
}

// Prepare compiles db into a reusable extraction context.
func Prepare(db *graph.DB) (*Prepared, error) {
	return PrepareContext(context.Background(), db, 0, 0)
}

// PrepareContext is Prepare with cooperative cancellation, an explicit
// worker bound for the compilation (<= 0 means one per CPU), and a shard
// count for the snapshot layout (see Options.Shards; 0 means automatic).
func PrepareContext(ctx context.Context, db *graph.DB, parallelism, shards int) (*Prepared, error) {
	return PrepareBudget(ctx, db, parallelism, shards, 0)
}

// PrepareBudget is PrepareContext with a resident-shard memory budget in
// bytes (see Options.MemBudget; 0 means fully resident). Snapshots derived
// from the result through Apply inherit the budget — one LRU serves the
// whole session lineage.
func PrepareBudget(ctx context.Context, db *graph.DB, parallelism, shards int, memBudget int64) (*Prepared, error) {
	snap, err := compile.CompileBudget(db, shards, par.Workers(parallelism), memBudget, checkFunc(ctx))
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, snap: snap, stats: &IncrStats{}}, nil
}

// PrepareSpilledContext reconstructs a Prepared from a shard-granular spill:
// an EncodeCore blob plus one EncodeShard file per shard (in shard order).
// No shard file is read here — each faults in, checksum-verified, on first
// access — so rehydrating a durable session costs the core blob plus only
// the shards the next request touches. db must be the database the spilled
// snapshot was compiled from (the serving layer persists the graph text
// beside the shard files).
func PrepareSpilledContext(ctx context.Context, db *graph.DB, core []byte, shardFiles []string, memBudget int64) (*Prepared, error) {
	if check := checkFunc(ctx); check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}
	snap, err := compile.LoadSnapshot(db, core, shardFiles, memBudget)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, snap: snap, stats: &IncrStats{}}, nil
}

// EncodeSnapshotCore serializes the prepared snapshot's shard-independent
// core (label universe, position/sort tables, histograms, shard geometry)
// for a shard-granular spill; pair with EncodeShard.
func (p *Prepared) EncodeSnapshotCore() []byte { return p.snap.EncodeCore() }

// EncodeShard serializes shard si of the prepared snapshot in the versioned
// checksummed shard format, faulting it in if it is not resident.
func (p *Prepared) EncodeShard(si int) []byte { return p.snap.ShardBytes(si) }

// NumShards reports how many fixed-range object shards the prepared
// snapshot is partitioned into. Deltas applied through Apply inherit the
// layout, so the count is stable across a session (it grows only when new
// objects spill past the last shard's range).
func (p *Prepared) NumShards() int { return p.snap.NumShards() }

// DeltaShards maps a delta's object footprint onto the prepared snapshot's
// shards: the ascending list of shard indexes holding an object the delta
// references (RemoveObject ops are widened with the object's neighbours,
// whose edge lists a detach rewrites). exclusive=true means the footprint
// cannot be confined — the delta names an object unknown to this state, and
// interning appends IDs at the top of the space, possibly growing new
// shards.
//
// The footprint is advisory, for lock admission in serving layers:
// correctness never rests on it, because Apply is copy-on-write and a
// serving head swap always revalidates the parent it branched from. An
// over-wide footprint only costs concurrency; DeltaShards never returns an
// under-wide one for the state it was asked about.
func (p *Prepared) DeltaShards(d *graph.Delta) (shards []int, exclusive bool) {
	snap := p.snap
	seen := make(map[int]struct{}, 4)
	touch := func(o graph.ObjectID) {
		seen[snap.ShardOf(o)] = struct{}{}
	}
	d.ForEachName(func(name string) {
		if exclusive {
			return
		}
		id := p.db.Lookup(name)
		if id == graph.NoObject {
			exclusive = true
			return
		}
		touch(id)
	})
	if !exclusive {
		d.ForEachRemovedObject(func(name string) {
			id := p.db.Lookup(name)
			if id == graph.NoObject {
				return // already forced exclusive by ForEachName
			}
			to, _ := snap.Out(id)
			for _, t := range to {
				touch(graph.ObjectID(t))
			}
			from, _ := snap.In(id)
			for _, f := range from {
				touch(graph.ObjectID(f))
			}
		})
	}
	if exclusive {
		return nil, true
	}
	shards = make([]int, 0, len(seen))
	for si := range seen {
		shards = append(shards, si)
	}
	sort.Ints(shards)
	return shards, false
}

// Stats returns the incremental-extraction counters accumulated across this
// Prepared's whole session lineage (the root and every descendant derived
// through Apply share one set).
func (p *Prepared) Stats() IncrStatsSnapshot { return p.stats.Snapshot() }

// DB returns the database the context was prepared from. It must not be
// mutated while the Prepared is in use.
func (p *Prepared) DB() *graph.DB { return p.db }

// Snapshot returns the compiled snapshot.
func (p *Prepared) Snapshot() *compile.Snapshot { return p.snap }

// Version counts the deltas applied since the root Prepare: 0 for a freshly
// prepared context, parent+1 for each Apply. It distinguishes session states
// that share a lineage.
func (p *Prepared) Version() uint64 { return p.version }

// SetBaseVersion stamps the session version a rehydrated context resumes
// from: recovery prepares the spilled snapshot (version 0 by construction),
// rebases it to the manifest's version, then replays the log suffix so each
// Apply advances the count exactly as the original process did. Call it
// before the Prepared is shared; it is not synchronized.
func (p *Prepared) SetBaseVersion(v uint64) { p.version = v }

// Apply produces a new Prepared for the database obtained by applying delta
// to p's database. Neither p, its database, nor any result extracted from it
// is affected: the child shares untouched structure with the parent (graph
// edge slices, snapshot CSR spans, histogram rows) and carries the parent's
// Stage 1 fixpoint as a warm start, so extracting from the child after a
// small delta costs work proportional to the delta's neighborhood, not the
// database. Results are bit-identical to preparing the mutated database from
// scratch.
func (p *Prepared) Apply(delta *graph.Delta) (*Prepared, *compile.ApplyInfo, error) {
	return p.ApplyContext(context.Background(), delta, 0)
}

// ApplyContext is Apply with cooperative cancellation and an explicit worker
// bound for the incremental compilation (<= 0 means one per CPU).
func (p *Prepared) ApplyContext(ctx context.Context, delta *graph.Delta, parallelism int) (*Prepared, *compile.ApplyInfo, error) {
	return p.applyAdvance(ctx, delta, parallelism, 1)
}

// ApplyBatch applies a burst of deltas as one pipeline pass: the batch is
// merged (and, when provably safe, coalesced — cancelling add/remove pairs
// and RemoveObject-subsumed ops dropped) into a single delta, compiled with
// one incremental Apply over the union footprint, and the child's version
// advances by len(deltas) so it is indistinguishable from sequential
// application. The result is bit-identical to applying the deltas one at a
// time; if any delta in the batch would fail, the whole batch fails and p is
// unchanged — callers needing per-delta error attribution fall back to
// sequential ApplyContext calls.
func (p *Prepared) ApplyBatch(deltas []*graph.Delta) (*Prepared, *compile.ApplyInfo, error) {
	return p.ApplyBatchContext(context.Background(), deltas, 0)
}

// ApplyBatchContext is ApplyBatch with cooperative cancellation and an
// explicit worker bound.
func (p *Prepared) ApplyBatchContext(ctx context.Context, deltas []*graph.Delta, parallelism int) (*Prepared, *compile.ApplyInfo, error) {
	merged := graph.MergeDeltas(deltas...)
	apply := merged
	if co, ok := merged.Coalesce(p.db); ok {
		apply = co
	}
	// When Coalesce bails the sequence is known to fail sequentially;
	// applying the merged delta surfaces that same error without committing
	// anything.
	child, info, err := p.applyAdvance(ctx, apply, parallelism, uint64(len(deltas)))
	if err != nil {
		return nil, nil, err
	}
	p.stats.recordBatch(len(deltas), merged.Len()-apply.Len())
	return child, info, nil
}

// applyAdvance is the shared Apply body: compile one delta incrementally and
// derive a child advanced by `advance` versions (1 for a single delta, N for
// a batch standing in for N sequential deltas).
func (p *Prepared) applyAdvance(ctx context.Context, delta *graph.Delta, parallelism int, advance uint64) (*Prepared, *compile.ApplyInfo, error) {
	snap, info, err := compile.ApplyCheck(p.snap, delta, par.Workers(parallelism), checkFunc(ctx))
	if err != nil {
		return nil, nil, err
	}
	child := &Prepared{db: snap.DB(), snap: snap, version: p.version + advance, stats: p.stats}
	// A warm start needs stable complex positions; whether the snapshot
	// itself was rebuilt incrementally does not matter (Q_D rules name
	// labels by string, so a renumbered label table is harmless).
	if info.PosStable {
		p.mu.Lock()
		if p.s1 != nil {
			child.warm = &perfect.Warm{Parent: p.s1, Touched: info.Touched}
			child.warmKey = p.s1key
		} else if p.warm != nil {
			// No extraction ran between two applies: chain the grandparent's
			// state, accumulating the touched sets of both hops.
			child.warm = &perfect.Warm{
				Parent:  p.warm.Parent,
				Touched: mergeTouched(p.warm.Touched, info.Touched),
			}
			child.warmKey = p.warmKey
		}
		// The Stage 2/3 state survives the delta — its matrix is keyed by
		// class membership and its assignment by ObjectID, both stable across
		// Apply — with this hop's touched objects folded into the debt the
		// next extraction must re-derive.
		if p.s23 != nil {
			s := *p.s23
			s.touched = mergeTouched(s.touched, info.Touched)
			child.s23 = &s
		}
		p.mu.Unlock()
	}
	return child, info, nil
}

// mergeTouched merges two ascending ObjectID slices, deduplicating.
func mergeTouched(a, b []graph.ObjectID) []graph.ObjectID {
	out := make([]graph.ObjectID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// stage1 computes (or replays) the Stage 1 minimal perfect typing. The memo
// holds the single most recent result: repeated extractions with the same
// Stage-1-relevant options — the serving pattern the snapshot cache exists
// for — hit it, an options change recomputes. Stage 1 results are read-only
// downstream (every stage clones before mutating), so sharing is safe.
func (p *Prepared) stage1(opts Options, check func() error) (*perfect.Result, error) {
	key, cacheable := stage1KeyOf(opts)
	var warm *perfect.Warm
	if cacheable {
		p.mu.Lock()
		s1 := p.s1
		hit := s1 != nil && p.s1key == key
		if !hit && p.warm != nil && p.warmKey == key {
			// Copy the shared hint so the per-call threshold never races.
			w := *p.warm
			w.MaxAffectedFrac = opts.MaxAffectedFrac
			warm = &w
		}
		p.mu.Unlock()
		if hit {
			return s1, nil
		}
	}
	res, err := perfect.MinimalSnapWarm(p.snap, opts.perfectOptions(check), warm)
	if err != nil {
		return nil, err
	}
	if cacheable {
		p.mu.Lock()
		p.s1, p.s1key = res, key
		p.mu.Unlock()
	}
	return res, nil
}

// Extract runs the full three-stage pipeline on db.
func Extract(db *graph.DB, opts Options) (*Result, error) {
	return ExtractContext(context.Background(), db, opts)
}

// ExtractContext is Extract with cooperative cancellation and resource
// budgets: the run stops at the next checkpoint once ctx is cancelled (or
// the Options.Limits wall-clock budget expires) and returns ctx.Err() — or a
// *graph.LimitError for budget violations. Checkpoints only ever abort the
// whole run, so a completed extraction is bit-identical to Extract.
func ExtractContext(ctx context.Context, db *graph.DB, opts Options) (*Result, error) {
	ctx, cancel, wrapWall := opts.Limits.withWallClock(ctx)
	defer cancel()
	if err := opts.Limits.checkGraph(db); err != nil {
		return nil, err
	}
	prep, err := PrepareBudget(ctx, db, opts.Parallelism, opts.Shards, opts.MemBudget)
	if err != nil {
		return nil, wrapWall(err)
	}
	res, err := extract(ctx, prep, opts)
	if err != nil {
		return nil, wrapWall(err)
	}
	return res, nil
}

// ExtractPrepared runs the pipeline over a prepared context, skipping the
// snapshot compilation (and, when the Stage-1 options repeat, Stage 1).
func ExtractPrepared(p *Prepared, opts Options) (*Result, error) {
	return ExtractPreparedContext(context.Background(), p, opts)
}

// ExtractPreparedContext is ExtractPrepared with cancellation and budgets,
// with the same contract as ExtractContext.
func ExtractPreparedContext(ctx context.Context, p *Prepared, opts Options) (*Result, error) {
	ctx, cancel, wrapWall := opts.Limits.withWallClock(ctx)
	defer cancel()
	res, err := extract(ctx, p, opts)
	if err != nil {
		return nil, wrapWall(err)
	}
	return res, nil
}

func extract(ctx context.Context, prep *Prepared, opts Options) (*Result, error) {
	if prep.snap.NumComplex() == 0 {
		return nil, fmt.Errorf("core: database has no complex objects")
	}
	if err := opts.Limits.checkGraph(prep.db); err != nil {
		return nil, err
	}
	check := checkFunc(ctx)
	tTotal := time.Now()

	matrixKey, matrixOK := stage1KeyOf(opts)
	// The captured clustering state describes the plain Stage 1 program;
	// multi-role decomposition and seeding change the pre-clustering program,
	// so those runs neither consume nor produce it.
	useS23 := matrixOK && !opts.MultiRole && opts.Seed == nil
	resKey, resOK := stage23KeyOf(opts)
	var s23 *stage23
	if useS23 {
		prep.mu.Lock()
		s23 = prep.s23
		prep.mu.Unlock()
	}

	// Whole-result fast path: an identical extraction already ran in this
	// lineage and no delta has touched anything since (a repeat on the same
	// Prepared, or a chain of empty deltas). The retained result is returned
	// as-is — the snapshots are content-identical — under fresh flags.
	if resOK && s23 != nil && s23.resOK && s23.resKey == resKey && len(s23.touched) == 0 {
		out := *s23.res
		out.Incr = IncrInfo{FastPath: true, DirtyTypes: -1, DirtyObjects: -1}
		out.Timing = Timing{Total: time.Since(tTotal)}
		prep.stats.record(out.Incr)
		return &out, nil
	}

	t0 := time.Now()
	stage1, err := prep.stage1(opts, check)
	if err != nil {
		return nil, err
	}
	res := &Result{Stage1: stage1, PerfectTypes: stage1.Program.Len()}
	res.Incr = IncrInfo{Stage1Warm: stage1.WarmUsed, DirtyTypes: -1, DirtyObjects: -1}
	res.Timing.Stage1 = time.Since(t0)

	baseProg := stage1.Program
	baseHomes := make(map[graph.ObjectID][]int, len(stage1.Home))
	for o, h := range stage1.Home {
		baseHomes[o] = []int{h}
	}
	if opts.MultiRole {
		roles := perfect.ApplyRoles(stage1)
		res.Roles = roles
		baseProg = roles.Program
		baseHomes = roles.Homes
	}

	baseProg, pinned, err := withSeeds(baseProg, opts.Seed)
	if err != nil {
		return nil, err
	}
	if err := opts.Limits.checkTypes(baseProg); err != nil {
		return nil, err
	}

	// Warm Stage 2: diff the child classes against the retained state and
	// seed the distance matrix by copy instead of popcount where provable.
	var warm *cluster.Warm
	if useS23 && s23 != nil && s23.state != nil && s23.matrixKey == matrixKey {
		warm = planWarm(stage1, s23, opts, res)
	}

	t0 = time.Now()
	k := opts.K
	if k <= 0 {
		sweep, err := sweepFrom(check, prep.snap, baseProg, baseHomes, pinned, opts, warm)
		if err != nil {
			return nil, err
		}
		k = sweep.Knee()
		res.AutoK = k
	}
	if k > baseProg.Len() {
		k = baseProg.Len()
	}
	if nPinned := countTrue(pinned); k < nPinned {
		k = nPinned
	}

	var capture *cluster.State
	var prog *typing.Program
	// Whole-Stage-2 reuse: the greedy coalescing is a pure function of the
	// pre-clustering program (links, weights, names) and the clustering
	// options — it never reads the database. When the child's Stage 1 program
	// is positionally identical to the one the retained state was seeded from
	// and the full option key matches, the parent's merge sequence is the
	// child's by determinism, so its clustering result is returned verbatim
	// and the merge loop is skipped entirely. A delta that perturbs any
	// class — membership, weight, rule, or name — fails the comparison and
	// falls through to the matrix-copying warm path below. opts.K > 0 is
	// required because the auto-K sweep consults the database for its knee,
	// and a negative MaxDirtyTypesFrac — the forced-full-fallback setting —
	// disables this path like every other reuse.
	if resOK && s23 != nil && s23.resOK && s23.resKey == resKey && s23.state != nil &&
		opts.K > 0 && dirtyBudget(opts) >= 0 && programEqual(baseProg, s23.state.Program()) {
		prog = s23.res.Program
		res.Program = prog
		res.Mapping = s23.res.Mapping
		res.TotalDistance = s23.res.TotalDistance
		res.AutoK = s23.res.AutoK
		res.Incr.Stage2Warm = true
		res.Incr.DirtyTypes = 0
		// Re-retain the parent's seeded matrix unchanged: it still describes
		// this exact pre-clustering program.
		capture = s23.state
	} else {
		g := cluster.NewGreedySnapWarm(baseProg.Clone(), prep.snap, opts.clusterConfig(pinned, check), warm)
		// Capture the seeded pre-merge matrix before any move mutates it; the
		// capture aliases the triangle (the engine clones lazily on its first
		// move), so retaining state costs nothing when no merges follow.
		if useS23 {
			capture = g.State()
		}
		g.RunTo(k)
		if err := g.Err(); err != nil {
			return nil, err
		}
		var mapping []int
		prog, mapping = g.Program()
		res.Program = prog
		res.Mapping = mapping
		res.TotalDistance = g.TotalDistance()
		if copied, _ := g.SeedStats(); copied > 0 {
			res.Incr.Stage2Warm = true
		}
	}
	res.Timing.Stage2 = time.Since(t0)

	res.Homes = mapHomes(baseHomes, res.Mapping)

	// Warm Stage 3: when the full option set matches the retained result and
	// clustering landed on the same final program, reclassify only the dirty
	// closure of the accumulated delta and copy every other assignment row.
	t0 = time.Now()
	var rcWarm *recast.Warm
	if resOK && s23 != nil && s23.resOK && s23.resKey == resKey && programsAgree(prog, s23.res.Program) {
		rcWarm = planRecastWarm(prep.snap, s23, res, opts)
	}
	rc, classified, err := recast.RecastSnapWarm(prep.snap, prog, res.Homes, opts.recastOptions(check), rcWarm)
	if err != nil {
		return nil, err
	}
	if rcWarm != nil {
		res.Incr.Stage3Warm = true
		res.Incr.DirtyObjects = classified
	}
	res.Assignment = rc.Assignment
	res.Defect = rc.Defect
	res.Unclassified = rc.Unclassified
	res.Timing.Stage3 = time.Since(t0)
	res.Timing.Total = time.Since(tTotal)
	prep.stats.record(res.Incr)

	// Retain this extraction's state for the next one in the lineage. The
	// full result rides along only when the whole option set is memoizable.
	if capture != nil {
		ns := &stage23{matrixKey: matrixKey, state: capture, classes: stage1.Classes}
		if resOK {
			ns.resOK, ns.resKey, ns.res = true, resKey, res
		}
		prep.mu.Lock()
		prep.s23 = ns
		prep.mu.Unlock()
	}
	return res, nil
}

// dirtyBudget resolves the MaxDirtyTypesFrac option.
func dirtyBudget(opts Options) float64 {
	if opts.MaxDirtyTypesFrac != 0 {
		return opts.MaxDirtyTypesFrac
	}
	return DefaultMaxDirtyTypesFrac
}

// planWarm diffs the child's Stage 1 classes against the retained parent
// state and builds the matrix-seeding plan: classes with identical members
// whose definitions provably mirror a parent slot keep their matrix cells.
// It records the dirty-type count on res and returns nil — a full seeding —
// when the dirty fraction exceeds the MaxDirtyTypesFrac budget.
func planWarm(stage1 *perfect.Result, s23 *stage23, opts Options, res *Result) *cluster.Warm {
	proposal := perfect.MatchClasses(stage1.Classes, s23.classes)
	m, clean := cluster.MatchDefinitions(stage1.Program, s23.state, proposal)
	n := stage1.Program.Len()
	dirty := n - clean
	res.Incr.DirtyTypes = dirty
	if float64(dirty) > dirtyBudget(opts)*float64(n) {
		return nil
	}
	return &cluster.Warm{State: s23.state, Map: m}
}

// programsAgree reports whether two programs carry identical link lists at
// every type index — the only program inputs Stage 3 classification reads
// (names and weights feed neither pictures nor distances).
func programsAgree(a, b *typing.Program) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Types {
		la, lb := a.Types[i].Links, b.Types[i].Links
		if len(la) != len(lb) {
			return false
		}
		for j := range la {
			if la[j] != lb[j] {
				return false
			}
		}
	}
	return true
}

// programEqual reports whether two programs are identical in every input the
// greedy coalescing reads: positionally equal link lists, weights, and names
// (names do not steer merges but are carried into the output program, so
// reusing a result requires them equal too).
func programEqual(a, b *typing.Program) bool {
	if !programsAgree(a, b) {
		return false
	}
	for i := range a.Types {
		if a.Types[i].Weight != b.Types[i].Weight || a.Types[i].Name != b.Types[i].Name {
			return false
		}
	}
	return true
}

// planRecastWarm computes the dirty-object closure of the accumulated delta
// and builds the warm recast plan. An object must be reclassified when its
// own edge set changed, its homes changed, or a neighbour in either direction
// did either of those — local pictures read the homes of both out-targets and
// in-sources, and a touched atomic value surfaces through its sources'
// pictures. Returns nil — a full recast — when the dirty fraction exceeds the
// MaxDirtyTypesFrac budget.
func planRecastWarm(snap *compile.Snapshot, s23 *stage23, res *Result, opts Options) *recast.Warm {
	parent := s23.res
	nC := len(snap.Complex)
	seed := make([]bool, nC)
	dirty := make([]bool, nC)
	markNeighbors := func(o graph.ObjectID) {
		to, _ := snap.Out(o)
		for _, t := range to {
			if p := snap.Pos[t]; p >= 0 {
				dirty[p] = true
			}
		}
		from, _ := snap.In(o)
		for _, f := range from {
			if p := snap.Pos[f]; p >= 0 {
				dirty[p] = true
			}
		}
	}
	for _, o := range s23.touched {
		if int(o) >= len(snap.Pos) {
			continue
		}
		if p := snap.Pos[o]; p >= 0 {
			seed[p] = true
		} else {
			// Atomic: its value feeds the pictures of its sources.
			markNeighbors(o)
		}
	}
	for i, o := range snap.Complex {
		if !intsEqual(res.Homes[o], parent.Homes[o]) {
			seed[i] = true
		}
	}
	for i, o := range snap.Complex {
		if !seed[i] {
			continue
		}
		dirty[i] = true
		markNeighbors(o)
	}
	count := 0
	for _, d := range dirty {
		if d {
			count++
		}
	}
	if float64(count) > dirtyBudget(opts)*float64(nC) {
		return nil
	}
	return &recast.Warm{Assignment: parent.Assignment, Dirty: dirty}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// withSeeds appends the seed types of a-priori knowledge to the
// pre-clustering program as pinned slots, remapping seed-internal link
// targets and disambiguating name collisions.
func withSeeds(base *typing.Program, seed *typing.Program) (*typing.Program, []bool, error) {
	if seed == nil || seed.Len() == 0 {
		return base, nil, nil
	}
	if err := seed.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: invalid seed program: %v", err)
	}
	out := base.Clone()
	offset := out.Len()
	used := make(map[string]bool, offset)
	for _, t := range out.Types {
		used[t.Name] = true
	}
	for _, st := range seed.Types {
		t := st.Clone()
		for li, l := range t.Links {
			if l.Target != typing.AtomicTarget {
				t.Links[li].Target = l.Target + offset
			}
		}
		orig := t.Name
		for n := 2; used[t.Name]; n++ {
			t.Name = fmt.Sprintf("%s%d", orig, n)
		}
		used[t.Name] = true
		out.Add(t)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: seeding failed: %v", err)
	}
	pinned := make([]bool, out.Len())
	for i := offset; i < out.Len(); i++ {
		pinned[i] = true
	}
	return out, pinned, nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// mapHomes pushes pre-clustering home types through the cluster mapping,
// dropping types retired to the empty slot and deduplicating.
func mapHomes(base map[graph.ObjectID][]int, mapping []int) map[graph.ObjectID][]int {
	out := make(map[graph.ObjectID][]int, len(base))
	for o, hs := range base {
		var mapped []int
		for _, h := range hs {
			c := mapping[h]
			if c == cluster.EmptySlot {
				continue
			}
			dup := false
			for _, x := range mapped {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				mapped = append(mapped, c)
			}
		}
		out[o] = mapped
	}
	return out
}

// SweepPoint is one point of the §7.2 sensitivity graph.
type SweepPoint struct {
	K             int
	Excess        int
	Deficit       int
	Defect        int
	TotalDistance float64
	Unclassified  int
}

// SweepResult is the full sensitivity curve, ordered by decreasing K (the
// order the greedy run produces it in).
type SweepResult struct {
	Points []SweepPoint
}

// Sweep runs Stage 1 once and then the greedy coalescing from the perfect
// typing down to one type, recasting and measuring the defect at every
// intermediate number of types — the Figure 6 experiment.
func Sweep(db *graph.DB, opts Options) (*SweepResult, error) {
	return SweepContext(context.Background(), db, opts)
}

// SweepContext is Sweep with cooperative cancellation and resource budgets,
// with the same contract as ExtractContext.
func SweepContext(ctx context.Context, db *graph.DB, opts Options) (*SweepResult, error) {
	ctx, cancel, wrapWall := opts.Limits.withWallClock(ctx)
	defer cancel()
	if err := opts.Limits.checkGraph(db); err != nil {
		return nil, err
	}
	prep, err := PrepareBudget(ctx, db, opts.Parallelism, opts.Shards, opts.MemBudget)
	if err != nil {
		return nil, wrapWall(err)
	}
	sw, err := sweep(ctx, prep, opts)
	if err != nil {
		return nil, wrapWall(err)
	}
	return sw, nil
}

// SweepPrepared runs the sensitivity sweep over a prepared context.
func SweepPrepared(p *Prepared, opts Options) (*SweepResult, error) {
	return SweepPreparedContext(context.Background(), p, opts)
}

// SweepPreparedContext is SweepPrepared with cancellation and budgets, with
// the same contract as SweepContext.
func SweepPreparedContext(ctx context.Context, p *Prepared, opts Options) (*SweepResult, error) {
	ctx, cancel, wrapWall := opts.Limits.withWallClock(ctx)
	defer cancel()
	sw, err := sweep(ctx, p, opts)
	if err != nil {
		return nil, wrapWall(err)
	}
	return sw, nil
}

func sweep(ctx context.Context, prep *Prepared, opts Options) (*SweepResult, error) {
	if err := opts.Limits.checkGraph(prep.db); err != nil {
		return nil, err
	}
	check := checkFunc(ctx)
	stage1, err := prep.stage1(opts, check)
	if err != nil {
		return nil, err
	}
	baseProg := stage1.Program
	baseHomes := make(map[graph.ObjectID][]int, len(stage1.Home))
	for o, h := range stage1.Home {
		baseHomes[o] = []int{h}
	}
	if opts.MultiRole {
		roles := perfect.ApplyRoles(stage1)
		baseProg = roles.Program
		baseHomes = roles.Homes
	}
	baseProg, pinned, err := withSeeds(baseProg, opts.Seed)
	if err != nil {
		return nil, err
	}
	if err := opts.Limits.checkTypes(baseProg); err != nil {
		return nil, err
	}
	return sweepFrom(check, prep.snap, baseProg, baseHomes, pinned, opts, nil)
}

func sweepFrom(check func() error, snap *compile.Snapshot, baseProg *typing.Program, baseHomes map[graph.ObjectID][]int, pinned []bool, opts Options, warm *cluster.Warm) (*SweepResult, error) {
	g := cluster.NewGreedySnapWarm(baseProg.Clone(), snap, opts.clusterConfig(pinned, check), warm)
	if err := g.Err(); err != nil {
		return nil, err
	}

	// The greedy merge sequence is inherently serial, but measuring each
	// intermediate typing (recast + defect) is independent work: capture the
	// typing at each size during the single run, then measure them on all
	// CPUs. Results are deterministic (indexed writes).
	type capturePoint struct {
		k             int
		prog          *typing.Program
		mapping       []int
		totalDistance float64
	}
	var snaps []capturePoint
	capture := func() {
		prog, mapping := g.Program()
		snaps = append(snaps, capturePoint{g.NumActive(), prog, mapping, g.TotalDistance()})
	}
	capture()
	for {
		if _, ok := g.Step(); !ok {
			break
		}
		capture()
	}
	if err := g.Err(); err != nil {
		return nil, err
	}

	sw := &SweepResult{Points: make([]SweepPoint, len(snaps))}
	// One capture per worker; each recast runs serially inside its worker
	// (Parallelism: 1) so the sweep doesn't oversubscribe the CPUs.
	rcOpts := opts.recastOptions(check)
	rcOpts.Parallelism = 1
	if err := par.DoItemsErr(par.Workers(opts.Parallelism), len(snaps), func(i int) error {
		s := snaps[i]
		homes := mapHomes(baseHomes, s.mapping)
		rc, err := recast.RecastSnapErr(snap, s.prog, homes, rcOpts)
		if err != nil {
			return err
		}
		sw.Points[i] = SweepPoint{
			K:             s.k,
			Excess:        rc.Defect.Excess,
			Deficit:       rc.Defect.Deficit,
			Defect:        rc.Defect.Total(),
			TotalDistance: s.totalDistance,
			Unclassified:  rc.Unclassified,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return sw, nil
}

// Knee returns the number of types at the elbow of the defect curve: the
// point with maximum perpendicular distance from the straight line joining
// the curve's endpoints. This is the "optimal trade-off between number of
// types and defect" the paper's sensitivity analysis looks for; ties go to
// the smaller defect, then the smaller K.
func (s *SweepResult) Knee() int {
	if len(s.Points) == 0 {
		return 1
	}
	if len(s.Points) <= 2 {
		return s.Points[len(s.Points)-1].K
	}
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	dx := float64(last.K - first.K)
	dy := float64(last.Defect - first.Defect)
	norm := dx*dx + dy*dy
	if norm == 0 {
		return first.K
	}
	bestIdx, bestDist := 0, -1.0
	for i, p := range s.Points {
		// Perpendicular distance from p to the line (first)-(last).
		num := dy*float64(p.K-first.K) - dx*float64(p.Defect-first.Defect)
		if num < 0 {
			num = -num
		}
		d := num
		if d > bestDist || (d == bestDist && p.Defect < s.Points[bestIdx].Defect) {
			bestIdx, bestDist = i, d
		}
	}
	return s.Points[bestIdx].K
}

// At returns the sweep point for a given K, if present.
func (s *SweepResult) At(k int) (SweepPoint, bool) {
	for _, p := range s.Points {
		if p.K == k {
			return p, true
		}
	}
	return SweepPoint{}, false
}
