package core

import (
	"testing"

	"schemex/internal/cluster"
	"schemex/internal/graph"
	"schemex/internal/synth"
)

// recordsDB builds two clean record families plus some irregular members.
func recordsDB() *graph.DB {
	db := graph.New()
	mk := func(name string, attrs ...string) {
		for _, a := range attrs {
			db.LinkAtom(name, a, name+"."+a, "v")
		}
	}
	for i := 0; i < 6; i++ {
		mk("emp"+string(rune('0'+i)), "name", "salary", "dept")
	}
	mk("emp9", "name", "salary") // missing dept
	for i := 0; i < 5; i++ {
		mk("book"+string(rune('0'+i)), "title", "isbn")
	}
	mk("book9", "title", "isbn", "edition") // extra attribute
	return db
}

func TestExtractRecords(t *testing.T) {
	db := recordsDB()
	res, err := Extract(db, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 2 {
		t.Fatalf("final program has %d types, want 2:\n%s", res.Program.Len(), res.Program)
	}
	if res.PerfectTypes != 4 {
		t.Fatalf("perfect types = %d, want 4 (emp, emp-partial, book, book-extra)", res.PerfectTypes)
	}
	// The two big families must be separated: emp0 and book0 in different
	// clusters.
	e := res.Assignment.Of(db.Lookup("emp0"))
	b := res.Assignment.Of(db.Lookup("book0"))
	if len(e) == 0 || len(b) == 0 {
		t.Fatal("core objects unassigned")
	}
	same := false
	for _, x := range e {
		for _, y := range b {
			if x == y {
				same = true
			}
		}
	}
	if same {
		t.Fatal("emp and book collapsed into one type at k=2")
	}
	// Irregular members produce a small nonzero defect.
	if res.Defect.Total() == 0 || res.Defect.Total() > 10 {
		t.Fatalf("defect = %d, want small nonzero", res.Defect.Total())
	}
	if res.Unclassified != 0 {
		t.Fatalf("unclassified = %d, want 0", res.Unclassified)
	}
}

func TestExtractNoComplexObjects(t *testing.T) {
	db := graph.New()
	db.Atom("v", "x")
	if _, err := Extract(db, Options{K: 1}); err == nil {
		t.Fatal("extraction over atomic-only data should fail")
	}
}

func TestExtractKLargerThanPerfect(t *testing.T) {
	db := recordsDB()
	res, err := Extract(db, Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != res.PerfectTypes {
		t.Fatalf("K beyond perfect typing should clamp: got %d, perfect %d",
			res.Program.Len(), res.PerfectTypes)
	}
	if res.Defect.Total() != 0 {
		t.Fatalf("at the perfect typing the defect must be 0, got %d", res.Defect.Total())
	}
}

func TestExtractAutoK(t *testing.T) {
	db := recordsDB()
	res, err := Extract(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoK < 1 || res.AutoK > res.PerfectTypes {
		t.Fatalf("AutoK = %d out of range (perfect %d)", res.AutoK, res.PerfectTypes)
	}
	if res.Program.Len() != res.AutoK {
		t.Fatalf("program size %d != AutoK %d", res.Program.Len(), res.AutoK)
	}
}

func TestExtractMultiRole(t *testing.T) {
	// Soccer/movie-star data: multi-role decomposition removes the
	// conjunction type before clustering.
	db := graph.New()
	mk := func(name string, attrs ...string) {
		for _, a := range attrs {
			db.LinkAtom(name, a, name+"."+a, "v")
		}
	}
	mk("soccer1", "name", "country", "team")
	mk("soccer2", "name", "country", "team")
	mk("both", "name", "country", "team", "movie")
	mk("movie1", "name", "country", "movie")
	mk("movie2", "name", "country", "movie")
	res, err := Extract(db, Options{K: 2, MultiRole: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Roles == nil || len(res.Roles.Removed) != 1 {
		t.Fatalf("expected one conjunction type removed, got %+v", res.Roles)
	}
	// "both" ends with two home clusters.
	if got := len(res.Homes[db.Lookup("both")]); got != 2 {
		t.Fatalf("multi-role object has %d homes, want 2", got)
	}
}

func TestSweepMonotoneDistanceAndEndpoints(t *testing.T) {
	db := recordsDB()
	sw, err := Sweep(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) == 0 {
		t.Fatal("empty sweep")
	}
	first := sw.Points[0]
	if first.K != 4 || first.Defect != 0 {
		t.Fatalf("sweep must start at the perfect typing with defect 0, got %+v", first)
	}
	last := sw.Points[len(sw.Points)-1]
	if last.K != 1 {
		t.Fatalf("sweep must end at one type, got K=%d", last.K)
	}
	for i := 1; i < len(sw.Points); i++ {
		if sw.Points[i].K != sw.Points[i-1].K-1 {
			t.Fatal("sweep points must decrease K by one")
		}
		if sw.Points[i].TotalDistance < sw.Points[i-1].TotalDistance {
			t.Fatal("total distance must be nondecreasing along merges")
		}
	}
	if _, ok := sw.At(2); !ok {
		t.Fatal("At(2) missing")
	}
	if _, ok := sw.At(99); ok {
		t.Fatal("At(99) should miss")
	}
}

func TestKneeOnSyntheticCurve(t *testing.T) {
	// A synthetic elbow: defect flat from K=10 down to K=4, then exploding.
	sw := &SweepResult{}
	for k := 10; k >= 1; k-- {
		d := 10
		if k < 4 {
			d = 10 + (4-k)*300
		}
		sw.Points = append(sw.Points, SweepPoint{K: k, Defect: d})
	}
	knee := sw.Knee()
	if knee != 4 {
		t.Fatalf("knee = %d, want 4", knee)
	}
}

func TestKneeDegenerate(t *testing.T) {
	if (&SweepResult{}).Knee() != 1 {
		t.Error("empty sweep knee should be 1")
	}
	one := &SweepResult{Points: []SweepPoint{{K: 3, Defect: 5}}}
	if one.Knee() != 3 {
		t.Error("single-point sweep should return its K")
	}
}

func TestExtractWithEmptyType(t *testing.T) {
	db := recordsDB()
	// A handful of alien objects that fit nowhere.
	for i := 0; i < 2; i++ {
		name := "alien" + string(rune('0'+i))
		db.LinkAtom(name, "zz1", name+".a", "v")
		db.LinkAtom(name, "zz2", name+".b", "v")
	}
	res, err := Extract(db, Options{
		K:          2,
		AllowEmpty: true,
		EmptyBias:  0.1,
		Delta:      cluster.Delta2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 2 {
		t.Fatalf("got %d types, want 2", res.Program.Len())
	}
}

func TestExtractOnSynthPreset(t *testing.T) {
	// Integration: DB5 end-to-end. The optimal typing at K = intended
	// separates the intended types with moderate defect.
	p := synth.Presets()[4]
	db, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(db, Options{K: p.Intended()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != p.Intended() {
		t.Fatalf("got %d types, want %d", res.Program.Len(), p.Intended())
	}
	if res.PerfectTypes < 100 {
		t.Fatalf("non-bipartite preset should have a large perfect typing, got %d", res.PerfectTypes)
	}
	if res.Defect.Total() <= 0 || res.Defect.Total() > 1000 {
		t.Fatalf("defect = %d out of plausible range", res.Defect.Total())
	}
}
