package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"schemex/internal/compile"
	"schemex/internal/synth"
)

// budgets exercised by the out-of-core acceptance tests: a few KiB forces
// roughly a two-shard residency on the Table 1 presets (shards are floored
// at 64 objects), so extraction pages constantly; the larger value covers a
// budget that evicts only occasionally.
var testBudgets = []int64{4096, 1 << 20}

// TestExtractBudgetDeterminism asserts the out-of-core acceptance property:
// extraction under a memory budget that spills shards to disk is
// bit-identical to the fully resident run, across shard counts {1, 4, auto}
// x Parallelism {1, 0} on every Table 1 preset.
func TestExtractBudgetDeterminism(t *testing.T) {
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Extract(db, Options{K: 5, Shards: 1, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s reference: %v", p.Spec.Name, err)
		}
		want := outcomeOf(ref)
		for _, budget := range testBudgets {
			for _, cfg := range shardConfigs {
				res, err := Extract(db, Options{
					K: 5, Shards: cfg.shards, Parallelism: cfg.par, MemBudget: budget,
				})
				if err != nil {
					t.Fatalf("%s (shards=%d, p=%d, budget=%d): %v",
						p.Spec.Name, cfg.shards, cfg.par, budget, err)
				}
				if got := outcomeOf(res); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: budgeted result diverges at Shards=%d Parallelism=%d MemBudget=%d:\nref: %+v\ngot: %+v",
						p.Spec.Name, cfg.shards, cfg.par, budget, want, got)
				}
			}
		}
	}
	if compile.ResidencyStats().Faults == 0 {
		t.Error("budgeted extraction matrix never faulted a shard; budgets too large to exercise paging")
	}
}

// TestApplyStreamBudgetDeterminism replays the randomized cross-shard delta
// stream through budgeted sessions and asserts the extraction outcome after
// every hop matches the flat fully-resident reference bit for bit. The
// stream covers cross-shard links, growth past the last shard, link
// removal, label-universe fallbacks, and atomic/complex flips, so structural
// sharing, fallback recompiles, and spill-file lineage all run under paging.
func TestApplyStreamBudgetDeterminism(t *testing.T) {
	presets := synth.Presets()
	db, err := presets[6].Build() // DB7: graph-shaped, overlapping classes
	if err != nil {
		t.Fatal(err)
	}
	const hops = 10
	deltas, refs := buildShardStream(t, db, 23, hops)

	ctx := context.Background()
	for _, cfg := range shardConfigs {
		cur, err := PrepareBudget(ctx, db, cfg.par, cfg.shards, 4096)
		if err != nil {
			t.Fatal(err)
		}
		for h, d := range deltas {
			next, _, err := cur.ApplyContext(ctx, d, cfg.par)
			if err != nil {
				t.Fatalf("shards=%d p=%d hop %d: %v", cfg.shards, cfg.par, h, err)
			}
			cur = next
			res, err := ExtractPreparedContext(ctx, cur, Options{K: 5, Parallelism: cfg.par})
			if err != nil {
				t.Fatalf("shards=%d p=%d hop %d extract: %v", cfg.shards, cfg.par, h, err)
			}
			if got := outcomeOf(res); !reflect.DeepEqual(got, refs[h]) {
				t.Fatalf("shards=%d p=%d budget=4096: outcome diverges at hop %d:\nref: %+v\ngot: %+v",
					cfg.shards, cfg.par, h, refs[h], got)
			}
		}
	}
}

// TestSpillRoundTripBudgetDeterminism: encode-core + per-shard spill, then
// reload through PrepareSpilledContext at several budgets — the reloaded
// session must extract bit-identically to the original, and a reloaded
// session must keep accepting deltas on the incremental path.
func TestSpillRoundTripBudgetDeterminism(t *testing.T) {
	presets := synth.Presets()
	db, err := presets[2].Build() // DB3: deep nesting
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	orig, err := PrepareBudget(ctx, db, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ExtractPreparedContext(ctx, orig, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeOf(refRes)

	core := orig.EncodeSnapshotCore()
	dir := t.TempDir()
	files := make([]string, orig.NumShards())
	for si := range files {
		files[si] = writeTempShard(t, dir, si, orig.EncodeShard(si))
	}
	for _, budget := range []int64{0, 4096, 1 << 20} {
		re, err := PrepareSpilledContext(ctx, db, core, files, budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		res, err := ExtractPreparedContext(ctx, re, Options{K: 5})
		if err != nil {
			t.Fatalf("budget %d extract: %v", budget, err)
		}
		if got := outcomeOf(res); !reflect.DeepEqual(got, want) {
			t.Errorf("budget %d: reloaded extraction diverges:\nref: %+v\ngot: %+v", budget, want, got)
		}
	}
}

// writeTempShard persists one encoded shard for the spill round-trip test.
func writeTempShard(t *testing.T, dir string, si int, blob []byte) string {
	t.Helper()
	p := filepath.Join(dir, fmt.Sprintf("s%d.shard", si))
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}
