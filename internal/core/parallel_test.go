package core

import (
	"reflect"
	"testing"

	"schemex/internal/cluster"
	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/synth"
)

// parallelFixtures returns the datasets the determinism regression runs on:
// a bipartite preset, a recursive overlapping preset, and two DBG seeds.
func parallelFixtures(t *testing.T) map[string]*graph.DB {
	t.Helper()
	out := make(map[string]*graph.DB)
	presets := synth.Presets()
	for _, i := range []int{0, 6} { // DB1 (bipartite) and DB7 (graph, overlap)
		db, err := presets[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		out[presets[i].Spec.Name] = db
	}
	for _, seed := range []int64{0, 9} {
		db, _ := dbg.Generate(dbg.Options{Seed: seed})
		out["dbg"+string(rune('0'+seed))] = db
	}
	return out
}

// TestExtractParallelismDeterminism asserts the acceptance property of
// Options.Parallelism: the Stage 2 merge trace, the final program, the
// mapping, and the recast defect are bit-identical for worker counts 1, 2,
// and 8 on every fixture.
func TestExtractParallelismDeterminism(t *testing.T) {
	for name, db := range parallelFixtures(t) {
		type outcome struct {
			program string
			mapping []int
			defect  int
			excess  int
			deficit int
			uncl    int
			dist    float64
		}
		run := func(p int) (outcome, []cluster.Step) {
			res, err := Extract(db, Options{K: 5, Parallelism: p})
			if err != nil {
				t.Fatalf("%s (p=%d): %v", name, p, err)
			}
			// Re-run the greedy engine alone to compare full traces: Extract
			// does not expose its engine, but the trace is a pure function of
			// (program, config), both of which Extract derives
			// deterministically.
			g := cluster.NewGreedy(res.Stage1.Program.Clone(), cluster.Config{Parallelism: p})
			g.RunTo(5)
			return outcome{
				program: res.Program.String(),
				mapping: res.Mapping,
				defect:  res.Defect.Total(),
				excess:  res.Defect.Excess,
				deficit: res.Defect.Deficit,
				uncl:    res.Unclassified,
				dist:    res.TotalDistance,
			}, g.Trace()
		}
		ref, refTrace := run(1)
		for _, p := range []int{2, 8} {
			got, trace := run(p)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: result diverges at Parallelism=%d:\nserial:   %+v\nparallel: %+v",
					name, p, ref, got)
			}
			if !reflect.DeepEqual(trace, refTrace) {
				t.Errorf("%s: Stage 2 trace diverges at Parallelism=%d", name, p)
			}
		}
	}
}

// TestStage1ParallelismDeterminism: the minimal perfect typing is identical
// at any worker count (program text, homes, and extent).
func TestStage1ParallelismDeterminism(t *testing.T) {
	for name, db := range parallelFixtures(t) {
		ref, err := perfect.Minimal(db, perfect.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8} {
			got, err := perfect.Minimal(db, perfect.Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if got.Program.String() != ref.Program.String() {
				t.Errorf("%s: Stage 1 program diverges at Parallelism=%d", name, p)
			}
			if !reflect.DeepEqual(got.Home, ref.Home) {
				t.Errorf("%s: Stage 1 homes diverge at Parallelism=%d", name, p)
			}
			if !got.Extent.Equal(ref.Extent) {
				t.Errorf("%s: Stage 1 extent diverges at Parallelism=%d", name, p)
			}
		}
	}
}

// TestSweepParallelismDeterminism: the full sensitivity curve is identical
// at any worker count.
func TestSweepParallelismDeterminism(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{Seed: 3})
	ref, err := Sweep(db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		got, err := Sweep(db, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Points, ref.Points) {
			t.Errorf("sweep curve diverges at Parallelism=%d", p)
		}
	}
}
