package core

import (
	"strings"
	"testing"

	"schemex/internal/typing"
)

func TestWithSeedsNil(t *testing.T) {
	base := typing.MustParse(`type a = ->x[0]`)
	out, pinned, err := withSeeds(base, nil)
	if err != nil || out != base || pinned != nil {
		t.Fatalf("nil seed should be a no-op: %v %v %v", out, pinned, err)
	}
	empty := typing.NewProgram()
	out, pinned, err = withSeeds(base, empty)
	if err != nil || out != base || pinned != nil {
		t.Fatal("empty seed should be a no-op")
	}
}

func TestWithSeedsAppendsAndPins(t *testing.T) {
	base := typing.MustParse(`
		type a = ->x[0]
		type b = ->y[a]
	`)
	seed := typing.MustParse(`
		type s1 = ->p[s2]
		type s2 = ->q[0]
	`)
	out, pinned, err := withSeeds(base, seed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("combined program has %d types, want 4", out.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Seed-internal targets are offset: s1 -> s2 must point at index 3.
	s1 := out.IndexOf("s1")
	if s1 != 2 || out.Types[s1].Links[0].Target != 3 {
		t.Fatalf("seed link mis-offset: %+v", out.Types[s1])
	}
	if countTrue(pinned) != 2 || pinned[0] || pinned[1] || !pinned[2] || !pinned[3] {
		t.Fatalf("pinned = %v", pinned)
	}
	// The base program must not be mutated.
	if base.Len() != 2 {
		t.Fatal("withSeeds mutated the base program")
	}
}

func TestWithSeedsNameCollision(t *testing.T) {
	base := typing.MustParse(`type a = ->x[0]`)
	seed := typing.MustParse(`type a = ->y[0]`)
	out, _, err := withSeeds(base, seed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Types[0].Name == out.Types[1].Name {
		t.Fatalf("collision not resolved: %s", out.Types[1].Name)
	}
	if !strings.HasPrefix(out.Types[1].Name, "a") {
		t.Fatalf("disambiguated name %q lost its base", out.Types[1].Name)
	}
}

func TestWithSeedsInvalidSeed(t *testing.T) {
	base := typing.MustParse(`type a = ->x[0]`)
	bad := typing.NewProgram()
	bad.Add(&typing.Type{Name: "s", Links: []typing.TypedLink{{Dir: typing.Out, Label: "l", Target: 7}}})
	if _, _, err := withSeeds(base, bad); err == nil {
		t.Fatal("invalid seed accepted")
	}
}

func TestExtractSeedKClamp(t *testing.T) {
	// K below the number of pinned seeds clamps up: the seeds survive.
	db := recordsDB()
	seed := typing.MustParse(`
		type s1 = ->zz1[0]
		type s2 = ->zz2[0]
		type s3 = ->zz3[0]
	`)
	res, err := Extract(db, Options{K: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() < 3 {
		t.Fatalf("pinned seeds merged away: %d types", res.Program.Len())
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		if res.Program.IndexOf(name) < 0 {
			t.Fatalf("seed %s missing from final program:\n%s", name, res.Program)
		}
	}
}
