package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"schemex/internal/graph"
	"schemex/internal/synth"
)

// shardOutcome captures everything an extraction run decides, for
// bit-identity comparison across snapshot layouts.
type shardOutcome struct {
	program string
	mapping []int
	defect  int
	excess  int
	deficit int
	uncl    int
	dist    float64
}

func outcomeOf(res *Result) shardOutcome {
	return shardOutcome{
		program: res.Program.String(),
		mapping: res.Mapping,
		defect:  res.Defect.Total(),
		excess:  res.Defect.Excess,
		deficit: res.Defect.Deficit,
		uncl:    res.Unclassified,
		dist:    res.TotalDistance,
	}
}

// shardConfigs is the acceptance matrix: flat, explicit multi-shard, and
// automatic layout, each serial and fully parallel.
var shardConfigs = []struct{ shards, par int }{
	{1, 1}, {1, 0}, {4, 1}, {4, 0}, {0, 1}, {0, 0},
}

// TestExtractShardDeterminism asserts the tentpole acceptance property on
// whole-graph extraction: the final program, mapping, and recast defect are
// bit-identical at shard counts {1, 4, auto} x Parallelism {1, 0} on every
// Table 1 preset.
func TestExtractShardDeterminism(t *testing.T) {
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		run := func(shards, par int) shardOutcome {
			res, err := Extract(db, Options{K: 5, Shards: shards, Parallelism: par})
			if err != nil {
				t.Fatalf("%s (shards=%d, p=%d): %v", p.Spec.Name, shards, par, err)
			}
			return outcomeOf(res)
		}
		ref := run(1, 1)
		for _, cfg := range shardConfigs[1:] {
			got := run(cfg.shards, cfg.par)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: result diverges at Shards=%d Parallelism=%d:\nref: %+v\ngot: %+v",
					p.Spec.Name, cfg.shards, cfg.par, ref, got)
			}
		}
	}
}

// buildShardStream generates a deterministic delta stream against db that
// deliberately crosses shard boundaries and forces fallback recompiles:
// links between the low and high halves of the ID space, new-object growth
// past the last shard, link removals, label-universe growth, and object
// detachment (including atomic objects, whose removal flips them complex).
// It returns the deltas and the reference extraction outcome after each hop,
// computed on a flat serial session.
func buildShardStream(t *testing.T, db *graph.DB, seed int64, hops int) ([]*graph.Delta, []shardOutcome) {
	t.Helper()
	ctx := context.Background()
	cur, err := PrepareContext(ctx, db, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	labels := db.Labels()
	deltas := make([]*graph.Delta, 0, hops)
	refs := make([]shardOutcome, 0, hops)
	for h := 0; h < hops; h++ {
		g := cur.DB()
		complexIDs := g.ComplexObjects()
		pick := func() graph.ObjectID { return complexIDs[rng.Intn(len(complexIDs))] }
		d := &graph.Delta{}
		switch h % 5 {
		case 0: // links between the low and high halves of the ID space
			lab := labels[rng.Intn(len(labels))]
			half := len(complexIDs) / 2
			seen := map[string]bool{}
			for i := 0; i < 3; i++ {
				a := complexIDs[rng.Intn(half)]
				b := complexIDs[half+rng.Intn(len(complexIDs)-half)]
				key := fmt.Sprintf("%d|%d|%s", a, b, lab)
				if a == b || seen[key] || g.HasEdge(a, b, lab) {
					continue
				}
				seen[key] = true
				d.AddLink(g.Name(a), g.Name(b), lab)
			}
		case 1: // growth: links to brand-new objects past the last shard
			lab := labels[rng.Intn(len(labels))]
			for i := 0; i < 4; i++ {
				d.AddLink(g.Name(pick()), fmt.Sprintf("shardnew-%d-%d", h, i), lab)
			}
		case 2: // removal of existing links
			seen := map[string]bool{}
			for i := 0; i < 3; i++ {
				o := pick()
				edges := g.Out(o)
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				key := fmt.Sprintf("%d|%d|%s", o, e.To, e.Label)
				if seen[key] {
					continue
				}
				seen[key] = true
				d.RemoveLink(g.Name(o), g.Name(e.To), e.Label)
			}
		case 3: // label-universe growth: forces a fallback recompile
			a, b := pick(), pick()
			if a == b {
				b = complexIDs[(rng.Intn(len(complexIDs)-1)+int(a)+1)%len(complexIDs)]
			}
			d.AddLink(g.Name(a), g.Name(b), fmt.Sprintf("streamlabel-%d", h))
		case 4: // detachment; an atomic object flips complex, another fallback
			if ao := g.AtomicObjects(); len(ao) > 0 && h%2 == 0 {
				d.RemoveObject(g.Name(ao[rng.Intn(len(ao))]))
			} else {
				d.RemoveObject(g.Name(pick()))
			}
		}
		if d.Len() == 0 {
			d.AddLink(g.Name(pick()), fmt.Sprintf("shardfill-%d", h), labels[0])
		}
		next, _, err := cur.ApplyContext(ctx, d, 1)
		if err != nil {
			t.Fatalf("hop %d: %v", h, err)
		}
		cur = next
		res, err := ExtractPreparedContext(ctx, cur, Options{K: 5, Parallelism: 1})
		if err != nil {
			t.Fatalf("hop %d extract: %v", h, err)
		}
		deltas = append(deltas, d)
		refs = append(refs, outcomeOf(res))
	}
	return deltas, refs
}

// TestApplyStreamShardDeterminism replays one random delta stream through
// every shard/parallelism configuration and asserts the extraction outcome
// after every hop matches the flat serial reference bit for bit. The stream
// is built to cover cross-shard deltas, shard growth, and both fallback
// paths (new labels and atomic/complex flips); the multi-shard replay
// asserts that coverage actually happened.
func TestApplyStreamShardDeterminism(t *testing.T) {
	presets := synth.Presets()
	db, err := presets[6].Build() // DB7: graph-shaped, overlapping classes
	if err != nil {
		t.Fatal(err)
	}
	const hops = 10
	deltas, refs := buildShardStream(t, db, 23, hops)

	ctx := context.Background()
	for _, cfg := range shardConfigs {
		cur, err := PrepareContext(ctx, db, cfg.par, cfg.shards)
		if err != nil {
			t.Fatal(err)
		}
		sawFallback, sawMultiShard := false, false
		for h, d := range deltas {
			if sh, excl := cur.DeltaShards(d); excl || len(sh) > 1 {
				sawMultiShard = true
			}
			next, info, err := cur.ApplyContext(ctx, d, cfg.par)
			if err != nil {
				t.Fatalf("shards=%d p=%d hop %d: %v", cfg.shards, cfg.par, h, err)
			}
			if !info.Shared {
				sawFallback = true
			}
			cur = next
			res, err := ExtractPreparedContext(ctx, cur, Options{K: 5, Parallelism: cfg.par})
			if err != nil {
				t.Fatalf("shards=%d p=%d hop %d extract: %v", cfg.shards, cfg.par, h, err)
			}
			if got := outcomeOf(res); !reflect.DeepEqual(got, refs[h]) {
				t.Fatalf("shards=%d p=%d: outcome diverges at hop %d:\nref: %+v\ngot: %+v",
					cfg.shards, cfg.par, h, refs[h], got)
			}
		}
		if cfg.shards == 4 {
			if cur.NumShards() < 2 {
				t.Fatalf("shards=4 session ended with %d shards; stream never exercised a multi-shard layout", cur.NumShards())
			}
			if !sawFallback {
				t.Error("stream never took the fallback recompile path")
			}
			if !sawMultiShard {
				t.Error("stream never produced a multi-shard delta footprint")
			}
		}
	}
}
