package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"schemex/internal/graph"
)

// assertSameResult fails unless warm and cold are bit-identical extractions:
// same program, mapping, homes, per-object assignment, defect accounting and
// Stage 2 cost.
func assertSameResult(t *testing.T, db *graph.DB, warm, cold *Result, label string) {
	t.Helper()
	if warm.Program.String() != cold.Program.String() {
		t.Fatalf("%s: programs differ:\nwarm:\n%s\ncold:\n%s", label, warm.Program, cold.Program)
	}
	if !reflect.DeepEqual(warm.Mapping, cold.Mapping) {
		t.Fatalf("%s: mappings differ: %v vs %v", label, warm.Mapping, cold.Mapping)
	}
	if !reflect.DeepEqual(warm.Homes, cold.Homes) {
		t.Fatalf("%s: homes differ", label)
	}
	if warm.TotalDistance != cold.TotalDistance {
		t.Fatalf("%s: total distance %v vs %v", label, warm.TotalDistance, cold.TotalDistance)
	}
	if !reflect.DeepEqual(warm.Defect, cold.Defect) || warm.Unclassified != cold.Unclassified {
		t.Fatalf("%s: defect %+v/%d vs %+v/%d",
			label, warm.Defect, warm.Unclassified, cold.Defect, cold.Unclassified)
	}
	for _, o := range db.ComplexObjects() {
		w, c := warm.Assignment.Of(o), cold.Assignment.Of(o)
		if len(w) == 0 && len(c) == 0 {
			continue
		}
		if !reflect.DeepEqual(w, c) {
			t.Fatalf("%s: assignment of %s differs: %v vs %v", label, db.Name(o), w, c)
		}
	}
}

var atomV = graph.Value{Sort: graph.InferSort("v"), Text: "v"}

// addRecord appends a record object with the given attributes to a delta.
func addRecord(d *graph.Delta, name string, attrs ...string) {
	for _, a := range attrs {
		d.AddAtomic(name+"."+a, atomV)
		d.AddLink(name, name+"."+a, a)
	}
}

// TestWarmExtractFastPathAndStats: repeating an extraction on the same
// Prepared — or across a chain of empty deltas — replays the retained result
// without running any stage, and the lineage counters record it.
func TestWarmExtractFastPathAndStats(t *testing.T) {
	prep, err := Prepare(recordsDB())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, Parallelism: 1}
	r1, err := ExtractPrepared(prep, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Incr.FastPath || r1.Incr.Stage2Warm || r1.Incr.Stage3Warm {
		t.Fatalf("cold extraction reported incremental flags: %+v", r1.Incr)
	}
	r2, err := ExtractPrepared(prep, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Incr.FastPath {
		t.Fatalf("repeat extraction did not take the fast path: %+v", r2.Incr)
	}
	assertSameResult(t, prep.DB(), r2, r1, "repeat")

	// Budgets and parallelism are not part of the result identity: changing
	// them alone still replays.
	r3, err := ExtractPrepared(prep, Options{K: 2, Parallelism: 0, MaxDirtyTypesFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Incr.FastPath {
		t.Fatalf("parallelism/budget change broke the fast path: %+v", r3.Incr)
	}

	// An empty delta touches nothing; the child replays too.
	child, info, err := prep.Apply(&graph.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Touched) != 0 {
		t.Fatalf("empty delta touched %d objects", len(info.Touched))
	}
	r4, err := ExtractPrepared(child, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Incr.FastPath {
		t.Fatalf("empty-delta child did not take the fast path: %+v", r4.Incr)
	}
	assertSameResult(t, child.DB(), r4, r1, "empty delta")
	if r4.Timing.Total <= 0 || r4.Timing.Stage1 != 0 {
		t.Fatalf("fast-path timing = %+v, want only Total set", r4.Timing)
	}

	// A K change misses the retained result but is served by the same
	// matrix: no fast path, but Stage 2 warm-seeds.
	r5, err := ExtractPrepared(child, Options{K: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r5.Incr.FastPath || !r5.Incr.Stage2Warm || r5.Incr.Stage3Warm {
		t.Fatalf("K change: Incr = %+v, want matrix reuse only", r5.Incr)
	}
	cold5, err := Extract(child.DB().Clone(), Options{K: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, child.DB(), r5, cold5, "K change")

	s := child.Stats()
	if s.FastPath != 3 {
		t.Fatalf("FastPath counter = %d, want 3", s.FastPath)
	}
	if s.Stage2Full != 1 || s.Stage2Warm != 1 {
		t.Fatalf("Stage2 counters = %d warm / %d full, want 1 / 1", s.Stage2Warm, s.Stage2Full)
	}
	if s.Stage3Full != 2 || s.Stage3Warm != 0 {
		t.Fatalf("Stage3 counters = %d warm / %d full, want 0 / 2", s.Stage3Warm, s.Stage3Full)
	}
}

// TestWarmExtractAfterDelta: after a one-record delta the next extraction
// warm-starts Stages 2 and 3 within the default budget and stays
// bit-identical to extracting the mutated graph from scratch, at serial and
// parallel settings.
func TestWarmExtractAfterDelta(t *testing.T) {
	prep, err := Prepare(recordsDB())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, Parallelism: 1}
	if _, err := ExtractPrepared(prep, opts); err != nil {
		t.Fatal(err)
	}
	// A new emp record joins an existing class: exactly one Stage 1 class
	// changes membership, well inside the 0.25 default budget.
	d := &graph.Delta{}
	addRecord(d, "empA", "name", "salary", "dept")

	for _, par := range []int{1, 0} {
		child, info, err := prep.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if !info.PosStable {
			t.Fatal("record delta was expected to keep complex positions stable")
		}
		o := opts
		o.Parallelism = par
		warm, err := ExtractPrepared(child, o)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Incr.Stage2Warm {
			t.Fatalf("par=%d: Stage 2 did not warm-start: %+v", par, warm.Incr)
		}
		if !warm.Incr.Stage3Warm {
			t.Fatalf("par=%d: Stage 3 did not warm-start: %+v", par, warm.Incr)
		}
		if warm.Incr.DirtyTypes != 1 {
			t.Fatalf("par=%d: DirtyTypes = %d, want 1", par, warm.Incr.DirtyTypes)
		}
		if warm.Incr.DirtyObjects <= 0 || warm.Incr.DirtyObjects >= child.Snapshot().NumComplex() {
			t.Fatalf("par=%d: DirtyObjects = %d, want a strict subset of %d",
				par, warm.Incr.DirtyObjects, child.Snapshot().NumComplex())
		}
		cold, err := Extract(child.DB().Clone(), o)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, child.DB(), warm, cold, fmt.Sprintf("par=%d", par))
	}
}

// TestWarmBudgetFallback: a delta that dirties too many classes for the
// budget — or a negative budget that disables warm starts outright — falls
// back to the full Stages 2–3 with identical results.
func TestWarmBudgetFallback(t *testing.T) {
	// book0 gains an edition attribute: it migrates between classes, so two
	// of the four classes change membership (0.5 > the 0.25 default).
	d := &graph.Delta{}
	d.AddAtomic("book0.edition", atomV)
	d.AddLink("book0", "book0.edition", "edition")

	cases := []struct {
		name     string
		frac     float64
		wantWarm bool
	}{
		{"default budget exceeded", 0, false},
		{"forced off", -1, false},
		{"budget covers", 1, true},
	}
	for _, c := range cases {
		prep, err := Prepare(recordsDB())
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{K: 2, Parallelism: 1, MaxDirtyTypesFrac: c.frac}
		if _, err := ExtractPrepared(prep, opts); err != nil {
			t.Fatal(err)
		}
		child, _, err := prep.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := ExtractPrepared(child, opts)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Incr.Stage2Warm != c.wantWarm {
			t.Fatalf("%s: Stage2Warm = %v, want %v (Incr %+v)",
				c.name, warm.Incr.Stage2Warm, c.wantWarm, warm.Incr)
		}
		// The stage budgets are independent: Stage 3 may still warm-start
		// after a Stage 2 fallback (few dirty objects, many dirty types) —
		// but a negative budget disables both.
		if c.frac < 0 && warm.Incr.Stage3Warm {
			t.Fatalf("%s: Stage 3 warm-started despite the fallback", c.name)
		}
		if c.frac >= 0 && warm.Incr.DirtyTypes != 2 {
			t.Fatalf("%s: DirtyTypes = %d, want 2", c.name, warm.Incr.DirtyTypes)
		}
		cold, err := Extract(child.DB().Clone(), Options{K: 2, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, child.DB(), warm, cold, c.name)
		s := child.Stats()
		if c.wantWarm && s.Stage2Warm != 1 {
			t.Fatalf("%s: Stage2Warm counter = %d, want 1", c.name, s.Stage2Warm)
		}
		if !c.wantWarm && s.Stage2Full != 2 {
			t.Fatalf("%s: Stage2Full counter = %d, want 2", c.name, s.Stage2Full)
		}
	}
}

// TestWarmStateOptionKeying pins the memo keys of the retained Stage 2/3
// state: a stage-defining option change must never reuse state captured
// under different options, and non-memoizable runs must neither store nor
// replay results.
func TestWarmStateOptionKeying(t *testing.T) {
	d := &graph.Delta{}
	addRecord(d, "empA", "name", "salary", "dept")

	// Stage 1 options key the matrix: state captured with UseSorts must not
	// seed a run without it.
	prep, err := Prepare(recordsDB())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractPrepared(prep, Options{K: 2, Parallelism: 1, UseSorts: true}); err != nil {
		t.Fatal(err)
	}
	child, _, err := prep.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractPrepared(child, Options{K: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incr.FastPath || res.Incr.Stage2Warm || res.Incr.Stage3Warm {
		t.Fatalf("UseSorts mismatch still reused state: %+v", res.Incr)
	}
	cold, err := Extract(child.DB().Clone(), Options{K: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, child.DB(), res, cold, "UseSorts mismatch")

	// Same key, same options: the reuse the mismatch above suppressed.
	if _, err := ExtractPrepared(child, Options{K: 2, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	grand, _, err := child.Apply(d2())
	if err != nil {
		t.Fatal(err)
	}
	res, err = ExtractPrepared(grand, Options{K: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incr.Stage2Warm {
		t.Fatalf("matched options did not warm-start: %+v", res.Incr)
	}

	// MultiRole reshapes the pre-clustering program: such runs are excluded
	// from capture and replay entirely.
	prep2, err := Prepare(recordsDB())
	if err != nil {
		t.Fatal(err)
	}
	mr := Options{K: 2, Parallelism: 1, MultiRole: true}
	if _, err := ExtractPrepared(prep2, mr); err != nil {
		t.Fatal(err)
	}
	again, err := ExtractPrepared(prep2, mr)
	if err != nil {
		t.Fatal(err)
	}
	if again.Incr.FastPath || again.Incr.Stage2Warm || again.Incr.Stage3Warm {
		t.Fatalf("MultiRole run reused state: %+v", again.Incr)
	}
	if s := prep2.Stats(); s.FastPath != 0 || s.Stage2Warm != 0 {
		t.Fatalf("MultiRole lineage counters = %+v, want all-cold", s)
	}
}

// d2 is a second small record delta, distinct from the empA one.
func d2() *graph.Delta {
	d := &graph.Delta{}
	addRecord(d, "empB", "name", "salary", "dept")
	return d
}

// TestWarmExtractRandomStream drives a random delta stream through a session
// chain, extracting after every step at alternating parallelism and — every
// third step — under a forced fallback, asserting each result bit-identical
// to a from-scratch extraction of the mutated graph.
func TestWarmExtractRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	prep, err := Prepare(recordsDB())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, MaxDirtyTypesFrac: 1}
	if _, err := ExtractPrepared(prep, opts); err != nil {
		t.Fatal(err)
	}
	// Optional attributes this stream adds and may later remove; the core
	// name/salary and title/isbn links are never touched, so the two record
	// families stay separable at every step.
	type edge struct{ from, to, label string }
	var removable []edge
	db := prep.DB()
	db.Links(func(e graph.Edge) {
		if e.Label == "dept" || e.Label == "edition" {
			removable = append(removable, edge{db.Name(e.From), db.Name(e.To), e.Label})
		}
	})

	cur := prep
	for step := 0; step < 9; step++ {
		d := &graph.Delta{}
		switch op := rng.Intn(3); {
		case op == 2 && len(removable) > 0:
			i := rng.Intn(len(removable))
			e := removable[i]
			removable = append(removable[:i], removable[i+1:]...)
			d.RemoveLink(e.from, e.to, e.label)
		case op == 1:
			// Grow an existing record by an optional attribute.
			name := fmt.Sprintf("emp%d", rng.Intn(6))
			attr := fmt.Sprintf("%s.x%d", name, step)
			d.AddAtomic(attr, atomV)
			d.AddLink(name, attr, "dept")
			removable = append(removable, edge{name, attr, "dept"})
		default:
			name := fmt.Sprintf("book%c", 'A'+rune(step))
			addRecord(d, name, "title", "isbn")
			removable = append(removable,
				edge{name, name + ".isbn", "isbn"})
		}

		child, _, err := cur.Apply(d)
		if err != nil {
			t.Fatalf("step %d: apply: %v", step, err)
		}
		o := opts
		o.Parallelism = 1 - step%2 // alternate 1 and 0
		if step%3 == 2 {
			o.MaxDirtyTypesFrac = -1 // forced full fallback
		}
		warm, err := ExtractPrepared(child, o)
		if err != nil {
			t.Fatalf("step %d: warm extract: %v", step, err)
		}
		if step%3 == 2 && (warm.Incr.Stage2Warm || warm.Incr.Stage3Warm) {
			t.Fatalf("step %d: forced fallback still warm-started: %+v", step, warm.Incr)
		}
		cold, err := Extract(child.DB().Clone(), o)
		if err != nil {
			t.Fatalf("step %d: cold extract: %v", step, err)
		}
		assertSameResult(t, child.DB(), warm, cold, fmt.Sprintf("step %d", step))
		cur = child
	}

	s := cur.Stats()
	if s.Stage2Warm == 0 || s.Stage3Warm == 0 {
		t.Fatalf("stream never warm-started: %+v", s)
	}
	if s.Stage2Full < 4 { // the seed run plus the three forced fallbacks
		t.Fatalf("Stage2Full = %d, want >= 4", s.Stage2Full)
	}
	if total := s.Stage2Warm + s.Stage2Full + s.FastPath; total != 10 {
		t.Fatalf("counters cover %d extractions, want 10", total)
	}
}
