// Package dataguide implements strong DataGuides (Goldman & Widom, VLDB
// 1997), the main prior art the paper positions itself against: a
// deterministic, exact summary of all label paths from a set of roots. A
// DataGuide is a perfect structure in the paper's terms — and that is its
// weakness: it tracks outgoing paths only, gives every object set a unique
// node (unique roles), and can be exponentially large on irregular data.
// The comparison tests and benchmarks quantify this against the paper's
// typings.
package dataguide

import (
	"sort"
	"strconv"
	"strings"

	"schemex/internal/graph"
)

// Node is one state of the DataGuide: a distinct target set — the exact set
// of objects reachable from the roots by some label path.
type Node struct {
	// ID is the node index in Guide.Nodes.
	ID int
	// Targets is the target set, in ID order.
	Targets []graph.ObjectID
	// Out maps labels to successor node IDs.
	Out map[string]int
}

// Guide is a strong DataGuide.
type Guide struct {
	db    *graph.DB
	Nodes []*Node
	// Root is the ID of the start node (the root set itself).
	Root int
}

// DefaultRoots returns the conventional root set for an unrooted database:
// the complex objects with no incoming edges, or every complex object if
// all objects have incoming edges.
func DefaultRoots(db *graph.DB) []graph.ObjectID {
	var roots []graph.ObjectID
	for _, o := range db.ComplexObjects() {
		if len(db.In(o)) == 0 {
			roots = append(roots, o)
		}
	}
	if len(roots) == 0 {
		roots = db.ComplexObjects()
	}
	return roots
}

// Build computes the strong DataGuide of db from the given roots (nil means
// DefaultRoots). The construction is the subset construction over target
// sets; it is exact and deterministic but can be exponential in the worst
// case — the behaviour the paper's approximate typings avoid.
func Build(db *graph.DB, roots []graph.ObjectID) *Guide {
	if roots == nil {
		roots = DefaultRoots(db)
	}
	g := &Guide{db: db}
	memo := make(map[string]int)

	canonical := func(set []graph.ObjectID) ([]graph.ObjectID, string) {
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		out := set[:0]
		var sb strings.Builder
		var prev graph.ObjectID = -1
		for _, o := range set {
			if o == prev {
				continue
			}
			out = append(out, o)
			prev = o
			sb.WriteString(strconv.Itoa(int(o)))
			sb.WriteByte(',')
		}
		return out, sb.String()
	}

	var intern func(set []graph.ObjectID) int
	intern = func(set []graph.ObjectID) int {
		set, key := canonical(set)
		if id, ok := memo[key]; ok {
			return id
		}
		node := &Node{ID: len(g.Nodes), Targets: set, Out: make(map[string]int)}
		g.Nodes = append(g.Nodes, node)
		memo[key] = node.ID

		// Group successors by label.
		byLabel := make(map[string][]graph.ObjectID)
		for _, o := range set {
			for _, e := range db.Out(o) {
				byLabel[e.Label] = append(byLabel[e.Label], e.To)
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			node.Out[l] = intern(byLabel[l])
		}
		return node.ID
	}
	g.Root = intern(append([]graph.ObjectID(nil), roots...))
	return g
}

// NumNodes returns the DataGuide's size in nodes (the summary-size metric).
func (g *Guide) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the number of labeled edges in the guide.
func (g *Guide) NumEdges() int {
	n := 0
	for _, node := range g.Nodes {
		n += len(node.Out)
	}
	return n
}

// Contains reports whether some object is reachable from the roots by the
// exact label path — the DataGuide's O(|path|) membership test, the query-
// formulation use case of [10].
func (g *Guide) Contains(path []string) bool {
	_, ok := g.lookup(path)
	return ok
}

// TargetsOf returns the exact target set of a label path (nil, false when
// the path does not occur). This is the DataGuide-as-path-index use.
func (g *Guide) TargetsOf(path []string) ([]graph.ObjectID, bool) {
	n, ok := g.lookup(path)
	if !ok {
		return nil, false
	}
	return n.Targets, true
}

func (g *Guide) lookup(path []string) (*Node, bool) {
	cur := g.Nodes[g.Root]
	for _, label := range path {
		next, ok := cur.Out[label]
		if !ok {
			return nil, false
		}
		cur = g.Nodes[next]
	}
	return cur, true
}

// Paths enumerates every label path of the guide up to maxDepth, sorted.
// Useful for presenting the summary (the DataGuide UI use case).
func (g *Guide) Paths(maxDepth int) []string {
	var out []string
	var walk func(id int, prefix []string, seen map[int]bool)
	walk = func(id int, prefix []string, seen map[int]bool) {
		if len(prefix) > 0 {
			out = append(out, strings.Join(prefix, "."))
		}
		if len(prefix) == maxDepth || seen[id] {
			return
		}
		seen[id] = true
		node := g.Nodes[id]
		labels := make([]string, 0, len(node.Out))
		for l := range node.Out {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			walk(node.Out[l], append(prefix, l), seen)
		}
		delete(seen, id)
	}
	walk(g.Root, nil, make(map[int]bool))
	sort.Strings(out)
	return out
}
