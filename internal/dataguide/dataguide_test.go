package dataguide

import (
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/perfect"
)

func sampleDB() *graph.DB {
	db := graph.New()
	db.Link("root", "a", "member")
	db.Link("root", "b", "member")
	db.LinkAtom("a", "name", "a.n", "A")
	db.LinkAtom("a", "mail", "a.m", "@a")
	db.LinkAtom("b", "name", "b.n", "B")
	return db
}

func TestBuildBasics(t *testing.T) {
	db := sampleDB()
	g := Build(db, nil)
	// Root set = {root}; member -> {a, b}; name -> atoms; mail -> atom.
	if !g.Contains([]string{"member"}) {
		t.Fatal("member path missing")
	}
	if !g.Contains([]string{"member", "name"}) || !g.Contains([]string{"member", "mail"}) {
		t.Fatal("two-step paths missing")
	}
	if g.Contains([]string{"mail"}) || g.Contains([]string{"member", "member"}) {
		t.Fatal("nonexistent paths reported")
	}
	ts, ok := g.TargetsOf([]string{"member"})
	if !ok || len(ts) != 2 {
		t.Fatalf("TargetsOf(member) = %v", ts)
	}
	ts, _ = g.TargetsOf([]string{"member", "mail"})
	if len(ts) != 1 || db.Name(ts[0]) != "a.m" {
		t.Fatalf("TargetsOf(member.mail) = %v", ts)
	}
}

// TestStrongDataGuideDeterminism: each label path leads to exactly one
// node, and target sets are exact (the defining property of [10]).
func TestStrongDataGuideDeterminism(t *testing.T) {
	db := sampleDB()
	g := Build(db, nil)
	for _, n := range g.Nodes {
		seen := map[string]bool{}
		for l := range n.Out {
			if seen[l] {
				t.Fatal("duplicate label out of a node")
			}
			seen[l] = true
		}
	}
	// "member.name" targets both name atoms (shared node for the union).
	ts, _ := g.TargetsOf([]string{"member", "name"})
	if len(ts) != 2 {
		t.Fatalf("TargetsOf(member.name) = %v, want both atoms", ts)
	}
}

func TestCycles(t *testing.T) {
	db := graph.New()
	db.Link("r", "a", "next")
	db.Link("a", "r", "next")
	g := Build(db, []graph.ObjectID{db.Lookup("r")})
	// The cycle alternates between {r} and {a}; the second {r} is interned
	// back to the root node, so the guide is finite with 2 nodes.
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2 ({r} and {a})", g.NumNodes())
	}
	if !g.Contains([]string{"next", "next", "next"}) {
		t.Fatal("cyclic path missing")
	}
	paths := g.Paths(4)
	if len(paths) == 0 {
		t.Fatal("no paths enumerated")
	}
}

// TestDataGuideVsTypingOnDBG quantifies the comparison the paper draws with
// prior work: the DataGuide is an exact, outgoing-only, unique-role summary.
// On DBG it is larger than the paper's 53-type minimal perfect typing, and
// both dwarf the 6-type approximate typing.
func TestDataGuideVsTypingOnDBG(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	g := Build(db, nil)
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	perfectTypes := res.Program.Len()
	if perfectTypes != 53 {
		t.Fatalf("setup: perfect typing has %d types", perfectTypes)
	}
	t.Logf("DataGuide: %d nodes, %d edges; minimal perfect typing: %d types",
		g.NumNodes(), g.NumEdges(), perfectTypes)
	if g.NumNodes() <= perfectTypes {
		t.Errorf("expected the DataGuide (%d nodes) to exceed the %d-type perfect typing on irregular data",
			g.NumNodes(), perfectTypes)
	}
	// Both summarize the data exactly; the approximate typing (6 types)
	// trades exactness for size — the paper's thesis.
}

// TestDataGuidePathsMatchData: every enumerated guide path exists in the
// data, and target sets equal a direct traversal.
func TestDataGuidePathsMatchData(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	roots := DefaultRoots(db)
	g := Build(db, roots)
	for _, p := range g.Paths(2) {
		labels := splitPath(p)
		ts, ok := g.TargetsOf(labels)
		if !ok {
			t.Fatalf("enumerated path %q not found", p)
		}
		want := traverse(db, roots, labels)
		if len(ts) != len(want) {
			t.Fatalf("path %q: guide %d targets, data %d", p, len(ts), len(want))
		}
		for i := range ts {
			if ts[i] != want[i] {
				t.Fatalf("path %q: target sets differ", p)
			}
		}
	}
}

func splitPath(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '.' {
			out = append(out, p[start:i])
			start = i + 1
		}
	}
	return out
}

func traverse(db *graph.DB, start []graph.ObjectID, labels []string) []graph.ObjectID {
	cur := map[graph.ObjectID]bool{}
	for _, o := range start {
		cur[o] = true
	}
	for _, l := range labels {
		next := map[graph.ObjectID]bool{}
		for o := range cur {
			for _, e := range db.Out(o) {
				if e.Label == l {
					next[e.To] = true
				}
			}
		}
		cur = next
	}
	out := make([]graph.ObjectID, 0, len(cur))
	for o := range cur {
		out = append(out, o)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []graph.ObjectID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
