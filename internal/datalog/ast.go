// Package datalog implements a positive datalog engine: abstract syntax, a
// rule parser, naive and semi-naive least-fixpoint evaluation, and downward
// greatest-fixpoint evaluation for programs with monadic intensional
// predicates.
//
// The typing language of the paper (internal/typing) compiles to this engine;
// the specialized typing evaluator is cross-checked against it in tests. The
// engine is general enough to run arbitrary positive datalog over extensional
// relations such as link/3 and atomic/2.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a constant or a variable.
type Term struct {
	Var  bool
	Name string
}

// V returns a variable term.
func V(name string) Term { return Term{Var: true, Name: name} }

// C returns a constant term.
func C(name string) Term { return Term{Var: false, Name: name} }

func (t Term) String() string {
	if t.Var {
		return t.Name
	}
	if needsQuotes(t.Name) {
		return fmt.Sprintf("%q", t.Name)
	}
	return t.Name
}

func needsQuotes(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r == '_', r == '-':
		case r >= '0' && r <= '9' && i > 0:
		case r >= 'A' && r <= 'Z' && i > 0:
		default:
			return true
		}
	}
	// Variables start with an uppercase letter; a constant that looks like a
	// variable must be quoted.
	return false
}

// Atom is a predicate applied to terms, possibly negated (body atoms only;
// see negation.go for the stratified semantics).
type Atom struct {
	Pred    string
	Args    []Term
	Negated bool
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	neg := ""
	if a.Negated {
		neg = "!"
	}
	return fmt.Sprintf("%s%s(%s)", neg, a.Pred, strings.Join(parts, ", "))
}

// Rule is Head :- Body[0] & ... & Body[n-1].
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s :- %s.", r.Head.String(), strings.Join(parts, " & "))
}

// Program is a set of rules. Predicates with at least one rule are
// intensional (IDB); all others are extensional (EDB).
type Program struct {
	Rules []Rule
}

func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// IDBPreds returns the intensional predicate names, sorted.
func (p *Program) IDBPreds() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks range restriction (safety): every variable in a rule head
// must occur in its body, and predicates must be used with a consistent
// arity throughout the program.
func (p *Program) Validate() error {
	arity := make(map[string]int)
	check := func(a Atom) error {
		if n, ok := arity[a.Pred]; ok && n != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d", a.Pred, n, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		if r.Head.Negated {
			return fmt.Errorf("datalog: rule %s: negated head", r)
		}
		bodyVars := make(map[string]bool)
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return err
			}
			if a.Negated {
				continue // only positive atoms bind variables
			}
			for _, t := range a.Args {
				if t.Var {
					bodyVars[t.Name] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.Var && !bodyVars[t.Name] {
				return fmt.Errorf("datalog: unsafe rule %s: head variable %s not bound in body", r, t.Name)
			}
		}
	}
	return nil
}

// IsMonadicIDB reports whether every intensional predicate of p is monadic
// (arity 1), the class of programs for which SolveGFP is defined.
func (p *Program) IsMonadicIDB() bool {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	for _, r := range p.Rules {
		if len(r.Head.Args) != 1 {
			return false
		}
		for _, a := range r.Body {
			if idb[a.Pred] && len(a.Args) != 1 {
				return false
			}
		}
	}
	return true
}
