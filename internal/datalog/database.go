package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a row of constants.
type Tuple []string

func (t Tuple) key() string { return strings.Join(t, "\x00") }

// Relation is a set of tuples of a fixed arity, with lazily built per-column
// hash indexes used by the join evaluator.
type Relation struct {
	arity   int
	tuples  []Tuple
	present map[string]bool
	index   []map[string][]int // column -> value -> tuple positions
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, present: make(map[string]bool)}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Add inserts a tuple, reporting whether it was new. It panics if the arity
// does not match.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("datalog: arity mismatch: relation has arity %d, tuple %v", r.arity, t))
	}
	k := t.key()
	if r.present[k] {
		return false
	}
	r.present[k] = true
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for c, idx := range r.index {
		if idx != nil {
			idx[t[c]] = append(idx[t[c]], pos)
		}
	}
	return true
}

// Has reports whether the relation contains t.
func (r *Relation) Has(t Tuple) bool { return r.present[t.key()] }

// Tuples returns the tuples in insertion order. The result must not be
// modified.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Sorted returns the tuples in lexicographic order (for deterministic
// output).
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// matching returns the positions of tuples whose column c equals v, using a
// lazily built index.
func (r *Relation) matching(c int, v string) []int {
	if r.index == nil {
		r.index = make([]map[string][]int, r.arity)
	}
	if r.index[c] == nil {
		idx := make(map[string][]int)
		for pos, t := range r.tuples {
			idx[t[c]] = append(idx[t[c]], pos)
		}
		r.index[c] = idx
	}
	return r.index[c][v]
}

// Database maps predicate names to relations.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Relation returns the relation for pred, or nil if absent.
func (db *Database) Relation(pred string) *Relation {
	return db.rels[pred]
}

// Ensure returns the relation for pred, creating it with the given arity if
// absent. It panics on arity conflict.
func (db *Database) Ensure(pred string, arity int) *Relation {
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("datalog: predicate %s has arity %d, requested %d", pred, r.arity, arity))
		}
		return r
	}
	r := NewRelation(arity)
	db.rels[pred] = r
	return r
}

// Add inserts a fact pred(args...).
func (db *Database) Add(pred string, args ...string) bool {
	return db.Ensure(pred, len(args)).Add(Tuple(args))
}

// Has reports whether the fact pred(args...) holds.
func (db *Database) Has(pred string, args ...string) bool {
	r := db.rels[pred]
	return r != nil && r.Has(Tuple(args))
}

// Preds returns the predicate names present, sorted.
func (db *Database) Preds() []string {
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Facts returns the total number of facts.
func (db *Database) Facts() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the database (indexes are not copied).
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for name, r := range db.rels {
		nr := NewRelation(r.arity)
		for _, t := range r.tuples {
			nr.Add(append(Tuple(nil), t...))
		}
		c.rels[name] = nr
	}
	return c
}

// Constants returns every constant appearing in the database, sorted. This
// is the active domain used as the GFP universe when none is supplied.
func (db *Database) Constants() []string {
	set := make(map[string]bool)
	for _, r := range db.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				set[v] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (db *Database) String() string {
	var sb strings.Builder
	for _, pred := range db.Preds() {
		for _, t := range db.rels[pred].Sorted() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = C(v).String()
			}
			fmt.Fprintf(&sb, "%s(%s).\n", pred, strings.Join(parts, ", "))
		}
	}
	return sb.String()
}
