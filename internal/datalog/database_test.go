package datalog

import (
	"strings"
	"testing"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if r.Arity() != 2 {
		t.Fatalf("arity = %d", r.Arity())
	}
	if !r.Add(Tuple{"a", "b"}) || r.Add(Tuple{"a", "b"}) {
		t.Fatal("Add dedup broken")
	}
	if !r.Has(Tuple{"a", "b"}) || r.Has(Tuple{"b", "a"}) {
		t.Fatal("Has broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	r.Add(Tuple{"x"})
}

func TestRelationSorted(t *testing.T) {
	r := NewRelation(2)
	r.Add(Tuple{"b", "x"})
	r.Add(Tuple{"a", "z"})
	r.Add(Tuple{"a", "y"})
	s := r.Sorted()
	if s[0][0] != "a" || s[0][1] != "y" || s[2][0] != "b" {
		t.Fatalf("Sorted = %v", s)
	}
}

func TestDatabaseString(t *testing.T) {
	db := NewDatabase()
	db.Add("p", "a", "b")
	db.Add("q", "Weird Constant")
	s := db.String()
	if !strings.Contains(s, "p(a, b).") || !strings.Contains(s, `q("Weird Constant").`) {
		t.Fatalf("String = %q", s)
	}
	// The rendered facts re-parse.
	if _, err := Parse(s); err != nil {
		t.Fatalf("rendered facts do not re-parse: %v", err)
	}
}

func TestEnsureArityConflictPanics(t *testing.T) {
	db := NewDatabase()
	db.Ensure("p", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("arity conflict did not panic")
		}
	}()
	db.Ensure("p", 3)
}

func TestIndexUpdatedOnAdd(t *testing.T) {
	r := NewRelation(2)
	r.Add(Tuple{"a", "1"})
	// Force index build, then add more and verify the index sees it.
	if got := len(r.matching(0, "a")); got != 1 {
		t.Fatalf("matching = %d", got)
	}
	r.Add(Tuple{"a", "2"})
	if got := len(r.matching(0, "a")); got != 2 {
		t.Fatalf("matching after add = %d (stale index)", got)
	}
}
