package datalog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure2EDB encodes the manager/firm database of Figure 2.
func figure2EDB() *Database {
	edb := NewDatabase()
	edb.Add("link", "g", "m", "is-manager-of")
	edb.Add("link", "j", "a", "is-manager-of")
	edb.Add("link", "m", "g", "is-managed-by")
	edb.Add("link", "a", "j", "is-managed-by")
	edb.Add("link", "g", "gn", "name")
	edb.Add("link", "j", "jn", "name")
	edb.Add("link", "m", "mn", "name")
	edb.Add("link", "a", "an", "name")
	edb.Add("atomic", "gn", "Gates")
	edb.Add("atomic", "jn", "Jobs")
	edb.Add("atomic", "mn", "Microsoft")
	edb.Add("atomic", "an", "Apple")
	return edb
}

// figure2Program is the paper's typing program P0.
const figure2Src = `
	person(X) :- link(X, Y, "is-manager-of") & firm(Y) & link(X, Y2, "name") & atomic(Y2, Z).
	firm(X)   :- link(X, Y, "is-managed-by") & person(Y) & link(X, Y2, "name") & atomic(Y2, Z).
`

func idbSet(db *Database, pred string) map[string]bool {
	out := make(map[string]bool)
	if r := db.Relation(pred); r != nil {
		for _, t := range r.Tuples() {
			out[t[0]] = true
		}
	}
	return out
}

func TestFigure2GFPClassifies(t *testing.T) {
	p := MustParse(figure2Src)
	m, err := SolveGFP(p, figure2EDB(), []string{"g", "j", "m", "a"})
	if err != nil {
		t.Fatal(err)
	}
	persons := idbSet(m, "person")
	firms := idbSet(m, "firm")
	if len(persons) != 2 || !persons["g"] || !persons["j"] {
		t.Fatalf("person = %v, want {g, j}", persons)
	}
	if len(firms) != 2 || !firms["m"] || !firms["a"] {
		t.Fatalf("firm = %v, want {m, a}", firms)
	}
	if !IsFixpoint(p, m) {
		t.Fatal("GFP result is not a fixpoint")
	}
}

// TestFigure2LFPFailsToClassify checks the paper's observation: "for this
// program, a least fixpoint semantics would fail to classify any object."
func TestFigure2LFPFailsToClassify(t *testing.T) {
	p := MustParse(figure2Src)
	m, err := SolveLFP(p, figure2EDB())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(idbSet(m, "person")) + len(idbSet(m, "firm")); n != 0 {
		t.Fatalf("LFP classified %d objects, want 0", n)
	}
}

func TestLFPTransitiveClosure(t *testing.T) {
	p := MustParse(`
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y) & edge(Y, Z).
	`)
	edb := NewDatabase()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		edb.Add("edge", e[0], e[1])
	}
	m, err := SolveLFP(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	paths := m.Relation("path")
	if paths.Len() != 6 {
		t.Fatalf("path has %d tuples, want 6: %v", paths.Len(), paths.Sorted())
	}
	if !m.Has("path", "a", "d") {
		t.Fatal("missing path(a, d)")
	}
}

func TestNaiveAndSemiNaiveAgree(t *testing.T) {
	p := MustParse(`
		reach(X) :- start(X).
		reach(Y) :- reach(X) & edge(X, Y).
		big(X, Y) :- reach(X) & reach(Y) & edge(X, Y).
	`)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		edb := NewDatabase()
		edb.Add("start", "n0")
		nodes := 3 + rng.Intn(8)
		for i := 0; i < nodes*2; i++ {
			a := rng.Intn(nodes)
			b := rng.Intn(nodes)
			edb.Add("edge", nodeName(a), nodeName(b))
		}
		m1, err := SolveLFPNaive(p, edb)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := SolveLFP(p, edb)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFacts(m1, m2) {
			t.Fatalf("trial %d: naive and semi-naive disagree:\n%v\nvs\n%v", trial, m1, m2)
		}
	}
}

func nodeName(i int) string { return "n" + string(rune('0'+i)) }

func sameFacts(a, b *Database) bool {
	if a.Facts() != b.Facts() {
		return false
	}
	for _, pred := range a.Preds() {
		ra, rb := a.Relation(pred), b.Relation(pred)
		if rb == nil || ra.Len() != rb.Len() {
			return false
		}
		for _, t := range ra.Tuples() {
			if !rb.Has(t) {
				return false
			}
		}
	}
	return true
}

func TestGFPIsGreatest(t *testing.T) {
	// On a cycle, gfp(p) includes the whole cycle while lfp is empty; both
	// are fixpoints, and GFP must contain LFP.
	p := MustParse(`good(X) :- link(X, Y, "next") & good(Y).`)
	edb := NewDatabase()
	edb.Add("link", "a", "b", "next")
	edb.Add("link", "b", "c", "next")
	edb.Add("link", "c", "a", "next")
	edb.Add("link", "d", "a", "next")
	m, err := SolveGFP(p, edb, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	good := idbSet(m, "good")
	for _, o := range []string{"a", "b", "c", "d"} {
		if !good[o] {
			t.Errorf("GFP should keep %s (reaches the cycle)", o)
		}
	}
	if !IsFixpoint(p, m) {
		t.Fatal("not a fixpoint")
	}
	// A dangling object with no outgoing next edge must be dropped.
	edb.Add("link", "e", "x", "other")
	m, err = SolveGFP(p, edb, []string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	if idbSet(m, "good")["e"] {
		t.Error("GFP kept object with no possible derivation")
	}
}

func TestGFPRequiresMonadic(t *testing.T) {
	p := MustParse(`pair(X, Y) :- edge(X, Y) & pair(Y, X).`)
	edb := NewDatabase()
	edb.Add("edge", "a", "b")
	if _, err := SolveGFP(p, edb, nil); err == nil {
		t.Fatal("SolveGFP accepted a non-monadic IDB")
	}
}

func TestGFPRejectsEDBIDBOverlap(t *testing.T) {
	p := MustParse(`edge(X) :- edge(X).`)
	edb := NewDatabase()
	edb.Ensure("edge", 1).Add(Tuple{"a"})
	if _, err := SolveGFP(p, edb, nil); err == nil {
		t.Fatal("SolveGFP accepted a predicate that is both EDB and IDB")
	}
}

func TestValidateUnsafeRule(t *testing.T) {
	p := &Program{Rules: []Rule{{
		Head: Atom{Pred: "p", Args: []Term{V("X"), V("Y")}},
		Body: []Atom{{Pred: "q", Args: []Term{V("X")}}},
	}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("Validate = %v, want unsafe-rule error", err)
	}
}

func TestValidateArityConflict(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: Atom{Pred: "p", Args: []Term{V("X")}}, Body: []Atom{{Pred: "q", Args: []Term{V("X")}}}},
		{Head: Atom{Pred: "p", Args: []Term{V("X"), V("Y")}}, Body: []Atom{{Pred: "q", Args: []Term{V("X")}}, {Pred: "r", Args: []Term{V("Y")}}}},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "arit") {
		t.Fatalf("Validate = %v, want arity error", err)
	}
}

func TestParseRenderRoundtrip(t *testing.T) {
	src := `person(X) :- link(X, Y, "is-manager-of") & firm(Y).
firm(X) :- link(X, Y, "is-managed-by") & person(Y).
seed(a).
`
	p := MustParse(src)
	p2 := MustParse(p.String())
	if p.String() != p2.String() {
		t.Fatalf("roundtrip changed program:\n%s\nvs\n%s", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`p(X)`,               // missing terminator
		`p(X) :- q(X)`,       // missing dot
		`p(X) : q(X).`,       // bad implies
		`p(X) :- .`,          // empty body atom
		`p(X) :- q(X,).`,     // trailing comma in args
		`p("unterminated`,    // unterminated string
		`p(X) :- q(Y) r(X).`, // missing conjunct separator
		`p(X) :- q(Y).`,      // unsafe: X unbound
		`(X) :- q(X).`,       // missing predicate name
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestConstantsAndQuoting(t *testing.T) {
	p := MustParse(`p(X) :- q(X, "Upper Constant", lower, "with space").`)
	body := p.Rules[0].Body[0]
	if body.Args[1].Var || body.Args[2].Var || body.Args[3].Var {
		t.Fatal("quoted strings and lowercase idents must be constants")
	}
	if !p.Rules[0].Body[0].Args[0].Var {
		t.Fatal("uppercase ident must be a variable")
	}
	// Rendering must re-quote constants that look like variables.
	s := p.String()
	if !strings.Contains(s, `"Upper Constant"`) || !strings.Contains(s, `"with space"`) {
		t.Fatalf("rendering lost quoting: %s", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("rendered program does not re-parse: %v", err)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	p := MustParse(`self(X) :- edge(X, X).`)
	edb := NewDatabase()
	edb.Add("edge", "a", "a")
	edb.Add("edge", "a", "b")
	m, err := SolveLFP(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	selfs := idbSet(m, "self")
	if !selfs["a"] || selfs["b"] || len(selfs) != 1 {
		t.Fatalf("self = %v, want {a}", selfs)
	}
}

func TestDatabaseCloneIndependent(t *testing.T) {
	a := NewDatabase()
	a.Add("p", "x")
	b := a.Clone()
	b.Add("p", "y")
	if a.Relation("p").Len() != 1 || b.Relation("p").Len() != 2 {
		t.Fatal("clone shares storage with original")
	}
}

func TestConstantsActiveDomain(t *testing.T) {
	edb := NewDatabase()
	edb.Add("p", "b", "a")
	edb.Add("q", "c")
	got := edb.Constants()
	want := []string{"a", "b", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Constants = %v, want %v", got, want)
	}
}

func TestQuickParsePrintStability(t *testing.T) {
	// Generating random rule texts from components and checking print/parse
	// stability exercises the quoting logic.
	heads := []string{"p", "q", "r"}
	edbs := []string{"e1", "e2", "link"}
	consts := []string{"a", "Name With Space", "x-y", "Z9"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &Program{}
		for i := 0; i < 1+rng.Intn(4); i++ {
			head := Atom{Pred: heads[rng.Intn(len(heads))], Args: []Term{V("X")}}
			body := []Atom{{Pred: "base", Args: []Term{V("X")}}}
			for j := 0; j < rng.Intn(3); j++ {
				body = append(body, Atom{
					Pred: edbs[rng.Intn(len(edbs))],
					Args: []Term{V("X"), C(consts[rng.Intn(len(consts))])},
				})
			}
			prog.Rules = append(prog.Rules, Rule{Head: head, Body: body})
		}
		s1 := prog.String()
		p2, err := Parse(s1)
		if err != nil {
			return false
		}
		return p2.String() == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
