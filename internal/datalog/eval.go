package datalog

import (
	"fmt"
)

// bindings maps variable names to constants during rule evaluation.
type bindings map[string]string

// applyRule evaluates one rule against db and calls emit for every derived
// head tuple. If deltaPred is nonempty, the body atom at deltaPos is
// evaluated against delta instead of db (semi-naive evaluation).
func applyRule(r Rule, db *Database, deltaPos int, delta *Relation, emit func(Tuple)) {
	var rec func(i int, b bindings)
	rec = func(i int, b bindings) {
		if i == len(r.Body) {
			head := make(Tuple, len(r.Head.Args))
			for k, t := range r.Head.Args {
				if t.Var {
					head[k] = b[t.Name]
				} else {
					head[k] = t.Name
				}
			}
			emit(head)
			return
		}
		atom := r.Body[i]
		if atom.Negated {
			// Safety + reordering guarantee every argument is bound here:
			// evaluate as an absence check.
			ground := make(Tuple, len(atom.Args))
			for k, t := range atom.Args {
				if t.Var {
					ground[k] = b[t.Name]
				} else {
					ground[k] = t.Name
				}
			}
			rel := db.Relation(atom.Pred)
			if rel == nil || !rel.Has(ground) {
				rec(i+1, b)
			}
			return
		}
		var rel *Relation
		if i == deltaPos {
			rel = delta
		} else {
			rel = db.Relation(atom.Pred)
		}
		if rel == nil || rel.Len() == 0 {
			return
		}
		// Pick the first bound column to use the index; fall back to a scan.
		boundCol, boundVal := -1, ""
		for k, t := range atom.Args {
			if !t.Var {
				boundCol, boundVal = k, t.Name
				break
			}
			if v, ok := b[t.Name]; ok {
				boundCol, boundVal = k, v
				break
			}
		}
		try := func(tup Tuple) {
			if len(tup) != len(atom.Args) {
				return
			}
			newVars := make([]string, 0, 3)
			ok := true
			for k, t := range atom.Args {
				if !t.Var {
					if tup[k] != t.Name {
						ok = false
						break
					}
					continue
				}
				if v, bound := b[t.Name]; bound {
					if tup[k] != v {
						ok = false
						break
					}
					continue
				}
				b[t.Name] = tup[k]
				newVars = append(newVars, t.Name)
			}
			if ok {
				rec(i+1, b)
			}
			for _, v := range newVars {
				delete(b, v)
			}
		}
		if boundCol >= 0 {
			for _, pos := range rel.matching(boundCol, boundVal) {
				try(rel.tuples[pos])
			}
		} else {
			for _, tup := range rel.tuples {
				try(tup)
			}
		}
	}
	rec(0, bindings{})
}

// SolveLFPNaive computes the least fixpoint of p over edb by naive
// iteration: all rules are re-evaluated against the full database until no
// new fact is derived. edb is not modified; the returned database contains
// EDB and IDB facts.
func SolveLFPNaive(p *Program, edb *Database) (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("datalog: SolveLFPNaive does not support negation; use SolveStratified")
	}
	db := edb.Clone()
	for _, r := range p.Rules {
		db.Ensure(r.Head.Pred, len(r.Head.Args))
	}
	for {
		changed := false
		for _, r := range p.Rules {
			rel := db.Relation(r.Head.Pred)
			applyRule(r, db, -1, nil, func(t Tuple) {
				if rel.Add(t) {
					changed = true
				}
			})
		}
		if !changed {
			return db, nil
		}
	}
}

// SolveLFP computes the least fixpoint of p over edb using semi-naive
// evaluation: after the first round, each rule is evaluated once per IDB
// body atom with that atom restricted to the facts derived in the previous
// round.
func SolveLFP(p *Program, edb *Database) (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("datalog: SolveLFP does not support negation; use SolveStratified")
	}
	db := edb.Clone()
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		db.Ensure(r.Head.Pred, len(r.Head.Args))
		idb[r.Head.Pred] = true
	}

	// Round 0: full evaluation, collecting the initial deltas.
	delta := make(map[string]*Relation)
	for _, r := range p.Rules {
		rel := db.Relation(r.Head.Pred)
		applyRule(r, db, -1, nil, func(t Tuple) {
			if rel.Add(t) {
				d, ok := delta[r.Head.Pred]
				if !ok {
					d = NewRelation(len(t))
					delta[r.Head.Pred] = d
				}
				d.Add(t)
			}
		})
	}

	for len(delta) > 0 {
		next := make(map[string]*Relation)
		for _, r := range p.Rules {
			rel := db.Relation(r.Head.Pred)
			for pos, a := range r.Body {
				if !idb[a.Pred] {
					continue
				}
				d, ok := delta[a.Pred]
				if !ok || d.Len() == 0 {
					continue
				}
				applyRule(r, db, pos, d, func(t Tuple) {
					if rel.Add(t) {
						nd, ok := next[r.Head.Pred]
						if !ok {
							nd = NewRelation(len(t))
							next[r.Head.Pred] = nd
						}
						nd.Add(t)
					}
				})
			}
		}
		delta = next
	}
	return db, nil
}

// SolveGFP computes the greatest fixpoint of p over edb, for programs whose
// IDB predicates are all monadic. Following the paper's §4 ("Computational
// Efficiency"): start from M_all, which assigns every IDB predicate to every
// element of the universe, then repeatedly apply P until no change occurs.
//
// If universe is nil, the active domain of edb is used. edb facts are part
// of every fixpoint by definition (M coincides with D on the EDB).
func SolveGFP(p *Program, edb *Database, universe []string) (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsMonadicIDB() {
		return nil, fmt.Errorf("datalog: SolveGFP requires monadic IDB predicates")
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("datalog: SolveGFP does not support negation (the paper's typing language is negation-free)")
	}
	if universe == nil {
		universe = edb.Constants()
	}
	idbPreds := p.IDBPreds()
	edbOnly := edb.Clone()
	for _, pred := range idbPreds {
		if edbOnly.Relation(pred) != nil {
			return nil, fmt.Errorf("datalog: predicate %s is both EDB and IDB", pred)
		}
	}

	// db holds EDB facts plus the current candidate IDB assignment.
	db := edb.Clone()
	for _, pred := range idbPreds {
		rel := db.Ensure(pred, 1)
		for _, o := range universe {
			rel.Add(Tuple{o})
		}
	}

	// Downward iteration: recompute P(M) for the IDB part and shrink until
	// stable. Indexes on IDB relations change every round, so rebuild the
	// relations rather than mutating them.
	for {
		derived := make(map[string]*Relation, len(idbPreds))
		for _, pred := range idbPreds {
			derived[pred] = NewRelation(1)
		}
		for _, r := range p.Rules {
			applyRule(r, db, -1, nil, func(t Tuple) {
				derived[r.Head.Pred].Add(t)
			})
		}
		changed := false
		for _, pred := range idbPreds {
			cur := db.Relation(pred)
			if derived[pred].Len() != cur.Len() {
				changed = true
				continue
			}
			for _, t := range derived[pred].Tuples() {
				if !cur.Has(t) {
					changed = true
					break
				}
			}
		}
		if !changed {
			return db, nil
		}
		db = edbOnly.Clone()
		for _, pred := range idbPreds {
			db.rels[pred] = derived[pred]
		}
	}
}

// IsFixpoint reports whether the IDB assignment in m is a fixpoint of p,
// i.e. P(m)(c) == m(c) for every IDB predicate c. m must contain the EDB
// facts as well.
func IsFixpoint(p *Program, m *Database) bool {
	derived := make(map[string]*Relation)
	for _, pred := range p.IDBPreds() {
		derived[pred] = NewRelation(1)
	}
	for _, r := range p.Rules {
		applyRule(r, m, -1, nil, func(t Tuple) {
			if d, ok := derived[r.Head.Pred]; ok {
				d.Add(t)
			}
		})
	}
	for pred, d := range derived {
		cur := m.Relation(pred)
		curLen := 0
		if cur != nil {
			curLen = cur.Len()
		}
		if d.Len() != curLen {
			return false
		}
		for _, t := range d.Tuples() {
			if cur == nil || !cur.Has(t) {
				return false
			}
		}
	}
	return true
}
