package datalog

import (
	"strings"
	"testing"
)

// FuzzParse checks the datalog parser never panics and accepted programs
// validate and round-trip through the printer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`p(X) :- q(X).`,
		`p(X) :- link(X, Y, "l") & atomic(Y, Z).`,
		`fact(a, b). p(X) :- fact(X, Y), fact(Y, X).`,
		`p(X) :- q(X) & !r(X).`,
		`% comment` + "\n" + `p(X) :- q(X).`,
		`p() :- q().`,
		// Adversarial shapes: giant predicate names, wide bodies, and
		// direct self-reference.
		strings.Repeat("p", 1<<10) + `(X) :- q(X).`,
		`p(X) :- ` + strings.Repeat("q(X), ", 300) + `r(X).`,
		`p(X) :- p(X).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("print/parse not stable:\n%q\nvs\n%q", rendered, p2.String())
		}
	})
}
