package datalog

import (
	"fmt"
)

// This file extends the engine with stratified negation. The paper's typing
// language is negation-free (which is why type extents can overlap, §4.2);
// negation is provided as a substrate extension so that exact (non-
// overlapping) classifications and complements can be expressed. Negated
// atoms are written !p(...) in the textual syntax.

// ValidateStratified checks the additional conditions negation imposes:
// every variable of a negated atom must also occur in a positive body atom
// of the same rule, and the program must be stratifiable (no recursion
// through negation).
func (p *Program) ValidateStratified() error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, r := range p.Rules {
		pos := make(map[string]bool)
		for _, a := range r.Body {
			if a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.Var {
					pos[t.Name] = true
				}
			}
		}
		for _, a := range r.Body {
			if !a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.Var && !pos[t.Name] {
					return fmt.Errorf("datalog: unsafe negation in rule %s: variable %s not bound positively", r, t.Name)
				}
			}
		}
	}
	_, err := p.Stratify()
	return err
}

// Stratify assigns each intensional predicate a stratum: positive
// dependencies stay within a stratum or go up; negative dependencies must go
// strictly up. It returns an error when the program recurses through
// negation (e.g. win(X) :- move(X,Y) & !win(Y)).
func (p *Program) Stratify() (map[string]int, error) {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	strata := make(map[string]int, len(idb))
	n := len(idb)
	// Bellman-Ford-style relaxation: at most n·|rules| improvements before a
	// stratum exceeds n, which certifies a negative cycle.
	for iter := 0; iter <= n*len(p.Rules)+1; iter++ {
		changed := false
		for _, r := range p.Rules {
			h := strata[r.Head.Pred]
			for _, a := range r.Body {
				if !idb[a.Pred] {
					continue
				}
				want := strata[a.Pred]
				if a.Negated {
					want++
				}
				if want > h {
					h = want
				}
			}
			if h > n {
				return nil, fmt.Errorf("datalog: program is not stratifiable (recursion through negation involving %s)", r.Head.Pred)
			}
			if h != strata[r.Head.Pred] {
				strata[r.Head.Pred] = h
				changed = true
			}
		}
		if !changed {
			return strata, nil
		}
	}
	return nil, fmt.Errorf("datalog: stratification did not converge")
}

// SolveStratified computes the standard stratified-negation semantics: the
// strata are evaluated bottom-up, each by semi-naive least fixpoint with the
// lower strata (and negated atoms over them) treated as extensional.
func SolveStratified(p *Program, edb *Database) (*Database, error) {
	if err := p.ValidateStratified(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	db := edb.Clone()
	for _, r := range p.Rules {
		db.Ensure(r.Head.Pred, len(r.Head.Args))
	}
	for s := 0; s <= maxStratum; s++ {
		var layer Program
		for _, r := range p.Rules {
			if strata[r.Head.Pred] == s {
				layer.Rules = append(layer.Rules, r)
			}
		}
		if len(layer.Rules) == 0 {
			continue
		}
		if err := lfpLayer(&layer, db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// lfpLayer runs semi-naive evaluation of one stratum in place over db.
// Negated atoms refer to lower strata, which are complete in db, so they are
// evaluated as simple absence checks.
func lfpLayer(layer *Program, db *Database) error {
	idb := make(map[string]bool)
	for _, r := range layer.Rules {
		idb[r.Head.Pred] = true
	}
	delta := make(map[string]*Relation)
	for _, r := range layer.Rules {
		rel := db.Relation(r.Head.Pred)
		applyRule(reorderNegated(r), db, -1, nil, func(t Tuple) {
			if rel.Add(t) {
				d, ok := delta[r.Head.Pred]
				if !ok {
					d = NewRelation(len(t))
					delta[r.Head.Pred] = d
				}
				d.Add(t)
			}
		})
	}
	for len(delta) > 0 {
		next := make(map[string]*Relation)
		for _, r := range layer.Rules {
			rel := db.Relation(r.Head.Pred)
			rr := reorderNegated(r)
			for pos, a := range rr.Body {
				if a.Negated || !idb[a.Pred] {
					continue
				}
				d, ok := delta[a.Pred]
				if !ok || d.Len() == 0 {
					continue
				}
				applyRule(rr, db, pos, d, func(t Tuple) {
					if rel.Add(t) {
						nd, ok := next[r.Head.Pred]
						if !ok {
							nd = NewRelation(len(t))
							next[r.Head.Pred] = nd
						}
						nd.Add(t)
					}
				})
			}
		}
		delta = next
	}
	return nil
}

// reorderNegated moves negated atoms to the end of the body so that their
// variables are bound when they are evaluated (safety guarantees every such
// variable occurs positively).
func reorderNegated(r Rule) Rule {
	var pos, neg []Atom
	for _, a := range r.Body {
		if a.Negated {
			neg = append(neg, a)
		} else {
			pos = append(pos, a)
		}
	}
	if len(neg) == 0 {
		return r
	}
	out := Rule{Head: r.Head, Body: make([]Atom, 0, len(r.Body))}
	out.Body = append(out.Body, pos...)
	out.Body = append(out.Body, neg...)
	return out
}

// HasNegation reports whether any rule body contains a negated atom.
func (p *Program) HasNegation() bool {
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Negated {
				return true
			}
		}
	}
	return false
}
