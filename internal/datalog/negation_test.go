package datalog

import (
	"strings"
	"testing"
)

func TestStratifiedUnreachable(t *testing.T) {
	p := MustParse(`
		reach(X) :- start(X).
		reach(Y) :- reach(X) & edge(X, Y).
		unreachable(X) :- node(X) & !reach(X).
	`)
	edb := NewDatabase()
	for _, n := range []string{"a", "b", "c", "d"} {
		edb.Add("node", n)
	}
	edb.Add("start", "a")
	edb.Add("edge", "a", "b")
	edb.Add("edge", "b", "a")
	edb.Add("edge", "c", "d")
	m, err := SolveStratified(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	un := idbSet(m, "unreachable")
	if len(un) != 2 || !un["c"] || !un["d"] {
		t.Fatalf("unreachable = %v, want {c, d}", un)
	}
	reach := idbSet(m, "reach")
	if len(reach) != 2 || !reach["a"] || !reach["b"] {
		t.Fatalf("reach = %v, want {a, b}", reach)
	}
}

func TestStratifyLevels(t *testing.T) {
	p := MustParse(`
		base2(X) :- raw(X).
		mid(X) :- base2(X) & !excluded(X).
		excluded(X) :- raw(X) & flag(X, bad).
		top(X) :- mid(X) & !vetoed(X).
		vetoed(X) :- mid(X) & flag(X, veto).
	`)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if !(strata["base2"] < strata["mid"] || strata["excluded"] < strata["mid"]) {
		t.Fatalf("strata = %v", strata)
	}
	if strata["mid"] <= strata["excluded"] {
		t.Fatalf("mid must be above excluded: %v", strata)
	}
	if strata["top"] <= strata["vetoed"] {
		t.Fatalf("top must be above vetoed: %v", strata)
	}
}

func TestWinMoveNotStratifiable(t *testing.T) {
	p := MustParse(`win(X) :- move(X, Y) & !win(Y).`)
	if _, err := p.Stratify(); err == nil {
		t.Fatal("win/move accepted (recursion through negation)")
	}
	edb := NewDatabase()
	edb.Add("move", "a", "b")
	if _, err := SolveStratified(p, edb); err == nil {
		t.Fatal("SolveStratified accepted a non-stratifiable program")
	}
}

func TestNegationSafety(t *testing.T) {
	// A variable occurring only in a negated atom is unsafe.
	p := &Program{Rules: []Rule{{
		Head: Atom{Pred: "p", Args: []Term{V("X")}},
		Body: []Atom{
			{Pred: "q", Args: []Term{V("X")}},
			{Pred: "r", Args: []Term{V("Y")}, Negated: true},
		},
	}}}
	if err := p.ValidateStratified(); err == nil {
		t.Fatal("unsafe negated variable accepted")
	}
	// Parse-level: a head bound only by a negated atom is rejected by the
	// basic range restriction.
	if _, err := Parse(`p(X) :- !q(X).`); err == nil {
		t.Fatal("negation-only binding accepted")
	}
}

func TestPlainSolversRejectNegation(t *testing.T) {
	p := MustParse(`p(X) :- q(X) & !r(X).`)
	edb := NewDatabase()
	edb.Add("q", "a")
	if _, err := SolveLFP(p, edb); err == nil || !strings.Contains(err.Error(), "SolveStratified") {
		t.Fatalf("SolveLFP should direct to SolveStratified, got %v", err)
	}
	if _, err := SolveLFPNaive(p, edb); err == nil {
		t.Fatal("SolveLFPNaive accepted negation")
	}
	if _, err := SolveGFP(p, edb, nil); err == nil {
		t.Fatal("SolveGFP accepted negation")
	}
}

func TestStratifiedWithoutNegationMatchesLFP(t *testing.T) {
	p := MustParse(`
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y) & edge(Y, Z).
	`)
	edb := NewDatabase()
	edb.Add("edge", "a", "b")
	edb.Add("edge", "b", "c")
	m1, err := SolveStratified(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SolveLFP(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFacts(m1, m2) {
		t.Fatal("stratified evaluation of a positive program differs from LFP")
	}
}

// TestExactTypingWithNegation expresses the "exact fit" classification the
// paper's language cannot (its types overlap because rules lack negation,
// §4.2): a pure soccer star is someone with a team and no movie.
func TestExactTypingWithNegation(t *testing.T) {
	p := MustParse(`
		hasTeam(X) :- link(X, Y, team).
		hasMovie(X) :- link(X, Y, movie).
		pureSoccer(X) :- hasTeam(X) & !hasMovie(X).
		pureMovie(X) :- hasMovie(X) & !hasTeam(X).
		both(X) :- hasTeam(X) & hasMovie(X).
	`)
	edb := NewDatabase()
	edb.Add("link", "scholes", "t1", "team")
	edb.Add("link", "cantona", "t2", "team")
	edb.Add("link", "cantona", "m1", "movie")
	edb.Add("link", "binoche", "m2", "movie")
	m, err := SolveStratified(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if s := idbSet(m, "pureSoccer"); len(s) != 1 || !s["scholes"] {
		t.Fatalf("pureSoccer = %v, want {scholes}", s)
	}
	if s := idbSet(m, "pureMovie"); len(s) != 1 || !s["binoche"] {
		t.Fatalf("pureMovie = %v, want {binoche}", s)
	}
	if s := idbSet(m, "both"); len(s) != 1 || !s["cantona"] {
		t.Fatalf("both = %v, want {cantona}", s)
	}
}

func TestNegatedAtomRendering(t *testing.T) {
	p := MustParse(`p(X) :- q(X) & !r(X).`)
	s := p.String()
	if !strings.Contains(s, "!r(X)") {
		t.Fatalf("rendering lost negation: %s", s)
	}
	p2, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != s {
		t.Fatalf("roundtrip changed program: %q vs %q", s, p2.String())
	}
}

func TestNegatedHeadRejected(t *testing.T) {
	p := &Program{Rules: []Rule{{
		Head: Atom{Pred: "p", Args: []Term{V("X")}, Negated: true},
		Body: []Atom{{Pred: "q", Args: []Term{V("X")}}},
	}}}
	if err := p.Validate(); err == nil {
		t.Fatal("negated head accepted")
	}
}
