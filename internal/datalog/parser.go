package datalog

import (
	"fmt"
	"strconv"
	"unicode"
)

// Parse reads a datalog program in the textual syntax
//
//	person(X) :- link(X, Y, "is-manager-of") & firm(Y).
//	fact(a, b).
//
// Variables start with an uppercase letter or '_'; everything else is a
// constant. Conjuncts may be separated by '&' or ','; a body atom may be
// negated with a leading '!' (stratified semantics, see SolveStratified).
// Rules end with '.'. Line comments start with '%' or '//'.
func Parse(src string) (*Program, error) {
	toks, err := lexDatalog(src)
	if err != nil {
		return nil, err
	}
	p := &dlParser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse but panics on error; for tests and fixed programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type dlTokKind int

const (
	dlEOF dlTokKind = iota
	dlIdent
	dlString
	dlLParen
	dlRParen
	dlComma
	dlAmp
	dlDot
	dlBang
	dlImplies // :-
)

type dlTok struct {
	kind dlTokKind
	text string
	line int
}

func (t dlTok) String() string {
	switch t.kind {
	case dlEOF:
		return "end of input"
	case dlString:
		return fmt.Sprintf("string %q", t.text)
	case dlImplies:
		return "':-'"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func lexDatalog(src string) ([]dlTok, error) {
	var toks []dlTok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, dlTok{dlLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, dlTok{dlRParen, ")", line})
			i++
		case c == ',':
			toks = append(toks, dlTok{dlComma, ",", line})
			i++
		case c == '&':
			toks = append(toks, dlTok{dlAmp, "&", line})
			i++
		case c == '.':
			toks = append(toks, dlTok{dlDot, ".", line})
			i++
		case c == '!':
			toks = append(toks, dlTok{dlBang, "!", line})
			i++
		case c == ':':
			if i+1 < len(src) && src[i+1] == '-' {
				toks = append(toks, dlTok{dlImplies, ":-", line})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: line %d: expected ':-'", line)
			}
		case c == '"':
			j := i + 1
			for j < len(src) {
				if src[j] == '\\' {
					j += 2
					continue
				}
				if src[j] == '"' || src[j] == '\n' {
					break
				}
				j++
			}
			if j >= len(src) || src[j] == '\n' {
				return nil, fmt.Errorf("datalog: line %d: unterminated string", line)
			}
			unq, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("datalog: line %d: bad quoted string %s: %v", line, src[i:j+1], err)
			}
			toks = append(toks, dlTok{dlString, unq, line})
			i = j + 1
		case isDlIdentByte(c):
			j := i
			for j < len(src) && isDlIdentByte(src[j]) {
				j++
			}
			toks = append(toks, dlTok{dlIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("datalog: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, dlTok{dlEOF, "", line})
	return toks, nil
}

func isDlIdentByte(c byte) bool {
	return c == '_' || c == '-' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type dlParser struct {
	toks []dlTok
	pos  int
}

func (p *dlParser) atEOF() bool { return p.toks[p.pos].kind == dlEOF }

func (p *dlParser) next() dlTok {
	t := p.toks[p.pos]
	if t.kind != dlEOF {
		p.pos++
	}
	return t
}

func (p *dlParser) peek() dlTok { return p.toks[p.pos] }

func (p *dlParser) expect(k dlTokKind, what string) (dlTok, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("datalog: line %d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

func (p *dlParser) rule() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	t := p.next()
	switch t.kind {
	case dlDot:
		return Rule{Head: head}, nil
	case dlImplies:
		var body []Atom
		for {
			negated := false
			if p.peek().kind == dlBang {
				p.next()
				negated = true
			}
			a, err := p.atom()
			if err != nil {
				return Rule{}, err
			}
			a.Negated = negated
			body = append(body, a)
			sep := p.next()
			switch sep.kind {
			case dlAmp, dlComma:
				continue
			case dlDot:
				return Rule{Head: head, Body: body}, nil
			default:
				return Rule{}, fmt.Errorf("datalog: line %d: expected '&', ',' or '.', got %s", sep.line, sep)
			}
		}
	default:
		return Rule{}, fmt.Errorf("datalog: line %d: expected ':-' or '.', got %s", t.line, t)
	}
}

func (p *dlParser) atom() (Atom, error) {
	name, err := p.expect(dlIdent, "predicate name")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(dlLParen, "'('"); err != nil {
		return Atom{}, err
	}
	var args []Term
	if p.peek().kind == dlRParen {
		p.next()
		return Atom{Pred: name.text, Args: args}, nil
	}
	for {
		t := p.next()
		switch t.kind {
		case dlIdent:
			args = append(args, classifyTerm(t.text))
		case dlString:
			args = append(args, C(t.text))
		default:
			return Atom{}, fmt.Errorf("datalog: line %d: expected term, got %s", t.line, t)
		}
		sep := p.next()
		switch sep.kind {
		case dlComma:
			continue
		case dlRParen:
			return Atom{Pred: name.text, Args: args}, nil
		default:
			return Atom{}, fmt.Errorf("datalog: line %d: expected ',' or ')', got %s", sep.line, sep)
		}
	}
}

// classifyTerm decides whether an identifier is a variable (leading
// uppercase or '_') or a constant.
func classifyTerm(s string) Term {
	r := rune(s[0])
	if r == '_' || unicode.IsUpper(r) {
		return V(s)
	}
	return C(s)
}
