// Package dbg reconstructs a dataset in the image of the paper's DBG data
// set — "various information about the members of the Data Base group at
// Stanford" — whose optimal typing is Figure 1 of the paper and whose
// sensitivity graph is Figure 6.
//
// The original web data was never published, so this is a calibrated
// substitute (see DESIGN.md): six intended roles — project, publication,
// db-person, student, birthday, degree — carrying the typed links Figure 1
// shows. Irregularity is encoded as an explicit shape quotient (53 shapes,
// matching the paper's 53 perfect types): person shapes differ in optional
// attributes and project membership, students in advisors and nicknames,
// publications in attributes and author shapes, and owned birthday/degree
// sub-objects split by owner shape, exactly as the greatest-fixpoint typing
// does on real data.
package dbg

import (
	"fmt"

	"schemex/internal/graph"
	"schemex/internal/synth"
)

// Options configure generation.
type Options struct {
	// Seed for deterministic generation; the default 0 is a valid seed.
	Seed int64
	// Scale multiplies every shape's population; 0 means 1. Perfect-type
	// counts are scale-invariant by construction.
	Scale int
}

// Roles gives the intended role of every complex object, used to name the
// extracted classes the way Figure 1 does.
type Roles map[graph.ObjectID]string

// Generate builds the dataset and its ground-truth role map.
func Generate(opts Options) (*graph.DB, Roles) {
	spec := Spec(opts)
	db, roles, err := spec.GenerateShapes()
	if err != nil {
		panic(fmt.Sprintf("dbg: invalid built-in spec: %v", err)) // spec is a constant of the package
	}
	return db, Roles(roles)
}

// Spec returns the shape-quotient specification of the DBG substitute. It
// has 53 shapes across the six roles of Figure 1 plus the group root.
func Spec(opts Options) *synth.ShapeSpec {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	s := &synth.ShapeSpec{Name: "dbg", Seed: opts.Seed}
	add := func(sh synth.Shape) string {
		sh.Count *= scale
		s.Shapes = append(s.Shapes, sh)
		return sh.Name
	}
	atoms := func(extra ...string) []string {
		return append([]string{"name", "email", "home-page"}, extra...)
	}

	// Projects: three shapes (one missing its home page).
	pr0 := add(synth.Shape{Name: "pr0", Role: "project", Count: 4, Atoms: []string{"name", "home-page"}})
	pr1 := add(synth.Shape{Name: "pr1", Role: "project", Count: 3, Atoms: []string{"name", "home-page"}})
	pr2 := add(synth.Shape{Name: "pr2", Role: "project", Count: 3, Atoms: []string{"name"}})

	// Birthday and degree shapes are owned children; each person shape that
	// has them owns its own child shape (the fixpoint typing splits owned
	// sub-objects by owner class).
	nBd, nDg := 0, 0
	birthday := func(withName bool) string {
		a := []string{"month", "day", "year"}
		if withName {
			a = append([]string{"name"}, a...)
		}
		name := fmt.Sprintf("bd%d", nBd)
		nBd++
		return add(synth.Shape{Name: name, Role: "birthday", Atoms: a})
	}
	degree := func(withName bool) string {
		a := []string{"major", "school", "year"}
		if withName {
			a = append([]string{"name"}, a...)
		}
		name := fmt.Sprintf("dg%d", nDg)
		nDg++
		return add(synth.Shape{Name: name, Role: "degree", Atoms: a})
	}

	// Person shapes: 13 combinations of optional attributes, project
	// membership (with the project-member reciprocal of Figure 1), and
	// birthday/degree sub-objects.
	nPe := 0
	person := func(count int, extraAtoms []string, projects []string, bday, deg bool, degRepeat int, variantNames bool) string {
		name := fmt.Sprintf("pe%d", nPe)
		nPe++
		sh := synth.Shape{Name: name, Role: "db-person", Count: count, Atoms: atoms(extraAtoms...)}
		for _, p := range projects {
			sh.Links = append(sh.Links, synth.ShapeLink{Label: "project", Target: p, Reciprocal: "project-member"})
		}
		if bday {
			sh.Children = append(sh.Children, synth.ChildSpec{Label: "birthday", Shape: birthday(variantNames)})
		}
		if deg {
			sh.Children = append(sh.Children, synth.ChildSpec{Label: "degree", Shape: degree(variantNames), Repeat: degRepeat})
		}
		return add(sh)
	}
	pe0 := person(4, []string{"title", "years-at-stanford", "research-interest"}, []string{pr0}, true, true, 1, false)
	pe1 := person(3, []string{"title", "years-at-stanford", "research-interest", "personal-interest"}, []string{pr0}, true, true, 1, true)
	pe2 := person(3, []string{"title", "research-interest"}, []string{pr1}, true, true, 1, false)
	pe3 := person(3, []string{"years-at-stanford", "research-interest", "original-home"}, []string{pr1}, true, true, 1, false)
	person(2, []string{"title", "years-at-stanford"}, []string{pr2}, false, true, 1, false) // pe4
	pe5 := person(3, []string{"research-interest"}, []string{pr0}, true, false, 0, false)
	pe6 := person(2, []string{"title", "years-at-stanford", "research-interest", "original-home", "personal-interest"}, []string{pr0, pr1}, true, true, 2, false)
	person(2, nil, []string{pr2}, false, false, 0, false) // pe7
	pe8 := person(3, []string{"title", "years-at-stanford", "research-interest"}, []string{pr1}, true, true, 1, false)
	pe9 := person(2, []string{"years-at-stanford", "research-interest"}, []string{pr0}, true, true, 1, false)
	person(2, []string{"title", "years-at-stanford", "personal-interest"}, []string{pr1}, false, true, 1, false) // pe10
	person(2, []string{"title", "research-interest", "original-home"}, []string{pr2}, true, false, 0, false)     // pe11
	pe12 := person(2, []string{"years-at-stanford"}, []string{pr1}, true, true, 1, false)

	// Student shapes: 7 combinations of nickname/title, advisor target and
	// project membership.
	nSt := 0
	student := func(count int, extraAtoms []string, advisor, project string) string {
		name := fmt.Sprintf("st%d", nSt)
		nSt++
		sh := synth.Shape{Name: name, Role: "student", Count: count, Atoms: atoms(extraAtoms...)}
		sh.Links = append(sh.Links,
			synth.ShapeLink{Label: "advisor", Target: advisor},
			synth.ShapeLink{Label: "project", Target: project, Reciprocal: "project-member"},
		)
		return add(sh)
	}
	st0 := student(4, []string{"nickname"}, pe0, pr0)
	st1 := student(3, []string{"nickname", "title"}, pe2, pr1)
	student(3, nil, pe0, pr2) // st2
	student(3, []string{"nickname"}, pe6, pr1)
	student(2, []string{"title"}, pe3, pr0)
	student(3, []string{"nickname"}, pe1, pr2)
	student(2, []string{"title", "nickname"}, pe9, pr0)

	// Publication shapes: 9 combinations of attributes and author shapes.
	// Authors usually link back (the <-publication of Figure 1).
	nPu := 0
	pub := func(count int, a []string, authors ...string) {
		name := fmt.Sprintf("pu%d", nPu)
		nPu++
		sh := synth.Shape{Name: name, Role: "publication", Count: count, Atoms: a}
		for _, au := range authors {
			sh.Links = append(sh.Links, synth.ShapeLink{Label: "author", Target: au, Reciprocal: "publication"})
		}
		add(sh)
	}
	full := []string{"name", "conference", "postscript"}
	pub(6, full, pe0)
	pub(4, full, pe1)
	pub(4, []string{"name", "conference"}, pe2)
	pub(4, full, pe6, st0)
	pub(4, []string{"name", "postscript"}, pe8)
	pub(3, full, st1)
	pub(3, []string{"name"}, pe5)
	pub(4, full, pe9, pe3)
	pub(3, []string{"name", "conference"}, pe12)

	// The group root links to every person and student shape.
	root := synth.Shape{Name: "dbgroup", Role: "group", Count: 1, Atoms: []string{"name"}}
	for i := 0; i < nPe; i++ {
		root.Links = append(root.Links, synth.ShapeLink{Label: "group-member", Target: fmt.Sprintf("pe%d", i)})
	}
	for i := 0; i < nSt; i++ {
		root.Links = append(root.Links, synth.ShapeLink{Label: "group-member", Target: fmt.Sprintf("st%d", i)})
	}
	add(root)
	return s
}

// NameFor returns a Stage 1 class namer that labels each class with the
// majority ground-truth role of its members, disambiguating duplicates.
func (r Roles) NameFor(db *graph.DB, members []graph.ObjectID, classIdx int) string {
	counts := make(map[string]int)
	for _, o := range members {
		counts[r[o]]++
	}
	best, bestN := "", 0
	for role, n := range counts {
		if role == "" {
			continue
		}
		if n > bestN || (n == bestN && role < best) {
			best, bestN = role, n
		}
	}
	if best == "" {
		return "class"
	}
	return best
}
