package dbg

import (
	"strings"
	"testing"

	"schemex/internal/core"
	"schemex/internal/defect"
	"schemex/internal/perfect"
	"schemex/internal/typing"
)

func TestSpecIs53Shapes(t *testing.T) {
	spec := Spec(Options{})
	if got := len(spec.Shapes); got != 53 {
		t.Fatalf("DBG spec has %d shapes, want 53 (the paper's perfect-type count)", got)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Options{})
	b, _ := Generate(Options{})
	if a.NumObjects() != b.NumObjects() || a.NumLinks() != b.NumLinks() {
		t.Fatal("DBG generation not deterministic")
	}
}

// TestPerfectTypingHas53Types: the headline Figure 1 claim — "the perfect
// typing for this dataset consists of 53 different types".
func TestPerfectTypingHas53Types(t *testing.T) {
	db, _ := Generate(Options{})
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Program.Len(); got != 53 {
		t.Fatalf("perfect typing has %d types, want 53", got)
	}
	// And it is perfect: zero defect.
	if x := defect.Excess(res.Program, db, res.Extent.Member); x != 0 {
		t.Fatalf("excess = %d, want 0", x)
	}
	a := typing.FromExtent(res.Extent)
	if d := defect.Deficit(a); d != 0 {
		t.Fatalf("deficit = %d, want 0", d)
	}
}

// TestFigure1SixTypeProgram: clustering to 6 types recovers the six roles
// of Figure 1, with the structural links the figure shows.
func TestFigure1SixTypeProgram(t *testing.T) {
	db, roles := Generate(Options{})
	res, err := core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 6 {
		t.Fatalf("optimal typing has %d types, want 6", res.Program.Len())
	}
	s := res.Program.String()
	for _, role := range []string{"project", "publication", "db-person", "student", "birthday", "degree"} {
		if !strings.Contains(s, "type "+role) {
			t.Errorf("6-type program missing role %q:\n%s", role, s)
		}
	}
	// Figure 1 structural spot-checks on the six-type program.
	for _, frag := range []string{
		"<-birthday[db-person]", // birthdays belong to db-persons
		"<-degree[db-person]",   // degrees belong to db-persons
		"->advisor[db-person]",  // students point at advisors
		"->project-member[",     // projects point at members
		"->month[0]",            // birthday attributes
		"->major[0]",            // degree attributes
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("6-type program missing structure %q:\n%s", frag, s)
		}
	}
	// A small defect relative to the k=1 catastrophe.
	if res.Defect.Total() <= 0 {
		t.Error("6-type typing should have nonzero defect (it is approximate)")
	}
}

// TestFigure6SweepShape checks the sensitivity curve's shape: zero defect at
// the perfect typing, a moderate plateau around the intended 6, and a steep
// blow-up at 1.
func TestFigure6SweepShape(t *testing.T) {
	db, roles := Generate(Options{})
	sw, err := core.Sweep(db, core.Options{NameFor: roles.NameFor})
	if err != nil {
		t.Fatal(err)
	}
	at := func(k int) core.SweepPoint {
		p, ok := sw.At(k)
		if !ok {
			t.Fatalf("no sweep point for k=%d", k)
		}
		return p
	}
	if at(53).Defect != 0 {
		t.Errorf("defect at k=53 is %d, want 0", at(53).Defect)
	}
	d6, d1 := at(6).Defect, at(1).Defect
	if d6 <= 0 {
		t.Errorf("defect at k=6 is %d, want > 0", d6)
	}
	if d1 < 3*d6 {
		t.Errorf("defect at k=1 (%d) should dwarf defect at k=6 (%d)", d1, d6)
	}
	// Total distance decreases monotonically with k (it accumulates as
	// types are merged away).
	for i := 1; i < len(sw.Points); i++ {
		if sw.Points[i].TotalDistance < sw.Points[i-1].TotalDistance {
			t.Fatalf("total distance not nondecreasing along the merge sequence")
		}
	}
	// The suggested knee falls in (or near) the paper's optimal range 6-10.
	knee := sw.Knee()
	if knee < 3 || knee > 13 {
		t.Errorf("knee = %d, want within the 6-10 neighbourhood", knee)
	}
}

func TestRolesGroundTruthAlignment(t *testing.T) {
	// Stage 1 classes never mix roles: the class namer sees a single
	// majority role per class because the shape quotient is role-pure.
	db, roles := Generate(Options{})
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ci, members := range res.Classes {
		seen := map[string]bool{}
		for _, o := range members {
			seen[roles[o]] = true
		}
		if len(seen) != 1 {
			t.Errorf("class %d mixes roles: %v", ci, seen)
		}
	}
}

func TestScaleInvariantPerfectTypes(t *testing.T) {
	db, _ := Generate(Options{Scale: 2})
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Scaling populations must not change the number of perfect types
	// (except the singleton root staying singleton — Count 1×2=2 is fine).
	if got := res.Program.Len(); got != 53 {
		t.Fatalf("scaled dataset has %d perfect types, want 53", got)
	}
}
