// Package defect implements the paper's quality measures for a typing (§2):
//
//   - excess — the number of ground link facts that are not used to justify
//     the type of any object under a membership (typically the greatest
//     fixpoint of the typing program);
//   - deficit — the number of ground facts that must be invented so that all
//     type derivations in a typing assignment become possible.
//
// defect = excess + deficit. Example 2.2 of the paper is reproduced in the
// package tests.
package defect

import (
	"schemex/internal/bitset"
	"schemex/internal/compile"
	"schemex/internal/graph"
	"schemex/internal/typing"
)

// Excess counts the link facts of db that are in excess with respect to the
// membership in member (per type, a set of objects): a fact link(o, o', ℓ)
// is in excess iff there are no classes c ∋ o and c' ∋ o' such that the
// definition of c or c' stipulates an ℓ-link from c to c'. For an atomic o'
// the only possible justification is an →ℓ[0] link of some class of o.
func Excess(p *typing.Program, db *graph.DB, member []*bitset.Set) int {
	stip := newStipulation(p)
	excess := 0
	db.Links(func(e graph.Edge) {
		if !justified(stip, db, member, e) {
			excess++
		}
	})
	return excess
}

// ExcessEdges returns the excess facts themselves, for reporting.
func ExcessEdges(p *typing.Program, db *graph.DB, member []*bitset.Set) []graph.Edge {
	stip := newStipulation(p)
	var edges []graph.Edge
	db.Links(func(e graph.Edge) {
		if !justified(stip, db, member, e) {
			edges = append(edges, e)
		}
	})
	return edges
}

// stipulation indexes, per label, which (from-class, to-class) pairs are
// stipulated by some type definition, and which from-classes stipulate an
// ℓ-link to an atomic object (per sort constraint, for the Remark 2.1
// extension).
// atomicKey identifies one kind of atomic-target stipulation: the sort and
// optional value constraints of the typed link.
type atomicKey struct {
	sort     typing.SortConstraint
	value    string
	hasValue bool
}

func (k atomicKey) matches(v graph.Value) bool {
	return typing.SortMatches(k.sort, v.Sort) && (!k.hasValue || k.value == v.Text)
}

type stipulation struct {
	n        int
	pairs    map[string]map[int]*bitset.Set       // label -> from class -> to classes
	toAtomic map[string]map[atomicKey]*bitset.Set // label -> constraint -> from classes
}

func newStipulation(p *typing.Program) *stipulation {
	s := &stipulation{
		n:        len(p.Types),
		pairs:    make(map[string]map[int]*bitset.Set),
		toAtomic: make(map[string]map[atomicKey]*bitset.Set),
	}
	addPair := func(label string, from, to int) {
		m, ok := s.pairs[label]
		if !ok {
			m = make(map[int]*bitset.Set)
			s.pairs[label] = m
		}
		set, ok := m[from]
		if !ok {
			set = bitset.New(s.n)
			m[from] = set
		}
		set.Set(to)
	}
	for ci, t := range p.Types {
		for _, l := range t.Links {
			switch {
			case l.Dir == typing.Out && l.Target == typing.AtomicTarget:
				byKey, ok := s.toAtomic[l.Label]
				if !ok {
					byKey = make(map[atomicKey]*bitset.Set)
					s.toAtomic[l.Label] = byKey
				}
				key := atomicKey{sort: l.Sort, value: l.Value, hasValue: l.HasValue}
				set, ok := byKey[key]
				if !ok {
					set = bitset.New(s.n)
					byKey[key] = set
				}
				set.Set(ci)
			case l.Dir == typing.Out:
				addPair(l.Label, ci, l.Target)
			default: // In: an ℓ-edge from the target class into ci
				addPair(l.Label, l.Target, ci)
			}
		}
	}
	return s
}

func justified(s *stipulation, db *graph.DB, member []*bitset.Set, e graph.Edge) bool {
	if db.IsAtomic(e.To) {
		byKey := s.toAtomic[e.Label]
		if byKey == nil {
			return false
		}
		v, _ := db.AtomicValue(e.To)
		for key, set := range byKey {
			if !key.matches(v) {
				continue
			}
			for c := 0; c < s.n; c++ {
				if set.Test(c) && member[c].Test(int(e.From)) {
					return true
				}
			}
		}
		return false
	}
	m := s.pairs[e.Label]
	if m == nil {
		return false
	}
	for from, tos := range m {
		if !member[from].Test(int(e.From)) {
			continue
		}
		found := false
		tos.ForEach(func(to int) {
			if !found && member[to].Test(int(e.To)) {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// stipulationSnap is the stipulation index over a compiled snapshot: the
// per-label tables are slices indexed by dense label ID instead of
// string-keyed maps. Program links whose label is absent from the data are
// dropped — no ground fact can ever carry them, so they justify nothing.
type stipulationSnap struct {
	n        int
	pairs    []map[int]*bitset.Set       // label ID -> from class -> to classes
	toAtomic []map[atomicKey]*bitset.Set // label ID -> constraint -> from classes
}

func newStipulationSnap(p *typing.Program, snap *compile.Snapshot) *stipulationSnap {
	nL := snap.NumLabels()
	s := &stipulationSnap{
		n:        len(p.Types),
		pairs:    make([]map[int]*bitset.Set, nL),
		toAtomic: make([]map[atomicKey]*bitset.Set, nL),
	}
	addPair := func(lid, from, to int) {
		m := s.pairs[lid]
		if m == nil {
			m = make(map[int]*bitset.Set)
			s.pairs[lid] = m
		}
		set, ok := m[from]
		if !ok {
			set = bitset.New(s.n)
			m[from] = set
		}
		set.Set(to)
	}
	for ci, t := range p.Types {
		for _, l := range t.Links {
			lid, ok := snap.LabelID(l.Label)
			if !ok {
				continue
			}
			switch {
			case l.Dir == typing.Out && l.Target == typing.AtomicTarget:
				byKey := s.toAtomic[lid]
				if byKey == nil {
					byKey = make(map[atomicKey]*bitset.Set)
					s.toAtomic[lid] = byKey
				}
				key := atomicKey{sort: l.Sort, value: l.Value, hasValue: l.HasValue}
				set, ok := byKey[key]
				if !ok {
					set = bitset.New(s.n)
					byKey[key] = set
				}
				set.Set(ci)
			case l.Dir == typing.Out:
				addPair(lid, ci, l.Target)
			default: // In: an ℓ-edge from the target class into ci
				addPair(lid, l.Target, ci)
			}
		}
	}
	return s
}

func (s *stipulationSnap) justified(snap *compile.Snapshot, member []*bitset.Set, from, to graph.ObjectID, lab int32) bool {
	if snap.IsAtomic(to) {
		byKey := s.toAtomic[lab]
		if byKey == nil {
			return false
		}
		v, _ := snap.Value(to)
		for key, set := range byKey {
			if !key.matches(v) {
				continue
			}
			for c := 0; c < s.n; c++ {
				if set.Test(c) && member[c].Test(int(from)) {
					return true
				}
			}
		}
		return false
	}
	m := s.pairs[lab]
	if m == nil {
		return false
	}
	for f, tos := range m {
		if !member[f].Test(int(from)) {
			continue
		}
		found := false
		tos.ForEach(func(t int) {
			if !found && member[t].Test(int(to)) {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// ExcessSnap is Excess over a compiled snapshot: the stipulation index is
// keyed by the snapshot's dense label IDs and the link facts are walked in
// CSR form, so the justification test compares no strings.
func ExcessSnap(p *typing.Program, snap *compile.Snapshot, member []*bitset.Set) int {
	s := newStipulationSnap(p, snap)
	excess := 0
	n := snap.NumObjects()
	for i := 0; i < n; i++ {
		o := graph.ObjectID(i)
		to, lab := snap.Out(o)
		for k := range to {
			if !s.justified(snap, member, o, graph.ObjectID(to[k]), lab[k]) {
				excess++
			}
		}
	}
	return excess
}

// Requirement is one unsatisfied typed link of an assignment: object Obj is
// assigned a type whose definition demands Link, but no witnessing fact
// exists.
type Requirement struct {
	Obj  graph.ObjectID
	Link typing.TypedLink
}

// Deficit counts the facts that must be invented for the assignment a to
// make all its type derivations possible. Requirements are deduplicated per
// (object, typed link): if two types of the same object demand the same
// typed link, one invented fact serves both. The count is the paper's
// operational measure (Example 2.2); see DeficitShared for the tighter
// variant that also shares one invented fact between the out-requirement of
// one object and the in-requirement of another.
func Deficit(a *typing.Assignment) int {
	return len(UnsatisfiedRequirements(a))
}

// UnsatisfiedRequirements returns the deduplicated unsatisfied requirements
// of an assignment.
func UnsatisfiedRequirements(a *typing.Assignment) []Requirement {
	member := a.Membership()
	seen := make(map[Requirement]bool)
	var reqs []Requirement
	for _, o := range a.DB.ComplexObjects() {
		for _, ti := range a.Of(o) {
			for _, l := range a.Program.Types[ti].Links {
				if satisfiedUnder(a.DB, member, o, l) {
					continue
				}
				r := Requirement{Obj: o, Link: l}
				if !seen[r] {
					seen[r] = true
					reqs = append(reqs, r)
				}
			}
		}
	}
	return reqs
}

func satisfiedUnder(db *graph.DB, member []*bitset.Set, o graph.ObjectID, l typing.TypedLink) bool {
	if l.Dir == typing.Out {
		for _, e := range db.Out(o) {
			if e.Label != l.Label {
				continue
			}
			if l.Target == typing.AtomicTarget {
				if db.IsAtomic(e.To) {
					if v, ok := db.AtomicValue(e.To); ok && typing.SortMatches(l.Sort, v.Sort) &&
						(!l.HasValue || v.Text == l.Value) {
						return true
					}
				}
			} else if member[l.Target].Test(int(e.To)) {
				return true
			}
		}
		return false
	}
	for _, e := range db.In(o) {
		if e.Label == l.Label && member[l.Target].Test(int(e.From)) {
			return true
		}
	}
	return false
}

// UnsatisfiedRequirementsSnap is UnsatisfiedRequirements over a compiled
// snapshot: each demanded link's label is resolved to a dense ID once, and
// the witness scans walk CSR edges comparing int32 IDs.
func UnsatisfiedRequirementsSnap(a *typing.Assignment, snap *compile.Snapshot) []Requirement {
	member := a.Membership()
	seen := make(map[Requirement]bool)
	var reqs []Requirement
	for _, o := range snap.Complex {
		for _, ti := range a.Of(o) {
			for _, l := range a.Program.Types[ti].Links {
				if satisfiedUnderSnap(snap, member, o, l) {
					continue
				}
				r := Requirement{Obj: o, Link: l}
				if !seen[r] {
					seen[r] = true
					reqs = append(reqs, r)
				}
			}
		}
	}
	return reqs
}

func satisfiedUnderSnap(snap *compile.Snapshot, member []*bitset.Set, o graph.ObjectID, l typing.TypedLink) bool {
	lid, ok := snap.LabelID(l.Label)
	if !ok {
		return false // label absent from the data: no fact can witness it
	}
	lab := int32(lid)
	if l.Dir == typing.Out {
		to, labs := snap.Out(o)
		for k := range to {
			if labs[k] != lab {
				continue
			}
			t := graph.ObjectID(to[k])
			if l.Target == typing.AtomicTarget {
				if snap.IsAtomic(t) {
					if v, ok := snap.Value(t); ok && typing.SortMatches(l.Sort, v.Sort) &&
						(!l.HasValue || v.Text == l.Value) {
						return true
					}
				}
			} else if member[l.Target].Test(int(t)) {
				return true
			}
		}
		return false
	}
	from, labs := snap.In(o)
	for k := range from {
		if labs[k] == lab && member[l.Target].Test(int(from[k])) {
			return true
		}
	}
	return false
}

// DeficitShared is a tighter deficit: a single invented fact link(o, x, ℓ)
// can satisfy both an →ℓ[j] requirement of o (with x assigned j) and an
// ←ℓ[c] requirement of x (with o assigned c). Complementary requirement
// pairs are matched greedily; the result is between the true minimum and
// Deficit.
func DeficitShared(a *typing.Assignment) int {
	reqs := UnsatisfiedRequirements(a)
	var outs, ins []Requirement
	for _, r := range reqs {
		if r.Link.Dir == typing.Out {
			outs = append(outs, r)
		} else {
			ins = append(ins, r)
		}
	}
	usedIn := make([]bool, len(ins))
	shared := 0
	for _, or := range outs {
		if or.Link.Target == typing.AtomicTarget {
			continue
		}
		for ii, ir := range ins {
			if usedIn[ii] || ir.Link.Label != or.Link.Label {
				continue
			}
			// Invent link(or.Obj, ir.Obj, ℓ): needs ir.Obj assigned
			// or.Link.Target and or.Obj assigned ir.Link.Target.
			if a.Has(ir.Obj, or.Link.Target) && a.Has(or.Obj, ir.Link.Target) {
				usedIn[ii] = true
				shared++
				break
			}
		}
	}
	return len(reqs) - shared
}

// Report is a full defect accounting for a program, database, membership
// (for excess) and assignment (for deficit).
type Report struct {
	Excess  int
	Deficit int
}

// Total returns excess + deficit.
func (r Report) Total() int { return r.Excess + r.Deficit }

// Measure computes the defect of assignment a, using the assignment itself
// as the membership for the excess computation (the paper's Example 2.2
// convention: the assignment plays both roles).
func Measure(a *typing.Assignment) Report {
	member := a.Membership()
	return Report{
		Excess:  Excess(a.Program, a.DB, member),
		Deficit: Deficit(a),
	}
}

// MeasureSnap is Measure over a compiled snapshot of a.DB.
func MeasureSnap(a *typing.Assignment, snap *compile.Snapshot) Report {
	member := a.Membership()
	return Report{
		Excess:  ExcessSnap(a.Program, snap, member),
		Deficit: len(UnsatisfiedRequirementsSnap(a, snap)),
	}
}
