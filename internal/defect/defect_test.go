package defect

import (
	"testing"

	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/typing"
)

// example22 builds the database of Figure 3 and the typing program of
// Example 2.2:
//
//	type1 = ->a[type2]
//	type2 = <-a[type1] & ->b[0] & ->c[0]
//	type3 = ->b[0] & ->d[0]
//
// o1 -a-> o2; o2 has b, c to atomics; o3 has b, d; o4 has b, c, d.
func example22() (*graph.DB, *typing.Program) {
	db := graph.New()
	db.Link("o1", "o2", "a")
	db.LinkAtom("o2", "b", "a1", "v")
	db.LinkAtom("o2", "c", "a2", "v")
	db.LinkAtom("o3", "b", "a3", "v")
	db.LinkAtom("o3", "d", "a4", "v")
	db.LinkAtom("o4", "b", "a5", "v")
	db.LinkAtom("o4", "c", "a6", "v")
	db.LinkAtom("o4", "d", "a7", "v")
	p := typing.MustParse(`
		type t1 = ->a[t2]
		type t2 = <-a[t1] & ->b[0] & ->c[0]
		type t3 = ->b[0] & ->d[0]
	`)
	return db, p
}

// TestExample22 reproduces the paper's defect arithmetic: σ1 (o4 ↦ type2)
// has excess 1 and deficit 1 (defect 2); σ2 (o4 ↦ type3) has excess 1 and
// deficit 0 (defect 1).
func TestExample22(t *testing.T) {
	db, p := example22()
	base := func() *typing.Assignment {
		a := typing.NewAssignment(p, db)
		a.Assign(db.Lookup("o1"), p.IndexOf("t1"))
		a.Assign(db.Lookup("o2"), p.IndexOf("t2"))
		a.Assign(db.Lookup("o3"), p.IndexOf("t3"))
		return a
	}

	s1 := base()
	s1.Assign(db.Lookup("o4"), p.IndexOf("t2"))
	r1 := Measure(s1)
	if r1.Excess != 1 || r1.Deficit != 1 || r1.Total() != 2 {
		t.Fatalf("σ1: excess %d deficit %d, want 1 and 1", r1.Excess, r1.Deficit)
	}
	// The single deficit is o4's missing <-a[t1].
	reqs := UnsatisfiedRequirements(s1)
	if len(reqs) != 1 || reqs[0].Obj != db.Lookup("o4") ||
		reqs[0].Link.Dir != typing.In || reqs[0].Link.Label != "a" {
		t.Fatalf("requirements = %+v, want o4 <-a[t1]", reqs)
	}
	// The single excess is link(o4, ., d).
	edges := ExcessEdges(p, db, s1.Membership())
	if len(edges) != 1 || edges[0].From != db.Lookup("o4") || edges[0].Label != "d" {
		t.Fatalf("excess edges = %v, want o4's d edge", edges)
	}

	s2 := base()
	s2.Assign(db.Lookup("o4"), p.IndexOf("t3"))
	r2 := Measure(s2)
	if r2.Excess != 1 || r2.Deficit != 0 || r2.Total() != 1 {
		t.Fatalf("σ2: excess %d deficit %d, want 1 and 0", r2.Excess, r2.Deficit)
	}
	edges = ExcessEdges(p, db, s2.Membership())
	if len(edges) != 1 || edges[0].From != db.Lookup("o4") || edges[0].Label != "c" {
		t.Fatalf("σ2 excess edges = %v, want o4's c edge", edges)
	}
}

func TestExcessJustificationByEitherSide(t *testing.T) {
	// A fact is justified when EITHER the source class stipulates an
	// outgoing link OR the target class stipulates the incoming link (§2).
	db := graph.New()
	db.Link("x", "y", "l")
	db.LinkAtom("y", "name", "n", "v")
	// Program A: only the target side stipulates <-l.
	pa := typing.MustParse(`
		type src =
		type dst = <-l[src] & ->name[0]
	`)
	a := typing.NewAssignment(pa, db)
	a.Assign(db.Lookup("x"), 0)
	a.Assign(db.Lookup("y"), 1)
	if x := Excess(pa, db, a.Membership()); x != 0 {
		t.Fatalf("target-side stipulation: excess %d, want 0", x)
	}
	// Program B: nobody stipulates l.
	pb := typing.MustParse(`
		type src = ->other[0]
		type dst = ->name[0]
	`)
	b := typing.NewAssignment(pb, db)
	b.Assign(db.Lookup("x"), 0)
	b.Assign(db.Lookup("y"), 1)
	if x := Excess(pb, db, b.Membership()); x != 1 {
		t.Fatalf("no stipulation: excess %d, want 1 (the l edge)", x)
	}
}

func TestDeficitDeduplicatesPerObjectLink(t *testing.T) {
	db := graph.New()
	db.Intern("o")
	p := typing.MustParse(`
		type a = ->x[0] & ->y[0]
		type b = ->x[0]
	`)
	a := typing.NewAssignment(p, db)
	a.Assign(db.Lookup("o"), 0)
	a.Assign(db.Lookup("o"), 1)
	// o lacks x and y; the x requirement is shared between types a and b.
	if d := Deficit(a); d != 2 {
		t.Fatalf("deficit = %d, want 2 (x deduped, y)", d)
	}
}

func TestDeficitSharedPairsComplementaryRequirements(t *testing.T) {
	// o requires ->l[B]; q requires <-l[A]; o ∈ A and q ∈ B, so one
	// invented fact link(o, q, l) satisfies both.
	db := graph.New()
	db.Intern("o")
	db.Intern("q")
	p := typing.MustParse(`
		type A = ->l[B]
		type B = <-l[A]
	`)
	a := typing.NewAssignment(p, db)
	a.Assign(db.Lookup("o"), 0)
	a.Assign(db.Lookup("q"), 1)
	if d := Deficit(a); d != 2 {
		t.Fatalf("plain deficit = %d, want 2", d)
	}
	if d := DeficitShared(a); d != 1 {
		t.Fatalf("shared deficit = %d, want 1", d)
	}
}

func TestDeficitSharedNeverExceedsDeficit(t *testing.T) {
	db, p := example22()
	a := typing.NewAssignment(p, db)
	a.Assign(db.Lookup("o1"), 0)
	a.Assign(db.Lookup("o2"), 1)
	a.Assign(db.Lookup("o3"), 2)
	a.Assign(db.Lookup("o4"), 1)
	if DeficitShared(a) > Deficit(a) {
		t.Fatal("DeficitShared exceeded Deficit")
	}
}

func TestGFPExtentHasZeroDeficit(t *testing.T) {
	// Membership produced by the greatest fixpoint satisfies every type
	// definition by construction, so the deficit of the corresponding
	// assignment is zero.
	db, p := example22()
	e := typing.EvalGFP(p, db)
	a := typing.FromExtent(e)
	if d := Deficit(a); d != 0 {
		t.Fatalf("GFP assignment deficit = %d, want 0", d)
	}
}

func TestPerfectTypingZeroDefectEndToEnd(t *testing.T) {
	db, _ := example22()
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x := Excess(res.Program, db, res.Extent.Member); x != 0 {
		t.Fatalf("minimal perfect typing excess = %d, want 0", x)
	}
	a := typing.FromExtent(res.Extent)
	if d := Deficit(a); d != 0 {
		t.Fatalf("minimal perfect typing deficit = %d, want 0", d)
	}
}

func TestEmptyAssignmentAllExcess(t *testing.T) {
	db, p := example22()
	a := typing.NewAssignment(p, db)
	r := Measure(a)
	if r.Excess != db.NumLinks() {
		t.Fatalf("empty assignment excess = %d, want all %d links", r.Excess, db.NumLinks())
	}
	if r.Deficit != 0 {
		t.Fatalf("empty assignment deficit = %d, want 0", r.Deficit)
	}
}
