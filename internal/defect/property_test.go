package defect

import (
	"math/rand"
	"testing"

	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/typing"
)

// randomScenario builds a random database, takes its minimal perfect typing
// program, and assigns objects to random types — producing assignments with
// genuine excess and deficit.
func randomScenario(rng *rand.Rand) (*graph.DB, *typing.Assignment) {
	db := graph.New()
	labels := []string{"a", "b", "c"}
	n := 4 + rng.Intn(8)
	names := make([]string, n)
	for i := range names {
		names[i] = "o" + string(rune('a'+i))
		db.Intern(names[i])
	}
	for i := 0; i < n*2; i++ {
		f, to := rng.Intn(n), rng.Intn(n)
		if f != to {
			db.Link(names[f], names[to], labels[rng.Intn(len(labels))])
		}
	}
	for i := 0; i < n/2; i++ {
		atom := "v" + string(rune('a'+i))
		db.Atom(atom, atom)
		db.Link(names[rng.Intn(n)], atom, labels[rng.Intn(len(labels))])
	}
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		panic(err)
	}
	a := typing.NewAssignment(res.Program, db)
	for _, o := range db.ComplexObjects() {
		for k := 0; k < 1+rng.Intn(2); k++ {
			a.Assign(o, rng.Intn(res.Program.Len()))
		}
	}
	return db, a
}

// TestDefectProperties checks, across random scenarios: defect components
// are nonnegative; excess never exceeds the number of links; DeficitShared
// is sandwiched between half of Deficit and Deficit; and the GFP assignment
// of the same program has zero deficit.
func TestDefectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		db, a := randomScenario(rng)
		rep := Measure(a)
		if rep.Excess < 0 || rep.Deficit < 0 {
			t.Fatalf("trial %d: negative defect components %+v", trial, rep)
		}
		if rep.Excess > db.NumLinks() {
			t.Fatalf("trial %d: excess %d exceeds %d links", trial, rep.Excess, db.NumLinks())
		}
		shared := DeficitShared(a)
		if shared > rep.Deficit {
			t.Fatalf("trial %d: shared deficit %d > deficit %d", trial, shared, rep.Deficit)
		}
		if 2*shared < rep.Deficit {
			t.Fatalf("trial %d: shared deficit %d below half of %d (each fact serves at most two requirements)",
				trial, shared, rep.Deficit)
		}
		// The GFP of the same program is deficit-free (§2: greatest fixpoint
		// semantics may lead to excess but cannot yield deficit).
		gfp := typing.FromExtent(typing.EvalGFP(a.Program, db))
		if d := Deficit(gfp); d != 0 {
			t.Fatalf("trial %d: GFP assignment has deficit %d", trial, d)
		}
	}
}

// TestExcessMonotoneInAssignment: assigning more types can only justify
// more facts, so excess is antitone in the assignment.
func TestExcessMonotoneInAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		db, a := randomScenario(rng)
		small := Excess(a.Program, db, a.Membership())
		// Enlarge: every object gets every type.
		full := typing.NewAssignment(a.Program, db)
		for _, o := range db.ComplexObjects() {
			for ti := range a.Program.Types {
				full.Assign(o, ti)
			}
		}
		big := Excess(a.Program, db, full.Membership())
		if big > small {
			t.Fatalf("trial %d: excess grew from %d to %d with a larger assignment", trial, small, big)
		}
	}
}
