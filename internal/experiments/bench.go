package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"schemex/internal/cluster"
	"schemex/internal/core"
	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/httpapi"
	"schemex/internal/perfect"
	"schemex/internal/recast"
	"schemex/internal/synth"
)

// SeedBaseline holds the ns/op of each tracked workload measured on the
// pre-kernel implementation (map-based link sets, [][]int32 distance matrix,
// serial stages), recorded on the reference machine (Intel Xeon 2.10GHz)
// before the popcount/worker-pool rewrite. Regenerating BENCH_extract.json
// always embeds these, so the before/after comparison survives re-runs.
var SeedBaseline = map[string]int64{
	"stage1/gfp-classes/dbg-x2": 18394925,
	"stage2/greedy-recast/dbg":  7408421,
	"stage2/greedy-only/db7":    90941262,
	"stage3/recast-only/dbg-x2": 1828712,
	"pipeline/scale/dbg-x1":     10345449,
	"pipeline/scale/dbg-x4":     68109694,
	"pipeline/scale/dbg-x16":    3287544181,
}

// BenchResult is one workload's measurement.
type BenchResult struct {
	Name string `json:"name"`
	// SeedNsPerOp is the pre-optimization baseline (0 if the workload did
	// not exist at seed time).
	SeedNsPerOp int64 `json:"seed_ns_per_op,omitempty"`
	// SerialNsPerOp runs the workload with Parallelism=1 (the exact
	// pre-parallelism code path over the new kernels).
	SerialNsPerOp int64 `json:"serial_ns_per_op,omitempty"`
	// ParallelNsPerOp runs with one worker per CPU.
	ParallelNsPerOp int64 `json:"parallel_ns_per_op,omitempty"`
	// ColdNsPerOp and WarmNsPerOp contrast one-shot extraction (a snapshot
	// compiled inside every call) with extraction over a prepared context
	// (Prepare once, ExtractPrepared per op, sharing the snapshot and the
	// Stage 1 memo). The delta/* workloads reuse the pair for incremental
	// snapshot derivation (warm = Prepared.Apply, cold = mutate + Prepare
	// from scratch). Present only for the prepared/* and delta/* workloads.
	ColdNsPerOp int64 `json:"cold_ns_per_op,omitempty"`
	WarmNsPerOp int64 `json:"warm_ns_per_op,omitempty"`
	// WarmSpeedup is cold / warm.
	WarmSpeedup float64 `json:"warm_speedup,omitempty"`
	// DeltasPerSec is acknowledged mutations per second through the batched
	// write pipeline. Present only for the httpapi/mutate-burst workloads.
	DeltasPerSec float64 `json:"deltas_per_sec,omitempty"`
	// Stage1/2/3NsPerOp split one instrumented warm extraction by pipeline
	// stage (Result.Timing). Present only for the delta/warm-extract-*
	// workloads.
	Stage1NsPerOp int64 `json:"stage1_ns_per_op,omitempty"`
	Stage2NsPerOp int64 `json:"stage2_ns_per_op,omitempty"`
	Stage3NsPerOp int64 `json:"stage3_ns_per_op,omitempty"`
	// SpeedupVsSeed is seed / min(serial, parallel).
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// BenchReport is the checked-in BENCH_extract.json document.
type BenchReport struct {
	CPU        string        `json:"cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Note       string        `json:"note"`
	Results    []BenchResult `json:"results"`
}

// RunBench measures the extraction hot paths with testing.Benchmark at
// Parallelism 1 and NumCPU, pairing each with its seed baseline. It backs
// `experiments -bench-json`.
func RunBench() (*BenchReport, error) {
	rep := &BenchReport{
		CPU:        runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "seed_ns_per_op: pre-bitset/pre-parallelism implementation on the reference machine; " +
			"serial/parallel: current code at Parallelism 1 / NumCPU. " +
			"Regenerate with: go run ./cmd/experiments -bench-json > BENCH_extract.json",
	}

	dbgX2, _ := dbg.Generate(dbg.Options{Scale: 2})
	dbgX1, roles := dbg.Generate(dbg.Options{})
	p7 := synth.Presets()[6]
	db7, err := p7.Build()
	if err != nil {
		return nil, err
	}
	stage1DBG, err := perfect.Minimal(dbgX1, perfect.Options{NameFor: roles.NameFor})
	if err != nil {
		return nil, err
	}
	stage1DB7, err := perfect.Minimal(db7, perfect.Options{})
	if err != nil {
		return nil, err
	}
	res6, err := core.Extract(dbgX2, core.Options{K: 6})
	if err != nil {
		return nil, err
	}

	measure := func(name string, run func(workers int, b *testing.B)) {
		serial := testing.Benchmark(func(b *testing.B) { run(1, b) })
		parallel := testing.Benchmark(func(b *testing.B) { run(0, b) })
		r := BenchResult{
			Name:            name,
			SeedNsPerOp:     SeedBaseline[name],
			SerialNsPerOp:   serial.NsPerOp(),
			ParallelNsPerOp: parallel.NsPerOp(),
			AllocsPerOp:     serial.AllocsPerOp(),
		}
		if best := r.SerialNsPerOp; r.SeedNsPerOp > 0 && best > 0 {
			if r.ParallelNsPerOp < best {
				best = r.ParallelNsPerOp
			}
			r.SpeedupVsSeed = float64(r.SeedNsPerOp) / float64(best)
		}
		rep.Results = append(rep.Results, r)
	}

	measure("stage1/gfp-classes/dbg-x2", func(workers int, b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perfect.Minimal(dbgX2, perfect.Options{Parallelism: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("stage2/greedy-recast/dbg", func(workers int, b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := cluster.NewGreedy(stage1DBG.Program.Clone(), cluster.Config{Parallelism: workers})
			g.RunTo(6)
			prog, mapping := g.Program()
			homes := make(map[graph.ObjectID][]int, len(stage1DBG.Home))
			for o, h := range stage1DBG.Home {
				if c := mapping[h]; c != cluster.EmptySlot {
					homes[o] = []int{c}
				}
			}
			rc := recast.DefaultOptions()
			rc.Parallelism = workers
			recast.Recast(dbgX1, prog, homes, rc)
		}
	})
	measure("stage2/greedy-only/db7", func(workers int, b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := cluster.NewGreedy(stage1DB7.Program.Clone(), cluster.Config{Parallelism: workers})
			g.RunTo(p7.Intended())
		}
	})
	measure("stage3/recast-only/dbg-x2", func(workers int, b *testing.B) {
		rc := recast.DefaultOptions()
		rc.Parallelism = workers
		for i := 0; i < b.N; i++ {
			recast.Recast(dbgX2, res6.Program, res6.Homes, rc)
		}
	})
	// Warm-vs-cold serving: Prepare once then ExtractPrepared per request,
	// against Extract recompiling per request, on the Table 1 shapes. With
	// retained Stage 2/3 state, repeat identical requests replay the whole
	// result (the fast path), so this workload now measures served-from-state
	// latency rather than snapshot reuse alone.
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			return nil, err
		}
		opts := core.Options{K: p.Intended()}
		cold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Extract(db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		prep, err := core.Prepare(db)
		if err != nil {
			return nil, err
		}
		warm := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ExtractPrepared(prep, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		r := BenchResult{
			Name:        fmt.Sprintf("prepared/extract-many/db%d", p.DBNo),
			ColdNsPerOp: cold.NsPerOp(),
			WarmNsPerOp: warm.NsPerOp(),
			AllocsPerOp: warm.AllocsPerOp(),
		}
		if warm.NsPerOp() > 0 {
			r.WarmSpeedup = float64(cold.NsPerOp()) / float64(warm.NsPerOp())
		}
		rep.Results = append(rep.Results, r)
	}

	// Delta sessions: deriving the next prepared context with Prepared.Apply
	// (structural sharing over the parent snapshot) against mutating the
	// graph and re-preparing from scratch, for a single-edge delta and a
	// 1%-of-edges delta per Table 1 shape. Cold includes the same ApplyDelta
	// call, so the pair isolates snapshot derivation cost.
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			return nil, err
		}
		prep, err := core.Prepare(db)
		if err != nil {
			return nil, err
		}
		for _, size := range []struct {
			name string
			frac float64
		}{{"1edge", 0}, {"1pct", 0.01}} {
			d := benchDelta(db, size.frac)
			if d == nil {
				continue
			}
			cold := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					child, _, err := db.ApplyDelta(d)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := core.Prepare(child); err != nil {
						b.Fatal(err)
					}
				}
			})
			warm := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := prep.Apply(d); err != nil {
						b.Fatal(err)
					}
				}
			})
			r := BenchResult{
				Name:        fmt.Sprintf("delta/apply-%s/db%d", size.name, p.DBNo),
				ColdNsPerOp: cold.NsPerOp(),
				WarmNsPerOp: warm.NsPerOp(),
				AllocsPerOp: warm.AllocsPerOp(),
			}
			if warm.NsPerOp() > 0 {
				r.WarmSpeedup = float64(cold.NsPerOp()) / float64(warm.NsPerOp())
			}
			rep.Results = append(rep.Results, r)
		}
	}

	// Warm whole-schema updates: apply a delta to a session whose previous
	// extraction left retained Stage 1–3 state, then re-extract (Stages 2–3
	// warm-start from the captured distance triangle and assignment), against
	// re-preparing the mutated graph and extracting from scratch. The
	// instrumented per-stage split shows where the remaining time goes.
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			return nil, err
		}
		opts := core.Options{K: p.Intended()}
		prep, err := core.Prepare(db)
		if err != nil {
			return nil, err
		}
		if _, err := core.ExtractPrepared(prep, opts); err != nil {
			return nil, err
		}
		for _, size := range []struct {
			name string
			frac float64
		}{{"1edge", 0}, {"1pct", 0.01}} {
			d := benchDelta(db, size.frac)
			if d == nil {
				continue
			}
			childDB, _, err := db.ApplyDelta(d)
			if err != nil {
				return nil, err
			}
			cold := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cp, err := core.Prepare(childDB)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := core.ExtractPrepared(cp, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			warm := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					child, _, err := prep.Apply(d)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := core.ExtractPrepared(child, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			child, _, err := prep.Apply(d)
			if err != nil {
				return nil, err
			}
			inst, err := core.ExtractPrepared(child, opts)
			if err != nil {
				return nil, err
			}
			r := BenchResult{
				Name:          fmt.Sprintf("delta/warm-extract-%s/db%d", size.name, p.DBNo),
				ColdNsPerOp:   cold.NsPerOp(),
				WarmNsPerOp:   warm.NsPerOp(),
				Stage1NsPerOp: inst.Timing.Stage1.Nanoseconds(),
				Stage2NsPerOp: inst.Timing.Stage2.Nanoseconds(),
				Stage3NsPerOp: inst.Timing.Stage3.Nanoseconds(),
				AllocsPerOp:   warm.AllocsPerOp(),
			}
			if warm.NsPerOp() > 0 {
				r.WarmSpeedup = float64(cold.NsPerOp()) / float64(warm.NsPerOp())
			}
			rep.Results = append(rep.Results, r)
		}
	}

	// Sharded snapshots: the same delta applied to snapshots partitioned at
	// shards {1, 4, auto} over a graph big enough (11k objects) that the
	// automatic layout is multi-shard. apply-1shard uses a delta confined to
	// shard 0 (remove + re-add one low-ID edge), so a multi-shard layout
	// rebuilds one shard's CSR block where the flat layout rebuilds all of it;
	// warm-extract measures the full apply + re-extract round trip over a real
	// single-edge delta with retained Stage 1-3 state. Results are
	// layout-independent — only the cost moves.
	{
		dbgX16, _ := dbg.Generate(dbg.Options{Scale: 16})
		oneShard := shardLocalDelta(dbgX16, 4096)
		realDelta := benchDelta(dbgX16, 0)
		for _, sc := range []struct {
			name   string
			shards int
		}{{"s1", 1}, {"s4", 4}, {"auto", 0}} {
			prep, err := core.PrepareContext(context.Background(), dbgX16, 0, sc.shards)
			if err != nil {
				return nil, err
			}
			if oneShard != nil {
				measure(fmt.Sprintf("shards/apply-1shard-%s/dbg-x16", sc.name), func(workers int, b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, _, err := prep.ApplyContext(context.Background(), oneShard, workers); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			if realDelta != nil {
				opts := core.Options{K: 6}
				if _, err := core.ExtractPrepared(prep, opts); err != nil {
					return nil, err
				}
				measure(fmt.Sprintf("shards/warm-extract-%s/dbg-x16", sc.name), func(workers int, b *testing.B) {
					o := opts
					o.Parallelism = workers
					for i := 0; i < b.N; i++ {
						child, _, err := prep.ApplyContext(context.Background(), realDelta, workers)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := core.ExtractPrepared(child, o); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}

	// Out-of-core serving: the warm apply + re-extract round trip on the
	// same 11k-object graph, fully resident vs. under a memory budget that
	// keeps roughly two of the auto layout's shards resident (shards page
	// through spill files; phase pins hold the typing working set). The
	// resident result is the baseline the budgeted one is read against.
	{
		dbgX16, _ := dbg.Generate(dbg.Options{Scale: 16})
		realDelta := benchDelta(dbgX16, 0)
		probe, err := core.PrepareContext(context.Background(), dbgX16, 0, 0)
		if err != nil {
			return nil, err
		}
		var budget int64
		for si := 0; si < probe.NumShards(); si++ {
			if n := int64(len(probe.EncodeShard(si))); n > budget {
				budget = n
			}
		}
		budget *= 2
		for _, bc := range []struct {
			name      string
			memBudget int64
		}{{"resident", 0}, {"2shard", budget}} {
			prep, err := core.PrepareBudget(context.Background(), dbgX16, 0, 0, bc.memBudget)
			if err != nil {
				return nil, err
			}
			if realDelta == nil {
				break
			}
			opts := core.Options{K: 6, MemBudget: bc.memBudget}
			if _, err := core.ExtractPrepared(prep, opts); err != nil {
				return nil, err
			}
			measure(fmt.Sprintf("outofcore/warm-extract-%s/dbg-x16", bc.name), func(workers int, b *testing.B) {
				o := opts
				o.Parallelism = workers
				for i := 0; i < b.N; i++ {
					child, _, err := prep.ApplyContext(context.Background(), realDelta, workers)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := core.ExtractPrepared(child, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Batched write pipeline: an async burst against one durable HTTP delta
	// session (always-fsync WAL), accepted first and then committed by the
	// session's drainer, per-request (BatchMax 1 — the pre-queue pipeline, one
	// apply and one fsync per delta) against the batching queue (the drainer
	// lands the burst as one coalesced apply and one WAL group append). Cold =
	// per-request, warm = batched; both are normalized to ns per delta, so
	// WarmSpeedup is the throughput ratio.
	for _, burst := range []int{1, 16, 256} {
		var perDelta [2]int64
		for i, batchMax := range []int{1, 0} {
			dir, err := os.MkdirTemp("", "schemex-bench-")
			if err != nil {
				return nil, err
			}
			srv, id, err := mutateBurstServer(dir, batchMax)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			next := 0
			res := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if err := mutateBurst(srv.Handler(), id, next, burst); err != nil {
						b.Fatal(err)
					}
					next += burst
				}
			})
			srv.Close()
			os.RemoveAll(dir)
			perDelta[i] = res.NsPerOp() / int64(burst)
		}
		r := BenchResult{
			Name:        fmt.Sprintf("httpapi/mutate-burst/%d", burst),
			ColdNsPerOp: perDelta[0],
			WarmNsPerOp: perDelta[1],
		}
		if perDelta[1] > 0 {
			r.WarmSpeedup = float64(perDelta[0]) / float64(perDelta[1])
			r.DeltasPerSec = 1e9 / float64(perDelta[1])
		}
		rep.Results = append(rep.Results, r)
	}

	for _, scale := range []int{1, 4, 16} {
		db, roles := dbg.Generate(dbg.Options{Scale: scale})
		name := map[int]string{1: "pipeline/scale/dbg-x1", 4: "pipeline/scale/dbg-x4", 16: "pipeline/scale/dbg-x16"}[scale]
		measure(name, func(workers int, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor, Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	return rep, nil
}

// benchDelta builds a deterministic delta over db that stays on the
// incremental path: existing labels only, no atomic/complex flips, and an
// added edge that mirrors an existing one — an extra attribute edge when the
// template edge targets an atomic, an extra reference to an object already
// receiving that label when it targets a complex object — so the delta never
// changes the database's structural character (a bipartite shape stays
// bipartite). frac = 0 yields just that single added edge; otherwise
// max(1, frac*NumLinks) removals of evenly spaced existing edges ride along.
// Returns nil if db has no room for such a delta.
func benchDelta(db *graph.DB, frac float64) *graph.Delta {
	complexObjs := db.ComplexObjects()
	labels := db.Labels()
	if len(complexObjs) == 0 || len(labels) == 0 {
		return nil
	}
	d := &graph.Delta{}
	var added bool
	for _, from := range complexObjs {
		outs := db.Out(from)
		if len(outs) == 0 {
			continue
		}
		e := outs[0]
		if v, isAtomic := db.AtomicValue(e.To); isAtomic {
			// Mirror an attribute edge: one more e.Label attribute on from,
			// carried by a fresh atomic with the same value (hence sort).
			name := "bench_delta_atom"
			for n := 2; db.Lookup(name) != graph.NoObject; n++ {
				name = fmt.Sprintf("bench_delta_atom%d", n)
			}
			d.AddAtomic(name, v)
			d.AddLink(db.Name(from), name, e.Label)
			added = true
			break
		}
		// Mirror a reference edge: link from to another complex object that
		// already receives e.Label, so the edge fits the existing pattern.
		for _, o := range complexObjs {
			if o == from || o == e.To || db.HasEdge(from, o, e.Label) {
				continue
			}
			receives := false
			for _, in := range db.In(o) {
				if in.Label == e.Label {
					receives = true
					break
				}
			}
			if receives {
				d.AddLink(db.Name(from), db.Name(o), e.Label)
				added = true
				break
			}
		}
		if added {
			break
		}
	}
	if !added {
		return nil
	}
	if frac > 0 {
		n := int(frac * float64(db.NumLinks()))
		if n < 1 {
			n = 1
		}
		var edges []graph.Edge
		db.Links(func(e graph.Edge) { edges = append(edges, e) })
		// Count label occurrences so a removal never zeroes a label (which
		// would force the full-recompile fallback and muddy the comparison).
		occ := make(map[string]int, len(labels))
		for _, e := range edges {
			occ[e.Label]++
		}
		stride := len(edges) / n
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(edges) && n > 0; i += stride {
			e := edges[i]
			if occ[e.Label] <= 1 {
				continue
			}
			occ[e.Label]--
			d.RemoveLink(db.Name(e.From), db.Name(e.To), e.Label)
			n--
		}
	}
	return d
}

// mutateBurstServer builds a durable server (always-fsync WAL) holding one
// delta session over the DBG bibliography graph — big enough that each apply
// pays a real snapshot rebuild, which is the cost batching amortizes; batchMax
// 1 reproduces the pre-queue per-request write pipeline, 0 takes the batching
// defaults.
func mutateBurstServer(dir string, batchMax int) (*httpapi.Server, string, error) {
	// SpillEvery is pushed out of the way: snapshot spill cadence is the same
	// per delta in both configurations, and leaving it at the default would
	// bury the pipeline cost under periodic full-snapshot writes.
	srv, err := httpapi.NewServer(httpapi.Config{DataDir: dir, BatchMax: batchMax, SpillEvery: 1 << 20})
	if err != nil {
		return nil, "", err
	}
	db, _ := dbg.Generate(dbg.Options{})
	var data strings.Builder
	if err := db.Write(&data); err != nil {
		srv.Close()
		return nil, "", err
	}
	body, err := json.Marshal(map[string]string{"data": data.String()})
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/session", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		srv.Close()
		return nil, "", fmt.Errorf("creating bench session: %s", rec.Body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		srv.Close()
		return nil, "", err
	}
	return srv, info.ID, nil
}

// mutateBurst enqueues burst async mutations numbered from start — each a
// distinct two-link delta on existing dbg labels, so applies stay on the
// incremental path — then waits for the final job to reach a terminal state.
// The queue is FIFO and batches complete in order, so the last job terminal
// means the whole burst is committed durably.
func mutateBurst(h http.Handler, id string, start, burst int) error {
	var lastJob uint64
	for k := 0; k < burst; k++ {
		n := start + k
		delta := fmt.Sprintf("link bp%d bf%d author\nlink bf%d bp%d publication\n", n, n, n, n)
		body, err := json.Marshal(map[string]string{"delta": delta})
		if err != nil {
			return err
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/session/"+id+"/mutate?mode=async", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			return fmt.Errorf("mutate status %d: %s", rec.Code, rec.Body)
		}
		var js struct {
			Job uint64 `json:"job"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
			return err
		}
		lastJob = js.Job
	}
	for {
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/session/%s/job/%d", id, lastJob), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("job status %d: %s", rec.Code, rec.Body)
		}
		var js struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
			return err
		}
		switch js.Status {
		case "applied":
			return nil
		case "failed":
			return fmt.Errorf("job %d failed: %s", lastJob, js.Error)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// shardLocalDelta builds a delta whose whole object footprint sits below
// maxID: it removes and re-adds one existing edge with both endpoints in
// [0, maxID). The graph is unchanged after apply, but both endpoints count
// as touched, so the delta dirties exactly one shard in any layout whose
// shard size is >= maxID. Returns nil if no such edge exists.
func shardLocalDelta(db *graph.DB, maxID int) *graph.Delta {
	var found *graph.Edge
	db.Links(func(e graph.Edge) {
		if found == nil && int(e.From) < maxID && int(e.To) < maxID {
			c := e
			found = &c
		}
	})
	if found == nil {
		return nil
	}
	d := &graph.Delta{}
	d.RemoveLink(db.Name(found.From), db.Name(found.To), found.Label)
	d.AddLink(db.Name(found.From), db.Name(found.To), found.Label)
	return d
}

// WriteBenchJSON renders the report as indented JSON.
func WriteBenchJSON(w io.Writer, rep *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
