// Package experiments regenerates the paper's evaluation section: Table 1
// (eight synthetic datasets), Figure 1 (the DBG optimal typing program) and
// Figure 6 (the DBG sensitivity graph). cmd/experiments is a thin CLI over
// this package; the package is also exercised directly by tests and by the
// root benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"schemex/internal/core"
	"schemex/internal/dbg"
	"schemex/internal/synth"
)

// Table1Row is one measured row of Table 1 next to the paper's values.
type Table1Row struct {
	DBNo      int
	Bipartite bool
	Overlap   bool
	Perturbed bool
	Intended  int

	Objects      int
	Links        int
	PerfectTypes int
	OptimalTypes int
	Defect       int

	Paper synth.PaperRow
}

// Table1 runs the full pipeline on every preset and returns the rows. The
// eight datasets are independent, so they run in parallel; the row order is
// fixed.
func Table1() ([]Table1Row, error) {
	presets := synth.Presets()
	rows := make([]Table1Row, len(presets))
	errs := make([]error, len(presets))
	var wg sync.WaitGroup
	for i, p := range presets {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			db, err := p.Build()
			if err != nil {
				errs[i] = fmt.Errorf("DB%d: %v", p.DBNo, err)
				return
			}
			res, err := core.Extract(db, core.Options{K: p.Intended()})
			if err != nil {
				errs[i] = fmt.Errorf("DB%d: %v", p.DBNo, err)
				return
			}
			rows[i] = Table1Row{
				DBNo:         p.DBNo,
				Bipartite:    p.Bipartite(),
				Overlap:      p.Overlap(),
				Perturbed:    p.Perturb,
				Intended:     p.Intended(),
				Objects:      db.NumObjects(),
				Links:        db.NumLinks(),
				PerfectTypes: res.PerfectTypes,
				OptimalTypes: res.Program.Len(),
				Defect:       res.Defect.Total(),
				Paper:        p.Paper,
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WriteTable1 renders the rows in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Synthetic Data Results (measured vs paper)")
	fmt.Fprintln(w, "DB  Bip Ovl Per | Intnd |  Objects   |   Links    | Perfect    | Optimal | Defect")
	fmt.Fprintln(w, "                |       | meas paper | meas paper | meas paper |  types  | meas paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%2d   %s   %s   %s  |  %2d   | %4d %4d  | %4d %4d  | %4d %4d  |   %2d    | %4d %4d\n",
			r.DBNo, yn(r.Bipartite), yn(r.Overlap), yn(r.Perturbed), r.Intended,
			r.Objects, r.Paper.Objects,
			r.Links, r.Paper.Links,
			r.PerfectTypes, r.Paper.PerfectTypes,
			r.OptimalTypes,
			r.Defect, r.Paper.Defect)
	}
	fmt.Fprintln(w)
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// Figure1Result is the DBG optimal-typing experiment.
type Figure1Result struct {
	Stats        string
	PerfectTypes int
	OptimalTypes int
	Excess       int
	Deficit      int
	Program      string
}

// Figure1 extracts the six-type DBG typing, with final clusters renamed by
// the majority ground-truth role of their home objects (the way the paper's
// figure names its types).
func Figure1() (*Figure1Result, error) {
	db, roles := dbg.Generate(dbg.Options{})
	res, err := core.Extract(db, core.Options{K: 6, NameFor: roles.NameFor})
	if err != nil {
		return nil, err
	}
	RenameByMajorityRole(res, roles)
	return &Figure1Result{
		Stats:        db.Stats().String(),
		PerfectTypes: res.PerfectTypes,
		OptimalTypes: res.Program.Len(),
		Excess:       res.Defect.Excess,
		Deficit:      res.Defect.Deficit,
		Program:      res.Program.String(),
	}, nil
}

// WriteFigure1 renders the experiment.
func WriteFigure1(w io.Writer, r *Figure1Result) {
	fmt.Fprintf(w, "Figure 1: Optimal typing program for DBG data set (%s)\n", r.Stats)
	fmt.Fprintf(w, "perfect typing: %d types; optimal typing: %d types; defect %d (excess %d, deficit %d)\n\n",
		r.PerfectTypes, r.OptimalTypes, r.Excess+r.Deficit, r.Excess, r.Deficit)
	fmt.Fprint(w, r.Program)
	fmt.Fprintln(w)
}

// RenameByMajorityRole relabels the final clusters of a DBG extraction with
// the dominant ground-truth role of their home objects, disambiguating
// collisions.
func RenameByMajorityRole(res *core.Result, roles dbg.Roles) {
	counts := make([]map[string]int, res.Program.Len())
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	for o, hs := range res.Homes {
		for _, h := range hs {
			counts[h][roles[o]]++
		}
	}
	used := make(map[string]bool)
	for i, t := range res.Program.Types {
		best, bestN := t.Name, 0
		for role, n := range counts[i] {
			if role != "" && (n > bestN || (n == bestN && role < best)) {
				best, bestN = role, n
			}
		}
		name := best
		for n := 2; used[name]; n++ {
			name = fmt.Sprintf("%s%d", best, n)
		}
		used[name] = true
		t.Name = name
	}
}

// Figure6 runs the DBG sensitivity sweep.
func Figure6() (*core.SweepResult, error) {
	db, roles := dbg.Generate(dbg.Options{})
	return core.Sweep(db, core.Options{NameFor: roles.NameFor})
}

// WriteFigure6 renders the sweep in increasing-K order with the suggested
// elbow.
func WriteFigure6(w io.Writer, sw *core.SweepResult) {
	fmt.Fprintln(w, "Figure 6: Sensitivity graph for DBG data set")
	fmt.Fprintln(w, "types  defect  excess  deficit  total-distance")
	for i := len(sw.Points) - 1; i >= 0; i-- {
		p := sw.Points[i]
		fmt.Fprintf(w, "%5d  %6d  %6d  %7d  %14.1f\n", p.K, p.Defect, p.Excess, p.Deficit, p.TotalDistance)
	}
	fmt.Fprintf(w, "elbow (suggested number of types): %d (paper: optimal range 6-10)\n\n", sw.Knee())
}
