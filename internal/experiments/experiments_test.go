package experiments

import (
	"bytes"
	"strings"
	"testing"

	"schemex/internal/core"
)

// TestTable1Shape asserts the paper's Table 1 claims on the measured rows —
// this is the executable form of the reproduction record in EXPERIMENTS.md.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	byNo := map[int]Table1Row{}
	for _, r := range rows {
		byNo[r.DBNo] = r
		// The optimal typing always reaches the intended type count.
		if r.OptimalTypes != r.Intended {
			t.Errorf("DB%d: optimal %d != intended %d", r.DBNo, r.OptimalTypes, r.Intended)
		}
		// Counts stay within 15%% of the paper's.
		if !within(r.Objects, r.Paper.Objects, 15) || !within(r.Links, r.Paper.Links, 15) {
			t.Errorf("DB%d: objects/links %d/%d too far from paper %d/%d",
				r.DBNo, r.Objects, r.Links, r.Paper.Objects, r.Paper.Links)
		}
	}
	// Perturbation dramatically increases the number of perfect types...
	for _, pair := range [][2]int{{1, 2}, {3, 4}, {5, 6}, {7, 8}} {
		clean, pert := byNo[pair[0]], byNo[pair[1]]
		if pert.PerfectTypes <= clean.PerfectTypes {
			t.Errorf("DB%d->%d: perturbation did not increase perfect types (%d -> %d)",
				pair[0], pair[1], clean.PerfectTypes, pert.PerfectTypes)
		}
		// ...while the defect of the optimal typing moves moderately.
		if pert.Defect <= clean.Defect {
			t.Errorf("DB%d->%d: perturbation did not increase defect (%d -> %d)",
				pair[0], pair[1], clean.Defect, pert.Defect)
		}
		if pert.Defect > 3*clean.Defect {
			t.Errorf("DB%d->%d: defect exploded under slight perturbation (%d -> %d)",
				pair[0], pair[1], clean.Defect, pert.Defect)
		}
	}
	// Bipartite datasets have far fewer perfect types than non-bipartite.
	maxBip, minGen := 0, 1<<30
	for _, r := range rows {
		if r.Bipartite && r.PerfectTypes > maxBip {
			maxBip = r.PerfectTypes
		}
		if !r.Bipartite && r.PerfectTypes < minGen {
			minGen = r.PerfectTypes
		}
	}
	if minGen < 2*maxBip {
		t.Errorf("bipartite max %d not clearly below non-bipartite min %d", maxBip, minGen)
	}
}

func within(got, want, pct int) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff*100 <= want*pct
}

func TestWriteTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Table 1") || strings.Count(out, "\n") < 10 {
		t.Fatalf("table rendering suspicious:\n%s", out)
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfectTypes != 53 {
		t.Errorf("perfect types = %d, want 53", res.PerfectTypes)
	}
	if res.OptimalTypes != 6 {
		t.Errorf("optimal types = %d, want 6", res.OptimalTypes)
	}
	for _, role := range []string{"type project", "type db-person", "type student", "type publication", "type birthday", "type degree"} {
		if !strings.Contains(res.Program, role) {
			t.Errorf("program missing %q:\n%s", role, res.Program)
		}
	}
	var buf bytes.Buffer
	WriteFigure1(&buf, res)
	if !strings.Contains(buf.String(), "53 types") {
		t.Errorf("figure rendering suspicious:\n%s", buf.String())
	}
}

func TestFigure6Shape(t *testing.T) {
	sw, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	first := sw.Points[0]
	if first.K != 53 || first.Defect != 0 {
		t.Fatalf("sweep must start at the 53-type perfect typing with defect 0, got %+v", first)
	}
	last := sw.Points[len(sw.Points)-1]
	if last.K != 1 || last.Defect < 3*mustAt(t, sw, 6).Defect {
		t.Fatalf("defect at k=1 (%d) should dwarf the plateau", last.Defect)
	}
	knee := sw.Knee()
	if knee < 3 || knee > 13 {
		t.Errorf("knee = %d, expected near the paper's 6-10 range", knee)
	}
	var buf bytes.Buffer
	WriteFigure6(&buf, sw)
	if !strings.Contains(buf.String(), "suggested number of types") {
		t.Errorf("figure rendering suspicious")
	}
}

func mustAt(t *testing.T, sw *core.SweepResult, k int) core.SweepPoint {
	t.Helper()
	p, ok := sw.At(k)
	if !ok {
		t.Fatalf("no sweep point for k=%d", k)
	}
	return p
}
