package experiments

import "testing"

// benchMutateBurst drives one async mutation burst per op against a durable
// HTTP session — enqueue the whole burst, wait for the final job — at
// BatchMax 1 (the per-request pipeline) or 0 (the batching queue defaults).
// CI's bench-smoke runs both once to keep the write-pipeline path exercised
// under -race.
func benchMutateBurst(b *testing.B, burst, batchMax int) {
	srv, id, err := mutateBurstServer(b.TempDir(), batchMax)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mutateBurst(srv.Handler(), id, next, burst); err != nil {
			b.Fatal(err)
		}
		next += burst
	}
}

func BenchmarkMutateBurst16PerRequest(b *testing.B) { benchMutateBurst(b, 16, 1) }
func BenchmarkMutateBurst16Batched(b *testing.B)    { benchMutateBurst(b, 16, 0) }
