package experiments

import (
	"testing"

	"schemex/internal/core"
	"schemex/internal/synth"
)

// benchWarmExtract measures one whole-schema update over a session with
// retained state: Apply the delta, then re-extract warm-starting Stages 1–3.
// CI runs each of these once under the race detector (`make bench-smoke`) so
// the warm paths stay exercised with concurrency checking on.
func benchWarmExtract(b *testing.B, frac float64) {
	p := synth.Presets()[0]
	db, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{K: p.Intended()}
	prep, err := core.Prepare(db)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.ExtractPrepared(prep, opts); err != nil {
		b.Fatal(err)
	}
	d := benchDelta(db, frac)
	if d == nil {
		b.Skip("shape has no room for an incremental delta")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, _, err := prep.Apply(d)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.ExtractPrepared(child, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Program.Len() == 0 {
			b.Fatal("empty program")
		}
	}
}

func BenchmarkWarmExtract1Edge(b *testing.B) { benchWarmExtract(b, 0) }

func BenchmarkWarmExtract1Pct(b *testing.B) { benchWarmExtract(b, 0.01) }
