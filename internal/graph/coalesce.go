// Delta coalescing: canonicalize a burst of deltas into one equivalent delta
// so a batching write pipeline pays for one application instead of N. The
// rules are exact, not heuristic — MergeDeltas concatenation is equivalent to
// sequential application by construction (ApplyDelta processes ops in order
// and never looks at delta boundaries), and Coalesce only drops an op when a
// simulation of the sequential application against the target database proves
// the shorter delta reaches a bit-identical final state.
package graph

// MergeDeltas concatenates deltas into one, preserving op order. Applying the
// merged delta is equivalent to applying d1..dn in sequence — ApplyDelta
// processes ops one at a time, so the grouping never matters — except that a
// failing op aborts the whole merged application, where sequential
// application would keep the prefix deltas' effects. Callers that need
// per-delta error isolation must fall back to applying the originals one by
// one when the merged application fails.
func MergeDeltas(ds ...*Delta) *Delta {
	n := 0
	for _, d := range ds {
		if d != nil {
			n += len(d.ops)
		}
	}
	out := &Delta{ops: make([]deltaOp, 0, n)}
	for _, d := range ds {
		if d != nil {
			out.ops = append(out.ops, d.ops...)
		}
	}
	return out
}

// tripleKey addresses one potential link fact by name; the simulation tracks
// modified facts per key so presence checks stay exact for objects the delta
// creates or edits.
type tripleKey struct {
	from, to, label string
}

// edgeState is the simulated state of one link fact.
type edgeState struct {
	// present is the fact's presence in the sequential world after the ops
	// processed so far.
	present bool
	// srcOp, when >= 0, is a currently-kept AddLink op that established
	// present and whose drop (paired with a later remove) leaves the world
	// unchanged. -1 when presence is from the base database, from a pinned
	// (object-creating) add, or not cancellable.
	srcOp int
	// remOp, when >= 0, is a currently-kept RemoveLink op that removed a
	// previously-present fact and may cancel against a later re-add. -1 when
	// the absence is not restorable by dropping a pair (base-absent, cleared
	// by a kept RemoveObject, or guarded by an intervening AddAtomic whose
	// out-degree check relies on the absence).
	remOp int
}

// atomState is the simulated atomic declaration of one object.
type atomState struct {
	isAtomic bool
	val      Value
	// setOp, when >= 0, is a currently-kept AddAtomic op that declared the
	// value and may be dropped if a later RemoveObject clears it. -1 for
	// base-database declarations and pinned (object-creating) declarations.
	setOp int
}

// coalescer simulates sequential application of one delta against a base
// database, deciding per op whether dropping it (alone or as a cancelling
// pair) provably preserves the final state.
type coalescer struct {
	db      *DB
	ops     []deltaOp
	drop    []bool
	created map[string]bool
	edges   map[tripleKey]*edgeState
	// touched indexes tracked triples by endpoint name so RemoveObject and
	// AddAtomic can visit every fact the delta modified around one object.
	touched map[string][]tripleKey
	atoms   map[string]*atomState
	outDeg  map[string]int
}

// Coalesce returns a delta equivalent to d for application to db, with
// provable no-ops and cancelling pairs removed: an AddLink annulled by a later
// RemoveLink (and vice versa), idempotent re-adds and re-declarations, and
// ops a later RemoveObject subsumes. ok reports whether applying d to db
// would succeed; when false the sequential application fails partway and no
// coalesced delta is returned (the caller applies the originals individually
// to surface the exact per-delta error).
//
// When ok, applying the returned delta to db yields a database bit-identical
// to applying d (names interned in the same order, so ObjectIDs match), and
// object creations are never dropped: an op that interns a new name is kept
// even when a later op annuls its other effects, because sequential
// application leaves the created object in the universe.
func (d *Delta) Coalesce(db *DB) (*Delta, bool) {
	if len(d.ops) == 0 {
		return d, true
	}
	c := &coalescer{
		db:      db,
		ops:     d.ops,
		drop:    make([]bool, len(d.ops)),
		created: make(map[string]bool),
		edges:   make(map[tripleKey]*edgeState),
		touched: make(map[string][]tripleKey),
		atoms:   make(map[string]*atomState),
		outDeg:  make(map[string]int),
	}
	dropped := 0
	for i, op := range d.ops {
		var ok bool
		switch op.kind {
		case opAddLink:
			ok = c.addLink(i, op)
		case opRemoveLink:
			ok = c.removeLink(i, op)
		case opAddAtomic:
			ok = c.addAtomic(i, op)
		case opRemoveObject:
			ok = c.removeObject(i, op)
		}
		if !ok {
			return nil, false
		}
	}
	for _, dr := range c.drop {
		if dr {
			dropped++
		}
	}
	if dropped == 0 {
		return d, true
	}
	out := &Delta{ops: make([]deltaOp, 0, len(d.ops)-dropped)}
	for i, op := range d.ops {
		if !c.drop[i] {
			out.ops = append(out.ops, op)
		}
	}
	return out, true
}

func (c *coalescer) exists(name string) bool {
	return c.created[name] || c.db.Lookup(name) != NoObject
}

// edge returns the tracked state of one fact, initializing it from the base
// database on first touch.
func (c *coalescer) edge(from, to, label string) *edgeState {
	k := tripleKey{from, to, label}
	if st, ok := c.edges[k]; ok {
		return st
	}
	st := &edgeState{srcOp: -1, remOp: -1}
	if fid := c.db.Lookup(from); fid != NoObject {
		if tid := c.db.Lookup(to); tid != NoObject {
			st.present = c.db.hasEdge(fid, tid, label)
		}
	}
	c.edges[k] = st
	c.touched[from] = append(c.touched[from], k)
	if to != from {
		c.touched[to] = append(c.touched[to], k)
	}
	return st
}

func (c *coalescer) atom(name string) *atomState {
	if st, ok := c.atoms[name]; ok {
		return st
	}
	st := &atomState{setOp: -1}
	if id := c.db.Lookup(name); id != NoObject {
		if v, ok := c.db.atomic[id]; ok {
			st.isAtomic, st.val = true, v
		}
	}
	c.atoms[name] = st
	return st
}

func (c *coalescer) deg(name string) int {
	if d, ok := c.outDeg[name]; ok {
		return d
	}
	d := 0
	if id := c.db.Lookup(name); id != NoObject {
		d = len(c.db.out[id])
	}
	c.outDeg[name] = d
	return d
}

func (c *coalescer) addLink(i int, op deltaOp) bool {
	fNew := !c.exists(op.from)
	// ApplyDelta interns both endpoints before any check; a fresh from can
	// never be atomic, so only an existing one needs the constraint check.
	if !fNew && c.atom(op.from).isAtomic {
		return false // linking out of an atomic object fails sequentially
	}
	st := c.edge(op.from, op.to, op.label)
	if st.present {
		// Idempotent re-add: sequentially a silent no-op that interns nothing
		// (presence implies both endpoints already exist), so dropping it is
		// free.
		c.drop[i] = true
		return true
	}
	tNew := !c.exists(op.to)
	if fNew {
		c.created[op.from] = true
	}
	if tNew {
		c.created[op.to] = true
	}
	if st.remOp >= 0 {
		// This re-adds a fact a kept RemoveLink removed; dropping the pair
		// leaves the original presence standing, which is the same final
		// state. (remOp >= 0 implies the fact pre-existed, so both endpoints
		// exist and this op interns nothing.)
		c.drop[st.remOp] = true
		c.drop[i] = true
		st.present, st.srcOp, st.remOp = true, -1, -1
		c.outDeg[op.from] = c.deg(op.from) + 1
		return true
	}
	st.present, st.remOp = true, -1
	if fNew || tNew {
		// Pinned: dropping this op would lose the object creation (sequential
		// application leaves the interned object in the universe even if the
		// edge is later removed).
		st.srcOp = -1
	} else {
		st.srcOp = i
	}
	c.outDeg[op.from] = c.deg(op.from) + 1
	return true
}

func (c *coalescer) removeLink(i int, op deltaOp) bool {
	if !c.exists(op.from) || !c.exists(op.to) {
		return false // sequential application fails on the unknown name
	}
	st := c.edge(op.from, op.to, op.label)
	if !st.present {
		return false // removing a missing link fails sequentially
	}
	if st.srcOp >= 0 {
		// Annihilate the add/remove pair: neither op runs and the world is
		// exactly as before the add (the add was non-pinned, so no creation
		// is lost).
		c.drop[st.srcOp] = true
		c.drop[i] = true
		st.present, st.srcOp, st.remOp = false, -1, -1
	} else {
		st.present, st.srcOp, st.remOp = false, -1, i
	}
	c.outDeg[op.from] = c.deg(op.from) - 1
	return true
}

func (c *coalescer) addAtomic(i int, op deltaOp) bool {
	isNew := !c.exists(op.name)
	ast := c.atom(op.name)
	if !isNew {
		if ast.isAtomic {
			if ast.val != op.value {
				return false // conflicting value fails sequentially
			}
			// Idempotent re-declaration: a silent no-op that interns nothing.
			c.drop[i] = true
			return true
		}
		if c.deg(op.name) > 0 {
			return false // outgoing edges fail sequentially
		}
	}
	if isNew {
		c.created[op.name] = true
	}
	ast.isAtomic, ast.val = true, op.value
	if isNew {
		ast.setOp = -1 // pinned: dropping would lose the interned object
	} else {
		ast.setOp = i
	}
	// The kept op's out-degree check relies on every prior RemoveLink out of
	// this object staying in the delta: cancelling one against a later re-add
	// would leave the edge present when this op runs. Forbid the pairing.
	for _, k := range c.touched[op.name] {
		if k.from == op.name {
			if st := c.edges[k]; !st.present {
				st.remOp = -1
			}
		}
	}
	return true
}

func (c *coalescer) removeObject(i int, op deltaOp) bool {
	if !c.exists(op.name) {
		return false // unknown object fails sequentially
	}
	// Every fact incident to the object in the simulated world: the tracked
	// triples the delta already touched plus the base database's adjacency.
	seen := make(map[tripleKey]bool)
	var keys []tripleKey
	for _, k := range c.touched[op.name] {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	if id := c.db.Lookup(op.name); id != NoObject {
		for _, e := range c.db.out[id] {
			k := tripleKey{op.name, c.db.Name(e.To), e.Label}
			if !seen[k] {
				seen[k] = true
				c.edge(k.from, k.to, k.label)
				keys = append(keys, k)
			}
		}
		for _, e := range c.db.in[id] {
			k := tripleKey{c.db.Name(e.From), op.name, e.Label}
			if !seen[k] {
				seen[k] = true
				c.edge(k.from, k.to, k.label)
				keys = append(keys, k)
			}
		}
	}
	ast := c.atom(op.name)
	var present []tripleKey
	for _, k := range keys {
		if c.edges[k].present {
			present = append(present, k)
		}
	}
	if len(present) == 0 && !ast.isAtomic {
		// Sequentially a no-op: the object exists but has nothing to detach.
		// Dropping it keeps every pending pair-cancellation valid, because
		// the op clears nothing in either world.
		c.drop[i] = true
		return true
	}
	// Subsumption: everything this op would clear was itself established by
	// droppable delta ops, so the whole group (including this op) vanishes —
	// adds followed by a detach net out to nothing.
	subsumable := !ast.isAtomic || ast.setOp >= 0
	for _, k := range present {
		if c.edges[k].srcOp < 0 {
			subsumable = false
			break
		}
	}
	for _, k := range present {
		st := c.edges[k]
		if st.srcOp >= 0 {
			c.drop[st.srcOp] = true
		}
		st.present, st.srcOp, st.remOp = false, -1, -1
		c.outDeg[k.from] = c.deg(k.from) - 1
	}
	if ast.isAtomic && ast.setOp >= 0 {
		c.drop[ast.setOp] = true
	}
	ast.isAtomic, ast.setOp = false, -1
	c.outDeg[op.name] = 0
	if subsumable {
		c.drop[i] = true
		return true
	}
	// The op stays: it clears base-database (or pinned) state. Absent
	// incident facts lose their pending cancellation — re-adding such a fact
	// after this bulk clear must stay a real op, or the kept RemoveObject
	// would clear the base fact the dropped pair was supposed to preserve.
	for _, k := range keys {
		if st := c.edges[k]; !st.present {
			st.remOp = -1
		}
	}
	return true
}
