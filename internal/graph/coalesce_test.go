package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// serialize renders a DB in its canonical text form; bit-identical output is
// the equivalence oracle for the coalescing property tests.
func sval(s string) Value { return Value{Sort: SortString, Text: s} }

func serialize(t *testing.T, db *DB) string {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.String()
}

// coalesceBase builds the shared fixture: a small mixed graph with complex
// objects, atomic leaves, and a few parallel labels.
func coalesceBase() *DB {
	db := New()
	db.Link("root", "a", "child")
	db.Link("root", "b", "child")
	db.Link("a", "b", "peer")
	db.Link("b", "a", "peer")
	db.LinkAtom("a", "name", "a-name", "alice")
	db.LinkAtom("b", "name", "b-name", "bob")
	db.Atom("lone", "island")
	db.Freeze()
	return db
}

// applySeq applies deltas one at a time, returning the final DB or the first
// error.
func applySeq(db *DB, ds []*Delta) (*DB, error) {
	cur := db
	for _, d := range ds {
		next, _, err := cur.ApplyDelta(d)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// checkCoalesce is the core property: Coalesce(MergeDeltas(ds)) must succeed
// exactly when sequential application succeeds, and when it does, one
// application of the coalesced delta must land on a bit-identical database.
func checkCoalesce(t *testing.T, base *DB, ds []*Delta) {
	t.Helper()
	merged := MergeDeltas(ds...)
	seqDB, seqErr := applySeq(base, ds)
	co, ok := merged.Coalesce(base)
	if ok != (seqErr == nil) {
		t.Fatalf("Coalesce ok=%v but sequential err=%v\nmerged:\n%s", ok, seqErr, merged.String())
	}
	if !ok {
		// The merged delta must surface an error too, so callers can apply it
		// to learn that the batch fails.
		if _, _, err := base.ApplyDelta(merged); err == nil {
			t.Fatalf("Coalesce bailed but merged delta applied cleanly\nmerged:\n%s", merged.String())
		}
		return
	}
	if co.Len() > merged.Len() {
		t.Fatalf("coalesced delta grew: %d ops from %d", co.Len(), merged.Len())
	}
	coDB, _, err := base.ApplyDelta(co)
	if err != nil {
		t.Fatalf("coalesced delta failed: %v\nmerged:\n%s\ncoalesced:\n%s", err, merged.String(), co.String())
	}
	if got, want := coDB.NumObjects(), seqDB.NumObjects(); got != want {
		t.Fatalf("NumObjects=%d want %d\nmerged:\n%s\ncoalesced:\n%s", got, want, merged.String(), co.String())
	}
	if got, want := coDB.NumLinks(), seqDB.NumLinks(); got != want {
		t.Fatalf("NumLinks=%d want %d\nmerged:\n%s\ncoalesced:\n%s", got, want, merged.String(), co.String())
	}
	if got, want := serialize(t, coDB), serialize(t, seqDB); got != want {
		t.Fatalf("coalesced state diverges\nmerged:\n%s\ncoalesced:\n%s\n--- got ---\n%s\n--- want ---\n%s",
			merged.String(), co.String(), got, want)
	}
}

func TestMergeDeltasConcatenates(t *testing.T) {
	d1 := new(Delta).AddLink("x", "y", "l")
	d2 := new(Delta).RemoveLink("x", "y", "l").AddAtomic("z", sval("1"))
	m := MergeDeltas(d1, nil, d2)
	if m.Len() != 3 {
		t.Fatalf("Len=%d want 3", m.Len())
	}
	if got, want := m.String(), d1.String()+d2.String(); got != want {
		t.Fatalf("merged string %q want %q", got, want)
	}
	if MergeDeltas().Len() != 0 {
		t.Fatal("empty merge should be empty")
	}
}

func TestCoalesceDirected(t *testing.T) {
	v := sval("v")
	cases := []struct {
		name string
		ds   []*Delta
		// wantOps, when >= 0, pins the coalesced op count.
		wantOps int
	}{
		{
			name:    "add-remove cancels",
			ds:      []*Delta{new(Delta).AddLink("a", "lone", "tmp"), new(Delta).RemoveLink("a", "lone", "tmp")},
			wantOps: 0,
		},
		{
			name:    "remove-readd of base edge cancels",
			ds:      []*Delta{new(Delta).RemoveLink("a", "b", "peer"), new(Delta).AddLink("a", "b", "peer")},
			wantOps: 0,
		},
		{
			name:    "idempotent re-add drops",
			ds:      []*Delta{new(Delta).AddLink("a", "b", "peer")},
			wantOps: 0,
		},
		{
			name:    "idempotent atomic re-declaration drops",
			ds:      []*Delta{new(Delta).AddAtomic("lone", sval("island"))},
			wantOps: 0,
		},
		{
			name: "remove-object subsumes prior ops on fresh object",
			ds: []*Delta{
				new(Delta).AddLink("a", "fresh", "x").AddLink("fresh", "lone", "y"),
				new(Delta).RemoveObject("fresh"),
			},
			// The creating AddLink is pinned (it interns "fresh"), so the
			// RemoveObject must stay; only the second link nets out against
			// the bulk clear.
			wantOps: 2,
		},
		{
			name: "remove-object over base state kept",
			ds: []*Delta{
				new(Delta).AddLink("a", "b", "extra"),
				new(Delta).RemoveObject("b"),
			},
			wantOps: 1,
		},
		{
			name: "no-op remove-object drops",
			ds: []*Delta{
				new(Delta).AddLink("a", "lone2", "x"),
				new(Delta).RemoveLink("a", "lone2", "x"),
				new(Delta).RemoveObject("lone2"),
			},
			// lone2 is created (pinned add) and its only edge is removed
			// before the RemoveObject runs, so the RemoveObject clears
			// nothing and drops; the add/remove pair must stay (the add
			// interns lone2, so it is not cancellable).
			wantOps: 2,
		},
		{
			name: "remove-object between remove and re-add blocks cancellation",
			ds: []*Delta{
				new(Delta).RemoveLink("a", "b", "peer"),
				new(Delta).RemoveObject("a"),
				new(Delta).AddLink("a", "b", "peer"),
			},
			wantOps: -1,
		},
		{
			name: "atomic declaration after removing last out-edge",
			ds: []*Delta{
				new(Delta).RemoveLink("lone3", "lone", "only"),
				new(Delta).AddAtomic("lone3", v),
				new(Delta).AddLink("lone3", "lone", "only"),
			},
			// Sequentially the final AddLink fails: lone3 is atomic.
			wantOps: -1,
		},
	}
	base := coalesceBase()
	base2 := base.Clone()
	base2.Link("lone3", "lone", "only")
	base2.Freeze()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := base
			if tc.name == "atomic declaration after removing last out-edge" {
				b = base2
			}
			checkCoalesce(t, b, tc.ds)
			if tc.wantOps >= 0 {
				co, ok := MergeDeltas(tc.ds...).Coalesce(b)
				if !ok {
					t.Fatalf("expected ok")
				}
				if co.Len() != tc.wantOps {
					t.Fatalf("coalesced to %d ops, want %d:\n%s", co.Len(), tc.wantOps, co.String())
				}
			}
		})
	}
}

// TestCoalesceAtomicGuard pins the subtle hazard: a kept AddAtomic's
// out-degree check must not be invalidated by cancelling an earlier
// RemoveLink against a later re-add.
func TestCoalesceAtomicGuard(t *testing.T) {
	base := New()
	base.Link("x", "y", "l")
	base.Freeze()
	ds := []*Delta{
		new(Delta).RemoveLink("x", "y", "l"),
		new(Delta).AddAtomic("x", sval("v")),
	}
	// Sequentially fine; the coalesced delta must keep the RemoveLink or the
	// AddAtomic would hit x's base out-edge.
	checkCoalesce(t, base, ds)

	// And with a re-add after: sequentially the AddLink fails (x atomic), so
	// Coalesce must bail rather than cancel remove against re-add.
	ds = append(ds, new(Delta).AddLink("x", "y", "l"))
	checkCoalesce(t, base, ds)
}

func TestCoalesceErrors(t *testing.T) {
	base := coalesceBase()
	for _, tc := range []struct {
		name string
		ds   []*Delta
	}{
		{"remove missing link", []*Delta{new(Delta).RemoveLink("a", "b", "nope")}},
		{"remove unknown object", []*Delta{new(Delta).RemoveObject("ghost")}},
		{"link out of atomic", []*Delta{new(Delta).AddLink("a-name", "b", "l")}},
		{"atomic conflict", []*Delta{new(Delta).AddAtomic("lone", sval("other"))}},
		{"atomic on complex", []*Delta{new(Delta).AddAtomic("a", sval("v"))}},
		{"remove after remove-object", []*Delta{
			new(Delta).RemoveObject("lone"),
			new(Delta).AddAtomic("lone", sval("back")),
			new(Delta).RemoveLink("lone", "a", "l"),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) { checkCoalesce(t, base, tc.ds) })
	}
}

// randomDeltas generates a random op sequence over a tiny name universe and
// splits it into 1–4 deltas. Ops are intentionally allowed to be invalid so
// the bail-vs-sequential-error property is exercised.
func randomDeltas(rng *rand.Rand) []*Delta {
	names := []string{"root", "a", "b", "a-name", "lone", "n1", "n2", "n3"}
	labels := []string{"child", "peer", "name", "l1", "l2"}
	values := []Value{sval("alice"), sval("island"), sval("v1"), sval("v2")}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	nOps := 1 + rng.Intn(14)
	cuts := rng.Intn(4)
	var ds []*Delta
	d := new(Delta)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			d.AddLink(pick(names), pick(names), pick(labels))
		case 4, 5, 6:
			d.RemoveLink(pick(names), pick(names), pick(labels))
		case 7, 8:
			d.AddAtomic(pick(names), values[rng.Intn(len(values))])
		default:
			d.RemoveObject(pick(names))
		}
		if cuts > 0 && rng.Intn(nOps) < 2 {
			ds = append(ds, d)
			d = new(Delta)
			cuts--
		}
	}
	ds = append(ds, d)
	return ds
}

func TestCoalesceRandom(t *testing.T) {
	base := coalesceBase()
	okCount, bailCount := 0, 0
	for seed := int64(0); seed < 1500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDeltas(rng)
		checkCoalesce(t, base, ds)
		if _, ok := MergeDeltas(ds...).Coalesce(base); ok {
			okCount++
		} else {
			bailCount++
		}
	}
	// Sanity: the generator must exercise both outcomes.
	if okCount == 0 || bailCount == 0 {
		t.Fatalf("degenerate generator: ok=%d bail=%d", okCount, bailCount)
	}
}

// TestCoalesceChainRandom layers random deltas on top of states that were
// themselves produced by coalesced application, catching drift that only
// shows after repeated rounds.
func TestCoalesceChainRandom(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(1_000_000 + seed))
		cur := coalesceBase()
		for round := 0; round < 4; round++ {
			ds := randomDeltas(rng)
			checkCoalesce(t, cur, ds)
			co, ok := MergeDeltas(ds...).Coalesce(cur)
			if !ok {
				continue
			}
			next, _, err := cur.ApplyDelta(co)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			cur = next
		}
	}
}

func TestCoalesceNoDropReturnsSame(t *testing.T) {
	base := coalesceBase()
	d := new(Delta).AddLink("n1", "n2", "l1")
	co, ok := d.Coalesce(base)
	if !ok || co != d {
		t.Fatalf("expected identity return, got %p ok=%v (d=%p)", co, ok, d)
	}
	empty := new(Delta)
	co, ok = empty.Coalesce(base)
	if !ok || co != empty {
		t.Fatal("empty delta must coalesce to itself")
	}
}
