package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// A Delta is an ordered batch of mutations against a database: added and
// removed link facts, new atomic declarations, and object detachments.
// Objects are addressed by name so a delta can both reference existing
// objects and introduce new ones; names unknown to the target database are
// interned on application (the data model's IDs are dense and append-only,
// so new objects never renumber existing ones).
//
// Deltas are applied with DB.ApplyDelta, which leaves the receiver untouched
// and returns a structurally-shared copy — the foundation of the incremental
// extraction sessions in internal/compile and internal/core.
type Delta struct {
	ops []deltaOp
}

type deltaKind uint8

const (
	opAddLink deltaKind = iota
	opRemoveLink
	opAddAtomic
	opRemoveObject
)

type deltaOp struct {
	kind            deltaKind
	from, to, label string // link ops
	name            string // atomic / remove ops
	value           Value  // atomic op
}

// AddLink records the fact link(from, to, label) for application. Unknown
// names are interned as complex objects when the delta is applied.
func (d *Delta) AddLink(from, to, label string) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opAddLink, from: from, to: to, label: label})
	return d
}

// RemoveLink records the removal of link(from, to, label). Applying a delta
// that removes a missing link is an error.
func (d *Delta) RemoveLink(from, to, label string) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opRemoveLink, from: from, to: to, label: label})
	return d
}

// AddAtomic declares name as an atomic object holding v. Applying the delta
// fails if the object has outgoing edges or already holds a different value.
func (d *Delta) AddAtomic(name string, v Value) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opAddAtomic, name: name, value: v})
	return d
}

// RemoveObject detaches the named object: every incident link and any atomic
// value is removed. The object itself stays interned (IDs are dense and
// never reclaimed), so it survives as an isolated complex object; compiling
// the mutated database sees exactly that.
func (d *Delta) RemoveObject(name string) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opRemoveObject, name: name})
	return d
}

// Len reports the number of recorded operations.
func (d *Delta) Len() int { return len(d.ops) }

// ForEachName calls f with every object name the delta references, in op
// order (link ops yield both endpoints; duplicates are not suppressed).
// This is the delta's object footprint: resolved against a database, it
// bounds which objects — and so which snapshot shards — an application can
// touch, which is what lets a serving layer admit mutations under
// per-shard locks. Note RemoveObject touches the named object's neighbours
// too; those are link endpoints of *existing* links, so footprint users
// must widen removals with the database's adjacency (via
// ForEachRemovedObject) or treat any unresolvable name as "anywhere".
func (d *Delta) ForEachName(f func(name string)) {
	for _, op := range d.ops {
		switch op.kind {
		case opAddLink, opRemoveLink:
			f(op.from)
			f(op.to)
		default:
			f(op.name)
		}
	}
}

// ForEachRemovedObject calls f with the name of every RemoveObject op, in
// op order. Footprint computations widen these with the target database's
// adjacency, because detaching an object also rewrites its neighbours'
// edge lists.
func (d *Delta) ForEachRemovedObject(f func(name string)) {
	for _, op := range d.ops {
		if op.kind == opRemoveObject {
			f(op.name)
		}
	}
}

// String renders the delta in the line format understood by ParseDelta.
func (d *Delta) String() string {
	var sb strings.Builder
	for _, op := range d.ops {
		switch op.kind {
		case opAddLink:
			fmt.Fprintf(&sb, "link %s %s %s\n", quoteField(op.from), quoteField(op.to), quoteField(op.label))
		case opRemoveLink:
			fmt.Fprintf(&sb, "unlink %s %s %s\n", quoteField(op.from), quoteField(op.to), quoteField(op.label))
		case opAddAtomic:
			fmt.Fprintf(&sb, "atomic %s %s %s\n", quoteField(op.name), op.value.Sort, quoteField(op.value.Text))
		case opRemoveObject:
			fmt.Fprintf(&sb, "remove %s\n", quoteField(op.name))
		}
	}
	return sb.String()
}

// ParseDelta reads the line-oriented delta format, a superset of the graph
// text format's record syntax:
//
//	# comment
//	link <from> <to> <label>
//	unlink <from> <to> <label>
//	atomic <obj> <sort> <value>
//	remove <obj>
//
// Fields are quoted with Go string-literal syntax when they contain spaces.
func ParseDelta(r io.Reader) (*Delta, error) {
	d := &Delta{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("graph: delta line %d: %v", lineNo, err)
		}
		switch fields[0] {
		case "link", "unlink":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: delta line %d: %s needs 3 fields, got %d", lineNo, fields[0], len(fields)-1)
			}
			if fields[0] == "link" {
				d.AddLink(fields[1], fields[2], fields[3])
			} else {
				d.RemoveLink(fields[1], fields[2], fields[3])
			}
		case "atomic":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: delta line %d: atomic needs 3 fields, got %d", lineNo, len(fields)-1)
			}
			s, err := parseSort(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: delta line %d: %v", lineNo, err)
			}
			d.AddAtomic(fields[1], Value{Sort: s, Text: fields[3]})
		case "remove":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: delta line %d: remove needs 1 field, got %d", lineNo, len(fields)-1)
			}
			d.RemoveObject(fields[1])
		default:
			return nil, fmt.Errorf("graph: delta line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseDeltaString is ParseDelta over a string.
func ParseDeltaString(src string) (*Delta, error) {
	return ParseDelta(strings.NewReader(src))
}

// DeltaEffect summarizes what applying a delta changed, in the terms the
// incremental compiler and fixpoint maintenance need: which objects had
// their local neighborhood edited, how the object universe grew, whether the
// label universe may have changed, and whether any existing object switched
// between atomic and complex (which shifts dense complex positions and
// forces a full recompile).
type DeltaEffect struct {
	// Touched lists, in ascending ID order, every object whose incident edge
	// set or atomic value changed — the endpoints of added and removed links,
	// freshly declared atomics, and detached objects — plus every object
	// created by the delta.
	Touched []ObjectID
	// OldObjects is the object count before application; IDs >= OldObjects
	// are new.
	OldObjects int
	// AddedLinks and RemovedLinks count the link facts that actually changed
	// (idempotent re-adds are not counted).
	AddedLinks, RemovedLinks int
	// LabelDelta maps each edge label whose occurrence count changed to the
	// net change. The compiler uses it to detect label-universe growth or
	// shrinkage, either of which renumbers label IDs.
	LabelDelta map[string]int
	// Flipped reports that an existing object changed between atomic and
	// complex (an atomic was detached, or a link-target-only object was
	// declared atomic).
	Flipped bool
}

// ApplyDelta applies d to a structurally-shared copy of db and returns the
// copy: per-object edge slices are shared with the receiver and copied only
// for objects the delta touches, so the cost is proportional to the delta's
// neighborhood plus O(objects) slice headers — not to the database size. The
// receiver is never mutated and every snapshot compiled from it stays valid.
//
// Operations apply in order; the first constraint violation (linking out of
// an atomic object, conflicting atomic values, removing a missing link or
// unknown object) aborts with an error and no database is returned.
func (db *DB) ApplyDelta(d *Delta) (*DB, *DeltaEffect, error) {
	db.ensureSorted() // child shares parent slices; flush lazy sorting first
	c := &DB{
		// Clipped append-only shares: growing reallocates, never writes the
		// parent's backing array.
		names:  db.names[:len(db.names):len(db.names)],
		byName: db.byName, // copied on first new name
		atomic: db.atomic, // copied on first atomic change
		out:    append(make([][]Edge, 0, len(db.out)+d.Len()), db.out...),
		in:     append(make([][]Edge, 0, len(db.in)+d.Len()), db.in...),
		nLinks: db.nLinks,
		dirty:  make(map[ObjectID]bool),
	}
	eff := &DeltaEffect{OldObjects: db.NumObjects(), LabelDelta: make(map[string]int)}
	touched := make(map[ObjectID]bool)
	owned := make(map[ObjectID]bool)
	ownsNames, ownsAtomic := false, false

	intern := func(name string) ObjectID {
		if id, ok := c.byName[name]; ok {
			return id
		}
		if !ownsNames {
			m := make(map[string]ObjectID, len(c.byName)+d.Len())
			for n, id := range c.byName {
				m[n] = id
			}
			c.byName = m
			ownsNames = true
		}
		id := ObjectID(len(c.names))
		c.names = append(c.names, name)
		c.byName[name] = id
		c.out = append(c.out, nil)
		c.in = append(c.in, nil)
		owned[id] = true
		touched[id] = true
		return id
	}
	own := func(o ObjectID) {
		if owned[o] {
			return
		}
		// Exact-capacity copies: a later append reallocates instead of
		// writing into the shared parent backing array.
		c.out[o] = append(make([]Edge, 0, len(c.out[o])), c.out[o]...)
		c.in[o] = append(make([]Edge, 0, len(c.in[o])), c.in[o]...)
		owned[o] = true
	}
	ownAtomic := func() {
		if ownsAtomic {
			return
		}
		m := make(map[ObjectID]Value, len(c.atomic)+1)
		for o, v := range c.atomic {
			m[o] = v
		}
		c.atomic = m
		ownsAtomic = true
	}
	removeEdge := func(from, to ObjectID, label string) bool {
		own(from)
		own(to)
		outs := c.out[from]
		removed := false
		for i, e := range outs {
			if e.To == to && e.Label == label {
				c.out[from] = append(outs[:i:i], outs[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return false
		}
		ins := c.in[to]
		for i, e := range ins {
			if e.From == from && e.Label == label {
				c.in[to] = append(ins[:i:i], ins[i+1:]...)
				break
			}
		}
		c.nLinks--
		eff.RemovedLinks++
		eff.LabelDelta[label]--
		touched[from] = true
		touched[to] = true
		return true
	}

	for i, op := range d.ops {
		switch op.kind {
		case opAddLink:
			from := intern(op.from)
			to := intern(op.to)
			if _, ok := c.atomic[from]; ok {
				return nil, nil, fmt.Errorf("graph: delta op %d: %q is atomic and cannot have outgoing edges", i, op.from)
			}
			if c.hasEdge(from, to, op.label) {
				continue // the model keeps at most one ℓ-edge per pair
			}
			own(from)
			own(to)
			e := Edge{From: from, To: to, Label: op.label}
			c.out[from] = append(c.out[from], e)
			c.in[to] = append(c.in[to], e)
			c.nLinks++
			c.dirty[from] = true
			c.dirty[to] = true
			eff.AddedLinks++
			eff.LabelDelta[op.label]++
			touched[from] = true
			touched[to] = true
		case opRemoveLink:
			from, okF := c.byName[op.from]
			to, okT := c.byName[op.to]
			if !okF || !okT || !removeEdge(from, to, op.label) {
				return nil, nil, fmt.Errorf("graph: delta op %d: link(%s, %s, %s) not present", i, op.from, op.to, op.label)
			}
		case opAddAtomic:
			o := intern(op.name)
			if len(c.out[o]) > 0 {
				return nil, nil, fmt.Errorf("graph: delta op %d: %q has outgoing edges and cannot be atomic", i, op.name)
			}
			if old, ok := c.atomic[o]; ok {
				if old != op.value {
					return nil, nil, fmt.Errorf("graph: delta op %d: %q already has value %q", i, op.name, old.Text)
				}
				continue
			}
			ownAtomic()
			c.atomic[o] = op.value
			touched[o] = true
		case opRemoveObject:
			o, ok := c.byName[op.name]
			if !ok {
				return nil, nil, fmt.Errorf("graph: delta op %d: unknown object %q", i, op.name)
			}
			own(o)
			for len(c.out[o]) > 0 {
				e := c.out[o][0]
				removeEdge(e.From, e.To, e.Label)
			}
			for len(c.in[o]) > 0 {
				e := c.in[o][0]
				removeEdge(e.From, e.To, e.Label)
			}
			if _, ok := c.atomic[o]; ok {
				ownAtomic()
				delete(c.atomic, o)
				touched[o] = true
			}
		}
	}

	for o := range touched {
		eff.Touched = append(eff.Touched, o)
		if int(o) < eff.OldObjects && db.IsAtomic(o) != c.IsAtomic(o) {
			eff.Flipped = true
		}
	}
	sort.Slice(eff.Touched, func(i, j int) bool { return eff.Touched[i] < eff.Touched[j] })
	for l, n := range eff.LabelDelta {
		if n == 0 {
			delete(eff.LabelDelta, l)
		}
	}
	return c, eff, nil
}
