package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// nastyNames is the pool of object/label names the round-trip property draws
// from: everything the quoting layer must survive — spaces, tabs, embedded
// quotes and backslashes, unicode, control characters, comment markers, and
// the empty string.
var nastyNames = []string{
	"plain",
	"with space",
	"tab\there",
	"newline\ninside",
	`quote"inside`,
	`back\slash`,
	`both "\ mixed`,
	"ünïcødé-名前",
	"#looks-like-comment",
	"",
	" leading",
	"trailing ",
	"\x00nul",
	"\x7f",
	"  ",
	`"`,
	`\`,
	"emoji 🙂 field",
	"semi;colon and 'single'",
	"very-long-" + strings.Repeat("x", 200),
}

func randName(rng *rand.Rand) string {
	return nastyNames[rng.Intn(len(nastyNames))]
}

// randDelta builds a delta of n random operations over the nasty name pool.
func randDelta(rng *rand.Rand, n int) *Delta {
	sorts := []Sort{SortString, SortInt, SortFloat, SortBool}
	d := &Delta{}
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			d.AddLink(randName(rng), randName(rng), randName(rng))
		case 1:
			d.RemoveLink(randName(rng), randName(rng), randName(rng))
		case 2:
			d.AddAtomic(randName(rng), Value{Sort: sorts[rng.Intn(len(sorts))], Text: randName(rng)})
		case 3:
			d.RemoveObject(randName(rng))
		}
	}
	return d
}

// TestDeltaStringRoundTrip is the serialization property the write-ahead log
// depends on: for any delta, ParseDelta(d.String()) reproduces d exactly —
// same operations, same order, same field bytes. The WAL stores deltas as
// their String() rendering, so recovery is only as faithful as this property.
func TestDeltaStringRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 50; round++ {
			d := randDelta(rng, rng.Intn(12)) // includes empty batches
			text := d.String()
			got, err := ParseDeltaString(text)
			if err != nil {
				t.Fatalf("seed %d: ParseDelta(%q): %v", seed, text, err)
			}
			if !reflect.DeepEqual(got.ops, d.ops) {
				t.Fatalf("seed %d: round trip changed the delta:\n in: %#v\nout: %#v\ntext: %q",
					seed, d.ops, got.ops, text)
			}
			// String must be a fixpoint: re-rendering the parsed delta
			// yields byte-identical text (the WAL frames are content-
			// addressed by CRC, so the rendering must be stable).
			if again := got.String(); again != text {
				t.Fatalf("seed %d: String not a fixpoint:\n%q\nvs\n%q", seed, text, again)
			}
		}
	}
}

// TestDeltaRoundTripEmptyBatch pins the degenerate case explicitly: an empty
// delta renders to "" and parses back to zero operations.
func TestDeltaRoundTripEmptyBatch(t *testing.T) {
	d := &Delta{}
	if s := d.String(); s != "" {
		t.Fatalf("empty delta renders %q", s)
	}
	got, err := ParseDeltaString("")
	if err != nil || got.Len() != 0 {
		t.Fatalf("parse empty: %v, %d ops", err, got.Len())
	}
}

// TestDeltaRoundTripRemoveOrdering checks that operation order survives the
// round trip even when it is semantically load-bearing: remove-then-link and
// link-then-remove are different programs and must stay different.
func TestDeltaRoundTripRemoveOrdering(t *testing.T) {
	a := (&Delta{}).RemoveObject("x").AddLink("x", "y", "l")
	b := (&Delta{}).AddLink("x", "y", "l").RemoveObject("x")
	pa, err := ParseDeltaString(a.String())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ParseDeltaString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa.ops, a.ops) || !reflect.DeepEqual(pb.ops, b.ops) {
		t.Fatal("ordering lost in round trip")
	}
	if reflect.DeepEqual(pa.ops, pb.ops) {
		t.Fatal("distinct orderings collapsed")
	}

	// Applied to a real database the two orderings genuinely diverge
	// (remove-then-link leaves the relinked edge; link-then-remove detaches
	// everything), so collapsing them would corrupt a replayed session.
	db := New()
	db.Link("x", "y", "l0")
	da, _, err := db.ApplyDelta(pa)
	if err != nil {
		t.Fatal(err)
	}
	dbb, _, err := db.ApplyDelta(pb)
	if err != nil {
		t.Fatal(err)
	}
	if da.NumLinks() == dbb.NumLinks() {
		t.Fatalf("orderings should differ when applied: %d vs %d links", da.NumLinks(), dbb.NumLinks())
	}
}
