package graph

import (
	"strings"
	"testing"
)

func deltaBase(t *testing.T) *DB {
	t.Helper()
	db := New()
	link := func(from, to, label string) {
		if err := db.AddLink(db.Intern(from), db.Intern(to), label); err != nil {
			t.Fatal(err)
		}
	}
	link("r", "x", "member")
	link("r", "y", "member")
	if err := db.SetAtomic(db.Intern("x.v"), Value{Sort: SortInt, Text: "1"}); err != nil {
		t.Fatal(err)
	}
	link("x", "x.v", "val")
	return db
}

func edgeStrings(db *DB) string {
	var b strings.Builder
	db.Links(func(e Edge) {
		b.WriteString(db.Name(e.From) + "-" + e.Label + "->" + db.Name(e.To) + "\n")
	})
	return b.String()
}

// TestApplyDeltaCopyOnWrite checks the parent is byte-for-byte untouched by a
// child's delta, and that two siblings mutating the same object's edge lists
// do not corrupt each other (each owns exact-capacity copies).
func TestApplyDeltaCopyOnWrite(t *testing.T) {
	db := deltaBase(t)
	before := edgeStrings(db)
	stats := db.Stats()

	var d1, d2 Delta
	d1.AddLink("r", "z1", "member")
	d2.AddLink("r", "z2", "member")
	c1, eff1, err := db.ApplyDelta(&d1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := db.ApplyDelta(&d2)
	if err != nil {
		t.Fatal(err)
	}
	if got := edgeStrings(db); got != before {
		t.Fatalf("parent edges changed:\n%s\nvs\n%s", got, before)
	}
	if db.Stats() != stats {
		t.Fatal("parent stats changed")
	}
	if strings.Contains(edgeStrings(c1), "z2") || strings.Contains(edgeStrings(c2), "z1") {
		t.Fatal("sibling edits leaked across children")
	}
	if len(eff1.Touched) != 2 || eff1.OldObjects != db.NumObjects() {
		t.Fatalf("effect = %+v", eff1)
	}
	if eff1.LabelDelta["member"] != 1 {
		t.Fatalf("label delta = %v", eff1.LabelDelta)
	}
}

// TestApplyDeltaSemantics covers the documented edge semantics: idempotent
// re-adds, error on removing missing links, atomic conflicts, and object
// detachment flipping atomics to isolated complex objects.
func TestApplyDeltaSemantics(t *testing.T) {
	db := deltaBase(t)

	var reAdd Delta
	reAdd.AddLink("r", "x", "member")
	c, eff, err := db.ApplyDelta(&reAdd)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLinks() != db.NumLinks() || len(eff.Touched) != 0 || eff.AddedLinks != 0 {
		t.Fatalf("idempotent re-add not a no-op: links %d->%d, eff %+v",
			db.NumLinks(), c.NumLinks(), eff)
	}

	for name, bad := range map[string]func(d *Delta){
		"remove-missing-link": func(d *Delta) { d.RemoveLink("r", "x", "nope") },
		"remove-unknown-obj":  func(d *Delta) { d.RemoveObject("ghost") },
		"atomic-conflict":     func(d *Delta) { d.AddAtomic("x.v", Value{Sort: SortInt, Text: "2"}) },
		"atomic-on-complex":   func(d *Delta) { d.AddAtomic("x", Value{Sort: SortInt, Text: "2"}) },
	} {
		var d Delta
		bad(&d)
		if _, _, err := db.ApplyDelta(&d); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	var same Delta
	same.AddAtomic("x.v", Value{Sort: SortInt, Text: "1"})
	if _, _, err := db.ApplyDelta(&same); err != nil {
		t.Fatalf("re-declaring identical atomic value: %v", err)
	}

	var detach Delta
	detach.RemoveObject("x.v")
	c, eff, err = db.ApplyDelta(&detach)
	if err != nil {
		t.Fatal(err)
	}
	o := c.Intern("x.v")
	if c.IsAtomic(o) || len(c.In(o)) != 0 || len(c.Out(o)) != 0 {
		t.Fatal("detached atomic should be an isolated complex object")
	}
	if !eff.Flipped {
		t.Fatal("effect did not report the atomic→complex flip")
	}
	if !db.IsAtomic(db.Intern("x.v")) {
		t.Fatal("parent lost its atomic")
	}
}

// TestParseDeltaErrors checks malformed delta text is rejected with the line
// context, and comments/blank lines are skipped.
func TestParseDeltaErrors(t *testing.T) {
	good := "# comment\n\nlink a b l\nunlink a b l\natomic v int 3\nremove a\n"
	d, err := ParseDeltaString(good)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("len = %d, want 4", d.Len())
	}
	for _, bad := range []string{
		"link a b",           // missing label
		"atomic v wat 3",     // unknown sort
		"explode a",          // unknown verb
		"remove",             // missing operand
		"link a b l extra",   // trailing field
		"atomic v int",       // missing value
		"unlink a b l extra", // trailing field
	} {
		if _, err := ParseDeltaString(bad); err == nil {
			t.Errorf("%q: expected parse error", bad)
		}
	}
}
