package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseOEM checks the OEM parser never panics and that whatever it
// accepts yields a valid database that survives a text-format round trip.
func FuzzParseOEM(f *testing.F) {
	seeds := []string{
		`&a { b: 1 }`,
		`&a { x: *b } &b { y: "s" }`,
		`{ nested: { deep: true }, arr: 1, arr2: "x" }`,
		`&a { "quoted label": "v", t: 3.5 }`,
		`# comment only`,
		`&a {} &b { r: *a, r2: *a }`,
		`*forward`,
		`&x { a: 1, }`,
		// Adversarial shapes: deep nesting, giant labels, and cyclic or
		// reference-heavy *name documents.
		strings.Repeat("{ a: ", 64) + "1" + strings.Repeat(" }", 64),
		"&a { " + strings.Repeat("x", 1<<12) + ": 1 }",
		`&a { "` + strings.Repeat("y", 1<<10) + `": *a }`,
		`&a { next: *b } &b { next: *c } &c { next: *a, back: *b, self: *c }`,
		"&r {" + strings.Repeat(" m: *r,", 200) + " }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ParseOEMString(src)
		if err != nil {
			return
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("parsed db invalid: %v (input %q)", verr, src)
		}
		var buf bytes.Buffer
		if err := db.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("serialized form does not re-read: %v", err)
		}
	})
}

// FuzzReadText checks the line-format reader never panics and its accepted
// output is valid and round-trips.
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"link a b l\natomic c string v\n",
		"obj lonely\n# comment\nlink a \"b c\" \"l l\"\n",
		"atomic x int 42\natomic y bool true\n",
		"link a b l\nlink a b l2\nlink b c l\n",
		// Adversarial shapes: giant field values and duplicate records.
		"link " + strings.Repeat("a", 1<<12) + " b " + strings.Repeat("l", 1<<12) + "\n",
		"atomic huge string \"" + strings.Repeat("v", 1<<10) + "\"\n",
		"link a a self\nlink a a self\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := db.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if back.NumLinks() != db.NumLinks() || back.NumObjects() != db.NumObjects() {
			t.Fatalf("round trip changed counts")
		}
	})
}

// FuzzFromJSON checks the JSON loader never panics on arbitrary documents
// and always produces valid databases.
func FuzzFromJSON(f *testing.F) {
	seeds := []string{
		`{"a": 1}`,
		`{"a": [1, "x", true, null], "b": {"c": 2.5}}`,
		`[[1, 2], [3]]`,
		`"bare string"`,
		`{"deep": {"deeper": {"deepest": [{"x": 1}]}}}`,
		// Adversarial shapes: deep nesting and giant keys/values.
		strings.Repeat(`{"a":`, 64) + `1` + strings.Repeat(`}`, 64),
		strings.Repeat(`[`, 128) + strings.Repeat(`]`, 128),
		`{"` + strings.Repeat("k", 1<<12) + `": "` + strings.Repeat("v", 1<<12) + `"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, _, err := FromJSON(strings.NewReader(src), "root")
		if err != nil {
			return
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("json-loaded db invalid: %v (input %q)", verr, src)
		}
	})
}
