// Package graph implements the semistructured data model of Nestorov,
// Abiteboul and Motwani (SIGMOD 1998): a labeled directed graph stored as two
// base relations,
//
//	link(FromObj, ToObj, Label)
//	atomic(Obj, Value)
//
// subject to the paper's two integrity constraints: (i) Obj is a key in
// atomic (each atomic object has exactly one value), and (ii) the first
// projections of link and atomic are disjoint (atomic objects have no
// outgoing edges). For a given label there is at most one edge between a
// given pair of objects.
//
// Objects are interned: user-facing string names map to dense ObjectIDs so
// that the typing algorithms can use slice-indexed tables and bitsets.
package graph

import (
	"fmt"
	"sort"
)

// ObjectID identifies an object in a DB. IDs are dense: they are assigned
// 0,1,2,... in order of first mention, so they can index slices.
type ObjectID int

// NoObject is returned by lookups that find nothing.
const NoObject ObjectID = -1

// Edge is one link fact: an edge labeled Label from From to To.
type Edge struct {
	From  ObjectID
	To    ObjectID
	Label string
}

// Sort classifies atomic values (the Remark 2.1 extension). The typing
// algorithms treat all atomic objects as a single type; sorts are available
// for applications that want finer atomic domains.
type Sort int

// Atomic value sorts.
const (
	SortString Sort = iota
	SortInt
	SortFloat
	SortBool
)

func (s Sort) String() string {
	switch s {
	case SortString:
		return "string"
	case SortInt:
		return "int"
	case SortFloat:
		return "float"
	case SortBool:
		return "bool"
	default:
		return fmt.Sprintf("Sort(%d)", int(s))
	}
}

// Value is the value of an atomic object.
type Value struct {
	Sort Sort
	Text string // canonical textual form
}

func (v Value) String() string { return v.Text }

// DB is a semistructured database: an instance over {link, atomic}.
// The zero value is an empty database ready to use.
//
// DB is not safe for concurrent mutation; concurrent reads are safe once
// construction is complete.
type DB struct {
	names   []string            // ObjectID -> name
	byName  map[string]ObjectID // name -> ObjectID
	out     [][]Edge            // ObjectID -> outgoing edges, sorted by (Label, To)
	in      [][]Edge            // ObjectID -> incoming edges, sorted by (Label, From)
	atomic  map[ObjectID]Value
	nLinks  int
	dirty   map[ObjectID]bool // objects whose edge lists need re-sorting
	sortedQ bool              // whether all edge lists are currently sorted
}

// New returns an empty database.
func New() *DB {
	return &DB{
		byName: make(map[string]ObjectID),
		atomic: make(map[ObjectID]Value),
		dirty:  make(map[ObjectID]bool),
	}
}

// Intern returns the ObjectID for name, creating the object if needed.
func (db *DB) Intern(name string) ObjectID {
	if db.byName == nil {
		db.byName = make(map[string]ObjectID)
		db.atomic = make(map[ObjectID]Value)
		db.dirty = make(map[ObjectID]bool)
	}
	if id, ok := db.byName[name]; ok {
		return id
	}
	id := ObjectID(len(db.names))
	db.names = append(db.names, name)
	db.byName[name] = id
	db.out = append(db.out, nil)
	db.in = append(db.in, nil)
	return id
}

// Lookup returns the ObjectID for name, or NoObject if the name is unknown.
func (db *DB) Lookup(name string) ObjectID {
	if id, ok := db.byName[name]; ok {
		return id
	}
	return NoObject
}

// Name returns the name of an object.
func (db *DB) Name(id ObjectID) string {
	if id < 0 || int(id) >= len(db.names) {
		return fmt.Sprintf("obj#%d", int(id))
	}
	return db.names[id]
}

// NumObjects reports the number of objects (complex and atomic).
func (db *DB) NumObjects() int { return len(db.names) }

// NumLinks reports the number of link facts.
func (db *DB) NumLinks() int { return db.nLinks }

// NumAtomic reports the number of atomic objects.
func (db *DB) NumAtomic() int { return len(db.atomic) }

// AddLink records link(from, to, label). Duplicate facts are ignored (the
// model allows at most one ℓ-labeled edge between a pair of objects).
// It returns an error if from is an atomic object.
func (db *DB) AddLink(from, to ObjectID, label string) error {
	if err := db.checkID(from); err != nil {
		return err
	}
	if err := db.checkID(to); err != nil {
		return err
	}
	if _, ok := db.atomic[from]; ok {
		return fmt.Errorf("graph: AddLink: %q is atomic and cannot have outgoing edges", db.Name(from))
	}
	if db.hasEdge(from, to, label) {
		return nil
	}
	e := Edge{From: from, To: to, Label: label}
	db.out[from] = append(db.out[from], e)
	db.in[to] = append(db.in[to], e)
	db.nLinks++
	db.dirty[from] = true
	db.dirty[to] = true
	return nil
}

// Link is like AddLink but interns names and panics on constraint violation.
// It is intended for building example and test databases.
func (db *DB) Link(from, to, label string) {
	if err := db.AddLink(db.Intern(from), db.Intern(to), label); err != nil {
		panic(err)
	}
}

// RemoveLink deletes the fact link(from, to, label), reporting whether it
// was present.
func (db *DB) RemoveLink(from, to ObjectID, label string) bool {
	if from < 0 || int(from) >= len(db.names) {
		return false
	}
	removed := false
	outs := db.out[from]
	for i, e := range outs {
		if e.To == to && e.Label == label {
			db.out[from] = append(outs[:i:i], outs[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		return false
	}
	ins := db.in[to]
	for i, e := range ins {
		if e.From == from && e.Label == label {
			db.in[to] = append(ins[:i:i], ins[i+1:]...)
			break
		}
	}
	db.nLinks--
	return true
}

// SetAtomic declares obj atomic with the given value. It returns an error if
// obj has outgoing edges or already has a different value.
func (db *DB) SetAtomic(obj ObjectID, v Value) error {
	if err := db.checkID(obj); err != nil {
		return err
	}
	if len(db.out[obj]) > 0 {
		return fmt.Errorf("graph: SetAtomic: %q has outgoing edges and cannot be atomic", db.Name(obj))
	}
	if old, ok := db.atomic[obj]; ok && old != v {
		return fmt.Errorf("graph: SetAtomic: %q already has value %q (atomic objects have exactly one value)", db.Name(obj), old.Text)
	}
	db.atomic[obj] = v
	return nil
}

// Atom is like SetAtomic but interns the name, uses a string value, and
// panics on constraint violation. Intended for building example databases.
func (db *DB) Atom(name, value string) {
	if err := db.SetAtomic(db.Intern(name), Value{Sort: SortString, Text: value}); err != nil {
		panic(err)
	}
}

// LinkAtom adds link(from, fresh, label) where fresh is a new atomic object
// holding value. The fresh object is named name. Intended for building
// example databases; panics on constraint violation.
func (db *DB) LinkAtom(from, label, name, value string) {
	db.Atom(name, value)
	db.Link(from, name, label)
}

// IsAtomic reports whether obj is atomic.
func (db *DB) IsAtomic(obj ObjectID) bool {
	_, ok := db.atomic[obj]
	return ok
}

// AtomicValue returns the value of an atomic object.
func (db *DB) AtomicValue(obj ObjectID) (Value, bool) {
	v, ok := db.atomic[obj]
	return v, ok
}

// Out returns the outgoing edges of obj, sorted by (Label, To).
//
// The returned slice aliases the DB's internal edge index — it is not a copy.
// Callers must treat it as read-only: mutating an element, reordering it, or
// appending through it corrupts the index shared by every other reader
// (including compiled snapshots, which assume this exact order). Copy the
// slice first if a mutable view is needed.
func (db *DB) Out(obj ObjectID) []Edge {
	db.ensureSorted()
	if obj < 0 || int(obj) >= len(db.out) {
		return nil
	}
	return db.out[obj]
}

// In returns the incoming edges of obj, sorted by (Label, From).
//
// Like Out, the returned slice aliases the DB's internal edge index and must
// be treated as read-only; copy it before mutating.
func (db *DB) In(obj ObjectID) []Edge {
	db.ensureSorted()
	if obj < 0 || int(obj) >= len(db.in) {
		return nil
	}
	return db.in[obj]
}

// Freeze flushes the lazy edge-index sorting. After Freeze, concurrent
// readers (Out, In, Links) are safe until the next mutation.
func (db *DB) Freeze() { db.ensureSorted() }

// Objects calls fn for every object, in ID order.
func (db *DB) Objects(fn func(ObjectID)) {
	for i := range db.names {
		fn(ObjectID(i))
	}
}

// ComplexObjects returns the IDs of all non-atomic objects, in ID order.
func (db *DB) ComplexObjects() []ObjectID {
	var ids []ObjectID
	for i := range db.names {
		if _, ok := db.atomic[ObjectID(i)]; !ok {
			ids = append(ids, ObjectID(i))
		}
	}
	return ids
}

// AtomicObjects returns the IDs of all atomic objects, in ID order.
func (db *DB) AtomicObjects() []ObjectID {
	var ids []ObjectID
	for i := range db.names {
		if _, ok := db.atomic[ObjectID(i)]; ok {
			ids = append(ids, ObjectID(i))
		}
	}
	return ids
}

// Links calls fn for every link fact. The iteration order is by source
// object ID, then by (Label, To).
func (db *DB) Links(fn func(Edge)) {
	db.ensureSorted()
	for _, edges := range db.out {
		for _, e := range edges {
			fn(e)
		}
	}
}

// Labels returns the distinct edge labels, sorted.
func (db *DB) Labels() []string {
	set := make(map[string]bool)
	for _, edges := range db.out {
		for _, e := range edges {
			set[e.Label] = true
		}
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// HasEdge reports whether link(from, to, label) holds.
func (db *DB) HasEdge(from, to ObjectID, label string) bool {
	return db.hasEdge(from, to, label)
}

// IsBipartite reports whether every edge goes from a complex object to an
// atomic object (the special case of §5.2: relational or record data).
func (db *DB) IsBipartite() bool {
	for _, edges := range db.out {
		for _, e := range edges {
			if !db.IsAtomic(e.To) {
				return false
			}
		}
	}
	return true
}

// Validate checks the model's integrity constraints and returns the first
// violation found, or nil. A freshly built DB maintained only through
// AddLink/SetAtomic is always valid; Validate is useful after loading
// external data.
func (db *DB) Validate() error {
	for id := range db.names {
		obj := ObjectID(id)
		if db.IsAtomic(obj) && len(db.out[obj]) > 0 {
			return fmt.Errorf("graph: atomic object %q has outgoing edges", db.Name(obj))
		}
		seen := make(map[Edge]bool, len(db.out[obj]))
		for _, e := range db.out[obj] {
			if seen[e] {
				return fmt.Errorf("graph: duplicate edge %s", db.edgeString(e))
			}
			seen[e] = true
		}
	}
	return nil
}

// Clone returns an independent deep copy of the database.
func (db *DB) Clone() *DB {
	c := New()
	c.names = append([]string(nil), db.names...)
	for n, id := range db.byName {
		c.byName[n] = id
	}
	c.out = make([][]Edge, len(db.out))
	c.in = make([][]Edge, len(db.in))
	for i := range db.out {
		c.out[i] = append([]Edge(nil), db.out[i]...)
		c.in[i] = append([]Edge(nil), db.in[i]...)
	}
	for o, v := range db.atomic {
		c.atomic[o] = v
	}
	c.nLinks = db.nLinks
	for o := range db.dirty {
		c.dirty[o] = true
	}
	return c
}

// Stats summarizes a database for reporting.
type Stats struct {
	Objects   int
	Complex   int
	Atomic    int
	Links     int
	Labels    int
	Bipartite bool
}

// Stats returns summary statistics.
func (db *DB) Stats() Stats {
	return Stats{
		Objects:   db.NumObjects(),
		Complex:   db.NumObjects() - db.NumAtomic(),
		Atomic:    db.NumAtomic(),
		Links:     db.NumLinks(),
		Labels:    len(db.Labels()),
		Bipartite: db.IsBipartite(),
	}
}

func (s Stats) String() string {
	bip := "N"
	if s.Bipartite {
		bip = "Y"
	}
	return fmt.Sprintf("%d objects (%d complex, %d atomic), %d links, %d labels, bipartite=%s",
		s.Objects, s.Complex, s.Atomic, s.Links, s.Labels, bip)
}

func (db *DB) checkID(id ObjectID) error {
	if id < 0 || int(id) >= len(db.names) {
		return fmt.Errorf("graph: unknown object id %d", int(id))
	}
	return nil
}

func (db *DB) hasEdge(from, to ObjectID, label string) bool {
	if from < 0 || int(from) >= len(db.out) {
		return false
	}
	for _, e := range db.out[from] {
		if e.To == to && e.Label == label {
			return true
		}
	}
	return false
}

func (db *DB) edgeString(e Edge) string {
	return fmt.Sprintf("link(%s, %s, %s)", db.Name(e.From), db.Name(e.To), e.Label)
}

func (db *DB) ensureSorted() {
	if len(db.dirty) == 0 {
		return
	}
	for obj := range db.dirty {
		sort.Slice(db.out[obj], func(i, j int) bool {
			a, b := db.out[obj][i], db.out[obj][j]
			if a.Label != b.Label {
				return a.Label < b.Label
			}
			return a.To < b.To
		})
		sort.Slice(db.in[obj], func(i, j int) bool {
			a, b := db.in[obj][i], db.in[obj][j]
			if a.Label != b.Label {
				return a.Label < b.Label
			}
			return a.From < b.From
		})
	}
	db.dirty = make(map[ObjectID]bool)
}
