package graph

import (
	"strings"
	"testing"
)

// figure2DB builds the manager/firm database of Figure 2 of the paper.
func figure2DB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.Link("g", "m", "is-manager-of")
	db.Link("j", "a", "is-manager-of")
	db.Link("m", "g", "is-managed-by")
	db.Link("a", "j", "is-managed-by")
	db.LinkAtom("g", "name", "gn", "Gates")
	db.LinkAtom("j", "name", "jn", "Jobs")
	db.LinkAtom("m", "name", "mn", "Microsoft")
	db.LinkAtom("a", "name", "an", "Apple")
	return db
}

func TestInternAndLookup(t *testing.T) {
	db := New()
	a := db.Intern("a")
	b := db.Intern("b")
	if a == b {
		t.Fatal("distinct names interned to same id")
	}
	if db.Intern("a") != a {
		t.Fatal("Intern not idempotent")
	}
	if db.Lookup("a") != a {
		t.Fatal("Lookup disagrees with Intern")
	}
	if db.Lookup("zzz") != NoObject {
		t.Fatal("Lookup of unknown name should be NoObject")
	}
	if db.Name(a) != "a" {
		t.Fatalf("Name = %q, want a", db.Name(a))
	}
}

func TestFigure2Stats(t *testing.T) {
	db := figure2DB(t)
	s := db.Stats()
	if s.Objects != 8 || s.Complex != 4 || s.Atomic != 4 {
		t.Fatalf("stats %+v: want 8 objects, 4 complex, 4 atomic", s)
	}
	if s.Links != 8 {
		t.Fatalf("links = %d, want 8", s.Links)
	}
	if s.Bipartite {
		t.Fatal("figure 2 data is not bipartite")
	}
}

func TestAtomicConstraints(t *testing.T) {
	db := New()
	db.Atom("v", "hello")
	x := db.Intern("x")
	v := db.Lookup("v")
	if err := db.AddLink(v, x, "l"); err == nil {
		t.Fatal("AddLink from atomic object should fail")
	}
	// Same value again is fine; different value is not.
	if err := db.SetAtomic(v, Value{Sort: SortString, Text: "hello"}); err != nil {
		t.Fatalf("re-setting same value: %v", err)
	}
	if err := db.SetAtomic(v, Value{Sort: SortString, Text: "other"}); err == nil {
		t.Fatal("SetAtomic with conflicting value should fail")
	}
	// An object with outgoing edges cannot become atomic.
	y := db.Intern("y")
	if err := db.AddLink(x, y, "l"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAtomic(x, Value{Text: "nope"}); err == nil {
		t.Fatal("SetAtomic on object with outgoing edges should fail")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	db := New()
	db.Link("a", "b", "l")
	db.Link("a", "b", "l")
	if db.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1 (duplicates ignored)", db.NumLinks())
	}
	db.Link("a", "b", "other")
	if db.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2 (different label is a new edge)", db.NumLinks())
	}
}

func TestEdgeIndexesSorted(t *testing.T) {
	db := New()
	db.Link("x", "c", "b")
	db.Link("x", "a", "b")
	db.Link("x", "z", "a")
	out := db.Out(db.Lookup("x"))
	if len(out) != 3 {
		t.Fatalf("out degree = %d, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Label > out[i].Label {
			t.Fatalf("out edges not sorted by label: %v", out)
		}
	}
	if out[0].Label != "a" {
		t.Fatalf("first edge label = %q, want a", out[0].Label)
	}
	in := db.In(db.Lookup("a"))
	if len(in) != 1 || in[0].From != db.Lookup("x") {
		t.Fatalf("in edges of a: %v", in)
	}
}

func TestRemoveLink(t *testing.T) {
	db := figure2DB(t)
	g, m := db.Lookup("g"), db.Lookup("m")
	if !db.RemoveLink(g, m, "is-manager-of") {
		t.Fatal("RemoveLink should report removal")
	}
	if db.RemoveLink(g, m, "is-manager-of") {
		t.Fatal("second RemoveLink should report false")
	}
	if db.HasEdge(g, m, "is-manager-of") {
		t.Fatal("edge still present after removal")
	}
	if db.NumLinks() != 7 {
		t.Fatalf("NumLinks = %d, want 7", db.NumLinks())
	}
	for _, e := range db.In(m) {
		if e.From == g && e.Label == "is-manager-of" {
			t.Fatal("in-index still holds removed edge")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	db := figure2DB(t)
	c := db.Clone()
	c.Link("new", "g", "extra")
	if db.NumLinks() == c.NumLinks() {
		t.Fatal("mutating clone changed original link count")
	}
	if db.Lookup("new") != NoObject {
		t.Fatal("clone's new object leaked into original")
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	db := figure2DB(t)
	labels := db.Labels()
	want := []string{"is-managed-by", "is-manager-of", "name"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestBipartite(t *testing.T) {
	db := New()
	db.LinkAtom("r1", "name", "n1", "x")
	db.LinkAtom("r2", "name", "n2", "y")
	if !db.IsBipartite() {
		t.Fatal("record data should be bipartite")
	}
	db.Link("r1", "r2", "next")
	if db.IsBipartite() {
		t.Fatal("complex-to-complex edge should break bipartiteness")
	}
}

func TestComplexAndAtomicObjects(t *testing.T) {
	db := figure2DB(t)
	if got := len(db.ComplexObjects()); got != 4 {
		t.Fatalf("complex objects = %d, want 4", got)
	}
	if got := len(db.AtomicObjects()); got != 4 {
		t.Fatalf("atomic objects = %d, want 4", got)
	}
	for _, o := range db.AtomicObjects() {
		if !db.IsAtomic(o) {
			t.Fatalf("%s reported non-atomic", db.Name(o))
		}
		v, ok := db.AtomicValue(o)
		if !ok || v.Text == "" {
			t.Fatalf("%s missing value", db.Name(o))
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db := New()
	db.Link("a", "b", "l")
	// Corrupt internals directly: duplicate edge in the out list.
	a := db.Lookup("a")
	db.out[a] = append(db.out[a], db.out[a][0])
	if err := db.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Validate should catch duplicate edge, got %v", err)
	}
}

func TestStatsString(t *testing.T) {
	db := figure2DB(t)
	s := db.Stats().String()
	for _, want := range []string{"8 objects", "4 complex", "8 links", "bipartite=N"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats string %q missing %q", s, want)
		}
	}
}
