package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text serialization is line oriented:
//
//	# comment
//	obj <name>
//	link <from> <to> <label>
//	atomic <obj> <sort> <value>
//
// Fields are quoted with Go string-literal syntax when they contain spaces.
// Objects mentioned only in link lines are complex; "obj" records exist so
// isolated complex objects survive. The format round-trips through
// Write/Read.

// Write serializes db in the text format. Output is deterministic: objects
// in ID order, edges in (Label, To) order.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for id := range db.names {
		o := ObjectID(id)
		if len(db.out[o]) == 0 && len(db.in[o]) == 0 && !db.IsAtomic(o) {
			if _, err := fmt.Fprintf(bw, "obj %s\n", quoteField(db.Name(o))); err != nil {
				return err
			}
		}
	}
	var err error
	db.Links(func(e Edge) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "link %s %s %s\n",
			quoteField(db.Name(e.From)), quoteField(db.Name(e.To)), quoteField(e.Label))
	})
	if err != nil {
		return err
	}
	atoms := db.AtomicObjects()
	sort.Slice(atoms, func(i, j int) bool { return atoms[i] < atoms[j] })
	for _, o := range atoms {
		v := db.atomic[o]
		if _, err := fmt.Fprintf(bw, "atomic %s %s %s\n",
			quoteField(db.Name(o)), v.Sort, quoteField(v.Text)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format into a new database.
func Read(r io.Reader) (*DB, error) {
	return ReadLimits(r, Limits{})
}

// ReadLimits is Read with resource budgets: parsing stops with a *LimitError
// as soon as the input exceeds lim's byte, object, or link caps.
func ReadLimits(r io.Reader, lim Limits) (*DB, error) {
	db := New()
	sc := bufio.NewScanner(newCappedReader(r, lim.MaxBytes))
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		// A byte-cap violation surfaces as a scanner error alongside a
		// truncated final token; report the cap, not a bogus parse error.
		if err := sc.Err(); err != nil {
			return nil, err
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		switch fields[0] {
		case "obj":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: obj needs 1 field, got %d", lineNo, len(fields)-1)
			}
			db.Intern(fields[1])
		case "link":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: link needs 3 fields, got %d", lineNo, len(fields)-1)
			}
			if err := db.AddLink(db.Intern(fields[1]), db.Intern(fields[2]), fields[3]); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		case "atomic":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: atomic needs 3 fields, got %d", lineNo, len(fields)-1)
			}
			s, err := parseSort(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if err := db.SetAtomic(db.Intern(fields[1]), Value{Sort: s, Text: fields[3]}); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
		if err := lim.checkCounts(db); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}

func parseSort(s string) (Sort, error) {
	switch s {
	case "string":
		return SortString, nil
	case "int":
		return SortInt, nil
	case "float":
		return SortFloat, nil
	case "bool":
		return SortBool, nil
	}
	return 0, fmt.Errorf("unknown sort %q", s)
}

// InferSort classifies a textual value into a Sort (Remark 2.1: in practice
// it is often easy to separate atomic values into different sorts).
func InferSort(text string) Sort {
	if _, err := strconv.ParseInt(text, 10, 64); err == nil {
		return SortInt
	}
	if _, err := strconv.ParseFloat(text, 64); err == nil {
		return SortFloat
	}
	if text == "true" || text == "false" {
		return SortBool
	}
	return SortString
}

func quoteField(s string) string {
	if s == "" {
		return strconv.Quote(s)
	}
	for _, r := range s {
		if r <= ' ' || r == '"' || r == '\\' || !strconv.IsPrint(r) {
			return strconv.Quote(s)
		}
	}
	return s
}

// splitFields splits a line into whitespace-separated fields, honoring
// Go-quoted strings.
func splitFields(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			unq, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field %s: %v", line[i:j+1], err)
			}
			fields = append(fields, unq)
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		fields = append(fields, line[i:j])
		i = j
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return fields, nil
}
