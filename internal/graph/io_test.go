package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundtrip(t *testing.T) {
	db := figure2DB(t)
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDB(db, back) {
		t.Fatal("roundtrip changed the database")
	}
}

func TestRoundtripQuoting(t *testing.T) {
	db := New()
	db.Link("an object", "other \"thing\"", "label with spaces")
	db.Atom("v v", "multi word value\twith tab")
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reading %q: %v", buf.String(), err)
	}
	if !sameDB(db, back) {
		t.Fatal("quoted roundtrip changed the database")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"unknown record", "frob a b c\n"},
		{"short link", "link a b\n"},
		{"long link", "link a b c d\n"},
		{"bad sort", "atomic a frobsort v\n"},
		{"unterminated quote", "link \"a b c\n"},
		{"atomic with outgoing", "link a b l\natomic a string v\n"},
		{"conflicting atomic value", "atomic a string v1\natomic a string v2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.input)); err == nil {
				t.Fatalf("Read(%q) succeeded, want error", c.input)
			}
		})
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := "# a comment\n\nlink a b l\n  \natomic c int 42\n"
	db, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumLinks() != 1 || db.NumAtomic() != 1 {
		t.Fatalf("got %d links, %d atomic; want 1, 1", db.NumLinks(), db.NumAtomic())
	}
	v, _ := db.AtomicValue(db.Lookup("c"))
	if v.Sort != SortInt || v.Text != "42" {
		t.Fatalf("atomic value = %+v", v)
	}
}

func TestInferSort(t *testing.T) {
	cases := []struct {
		in   string
		want Sort
	}{
		{"42", SortInt},
		{"-17", SortInt},
		{"3.14", SortFloat},
		{"true", SortBool},
		{"false", SortBool},
		{"hello", SortString},
		{"", SortString},
		{"12abc", SortString},
	}
	for _, c := range cases {
		if got := InferSort(c.in); got != c.want {
			t.Errorf("InferSort(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRoundtripRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		db := randomTestDB(rand.New(rand.NewSource(seed)), 20, 40)
		var buf bytes.Buffer
		if err := db.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return sameDB(db, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomTestDB builds a random valid database: some complex objects with
// random edges among themselves, plus atomic leaves.
func randomTestDB(rng *rand.Rand, nComplex, nEdges int) *DB {
	db := New()
	labels := []string{"a", "b", "c", "d e", "f"}
	names := make([]string, nComplex)
	for i := range names {
		names[i] = "o" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		db.Intern(names[i])
	}
	for i := 0; i < nEdges; i++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		if from == to {
			continue
		}
		db.Link(from, to, labels[rng.Intn(len(labels))])
	}
	for i := 0; i < nComplex/2; i++ {
		owner := names[rng.Intn(len(names))]
		atom := "atom" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		if db.Lookup(atom) != NoObject {
			continue
		}
		db.Atom(atom, "value-"+atom)
		db.Link(owner, atom, labels[rng.Intn(len(labels))])
	}
	return db
}

// sameDB compares two databases by fact content (names, links, atomics).
func sameDB(a, b *DB) bool {
	if a.NumObjects() != b.NumObjects() || a.NumLinks() != b.NumLinks() || a.NumAtomic() != b.NumAtomic() {
		return false
	}
	same := true
	a.Links(func(e Edge) {
		bf, bt := b.Lookup(a.Name(e.From)), b.Lookup(a.Name(e.To))
		if bf == NoObject || bt == NoObject || !b.HasEdge(bf, bt, e.Label) {
			same = false
		}
	})
	for _, o := range a.AtomicObjects() {
		bo := b.Lookup(a.Name(o))
		if bo == NoObject {
			return false
		}
		av, _ := a.AtomicValue(o)
		bv, ok := b.AtomicValue(bo)
		if !ok || av != bv {
			return false
		}
	}
	return same
}
