package graph

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// FromJSON loads a JSON document into the link/atomic model — today's most
// common semistructured data maps directly onto the paper's 1998 model:
//
//   - a JSON object becomes a complex object with one edge per member,
//     labeled with the member name;
//   - a JSON array becomes repeated edges under the enclosing label (the
//     model's set semantics: typed links ignore multiplicity, exactly as
//     schema inference wants);
//   - strings, numbers and booleans become atomic objects with the
//     corresponding sort (numbers are int when integral, float otherwise);
//   - null members are skipped (an absent optional attribute — the paper's
//     irregularity shows up as missing typed links).
//
// The document root is named rootName ("root" if empty); nested objects are
// named <parent>/<label>[<i>]. The function may be called repeatedly on the
// same DB to load several documents side by side (use distinct root names).
func (db *DB) FromJSON(r io.Reader, rootName string) (ObjectID, error) {
	return db.FromJSONLimits(r, rootName, Limits{})
}

// FromJSONLimits is FromJSON with resource budgets: loading stops with a
// *LimitError as soon as the document exceeds lim's byte, object, link, or
// nesting-depth caps.
func (db *DB) FromJSONLimits(r io.Reader, rootName string, lim Limits) (ObjectID, error) {
	dec := json.NewDecoder(newCappedReader(r, lim.MaxBytes))
	dec.UseNumber()
	var doc interface{}
	if err := dec.Decode(&doc); err != nil {
		var le *LimitError
		if errors.As(err, &le) {
			return NoObject, le
		}
		return NoObject, fmt.Errorf("graph: json: %v", err)
	}
	if rootName == "" {
		rootName = "root"
	}
	if db.Lookup(rootName) != NoObject {
		return NoObject, fmt.Errorf("graph: json: object %q already exists", rootName)
	}
	ld := &jsonLoader{db: db, lim: lim}
	id, err := ld.value(rootName, doc)
	if err != nil {
		return NoObject, err
	}
	if id == NoObject {
		return NoObject, fmt.Errorf("graph: json: document root is null")
	}
	return id, nil
}

// FromJSON is the package-level convenience over a fresh database.
func FromJSON(r io.Reader, rootName string) (*DB, ObjectID, error) {
	return FromJSONLimits(r, rootName, Limits{})
}

// FromJSONLimits is the package-level convenience over a fresh database,
// with resource budgets.
func FromJSONLimits(r io.Reader, rootName string, lim Limits) (*DB, ObjectID, error) {
	db := New()
	id, err := db.FromJSONLimits(r, rootName, lim)
	if err != nil {
		return nil, NoObject, err
	}
	return db, id, nil
}

type jsonLoader struct {
	db    *DB
	lim   Limits
	nAtom int
	depth int
}

// value materializes a JSON value under the given object name and returns
// its ObjectID (NoObject for null).
func (l *jsonLoader) value(name string, v interface{}) (ObjectID, error) {
	l.depth++
	defer func() { l.depth-- }()
	if max := l.lim.depth(); l.depth > max {
		return NoObject, &LimitError{Resource: "depth", Limit: int64(max), Actual: int64(l.depth)}
	}
	switch x := v.(type) {
	case nil:
		return NoObject, nil
	case map[string]interface{}:
		id := l.db.Intern(name)
		if err := l.lim.checkCounts(l.db); err != nil {
			return NoObject, err
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := l.member(id, name, k, x[k]); err != nil {
				return NoObject, err
			}
		}
		return id, nil
	case []interface{}:
		// A bare array: treat as an object with repeated "element" members.
		id := l.db.Intern(name)
		if err := l.lim.checkCounts(l.db); err != nil {
			return NoObject, err
		}
		if err := l.attach(id, name+"/element", "element", x); err != nil {
			return NoObject, err
		}
		return id, nil
	default:
		return l.atom(name, x)
	}
}

// member attaches one JSON member under the label. Arrays (including
// nested arrays) flatten into repeated edges; element names carry the index
// path, e.g. parent/label[2][0].
func (l *jsonLoader) member(parent ObjectID, parentName, label string, v interface{}) error {
	return l.attach(parent, parentName+"/"+label, label, v)
}

func (l *jsonLoader) attach(parent ObjectID, name, label string, v interface{}) error {
	if v == nil {
		return nil
	}
	if arr, ok := v.([]interface{}); ok {
		for i, elem := range arr {
			if err := l.attach(parent, name+"["+strconv.Itoa(i)+"]", label, elem); err != nil {
				return err
			}
		}
		return nil
	}
	child, err := l.value(name, v)
	if err != nil {
		return err
	}
	if child == NoObject {
		return nil
	}
	if err := l.db.AddLink(parent, child, label); err != nil {
		return err
	}
	return l.lim.checkCounts(l.db)
}

func (l *jsonLoader) atom(name string, v interface{}) (ObjectID, error) {
	l.nAtom++
	id := l.db.Intern(name)
	var val Value
	switch x := v.(type) {
	case string:
		val = Value{Sort: SortString, Text: x}
	case bool:
		val = Value{Sort: SortBool, Text: strconv.FormatBool(x)}
	case json.Number:
		if _, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
			val = Value{Sort: SortInt, Text: x.String()}
		} else {
			val = Value{Sort: SortFloat, Text: x.String()}
		}
	default:
		return NoObject, fmt.Errorf("graph: json: unsupported value %T", v)
	}
	if err := l.db.SetAtomic(id, val); err != nil {
		return NoObject, err
	}
	return id, l.lim.checkCounts(l.db)
}
