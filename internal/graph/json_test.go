package graph

import (
	"strings"
	"testing"
)

func TestFromJSONBasic(t *testing.T) {
	src := `{
		"name": "Ada",
		"age": 36,
		"score": 9.5,
		"active": true,
		"nickname": null
	}`
	db, root, err := FromJSON(strings.NewReader(src), "ada")
	if err != nil {
		t.Fatal(err)
	}
	if db.Name(root) != "ada" {
		t.Fatalf("root name = %q", db.Name(root))
	}
	wantSorts := map[string]Sort{"name": SortString, "age": SortInt, "score": SortFloat, "active": SortBool}
	found := map[string]bool{}
	for _, e := range db.Out(root) {
		v, ok := db.AtomicValue(e.To)
		if !ok {
			t.Fatalf("member %s not atomic", e.Label)
		}
		if v.Sort != wantSorts[e.Label] {
			t.Errorf("member %s sort = %v, want %v", e.Label, v.Sort, wantSorts[e.Label])
		}
		found[e.Label] = true
	}
	if found["nickname"] {
		t.Error("null member should be skipped")
	}
	if len(found) != 4 {
		t.Errorf("members = %v, want 4", found)
	}
}

func TestFromJSONNestedAndArrays(t *testing.T) {
	src := `{
		"title": "Lore",
		"members": [
			{"name": "Widom", "papers": ["a", "b"]},
			{"name": "McHugh"}
		],
		"matrix": [[1, 2], [3]]
	}`
	db, root, err := FromJSON(strings.NewReader(src), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	var memberEdges, matrixEdges int
	for _, e := range db.Out(root) {
		switch e.Label {
		case "members":
			memberEdges++
			if db.IsAtomic(e.To) {
				t.Error("member element should be complex")
			}
		case "matrix":
			matrixEdges++
			if !db.IsAtomic(e.To) {
				t.Error("flattened matrix elements should be atomic")
			}
		}
	}
	if memberEdges != 2 {
		t.Errorf("members edges = %d, want 2 (array flattens to repeated edges)", memberEdges)
	}
	if matrixEdges != 3 {
		t.Errorf("matrix edges = %d, want 3 (nested arrays flatten)", matrixEdges)
	}
	// Widom has two papers edges.
	widom := db.Lookup("proj/members[0]")
	if widom == NoObject {
		t.Fatal("nested object name missing")
	}
	papers := 0
	for _, e := range db.Out(widom) {
		if e.Label == "papers" {
			papers++
		}
	}
	if papers != 2 {
		t.Errorf("papers edges = %d, want 2", papers)
	}
}

func TestFromJSONMultipleDocuments(t *testing.T) {
	db := New()
	if _, err := db.FromJSON(strings.NewReader(`{"a": 1}`), "doc1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FromJSON(strings.NewReader(`{"a": 2}`), "doc2"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FromJSON(strings.NewReader(`{"a": 3}`), "doc1"); err == nil {
		t.Fatal("duplicate root name accepted")
	}
	if db.NumObjects() != 4 {
		t.Fatalf("objects = %d, want 4", db.NumObjects())
	}
}

func TestFromJSONErrors(t *testing.T) {
	if _, _, err := FromJSON(strings.NewReader(`{"a":`), "x"); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, _, err := FromJSON(strings.NewReader(`null`), "x"); err == nil {
		t.Error("null root accepted")
	}
}

func TestFromJSONRootArray(t *testing.T) {
	db, root, err := FromJSON(strings.NewReader(`[{"x": 1}, {"x": 2}]`), "arr")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range db.Out(root) {
		if e.Label != "element" {
			t.Fatalf("unexpected label %q", e.Label)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("element edges = %d, want 2", n)
	}
}
