package graph

import (
	"fmt"
	"io"
)

// Limits bounds the resources a loader may consume, so hostile or oversized
// inputs fail with a structured error instead of exhausting memory or stack.
// The zero value imposes no caps beyond the built-in recursion-depth guard.
type Limits struct {
	// MaxBytes caps the raw input size in bytes (<= 0: unlimited).
	MaxBytes int64
	// MaxObjects caps the number of objects, complex plus atomic
	// (<= 0: unlimited).
	MaxObjects int
	// MaxLinks caps the number of link facts (<= 0: unlimited).
	MaxLinks int
	// MaxDepth caps OEM/JSON object nesting (<= 0: the built-in guard of
	// DefaultMaxDepth, which exists to protect parser recursion).
	MaxDepth int
}

// DefaultMaxDepth is the nesting-depth guard applied when Limits.MaxDepth is
// unset: deep enough for any real document, shallow enough that parser
// recursion cannot blow the stack.
const DefaultMaxDepth = 10000

func (l Limits) depth() int {
	if l.MaxDepth <= 0 {
		return DefaultMaxDepth
	}
	return l.MaxDepth
}

// checkCounts verifies the object/link caps against the database under
// construction. Loaders call it after every record, so a violating input
// fails as soon as it crosses the cap rather than after being fully read.
func (l Limits) checkCounts(db *DB) error {
	if l.MaxObjects > 0 && db.NumObjects() > l.MaxObjects {
		return &LimitError{Resource: "objects", Limit: int64(l.MaxObjects), Actual: int64(db.NumObjects())}
	}
	if l.MaxLinks > 0 && db.NumLinks() > l.MaxLinks {
		return &LimitError{Resource: "links", Limit: int64(l.MaxLinks), Actual: int64(db.NumLinks())}
	}
	return nil
}

// LimitError reports a violated resource budget: which resource, the cap,
// and (when known) the observed value. It is returned by the limited loaders
// and by the extraction pipeline's Limits enforcement.
type LimitError struct {
	// Resource names the budget: "bytes", "objects", "links", "depth",
	// "types", or "wall-time".
	Resource string
	// Limit is the configured cap.
	Limit int64
	// Actual is the observed value at the moment the cap was crossed
	// (0 when the loader stopped before measuring the full input).
	Actual int64
	// Err is the underlying cause, if any (e.g. context.DeadlineExceeded
	// for wall-time limits).
	Err error
}

func (e *LimitError) Error() string {
	msg := fmt.Sprintf("limit exceeded: %s > %d", e.Resource, e.Limit)
	if e.Actual > e.Limit {
		msg = fmt.Sprintf("limit exceeded: %d %s > %d", e.Actual, e.Resource, e.Limit)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *LimitError) Unwrap() error { return e.Err }

// cappedReader returns a *LimitError once more than max bytes have been
// read. Unlike io.LimitReader it fails loudly instead of faking EOF, so a
// truncated parse cannot be mistaken for a complete one.
type cappedReader struct {
	r         io.Reader
	remaining int64
	max       int64
}

func newCappedReader(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &cappedReader{r: r, remaining: max, max: max}
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return c.r.Read(p)
	}
	// Allow reading one byte past the cap: an input of exactly max bytes
	// ends in a clean EOF, while the max+1'th byte trips the limit.
	if int64(len(p)) > c.remaining+1 {
		p = p[:c.remaining+1]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	if c.remaining < 0 {
		return n, &LimitError{Resource: "bytes", Limit: c.max}
	}
	return n, err
}
