package graph

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// wantLimit asserts err is a *LimitError for the given resource.
func wantLimit(t *testing.T, err error, resource string) *LimitError {
	t.Helper()
	var le *LimitError
	if err == nil || !errors.As(err, &le) {
		t.Fatalf("got %v, want *LimitError(%s)", err, resource)
	}
	if le.Resource != resource {
		t.Fatalf("resource %q, want %q (err: %v)", le.Resource, resource, err)
	}
	return le
}

func TestReadLimitsBytes(t *testing.T) {
	src := "link a b l\nlink b c l\n"
	if _, err := ReadLimits(strings.NewReader(src), Limits{MaxBytes: int64(len(src))}); err != nil {
		t.Fatalf("input of exactly MaxBytes rejected: %v", err)
	}
	_, err := ReadLimits(strings.NewReader(src), Limits{MaxBytes: int64(len(src)) - 1})
	wantLimit(t, err, "bytes")
}

func TestReadLimitsObjects(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "obj o%d\n", i)
	}
	if _, err := ReadLimits(strings.NewReader(sb.String()), Limits{MaxObjects: 20}); err != nil {
		t.Fatalf("at-cap input rejected: %v", err)
	}
	_, err := ReadLimits(strings.NewReader(sb.String()), Limits{MaxObjects: 10})
	le := wantLimit(t, err, "objects")
	if le.Limit != 10 {
		t.Fatalf("limit %d, want 10", le.Limit)
	}
}

func TestReadLimitsLinks(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "link a b l%d\n", i)
	}
	_, err := ReadLimits(strings.NewReader(sb.String()), Limits{MaxLinks: 5})
	wantLimit(t, err, "links")
}

func TestOEMLimits(t *testing.T) {
	t.Run("depth", func(t *testing.T) {
		deep := strings.Repeat("{ a: ", 50) + "1" + strings.Repeat(" }", 50)
		_, err := ParseOEMStringLimits(deep, Limits{MaxDepth: 10})
		wantLimit(t, err, "depth")
		if _, err := ParseOEMStringLimits(deep, Limits{MaxDepth: 60}); err != nil {
			t.Fatalf("within-cap nesting rejected: %v", err)
		}
	})
	t.Run("objects", func(t *testing.T) {
		_, err := ParseOEMStringLimits(`&a { x: 1, y: 2, z: 3 }`, Limits{MaxObjects: 2})
		wantLimit(t, err, "objects")
	})
	t.Run("links", func(t *testing.T) {
		_, err := ParseOEMStringLimits(`&a { x: 1, y: 2, z: 3 }`, Limits{MaxLinks: 1})
		wantLimit(t, err, "links")
	})
	t.Run("bytes", func(t *testing.T) {
		_, err := ParseOEMLimits(strings.NewReader(`&a { x: 1, y: 2 }`), Limits{MaxBytes: 4})
		wantLimit(t, err, "bytes")
	})
}

func TestJSONLimits(t *testing.T) {
	t.Run("depth", func(t *testing.T) {
		deep := strings.Repeat(`{"a":`, 50) + "1" + strings.Repeat("}", 50)
		_, _, err := FromJSONLimits(strings.NewReader(deep), "root", Limits{MaxDepth: 10})
		wantLimit(t, err, "depth")
		if _, _, err := FromJSONLimits(strings.NewReader(deep), "root", Limits{MaxDepth: 60}); err != nil {
			t.Fatalf("within-cap nesting rejected: %v", err)
		}
	})
	t.Run("objects", func(t *testing.T) {
		_, _, err := FromJSONLimits(strings.NewReader(`{"a":1,"b":2,"c":3}`), "root", Limits{MaxObjects: 2})
		wantLimit(t, err, "objects")
	})
	t.Run("links", func(t *testing.T) {
		_, _, err := FromJSONLimits(strings.NewReader(`{"a":[1,2,3,4]}`), "root", Limits{MaxLinks: 2})
		wantLimit(t, err, "links")
	})
	t.Run("bytes", func(t *testing.T) {
		_, _, err := FromJSONLimits(strings.NewReader(`{"a": "xxxxxxxxxxxxxxxx"}`), "root", Limits{MaxBytes: 4})
		wantLimit(t, err, "bytes")
	})
}

func TestLimitErrorMessageAndUnwrap(t *testing.T) {
	inner := errors.New("deadline")
	le := &LimitError{Resource: "wall-time", Limit: 100, Err: inner}
	if !errors.Is(le, inner) {
		t.Fatal("Unwrap does not expose the cause")
	}
	if msg := le.Error(); !strings.Contains(msg, "wall-time") || !strings.Contains(msg, "deadline") {
		t.Fatalf("unhelpful message %q", msg)
	}
	withActual := &LimitError{Resource: "objects", Limit: 10, Actual: 42}
	if msg := withActual.Error(); !strings.Contains(msg, "42") || !strings.Contains(msg, "10") {
		t.Fatalf("message %q misses the observed/limit values", msg)
	}
}

func TestCappedReaderExactBoundary(t *testing.T) {
	// Exactly max bytes must stream through with a clean EOF even when read
	// through a tiny buffer.
	src := strings.Repeat("x", 100)
	r := newCappedReader(strings.NewReader(src), 100)
	buf := make([]byte, 7)
	total := 0
	for {
		n, err := r.Read(buf)
		total += n
		if err != nil {
			if err.Error() != "EOF" {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
	}
	if total != 100 {
		t.Fatalf("read %d bytes, want 100", total)
	}
}
