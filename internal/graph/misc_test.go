package graph

import "testing"

func TestSortString(t *testing.T) {
	cases := map[Sort]string{
		SortString: "string",
		SortInt:    "int",
		SortFloat:  "float",
		SortBool:   "bool",
		Sort(9):    "Sort(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Sort(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestObjectsIteration(t *testing.T) {
	db := New()
	db.Link("a", "b", "l")
	db.Atom("c", "v")
	var names []string
	db.Objects(func(o ObjectID) { names = append(names, db.Name(o)) })
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Objects visited %v", names)
	}
}

func TestFreezeIdempotent(t *testing.T) {
	db := New()
	db.Link("x", "b", "2")
	db.Link("x", "a", "1")
	db.Freeze()
	out := db.Out(db.Lookup("x"))
	if out[0].Label != "1" {
		t.Fatal("Freeze did not sort")
	}
	db.Freeze() // no-op on a clean db
	// A mutation re-dirties; Freeze sorts again.
	db.Link("x", "c", "0")
	db.Freeze()
	if db.Out(db.Lookup("x"))[0].Label != "0" {
		t.Fatal("Freeze after mutation did not re-sort")
	}
}

func TestNameOutOfRange(t *testing.T) {
	db := New()
	if got := db.Name(ObjectID(99)); got != "obj#99" {
		t.Fatalf("Name(99) = %q", got)
	}
	if got := db.Name(NoObject); got != "obj#-1" {
		t.Fatalf("Name(NoObject) = %q", got)
	}
}

func TestLinkAndAtomPanic(t *testing.T) {
	db := New()
	db.Atom("v", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Link from atomic should panic")
			}
		}()
		db.Link("v", "y", "l")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Atom with conflicting value should panic")
			}
		}()
		db.Atom("v", "different")
	}()
}
