package graph

import (
	"fmt"
	"io"
	"strconv"
	"unicode"
)

// This file implements a small OEM-style document syntax so semistructured
// data can be written as nested objects with shared references, in the style
// of the Tsimmis/Lore object-exchange model the paper builds on.
//
// Grammar:
//
//	Document := Binding* Object?
//	Binding  := '&' ident Object        // define a named complex object
//	Object   := '{' Members? '}'        // anonymous complex object
//	          | '&' ident '{' ... '}'   // named complex object (inline definition)
//	          | '*' ident               // reference to a named object
//	          | string | number | ident // atomic value
//	Members  := Member (',' Member)* ','?
//	Member   := label ':' Object
//
// Each member `l: v` of a complex object o becomes link(o, v, l). Atomic
// literals become fresh atomic objects with an inferred sort. Named objects
// may be referenced before or after their definition; graphs with cycles are
// expressible. Line comments start with '#' or '//'.

// ParseOEM parses an OEM document and returns the resulting database.
// Anonymous complex objects are named "_oemN" in definition order; atomic
// literals are named "_atomN".
func ParseOEM(r io.Reader) (*DB, error) {
	return ParseOEMLimits(r, Limits{})
}

// ParseOEMLimits is ParseOEM with resource budgets: parsing stops with a
// *LimitError as soon as the document exceeds lim's byte, object, link, or
// nesting-depth caps.
func ParseOEMLimits(r io.Reader, lim Limits) (*DB, error) {
	data, err := io.ReadAll(newCappedReader(r, lim.MaxBytes))
	if err != nil {
		return nil, err
	}
	return ParseOEMStringLimits(string(data), lim)
}

// ParseOEMString is ParseOEM over a string.
func ParseOEMString(src string) (*DB, error) {
	return ParseOEMStringLimits(src, Limits{})
}

// ParseOEMStringLimits is ParseOEMLimits over a string (the byte cap is not
// applied; the caller already holds the whole input).
func ParseOEMStringLimits(src string, lim Limits) (*DB, error) {
	p := &oemParser{lex: newOEMLexer(src), db: New(), lim: lim, pending: make(map[string][]pendingRef)}
	if err := p.parseDocument(); err != nil {
		return nil, err
	}
	if err := p.db.Validate(); err != nil {
		return nil, err
	}
	return p.db, nil
}

type oemTokenKind int

const (
	tokEOF oemTokenKind = iota
	tokLBrace
	tokRBrace
	tokColon
	tokComma
	tokAmp
	tokStar
	tokString // quoted string
	tokWord   // bare identifier / number / label
)

type oemToken struct {
	kind oemTokenKind
	text string
	line int
}

func (t oemToken) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokAmp:
		return "'&'"
	case tokStar:
		return "'*'"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type oemLexer struct {
	src  string
	pos  int
	line int
}

func newOEMLexer(src string) *oemLexer { return &oemLexer{src: src, line: 1} }

func (l *oemLexer) next() (oemToken, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			goto scan
		}
	}
	return oemToken{kind: tokEOF, line: l.line}, nil

scan:
	start := l.line
	switch c := l.src[l.pos]; c {
	case '{':
		l.pos++
		return oemToken{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return oemToken{tokRBrace, "}", start}, nil
	case ':':
		l.pos++
		return oemToken{tokColon, ":", start}, nil
	case ',':
		l.pos++
		return oemToken{tokComma, ",", start}, nil
	case '&':
		l.pos++
		return oemToken{tokAmp, "&", start}, nil
	case '*':
		l.pos++
		return oemToken{tokStar, "*", start}, nil
	case '"':
		return l.scanString()
	default:
		if isWordByte(c) {
			return l.scanWord()
		}
		return oemToken{}, fmt.Errorf("oem: line %d: unexpected character %q", start, c)
	}
}

func (l *oemLexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *oemLexer) scanString() (oemToken, error) {
	start := l.line
	begin := l.pos
	j := l.pos + 1
	for j < len(l.src) {
		switch l.src[j] {
		case '\\':
			j += 2
			continue
		case '"':
			unq, err := strconv.Unquote(l.src[begin : j+1])
			if err != nil {
				return oemToken{}, fmt.Errorf("oem: line %d: bad quoted string %s: %v", start, l.src[begin:j+1], err)
			}
			l.pos = j + 1
			return oemToken{tokString, unq, start}, nil
		case '\n':
			return oemToken{}, fmt.Errorf("oem: line %d: newline in string", start)
		}
		j++
	}
	return oemToken{}, fmt.Errorf("oem: line %d: unterminated string", start)
}

func (l *oemLexer) scanWord() (oemToken, error) {
	start := l.line
	begin := l.pos
	for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
		l.pos++
	}
	return oemToken{tokWord, l.src[begin:l.pos], start}, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type pendingRef struct {
	from  ObjectID
	label string
	line  int
}

type oemParser struct {
	lex     *oemLexer
	db      *DB
	lim     Limits
	tok     oemToken
	peeked  bool
	nAnon   int
	nAtom   int
	depth   int
	defined map[string]ObjectID
	pending map[string][]pendingRef
}

// checkLimits enforces the object/link caps against the database under
// construction, annotated with the current source line.
func (p *oemParser) checkLimits(line int) error {
	if err := p.lim.checkCounts(p.db); err != nil {
		return fmt.Errorf("oem: line %d: %w", line, err)
	}
	return nil
}

func (p *oemParser) next() (oemToken, error) {
	if p.peeked {
		p.peeked = false
		return p.tok, nil
	}
	return p.lex.next()
}

func (p *oemParser) peek() (oemToken, error) {
	if !p.peeked {
		t, err := p.lex.next()
		if err != nil {
			return oemToken{}, err
		}
		p.tok = t
		p.peeked = true
	}
	return p.tok, nil
}

// expectName accepts a bare word or a quoted string as an object name.
func (p *oemParser) expectName(what string) (oemToken, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if t.kind != tokWord && t.kind != tokString {
		return t, fmt.Errorf("oem: line %d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

func (p *oemParser) expect(k oemTokenKind, what string) (oemToken, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if t.kind != k {
		return t, fmt.Errorf("oem: line %d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

func (p *oemParser) parseDocument() error {
	p.defined = make(map[string]ObjectID)
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == tokEOF {
			break
		}
		if _, err := p.parseObject(); err != nil {
			return err
		}
	}
	for name, refs := range p.pending {
		if len(refs) > 0 {
			return fmt.Errorf("oem: line %d: reference to undefined object &%s", refs[0].line, name)
		}
	}
	return nil
}

// parseObject parses an Object production and returns the graph node it
// denotes.
func (p *oemParser) parseObject() (ObjectID, error) {
	p.depth++
	defer func() { p.depth-- }()
	if max := p.lim.depth(); p.depth > max {
		return NoObject, &LimitError{Resource: "depth", Limit: int64(max), Actual: int64(p.depth)}
	}
	t, err := p.next()
	if err != nil {
		return NoObject, err
	}
	switch t.kind {
	case tokLBrace:
		id := p.db.Intern(fmt.Sprintf("_oem%d", p.nAnon))
		p.nAnon++
		if err := p.checkLimits(t.line); err != nil {
			return NoObject, err
		}
		return id, p.parseMembers(id)
	case tokAmp:
		name, err := p.expectName("object name after '&'")
		if err != nil {
			return NoObject, err
		}
		if _, dup := p.defined[name.text]; dup {
			return NoObject, fmt.Errorf("oem: line %d: object &%s defined twice", name.line, name.text)
		}
		id := p.db.Intern(name.text)
		p.defined[name.text] = id
		for _, ref := range p.pending[name.text] {
			if ref.from == NoObject {
				continue // bare reference: only existence was pending
			}
			if err := p.db.AddLink(ref.from, id, ref.label); err != nil {
				return NoObject, fmt.Errorf("oem: line %d: %v", ref.line, err)
			}
		}
		delete(p.pending, name.text)
		if err := p.checkLimits(name.line); err != nil {
			return NoObject, err
		}
		if _, err := p.expect(tokLBrace, "'{' after object name"); err != nil {
			return NoObject, err
		}
		return id, p.parseMembers(id)
	case tokStar:
		name, err := p.expectName("object name after '*'")
		if err != nil {
			return NoObject, err
		}
		if id, ok := p.defined[name.text]; ok {
			return id, nil
		}
		// Forward reference: intern now, record for the definition check.
		id := p.db.Intern(name.text)
		p.pending[name.text] = append(p.pending[name.text],
			pendingRef{from: NoObject, line: name.line})
		return id, p.checkLimits(name.line)
	case tokString, tokWord:
		id := p.db.Intern(fmt.Sprintf("_atom%d", p.nAtom))
		p.nAtom++
		sort := SortString
		if t.kind == tokWord {
			sort = InferSort(t.text)
		}
		if err := p.db.SetAtomic(id, Value{Sort: sort, Text: t.text}); err != nil {
			return NoObject, err
		}
		return id, p.checkLimits(t.line)
	default:
		return NoObject, fmt.Errorf("oem: line %d: expected object, got %s", t.line, t)
	}
}

func (p *oemParser) parseMembers(owner ObjectID) error {
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind == tokRBrace {
		_, err = p.next()
		return err
	}
	for {
		lbl, err := p.next()
		if err != nil {
			return err
		}
		if lbl.kind != tokWord && lbl.kind != tokString {
			return fmt.Errorf("oem: line %d: expected member label, got %s", lbl.line, lbl)
		}
		if _, err := p.expect(tokColon, "':' after label"); err != nil {
			return err
		}
		// A reference to a not-yet-defined object needs the edge added once
		// the target exists. Handle references specially so forward refs work.
		nt, err := p.peek()
		if err != nil {
			return err
		}
		if nt.kind == tokStar {
			if _, err := p.next(); err != nil {
				return err
			}
			name, err := p.expectName("object name after '*'")
			if err != nil {
				return err
			}
			if id, ok := p.defined[name.text]; ok {
				if err := p.db.AddLink(owner, id, lbl.text); err != nil {
					return fmt.Errorf("oem: line %d: %v", name.line, err)
				}
			} else {
				p.pending[name.text] = append(p.pending[name.text],
					pendingRef{from: owner, label: lbl.text, line: name.line})
			}
		} else {
			child, err := p.parseObject()
			if err != nil {
				return err
			}
			if err := p.db.AddLink(owner, child, lbl.text); err != nil {
				return fmt.Errorf("oem: line %d: %v", lbl.line, err)
			}
		}
		if err := p.checkLimits(lbl.line); err != nil {
			return err
		}
		sep, err := p.next()
		if err != nil {
			return err
		}
		switch sep.kind {
		case tokComma:
			after, err := p.peek()
			if err != nil {
				return err
			}
			if after.kind == tokRBrace { // trailing comma
				_, err = p.next()
				return err
			}
		case tokRBrace:
			return nil
		default:
			return fmt.Errorf("oem: line %d: expected ',' or '}', got %s", sep.line, sep)
		}
	}
}
