package graph

import (
	"errors"
	"strings"
	"testing"
)

func TestParseOEMBasic(t *testing.T) {
	db, err := ParseOEMString(`
		&group {
			person: &gates { name: "Gates", manages: *msft },
			company: &msft { name: "Microsoft", managed-by: *gates },
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	g, m := db.Lookup("gates"), db.Lookup("msft")
	if g == NoObject || m == NoObject {
		t.Fatal("named objects not created")
	}
	if !db.HasEdge(g, m, "manages") {
		t.Fatal("forward reference edge missing")
	}
	if !db.HasEdge(m, g, "managed-by") {
		t.Fatal("back reference edge missing")
	}
	// "Gates" became an atomic object linked under name.
	found := false
	for _, e := range db.Out(g) {
		if e.Label == "name" && db.IsAtomic(e.To) {
			v, _ := db.AtomicValue(e.To)
			if v.Text == "Gates" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("atomic name value missing")
	}
}

func TestParseOEMAnonymousAndSorts(t *testing.T) {
	db, err := ParseOEMString(`{ count: 42, ratio: 3.5, ok: true, label: hello }`)
	if err != nil {
		t.Fatal(err)
	}
	root := db.Lookup("_oem0")
	if root == NoObject {
		t.Fatal("anonymous root not named _oem0")
	}
	wantSorts := map[string]Sort{"count": SortInt, "ratio": SortFloat, "ok": SortBool, "label": SortString}
	for _, e := range db.Out(root) {
		v, ok := db.AtomicValue(e.To)
		if !ok {
			t.Fatalf("member %s not atomic", e.Label)
		}
		if v.Sort != wantSorts[e.Label] {
			t.Errorf("member %s: sort %v, want %v", e.Label, v.Sort, wantSorts[e.Label])
		}
	}
}

func TestParseOEMCycle(t *testing.T) {
	db, err := ParseOEMString(`
		&a { next: *b }
		&b { next: *a }
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := db.Lookup("a"), db.Lookup("b")
	if !db.HasEdge(a, b, "next") || !db.HasEdge(b, a, "next") {
		t.Fatal("cyclic references not linked")
	}
}

func TestParseOEMSharedSubobject(t *testing.T) {
	db, err := ParseOEMString(`
		&proj { name: "Lore" }
		&p1 { works-on: *proj }
		&p2 { works-on: *proj }
	`)
	if err != nil {
		t.Fatal(err)
	}
	proj := db.Lookup("proj")
	if got := len(db.In(proj)); got != 2 {
		t.Fatalf("shared object has %d incoming edges, want 2", got)
	}
}

func TestParseOEMComments(t *testing.T) {
	db, err := ParseOEMString(`
		# full line comment
		&x { // trailing comment
			a: 1, # another
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Lookup("x") == NoObject {
		t.Fatal("object after comments not parsed")
	}
}

func TestParseOEMErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"undefined ref", `&a { b: *nowhere }`, "undefined"},
		{"double definition", `&a {} &a {}`, "twice"},
		{"unterminated", `&a { b: 1`, "expected"},
		{"missing colon", `&a { b 1 }`, "':'"},
		{"bad escape", `&a { b: "x\q" }`, "quoted string"},
		{"unterminated string", `&a { b: "x }`, "string"},
		{"stray char", `&a { b: 1 } ^`, "unexpected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseOEMString(c.src)
			if err == nil {
				t.Fatalf("ParseOEMString(%q) succeeded, want error", c.src)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseOEMNestedObjects(t *testing.T) {
	db, err := ParseOEMString(`
		&person {
			name: "Ann",
			birthday: { month: 5, day: 12, year: 1970 },
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := db.Lookup("person")
	var bday ObjectID = NoObject
	for _, e := range db.Out(p) {
		if e.Label == "birthday" {
			bday = e.To
		}
	}
	if bday == NoObject || db.IsAtomic(bday) {
		t.Fatal("nested object missing or atomic")
	}
	if got := len(db.Out(bday)); got != 3 {
		t.Fatalf("birthday has %d members, want 3", got)
	}
}

func TestParseOEMTrailingComma(t *testing.T) {
	if _, err := ParseOEMString(`&a { x: 1, y: 2, }`); err != nil {
		t.Fatalf("trailing comma should parse: %v", err)
	}
}

func TestParseOEMDepthLimit(t *testing.T) {
	// A pathological document nested beyond the cap must error, not crash.
	deep := strings.Repeat("{ a: ", 20001) + "1" + strings.Repeat(" }", 20001)
	var le *LimitError
	if _, err := ParseOEMString(deep); err == nil || !errors.As(err, &le) || le.Resource != "depth" {
		t.Fatalf("deep nesting: %v", err)
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("{ a: ", 100) + "1" + strings.Repeat(" }", 100)
	if _, err := ParseOEMString(ok); err != nil {
		t.Fatalf("moderate nesting rejected: %v", err)
	}
}
