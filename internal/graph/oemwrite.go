package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteOEM serializes the database as an OEM document: one named binding
// per complex object, with atomic members inlined as literals and complex
// members as *references. Output is deterministic (objects in ID order,
// members in edge order).
//
// The format cannot name atomic objects, so an atomic object shared by
// several edges is inlined at each occurrence; re-parsing therefore
// preserves the complex structure and every (label, value) attribute, but
// not atomic-object identity. Use the text format (Write) for lossless
// round trips.
func (db *DB) WriteOEM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, o := range db.ComplexObjects() {
		if _, err := fmt.Fprintf(bw, "&%s {", oemName(db.Name(o))); err != nil {
			return err
		}
		edges := db.Out(o)
		if len(edges) == 0 {
			if _, err := fmt.Fprintln(bw, "}"); err != nil {
				return err
			}
			continue
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		for _, e := range edges {
			var target string
			if v, ok := db.AtomicValue(e.To); ok {
				target = oemValue(v)
			} else {
				target = "*" + oemName(db.Name(e.To))
			}
			if _, err := fmt.Fprintf(bw, "\t%s: %s,\n", oemName(e.Label), target); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "}"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// oemName renders an identifier, quoting when it is not a bare OEM word.
func oemName(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return strconv.Quote(s)
		}
	}
	return s
}

// oemValue renders an atomic value so that re-parsing infers the same sort:
// int/float/bool values that parse back go bare, everything else is quoted.
func oemValue(v Value) string {
	switch v.Sort {
	case SortInt:
		if _, err := strconv.ParseInt(v.Text, 10, 64); err == nil {
			return v.Text
		}
	case SortFloat:
		if f, err := strconv.ParseFloat(v.Text, 64); err == nil {
			// Bare floats must not look like ints, or the sort flips.
			if strings.ContainsAny(v.Text, ".eE") {
				return v.Text
			}
			return strconv.FormatFloat(f, 'g', -1, 64) + ".0"
		}
	case SortBool:
		if v.Text == "true" || v.Text == "false" {
			return v.Text
		}
	}
	return strconv.Quote(v.Text)
}
