package graph

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// oemRoundtrip writes db as OEM and parses it back.
func oemRoundtrip(t *testing.T, db *DB) *DB {
	t.Helper()
	var buf bytes.Buffer
	if err := db.WriteOEM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseOEMString(buf.String())
	if err != nil {
		t.Fatalf("re-parsing OEM output: %v\n%s", err, buf.String())
	}
	return back
}

// attrsOf summarizes an object's atomic members as sorted "label=sort:value"
// strings and complex members as "label->*name".
func attrsOf(db *DB, o ObjectID) []string {
	var out []string
	for _, e := range db.Out(o) {
		if v, ok := db.AtomicValue(e.To); ok {
			out = append(out, e.Label+"="+v.Sort.String()+":"+v.Text)
		} else {
			out = append(out, e.Label+"->*"+db.Name(e.To))
		}
	}
	sort.Strings(out)
	return out
}

func TestWriteOEMRoundtripStructure(t *testing.T) {
	db := New()
	db.Link("group", "alice", "member")
	db.Link("group", "bob", "member")
	db.Link("alice", "bob", "friend")
	db.Link("bob", "alice", "friend") // cycle
	db.LinkAtom("alice", "name", "alice.n", "Alice")
	mustInt := func(name, text string) {
		id := db.Intern(name)
		if err := db.SetAtomic(id, Value{Sort: SortInt, Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	mustInt("alice.age", "36")
	db.Link("alice", "alice.age", "age")
	db.LinkAtom("bob", "name", "bob.n", "Bob")

	back := oemRoundtrip(t, db)
	// Complex objects and their members (with sorts) survive.
	for _, name := range []string{"group", "alice", "bob"} {
		o, b := db.Lookup(name), back.Lookup(name)
		if b == NoObject {
			t.Fatalf("object %s lost", name)
		}
		got, want := attrsOf(back, b), attrsOf(db, o)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("%s: attrs %v, want %v", name, got, want)
		}
	}
}

func TestWriteOEMQuotedNames(t *testing.T) {
	db := New()
	db.Link("an object", "other thing", "weird label!")
	db.LinkAtom("other thing", "k v", "vv", "multi word")
	back := oemRoundtrip(t, db)
	a, b := back.Lookup("an object"), back.Lookup("other thing")
	if a == NoObject || b == NoObject {
		t.Fatal("quoted names lost")
	}
	if !back.HasEdge(a, b, "weird label!") {
		t.Fatal("quoted label lost")
	}
}

func TestWriteOEMSortsSurvive(t *testing.T) {
	db := New()
	add := func(name string, sort Sort, text string) {
		id := db.Intern("o." + name)
		if err := db.SetAtomic(id, Value{Sort: sort, Text: text}); err != nil {
			t.Fatal(err)
		}
		db.Link("o", "o."+name, name)
	}
	add("i", SortInt, "42")
	add("f", SortFloat, "2.5")
	add("b", SortBool, "true")
	add("s", SortString, "123") // string that looks like a number: must stay string
	back := oemRoundtrip(t, db)
	o := back.Lookup("o")
	want := map[string]Sort{"i": SortInt, "f": SortFloat, "b": SortBool, "s": SortString}
	for _, e := range back.Out(o) {
		v, _ := back.AtomicValue(e.To)
		if v.Sort != want[e.Label] {
			t.Errorf("member %s: sort %v, want %v", e.Label, v.Sort, want[e.Label])
		}
	}
}

func TestWriteOEMEmptyObject(t *testing.T) {
	db := New()
	db.Intern("lonely")
	back := oemRoundtrip(t, db)
	if back.Lookup("lonely") == NoObject {
		t.Fatal("isolated object lost")
	}
}
