package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
	"time"

	"schemex"
)

// crashServerEnv, when set, turns the test binary into a durable schemex
// server over the named DataDir: TestMain intercepts it before any test
// runs, so TestCrashRecovery can re-exec os.Args[0] as a real child process
// and SIGKILL it mid-burst — in-process servers cannot be killed abruptly
// enough to exercise real crash semantics.
const crashServerEnv = "SCHEMEX_CRASH_SERVER_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashServerEnv); dir != "" {
		runCrashServer(dir)
		return
	}
	os.Exit(m.Run())
}

// runCrashServer serves the durable API on an ephemeral port, printing the
// bound address on the first stdout line. It never exits on its own: the
// parent SIGKILLs it.
func runCrashServer(dir string) {
	srv, err := NewServer(Config{DataDir: dir, SpillEvery: 8})
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	http.Serve(ln, srv.Handler())
}

// TestCrashRecovery is the end-to-end durability claim: a real server
// process SIGKILLed in the middle of a mutation burst loses nothing it
// acknowledged. The child runs with SpillEvery=8, so the kill also lands
// around snapshot spills — rotation must be crash-atomic too.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), crashServerEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { cmd.Process.Kill(); cmd.Wait() }()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("child produced no address line")
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "ADDR ") {
		t.Fatalf("child said %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, "ADDR ")

	// Create the session over the wire.
	resp, err := http.Post(base+"/v1/session", "application/json",
		strings.NewReader(mustJSON(t, map[string]interface{}{"data": sampleText})))
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id, _ := created["id"].(string)
	if resp.StatusCode != 200 || id == "" {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}

	// Burst deltas until the kill severs the connection. Every 200 response
	// fully received is an acknowledgment the recovered session must honor.
	kill := time.AfterFunc(75*time.Millisecond, func() { cmd.Process.Kill() })
	defer kill.Stop()
	acked := 0
	for i := 0; i < 5000; i++ {
		resp, err := http.Post(base+"/v1/session/"+id+"/mutate", "application/json",
			strings.NewReader(mustJSON(t, map[string]interface{}{"delta": nthDelta(i)})))
		if err != nil {
			break // the kill landed mid-request
		}
		st := resp.StatusCode
		resp.Body.Close()
		if st != 200 {
			t.Fatalf("mutate %d: status %d", i, st)
		}
		acked++
	}
	cmd.Process.Kill()
	cmd.Wait()
	if acked == 0 {
		t.Skip("child died before any delta was acknowledged; nothing to verify")
	}
	t.Logf("killed child after %d acknowledged deltas", acked)

	// Recover in-process over the same DataDir.
	s2, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	sess, ok := s2.a.sessions.get(id)
	if !ok {
		t.Fatalf("session %s not recovered", id)
	}
	prep := sess.current()
	vrec := int(prep.Version())
	// Acknowledged-prefix rule: every acked delta survives; at most the one
	// unacknowledged in-flight delta may additionally be present.
	if vrec < acked || vrec > acked+1 {
		t.Fatalf("recovered version %d, acknowledged %d", vrec, acked)
	}

	// Bit-identical check: an in-process replica applying the same first
	// vrec deltas must extract exactly the same schema.
	g, err := schemex.ReadGraph(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	replica, err := schemex.PrepareContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vrec; i++ {
		d, err := schemex.ParseDelta(strings.NewReader(nthDelta(i)))
		if err != nil {
			t.Fatal(err)
		}
		if replica, _, err = replica.ApplyContext(context.Background(), d); err != nil {
			t.Fatalf("replica delta %d: %v", i, err)
		}
	}
	want := extractText(t, replica)
	got := extractText(t, prep)
	if got != want {
		t.Fatalf("recovered schema differs from replica:\n%s\nvs\n%s", got, want)
	}
	// And the recovered graph holds exactly the same facts. Line order is
	// object-id order, and ids are renumbered by the snapshot round-trip,
	// so compare the canonical (sorted) serialization.
	if got, want := canonGraph(t, prep), canonGraph(t, replica); got != want {
		t.Fatalf("recovered graph differs from replica:\n%s\nvs\n%s", got, want)
	}
}

func canonGraph(t *testing.T, prep *schemex.Prepared) string {
	t.Helper()
	var buf bytes.Buffer
	if err := prep.Graph().Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func extractText(t *testing.T, prep *schemex.Prepared) string {
	t.Helper()
	res, err := schemex.ExtractPreparedContext(context.Background(), prep, schemex.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Schema()
}
