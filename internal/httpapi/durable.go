// Durable sessions: every accepted delta is appended to a per-session
// write-ahead log before it is acknowledged, the session's graph is spilled
// to a snapshot file every SpillEvery deltas (rotating the log), and a
// restart rehydrates each session log-suffix-over-snapshot. The on-disk
// layout under Config.DataDir is
//
//	<DataDir>/sessions/<id>/
//	    MANIFEST             {version, snapshot, log, logOffset, core, shards}, atomic
//	    snapshot-<V>.graph   graph text serialization at version V
//	    snapshot-<V>.core    compiled-snapshot core blob (labels, Pos, histograms)
//	    shard-<V>-<i>.shard  one codec file per CSR shard, in shard order
//	    wal-<V>.log          base record (same graph) + one delta per record
//
// The log's leading base record makes it self-sufficient: recovery prefers
// the compiled spill (core + shard files, loaded without recompiling and with
// shards faulted lazily as requests touch them), falls back to recompiling
// the snapshot graph, and a missing snapshot falls back to a full replay from
// the base record. A torn final frame (crash mid-append) is dropped; interior
// corruption surfaces as a typed *wal.CorruptError and the session is
// refused, not served wrong.
package httpapi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"schemex"
	"schemex/internal/par"
	"schemex/internal/wal"
)

// sessionsSubdir is the directory under DataDir holding one directory per
// durable session.
const sessionsSubdir = "sessions"

// DefaultSpillEvery is the number of logged deltas between snapshot spills
// when Config leaves SpillEvery unset. Between spills a restart replays at
// most this many deltas per session.
const DefaultSpillEvery = 64

// DefaultRecoverConcurrency caps how many sessions startup recovery
// rehydrates at once when Config leaves RecoverConcurrency unset.
const DefaultRecoverConcurrency = 8

func (a *api) sessionDir(id string) string {
	return filepath.Join(a.dataDir, sessionsSubdir, id)
}

// validSessionID accepts exactly the ids newSessionID mints (32 lowercase
// hex digits), keeping path traversal out of sessionDir.
func validSessionID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// makeDurable creates the session's directory and its first generation
// (snapshot-0, wal-0, manifest). Called before the session is shared, so no
// locking is needed; on failure the directory is removed and the create
// request fails rather than serving an unlogged session.
func (a *api) makeDurable(s *session) error {
	dir := a.sessionDir(s.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.dir = dir
	if err := s.spillTo(s.prep, a.pol); err != nil {
		os.RemoveAll(dir)
		s.dir = ""
		return err
	}
	return nil
}

// persistLocked logs one just-applied delta and, every spillEvery deltas or
// once the log passes spillBytes (when set), spills a fresh snapshot
// generation. The caller holds s.mu and has not yet
// advanced s.prep; a nil return means the delta is durable per the sync
// policy and the session may advance. In-memory sessions (nil log) return
// immediately without allocating — the DataDir-unset mutate path is
// unchanged, which an allocation-regression test pins.
func (s *session) persistLocked(a *api, d *schemex.Delta, next *schemex.Prepared) error {
	if s.log == nil {
		return nil
	}
	if _, err := s.log.Append(wal.KindDelta, []byte(d.String())); err != nil {
		return err
	}
	s.sinceSpill++
	if s.sinceSpill >= a.spillEvery || (a.spillBytes > 0 && s.log.Size() >= a.spillBytes) {
		if err := s.spillTo(next, a.pol); err != nil {
			// The delta is already durable in the current log; a failed
			// spill only delays compaction. Keep serving, retry after
			// another spillEvery deltas.
			log.Printf("httpapi: session %s: snapshot spill failed (will retry): %v", s.id, err)
			s.sinceSpill = 0
		}
	}
	return nil
}

// persistBatchLocked logs a just-applied batch of deltas as len(ds)
// individual records with one write and one fsync (wal.AppendAll), keeping
// the log replay-identical to sequential application — recovery replays one
// ApplyContext per record, reproducing the same per-delta version advance the
// batch took in one step. Spill thresholds account for all len(ds) records.
// The caller holds s.mu and has not yet advanced s.prep; a nil return means
// the whole batch is durable per the sync policy.
func (s *session) persistBatchLocked(a *api, ds []*schemex.Delta, next *schemex.Prepared) error {
	if s.log == nil {
		return nil
	}
	if len(ds) == 1 {
		return s.persistLocked(a, ds[0], next)
	}
	payloads := make([][]byte, len(ds))
	for i, d := range ds {
		payloads[i] = []byte(d.String())
	}
	if _, err := s.log.AppendAll(wal.KindDelta, payloads); err != nil {
		return err
	}
	s.sinceSpill += len(ds)
	if s.sinceSpill >= a.spillEvery || (a.spillBytes > 0 && s.log.Size() >= a.spillBytes) {
		if err := s.spillTo(next, a.pol); err != nil {
			log.Printf("httpapi: session %s: snapshot spill failed (will retry): %v", s.id, err)
			s.sinceSpill = 0
		}
	}
	return nil
}

// spillTo writes a new durable generation for the given state: graph
// snapshot file, compiled-snapshot core blob plus one file per CSR shard
// (the shard-granular spill that lets recovery skip recompilation and load
// only the shards a request touches), a fresh log seeded with a base record,
// then the manifest rename that commits the switch. Every step before the
// rename leaves the previous generation authoritative, so a crash (or an
// error return) anywhere in between — including between the shard-file
// writes and the manifest rename — recovers to the old generation with
// nothing lost; only after the commit are the old files retired and stale
// leftovers swept.
func (s *session) spillTo(prep *schemex.Prepared, pol wal.SyncPolicy) error {
	v := prep.Version()
	var base bytes.Buffer
	if err := prep.Graph().Write(&base); err != nil {
		return err
	}
	snapName := fmt.Sprintf("snapshot-%d.graph", v)
	coreName := fmt.Sprintf("snapshot-%d.core", v)
	logName := fmt.Sprintf("wal-%d.log", v)
	if err := wal.WriteFileAtomic(filepath.Join(s.dir, snapName), func(w io.Writer) error {
		_, err := w.Write(base.Bytes())
		return err
	}); err != nil {
		return err
	}
	shardNames := make([]string, prep.NumShards())
	for si := range shardNames {
		shardNames[si] = fmt.Sprintf("shard-%d-%d.shard", v, si)
		blob := prep.EncodeShard(si)
		if err := wal.WriteFileAtomic(filepath.Join(s.dir, shardNames[si]), func(w io.Writer) error {
			_, err := w.Write(blob)
			return err
		}); err != nil {
			return err
		}
	}
	core := prep.EncodeSnapshotCore()
	if err := wal.WriteFileAtomic(filepath.Join(s.dir, coreName), func(w io.Writer) error {
		_, err := w.Write(core)
		return err
	}); err != nil {
		return err
	}
	logPath := filepath.Join(s.dir, logName)
	os.Remove(logPath) // leftovers from a crash mid-spill
	nl, err := wal.Create(logPath, pol)
	if err != nil {
		return err
	}
	off, err := nl.Append(wal.KindBase, base.Bytes())
	if err == nil {
		err = nl.Sync() // the base record must be durable before the commit
	}
	if err == nil {
		err = wal.WriteManifest(s.dir, wal.Manifest{
			Version: v, Snapshot: snapName, Log: logName, LogOffset: off,
			Core: coreName, Shards: shardNames,
		})
	}
	if err != nil {
		nl.Close()
		os.Remove(logPath)
		return err
	}
	// Committed: retire the previous generation and sweep anything a crashed
	// or failed spill left behind.
	if s.log != nil {
		s.log.Close()
	}
	s.log, s.snapFile, s.coreFile, s.logFile = nl, snapName, coreName, logName
	s.shardFiles, s.sinceSpill = shardNames, 0
	s.sweepStale()
	return nil
}

// sweepStale removes generation files (snapshot-*, shard-*, wal-*) that are
// neither part of the current generation nor pinned by a recovery-adopted
// compiled snapshot (whose non-resident shard refs may still fault from
// them). Called after a committed spill, it retires the previous generation
// and cleans up leftovers of spills that failed or crashed before their
// manifest rename. Errors are ignored: a file that cannot be removed today
// is swept after the next spill.
func (s *session) sweepStale() {
	keep := map[string]bool{
		wal.ManifestName: true,
		s.snapFile:       true, s.coreFile: true, s.logFile: true,
	}
	for _, n := range s.shardFiles {
		keep[n] = true
	}
	for n := range s.pinned {
		keep[n] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		if keep[n] || e.IsDir() {
			continue
		}
		if strings.HasPrefix(n, "snapshot-") || strings.HasPrefix(n, "shard-") || strings.HasPrefix(n, "wal-") {
			os.Remove(filepath.Join(s.dir, n))
		}
	}
}

// deleteSession implements DELETE: it removes the id from the store, waits
// out any in-flight eviction flush, clears the corruption verdict, and
// deletes the on-disk state. The store removal and the disk removal happen
// under one recoverMu critical section, so a concurrent request cannot
// rehydrate the session in between and keep serving an id whose directory
// is gone. Reports whether anything (in memory or on disk) was removed.
func (a *api) deleteSession(id string) (bool, error) {
	// Forget the mutation queue first: new mutates for the id start fresh
	// (and fail 404 once the session is gone); jobs a live drainer already
	// holds reach a terminal failed state the same way.
	a.dropQueue(id)
	if a.dataDir == "" {
		s, ok := a.sessions.remove(id)
		if ok {
			s.close()
		}
		return ok, nil
	}
	a.recoverMu.Lock()
	defer a.recoverMu.Unlock()
	found := false
	if s, ok := a.sessions.remove(id); ok {
		found = true
		if err := s.close(); err != nil {
			// The state is being deleted anyway; a failed final flush only
			// matters as a log line.
			log.Printf("httpapi: session %s: closing log on delete: %v", id, err)
		}
	}
	if old, ok := a.sessions.evicting(id); ok {
		// An LRU flush of this id is still in flight: wait for its log
		// handle to close before unlinking the files under it.
		old.close()
	}
	if !validSessionID(id) {
		return found, nil
	}
	delete(a.corrupt, id)
	dir := a.sessionDir(id)
	if _, err := os.Stat(dir); err != nil {
		return found, nil
	}
	if err := os.RemoveAll(dir); err != nil {
		return found, fmt.Errorf("removing session state: %v", err)
	}
	return true, nil
}

// rehydrate loads an evicted (or restart-orphaned) durable session back into
// the store. Corruption verdicts are sticky: a session refused once is not
// re-parsed on every request.
func (a *api) rehydrate(id string) (*session, bool) {
	if !validSessionID(id) {
		return nil, false
	}
	a.recoverMu.Lock()
	defer a.recoverMu.Unlock()
	if s, ok := a.sessions.get(id); ok {
		return s, true // lost a race with another rehydration
	}
	if old, ok := a.sessions.evicting(id); ok {
		// The LRU just evicted this id and its flush may still be blocked on
		// an in-flight mutation. Close the old session ourselves (close is
		// idempotent and serializes on its mutex): when it returns, the old
		// log handle is closed and every acknowledged delta is in the file,
		// so reopening it below cannot race a live writer.
		if err := old.close(); err != nil {
			log.Printf("httpapi: session %s: flushing evicted log before rehydrate: %v", id, err)
		}
	}
	if _, refused := a.corrupt[id]; refused {
		return nil, false
	}
	if _, err := os.Stat(a.sessionDir(id)); err != nil {
		return nil, false
	}
	s, err := a.recoverSession(id)
	if err != nil {
		log.Printf("httpapi: session %s: refusing durable state: %v", id, err)
		a.corrupt[id] = err
		return nil, false
	}
	return s, true
}

// recoverAll rehydrates every session directory under DataDir at startup.
// A corrupt session is refused (and remembered as such) without failing the
// server: the rest keep serving. Sessions recover on a bounded worker pool
// (Config.RecoverConcurrency): each replay re-runs graph parsing and
// snapshot compilation, so an unbounded fan-out over a large DataDir would
// spike CPU and peak memory at exactly the moment the process restarts.
// recoverSession is safe to run concurrently — each worker touches a
// distinct directory and the session store serializes internally — while
// recoverMu, held across the whole pool, keeps request-driven rehydration
// and deletion out until startup recovery settles.
func (a *api) recoverAll() error {
	dir := filepath.Join(a.dataDir, sessionsSubdir)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && validSessionID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	a.recoverMu.Lock()
	defer a.recoverMu.Unlock()
	errs := make([]error, len(ids))
	par.DoItems(a.recoverPar, len(ids), func(i int) {
		_, errs[i] = a.recoverSession(ids[i])
	})
	// Verdicts are recorded after the join: a.corrupt is guarded by
	// recoverMu, which this goroutine holds, not the workers.
	for i, err := range errs {
		if err != nil {
			log.Printf("httpapi: session %s: refusing durable state: %v", ids[i], err)
			a.corrupt[ids[i]] = err
		}
	}
	return nil
}

// recoverSession rebuilds one session log-suffix-over-snapshot and adds it
// to the store. The fast path loads the manifest's compiled spill — core blob
// plus per-shard codec files, skipping recompilation and reading zero shard
// bytes until a request faults them — and replays the log from logOffset. A
// manifest without spilled shards (or with any of its files missing or
// unreadable) recompiles the snapshot graph instead, and a missing snapshot
// falls back to a full replay from the log's base record. A torn final frame
// is truncated away when the log is reopened for appending; any interior
// corruption aborts with the typed error from the wal package.
func (a *api) recoverSession(id string) (*session, error) {
	dir := a.sessionDir(id)
	m, err := wal.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, m.Log)
	ctx := context.Background()

	var prep *schemex.Prepared
	pinned := map[string]bool{}
	from := m.LogOffset
	snapData, serr := os.ReadFile(filepath.Join(dir, m.Snapshot))
	switch {
	case serr == nil:
		g, err := schemex.ReadGraph(bytes.NewReader(snapData))
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", m.Snapshot, err)
		}
		if prep = a.loadSpilled(ctx, dir, m, g); prep != nil {
			// The adopted snapshot faults from this generation's shard files
			// for as long as the session lives: pin them so later spills'
			// stale-file sweeps leave them on disk.
			pinned[m.Core] = true
			for _, n := range m.Shards {
				pinned[n] = true
			}
		} else {
			if prep, err = schemex.PrepareOptions(ctx, g, schemex.Options{MemBudget: a.memBudget}); err != nil {
				return nil, err
			}
		}
		prep.SetBaseVersion(m.Version)
	case os.IsNotExist(serr):
		from = 0 // snapshot lost: full replay from the log's base record
	default:
		return nil, serr
	}

	replayed := 0
	_, _, err = wal.Replay(logPath, from, func(r wal.Record) error {
		switch r.Kind {
		case wal.KindBase:
			if prep != nil {
				return fmt.Errorf("unexpected base record at offset %d", r.Offset)
			}
			g, err := schemex.ReadGraph(bytes.NewReader(r.Payload))
			if err != nil {
				return fmt.Errorf("base record: %w", err)
			}
			p, err := schemex.PrepareOptions(ctx, g, schemex.Options{MemBudget: a.memBudget})
			if err != nil {
				return err
			}
			p.SetBaseVersion(m.Version)
			prep = p
		case wal.KindDelta:
			if prep == nil {
				return fmt.Errorf("delta record at offset %d before any base state", r.Offset)
			}
			d, err := schemex.ParseDelta(bytes.NewReader(r.Payload))
			if err != nil {
				return fmt.Errorf("delta record at offset %d: %w", r.Offset, err)
			}
			next, _, err := prep.ApplyContext(ctx, d)
			if err != nil {
				return fmt.Errorf("replaying delta at offset %d: %w", r.Offset, err)
			}
			prep = next
			replayed++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if prep == nil {
		return nil, fmt.Errorf("no recoverable state (snapshot %s missing and log holds no base record)", m.Snapshot)
	}
	lg, err := wal.Open(logPath, a.pol) // truncates a torn tail for appending
	if err != nil {
		return nil, err
	}
	s := &session{
		id: id, prep: prep, dir: dir, log: lg,
		snapFile: m.Snapshot, coreFile: m.Core, logFile: m.Log,
		shardFiles: m.Shards, pinned: pinned, sinceSpill: replayed,
	}
	a.sessions.add(s)
	return s, nil
}

// loadSpilled attempts the recompile-free recovery path: when the manifest
// records a compiled spill, stat every shard file up front (an adopted
// snapshot that later faults on a missing file would 500 the first request
// to touch that shard — better to recompile now) and load the snapshot from
// the core blob with lazy, budget-managed shard residency. Any failure
// returns nil and the caller recompiles from the graph; the spill is an
// optimization, never a correctness requirement.
func (a *api) loadSpilled(ctx context.Context, dir string, m wal.Manifest, g *schemex.Graph) *schemex.Prepared {
	if m.Core == "" || len(m.Shards) == 0 {
		return nil
	}
	core, err := os.ReadFile(filepath.Join(dir, m.Core))
	if err != nil {
		return nil
	}
	paths := make([]string, len(m.Shards))
	for i, n := range m.Shards {
		paths[i] = filepath.Join(dir, n)
		if _, err := os.Stat(paths[i]); err != nil {
			return nil
		}
	}
	prep, err := schemex.PrepareSpilled(ctx, g, core, paths, schemex.Options{MemBudget: a.memBudget})
	if err != nil {
		log.Printf("httpapi: %s: spilled snapshot rejected, recompiling: %v", dir, err)
		return nil
	}
	return prep
}
