package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"schemex"
	"schemex/internal/wal"
)

// durableServer starts an httptest server backed by a durable Server over
// dir. The caller owns both Close calls via the returned cleanup.
func durableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// mutateOK posts one delta and fails the test on any non-200.
func mutateOK(t *testing.T, ts *httptest.Server, id, delta string) map[string]interface{} {
	t.Helper()
	status, out := post(t, ts, "/v1/session/"+id+"/mutate", mustJSON(t, map[string]interface{}{"delta": delta}))
	if status != 200 {
		t.Fatalf("mutate status %d: %v", status, out)
	}
	return out
}

// extractSchema runs a k=2 extraction and returns the schema text, so tests
// can compare recovered sessions bit-for-bit against live ones.
func extractSchema(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	status, out := post(t, ts, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 2},
	}))
	if status != 200 {
		t.Fatalf("extract status %d: %v", status, out)
	}
	return out["schema"].(string)
}

// nthDelta yields a small always-incremental delta distinct per i.
func nthDelta(i int) string {
	return fmt.Sprintf("link p%d f%d is-manager-of\nlink f%d p%d is-managed-by\n", i, i, i, i)
}

func TestDurableRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir})

	id := createSession(t, ts1, sampleText)
	for i := 0; i < 5; i++ {
		mutateOK(t, ts1, id, nthDelta(i))
	}
	want := extractSchema(t, ts1, id)
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A second server over the same DataDir recovers the session with the
	// same version and a bit-identical extraction.
	_, ts2 := durableServer(t, Config{DataDir: dir})
	status, out := post(t, ts2, "/v1/session/"+id+"/extract", `{}`)
	if status != 200 {
		t.Fatalf("recovered extract status %d: %v", status, out)
	}
	resp, err := http.Get(ts2.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]interface{}
	if err := jsonDecode(resp, &info); err != nil {
		t.Fatal(err)
	}
	if info["version"].(float64) != 5 {
		t.Fatalf("recovered version: %v", info)
	}
	if got := extractSchema(t, ts2, id); got != want {
		t.Fatalf("recovered schema differs:\n%s\nvs\n%s", got, want)
	}
	// The recovered session keeps accepting mutations.
	if out := mutateOK(t, ts2, id, nthDelta(99)); out["version"].(float64) != 6 {
		t.Fatalf("post-recovery mutate: %v", out)
	}
}

func jsonDecode(resp *http.Response, dst interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(dst)
}

func TestDurableSpillRotatesLog(t *testing.T) {
	dir := t.TempDir()
	_, ts := durableServer(t, Config{DataDir: dir, SpillEvery: 3})
	id := createSession(t, ts, sampleText)
	for i := 0; i < 7; i++ {
		mutateOK(t, ts, id, nthDelta(i))
	}
	// 7 deltas with SpillEvery=3 spill at v3 and v6: exactly one generation —
	// graph snapshot, core blob, shard files, log — remains, named for the
	// last spill.
	sdir := filepath.Join(dir, sessionsSubdir, id)
	entries, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	for _, want := range []string{"MANIFEST", "snapshot-6.graph", "snapshot-6.core", "shard-6-0.shard", "wal-6.log"} {
		if _, err := os.Stat(filepath.Join(sdir, want)); err != nil {
			t.Fatalf("missing %s after spills; dir holds %v", want, names)
		}
	}
	for _, n := range names {
		if n != "MANIFEST" && !strings.Contains(n, "-6") {
			t.Fatalf("stale generation file survived cleanup: %s (dir holds %v)", n, names)
		}
	}
	m, err := wal.ReadManifest(sdir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 6 || m.Snapshot != "snapshot-6.graph" || m.Log != "wal-6.log" {
		t.Fatalf("manifest: %+v", m)
	}
}

func TestDurableMissingSnapshotFullReplay(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir})
	id := createSession(t, ts1, sampleText)
	for i := 0; i < 4; i++ {
		mutateOK(t, ts1, id, nthDelta(i))
	}
	want := extractSchema(t, ts1, id)
	ts1.Close()
	s1.Close()

	// Lose the snapshot file: the log's leading base record must carry the
	// session by itself.
	m, err := wal.ReadManifest(filepath.Join(dir, sessionsSubdir, id))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, sessionsSubdir, id, m.Snapshot)); err != nil {
		t.Fatal(err)
	}

	_, ts2 := durableServer(t, Config{DataDir: dir})
	if got := extractSchema(t, ts2, id); got != want {
		t.Fatalf("full-replay schema differs:\n%s\nvs\n%s", got, want)
	}
}

func TestDurableTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir})
	id := createSession(t, ts1, sampleText)
	for i := 0; i < 3; i++ {
		mutateOK(t, ts1, id, nthDelta(i))
	}
	ts1.Close()
	s1.Close()

	// Tear the final frame as a crash mid-append would: the last delta
	// drops, everything before it survives.
	sdir := filepath.Join(dir, sessionsSubdir, id)
	m, err := wal.ReadManifest(sdir)
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(sdir, m.Log)
	st, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.TruncateAt(logPath, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	_, ts2 := durableServer(t, Config{DataDir: dir})
	resp, err := http.Get(ts2.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]interface{}
	if err := jsonDecode(resp, &info); err != nil {
		t.Fatal(err)
	}
	if info["version"].(float64) != 2 {
		t.Fatalf("torn tail: recovered version %v, want 2", info["version"])
	}
	// The truncated log accepts appends again.
	if out := mutateOK(t, ts2, id, nthDelta(7)); out["version"].(float64) != 3 {
		t.Fatalf("append after torn-tail repair: %v", out)
	}
}

func TestDurableInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir})
	id := createSession(t, ts1, sampleText)
	for i := 0; i < 3; i++ {
		mutateOK(t, ts1, id, nthDelta(i))
	}
	ts1.Close()
	s1.Close()

	// Flip a payload bit in the middle of the log (inside the base record,
	// well before the tail): a complete frame with a bad CRC is corruption,
	// not a torn tail, and the session must be refused.
	sdir := filepath.Join(dir, sessionsSubdir, id)
	m, err := wal.ReadManifest(sdir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.FlipBit(filepath.Join(sdir, m.Log), int64(wal.MagicLen+20)); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("NewServer must not fail for one corrupt session: %v", err)
	}
	defer s2.Close()
	s2.a.recoverMu.Lock()
	verdict := s2.a.corrupt[id]
	s2.a.recoverMu.Unlock()
	var ce *wal.CorruptError
	if !errors.As(verdict, &ce) {
		t.Fatalf("verdict %v, want *wal.CorruptError", verdict)
	}

	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if status, _ := post(t, ts2, "/v1/session/"+id+"/extract", `{}`); status != 404 {
		t.Fatalf("corrupt session served: status %d", status)
	}
	// DELETE clears the corrupt state so the id's disk space is reclaimed.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/session/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete of corrupt session: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(sdir); !os.IsNotExist(err) {
		t.Fatalf("corrupt session dir not removed: %v", err)
	}
}

func TestDurableManifestPastEOFRefused(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir})
	id := createSession(t, ts1, sampleText)
	mutateOK(t, ts1, id, nthDelta(0))
	ts1.Close()
	s1.Close()

	// Truncate the log to before the manifest's replay offset: the manifest
	// promises durable state the file no longer holds — corruption, not a
	// torn tail.
	sdir := filepath.Join(dir, sessionsSubdir, id)
	m, err := wal.ReadManifest(sdir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.TruncateAt(filepath.Join(sdir, m.Log), m.LogOffset-3); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.a.recoverMu.Lock()
	verdict := s2.a.corrupt[id]
	s2.a.recoverMu.Unlock()
	var ce *wal.CorruptError
	if !errors.As(verdict, &ce) {
		t.Fatalf("verdict %v, want *wal.CorruptError", verdict)
	}
}

func TestDurableEvictionFlushesAndRehydrates(t *testing.T) {
	dir := t.TempDir()
	s, ts := durableServer(t, Config{DataDir: dir, SessionEntries: 1})

	id1 := createSession(t, ts, sampleText)
	mutateOK(t, ts, id1, nthDelta(0))
	schema1 := extractSchema(t, ts, id1)

	// Creating a second session evicts the first (cap 1) — flushing, not
	// forgetting it.
	id2 := createSession(t, ts, sampleText)
	if got := s.SessionEvictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if n := s.a.sessions.len(); n != 1 {
		t.Fatalf("store len %d, want 1", n)
	}

	// The evicted session rehydrates on demand, same state (this in turn
	// evicts id2 — the cap still holds).
	resp, err := http.Get(ts.URL + "/v1/session/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]interface{}
	if err := jsonDecode(resp, &info); err != nil {
		t.Fatal(err)
	}
	if info["version"].(float64) != 1 {
		t.Fatalf("rehydrated version: %v", info)
	}
	if got := extractSchema(t, ts, id1); got != schema1 {
		t.Fatalf("rehydrated schema differs:\n%s\nvs\n%s", got, schema1)
	}
	if got := s.SessionEvictions(); got != 2 {
		t.Fatalf("evictions after rehydrate = %d, want 2", got)
	}
	// And id2 rehydrates back in turn.
	if out := mutateOK(t, ts, id2, nthDelta(1)); out["version"].(float64) != 1 {
		t.Fatalf("mutate rehydrated id2: %v", out)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreEvictingVisibleUntilFlush(t *testing.T) {
	// An evicted session must stay reachable via evicting() for the whole
	// window between leaving entries and its onEvict flush completing —
	// that window is what rehydration keys off to avoid double-opening the
	// session's WAL.
	st := sessionStore{max: 1}
	block := make(chan struct{})
	st.onEvict = func(s *session) { <-block }
	st.add(&session{id: "aaaa"})
	done := make(chan struct{})
	go func() {
		st.add(&session{id: "bbbb"})
		close(done)
	}()
	waitFor(t, func() bool { _, ok := st.evicting("aaaa"); return ok })
	if _, ok := st.get("aaaa"); ok {
		t.Fatal("evicted session still in entries")
	}
	close(block)
	<-done
	if _, ok := st.evicting("aaaa"); ok {
		t.Fatal("flush finished but session still pending")
	}
}

func TestRehydrateWaitsForEvictionFlush(t *testing.T) {
	// The acknowledged-delta-loss race from the review: an eviction whose
	// flush is blocked on an in-flight mutate must not let a concurrent
	// request rehydrate the same id and reopen its WAL while the old handle
	// is live. Rehydration has to wait for the flush; the delta the
	// in-flight mutate appends must survive into the rehydrated copy.
	dir := t.TempDir()
	srv, ts := durableServer(t, Config{DataDir: dir, SessionEntries: 1})
	id1 := createSession(t, ts, sampleText)
	s1, ok := srv.a.sessions.get(id1)
	if !ok {
		t.Fatal("created session not in store")
	}

	// Hold the session lock the way an in-flight mutate does.
	s1.mu.Lock()

	// Creating a second session evicts id1; the eviction flush blocks on
	// s1.mu, so it runs in the background.
	body := mustJSON(t, map[string]interface{}{"data": sampleText})
	createDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/session", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != 200 {
				err = fmt.Errorf("create status %d", resp.StatusCode)
			}
		}
		createDone <- err
	}()
	waitFor(t, func() bool { _, ok := srv.a.sessions.evicting(id1); return ok })

	// A concurrent request for the evicted id: it misses the store and must
	// block in rehydrate until the old log handle closes.
	type getResult struct {
		version float64
		err     error
	}
	getDone := make(chan getResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/session/" + id1)
		if err != nil {
			getDone <- getResult{err: err}
			return
		}
		var info map[string]interface{}
		if err := jsonDecode(resp, &info); err != nil {
			getDone <- getResult{err: err}
			return
		}
		v, _ := info["version"].(float64)
		getDone <- getResult{version: v}
	}()

	// Complete the "in-flight mutate" on the old handle: append one delta,
	// advance the state, release the lock. This is exactly the acknowledged
	// write the race would lose.
	d, err := schemex.ParseDelta(strings.NewReader(nthDelta(0)))
	if err != nil {
		s1.mu.Unlock()
		t.Fatal(err)
	}
	next, _, err := s1.prep.ApplyContext(context.Background(), d)
	if err != nil {
		s1.mu.Unlock()
		t.Fatal(err)
	}
	if err := s1.persistLocked(srv.a, d, next); err != nil {
		s1.mu.Unlock()
		t.Fatalf("append on in-flight session: %v", err)
	}
	s1.prep = next
	s1.mu.Unlock()

	if err := <-createDone; err != nil {
		t.Fatal(err)
	}
	got := <-getDone
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.version != 1 {
		t.Fatalf("rehydrated version %v, want 1 (acknowledged delta lost)", got.version)
	}
	// The rehydrated session keeps accepting writes on a consistent log.
	if out := mutateOK(t, ts, id1, nthDelta(1)); out["version"].(float64) != 2 {
		t.Fatalf("mutate after rehydrate: %v", out)
	}
}

func TestDeleteWaitsForEvictionFlush(t *testing.T) {
	// DELETE racing an eviction flush (and any rehydration) must leave the
	// id fully gone: no live session serving an unlinked directory.
	dir := t.TempDir()
	srv, ts := durableServer(t, Config{DataDir: dir, SessionEntries: 1})
	id1 := createSession(t, ts, sampleText)
	s1, ok := srv.a.sessions.get(id1)
	if !ok {
		t.Fatal("created session not in store")
	}
	s1.mu.Lock()

	body := mustJSON(t, map[string]interface{}{"data": sampleText})
	createDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/session", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != 200 {
				err = fmt.Errorf("create status %d", resp.StatusCode)
			}
		}
		createDone <- err
	}()
	waitFor(t, func() bool { _, ok := srv.a.sessions.evicting(id1); return ok })

	delDone := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id1, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			delDone <- -1
			return
		}
		resp.Body.Close()
		delDone <- resp.StatusCode
	}()

	s1.mu.Unlock()
	if err := <-createDone; err != nil {
		t.Fatal(err)
	}
	if code := <-delDone; code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, sessionsSubdir, id1)); !os.IsNotExist(err) {
		t.Fatalf("session dir survives delete: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/session/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("deleted id still serving: status %d", resp.StatusCode)
	}
}

func TestInMemoryEvictionStays404(t *testing.T) {
	// Without DataDir, eviction forgets the session; the 404 shape matches
	// an unknown id, and the evictions counter still advances.
	s, ts := durableServer(t, Config{SessionEntries: 1})
	id1 := createSession(t, ts, sampleText)
	createSession(t, ts, sampleText)
	if got := s.SessionEvictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	status, out := post(t, ts, "/v1/session/"+id1+"/mutate", mustJSON(t, map[string]interface{}{"delta": nthDelta(0)}))
	if status != 404 || out["error"] == nil || !strings.Contains(out["error"].(string), "unknown session") {
		t.Fatalf("evicted in-memory session: status %d: %v", status, out)
	}
}

func TestDurableDeleteRemovesDir(t *testing.T) {
	dir := t.TempDir()
	_, ts := durableServer(t, Config{DataDir: dir})
	id := createSession(t, ts, sampleText)
	sdir := filepath.Join(dir, sessionsSubdir, id)
	if _, err := os.Stat(sdir); err != nil {
		t.Fatalf("session dir not created: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if _, err := os.Stat(sdir); !os.IsNotExist(err) {
		t.Fatalf("session dir survives delete: %v", err)
	}
	// Deleting again (or any further use) is a plain 404.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("second delete status %d", resp.StatusCode)
	}
}

func TestInMemoryLeavesNoFiles(t *testing.T) {
	// DataDir unset: sessions must not touch the filesystem. Run a full
	// lifecycle and confirm an empty scratch dir stays empty.
	scratch := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(scratch); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	_, ts := durableServer(t, Config{})
	id := createSession(t, ts, sampleText)
	mutateOK(t, ts, id, nthDelta(0))
	entries, err := os.ReadDir(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("in-memory session wrote files: %v", entries)
	}
}

func TestInMemoryMutateNoExtraAllocations(t *testing.T) {
	// The durable hook must be free when DataDir is unset: persistLocked on
	// a log-less session performs zero allocations.
	g, err := schemex.ReadGraph(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := schemex.PrepareContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	s := &session{id: "0123456789abcdef0123456789abcdef", prep: prep}
	a := newAPI(Config{})
	d := schemex.NewDelta().Link("x", "y", "l")
	if allocs := testing.AllocsPerRun(100, func() {
		if err := s.persistLocked(a, d, prep); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("persistLocked allocates %v times on the in-memory path", allocs)
	}
}

func TestValidSessionID(t *testing.T) {
	ok := "0123456789abcdef0123456789abcdef"
	for _, tc := range []struct {
		id   string
		want bool
	}{
		{ok, true},
		{"", false},
		{"../../../../etc/passwd", false},
		{ok[:31], false},
		{ok + "0", false},
		{strings.ToUpper(ok), false},
		{"0123456789abcdef0123456789abcde/", false},
		{"0123456789abcdef0123456789abcdeg", false},
	} {
		if got := validSessionID(tc.id); got != tc.want {
			t.Errorf("validSessionID(%q) = %v, want %v", tc.id, got, tc.want)
		}
	}
}
