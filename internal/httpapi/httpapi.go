// Package httpapi exposes schema extraction as a small JSON-over-HTTP
// service (stdlib net/http only). cmd/schemex-server wires it to a listener;
// the handler is also exercised directly by httptest-based tests.
//
// Endpoints (all request bodies are JSON envelopes):
//
//	POST /v1/extract  {data, format, options}        -> schema + defect report
//	POST /v1/sweep    {data, format, options}        -> sensitivity curve
//	POST /v1/check    {data, format, schema}         -> conformance report
//	POST /v1/query    {data, format, path, guided}   -> matching objects
//	GET  /v1/healthz                                 -> 200 ok
//
// Delta sessions expose extraction over evolving data (see session.go):
//
//	POST   /v1/session                    {data, format}  -> session id
//	GET    /v1/session/{id}                               -> session info
//	DELETE /v1/session/{id}                               -> drop the session
//	POST   /v1/session/{id}/mutate        {delta}         -> apply edits
//	POST   /v1/session/{id}/extract       {options}       -> schema + defects
//
// "format" is "text" (the link/atomic line format, default), "oem", or
// "json". Errors come back as {"error": "..."} with a 4xx status.
package httpapi

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"schemex"
	"schemex/internal/wal"
)

// MaxBody caps request bodies (data sets are inlined in the envelope).
const MaxBody = 32 << 20

// ExtractLimits is the resource budget applied to every extract/sweep
// request: the input already passed MaxBody, so the graph caps mirror that
// scale, and the wall-clock cap keeps one adversarial dataset from pinning a
// worker forever.
var ExtractLimits = schemex.Limits{MaxWallTime: 2 * time.Minute}

// extractStatus maps an extraction error to an HTTP status: client-closed
// (499, the de-facto nginx code) for request cancellation, 503 for an
// expired budget, 500 for an internal invariant failure, 422 otherwise.
func extractStatus(err error) int {
	var le *schemex.LimitError
	var ie *schemex.InternalError
	switch {
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.As(err, &le):
		return http.StatusUnprocessableEntity
	case errors.As(err, &ie):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// Options mirrors schemex.Options for the wire.
type Options struct {
	K                 int      `json:"k,omitempty"`
	Delta             string   `json:"delta,omitempty"`
	AllowEmpty        bool     `json:"allowEmpty,omitempty"`
	MultiRole         bool     `json:"multiRole,omitempty"`
	UseSorts          bool     `json:"useSorts,omitempty"`
	SeedSchema        string   `json:"seedSchema,omitempty"`
	ValueLabels       []string `json:"valueLabels,omitempty"`
	MaxDistance       int      `json:"maxDistance,omitempty"`
	MaxDirtyTypesFrac float64  `json:"maxDirtyTypesFrac,omitempty"`
}

func (o Options) toLib() schemex.Options {
	return schemex.Options{
		K:                 o.K,
		Delta:             o.Delta,
		AllowEmpty:        o.AllowEmpty,
		MultiRole:         o.MultiRole,
		UseSorts:          o.UseSorts,
		SeedSchema:        o.SeedSchema,
		ValueLabels:       o.ValueLabels,
		MaxDistance:       o.MaxDistance,
		MaxDirtyTypesFrac: o.MaxDirtyTypesFrac,
	}
}

type extractRequest struct {
	Data    string  `json:"data"`
	Format  string  `json:"format,omitempty"`
	Options Options `json:"options,omitempty"`
}

// TypeJSON is one extracted type on the wire.
type TypeJSON struct {
	Name       string `json:"name"`
	Definition string `json:"definition"`
	Weight     int    `json:"weight"`
	Size       int    `json:"size"`
}

// IncrementalJSON reports which stages of one extraction warm-started from
// retained session state, with the per-stage wall clock in milliseconds.
// Observability only: warm and cold responses carry identical schemas.
type IncrementalJSON struct {
	Stage1Warm   bool    `json:"stage1Warm"`
	Stage2Warm   bool    `json:"stage2Warm"`
	Stage3Warm   bool    `json:"stage3Warm"`
	FastPath     bool    `json:"fastPath"`
	DirtyTypes   int     `json:"dirtyTypes"`
	DirtyObjects int     `json:"dirtyObjects"`
	Stage1Ms     float64 `json:"stage1Ms"`
	Stage2Ms     float64 `json:"stage2Ms"`
	Stage3Ms     float64 `json:"stage3Ms"`
	TotalMs      float64 `json:"totalMs"`
}

type extractResponse struct {
	Schema       string           `json:"schema"`
	PerfectTypes int              `json:"perfectTypes"`
	NumTypes     int              `json:"numTypes"`
	AutoK        int              `json:"autoK,omitempty"`
	Defect       int              `json:"defect"`
	Excess       int              `json:"excess"`
	Deficit      int              `json:"deficit"`
	Unclassified int              `json:"unclassified"`
	Types        []TypeJSON       `json:"types"`
	Incremental  *IncrementalJSON `json:"incremental,omitempty"`
}

type sweepResponse struct {
	Suggested int                  `json:"suggested"`
	Points    []schemex.SweepPoint `json:"points"`
}

type checkRequest struct {
	Data   string `json:"data"`
	Format string `json:"format,omitempty"`
	Schema string `json:"schema"`
}

type checkResponse struct {
	Conforms     bool           `json:"conforms"`
	Excess       int            `json:"excess"`
	Unclassified int            `json:"unclassified"`
	Types        map[string]int `json:"types"`
}

type queryRequest struct {
	Data   string  `json:"data"`
	Format string  `json:"format,omitempty"`
	Path   string  `json:"path"`
	Guided bool    `json:"guided,omitempty"`
	Opts   Options `json:"options,omitempty"`
}

type queryResponse struct {
	Matches []string `json:"matches"`
	Count   int      `json:"count"`
}

// DefaultCacheEntries is the prepared-snapshot LRU capacity when Config
// leaves it unset. Entries hold a full graph plus its compiled snapshot, so
// the default is kept small; repeated traffic over a handful of datasets is
// the pattern the cache serves.
const DefaultCacheEntries = 8

// DefaultSessionEntries bounds live delta sessions when Config leaves it
// unset. Sessions pin a graph and snapshot each, like cache entries, but are
// addressed by id and mutated in place, so idle ones are evicted LRU.
const DefaultSessionEntries = 64

// Config sizes a handler's server-side state.
type Config struct {
	// CacheEntries is the prepared-snapshot LRU capacity (default
	// DefaultCacheEntries). It must be positive: a server that cannot hold
	// even one snapshot would silently recompile on every request, so
	// NewHandler panics rather than accepting zero or less (flag validation
	// belongs in the caller, e.g. cmd/schemex-server).
	CacheEntries int
	// SessionEntries caps concurrent delta sessions (default
	// DefaultSessionEntries); the least recently used session is dropped
	// when a new one would exceed the cap. With DataDir set, eviction
	// flushes the session's log and forgets only the in-memory copy — the
	// next request for its id rehydrates it from disk.
	SessionEntries int
	// DataDir, when non-empty, makes delta sessions durable: every accepted
	// delta is written to a per-session write-ahead log under
	// DataDir/sessions/<id>/ before the mutation is acknowledged, and
	// NewServer recovers all sessions found there on startup. Empty (the
	// default) keeps sessions purely in memory, exactly as before.
	DataDir string
	// SyncEvery and SyncInterval set the log's group-commit policy (see
	// wal.SyncPolicy): with both zero every append is fsynced before the
	// mutation is acknowledged. SyncEvery=N batches up to N appends per
	// fsync; SyncInterval flushes on a timer instead. Only consulted when
	// DataDir is set.
	SyncEvery    int
	SyncInterval time.Duration
	// SpillEvery is the number of logged deltas between snapshot spills
	// (default DefaultSpillEvery). A spill bounds restart replay work and
	// truncates the log by rotating to a fresh generation.
	SpillEvery int
	// SpillBytes, when positive, also triggers a snapshot spill whenever the
	// session's log grows past this many bytes, whichever of the two
	// thresholds trips first. Delta records vary enormously in size (one
	// unlink versus a thousand-link batch), so a byte bound keeps restart
	// replay time proportional to data volume, not delta count. Zero disables
	// the byte trigger.
	SpillBytes int64
	// RecoverConcurrency caps how many session directories startup recovery
	// rehydrates at once (default DefaultRecoverConcurrency). Replaying a log
	// re-runs graph parsing and snapshot compilation per session, so the pool
	// bounds both CPU and peak memory during a restart over a large DataDir.
	RecoverConcurrency int
	// MemBudget, when positive, bounds the bytes of compiled shard data each
	// prepared snapshot lineage holds resident (schemex.Options.MemBudget):
	// shards past the budget spill to disk and fault back in on access, with
	// counters on /v1/metrics (schemex_shard_faults / _evictions / _pins).
	// Applies to cache entries, sessions, and recovery alike; 0 keeps
	// everything resident. Results are bit-identical at any budget.
	MemBudget int64
	// QueueDepth bounds queued-but-unapplied mutations per session (default
	// DefaultQueueDepth); past it mutate requests shed with 429 +
	// Retry-After. See queue.go.
	QueueDepth int
	// BatchMax caps how many queued deltas one drainer pass applies as a
	// single batch (default DefaultBatchMax). 1 disables batching: every
	// mutation pays its own apply and fsync, the pre-queue behavior.
	BatchMax int
	// BatchWindow, when positive, makes the drainer wait this long before
	// each pass so a burst can accumulate into one batch. Zero (the default)
	// drains as fast as mutations arrive — bursts still batch because jobs
	// queue up behind the in-flight pass.
	BatchWindow time.Duration
}

// api is one handler instance's state: the snapshot cache, the session
// store, and (when DataDir is set) the durability knobs. All handlers hang
// off it so separate handlers (tests, embedders) never share caches through
// package globals.
type api struct {
	snapshots prepCache
	sessions  sessionStore

	// Durability; zero values when Config.DataDir was empty.
	dataDir    string
	pol        wal.SyncPolicy
	spillEvery int
	spillBytes int64
	recoverPar int
	memBudget  int64

	// recoverMu serializes disk-level session lifecycle (rehydrate, delete,
	// startup recovery) so two requests for the same evicted id cannot both
	// open its log. corrupt pins sessions whose durable state was refused —
	// the verdict is remembered instead of re-scanning the bad log on every
	// request. Both are touched only with recoverMu held.
	recoverMu sync.Mutex
	corrupt   map[string]error

	// The batching write pipeline (queue.go): one mutation queue per active
	// session id, each drained by a single goroutine tracked in queueWG.
	// queuesClosed rejects new enqueues during shutdown so Close can wait for
	// every drainer to flush. queuesMu guards the registry and the closed
	// flag, and is held across WaitGroup registration so no drainer starts
	// after Close begins waiting.
	queuesMu     sync.Mutex
	queues       map[string]*mutQueue
	queuesClosed bool
	queueWG      sync.WaitGroup
	queueDepth   int
	batchMax     int
	batchWindow  time.Duration
}

func newAPI(cfg Config) *api {
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.SessionEntries == 0 {
		cfg.SessionEntries = DefaultSessionEntries
	}
	if cfg.CacheEntries < 0 || cfg.SessionEntries < 0 {
		panic(fmt.Sprintf("httpapi: non-positive capacities in %+v", cfg))
	}
	if cfg.SpillEvery == 0 {
		cfg.SpillEvery = DefaultSpillEvery
	}
	if cfg.SpillEvery < 0 || cfg.SpillBytes < 0 {
		panic(fmt.Sprintf("httpapi: negative spill threshold in %+v", cfg))
	}
	if cfg.RecoverConcurrency == 0 {
		cfg.RecoverConcurrency = DefaultRecoverConcurrency
	}
	if cfg.RecoverConcurrency < 0 {
		panic(fmt.Sprintf("httpapi: negative RecoverConcurrency in %+v", cfg))
	}
	if cfg.MemBudget < 0 {
		panic(fmt.Sprintf("httpapi: negative MemBudget in %+v", cfg))
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BatchMax == 0 {
		cfg.BatchMax = DefaultBatchMax
	}
	if cfg.QueueDepth < 0 || cfg.BatchMax < 0 || cfg.BatchWindow < 0 {
		panic(fmt.Sprintf("httpapi: negative queue sizing in %+v", cfg))
	}
	a := &api{
		snapshots:  prepCache{max: cfg.CacheEntries},
		sessions:   sessionStore{max: cfg.SessionEntries},
		dataDir:    cfg.DataDir,
		pol:        wal.SyncPolicy{Every: cfg.SyncEvery, Interval: cfg.SyncInterval},
		spillEvery: cfg.SpillEvery,
		spillBytes: cfg.SpillBytes,
		recoverPar: cfg.RecoverConcurrency,
		memBudget:  cfg.MemBudget,
		corrupt:    make(map[string]error),

		queues:      make(map[string]*mutQueue),
		queueDepth:  cfg.QueueDepth,
		batchMax:    cfg.BatchMax,
		batchWindow: cfg.BatchWindow,
	}
	// Eviction flushes rather than drops: close() syncs and closes the log
	// so the durable copy is complete before the in-memory one is forgotten.
	// A failed flush means acknowledged deltas may not be durable — log it
	// loudly; the next rehydration still replays whatever the file holds.
	a.sessions.onEvict = func(s *session) {
		if err := s.close(); err != nil {
			log.Printf("httpapi: session %s: flushing evicted session log: %v", s.id, err)
		}
	}
	return a
}

// Server is a handler plus lifecycle: it owns the durable session state under
// Config.DataDir and flushes it on Close. cmd/schemex-server drives one;
// tests construct several over the same DataDir to exercise recovery.
type Server struct {
	a *api
	h http.Handler
}

// NewServer builds the API, recovering any durable sessions found under
// cfg.DataDir. Sessions whose logs are corrupt are refused individually (they
// keep returning errors until deleted); only an unusable DataDir itself is a
// construction error.
func NewServer(cfg Config) (*Server, error) {
	a := newAPI(cfg)
	if a.dataDir != "" {
		if err := os.MkdirAll(filepath.Join(a.dataDir, sessionsSubdir), 0o755); err != nil {
			return nil, fmt.Errorf("httpapi: preparing data dir: %v", err)
		}
		if err := a.recoverAll(); err != nil {
			return nil, fmt.Errorf("httpapi: recovering sessions: %v", err)
		}
	}
	return &Server{a: a, h: a.routes()}, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.h }

// SessionEvictions reports how many sessions the LRU cap has flushed.
func (s *Server) SessionEvictions() uint64 { return s.a.sessions.Evictions() }

// Close flushes and closes every live session's write-ahead log. After Close
// the handler must not serve further requests; durable state on disk is
// complete and a future NewServer over the same DataDir recovers it. A
// non-nil error means at least one session's final flush failed — under a
// batched sync policy its acknowledged deltas may not have reached disk, so
// callers (cmd/schemex-server) must report it rather than claim a clean
// shutdown.
func (s *Server) Close() error {
	// Stop accepting mutations, then let every drainer flush its queued jobs
	// — applied and logged, or failed with a terminal status — while the
	// session logs are still open. Only then close the logs: no accepted job
	// is ever left "queued" and no applied delta unlogged.
	s.a.queuesMu.Lock()
	s.a.queuesClosed = true
	s.a.queuesMu.Unlock()
	s.a.queueWG.Wait()
	var errs []error
	for _, sess := range s.a.sessions.drain() {
		if err := sess.close(); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", sess.id, err))
		}
	}
	return errors.Join(errs...)
}

func (a *api) routes() http.Handler {
	mux := http.NewServeMux()
	// Every route is wrapped with the pattern as its metrics label, feeding
	// the per-endpoint latency/size percentiles on /v1/metrics (metrics.go).
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrumentRoute(pattern, h))
	}
	handle("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	// Process-wide counters (see metrics.go) plus whatever else the process
	// published on the standard expvar surface.
	handle("GET /v1/metrics", expvar.Handler().ServeHTTP)
	handle("/v1/extract", a.handleExtract)
	handle("/v1/sweep", a.handleSweep)
	handle("/v1/check", handleCheck)
	handle("/v1/query", a.handleQuery)
	handle("POST /v1/session", a.handleSessionCreate)
	handle("GET /v1/session/{id}", a.handleSessionGet)
	handle("DELETE /v1/session/{id}", a.handleSessionDelete)
	handle("POST /v1/session/{id}/mutate", a.handleSessionMutate)
	handle("POST /v1/session/{id}/extract", a.handleSessionExtract)
	handle("GET /v1/session/{id}/job/{jobID}", a.handleJobStatus)
	return mux
}

// NewHandler returns an API handler with its own caches, sized by cfg. For a
// durable configuration prefer NewServer, which surfaces recovery errors and
// owns shutdown flushing; NewHandler panics if cfg.DataDir cannot be used.
func NewHandler(cfg Config) http.Handler {
	s, err := NewServer(cfg)
	if err != nil {
		panic(err)
	}
	return s.Handler()
}

// Handler returns an API handler with default capacities.
func Handler() http.Handler { return NewHandler(Config{}) }

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON marshals v fully before touching the response: an encoding
// failure becomes a clean 500 error envelope instead of a silently truncated
// 200 body, and a failed write (client gone mid-response) is logged rather
// than dropped.
func writeJSON(w http.ResponseWriter, v interface{}) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Printf("httpapi: encoding response: %v", err)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %v", err))
		return
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf); err != nil {
		log.Printf("httpapi: writing response: %v", err)
	}
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

// prepCache is a content-hash-keyed LRU of prepared extraction contexts:
// repeated /v1/extract, /v1/sweep, and /v1/query requests carrying the same
// (format, data) pair skip the parse and the snapshot compilation entirely.
// Entries are immutable once stored, so concurrent readers can share them.
type prepCache struct {
	mu      sync.Mutex
	max     int              // capacity; 0 means DefaultCacheEntries
	entries []prepCacheEntry // front = most recently used
}

type prepCacheEntry struct {
	key  [sha256.Size]byte
	prep *schemex.Prepared
}

func (c *prepCache) get(key [sha256.Size]byte) (*schemex.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		if e.key == key {
			copy(c.entries[1:], c.entries[:i])
			c.entries[0] = e
			return e.prep, true
		}
	}
	return nil, false
}

func (c *prepCache) put(key [sha256.Size]byte, prep *schemex.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		if e.key == key {
			copy(c.entries[1:], c.entries[:i])
			c.entries[0] = prepCacheEntry{key, prep}
			return
		}
	}
	max := c.max
	if max == 0 {
		max = DefaultCacheEntries
	}
	if len(c.entries) < max {
		c.entries = append(c.entries, prepCacheEntry{})
	} else {
		metricSnapshotEvictions.Add(1) // the back entry is about to be shifted out
	}
	copy(c.entries[1:], c.entries)
	c.entries[0] = prepCacheEntry{key, prep}
}

func (c *prepCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func prepKey(data, format string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(format))
	h.Write([]byte{0})
	h.Write([]byte(data))
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// loadPrepared returns a prepared extraction context for the request data,
// hitting the snapshot cache when the same dataset was served before. On
// error the returned status is the HTTP code to report (load failures are
// the client's fault; preparation failures follow extractStatus).
func (a *api) loadPrepared(ctx context.Context, data, format string) (*schemex.Prepared, int, error) {
	key := prepKey(data, format)
	if prep, ok := a.snapshots.get(key); ok {
		metricSnapshotHits.Add(1)
		return prep, 0, nil
	}
	metricSnapshotMisses.Add(1)
	g, err := loadData(data, format)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	prep, err := schemex.PrepareOptions(ctx, g, schemex.Options{MemBudget: a.memBudget})
	if err != nil {
		return nil, extractStatus(err), err
	}
	a.snapshots.put(key, prep)
	return prep, 0, nil
}

func loadData(data, format string) (*schemex.Graph, error) {
	if strings.TrimSpace(data) == "" {
		return nil, fmt.Errorf("empty data")
	}
	switch format {
	case "", "text":
		return schemex.ReadGraph(strings.NewReader(data))
	case "oem":
		return schemex.ParseOEMString(data)
	case "json":
		return schemex.ParseJSON(strings.NewReader(data), "root")
	default:
		return nil, fmt.Errorf("unknown format %q (text, oem, json)", format)
	}
}

// extractOver runs one bounded extraction against prep and writes the JSON
// response (or the mapped error); shared by /v1/extract and session extract.
func extractOver(w http.ResponseWriter, r *http.Request, prep *schemex.Prepared, o Options) {
	opts := o.toLib()
	opts.Limits = ExtractLimits
	res, err := schemex.ExtractPreparedContext(r.Context(), prep, opts)
	if err != nil {
		writeError(w, extractStatus(err), err)
		return
	}
	resp := extractResponse{
		Schema:       res.Schema(),
		PerfectTypes: res.PerfectTypes(),
		NumTypes:     res.NumTypes(),
		AutoK:        res.AutoK(),
		Defect:       res.Defect(),
		Excess:       res.Excess(),
		Deficit:      res.Deficit(),
		Unclassified: res.Unclassified(),
	}
	for _, ti := range res.Types() {
		resp.Types = append(resp.Types, TypeJSON{
			Name: ti.Name, Definition: ti.Definition, Weight: ti.Weight, Size: ti.Size,
		})
	}
	in, tm := res.Incremental(), res.Timing()
	resp.Incremental = &IncrementalJSON{
		Stage1Warm:   in.Stage1Warm,
		Stage2Warm:   in.Stage2Warm,
		Stage3Warm:   in.Stage3Warm,
		FastPath:     in.FastPath,
		DirtyTypes:   in.DirtyTypes,
		DirtyObjects: in.DirtyObjects,
		Stage1Ms:     tm.Stage1.Seconds() * 1e3,
		Stage2Ms:     tm.Stage2.Seconds() * 1e3,
		Stage3Ms:     tm.Stage3.Seconds() * 1e3,
		TotalMs:      tm.Total.Seconds() * 1e3,
	}
	writeJSON(w, resp)
}

func (a *api) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if !decode(w, r, &req) {
		return
	}
	prep, status, err := a.loadPrepared(r.Context(), req.Data, req.Format)
	if err != nil {
		writeError(w, status, err)
		return
	}
	extractOver(w, r, prep, req.Options)
}

func (a *api) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if !decode(w, r, &req) {
		return
	}
	prep, status, err := a.loadPrepared(r.Context(), req.Data, req.Format)
	if err != nil {
		writeError(w, status, err)
		return
	}
	opts := req.Options.toLib()
	opts.Limits = ExtractLimits
	sw, err := schemex.SweepPreparedContext(r.Context(), prep, opts)
	if err != nil {
		writeError(w, extractStatus(err), err)
		return
	}
	writeJSON(w, sweepResponse{Suggested: sw.Suggested, Points: sw.Points})
}

func handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := loadData(req.Data, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	report, err := schemex.Check(g, req.Schema)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, checkResponse{
		Conforms:     report.Conforms(),
		Excess:       report.Excess,
		Unclassified: report.Unclassified,
		Types:        report.Types,
	})
}

func (a *api) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	prep, status, err := a.loadPrepared(r.Context(), req.Data, req.Format)
	if err != nil {
		writeError(w, status, err)
		return
	}
	var matches []string
	if req.Guided {
		res, err := schemex.ExtractPreparedContext(r.Context(), prep, req.Opts.toLib())
		if err != nil {
			writeError(w, extractStatus(err), err)
			return
		}
		matches, err = res.FindPath(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		matches, err = prep.Graph().FindPath(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, queryResponse{Matches: matches, Count: len(matches)})
}
