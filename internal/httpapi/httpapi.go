// Package httpapi exposes schema extraction as a small JSON-over-HTTP
// service (stdlib net/http only). cmd/schemex-server wires it to a listener;
// the handler is also exercised directly by httptest-based tests.
//
// Endpoints (all request bodies are JSON envelopes):
//
//	POST /v1/extract  {data, format, options}        -> schema + defect report
//	POST /v1/sweep    {data, format, options}        -> sensitivity curve
//	POST /v1/check    {data, format, schema}         -> conformance report
//	POST /v1/query    {data, format, path, guided}   -> matching objects
//	GET  /v1/healthz                                 -> 200 ok
//
// "format" is "text" (the link/atomic line format, default), "oem", or
// "json". Errors come back as {"error": "..."} with a 4xx status.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"schemex"
)

// MaxBody caps request bodies (data sets are inlined in the envelope).
const MaxBody = 32 << 20

// ExtractLimits is the resource budget applied to every extract/sweep
// request: the input already passed MaxBody, so the graph caps mirror that
// scale, and the wall-clock cap keeps one adversarial dataset from pinning a
// worker forever.
var ExtractLimits = schemex.Limits{MaxWallTime: 2 * time.Minute}

// extractStatus maps an extraction error to an HTTP status: client-closed
// (499, the de-facto nginx code) for request cancellation, 503 for an
// expired budget, 500 for an internal invariant failure, 422 otherwise.
func extractStatus(err error) int {
	var le *schemex.LimitError
	var ie *schemex.InternalError
	switch {
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.As(err, &le):
		return http.StatusUnprocessableEntity
	case errors.As(err, &ie):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// Options mirrors schemex.Options for the wire.
type Options struct {
	K           int      `json:"k,omitempty"`
	Delta       string   `json:"delta,omitempty"`
	AllowEmpty  bool     `json:"allowEmpty,omitempty"`
	MultiRole   bool     `json:"multiRole,omitempty"`
	UseSorts    bool     `json:"useSorts,omitempty"`
	SeedSchema  string   `json:"seedSchema,omitempty"`
	ValueLabels []string `json:"valueLabels,omitempty"`
	MaxDistance int      `json:"maxDistance,omitempty"`
}

func (o Options) toLib() schemex.Options {
	return schemex.Options{
		K:           o.K,
		Delta:       o.Delta,
		AllowEmpty:  o.AllowEmpty,
		MultiRole:   o.MultiRole,
		UseSorts:    o.UseSorts,
		SeedSchema:  o.SeedSchema,
		ValueLabels: o.ValueLabels,
		MaxDistance: o.MaxDistance,
	}
}

type extractRequest struct {
	Data    string  `json:"data"`
	Format  string  `json:"format,omitempty"`
	Options Options `json:"options,omitempty"`
}

// TypeJSON is one extracted type on the wire.
type TypeJSON struct {
	Name       string `json:"name"`
	Definition string `json:"definition"`
	Weight     int    `json:"weight"`
	Size       int    `json:"size"`
}

type extractResponse struct {
	Schema       string     `json:"schema"`
	PerfectTypes int        `json:"perfectTypes"`
	NumTypes     int        `json:"numTypes"`
	AutoK        int        `json:"autoK,omitempty"`
	Defect       int        `json:"defect"`
	Excess       int        `json:"excess"`
	Deficit      int        `json:"deficit"`
	Unclassified int        `json:"unclassified"`
	Types        []TypeJSON `json:"types"`
}

type sweepResponse struct {
	Suggested int                  `json:"suggested"`
	Points    []schemex.SweepPoint `json:"points"`
}

type checkRequest struct {
	Data   string `json:"data"`
	Format string `json:"format,omitempty"`
	Schema string `json:"schema"`
}

type checkResponse struct {
	Conforms     bool           `json:"conforms"`
	Excess       int            `json:"excess"`
	Unclassified int            `json:"unclassified"`
	Types        map[string]int `json:"types"`
}

type queryRequest struct {
	Data   string  `json:"data"`
	Format string  `json:"format,omitempty"`
	Path   string  `json:"path"`
	Guided bool    `json:"guided,omitempty"`
	Opts   Options `json:"options,omitempty"`
}

type queryResponse struct {
	Matches []string `json:"matches"`
	Count   int      `json:"count"`
}

// Handler returns the API handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/extract", handleExtract)
	mux.HandleFunc("/v1/sweep", handleSweep)
	mux.HandleFunc("/v1/check", handleCheck)
	mux.HandleFunc("/v1/query", handleQuery)
	return mux
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func loadData(data, format string) (*schemex.Graph, error) {
	if strings.TrimSpace(data) == "" {
		return nil, fmt.Errorf("empty data")
	}
	switch format {
	case "", "text":
		return schemex.ReadGraph(strings.NewReader(data))
	case "oem":
		return schemex.ParseOEMString(data)
	case "json":
		return schemex.ParseJSON(strings.NewReader(data), "root")
	default:
		return nil, fmt.Errorf("unknown format %q (text, oem, json)", format)
	}
}

func handleExtract(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := loadData(req.Data, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.Options.toLib()
	opts.Limits = ExtractLimits
	res, err := schemex.ExtractContext(r.Context(), g, opts)
	if err != nil {
		writeError(w, extractStatus(err), err)
		return
	}
	resp := extractResponse{
		Schema:       res.Schema(),
		PerfectTypes: res.PerfectTypes(),
		NumTypes:     res.NumTypes(),
		AutoK:        res.AutoK(),
		Defect:       res.Defect(),
		Excess:       res.Excess(),
		Deficit:      res.Deficit(),
		Unclassified: res.Unclassified(),
	}
	for _, ti := range res.Types() {
		resp.Types = append(resp.Types, TypeJSON{
			Name: ti.Name, Definition: ti.Definition, Weight: ti.Weight, Size: ti.Size,
		})
	}
	writeJSON(w, resp)
}

func handleSweep(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := loadData(req.Data, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.Options.toLib()
	opts.Limits = ExtractLimits
	sw, err := schemex.SweepAnalysisContext(r.Context(), g, opts)
	if err != nil {
		writeError(w, extractStatus(err), err)
		return
	}
	writeJSON(w, sweepResponse{Suggested: sw.Suggested, Points: sw.Points})
}

func handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := loadData(req.Data, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	report, err := schemex.Check(g, req.Schema)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, checkResponse{
		Conforms:     report.Conforms(),
		Excess:       report.Excess,
		Unclassified: report.Unclassified,
		Types:        report.Types,
	})
}

func handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := loadData(req.Data, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var matches []string
	if req.Guided {
		res, err := schemex.ExtractContext(r.Context(), g, req.Opts.toLib())
		if err != nil {
			writeError(w, extractStatus(err), err)
			return
		}
		matches, err = res.FindPath(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		matches, err = g.FindPath(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, queryResponse{Matches: matches, Count: len(matches)})
}
