package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleText = `link gates microsoft is-manager-of
link microsoft gates is-managed-by
link jobs apple is-manager-of
link apple jobs is-managed-by
link gates gn name
link jobs jn name
link microsoft mn name
link apple an name
atomic gn string Gates
atomic jn string Jobs
atomic mn string Microsoft
atomic an string Apple
`

func post(t *testing.T, srv *httptest.Server, path, body string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestExtractEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	body := mustJSON(t, map[string]interface{}{
		"data":    sampleText,
		"options": map[string]interface{}{"k": 2},
	})
	status, out := post(t, srv, "/v1/extract", body)
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["numTypes"].(float64) != 2 || out["perfectTypes"].(float64) != 2 {
		t.Fatalf("response: %v", out)
	}
	if out["defect"].(float64) != 0 {
		t.Fatalf("defect = %v", out["defect"])
	}
	schema := out["schema"].(string)
	if !strings.Contains(schema, "->name[0]") {
		t.Fatalf("schema: %q", schema)
	}
	types := out["types"].([]interface{})
	if len(types) != 2 {
		t.Fatalf("types: %v", types)
	}
}

func TestExtractJSONFormat(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	body := mustJSON(t, map[string]interface{}{
		"data":    `{"name": "Ada", "age": 36}`,
		"format":  "json",
		"options": map[string]interface{}{"k": 1, "useSorts": true},
	})
	status, out := post(t, srv, "/v1/extract", body)
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if !strings.Contains(out["schema"].(string), "[0:int]") {
		t.Fatalf("schema: %v", out["schema"])
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	status, out := post(t, srv, "/v1/sweep", mustJSON(t, map[string]interface{}{"data": sampleText}))
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["points"] == nil || out["suggested"].(float64) < 1 {
		t.Fatalf("response: %v", out)
	}
}

func TestCheckEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	schema := `
type person = ->is-manager-of[firm] & ->name[0] & <-is-managed-by[firm]
type firm = ->is-managed-by[person] & ->name[0] & <-is-manager-of[person]
`
	status, out := post(t, srv, "/v1/check", mustJSON(t, map[string]interface{}{
		"data": sampleText, "schema": schema,
	}))
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["conforms"] != true {
		t.Fatalf("response: %v", out)
	}
	types := out["types"].(map[string]interface{})
	if types["person"].(float64) != 2 || types["firm"].(float64) != 2 {
		t.Fatalf("types: %v", types)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for _, guided := range []bool{false, true} {
		status, out := post(t, srv, "/v1/query", mustJSON(t, map[string]interface{}{
			"data": sampleText, "path": "is-manager-of.name", "guided": guided,
		}))
		if status != 200 {
			t.Fatalf("guided=%v status %d: %v", guided, status, out)
		}
		if out["count"].(float64) != 2 {
			t.Fatalf("guided=%v response: %v", guided, out)
		}
	}
}

func TestErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/v1/extract")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET extract status %d", resp.StatusCode)
	}

	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/extract", `{"data": "", "format": "text"}`, 400},
		{"/v1/extract", `not json`, 400},
		{"/v1/extract", `{"data": "x", "unknownField": 1}`, 400},
		{"/v1/extract", mustJSON(t, map[string]interface{}{"data": sampleText, "format": "frob"}), 400},
		{"/v1/extract", mustJSON(t, map[string]interface{}{
			"data": sampleText, "options": map[string]interface{}{"delta": "nope"}}), 422},
		{"/v1/check", mustJSON(t, map[string]interface{}{"data": sampleText, "schema": "type x = ->a[nowhere]"}), 400},
		{"/v1/query", mustJSON(t, map[string]interface{}{"data": sampleText, "path": "a..b"}), 400},
	}
	for _, c := range cases {
		status, out := post(t, srv, c.path, c.body)
		if status != c.status {
			t.Errorf("POST %s %q: status %d, want %d (%v)", c.path, c.body, status, c.status, out)
		}
		if out["error"] == nil {
			t.Errorf("POST %s: missing error field", c.path)
		}
	}
}
