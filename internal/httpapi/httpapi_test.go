package httpapi

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleText = `link gates microsoft is-manager-of
link microsoft gates is-managed-by
link jobs apple is-manager-of
link apple jobs is-managed-by
link gates gn name
link jobs jn name
link microsoft mn name
link apple an name
atomic gn string Gates
atomic jn string Jobs
atomic mn string Microsoft
atomic an string Apple
`

func post(t *testing.T, srv *httptest.Server, path, body string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestExtractEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	body := mustJSON(t, map[string]interface{}{
		"data":    sampleText,
		"options": map[string]interface{}{"k": 2},
	})
	status, out := post(t, srv, "/v1/extract", body)
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["numTypes"].(float64) != 2 || out["perfectTypes"].(float64) != 2 {
		t.Fatalf("response: %v", out)
	}
	if out["defect"].(float64) != 0 {
		t.Fatalf("defect = %v", out["defect"])
	}
	schema := out["schema"].(string)
	if !strings.Contains(schema, "->name[0]") {
		t.Fatalf("schema: %q", schema)
	}
	types := out["types"].([]interface{})
	if len(types) != 2 {
		t.Fatalf("types: %v", types)
	}
}

func TestExtractJSONFormat(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	body := mustJSON(t, map[string]interface{}{
		"data":    `{"name": "Ada", "age": 36}`,
		"format":  "json",
		"options": map[string]interface{}{"k": 1, "useSorts": true},
	})
	status, out := post(t, srv, "/v1/extract", body)
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if !strings.Contains(out["schema"].(string), "[0:int]") {
		t.Fatalf("schema: %v", out["schema"])
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	status, out := post(t, srv, "/v1/sweep", mustJSON(t, map[string]interface{}{"data": sampleText}))
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["points"] == nil || out["suggested"].(float64) < 1 {
		t.Fatalf("response: %v", out)
	}
}

func TestCheckEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	schema := `
type person = ->is-manager-of[firm] & ->name[0] & <-is-managed-by[firm]
type firm = ->is-managed-by[person] & ->name[0] & <-is-manager-of[person]
`
	status, out := post(t, srv, "/v1/check", mustJSON(t, map[string]interface{}{
		"data": sampleText, "schema": schema,
	}))
	if status != 200 {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["conforms"] != true {
		t.Fatalf("response: %v", out)
	}
	types := out["types"].(map[string]interface{})
	if types["person"].(float64) != 2 || types["firm"].(float64) != 2 {
		t.Fatalf("types: %v", types)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for _, guided := range []bool{false, true} {
		status, out := post(t, srv, "/v1/query", mustJSON(t, map[string]interface{}{
			"data": sampleText, "path": "is-manager-of.name", "guided": guided,
		}))
		if status != 200 {
			t.Fatalf("guided=%v status %d: %v", guided, status, out)
		}
		if out["count"].(float64) != 2 {
			t.Fatalf("guided=%v response: %v", guided, out)
		}
	}
}

func TestErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/v1/extract")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET extract status %d", resp.StatusCode)
	}

	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/extract", `{"data": "", "format": "text"}`, 400},
		{"/v1/extract", `not json`, 400},
		{"/v1/extract", `{"data": "x", "unknownField": 1}`, 400},
		{"/v1/extract", mustJSON(t, map[string]interface{}{"data": sampleText, "format": "frob"}), 400},
		{"/v1/extract", mustJSON(t, map[string]interface{}{
			"data": sampleText, "options": map[string]interface{}{"delta": "nope"}}), 422},
		{"/v1/check", mustJSON(t, map[string]interface{}{"data": sampleText, "schema": "type x = ->a[nowhere]"}), 400},
		{"/v1/query", mustJSON(t, map[string]interface{}{"data": sampleText, "path": "a..b"}), 400},
	}
	for _, c := range cases {
		status, out := post(t, srv, c.path, c.body)
		if status != c.status {
			t.Errorf("POST %s %q: status %d, want %d (%v)", c.path, c.body, status, c.status, out)
		}
		if out["error"] == nil {
			t.Errorf("POST %s: missing error field", c.path)
		}
	}
}

func TestWriteJSONEncodeError(t *testing.T) {
	// math.NaN cannot be marshaled; the handler must answer with a clean
	// 500 error envelope, not a truncated 200 body.
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]interface{}{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("error envelope is not valid JSON: %v (%q)", err, rec.Body.String())
	}
	if out["error"] == "" {
		t.Fatalf("missing error field: %q", rec.Body.String())
	}
}

func TestWriteJSONSuccess(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]int{"n": 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["n"] != 1 {
		t.Fatalf("body %q (err %v)", rec.Body.String(), err)
	}
	if !strings.HasSuffix(rec.Body.String(), "\n") {
		t.Fatal("response body should end with a newline")
	}
}

func TestPrepCacheLRU(t *testing.T) {
	var c prepCache
	key := func(i int) [32]byte {
		var k [32]byte
		k[0] = byte(i)
		return k
	}
	// Fill beyond capacity; the oldest keys must be evicted. The zero-value
	// cache must behave as if sized DefaultCacheEntries.
	for i := 0; i < DefaultCacheEntries+3; i++ {
		c.put(key(i), nil)
	}
	if c.len() != DefaultCacheEntries {
		t.Fatalf("cache holds %d entries, want %d", c.len(), DefaultCacheEntries)
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.get(key(i)); ok {
			t.Fatalf("key %d should have been evicted", i)
		}
	}
	for i := 3; i < DefaultCacheEntries+3; i++ {
		if _, ok := c.get(key(i)); !ok {
			t.Fatalf("key %d should be cached", i)
		}
	}
	// A get refreshes recency: key 3 must now survive one more insertion
	// while key 4 (least recently used) is evicted.
	c.get(key(3))
	c.put(key(100), nil)
	if _, ok := c.get(key(3)); !ok {
		t.Fatal("recently used key 3 was evicted")
	}
	if _, ok := c.get(key(4)); ok {
		t.Fatal("least recently used key 4 should have been evicted")
	}
}

func TestSnapshotCacheServesRepeatTraffic(t *testing.T) {
	a := newAPI(Config{})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()
	data := sampleText + "link gates pets has-pet\nlink pets gates owned-by\n"
	body := mustJSON(t, map[string]interface{}{
		"data":    data,
		"options": map[string]interface{}{"k": 2},
	})
	status, first := post(t, srv, "/v1/extract", body)
	if status != 200 {
		t.Fatalf("cold status %d: %v", status, first)
	}
	before := a.snapshots.len()
	status, second := post(t, srv, "/v1/extract", body)
	if status != 200 {
		t.Fatalf("warm status %d: %v", status, second)
	}
	if a.snapshots.len() != before {
		t.Fatalf("repeat request grew the cache: %d -> %d", before, a.snapshots.len())
	}
	if first["schema"] != second["schema"] {
		t.Fatalf("cached snapshot changed the result:\n%v\n%v", first["schema"], second["schema"])
	}
	// Same data with different options reuses the snapshot but recomputes
	// the typing.
	status, third := post(t, srv, "/v1/extract", mustJSON(t, map[string]interface{}{
		"data":    data,
		"options": map[string]interface{}{"k": 1},
	}))
	if status != 200 {
		t.Fatalf("k=1 status %d: %v", status, third)
	}
	if third["numTypes"].(float64) != 1 {
		t.Fatalf("k=1 over a warm snapshot: %v", third["numTypes"])
	}
	// Sweep and query over the same dataset also ride the cache.
	status, _ = post(t, srv, "/v1/sweep", mustJSON(t, map[string]interface{}{"data": data}))
	if status != 200 {
		t.Fatalf("sweep status %d", status)
	}
	status, q := post(t, srv, "/v1/query", mustJSON(t, map[string]interface{}{
		"data": data, "path": "is-manager-of.name", "guided": true,
	}))
	if status != 200 || q["count"].(float64) != 2 {
		t.Fatalf("query status %d: %v", status, q)
	}
	if a.snapshots.len() != before {
		t.Fatalf("same-data sweep/query grew the cache: %d -> %d", before, a.snapshots.len())
	}
}
