// Operational counters on the standard expvar surface, served at
// GET /v1/metrics. All registrations go through metricInt/metricFunc, which
// reuse an existing variable instead of re-registering — expvar panics on
// duplicate names, and the package must stay safe to initialize (and its
// servers safe to construct, many per process) in programs that already
// published these names or that link two copies of the registration path.
// The counters are process-wide: they aggregate across every handler
// instance, which is also what a scraper of the endpoint expects.
package httpapi

import (
	"expvar"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"schemex"
)

// metricInt returns the named expvar Int, registering it on first use. A
// name already published as an Int is adopted rather than re-registered (no
// panic); a name published as some other type is shadowed by an unpublished
// Int so callers can still Add without crashing the process.
func metricInt(name string) *expvar.Int {
	if v, ok := expvar.Get(name).(*expvar.Int); ok {
		return v
	}
	if expvar.Get(name) != nil {
		return new(expvar.Int)
	}
	return expvar.NewInt(name)
}

// metricFunc publishes a computed variable once; later calls with a name
// already on the surface are no-ops.
func metricFunc(name string, f func() interface{}) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(f))
	}
}

var (
	// Prepared-snapshot cache (keyed by request content hash).
	metricSnapshotHits      = metricInt("schemex_snapshot_cache_hits")
	metricSnapshotMisses    = metricInt("schemex_snapshot_cache_misses")
	metricSnapshotEvictions = metricInt("schemex_snapshot_cache_evictions")

	// Delta-session store. A hit is a request resolving a live in-store
	// session; a miss had to rehydrate from disk or report 404; an eviction is
	// the LRU cap flushing a session out.
	metricSessionHits      = metricInt("schemex_session_store_hits")
	metricSessionMisses    = metricInt("schemex_session_store_misses")
	metricSessionEvictions = metricInt("schemex_session_store_evictions")

	// Mutation outcomes: incremental counts deltas applied with structural
	// sharing, fallback counts full recompiles (label-universe changes or
	// atomic/complex flips). Results are identical either way; the ratio is
	// the health signal for incremental maintenance.
	metricApplyIncremental = metricInt("schemex_apply_incremental")
	metricApplyFallback    = metricInt("schemex_apply_fallback")

	// Mutations shed with 429 because a session's queue was full (queue.go).
	metricQueueShed = metricInt("schemex_queue_shed")
)

// Shard residency counters (Config.MemBudget): read live from the library's
// process-wide counters so they need no per-handler plumbing. Faults are
// shards decoded back in from spill files, evictions shards dropped to meet
// a budget, pins the phases that held their working set resident.
func init() {
	metricFunc("schemex_shard_faults", func() interface{} {
		return schemex.ReadResidencyStats().ShardFaults
	})
	metricFunc("schemex_shard_evictions", func() interface{} {
		return schemex.ReadResidencyStats().ShardEvictions
	})
	metricFunc("schemex_shard_pins", func() interface{} {
		return schemex.ReadResidencyStats().ShardPins
	})
	// Per-endpoint request percentiles and write-pipeline gauges, computed on
	// demand from the process-wide rings below.
	metricFunc("schemex_http", httpMetricsValue)
	metricFunc("schemex_queue", queueMetricsValue)
}

// sampleRing holds the most recent values of one distribution; percentiles
// are computed over its window on demand. Process-wide like every other
// metric here, guarded by its owner's mutex.
type sampleRing struct {
	vals  []float64
	next  int
	count uint64
}

const ringWindow = 512

func (r *sampleRing) add(v float64) {
	if len(r.vals) < ringWindow {
		r.vals = append(r.vals, v)
	} else {
		r.vals[r.next] = v
		r.next = (r.next + 1) % ringWindow
	}
	r.count++
}

// percentiles returns the requested nearest-rank percentiles over the window.
func (r *sampleRing) percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(r.vals) == 0 {
		return out
	}
	sorted := append([]float64(nil), r.vals...)
	sort.Float64s(sorted)
	for i, p := range ps {
		k := int(math.Ceil(p/100*float64(len(sorted)))) - 1
		if k < 0 {
			k = 0
		}
		out[i] = sorted[k]
	}
	return out
}

// routeStats is one endpoint's distributions: latency in milliseconds and
// response size in bytes, over the most recent ringWindow requests.
type routeStats struct {
	lat  sampleRing
	size sampleRing
}

var httpMetrics = struct {
	mu     sync.Mutex
	routes map[string]*routeStats
}{routes: make(map[string]*routeStats)}

func recordRoute(route string, elapsed time.Duration, bytes int) {
	httpMetrics.mu.Lock()
	rs := httpMetrics.routes[route]
	if rs == nil {
		rs = &routeStats{}
		httpMetrics.routes[route] = rs
	}
	rs.lat.add(float64(elapsed) / float64(time.Millisecond))
	rs.size.add(float64(bytes))
	httpMetrics.mu.Unlock()
}

// httpMetricsValue renders schemex_http: per-route request count plus
// p50/p90/p99 latency (ms) and p50/p99 response size (bytes) over the recent
// window.
func httpMetricsValue() interface{} {
	httpMetrics.mu.Lock()
	defer httpMetrics.mu.Unlock()
	out := make(map[string]interface{}, len(httpMetrics.routes))
	for route, rs := range httpMetrics.routes {
		lat := rs.lat.percentiles(50, 90, 99)
		size := rs.size.percentiles(50, 99)
		out[route] = map[string]interface{}{
			"count":        rs.lat.count,
			"latencyMsP50": lat[0],
			"latencyMsP90": lat[1],
			"latencyMsP99": lat[2],
			"bytesP50":     size[0],
			"bytesP99":     size[1],
		}
	}
	return out
}

// sizeRecorder counts response bytes for the size distribution.
type sizeRecorder struct {
	http.ResponseWriter
	bytes int
}

func (s *sizeRecorder) Write(p []byte) (int, error) {
	n, err := s.ResponseWriter.Write(p)
	s.bytes += n
	return n, err
}

// instrumentRoute wraps one handler with the route pattern as its metrics
// label (the mux pattern is the natural cardinality-bounded label; Go 1.22's
// Request has no Pattern field yet, so the label is threaded explicitly).
func instrumentRoute(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &sizeRecorder{ResponseWriter: w}
		h(sr, r)
		recordRoute(route, time.Since(start), sr.bytes)
	}
}

// Write-pipeline gauges: per-session queued-job depth (live) and the batch
// size distribution over the recent window.
var queueMetrics = struct {
	mu      sync.Mutex
	depth   map[string]int
	batches sampleRing
}{depth: make(map[string]int)}

func setQueueDepth(id string, depth int) {
	queueMetrics.mu.Lock()
	if depth == 0 {
		delete(queueMetrics.depth, id)
	} else {
		queueMetrics.depth[id] = depth
	}
	queueMetrics.mu.Unlock()
}

func recordBatchSize(n int) {
	queueMetrics.mu.Lock()
	queueMetrics.batches.add(float64(n))
	queueMetrics.mu.Unlock()
}

// queueMetricsValue renders schemex_queue: current per-session queue depths
// plus the drained-batch size distribution.
func queueMetricsValue() interface{} {
	queueMetrics.mu.Lock()
	defer queueMetrics.mu.Unlock()
	depth := make(map[string]int, len(queueMetrics.depth))
	for id, d := range queueMetrics.depth {
		depth[id] = d
	}
	b := queueMetrics.batches.percentiles(50, 90, 99)
	return map[string]interface{}{
		"depth":        depth,
		"batches":      queueMetrics.batches.count,
		"batchSizeP50": b[0],
		"batchSizeP90": b[1],
		"batchSizeP99": b[2],
	}
}
