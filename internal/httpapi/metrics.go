// Operational counters on the standard expvar surface, served at
// GET /v1/metrics. The counters are package globals published once at init —
// expvar panics on duplicate names, and tests construct many handlers per
// process — so they aggregate across every handler instance in the process,
// which is also what a scraper of the process-wide endpoint expects.
package httpapi

import "expvar"

var (
	// Prepared-snapshot cache (keyed by request content hash).
	metricSnapshotHits      = expvar.NewInt("schemex_snapshot_cache_hits")
	metricSnapshotMisses    = expvar.NewInt("schemex_snapshot_cache_misses")
	metricSnapshotEvictions = expvar.NewInt("schemex_snapshot_cache_evictions")

	// Delta-session store. A hit is a request resolving a live in-store
	// session; a miss had to rehydrate from disk or report 404; an eviction is
	// the LRU cap flushing a session out.
	metricSessionHits      = expvar.NewInt("schemex_session_store_hits")
	metricSessionMisses    = expvar.NewInt("schemex_session_store_misses")
	metricSessionEvictions = expvar.NewInt("schemex_session_store_evictions")

	// Mutation outcomes: incremental counts deltas applied with structural
	// sharing, fallback counts full recompiles (label-universe changes or
	// atomic/complex flips). Results are identical either way; the ratio is
	// the health signal for incremental maintenance.
	metricApplyIncremental = expvar.NewInt("schemex_apply_incremental")
	metricApplyFallback    = expvar.NewInt("schemex_apply_fallback")
)
