// Operational counters on the standard expvar surface, served at
// GET /v1/metrics. All registrations go through metricInt/metricFunc, which
// reuse an existing variable instead of re-registering — expvar panics on
// duplicate names, and the package must stay safe to initialize (and its
// servers safe to construct, many per process) in programs that already
// published these names or that link two copies of the registration path.
// The counters are process-wide: they aggregate across every handler
// instance, which is also what a scraper of the endpoint expects.
package httpapi

import (
	"expvar"

	"schemex"
)

// metricInt returns the named expvar Int, registering it on first use. A
// name already published as an Int is adopted rather than re-registered (no
// panic); a name published as some other type is shadowed by an unpublished
// Int so callers can still Add without crashing the process.
func metricInt(name string) *expvar.Int {
	if v, ok := expvar.Get(name).(*expvar.Int); ok {
		return v
	}
	if expvar.Get(name) != nil {
		return new(expvar.Int)
	}
	return expvar.NewInt(name)
}

// metricFunc publishes a computed variable once; later calls with a name
// already on the surface are no-ops.
func metricFunc(name string, f func() interface{}) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(f))
	}
}

var (
	// Prepared-snapshot cache (keyed by request content hash).
	metricSnapshotHits      = metricInt("schemex_snapshot_cache_hits")
	metricSnapshotMisses    = metricInt("schemex_snapshot_cache_misses")
	metricSnapshotEvictions = metricInt("schemex_snapshot_cache_evictions")

	// Delta-session store. A hit is a request resolving a live in-store
	// session; a miss had to rehydrate from disk or report 404; an eviction is
	// the LRU cap flushing a session out.
	metricSessionHits      = metricInt("schemex_session_store_hits")
	metricSessionMisses    = metricInt("schemex_session_store_misses")
	metricSessionEvictions = metricInt("schemex_session_store_evictions")

	// Mutation outcomes: incremental counts deltas applied with structural
	// sharing, fallback counts full recompiles (label-universe changes or
	// atomic/complex flips). Results are identical either way; the ratio is
	// the health signal for incremental maintenance.
	metricApplyIncremental = metricInt("schemex_apply_incremental")
	metricApplyFallback    = metricInt("schemex_apply_fallback")
)

// Shard residency counters (Config.MemBudget): read live from the library's
// process-wide counters so they need no per-handler plumbing. Faults are
// shards decoded back in from spill files, evictions shards dropped to meet
// a budget, pins the phases that held their working set resident.
func init() {
	metricFunc("schemex_shard_faults", func() interface{} {
		return schemex.ReadResidencyStats().ShardFaults
	})
	metricFunc("schemex_shard_evictions", func() interface{} {
		return schemex.ReadResidencyStats().ShardEvictions
	})
	metricFunc("schemex_shard_pins", func() interface{} {
		return schemex.ReadResidencyStats().ShardPins
	})
}
