package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schemex/internal/compile"
	"schemex/internal/wal"
)

// readShardMetrics fetches the shard residency gauges from /v1/metrics.
func readShardMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var all map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, k := range []string{"schemex_shard_faults", "schemex_shard_evictions", "schemex_shard_pins"} {
		f, ok := all[k].(float64)
		if !ok {
			t.Fatalf("metric %s missing from /v1/metrics", k)
		}
		out[k] = f
	}
	return out
}

// TestTwoServersOneProcess: constructing a second Server (and with it a
// second pass over the metric registrations) in one process must not panic —
// expvar refuses duplicate names, so registration has to be idempotent. Both
// servers serve the shared process-wide counters.
func TestTwoServersOneProcess(t *testing.T) {
	s1, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []*Server{s1, s2} {
		ts := httptest.NewServer(s.Handler())
		readShardMetrics(t, ts)
		id := createSession(t, ts, sampleText)
		mutateOK(t, ts, id, nthDelta(i))
		ts.Close()
	}
}

// TestServerMemBudgetShardFaults: a server with a tight MemBudget serves
// correct results while paging shards — the residency gauges on /v1/metrics
// move, proving extraction really ran against spilled shards.
func TestServerMemBudgetShardFaults(t *testing.T) {
	t.Setenv(compile.TestShardsEnv, "4")
	s, err := NewServer(Config{MemBudget: 6144})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := readShardMetrics(t, ts)
	id := createSession(t, ts, chainData(256))
	schema := extractSchema(t, ts, id)
	mutateOK(t, ts, id, "link n0 n128 next\n")
	schema2 := extractSchema(t, ts, id)
	if schema == "" || schema2 == "" {
		t.Fatal("empty schema under memory budget")
	}
	after := readShardMetrics(t, ts)
	if after["schemex_shard_faults"] <= before["schemex_shard_faults"] {
		t.Fatalf("shard faults did not move under budget: before=%v after=%v", before, after)
	}
	if after["schemex_shard_evictions"] <= before["schemex_shard_evictions"] {
		t.Fatalf("shard evictions did not move under budget: before=%v after=%v", before, after)
	}

	// The same session on an unbudgeted server yields the identical schema.
	ts2 := httptest.NewServer(Handler())
	defer ts2.Close()
	id2 := createSession(t, ts2, chainData(256))
	if got := extractSchema(t, ts2, id2); got != schema {
		t.Fatalf("budgeted schema differs from resident schema:\n%s\nvs\n%s", schema, got)
	}
}

// TestShardGranularRecovery: a restart recovers a spilled session from its
// core blob and shard files without recompiling, and the recovered session
// extracts the identical schema. With a tight budget the recovery path
// faults shards in from the spilled files on demand.
func TestShardGranularRecovery(t *testing.T) {
	t.Setenv(compile.TestShardsEnv, "4")
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir, SpillEvery: 2, MemBudget: 2048})
	id := createSession(t, ts1, chainData(256))
	for i := 0; i < 4; i++ {
		mutateOK(t, ts1, id, fmt.Sprintf("link n%d n%d next\n", i*8, i*8+64))
	}
	want := extractSchema(t, ts1, id)
	ts1.Close()
	s1.Close()

	// The committed manifest names the shard-granular spill.
	m, err := wal.ReadManifest(filepath.Join(dir, sessionsSubdir, id))
	if err != nil {
		t.Fatal(err)
	}
	if m.Core == "" || len(m.Shards) == 0 {
		t.Fatalf("manifest is not shard-granular: %+v", m)
	}
	for _, n := range append([]string{m.Core}, m.Shards...) {
		if _, err := os.Stat(filepath.Join(dir, sessionsSubdir, id, n)); err != nil {
			t.Fatalf("manifest names missing file %s: %v", n, err)
		}
	}

	s2, ts2 := durableServer(t, Config{DataDir: dir, SpillEvery: 2, MemBudget: 2048})
	if got := extractSchema(t, ts2, id); got != want {
		t.Fatalf("recovered schema differs:\n%s\nvs\n%s", got, want)
	}
	// The recovered session keeps accepting mutations and spilling.
	mutateOK(t, ts2, id, "link n1 n200 next\n")
	mutateOK(t, ts2, id, "link n2 n201 next\n")
	ts2.Close()
	s2.Close()
}

// TestMissingShardFileFallsBackToRecompile: recovery with a missing shard
// file must not refuse the session — the spill is an optimization, so the
// up-front stat probe routes recovery to a recompile from the graph snapshot
// and the session serves the identical schema.
func TestMissingShardFileFallsBackToRecompile(t *testing.T) {
	t.Setenv(compile.TestShardsEnv, "4")
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir, SpillEvery: 1})
	id := createSession(t, ts1, chainData(256))
	mutateOK(t, ts1, id, "link n255 n256 next\n")
	want := extractSchema(t, ts1, id)
	ts1.Close()
	s1.Close()

	m, err := wal.ReadManifest(filepath.Join(dir, sessionsSubdir, id))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) < 2 {
		t.Fatalf("want multiple shard files, got %v", m.Shards)
	}
	if err := os.Remove(filepath.Join(dir, sessionsSubdir, id, m.Shards[1])); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := durableServer(t, Config{DataDir: dir, SpillEvery: 1})
	defer func() { ts2.Close(); s2.Close() }()
	if got := extractSchema(t, ts2, id); got != want {
		t.Fatalf("schema after missing-shard fallback differs:\n%s\nvs\n%s", got, want)
	}
}

// TestTruncatedShardFileRejectedTyped: a shard file damaged after the spill
// passes the existence probe, so the session is adopted lazily — the
// corruption must then surface as a typed internal error at first access,
// never as silently wrong data.
func TestTruncatedShardFileRejectedTyped(t *testing.T) {
	t.Setenv(compile.TestShardsEnv, "4")
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir, SpillEvery: 1})
	id := createSession(t, ts1, chainData(256))
	mutateOK(t, ts1, id, "link n0 n64 next\n")
	ts1.Close()
	s1.Close()

	m, err := wal.ReadManifest(filepath.Join(dir, sessionsSubdir, id))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, sessionsSubdir, id, m.Shards[1]), 5); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := durableServer(t, Config{DataDir: dir, SpillEvery: 1})
	defer func() { ts2.Close(); s2.Close() }()
	status, out := post(t, ts2, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 2},
	}))
	if status != 500 {
		t.Fatalf("extract over truncated shard: status %d, body %v", status, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "internal error") {
		t.Fatalf("want typed internal error, got %q", msg)
	}
}

// TestInterruptedSpillRecoversAndSweeps: a spill that dies between writing
// its generation files and the manifest rename leaves the old generation
// authoritative. Recovery serves the old state, and the next committed spill
// sweeps the orphaned files.
func TestInterruptedSpillRecoversAndSweeps(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir, SpillEvery: 2})
	id := createSession(t, ts1, sampleText)
	mutateOK(t, ts1, id, nthDelta(1))
	mutateOK(t, ts1, id, nthDelta(2)) // spills generation 2
	want := extractSchema(t, ts1, id)
	ts1.Close()
	s1.Close()

	// Simulate a crash mid-spill of generation 9: generation files exist but
	// the manifest still names generation 2.
	sdir := filepath.Join(dir, sessionsSubdir, id)
	for _, n := range []string{"snapshot-9.graph", "snapshot-9.core", "shard-9-0.shard", "wal-9.log"} {
		if err := os.WriteFile(filepath.Join(sdir, n), []byte("orphaned partial spill"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, ts2 := durableServer(t, Config{DataDir: dir, SpillEvery: 2})
	defer func() { ts2.Close(); s2.Close() }()
	if got := extractSchema(t, ts2, id); got != want {
		t.Fatalf("schema after interrupted spill differs:\n%s\nvs\n%s", got, want)
	}
	// Two more deltas commit a fresh generation, whose sweep removes the
	// orphans alongside the retired old generation.
	mutateOK(t, ts2, id, nthDelta(3))
	mutateOK(t, ts2, id, nthDelta(4))
	entries, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "-9") {
			t.Fatalf("orphaned spill file survived the sweep: %s", e.Name())
		}
		// The graph snapshot and log of the retired generation are gone; its
		// core and shard files may legitimately remain while the recovered
		// session's compiled snapshot is pinned to them.
		if e.Name() == "snapshot-2.graph" || e.Name() == "wal-2.log" {
			t.Fatalf("retired generation survived the sweep: %s", e.Name())
		}
	}
}
