// Batched write pipeline: every session mutation is enqueued on a per-session
// mutation queue and applied by that session's single drainer goroutine,
// which drains bursts as one batch — one coalesced compile.Apply over the
// union shard footprint, one WAL group append (one fsync under the sync
// policy), one head swap — completing all covered jobs at once. Requests pick
// ?mode=sync (default: respond after the batch commits, durability before
// acknowledgment unchanged) or ?mode=async (202 + job id immediately;
// GET /v1/session/{id}/job/{jobID} reports queued/applied/failed). A full
// queue sheds load with 429 + Retry-After.
//
// Lock order: a.queuesMu > q.mu for enqueue; the drainer takes q.mu alone and
// then the session's stripe locks and s.mu exactly as the old per-request
// path did (stripes ascending, s.mu innermost), so batching changes how often
// the stripes are taken — once per batch — not their order.
package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"schemex"
)

// DefaultQueueDepth bounds queued-but-unapplied mutations per session when
// Config leaves QueueDepth unset; past it the server sheds with 429.
const DefaultQueueDepth = 1024

// DefaultBatchMax caps how many queued deltas one drainer pass applies as a
// single batch when Config leaves BatchMax unset.
const DefaultBatchMax = 256

// doneRetain bounds terminal jobs remembered per session for the job-status
// endpoint; older outcomes expire (the endpoint then reports 404).
const doneRetain = 1024

// Job states on the wire.
const (
	jobQueued  = "queued"
	jobApplied = "applied"
	jobFailed  = "failed"
)

// job is one accepted mutation. Its terminal fields (status, resp, err) are
// written under the owning queue's mutex before done is closed; a sync waiter
// reads them after <-done, the status endpoint under the queue mutex.
type job struct {
	id    uint64
	delta *schemex.Delta
	done  chan struct{}

	status    string
	resp      *mutateResponse
	errStatus int
	err       error
}

// mutQueue is one session's mutation queue: a FIFO of accepted jobs, the
// in-flight batch, and a bounded memory of terminal outcomes. active marks a
// live drainer; exactly one runs per queue.
type mutQueue struct {
	id string

	mu       sync.Mutex
	jobs     []*job
	inflight []*job
	nextID   uint64
	active   bool
	done     map[uint64]*job
	doneIDs  []uint64
}

// enqueue admits one mutation to the session's queue, lazily starting the
// drainer. Returns the job, or (0, status, error) when shedding (429 on a
// full queue, 503 during shutdown).
func (a *api) enqueue(id string, d *schemex.Delta) (*job, int, error) {
	a.queuesMu.Lock()
	if a.queuesClosed {
		a.queuesMu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server shutting down")
	}
	q, ok := a.queues[id]
	if !ok {
		q = &mutQueue{id: id, done: make(map[uint64]*job)}
		a.queues[id] = q
	}
	q.mu.Lock()
	if len(q.jobs) >= a.queueDepth {
		q.mu.Unlock()
		a.queuesMu.Unlock()
		metricQueueShed.Add(1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("session %s: mutation queue full (%d queued); retry later", id, a.queueDepth)
	}
	q.nextID++
	j := &job{id: q.nextID, delta: d, done: make(chan struct{}), status: jobQueued}
	q.jobs = append(q.jobs, j)
	depth := len(q.jobs)
	start := !q.active
	if start {
		q.active = true
		// Registered under queuesMu, where closeQueues also runs: a drainer
		// can never start after Server.Close has begun waiting.
		a.queueWG.Add(1)
	}
	q.mu.Unlock()
	a.queuesMu.Unlock()
	setQueueDepth(id, depth)
	if start {
		go a.drainQueue(q)
	}
	return j, 0, nil
}

// dropQueue forgets a session's queue (DELETE). A live drainer keeps its
// pointer and finishes the jobs it already holds — they fail terminally once
// the session is gone — so nothing is ever left "queued" silently.
func (a *api) dropQueue(id string) {
	a.queuesMu.Lock()
	delete(a.queues, id)
	a.queuesMu.Unlock()
	setQueueDepth(id, 0)
}

// drainQueue is the session's single drainer: it repeatedly pops up to
// batchMax queued jobs and applies them as one batch, exiting when the queue
// is empty. Server.Close waits for every drainer, so queued jobs always reach
// a terminal state before the WAL closes.
func (a *api) drainQueue(q *mutQueue) {
	defer a.queueWG.Done()
	for {
		if a.batchWindow > 0 {
			// Let a burst accumulate so one pass covers it.
			time.Sleep(a.batchWindow)
		}
		q.mu.Lock()
		n := len(q.jobs)
		if n == 0 {
			q.active = false
			q.mu.Unlock()
			setQueueDepth(q.id, 0)
			return
		}
		if n > a.batchMax {
			n = a.batchMax
		}
		batch := make([]*job, n)
		copy(batch, q.jobs)
		q.jobs = q.jobs[n:]
		q.inflight = batch
		depth := len(q.jobs)
		q.mu.Unlock()
		setQueueDepth(q.id, depth)
		recordBatchSize(n)

		a.applyJobs(q, batch)

		q.mu.Lock()
		q.inflight = nil
		q.mu.Unlock()
	}
}

// applyJobs applies one popped batch. The happy path lands every job with the
// batch's single apply; a failing batch of more than one job falls back to
// per-job application so each good delta still commits (in order) and the bad
// one fails with its exact error — the same per-request semantics as before
// batching.
func (a *api) applyJobs(q *mutQueue, jobs []*job) {
	deltas := make([]*schemex.Delta, len(jobs))
	for i, j := range jobs {
		deltas[i] = j.delta
	}
	resp, status, err := a.applySessionBatch(q.id, deltas)
	if err == nil {
		// Every covered job sees the batch-final state: version and counts
		// after the whole batch, not its own delta alone.
		for _, j := range jobs {
			q.finish(j, resp, 0, nil)
		}
		return
	}
	if len(jobs) == 1 {
		q.finish(jobs[0], nil, status, err)
		return
	}
	for _, j := range jobs {
		r, st, err := a.applySessionBatch(q.id, []*schemex.Delta{j.delta})
		q.finish(j, r, st, err)
	}
}

// finish records a job's terminal state and wakes its waiters.
func (q *mutQueue) finish(j *job, resp *mutateResponse, status int, err error) {
	q.mu.Lock()
	if err != nil {
		j.status, j.errStatus, j.err = jobFailed, status, err
	} else {
		j.status, j.resp = jobApplied, resp
	}
	q.done[j.id] = j
	q.doneIDs = append(q.doneIDs, j.id)
	if len(q.doneIDs) > doneRetain {
		delete(q.done, q.doneIDs[0])
		q.doneIDs = q.doneIDs[1:]
	}
	q.mu.Unlock()
	close(j.done)
}

// applySessionBatch runs the optimistic shard-locked apply for one batch of
// deltas against the session — the same loop the per-request path used, with
// the batch's union footprint deciding the stripes, one ApplyBatch doing the
// compile, and one group append making all N deltas durable before the head
// advances. On error nothing is committed and the caller decides between
// failing the job and per-job fallback.
func (a *api) applySessionBatch(id string, deltas []*schemex.Delta) (*mutateResponse, int, error) {
	ctx := context.Background()
	merged := schemex.MergeDeltas(deltas...)
	s, ok := a.sessions.get(id)
	if !ok && a.dataDir != "" {
		s, ok = a.rehydrate(id)
	}
	if !ok {
		return nil, http.StatusNotFound, errUnknownSession(id)
	}
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		for s.evicted {
			// Flushed by the LRU (or deleted) since we resolved it. Durable
			// sessions still exist on disk: re-resolve and retry on the fresh
			// copy. In-memory ones are gone.
			s.mu.Unlock()
			if a.dataDir == "" {
				return nil, http.StatusNotFound, errUnknownSession(s.id)
			}
			if s, ok = a.rehydrate(s.id); !ok {
				return nil, http.StatusNotFound, errUnknownSession(id)
			}
			s.mu.Lock()
		}
		cur := s.prep
		s.mu.Unlock()

		shards, exclusive := cur.DeltaShards(merged)
		exclusive = exclusive || attempt >= 2
		mask := stripeMask(shards, exclusive)
		unlock := s.locks.lock(mask)

		// Revalidate under the session mutex; rebase onto a moved head only
		// if the new footprint stays inside the stripes already held.
		s.mu.Lock()
		if s.evicted {
			s.mu.Unlock()
			unlock()
			continue
		}
		if s.prep != cur {
			cur = s.prep
			sh2, ex2 := cur.DeltaShards(merged)
			if m2 := stripeMask(sh2, ex2 || exclusive); m2&^mask != 0 {
				s.mu.Unlock()
				unlock()
				continue
			}
		}
		s.mu.Unlock()

		// The expensive part, outside the session mutex: one incremental
		// apply for the whole (coalesced) batch.
		next, info, err := cur.ApplyBatchContext(ctx, deltas...)
		if err != nil {
			// Nothing committed: a bad delta rejects the batch atomically.
			unlock()
			return nil, http.StatusUnprocessableEntity, err
		}

		s.mu.Lock()
		if s.evicted || s.prep != cur {
			s.mu.Unlock()
			unlock()
			continue
		}
		// Durability before acknowledgment, batch-wide: all N delta records
		// are appended (one write, one fsync under the default policy) before
		// the session advances and any covered job is acknowledged. A failed
		// append leaves the session on its old state with every job
		// unacknowledged.
		if err := s.persistBatchLocked(a, deltas, next); err != nil {
			s.mu.Unlock()
			unlock()
			return nil, http.StatusInternalServerError, fmt.Errorf("logging delta batch: %v", err)
		}
		s.prep = next
		s.mu.Unlock()
		unlock()

		if info.Incremental {
			metricApplyIncremental.Add(1)
		} else {
			metricApplyFallback.Add(1)
		}
		return &mutateResponse{
			sessionInfo:    infoOf(s, next),
			Incremental:    info.Incremental,
			TouchedObjects: info.TouchedObjects,
			NewObjects:     info.NewObjects,
		}, 0, nil
	}
}

// jobStatusResponse reports one mutation job on the wire.
type jobStatusResponse struct {
	Session string `json:"session"`
	Job     uint64 `json:"job"`
	Status  string `json:"status"` // queued | applied | failed
	// Version is the session version the job's batch committed (applied only).
	Version uint64          `json:"version,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  *mutateResponse `json:"result,omitempty"`
}

// handleJobStatus serves GET /v1/session/{id}/job/{jobID}: queued (accepted,
// not yet terminal — including in-flight), applied (with the committed batch
// result), failed (with the error), or 404 for a job that was never accepted
// or whose outcome has expired from the bounded memory.
func (a *api) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jobID, err := strconv.ParseUint(r.PathValue("jobID"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("jobID")))
		return
	}
	a.queuesMu.Lock()
	q := a.queues[id]
	a.queuesMu.Unlock()
	if q == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %d for session %q", jobID, id))
		return
	}
	resp := jobStatusResponse{Session: id, Job: jobID}
	q.mu.Lock()
	switch j, ok := q.done[jobID]; {
	case ok && j.err != nil:
		resp.Status, resp.Error = jobFailed, j.err.Error()
	case ok:
		resp.Status, resp.Version, resp.Result = jobApplied, j.resp.Version, j.resp
	default:
		for _, pending := range [2][]*job{q.jobs, q.inflight} {
			for _, pj := range pending {
				if pj.id == jobID {
					resp.Status = jobQueued
				}
			}
		}
	}
	q.mu.Unlock()
	if resp.Status == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %d for session %q (never accepted, or outcome expired)", jobID, id))
		return
	}
	writeJSON(w, resp)
}
