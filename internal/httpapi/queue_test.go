package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func getJSON(t *testing.T, srv *httptest.Server, path string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]interface{} {
	t.Helper()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

// mutateAsync posts one delta in async mode and returns the accepted job id.
func mutateAsync(t *testing.T, srv *httptest.Server, id, delta string) uint64 {
	t.Helper()
	status, out := post(t, srv, "/v1/session/"+id+"/mutate?mode=async",
		mustJSON(t, map[string]interface{}{"delta": delta}))
	if status != http.StatusAccepted {
		t.Fatalf("async mutate status %d: %v", status, out)
	}
	if out["status"] != jobQueued {
		t.Fatalf("async mutate status field %v", out["status"])
	}
	return uint64(out["job"].(float64))
}

// pollJob polls the job-status endpoint until the job leaves "queued".
func pollJob(t *testing.T, srv *httptest.Server, id string, job uint64) map[string]interface{} {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, out := getJSON(t, srv, fmt.Sprintf("/v1/session/%s/job/%d", id, job))
		if status != 200 {
			t.Fatalf("job status %d: %v", status, out)
		}
		if out["status"] != jobQueued {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck queued", job)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sessionVersion(t *testing.T, srv *httptest.Server, id string) float64 {
	t.Helper()
	status, out := getJSON(t, srv, "/v1/session/"+id)
	if status != 200 {
		t.Fatalf("session get status %d: %v", status, out)
	}
	return out["version"].(float64)
}

// TestMutateAsyncLifecycle drives a burst through the async path: every
// mutation is accepted with 202 + a job id, every job reaches "applied" via
// the status endpoint, and the burst lands in fewer drainer passes than jobs
// (i.e. it actually batched).
func TestMutateAsyncLifecycle(t *testing.T) {
	a := newAPI(Config{BatchWindow: 100 * time.Millisecond})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()
	id := createSession(t, srv, sampleText)

	queueMetrics.mu.Lock()
	batchesBefore := queueMetrics.batches.count
	queueMetrics.mu.Unlock()

	const n = 8
	jobs := make([]uint64, n)
	for i := range jobs {
		jobs[i] = mutateAsync(t, srv, id, nthDelta(i))
	}
	for _, job := range jobs {
		out := pollJob(t, srv, id, job)
		if out["status"] != jobApplied {
			t.Fatalf("job %d: %v", job, out)
		}
		if out["version"].(float64) < 1 {
			t.Fatalf("applied job %d missing version: %v", job, out)
		}
	}
	if v := sessionVersion(t, srv, id); v != n {
		t.Fatalf("final version %v, want %d", v, n)
	}

	queueMetrics.mu.Lock()
	batches := queueMetrics.batches.count - batchesBefore
	queueMetrics.mu.Unlock()
	if batches >= n {
		t.Fatalf("burst of %d took %d drainer passes: no batching happened", n, batches)
	}

	// Job-status edge cases.
	if status, _ := getJSON(t, srv, "/v1/session/"+id+"/job/9999"); status != 404 {
		t.Fatalf("unknown job id: status %d", status)
	}
	if status, _ := getJSON(t, srv, "/v1/session/"+id+"/job/abc"); status != 400 {
		t.Fatalf("malformed job id: status %d", status)
	}
	if status, _ := getJSON(t, srv, "/v1/session/deadbeef/job/1"); status != 404 {
		t.Fatalf("unknown session: status %d", status)
	}
	status, _ := post(t, srv, "/v1/session/"+id+"/mutate?mode=bogus",
		mustJSON(t, map[string]interface{}{"delta": nthDelta(99)}))
	if status != 400 {
		t.Fatalf("bogus mode: status %d", status)
	}
}

// TestMutateSyncBatchEquivalence fires a concurrent sync burst at a batching
// server and the same deltas sequentially at a BatchMax=1 (per-request)
// server: every request succeeds and the two sessions end bit-identical.
func TestMutateSyncBatchEquivalence(t *testing.T) {
	batched := newAPI(Config{BatchWindow: 30 * time.Millisecond})
	srvB := httptest.NewServer(batched.routes())
	defer srvB.Close()
	serial := newAPI(Config{BatchMax: 1})
	srvS := httptest.NewServer(serial.routes())
	defer srvS.Close()

	idB := createSession(t, srvB, sampleText)
	idS := createSession(t, srvS, sampleText)

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, out := post(t, srvB, "/v1/session/"+idB+"/mutate",
				mustJSON(t, map[string]interface{}{"delta": nthDelta(i)}))
			if status != 200 {
				errs <- fmt.Errorf("mutate %d: status %d: %v", i, status, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mutateOK(t, srvS, idS, nthDelta(i))
	}

	if vb, vs := sessionVersion(t, srvB, idB), sessionVersion(t, srvS, idS); vb != n || vs != n {
		t.Fatalf("versions batched=%v serial=%v, want %d", vb, vs, n)
	}
	if gb, gs := extractSchema(t, srvB, idB), extractSchema(t, srvS, idS); gb != gs {
		t.Fatalf("batched and per-request schemas diverge:\n%s\nvs\n%s", gb, gs)
	}
}

// TestMutateQueueBackpressure fills a depth-2 queue behind a slow drainer:
// overflow requests shed with 429 + Retry-After and bump the shed counter,
// while every accepted job still applies.
func TestMutateQueueBackpressure(t *testing.T) {
	a := newAPI(Config{QueueDepth: 2, BatchWindow: 300 * time.Millisecond})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()
	id := createSession(t, srv, sampleText)

	shedBefore := metricQueueShed.Value()
	body := func(i int) string {
		return mustJSON(t, map[string]interface{}{"delta": nthDelta(i)})
	}
	var accepted []uint64
	sheds := 0
	for i := 0; i < 6; i++ {
		resp, err := http.Post(srv.URL+"/v1/session/"+id+"/mutate?mode=async",
			"application/json", strings.NewReader(body(i)))
		if err != nil {
			t.Fatal(err)
		}
		out := decodeBody(t, resp)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted = append(accepted, uint64(out["job"].(float64)))
		case http.StatusTooManyRequests:
			sheds++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After")
			}
		default:
			t.Fatalf("mutate %d: status %d: %v", i, resp.StatusCode, out)
		}
	}
	if sheds == 0 || len(accepted) == 0 {
		t.Fatalf("expected both accepts and sheds, got %d accepted / %d shed", len(accepted), sheds)
	}
	if got := metricQueueShed.Value() - shedBefore; got < int64(sheds) {
		t.Fatalf("shed metric advanced %d, want >= %d", got, sheds)
	}
	for _, job := range accepted {
		if out := pollJob(t, srv, id, job); out["status"] != jobApplied {
			t.Fatalf("accepted job %d: %v", job, out)
		}
	}
	if v := sessionVersion(t, srv, id); v != float64(len(accepted)) {
		t.Fatalf("final version %v, want %d", v, len(accepted))
	}
}

// TestMutateBatchPartialFailure lands a good/bad/good burst in one batch: the
// batch apply rejects, the per-job fallback commits both good deltas in order
// and fails only the bad one — the same semantics as three serial requests.
func TestMutateBatchPartialFailure(t *testing.T) {
	a := newAPI(Config{BatchWindow: 150 * time.Millisecond})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()
	id := createSession(t, srv, sampleText)

	good1 := mutateAsync(t, srv, id, nthDelta(0))
	bad := mutateAsync(t, srv, id, "unlink gates apple nope\n")
	good2 := mutateAsync(t, srv, id, nthDelta(1))

	if out := pollJob(t, srv, id, good1); out["status"] != jobApplied {
		t.Fatalf("good1: %v", out)
	}
	out := pollJob(t, srv, id, bad)
	if out["status"] != jobFailed || out["error"] == nil {
		t.Fatalf("bad job: %v", out)
	}
	if out := pollJob(t, srv, id, good2); out["status"] != jobApplied {
		t.Fatalf("good2: %v", out)
	}
	if v := sessionVersion(t, srv, id); v != 2 {
		t.Fatalf("final version %v, want 2", v)
	}
}

// TestServerCloseDrainsQueuedJobs is the graceful-shutdown regression: Close
// must let the drainer flush jobs that are still queued, so no accepted job
// is left "queued" and every applied one is durable for the next server over
// the same DataDir.
func TestServerCloseDrainsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	s, ts := durableServer(t, Config{
		DataDir:     dir,
		SyncEvery:   8, // batched fsync policy: Close must still flush
		BatchWindow: 200 * time.Millisecond,
	})
	id := createSession(t, ts, sampleText)

	const n = 12
	for i := 0; i < n; i++ {
		mutateAsync(t, ts, id, nthDelta(i))
	}
	// Close while the drainer is still inside its batch window, with all n
	// jobs queued behind it.
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	applied := 0
	s.a.queuesMu.Lock()
	for _, q := range s.a.queues {
		q.mu.Lock()
		if len(q.jobs) != 0 || q.inflight != nil {
			q.mu.Unlock()
			s.a.queuesMu.Unlock()
			t.Fatalf("jobs still pending after Close")
		}
		for _, j := range q.done {
			switch j.status {
			case jobApplied:
				applied++
			case jobQueued:
				q.mu.Unlock()
				s.a.queuesMu.Unlock()
				t.Fatalf("job %d left queued after Close", j.id)
			}
		}
		q.mu.Unlock()
	}
	s.a.queuesMu.Unlock()
	if applied != n {
		t.Fatalf("%d jobs applied across Close, want %d", applied, n)
	}

	// Every job acknowledged as applied must have survived the restart.
	_, ts2 := durableServer(t, Config{DataDir: dir})
	if v := sessionVersion(t, ts2, id); v != n {
		t.Fatalf("recovered version %v, want %d", v, n)
	}
}

// TestQueueStress hammers one session from many async producers; CI also runs
// it under -race with SCHEMEX_TEST_SHARDS=4 to cross the batch path with the
// sharded stripe locks. Every job must terminate applied and the version must
// account for every producer's every delta.
func TestQueueStress(t *testing.T) {
	a := newAPI(Config{BatchWindow: 10 * time.Millisecond})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()
	id := createSession(t, srv, sampleText)

	const producers, each = 6, 8
	var mu sync.Mutex
	var jobs []uint64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				job := mutateAsync(t, srv, id, nthDelta(p*each+i))
				mu.Lock()
				jobs = append(jobs, job)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	for _, job := range jobs {
		if out := pollJob(t, srv, id, job); out["status"] != jobApplied {
			t.Fatalf("job %d: %v", job, out)
		}
	}
	if v := sessionVersion(t, srv, id); v != producers*each {
		t.Fatalf("final version %v, want %d", v, producers*each)
	}
}

// TestMetricsSurfaceQueue asserts the new observability lands on /v1/metrics:
// per-route percentiles under schemex_http (keyed by mux pattern) and the
// write-pipeline gauges under schemex_queue.
func TestMetricsSurfaceQueue(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	id := createSession(t, srv, sampleText)
	mutateOK(t, srv, id, nthDelta(0))

	status, out := getJSON(t, srv, "/v1/metrics")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	httpStats, ok := out["schemex_http"].(map[string]interface{})
	if !ok {
		t.Fatalf("schemex_http missing: %v", out["schemex_http"])
	}
	route, ok := httpStats["POST /v1/session/{id}/mutate"].(map[string]interface{})
	if !ok {
		t.Fatalf("mutate route missing from schemex_http: %v", httpStats)
	}
	for _, k := range []string{"count", "latencyMsP50", "latencyMsP90", "latencyMsP99", "bytesP50", "bytesP99"} {
		if _, ok := route[k]; !ok {
			t.Fatalf("mutate route stats missing %q: %v", k, route)
		}
	}
	if route["count"].(float64) < 1 {
		t.Fatalf("mutate route count %v", route["count"])
	}
	qStats, ok := out["schemex_queue"].(map[string]interface{})
	if !ok {
		t.Fatalf("schemex_queue missing: %v", out["schemex_queue"])
	}
	if qStats["batches"].(float64) < 1 {
		t.Fatalf("no batches recorded: %v", qStats)
	}
	if _, ok := qStats["depth"].(map[string]interface{}); !ok {
		t.Fatalf("queue depth gauge missing: %v", qStats)
	}
}
