// Delta sessions over HTTP: a session pins one prepared extraction context
// server-side and lets clients evolve it with textual deltas. Each mutation
// branches the prepared context through schemex.Prepared.Apply, so the
// snapshot cache's invariant — entries are immutable — carries over: the
// session variable advances to the new Prepared, but any extraction already
// running against the old one finishes safely on the old state.
package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"schemex"
	"schemex/internal/wal"
)

// session is one server-side delta session. mu serializes mutations — Apply
// itself is non-destructive, but two concurrent mutates must not both branch
// from the same parent and silently drop one of the edits.
type session struct {
	id string

	mu   sync.Mutex
	prep *schemex.Prepared

	// locks admits concurrent mutations whose delta footprints land on
	// disjoint snapshot shards (see shardlock.go). mu still serializes the
	// head swap and the WAL append; the stripes only bound how much Apply
	// work can run in parallel against one session.
	locks shardLocks

	// Durable state; zero for in-memory sessions (Config.DataDir unset).
	// dir is the session directory, log the open write-ahead log, snapFile/
	// coreFile/shardFiles/logFile the current manifest generation's file
	// names, and sinceSpill the deltas logged since the last snapshot spill.
	// pinned names shard/core files a recovery adopted into the live
	// compiled snapshot: non-resident shard refs may fault from them at any
	// time, so generation rotation must never delete them while this session
	// object lives (DELETE removes the whole directory only after the
	// session is closed). evicted marks a session the LRU flushed out (or
	// DELETE removed): requests that still hold the pointer see a consistent
	// "unknown session" instead of appending to a closed log.
	dir        string
	log        *wal.Log
	snapFile   string
	coreFile   string
	shardFiles []string
	logFile    string
	pinned     map[string]bool
	sinceSpill int
	evicted    bool
}

// current returns the session's prepared context for read-only use.
func (s *session) current() *schemex.Prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prep
}

// close marks the session expired and flushes + closes its write-ahead log,
// returning the log's Close error (a failed final fsync under a batched sync
// policy means acknowledged deltas may not be durable — callers must report
// it, not swallow it). Eviction and deletion both go through here: durable
// state stays replayable on disk, and any request still holding the pointer
// gets a 404 rather than a write into a closed log. close is idempotent and
// blocks until any in-flight mutation releases s.mu, so a nil return also
// means no other log handle for this session is live.
func (s *session) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evicted = true
	var err error
	if s.log != nil {
		err = s.log.Close()
		s.log = nil
	}
	return err
}

// sessionStore is an id-keyed LRU of live sessions, same recency discipline
// as prepCache: the front is the most recently used, and creating past the
// cap evicts the back — flushing it via onEvict rather than silently
// dropping its state.
type sessionStore struct {
	mu        sync.Mutex
	max       int        // capacity; 0 means DefaultSessionEntries
	entries   []*session // front = most recently used
	evictions uint64
	onEvict   func(*session) // called without mu held
	// pending holds sessions evicted from entries whose onEvict flush has not
	// finished yet. A durable session must stay reachable here until its log
	// handle is closed: rehydration keys off this map to wait for the flush
	// instead of reopening the same WAL file while the old handle is live.
	pending map[string]*session
}

func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, s := range st.entries {
		if s.id == id {
			copy(st.entries[1:], st.entries[:i])
			st.entries[0] = s
			return s, true
		}
	}
	return nil, false
}

func (st *sessionStore) add(s *session) {
	st.mu.Lock()
	max := st.max
	if max == 0 {
		max = DefaultSessionEntries
	}
	var evicted *session
	if len(st.entries) < max {
		st.entries = append(st.entries, nil)
	} else if n := len(st.entries); n > 0 {
		evicted = st.entries[n-1]
		st.evictions++
		metricSessionEvictions.Add(1)
		// Registered before the store lock drops: there is no instant at
		// which the evicted session is in neither entries nor pending.
		if st.pending == nil {
			st.pending = make(map[string]*session)
		}
		st.pending[evicted.id] = evicted
	}
	copy(st.entries[1:], st.entries)
	st.entries[0] = s
	onEvict := st.onEvict
	st.mu.Unlock()
	if evicted == nil {
		return
	}
	if onEvict != nil {
		onEvict(evicted)
	}
	st.mu.Lock()
	if st.pending[evicted.id] == evicted {
		delete(st.pending, evicted.id)
	}
	st.mu.Unlock()
}

// evicting returns the session an in-flight eviction is still flushing, if
// any. Callers close it (close is idempotent) to wait for the flush before
// touching the id's on-disk state.
func (st *sessionStore) evicting(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.pending[id]
	return s, ok
}

func (st *sessionStore) remove(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, s := range st.entries {
		if s.id == id {
			st.entries = append(st.entries[:i], st.entries[i+1:]...)
			return s, true
		}
	}
	return nil, false
}

// drain empties the store and returns what it held; used by Server.Close to
// flush every live session exactly once.
func (st *sessionStore) drain() []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.entries
	st.entries = nil
	return out
}

// Evictions reports how many sessions the LRU cap has flushed out since the
// store was created (a counter for the future metrics surface).
func (st *sessionStore) Evictions() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evictions
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("httpapi: reading session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

type sessionCreateRequest struct {
	Data   string `json:"data"`
	Format string `json:"format,omitempty"`
}

// sessionInfo describes a session's current state on the wire. Shards
// reports the compiled snapshot's partition count (Options.Shards layout) —
// observability only, results never depend on it.
type sessionInfo struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	Objects int    `json:"objects"`
	Links   int    `json:"links"`
	Shards  int    `json:"shards"`
}

func infoOf(s *session, prep *schemex.Prepared) sessionInfo {
	g := prep.Graph()
	return sessionInfo{
		ID: s.id, Version: prep.Version(),
		Objects: g.NumObjects(), Links: g.NumLinks(), Shards: prep.NumShards(),
	}
}

type mutateRequest struct {
	// Delta is the line-oriented edit format schemex.ParseDelta reads
	// (link/unlink/atomic/remove).
	Delta string `json:"delta"`
}

type mutateResponse struct {
	sessionInfo
	// Incremental reports whether the snapshot was rebuilt with structural
	// sharing (false on full-recompile fallbacks; results are identical).
	Incremental    bool `json:"incremental"`
	TouchedObjects int  `json:"touchedObjects"`
	NewObjects     int  `json:"newObjects"`
}

type sessionExtractRequest struct {
	Options Options `json:"options,omitempty"`
}

func (a *api) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := loadData(req.Data, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	prep, err := schemex.PrepareOptions(r.Context(), g, schemex.Options{MemBudget: a.memBudget})
	if err != nil {
		writeError(w, extractStatus(err), err)
		return
	}
	s := &session{id: newSessionID(), prep: prep}
	if a.dataDir != "" {
		if err := a.makeDurable(s); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("persisting session: %v", err))
			return
		}
	}
	a.sessions.add(s)
	writeJSON(w, infoOf(s, prep))
}

// lookupSession resolves the {id} path segment, replying 404 on a miss (the
// id never existed, or the LRU cap evicted it). On a durable store, a miss
// first tries rehydrating the session from its on-disk log — eviction only
// flushes durable sessions, it does not forget them.
func (a *api) lookupSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	s, ok := a.sessions.get(id)
	if ok {
		metricSessionHits.Add(1)
	} else {
		metricSessionMisses.Add(1)
		if a.dataDir != "" {
			s, ok = a.rehydrate(id)
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSession(id))
	}
	return s, ok
}

func errUnknownSession(id string) error {
	return fmt.Errorf("unknown session %q (expired or never created)", id)
}

func (a *api) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	if s, ok := a.lookupSession(w, r); ok {
		writeJSON(w, infoOf(s, s.current()))
	}
}

func (a *api) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, err := a.deleteSession(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, errUnknownSession(id))
		return
	}
	writeJSON(w, map[string]string{"deleted": id})
}

// handleSessionMutate accepts one delta into the session's mutation queue
// (see queue.go): the drainer applies queued bursts as single batches — one
// coalesced apply, one WAL group append — and ?mode picks how the client
// waits. sync (the default) responds once the job's batch commits, exactly
// the old per-request semantics including durability before acknowledgment;
// async responds 202 with a job id to poll. A full queue sheds with 429.
func (a *api) handleSessionMutate(w http.ResponseWriter, r *http.Request) {
	var req mutateRequest
	if !decode(w, r, &req) {
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode != "" && mode != "sync" && mode != "async" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q (sync, async)", mode))
		return
	}
	s, ok := a.lookupSession(w, r)
	if !ok {
		return
	}
	d, err := schemex.ParseDelta(strings.NewReader(req.Delta))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, status, err := a.enqueue(s.id, d)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	if mode == "async" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, jobStatusResponse{Session: s.id, Job: j.id, Status: jobQueued})
		return
	}
	<-j.done
	if j.err != nil {
		writeError(w, j.errStatus, j.err)
		return
	}
	writeJSON(w, *j.resp)
}

func (a *api) handleSessionExtract(w http.ResponseWriter, r *http.Request) {
	var req sessionExtractRequest
	if !decode(w, r, &req) {
		return
	}
	s, ok := a.lookupSession(w, r)
	if !ok {
		return
	}
	// Extraction runs against an immutable Prepared outside the session
	// lock: concurrent mutates branch away without disturbing it.
	extractOver(w, r, s.current(), req.Options)
}
