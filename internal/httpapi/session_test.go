package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func createSession(t *testing.T, srv *httptest.Server, data string) string {
	t.Helper()
	status, out := post(t, srv, "/v1/session", mustJSON(t, map[string]interface{}{"data": data}))
	if status != 200 {
		t.Fatalf("create status %d: %v", status, out)
	}
	id, _ := out["id"].(string)
	if id == "" || out["version"].(float64) != 0 {
		t.Fatalf("create response: %v", out)
	}
	return id
}

func TestSessionLifecycle(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	id := createSession(t, srv, sampleText)

	// Baseline extraction over the fresh session.
	status, out := post(t, srv, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 2},
	}))
	if status != 200 {
		t.Fatalf("extract status %d: %v", status, out)
	}
	if out["numTypes"].(float64) != 2 {
		t.Fatalf("baseline: %v", out)
	}

	// A small same-label delta must take the incremental path and bump the
	// version.
	delta := "link torvalds linux is-manager-of\nlink linux torvalds is-managed-by\n" +
		"link torvalds tn name\nlink linux ln name\n" +
		"atomic tn string Torvalds\natomic ln string Linux\n"
	status, out = post(t, srv, "/v1/session/"+id+"/mutate", mustJSON(t, map[string]interface{}{"delta": delta}))
	if status != 200 {
		t.Fatalf("mutate status %d: %v", status, out)
	}
	if out["version"].(float64) != 1 || out["incremental"] != true {
		t.Fatalf("mutate response: %v", out)
	}
	if out["newObjects"].(float64) != 4 {
		t.Fatalf("newObjects: %v", out)
	}

	// The mutated data still fits the two-type schema, now with one more
	// person/firm pair.
	status, out = post(t, srv, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 2},
	}))
	if status != 200 || out["numTypes"].(float64) != 2 || out["defect"].(float64) != 0 {
		t.Fatalf("post-mutate extract (%d): %v", status, out)
	}

	// GET reflects the mutated state.
	resp, err := http.Get(srv.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("get status %d", resp.StatusCode)
	}

	// A delta with a brand-new label still succeeds (full-recompile path).
	status, out = post(t, srv, "/v1/session/"+id+"/mutate", mustJSON(t, map[string]interface{}{
		"delta": "link gates jobs rival\n",
	}))
	if status != 200 || out["incremental"] != false || out["version"].(float64) != 2 {
		t.Fatalf("new-label mutate (%d): %v", status, out)
	}

	// DELETE drops it; further use 404s.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/session/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	status, _ = post(t, srv, "/v1/session/"+id+"/extract", `{}`)
	if status != 404 {
		t.Fatalf("extract after delete: status %d, want 404", status)
	}
}

func TestSessionErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	id := createSession(t, srv, sampleText)

	// Unknown session id.
	status, out := post(t, srv, "/v1/session/deadbeef/mutate", mustJSON(t, map[string]interface{}{"delta": "remove gates\n"}))
	if status != 404 || out["error"] == nil {
		t.Fatalf("unknown id: status %d: %v", status, out)
	}
	// Malformed delta text.
	status, _ = post(t, srv, "/v1/session/"+id+"/mutate", mustJSON(t, map[string]interface{}{"delta": "frobnicate x\n"}))
	if status != 400 {
		t.Fatalf("bad delta: status %d", status)
	}
	// Semantically invalid delta: the session must survive untouched.
	status, _ = post(t, srv, "/v1/session/"+id+"/mutate", mustJSON(t, map[string]interface{}{"delta": "unlink gates apple nope\n"}))
	if status != 422 {
		t.Fatalf("invalid delta: status %d", status)
	}
	status, out = post(t, srv, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 2},
	}))
	if status != 200 || out["version"] != nil && out["version"].(float64) != 0 {
		t.Fatalf("session damaged by rejected delta (%d): %v", status, out)
	}
	// Bad data on create.
	status, _ = post(t, srv, "/v1/session", `{"data": ""}`)
	if status != 400 {
		t.Fatalf("empty data: status %d", status)
	}
}

// sessionRecordsText builds three record families so a one-record delta
// dirties exactly one of three Stage 1 classes.
func sessionRecordsText() string {
	var b strings.Builder
	rec := func(name string, attrs ...string) {
		for _, a := range attrs {
			at := name + "_" + a
			fmt.Fprintf(&b, "link %s %s %s\natomic %s string v\n", name, at, a, at)
		}
	}
	for i := 0; i < 3; i++ {
		rec(fmt.Sprintf("emp%d", i), "name", "salary", "dept")
		rec(fmt.Sprintf("book%d", i), "title", "isbn")
		rec(fmt.Sprintf("city%d", i), "zip")
	}
	return b.String()
}

func TestSessionIncrementalBlock(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	id := createSession(t, srv, sessionRecordsText())
	body := mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 3, "maxDirtyTypesFrac": 1},
	})

	status, out := post(t, srv, "/v1/session/"+id+"/extract", body)
	if status != 200 {
		t.Fatalf("extract status %d: %v", status, out)
	}
	inc, ok := out["incremental"].(map[string]interface{})
	if !ok {
		t.Fatalf("response has no incremental block: %v", out)
	}
	if inc["stage2Warm"] == true || inc["stage3Warm"] == true || inc["fastPath"] == true {
		t.Fatalf("cold extraction reported warm flags: %v", inc)
	}
	if inc["totalMs"].(float64) <= 0 {
		t.Fatalf("cold extraction reported no wall clock: %v", inc)
	}

	// A repeat with identical options replays the retained result.
	status, out = post(t, srv, "/v1/session/"+id+"/extract", body)
	inc, _ = out["incremental"].(map[string]interface{})
	if status != 200 || inc == nil || inc["fastPath"] != true {
		t.Fatalf("repeat extract (%d): %v", status, out)
	}

	// One new record dirties one class; the next extraction warm-starts
	// Stages 2 and 3 and reports the dirty counts.
	delta := "link emp9 e9n name\natomic e9n string v\n" +
		"link emp9 e9s salary\natomic e9s string v\n" +
		"link emp9 e9d dept\natomic e9d string v\n"
	status, out = post(t, srv, "/v1/session/"+id+"/mutate", mustJSON(t, map[string]interface{}{"delta": delta}))
	if status != 200 || out["incremental"] != true {
		t.Fatalf("mutate (%d): %v", status, out)
	}
	status, out = post(t, srv, "/v1/session/"+id+"/extract", body)
	if status != 200 {
		t.Fatalf("post-mutate extract status %d: %v", status, out)
	}
	inc, _ = out["incremental"].(map[string]interface{})
	if inc == nil || inc["stage2Warm"] != true || inc["stage3Warm"] != true {
		t.Fatalf("post-mutate extraction did not warm-start: %v", inc)
	}
	if inc["dirtyTypes"].(float64) != 1 || inc["dirtyObjects"].(float64) < 1 {
		t.Fatalf("dirty counts: %v", inc)
	}
}

func TestSessionStoreLRU(t *testing.T) {
	a := newAPI(Config{SessionEntries: 2})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()
	ids := make([]string, 3)
	for i := range ids {
		data := sampleText + fmt.Sprintf("link gates extra%d tag%d\n", i, i)
		ids[i] = createSession(t, srv, data)
	}
	if a.sessions.len() != 2 {
		t.Fatalf("store holds %d sessions, want 2", a.sessions.len())
	}
	// The oldest session fell off; the two newest still answer.
	status, _ := post(t, srv, "/v1/session/"+ids[0]+"/extract", `{}`)
	if status != 404 {
		t.Fatalf("evicted session answered with %d", status)
	}
	for _, id := range ids[1:] {
		if status, out := post(t, srv, "/v1/session/"+id+"/extract", `{}`); status != 200 {
			t.Fatalf("live session %s: status %d: %v", id, status, out)
		}
	}
}

func TestNewHandlerRejectsNegativeCapacity(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "non-positive") {
			t.Fatalf("recover = %v, want capacity panic", r)
		}
	}()
	NewHandler(Config{CacheEntries: -1})
}
