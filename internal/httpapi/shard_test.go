package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"schemex/internal/compile"
	"schemex/internal/wal"
)

// chainData renders a chain graph n0 -> n1 -> ... -> n<n-1> in the text
// format: n objects, n-1 links, IDs assigned in name order so the object-ID
// ranges of the snapshot's shards are predictable.
func chainData(n int) string {
	var b strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "link n%d n%d next\n", i, i+1)
	}
	return b.String()
}

// TestSessionConcurrentShardedMutate hammers one multi-shard session with
// concurrent mutations whose footprints land on different shards. Every
// delta must be applied exactly once — losers of the head-swap race rebase,
// they do not drop edits — so the final version and link count are exact.
func TestSessionConcurrentShardedMutate(t *testing.T) {
	t.Setenv(compile.TestShardsEnv, "4")
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	id := createSession(t, srv, chainData(256))

	status, out := post(t, srv, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 1},
	}))
	if status != 200 {
		t.Fatalf("baseline extract status %d: %v", status, out)
	}

	const goroutines, perG = 8, 5
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				// Each goroutine links objects inside its own 32-object
				// region, so footprints of different goroutines usually map
				// to different shards (and never duplicate a chain edge).
				delta := fmt.Sprintf("link n%d n%d next\n", g*32+j, g*32+j+16)
				body := mustJSON(t, map[string]interface{}{"delta": delta})
				resp, err := http.Post(srv.URL+"/v1/session/"+id+"/mutate", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("goroutine %d delta %d: status %d: %s", g, j, resp.StatusCode, buf.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if v := info["version"].(float64); v != goroutines*perG {
		t.Errorf("version = %v, want %d (a concurrent mutation was dropped)", v, goroutines*perG)
	}
	if l := info["links"].(float64); l != 255+goroutines*perG {
		t.Errorf("links = %v, want %d", l, 255+goroutines*perG)
	}
	if sh := info["shards"].(float64); sh != 4 {
		t.Errorf("shards = %v, want 4 (%s not honored)", sh, compile.TestShardsEnv)
	}

	// The mutated session still extracts: per-shard locking never leaves a
	// half-applied snapshot visible.
	status, out = post(t, srv, "/v1/session/"+id+"/extract", mustJSON(t, map[string]interface{}{
		"options": map[string]interface{}{"k": 1},
	}))
	if status != 200 {
		t.Fatalf("final extract status %d: %v", status, out)
	}
}

// TestMetricsEndpoint: /v1/metrics serves the expvar surface and the schemex
// counters move with traffic. Counters are process-global, so the test
// asserts deltas, never absolutes.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	read := func() map[string]float64 {
		resp, err := http.Get(srv.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		var all map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64)
		for k, v := range all {
			if f, ok := v.(float64); ok && strings.HasPrefix(k, "schemex_") {
				out[k] = f
			}
		}
		return out
	}

	before := read()
	for _, k := range []string{
		"schemex_snapshot_cache_hits", "schemex_snapshot_cache_misses", "schemex_snapshot_cache_evictions",
		"schemex_session_store_hits", "schemex_session_store_misses", "schemex_session_store_evictions",
		"schemex_apply_incremental", "schemex_apply_fallback",
	} {
		if _, ok := before[k]; !ok {
			t.Errorf("metrics endpoint missing %s", k)
		}
	}

	// Two identical extracts: one snapshot-cache miss then one hit.
	req := mustJSON(t, map[string]interface{}{"data": sampleText, "options": map[string]interface{}{"k": 2}})
	for i := 0; i < 2; i++ {
		if status, out := post(t, srv, "/v1/extract", req); status != 200 {
			t.Fatalf("extract status %d: %v", status, out)
		}
	}
	// One incremental mutate and one fallback (new label) mutate.
	id := createSession(t, srv, sampleText)
	mutateOK(t, srv, id, nthDelta(1))
	mutateOK(t, srv, id, "link gates jobs rival\n")

	after := read()
	diff := func(k string) float64 { return after[k] - before[k] }
	if diff("schemex_snapshot_cache_misses") < 1 || diff("schemex_snapshot_cache_hits") < 1 {
		t.Errorf("snapshot cache counters did not move: before=%v after=%v", before, after)
	}
	if diff("schemex_session_store_hits") < 2 {
		t.Errorf("session store hits moved by %v, want >= 2", diff("schemex_session_store_hits"))
	}
	if diff("schemex_apply_incremental") < 1 || diff("schemex_apply_fallback") < 1 {
		t.Errorf("apply counters did not move: incremental +%v, fallback +%v",
			diff("schemex_apply_incremental"), diff("schemex_apply_fallback"))
	}
}

// TestSpillBytesTrigger: with SpillBytes=1 every logged delta pushes the log
// past the byte threshold, so each mutation rotates to a fresh snapshot
// generation even though SpillEvery is far away.
func TestSpillBytesTrigger(t *testing.T) {
	dir := t.TempDir()
	_, ts := durableServer(t, Config{DataDir: dir, SpillEvery: 1000, SpillBytes: 1})
	id := createSession(t, ts, sampleText)

	for i := 1; i <= 3; i++ {
		mutateOK(t, ts, id, nthDelta(i))
		m, err := wal.ReadManifest(filepath.Join(dir, sessionsSubdir, id))
		if err != nil {
			t.Fatal(err)
		}
		if m.Version != uint64(i) {
			t.Fatalf("after delta %d: manifest at version %d, want %d (byte spill did not rotate)", i, m.Version, i)
		}
		if m.Snapshot != fmt.Sprintf("snapshot-%d.graph", i) {
			t.Fatalf("after delta %d: snapshot %s", i, m.Snapshot)
		}
	}
	// Old generations are retired: exactly one graph snapshot, one core blob,
	// and one log remain, and every generation file (shard files included)
	// belongs to the current version.
	entries, err := os.ReadDir(filepath.Join(dir, sessionsSubdir, id))
	if err != nil {
		t.Fatal(err)
	}
	snaps, cores, logs, shards := 0, 0, 0, 0
	for _, e := range entries {
		n := e.Name()
		switch {
		case strings.HasSuffix(n, ".graph"):
			snaps++
		case strings.HasSuffix(n, ".core"):
			cores++
		case strings.HasPrefix(n, "wal-"):
			logs++
		case strings.HasPrefix(n, "shard-"):
			shards++
		}
		if n != wal.ManifestName && !strings.Contains(n, "-3") {
			t.Errorf("stale generation file survived cleanup: %s", n)
		}
	}
	if snaps != 1 || cores != 1 || logs != 1 || shards < 1 {
		t.Fatalf("generation cleanup: %d graphs, %d cores, %d logs, %d shards (want 1/1/1/>=1)",
			snaps, cores, logs, shards)
	}
}

// TestRecoverManySessionsPooled: startup recovery over more sessions than
// the worker cap rehydrates every one of them, at any pool width.
func TestRecoverManySessionsPooled(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, Config{DataDir: dir})
	const n = DefaultRecoverConcurrency + 4
	ids := make([]string, n)
	for i := range ids {
		ids[i] = createSession(t, ts1, sampleText)
		mutateOK(t, ts1, ids[i], nthDelta(i))
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 0} { // 0 = default pool width
		s2, err := NewServer(Config{DataDir: dir, RecoverConcurrency: workers})
		if err != nil {
			t.Fatalf("RecoverConcurrency=%d: %v", workers, err)
		}
		if got := s2.a.sessions.len(); got != n {
			t.Errorf("RecoverConcurrency=%d: recovered %d sessions, want %d", workers, got, n)
		}
		ts2 := httptest.NewServer(s2.Handler())
		for _, id := range ids {
			resp, err := http.Get(ts2.URL + "/v1/session/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var info map[string]interface{}
			json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if resp.StatusCode != 200 || info["version"].(float64) != 1 {
				t.Errorf("RecoverConcurrency=%d: session %s: status %d info %v", workers, id, resp.StatusCode, info)
			}
		}
		ts2.Close()
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
