// Per-shard admission locks for concurrent session mutations. A session's
// compiled snapshot is partitioned into fixed-range object shards
// (schemex.Options.Shards); a delta's footprint maps onto a subset of them
// via Prepared.DeltaShards. Mutations whose footprints land on disjoint
// stripes run their expensive Apply concurrently; the head swap itself stays
// serialized under the session mutex, and a mutation that loses the swap race
// rebases onto the new head. The stripes are therefore a throughput device,
// never a correctness one: Apply is copy-on-write and the swap revalidates.
package httpapi

import "sync"

// lockStripes is the size of the per-session stripe table. Shard index si
// maps to stripe si % lockStripes, so snapshots with more shards than
// stripes still admit up to lockStripes disjoint mutations.
const lockStripes = 16

// shardLocks is a fixed stripe table. Stripes are always acquired in
// ascending index order, which makes deadlock between two mask holders
// impossible. The session mutex is only ever taken with stripes already
// held, never the reverse.
type shardLocks struct {
	stripes [lockStripes]sync.Mutex
}

// stripeMask maps a delta footprint to the stripes it must hold. exclusive
// footprints (the delta names unknown objects, so it may grow new shards)
// take every stripe. An empty footprint still claims stripe 0 so that even
// no-op deltas serialize against exclusive holders.
func stripeMask(shards []int, exclusive bool) uint32 {
	if exclusive {
		return 1<<lockStripes - 1
	}
	var m uint32
	for _, si := range shards {
		m |= 1 << (si % lockStripes)
	}
	if m == 0 {
		m = 1
	}
	return m
}

// lock acquires every stripe in mask in ascending order and returns the
// matching unlock (descending order).
func (l *shardLocks) lock(mask uint32) func() {
	for i := 0; i < lockStripes; i++ {
		if mask&(1<<i) != 0 {
			l.stripes[i].Lock()
		}
	}
	return func() {
		for i := lockStripes - 1; i >= 0; i-- {
			if mask&(1<<i) != 0 {
				l.stripes[i].Unlock()
			}
		}
	}
}
