// Package par is the tiny fork-join helper behind Options.Parallelism: the
// extraction kernels shard their O(n²)/O(n·k) loops over a bounded set of
// goroutines. Callers keep per-shard writes disjoint and fold shard results
// with index tie-breaks, so every pipeline result is bit-identical to a
// serial run at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a Parallelism option: values <= 0 mean one worker per
// available CPU (runtime.GOMAXPROCS(0)).
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Do splits [0, n) into one contiguous chunk per worker and runs fn(lo, hi)
// on each concurrently. With one worker (or n <= 1) it runs inline with no
// goroutine or allocation. Use for loops whose per-index cost is roughly
// uniform.
func Do(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DoItems runs fn(i) for every i in [0, n), handing indexes to workers
// dynamically through an atomic counter. Use for loops with uneven per-index
// cost (e.g. triangular distance-matrix rows, where early rows hold more
// pairs than late ones). With one worker it runs inline in index order.
func DoItems(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// errCollector folds worker errors deterministically: the error produced at
// the smallest index wins, no matter which worker reports first.
type errCollector struct {
	mu  sync.Mutex
	idx int
	err error
}

func (c *errCollector) report(i int, err error) {
	c.mu.Lock()
	if c.err == nil || i < c.idx {
		c.idx, c.err = i, err
	}
	c.mu.Unlock()
}

// DoErr is Do with error propagation: chunks run concurrently, and the first
// error (by chunk start index, so the choice is deterministic) is returned.
// Chunks that already started still run to completion — fn is responsible for
// its own early exit (typically by consulting the same cancellation check
// that made a sibling fail) — and every worker is joined before DoErr
// returns, so cancellation never leaks goroutines.
func DoErr(workers, n int, fn func(lo, hi int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			return fn(0, n)
		}
		return nil
	}
	chunk := (n + workers - 1) / workers
	var col errCollector
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := fn(lo, hi); err != nil {
				col.report(lo, err)
			}
		}(lo, hi)
	}
	wg.Wait()
	return col.err
}

// DoItemsErr is DoItems with error propagation and early stop: once any item
// fails, workers stop claiming new indexes, drain, and the error produced at
// the smallest index is returned. All workers are joined before return — a
// cancelled run leaves no goroutines behind. With one worker it runs inline
// in index order and stops at the first error.
func DoItemsErr(workers, n int, fn func(i int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var stop atomic.Bool
	var col errCollector
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					col.report(i, err)
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return col.err
}
