package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestDoCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 101} {
			seen := make([]int32, n)
			Do(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestDoItemsCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 101} {
			seen := make([]int32, n)
			DoItems(workers, n, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestSerialRunsInline(t *testing.T) {
	// With one worker the callback must run on the calling goroutine (no
	// allocation, deterministic order): verify order for DoItems.
	var order []int
	DoItems(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial DoItems out of order: %v", order)
		}
	}
}

func TestDoErrNilOnSuccess(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if err := DoErr(workers, 50, func(lo, hi int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestDoErrSmallestChunkWins(t *testing.T) {
	// Every chunk fails with an error naming its start index; the chunk with
	// the smallest start must win regardless of scheduling.
	for _, workers := range []int{1, 2, 4, 8} {
		err := DoErr(workers, 64, func(lo, hi int) error {
			return fmt.Errorf("chunk %d", lo)
		})
		if err == nil || err.Error() != "chunk 0" {
			t.Fatalf("workers=%d: got %v, want chunk 0", workers, err)
		}
	}
}

func TestDoItemsErrSmallestIndexWins(t *testing.T) {
	// Indexes are claimed in increasing order, so index 50 is always reached
	// and its error beats any later one in the deterministic fold.
	for _, workers := range []int{1, 2, 4, 8} {
		err := DoItemsErr(workers, 100, func(i int) error {
			if i >= 50 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 50" {
			t.Fatalf("workers=%d: got %v, want item 50", workers, err)
		}
	}
}

func TestDoItemsErrStopsClaiming(t *testing.T) {
	// After the first error, workers must stop claiming fresh indexes: with
	// a serial run the count is exact; with parallel workers it can overshoot
	// only by in-flight items (< n).
	var count atomic.Int32
	err := DoItemsErr(1, 1000, func(i int) error {
		count.Add(1)
		if i == 10 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || count.Load() != 11 {
		t.Fatalf("serial: err=%v count=%d, want 11", err, count.Load())
	}
	count.Store(0)
	err = DoItemsErr(4, 100000, func(i int) error {
		if i == 0 {
			return fmt.Errorf("boom")
		}
		count.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("parallel: expected error")
	}
	if got := count.Load(); got > 1000 {
		t.Fatalf("parallel: %d items ran after the first error — workers did not stop claiming", got)
	}
}

func TestErrVariantsLeaveNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		DoErr(8, 64, func(lo, hi int) error { return fmt.Errorf("x") })
		DoItemsErr(8, 64, func(i int) error { return fmt.Errorf("x") })
	}
	// Both helpers join every worker before returning, so the count must be
	// back at (or below) the baseline immediately.
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Fatalf("goroutines grew from %d to %d after failed runs", base, got)
	}
}
