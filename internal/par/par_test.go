package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestDoCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 101} {
			seen := make([]int32, n)
			Do(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestDoItemsCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 101} {
			seen := make([]int32, n)
			DoItems(workers, n, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestSerialRunsInline(t *testing.T) {
	// With one worker the callback must run on the calling goroutine (no
	// allocation, deterministic order): verify order for DoItems.
	var order []int
	DoItems(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial DoItems out of order: %v", order)
		}
	}
}
