package perfect

import (
	"math/rand"
	"testing"

	"schemex/internal/graph"
	"schemex/internal/synth"
)

// TestBipartiteFastPathMatchesGFP: on bipartite data the label-set grouping
// must produce exactly the classes the reference fixpoint route does (same
// partition, same program text).
func TestBipartiteFastPathMatchesGFP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	attrs := []string{"name", "addr", "phone", "mail", "fax"}
	for trial := 0; trial < 10; trial++ {
		db := graph.New()
		n := 8 + rng.Intn(20)
		for i := 0; i < n; i++ {
			rec := "r" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			any := false
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					db.LinkAtom(rec, a, rec+"."+a, "v")
					any = true
				}
			}
			if !any {
				db.LinkAtom(rec, "name", rec+".name", "v")
			}
		}
		fast, err := Minimal(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Minimal(db, Options{UseNaiveGFP: true})
		if err != nil {
			t.Fatal(err)
		}
		if fast.Program.String() != ref.Program.String() {
			t.Fatalf("trial %d: fast path program differs:\n%s\nvs\n%s",
				trial, fast.Program, ref.Program)
		}
		for o, h := range fast.Home {
			if ref.Home[o] != h {
				t.Fatalf("trial %d: home of %s differs", trial, db.Name(o))
			}
		}
	}
}

// TestBipartiteFastPathPreset runs the comparison on Table 1's DB1.
func TestBipartiteFastPathPreset(t *testing.T) {
	db, err := synth.Presets()[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Minimal(db, Options{UseNaiveGFP: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Program.Len() != ref.Program.Len() {
		t.Fatalf("fast %d classes vs reference %d", fast.Program.Len(), ref.Program.Len())
	}
	if fast.Program.String() != ref.Program.String() {
		t.Fatal("fast path program differs from reference on DB1")
	}
}

// TestBipartiteFastPathWithSortsAndValues: the fast path keys include sort
// and value refinements.
func TestBipartiteFastPathWithSortsAndValues(t *testing.T) {
	db := graph.New()
	set := func(rec, sex string, age string, sort graph.Sort) {
		db.Atom(rec+".sex", sex)
		db.Link(rec, rec+".sex", "sex")
		id := db.Intern(rec + ".age")
		if err := db.SetAtomic(id, graph.Value{Sort: sort, Text: age}); err != nil {
			t.Fatal(err)
		}
		db.Link(rec, rec+".age", "age")
	}
	set("a", "Male", "30", graph.SortInt)
	set("b", "Male", "31", graph.SortInt)
	set("c", "Female", "32", graph.SortInt)
	set("d", "Male", "unknown", graph.SortString)

	res, err := Minimal(db, Options{UseSorts: true, ValueLabels: []string{"sex"}})
	if err != nil {
		t.Fatal(err)
	}
	// Classes: {a,b} (male, int age), {c} (female), {d} (male, string age).
	if res.Program.Len() != 3 {
		t.Fatalf("classes = %d, want 3:\n%s", res.Program.Len(), res.Program)
	}
	if res.Home[db.Lookup("a")] != res.Home[db.Lookup("b")] {
		t.Error("a,b should share a class")
	}
	if res.Home[db.Lookup("a")] == res.Home[db.Lookup("d")] {
		t.Error("string-aged male should split from int-aged males")
	}
	ref, err := Minimal(db, Options{UseSorts: true, ValueLabels: []string{"sex"}, UseNaiveGFP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.String() != ref.Program.String() {
		t.Fatal("fast path differs from reference with sorts+values")
	}
}
