package perfect

import (
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/typing"
)

// TestBisimulationEngineMatchesGFP: on DBG (and the worked examples) the
// bisimulation Stage 1 yields the same classes and the same program as the
// GFP extent quotient.
func TestBisimulationEngineMatchesGFP(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	gfp, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bi, err := Minimal(db, Options{UseBisimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if gfp.Program.Len() != bi.Program.Len() {
		t.Fatalf("gfp %d classes vs bisim %d", gfp.Program.Len(), bi.Program.Len())
	}
	// Same partition: objects share a class in one iff in the other.
	objs := db.ComplexObjects()
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			a := gfp.Home[objs[i]] == gfp.Home[objs[j]]
			b := bi.Home[objs[i]] == bi.Home[objs[j]]
			if a != b {
				t.Fatalf("%s/%s: gfp same=%v bisim same=%v",
					db.Name(objs[i]), db.Name(objs[j]), a, b)
			}
		}
	}
	// Same rules, compared structurally through the class correspondence
	// (auto-generated names differ between the two engines, so textual
	// comparison does not apply).
	toGFP := make([]int, bi.Program.Len())
	for bc, members := range bi.Classes {
		toGFP[bc] = gfp.Home[members[0]]
	}
	for bc, bt := range bi.Program.Types {
		gt := gfp.Program.Types[toGFP[bc]]
		mapped := bt.Clone()
		for li, l := range mapped.Links {
			if l.Target != typing.AtomicTarget {
				mapped.Links[li].Target = toGFP[l.Target]
			}
		}
		mapped.Canonicalize()
		if len(mapped.Links) != len(gt.Links) {
			t.Fatalf("class %d: rule sizes differ (%d vs %d)", bc, len(mapped.Links), len(gt.Links))
		}
		for li := range mapped.Links {
			if mapped.Links[li] != gt.Links[li] {
				t.Fatalf("class %d: rules differ at link %d: %v vs %v",
					bc, li, mapped.Links[li], gt.Links[li])
			}
		}
	}
	// The bisim result is also perfect: every object in its home extent.
	for o, h := range bi.Home {
		if !bi.Extent.Has(h, o) {
			t.Fatalf("%s not in its home extent", db.Name(o))
		}
	}
}

func TestBisimulationEngineFigure4(t *testing.T) {
	db := figure4DB()
	res, err := Minimal(db, Options{UseBisimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 3 {
		t.Fatalf("classes = %d, want 3", res.Program.Len())
	}
}

func TestBisimulationRejectsRefinements(t *testing.T) {
	db := figure4DB()
	if _, err := Minimal(db, Options{UseBisimulation: true, UseSorts: true}); err == nil {
		t.Fatal("bisim + sorts accepted")
	}
	if _, err := Minimal(db, Options{UseBisimulation: true, ValueLabels: []string{"x"}}); err == nil {
		t.Fatal("bisim + value labels accepted")
	}
}
