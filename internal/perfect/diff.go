package perfect

import (
	"schemex/internal/graph"
)

// MatchClasses proposes, for each child Stage 1 class, the parent class with
// the identical member list (classes are sorted ObjectID slices, as
// Result.Classes stores them), or -1 when none exists. Classes partition the
// complex objects on each side, so member-list equality is automatically
// injective: no two child classes can claim the same parent class.
//
// This is the extent-diff step of warm Stage 2: two classes with identical
// members across a delta are candidates for reusing the parent's clustering
// distances, pending the definition check (cluster.MatchDefinitions). The
// proposal is pure set comparison — it never trusts the delta description.
func MatchClasses(child, parent [][]graph.ObjectID) []int {
	byHash := make(map[uint64][]int, len(parent))
	for pi, members := range parent {
		h := hashMembers(members)
		byHash[h] = append(byHash[h], pi)
	}
	out := make([]int, len(child))
	for ci, members := range child {
		out[ci] = -1
		for _, pi := range byHash[hashMembers(members)] {
			if membersEqual(members, parent[pi]) {
				out[ci] = pi
				break
			}
		}
	}
	return out
}

// hashMembers is FNV-1a over the IDs of a sorted member list.
func hashMembers(members []graph.ObjectID) uint64 {
	h := uint64(14695981039346656037)
	for _, o := range members {
		v := uint64(o)
		for k := 0; k < 8; k++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

func membersEqual(a, b []graph.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
