package perfect

import (
	"sort"

	"schemex/internal/graph"
	"schemex/internal/typing"
)

// This file implements the multiple-roles post-pass of §4.2: a "complex"
// type whose definition is the conjunction (union of typed links) of several
// simpler types can be eliminated, with its home objects assigned to each of
// the covering simpler types. Example 4.3 (soccer and movie stars) is the
// canonical case: type₂ = type₁ ∪ type₃, so deleting type₂ leaves o₂ with
// the two home types type₁ and type₃.

// Cover describes how one type decomposes into simpler types.
type Cover struct {
	Type      int   // the covered (conjunction) type
	CoveredBy []int // simpler types whose links union to Type's links
}

// FindCovers returns, for every type of p that is exactly covered by a set
// of strictly simpler types (fewer typed links each), one minimal such cover
// found greedily. The scan is O(n²) in the number of types, matching
// Remark 4.4.
func FindCovers(p *typing.Program) []Cover {
	var covers []Cover
	for ti, t := range p.Types {
		if len(t.Links) == 0 {
			continue
		}
		// Candidate parts: strictly simpler types whose links are a subset
		// of t's.
		var parts []int
		for si, s := range p.Types {
			if si == ti || len(s.Links) == 0 || len(s.Links) >= len(t.Links) {
				continue
			}
			if subsetLinks(s.Links, t) {
				parts = append(parts, si)
			}
		}
		if len(parts) == 0 {
			continue
		}
		// Greedy set cover of t's links by the candidate parts.
		need := typing.NewLinkSet(t.Links)
		var chosen []int
		for len(need) > 0 {
			best, bestGain := -1, 0
			for _, si := range parts {
				gain := 0
				for _, l := range p.Types[si].Links {
					if need[l] {
						gain++
					}
				}
				if gain > bestGain {
					best, bestGain = si, gain
				}
			}
			if best < 0 {
				break // uncoverable remainder
			}
			chosen = append(chosen, best)
			for _, l := range p.Types[best].Links {
				delete(need, l)
			}
		}
		if len(need) == 0 && len(chosen) >= 2 {
			sort.Ints(chosen)
			covers = append(covers, Cover{Type: ti, CoveredBy: chosen})
		}
	}
	return covers
}

func subsetLinks(links []typing.TypedLink, t *typing.Type) bool {
	for _, l := range links {
		if !t.HasLink(l) {
			return false
		}
	}
	return true
}

// RolesResult is the outcome of applying the multiple-roles decomposition:
// an overlapping collection of types.
type RolesResult struct {
	// Program is the reduced program with covered conjunction types removed.
	Program *typing.Program
	// Homes maps each complex object to its home types in Program (one, or
	// several for former conjunction-type objects).
	Homes map[graph.ObjectID][]int
	// Removed lists the covers that were applied (indices refer to the
	// Stage 1 program).
	Removed []Cover
}

// ApplyRoles removes covered conjunction types from a Stage 1 result,
// reassigning their home objects to every covering simple type. Links in
// surviving types that targeted a removed type are retargeted to the most
// specific covering type (the one with the most links); this only enlarges
// witness sets, so the program stays sound as an approximation. Removal
// cascades are not chased: covers are computed once against the Stage 1
// program, and a type used as a cover part is never removed.
func ApplyRoles(r *Result) *RolesResult {
	covers := FindCovers(r.Program)
	inCover := make(map[int]bool)
	for _, c := range covers {
		for _, si := range c.CoveredBy {
			inCover[si] = true
		}
	}
	coverOf := make(map[int]Cover)
	for _, c := range covers {
		if !inCover[c.Type] {
			coverOf[c.Type] = c
		}
	}
	if len(coverOf) == 0 {
		homes := make(map[graph.ObjectID][]int, len(r.Home))
		for o, h := range r.Home {
			homes[o] = []int{h}
		}
		return &RolesResult{Program: r.Program.Clone(), Homes: homes}
	}

	// New index mapping with covered types removed.
	newIdx := make([]int, len(r.Program.Types))
	np := typing.NewProgram()
	for ti, t := range r.Program.Types {
		if _, removed := coverOf[ti]; removed {
			newIdx[ti] = -1
			continue
		}
		newIdx[ti] = np.Add(t.Clone())
	}
	// retarget maps a removed type to its most specific covering part.
	retarget := func(old int) int {
		c := coverOf[old]
		best := c.CoveredBy[0]
		for _, si := range c.CoveredBy[1:] {
			if len(r.Program.Types[si].Links) > len(r.Program.Types[best].Links) {
				best = si
			}
		}
		return newIdx[best]
	}
	for _, t := range np.Types {
		for li, l := range t.Links {
			if l.Target == typing.AtomicTarget {
				continue
			}
			if newIdx[l.Target] >= 0 {
				t.Links[li].Target = newIdx[l.Target]
			} else {
				t.Links[li].Target = retarget(l.Target)
			}
		}
		t.Canonicalize()
	}

	homes := make(map[graph.ObjectID][]int, len(r.Home))
	for o, h := range r.Home {
		if c, removed := coverOf[h]; removed {
			hs := make([]int, 0, len(c.CoveredBy))
			for _, si := range c.CoveredBy {
				hs = append(hs, newIdx[si])
			}
			homes[o] = hs
		} else {
			homes[o] = []int{newIdx[h]}
		}
	}
	// Recompute weights: home-object counts per surviving type.
	for _, t := range np.Types {
		t.Weight = 0
	}
	for _, hs := range homes {
		for _, h := range hs {
			np.Types[h].Weight++
		}
	}
	applied := make([]Cover, 0, len(coverOf))
	for _, c := range coverOf {
		applied = append(applied, c)
	}
	sort.Slice(applied, func(i, j int) bool { return applied[i].Type < applied[j].Type })
	return &RolesResult{Program: np, Homes: homes, Removed: applied}
}
