package perfect

import (
	"testing"

	"schemex/internal/graph"
	"schemex/internal/typing"
)

// figure5DB builds the soccer-and-movie-stars database of Figure 5 /
// Example 4.3: o1 (Scholes) has name, country, team; o2 (Cantona) has name,
// country, team, movie; o3 (Binoche) has name, country, movie ×2.
func figure5DB() *graph.DB {
	db := graph.New()
	db.LinkAtom("o1", "name", "n1", "Scholes")
	db.LinkAtom("o1", "country", "c1", "England")
	db.LinkAtom("o1", "team", "t1", "Man Utd")
	db.LinkAtom("o2", "name", "n2", "Cantona")
	db.LinkAtom("o2", "country", "c2", "France")
	db.LinkAtom("o2", "team", "t2", "Man Utd")
	db.LinkAtom("o2", "movie", "m2", "Le Bonheur...")
	db.LinkAtom("o3", "name", "n3", "Binoche")
	db.LinkAtom("o3", "country", "c3", "France")
	db.LinkAtom("o3", "movie", "m3a", "Bleu")
	db.LinkAtom("o3", "movie", "m3b", "Damage")
	return db
}

func TestExample43Covers(t *testing.T) {
	db := figure5DB()
	res, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three perfect types: soccer star, soccer+movie star, movie star.
	if res.Program.Len() != 3 {
		t.Fatalf("perfect typing has %d types, want 3:\n%s", res.Program.Len(), res.Program)
	}
	h1, h2, h3 := res.Home[db.Lookup("o1")], res.Home[db.Lookup("o2")], res.Home[db.Lookup("o3")]
	// In the greatest fixpoint, type1 (soccer) contains o1 and o2; type3
	// (movie) contains o2 and o3; type2 contains o2 only.
	if !res.Extent.Has(h1, db.Lookup("o2")) {
		t.Error("extent of soccer type should contain o2")
	}
	if !res.Extent.Has(h3, db.Lookup("o2")) {
		t.Error("extent of movie type should contain o2")
	}
	if res.Extent.Count(h2) != 1 {
		t.Errorf("conjunction type extent = %d, want 1 (o2 only)", res.Extent.Count(h2))
	}

	covers := FindCovers(res.Program)
	if len(covers) != 1 {
		t.Fatalf("FindCovers found %d covers, want 1: %+v", len(covers), covers)
	}
	if covers[0].Type != h2 {
		t.Errorf("cover should remove o2's conjunction type %d, got %d", h2, covers[0].Type)
	}
	wantParts := map[int]bool{h1: true, h3: true}
	for _, si := range covers[0].CoveredBy {
		if !wantParts[si] {
			t.Errorf("unexpected cover part %d", si)
		}
	}

	roles := ApplyRoles(res)
	if roles.Program.Len() != 2 {
		t.Fatalf("after roles: %d types, want 2:\n%s", roles.Program.Len(), roles.Program)
	}
	// o2 now has two home types (multiple roles).
	homes := roles.Homes[db.Lookup("o2")]
	if len(homes) != 2 {
		t.Fatalf("o2 has %d home types after decomposition, want 2", len(homes))
	}
	// o1 and o3 keep a single home.
	if len(roles.Homes[db.Lookup("o1")]) != 1 || len(roles.Homes[db.Lookup("o3")]) != 1 {
		t.Error("o1/o3 should keep single homes")
	}
	// Weights: soccer type is home to o1 and o2; movie type to o2 and o3.
	for _, ty := range roles.Program.Types {
		if ty.Weight != 2 {
			t.Errorf("type %s weight = %d, want 2", ty.Name, ty.Weight)
		}
	}
}

func TestApplyRolesNoCovers(t *testing.T) {
	db := figure4DB()
	res, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	roles := ApplyRoles(res)
	if roles.Program.Len() != res.Program.Len() {
		t.Fatalf("roles changed type count with no covers: %d vs %d",
			roles.Program.Len(), res.Program.Len())
	}
	if len(roles.Removed) != 0 {
		t.Fatalf("unexpected removals: %+v", roles.Removed)
	}
	for o, hs := range roles.Homes {
		if len(hs) != 1 || hs[0] != res.Home[o] {
			t.Fatalf("home of %s changed: %v", db.Name(o), hs)
		}
	}
}

func TestRetargetLinksToRemovedType(t *testing.T) {
	// A program where a surviving type links to a removed conjunction type:
	// the link must be retargeted to the most specific covering part.
	p := typing.MustParse(`
		type simple1 = ->a[0]
		type simple2 = ->b[0]
		type conj    = ->a[0] & ->b[0]
		type user    = ->ref[conj] & ->c[0]
	`)
	for _, ty := range p.Types {
		ty.Weight = 1
	}
	res := &Result{Program: p, Home: map[graph.ObjectID]int{0: 0, 1: 1, 2: 2, 3: 3}}
	roles := ApplyRoles(res)
	if roles.Program.Len() != 3 {
		t.Fatalf("after roles: %d types, want 3:\n%s", roles.Program.Len(), roles.Program)
	}
	ui := roles.Program.IndexOf("user")
	if ui < 0 {
		t.Fatal("user type vanished")
	}
	for _, l := range roles.Program.Types[ui].Links {
		if l.Label == "ref" {
			name := roles.Program.Types[l.Target].Name
			if name != "simple1" && name != "simple2" {
				t.Fatalf("ref link retargeted to %q", name)
			}
		}
	}
	if err := roles.Program.Validate(); err != nil {
		t.Fatal(err)
	}
}
