// Package perfect implements Stage 1 of the paper's method (§4): the
// minimal perfect typing. One candidate type is created per complex object
// from its local picture (program Q_D), the greatest fixpoint of Q_D groups
// objects whose types have equal extents, and the quotient program P_D is
// the coarsest typing with zero defect. A post-pass (§4.2) decomposes
// conjunction types into covering simpler types, giving objects multiple
// roles.
package perfect

import (
	"fmt"
	"sort"
	"strings"

	"schemex/internal/bisim"
	"schemex/internal/compile"
	"schemex/internal/graph"
	"schemex/internal/par"
	"schemex/internal/typing"
)

// Result is the output of Stage 1.
type Result struct {
	// Program is the minimal perfect typing program P_D. Type weights are
	// the home-class sizes.
	Program *typing.Program
	// Home maps every complex object to the index of its home type in
	// Program.
	Home map[graph.ObjectID]int
	// Classes lists, for each type, the objects whose home it is (the
	// equivalence classes of ≗), in ID order.
	Classes [][]graph.ObjectID
	// Extent is the greatest fixpoint of Program on the database. It may
	// assign objects to types beyond their home type: the rules contain no
	// negation, so an object with more typed links than a type requires is
	// also in that type (§4.2).
	Extent *typing.Extent

	// QD retains the per-object program Q_D on every route: a warm restart
	// against a delta reuses its canonical per-object rules for positions the
	// delta did not touch, skipping their reconstruction entirely. QDExtent
	// additionally retains the Q_D greatest fixpoint when Stage 1 went
	// through the general GFP route — the state needed to maintain that
	// fixpoint incrementally. QDExtent is nil on the bipartite,
	// bisimulation, and naive-GFP paths, which compute no reusable fixpoint.
	QD       *typing.Program
	QDExtent *typing.Extent
	// WarmUsed reports that at least one of the Stage 1 fixpoints (Q_D or
	// P_D) was maintained incrementally from a parent extraction's state (a
	// MinimalSnapWarm warm start that stayed within its affected-fraction
	// budget). False for cold runs and for warm starts whose fixpoint
	// evaluations all fell back to the full evaluation. Observability only —
	// the result is bit-identical either way.
	WarmUsed bool

	db *graph.DB
}

// DB returns the database the result was computed from.
func (r *Result) DB() *graph.DB { return r.db }

// Options configure Stage 1.
type Options struct {
	// NameFor, if non-nil, names the class containing the given objects
	// (called once per class with the class members). Default names are
	// derived from the dominant incoming label of the class, falling back
	// to classN.
	NameFor func(db *graph.DB, members []graph.ObjectID, classIdx int) string
	// UseNaiveGFP selects the reference greatest-fixpoint evaluator instead
	// of the support-counting one (for benchmarks and cross-checking).
	UseNaiveGFP bool
	// UseSorts distinguishes atomic targets by value sort (Remark 2.1):
	// ->age[0:int] instead of ->age[0]. Objects whose attribute values have
	// different sorts then land in different classes.
	UseSorts bool
	// ValueLabels lists labels whose atomic values participate in typing
	// (the paper's future-work value predicates): objects with sex "Male"
	// and sex "Female" then land in different classes.
	ValueLabels []string
	// Parallelism bounds the worker goroutines used for Q_D candidate-type
	// construction and the greatest-fixpoint evaluation; <= 0 means one per
	// CPU, 1 runs the exact serial code path. Results are identical at any
	// setting.
	Parallelism int
	// Check, if non-nil, is a cooperative cancellation checkpoint consulted
	// periodically throughout Stage 1 (candidate-type construction, the
	// greatest-fixpoint evaluation, class grouping). A non-nil return aborts
	// the stage with that error. Checks never alter computed values, so the
	// determinism guarantee is unaffected.
	Check func() error
	// UseBisimulation derives the Stage 1 partition by bisimulation
	// partition refinement (internal/bisim) instead of the GFP extent
	// quotient. Bisimulation always refines the paper's equivalence (it can
	// only split more, never merge more) and is typically much faster; on
	// all of this repository's datasets the two coincide. Not compatible
	// with UseSorts/ValueLabels (the refinement works on raw labels).
	UseBisimulation bool
}

func (o Options) pictureOpts() typing.PictureOpts {
	po := typing.PictureOpts{UseSorts: o.UseSorts}
	if len(o.ValueLabels) > 0 {
		po.ValueLabels = make(map[string]bool, len(o.ValueLabels))
		for _, l := range o.ValueLabels {
			po.ValueLabels[l] = true
		}
	}
	return po
}

// BuildQD constructs the per-object program Q_D of §4.1: one type per
// complex object, whose rule mirrors the object's local picture exactly.
// The i'th type corresponds to the i'th complex object; the returned slice
// maps complex-object position to ObjectID.
func BuildQD(db *graph.DB) (*typing.Program, []graph.ObjectID) {
	return BuildQDSorted(db, false)
}

// BuildQDSorted is BuildQD with optional atomic sort constraints (Remark
// 2.1): with useSorts, an edge to an atomic of sort s yields ->ℓ[0:s]
// instead of ->ℓ[0].
func BuildQDSorted(db *graph.DB, useSorts bool) (*typing.Program, []graph.ObjectID) {
	return BuildQDOpts(db, typing.PictureOpts{UseSorts: useSorts})
}

// BuildQDOpts is BuildQD with full picture options: sort constraints and
// value predicates on selected labels. Each rule uses the most specific
// form the options enable.
func BuildQDOpts(db *graph.DB, opts typing.PictureOpts) (*typing.Program, []graph.ObjectID) {
	return BuildQDOptsWorkers(db, opts, 1)
}

// BuildQDOptsWorkers is BuildQDOpts with the per-object rule construction
// sharded over the given number of workers (each object's rule depends only
// on its own edges, so shards write disjoint slots). The assembled program
// is identical to the serial one: types are collected positionally, in
// complex-object order.
func BuildQDOptsWorkers(db *graph.DB, opts typing.PictureOpts, workers int) (*typing.Program, []graph.ObjectID) {
	p, objs, _ := BuildQDOptsCheck(db, opts, workers, nil)
	return p, objs
}

// BuildQDOptsCheck is BuildQDOptsWorkers with a cooperative cancellation
// checkpoint consulted periodically inside each shard (nil check: never
// cancel). On cancellation all workers are joined and the error is returned.
//
// It compiles a throwaway snapshot of db and delegates to BuildQDSnapCheck;
// callers running several passes over one database should compile once.
func BuildQDOptsCheck(db *graph.DB, opts typing.PictureOpts, workers int, check func() error) (*typing.Program, []graph.ObjectID, error) {
	snap, err := compile.CompileCheck(db, workers, check)
	if err != nil {
		return nil, nil, err
	}
	return BuildQDSnapCheck(snap, opts, workers, check)
}

// BuildQDSnapCheck builds Q_D from a compiled snapshot: the dense
// complex-object positions that become rule targets come straight from
// snap.Pos, and each object's edges are walked in CSR form, so no position
// map is built and no per-edge map lookups occur.
func BuildQDSnapCheck(snap *compile.Snapshot, opts typing.PictureOpts, workers int, check func() error) (*typing.Program, []graph.ObjectID, error) {
	objs := snap.Complex
	types := make([]*typing.Type, len(objs))
	err := par.DoErr(workers, len(objs), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if check != nil && i%checkEvery == 0 {
				if err := check(); err != nil {
					return err
				}
			}
			types[i] = qdTypeFor(snap, opts, objs[i])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return &typing.Program{Types: types}, objs, nil
}

// qdTypeFor builds the canonical Q_D type of one complex object: a rule
// mirroring the object's local picture exactly (§4.1), with whatever sort
// and value refinements the options enable.
func qdTypeFor(snap *compile.Snapshot, opts typing.PictureOpts, o graph.ObjectID) *typing.Type {
	t := &typing.Type{Name: snap.DB().Name(o), Weight: 1}
	to, lab := snap.Out(o)
	for k := range to {
		tgt := graph.ObjectID(to[k])
		label := snap.Labels[lab[k]]
		if snap.IsAtomic(tgt) {
			l := typing.TypedLink{Dir: typing.Out, Label: label, Target: typing.AtomicTarget}
			if v, ok := snap.Value(tgt); ok {
				if opts.UseSorts {
					l.Sort = typing.SortConstraint(v.Sort) + 1
				}
				if opts.ValueLabels[label] {
					l.Value, l.HasValue = v.Text, true
				}
			}
			t.Links = append(t.Links, l)
		} else {
			t.Links = append(t.Links, typing.TypedLink{Dir: typing.Out, Label: label, Target: int(snap.Pos[tgt])})
		}
	}
	from, lab := snap.In(o)
	for k := range from {
		t.Links = append(t.Links, typing.TypedLink{
			Dir: typing.In, Label: snap.Labels[lab[k]], Target: int(snap.Pos[from[k]]),
		})
	}
	t.Canonicalize()
	return t
}

// checkEvery is the checkpoint stride inside sharded loops: frequent enough
// to bound cancel latency to microseconds, rare enough to be unmeasurable.
const checkEvery = 1024

// buildQDWarm rebuilds Q_D after a delta, reusing the parent result's
// canonical per-object types for every complex position the delta cannot
// have affected. Positions are stable under the apply (core gates warm
// starts on PosStable), so position i names the same object in parent and
// child. A position must be rebuilt when its object was touched, when the
// object reaches a touched atomic (sort/value refinements leak atomic state
// into the source rule), or when it is new; everything else reuses the
// parent's *Type pointer unmodified — reused types are shared and must not
// be mutated. changed lists the positions whose rebuilt rule differs from
// the parent's, plus all new positions: exactly the changed-type set the
// incremental fixpoint evaluation needs.
func buildQDWarm(snap *compile.Snapshot, opts typing.PictureOpts, warm *Warm, check func() error) (*typing.Program, []graph.ObjectID, []int, error) {
	objs := snap.Complex
	parentQD := warm.Parent.QD
	nOld := len(parentQD.Types)
	rebuild := make(map[int]bool, len(warm.Touched))
	for _, o := range warm.Touched {
		if int(o) >= len(snap.Pos) {
			continue // beyond this snapshot; no position to rebuild
		}
		if snap.Pos[o] >= 0 {
			rebuild[int(snap.Pos[o])] = true
			continue
		}
		// Touched atomic: its sort or value can appear in source rules.
		from, _ := snap.In(o)
		for k := range from {
			src := graph.ObjectID(from[k])
			if int(src) < len(snap.Pos) && snap.Pos[src] >= 0 {
				rebuild[int(snap.Pos[src])] = true
			}
		}
	}
	types := make([]*typing.Type, len(objs))
	var changed []int
	for i, o := range objs {
		if check != nil && i%checkEvery == 0 {
			if err := check(); err != nil {
				return nil, nil, nil, err
			}
		}
		if i < nOld && !rebuild[i] {
			types[i] = parentQD.Types[i]
			continue
		}
		t := qdTypeFor(snap, opts, o)
		types[i] = t
		if i >= nOld || !rulesEqual(t.Links, parentQD.Types[i].Links) {
			changed = append(changed, i)
		}
	}
	return &typing.Program{Types: types}, objs, changed, nil
}

// Minimal computes the minimal perfect typing of db (the full Stage 1
// algorithm of §4.1). It compiles a throwaway snapshot and delegates to
// MinimalSnap; callers extracting repeatedly should compile once.
func Minimal(db *graph.DB, opts Options) (*Result, error) {
	snap, err := compile.CompileCheck(db, par.Workers(opts.Parallelism), opts.Check)
	if err != nil {
		return nil, err
	}
	return MinimalSnap(snap, opts)
}

// MinimalSnap is Minimal over a pre-compiled snapshot: Q_D construction,
// both greatest-fixpoint evaluations, and the bisimulation position lookups
// all read the snapshot's shared positions and label table.
func MinimalSnap(snap *compile.Snapshot, opts Options) (*Result, error) {
	return MinimalSnapWarm(snap, opts, nil)
}

// Warm carries a parent extraction's Stage 1 state for reuse against a
// snapshot derived from it by compile.Apply. It is only sound when the apply
// reported Shared and PosStable: dense complex positions must be stable so
// that the parent's positional Q_D types and extents line up with the
// child's (core.Prepared enforces this before handing a Warm down).
type Warm struct {
	// Parent is the parent extraction's full Stage 1 result, computed with
	// the same Stage 1 options. Its retained Q_D supplies per-object rules
	// for untouched positions, its classes and names seed the grouping and
	// naming passes, and its extents warm both fixpoint evaluations.
	Parent *Result
	// Touched lists the delta-touched objects (compile.ApplyInfo.Touched):
	// every object whose local picture — edges, or an atomic's sort/value —
	// may differ from the parent's. Warm reuse of per-object state is only
	// sound when this list is complete.
	Touched []graph.ObjectID
	// MaxAffectedFrac overrides typing.DefaultMaxAffectedFrac when positive.
	MaxAffectedFrac float64
}

// MinimalSnapWarm is MinimalSnap with an optional warm start (nil warm is
// exactly MinimalSnap). Against a parent extraction's retained state, every
// pass reuses what the delta provably left alone: Q_D construction reuses
// the parent's per-object rules for untouched positions, the Q_D and P_D
// fixpoints are maintained incrementally via typing.EvalGFPSnapIncr, the
// bipartite grouping inherits parent class identities for unchanged rules,
// and class names are reused while the class prefix is undisturbed. The
// bisimulation and naive-GFP routes ignore warm (they are the reference
// paths and run no reusable fixpoint). Results are bit-identical with and
// without warm, at any Parallelism.
func MinimalSnapWarm(snap *compile.Snapshot, opts Options, warm *Warm) (*Result, error) {
	db := snap.DB()
	workers := par.Workers(opts.Parallelism)
	check := opts.Check
	warmOK := warm != nil && warm.Parent != nil && warm.Parent.QD != nil &&
		!opts.UseNaiveGFP && !opts.UseBisimulation
	var qd *typing.Program
	var objs []graph.ObjectID
	var qdChanged []int // positions whose rules differ from the parent's (warm only)
	var err error
	if warmOK {
		qd, objs, qdChanged, err = buildQDWarm(snap, opts.pictureOpts(), warm, check)
	} else {
		qd, objs, err = BuildQDSnapCheck(snap, opts.pictureOpts(), workers, check)
	}
	if err != nil {
		return nil, err
	}

	// Bipartite fast path (§5.2's special case): with every link targeting
	// an atomic object the program is non-recursive, the greatest fixpoint
	// needs no iteration, and two objects share a class exactly when their
	// label sets (with any sort/value refinements) coincide. Group by
	// canonical rule instead of running the fixpoint machinery.
	var classOf []int
	var classes [][]int
	grouped := false
	if opts.UseBisimulation {
		if opts.UseSorts || len(opts.ValueLabels) > 0 {
			return nil, fmt.Errorf("perfect: bisimulation Stage 1 does not support sort or value refinements")
		}
		part, err := bisim.ComputeCheck(db, check)
		if err != nil {
			return nil, err
		}
		classOf = make([]int, len(objs))
		classes = make([][]int, part.NumBlocks())
		for b, block := range part.Blocks {
			for _, o := range block {
				classes[b] = append(classes[b], int(snap.Pos[o]))
				classOf[snap.Pos[o]] = b
			}
		}
		grouped = true
	}
	if !grouped && !opts.UseNaiveGFP { // the naive flag doubles as "reference path" for tests
		if warmOK && warm.Parent.QDExtent == nil {
			// The parent grouped on the bipartite fast path (it retained no
			// fixpoint); inherit its class identities for unchanged rules.
			classOf, classes, grouped = bipartiteClassesWarm(qd, snap, warm.Parent, qdChanged)
		}
		if !grouped {
			classOf, classes, grouped = bipartiteClasses(qd)
		}
		if grouped {
		}
	}
	var qdExtent *typing.Extent // retained for Result.QDExtent on the GFP route
	warmUsed := false
	if !grouped {
		var extent *typing.Extent
		if opts.UseNaiveGFP {
			extent = typing.EvalGFPNaive(qd, db)
		} else if warmOK && warm.Parent.QDExtent != nil {
			// buildQDWarm already diffed every rebuilt rule against the
			// parent's Q_D, so qdChanged is the changed-type set; touched
			// objects supply the affected columns.
			var err error
			extent, warmUsed, err = typing.EvalGFPSnapIncr(qd, snap, warm.Parent.QDExtent, qdChanged, warm.Touched, typing.IncrOptions{
				Workers:         workers,
				Check:           check,
				MaxAffectedFrac: warm.MaxAffectedFrac,
			})
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			extent, err = typing.EvalGFPSnapCheck(qd, snap, workers, check)
			if err != nil {
				return nil, err
			}
		}
		if !opts.UseNaiveGFP {
			qdExtent = extent
		}

		// Group types with equal extents. Types are in bijection with
		// complex objects, so hashing the membership bitsets groups them in
		// near-linear time; hash collisions are resolved by exact
		// comparison.
		classOf = make([]int, len(objs)) // type position -> class index
		byHash := make(map[uint64][]int) // hash -> class indexes
		for ti := range qd.Types {
			if check != nil && ti%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, err
				}
			}
			h := extent.Member[ti].Hash()
			found := -1
			for _, ci := range byHash[h] {
				rep := classes[ci][0]
				if extent.Member[ti].Equal(extent.Member[rep]) {
					found = ci
					break
				}
			}
			if found < 0 {
				found = len(classes)
				classes = append(classes, nil)
				byHash[h] = append(byHash[h], found)
			}
			classes[found] = append(classes[found], ti)
			classOf[ti] = found
		}
	}

	// Build P_D: for each class pick a representative type and rewrite its
	// link targets through the class map. Mapped links may collide; the
	// canonical form dedupes them.
	pd := typing.NewProgram()
	result := &Result{
		Home:    make(map[graph.ObjectID]int, len(objs)),
		Classes: make([][]graph.ObjectID, len(classes)),
		db:      db,
	}
	for ci, members := range classes {
		rep := qd.Types[members[0]]
		t := &typing.Type{Weight: len(members)}
		for _, l := range rep.Links {
			nl := l
			if l.Target != typing.AtomicTarget {
				nl.Target = classOf[l.Target]
			}
			t.Links = append(t.Links, nl)
		}
		pd.Add(t)
		mem := make([]graph.ObjectID, len(members))
		for k, ti := range members {
			mem[k] = objs[ti]
			result.Home[objs[ti]] = ci
		}
		sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
		result.Classes[ci] = mem
	}
	nameFor := opts.NameFor
	if nameFor == nil {
		nameFor = DefaultClassName
	}
	used := map[string]bool{"0": true} // "0" is reserved for the atomic type
	firstCold := 0
	if warmOK && opts.NameFor == nil {
		// Reuse parent class names while the class prefix is undisturbed: a
		// class whose member list is identical to the parent's and contains
		// no touched object gets the same DefaultClassName (it reads only the
		// members' incoming edges, and an in-edge change touches its
		// endpoint), and the dedup state accumulated over an identical prefix
		// is identical, so the names match the cold run by induction. The
		// first class that fails the test ends the prefix; everything after
		// it is named cold against the accumulated dedup state.
		touchedSet := make(map[graph.ObjectID]bool, len(warm.Touched))
		for _, o := range warm.Touched {
			touchedSet[o] = true
		}
		parent := warm.Parent
		for ci := range classes {
			if ci >= len(parent.Classes) || len(result.Classes[ci]) != len(parent.Classes[ci]) {
				break
			}
			same := true
			for k, o := range result.Classes[ci] {
				if o != parent.Classes[ci][k] || touchedSet[o] {
					same = false
					break
				}
			}
			if !same {
				break
			}
			name := parent.Program.Types[ci].Name
			used[name] = true
			pd.Types[ci].Name = name
			firstCold = ci + 1
		}
	}
	for ci := firstCold; ci < len(classes); ci++ {
		name := nameFor(db, result.Classes[ci], ci)
		if name == "" || name == "0" {
			name = fmt.Sprintf("class%d", ci)
		}
		base := name
		for n := 2; used[name]; n++ {
			name = fmt.Sprintf("%s%d", base, n)
		}
		used[name] = true
		pd.Types[ci].Name = name
	}
	if err := pd.Validate(); err != nil {
		return nil, fmt.Errorf("perfect: internal error building P_D: %v", err)
	}
	result.Program = pd
	if opts.UseNaiveGFP {
		result.Extent = typing.EvalGFPNaive(pd, db)
	} else if warmOK && warm.Parent.Extent != nil {
		// Warm the P_D fixpoint from the parent's. The changed-type set is a
		// full positional diff against the parent's P_D rules, so it is sound
		// regardless of how classes were renumbered — a renumbering just
		// shows up as many changed rules and trips the budget fallback. A
		// type's extent depends only on its rule and the database, never on
		// class membership, so positionally identical rules keep their rows.
		parentPD := warm.Parent.Program
		var changedPD []int
		for ci, t := range pd.Types {
			if ci >= len(parentPD.Types) || !rulesEqual(t.Links, parentPD.Types[ci].Links) {
				changedPD = append(changedPD, ci)
			}
		}
		ext, pdWarm, err := typing.EvalGFPSnapIncr(pd, snap, warm.Parent.Extent, changedPD, warm.Touched, typing.IncrOptions{
			Workers:         workers,
			Check:           check,
			MaxAffectedFrac: warm.MaxAffectedFrac,
		})
		if err != nil {
			return nil, err
		}
		result.Extent = ext
		warmUsed = warmUsed || pdWarm
	} else {
		ext, err := typing.EvalGFPSnapCheck(pd, snap, workers, check)
		if err != nil {
			return nil, err
		}
		result.Extent = ext
	}
	result.QD = qd
	result.QDExtent = qdExtent
	result.WarmUsed = warmUsed
	return result, nil
}

// rulesEqual reports whether two canonical link lists are identical.
func rulesEqual(a, b []typing.TypedLink) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bipartiteClasses groups Q_D types by their canonical link sets when every
// link targets an atomic object. It reports grouped=false for general
// graphs (the GFP route is then required).
func bipartiteClasses(qd *typing.Program) (classOf []int, classes [][]int, grouped bool) {
	for _, t := range qd.Types {
		for _, l := range t.Links {
			if l.Target != typing.AtomicTarget {
				return nil, nil, false
			}
		}
	}
	classOf = make([]int, len(qd.Types))
	byKey := make(map[string]int)
	for ti, t := range qd.Types {
		key := ruleKey(t.Links)
		ci, ok := byKey[key]
		if !ok {
			ci = len(classes)
			byKey[key] = ci
			classes = append(classes, nil)
		}
		classes[ci] = append(classes[ci], ti)
		classOf[ti] = ci
	}
	return classOf, classes, true
}

// ruleKey is the canonical grouping key of a bipartite (all-atomic-target)
// rule: the label sequence with any sort/value refinements. Canonical link
// order makes it a faithful identity for rule equality on this route.
func ruleKey(links []typing.TypedLink) string {
	var sb strings.Builder
	for _, l := range links {
		sb.WriteString(l.Label)
		sb.WriteByte(0)
		sb.WriteByte(byte(l.Sort))
		if l.HasValue {
			sb.WriteByte(1)
			sb.WriteString(l.Value)
		}
		sb.WriteByte(2)
	}
	return sb.String()
}

// bipartiteClassesWarm reproduces bipartiteClasses for a child Q_D whose
// unchanged positions reuse a bipartite parent's grouping. Unchanged rules
// were atomic-only in the parent, so only the changed positions need the
// bipartiteness check; each unchanged position inherits its parent class
// identity through parent.Home, and each changed position groups by its
// canonical rule key, matched against the parent class keys so it can join
// an existing identity. Distinct parent classes have distinct keys (the
// parent grouped by exactly this key), so identities correspond one-to-one
// with keys and numbering classes by first occurrence in position order
// reproduces the cold numbering bit for bit. grouped=false falls back to
// the cold path (a changed rule has a complex target, or the parent state
// does not line up).
func bipartiteClassesWarm(qd *typing.Program, snap *compile.Snapshot, parent *Result, changed []int) (classOf []int, classes [][]int, grouped bool) {
	isChanged := make(map[int]bool, len(changed))
	for _, ti := range changed {
		isChanged[ti] = true
		for _, l := range qd.Types[ti].Links {
			if l.Target != typing.AtomicTarget {
				return nil, nil, false
			}
		}
	}
	// On the bipartite route P_D rules are the representative Q_D rules
	// unmodified (no complex targets to renumber), so they key the classes.
	parentKey := make(map[string]int, len(parent.Classes))
	for pc := range parent.Classes {
		parentKey[ruleKey(parent.Program.Types[pc].Links)] = pc
	}
	classOf = make([]int, len(qd.Types))
	fromParent := make([]int, len(parent.Classes))
	for i := range fromParent {
		fromParent[i] = -1
	}
	fromKey := make(map[string]int)
	objs := snap.Complex
	for ti := range qd.Types {
		pc := -1
		var key string
		if !isChanged[ti] {
			var ok bool
			pc, ok = parent.Home[objs[ti]]
			if !ok {
				return nil, nil, false // position not in the parent: state mismatch
			}
		} else {
			key = ruleKey(qd.Types[ti].Links)
			if p, ok := parentKey[key]; ok {
				pc = p
			}
		}
		var ci int
		if pc >= 0 {
			if fromParent[pc] < 0 {
				fromParent[pc] = len(classes)
				classes = append(classes, nil)
			}
			ci = fromParent[pc]
		} else {
			c, ok := fromKey[key]
			if !ok {
				c = len(classes)
				fromKey[key] = c
				classes = append(classes, nil)
			}
			ci = c
		}
		classes[ci] = append(classes[ci], ti)
		classOf[ti] = ci
	}
	return classOf, classes, true
}

// DefaultClassName names a class after the dominant label on incoming edges
// of its members (the label under which the objects most often appear),
// falling back to classN.
func DefaultClassName(db *graph.DB, members []graph.ObjectID, classIdx int) string {
	counts := make(map[string]int)
	for _, o := range members {
		for _, e := range db.In(o) {
			counts[e.Label]++
		}
	}
	best, bestN := "", 0
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	if best == "" {
		return fmt.Sprintf("class%d", classIdx)
	}
	return best
}

// VerifyRemark41 checks Remark 4.1 on a computed Q_D extent: typeᵢ and
// typeⱼ have equal extents iff oⱼ ∈ M(typeᵢ) and oᵢ ∈ M(typeⱼ). It returns
// an error naming the first violating pair (used by tests; the property is
// a theorem, so a violation indicates an evaluator bug).
func VerifyRemark41(extent *typing.Extent, objs []graph.ObjectID) error {
	n := len(objs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mutual := extent.Member[i].Test(int(objs[j])) && extent.Member[j].Test(int(objs[i]))
			equal := extent.Member[i].Equal(extent.Member[j])
			if mutual != equal {
				return fmt.Errorf("perfect: Remark 4.1 violated for types %d, %d (mutual=%v equal=%v)", i, j, mutual, equal)
			}
		}
	}
	return nil
}
