package perfect

import (
	"math/rand"
	"testing"

	"schemex/internal/defect"
	"schemex/internal/graph"
	"schemex/internal/synth"
	"schemex/internal/typing"
)

// figure4DB builds the simple database of Figure 4 / Example 4.2:
// o1 -a-> o2, o3, o4; o2 -b-> o5; o3 -b-> o6; o4 -b-> o7 and -c-> o7'.
func figure4DB() *graph.DB {
	db := graph.New()
	db.Link("o1", "o2", "a")
	db.Link("o1", "o3", "a")
	db.Link("o1", "o4", "a")
	db.Atom("o5", "v5")
	db.Atom("o6", "v6")
	db.Atom("o7", "v7")
	db.Atom("o7c", "v7c")
	db.Link("o2", "o5", "b")
	db.Link("o3", "o6", "b")
	db.Link("o4", "o7", "b")
	db.Link("o4", "o7c", "c")
	return db
}

func TestBuildQD(t *testing.T) {
	db := figure4DB()
	qd, objs := BuildQD(db)
	if len(qd.Types) != 4 || len(objs) != 4 {
		t.Fatalf("Q_D has %d types over %d objects, want 4", len(qd.Types), len(objs))
	}
	// Example 4.2's program: type1 = ->a[2] & ->a[3] & ->a[4]; type2/3 =
	// <-a[1] & ->b[0]; type4 = <-a[1] & ->b[0] & ->c[0].
	find := func(name string) *typing.Type {
		i := qd.IndexOf(name)
		if i < 0 {
			t.Fatalf("no Q_D type for %s", name)
		}
		return qd.Types[i]
	}
	if got := len(find("o1").Links); got != 3 {
		t.Errorf("type(o1) has %d links, want 3", got)
	}
	t2, t3 := find("o2"), find("o3")
	if len(t2.Links) != 2 || len(t3.Links) != 2 {
		t.Errorf("type(o2)/type(o3) link counts = %d/%d, want 2/2", len(t2.Links), len(t3.Links))
	}
	if got := len(find("o4").Links); got != 3 {
		t.Errorf("type(o4) has %d links, want 3", got)
	}
}

// TestExample42 checks the worked example: the minimal perfect typing has
// three classes {o1}, {o2, o3}, {o4}, with the program of Example 4.2.
func TestExample42(t *testing.T) {
	db := figure4DB()
	res, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Program.Len(); got != 3 {
		t.Fatalf("P_D has %d types, want 3\n%s", got, res.Program)
	}
	classOf := func(name string) int { return res.Home[db.Lookup(name)] }
	if classOf("o2") != classOf("o3") {
		t.Error("o2 and o3 should share a home type")
	}
	if classOf("o1") == classOf("o2") || classOf("o4") == classOf("o2") || classOf("o1") == classOf("o4") {
		t.Error("o1, {o2,o3}, o4 should be three distinct classes")
	}
	// The class of o1 must have two a-links after target mapping (to the
	// {o2,o3} class and to the {o4} class).
	t1 := res.Program.Types[classOf("o1")]
	if len(t1.Links) != 2 {
		t.Errorf("class(o1) has links %v, want 2 after dedup", t1.Links)
	}
	// Weights are home-class sizes.
	if res.Program.Types[classOf("o2")].Weight != 2 {
		t.Errorf("weight of {o2,o3} = %d, want 2", res.Program.Types[classOf("o2")].Weight)
	}
	// Per §4.2: the extent of the {o2,o3} class also contains o4 (no
	// negation, o4 has a superset of the links).
	if !res.Extent.Has(classOf("o2"), db.Lookup("o4")) {
		t.Error("extent of {o2,o3} class should contain o4 (overlap)")
	}
}

func TestRemark41(t *testing.T) {
	db := figure4DB()
	qd, objs := BuildQD(db)
	ext := typing.EvalGFP(qd, db)
	if err := VerifyRemark41(ext, objs); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalNaiveAgrees(t *testing.T) {
	db := figure4DB()
	a, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimal(db, Options{UseNaiveGFP: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Program.String() != b.Program.String() {
		t.Fatalf("naive and support-count Stage 1 differ:\n%s\nvs\n%s", a.Program, b.Program)
	}
}

// TestPerfectTypingHasZeroDefect is the defining property of Stage 1: the
// minimal perfect typing classifies the data with no excess and no deficit.
// It is checked on random shape-quotient instances.
func TestPerfectTypingHasZeroDefect(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		spec := randomShapeSpec(rand.New(rand.NewSource(seed)))
		db, _, err := spec.GenerateShapes()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Minimal(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Excess against the fixpoint extent.
		if x := defect.Excess(res.Program, db, res.Extent.Member); x != 0 {
			t.Errorf("seed %d: perfect typing has excess %d, want 0", seed, x)
		}
		// Deficit of the home assignment.
		a := typing.NewAssignment(res.Program, db)
		for o, h := range res.Home {
			a.Assign(o, h)
		}
		if d := defect.Deficit(a); d != 0 {
			t.Errorf("seed %d: perfect typing has deficit %d, want 0", seed, d)
		}
		// Every object is in its home type's extent.
		for o, h := range res.Home {
			if !res.Extent.Has(h, o) {
				t.Errorf("seed %d: %s not in extent of its home type", seed, db.Name(o))
			}
		}
	}
}

// TestShapeQuotientBoundsClasses: data generated from a shape quotient has
// at most one perfect type per shape.
func TestShapeQuotientBoundsClasses(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		spec := randomShapeSpec(rand.New(rand.NewSource(seed)))
		db, _, err := spec.GenerateShapes()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Minimal(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Program.Len() > len(spec.Shapes) {
			t.Errorf("seed %d: %d perfect types exceed %d shapes", seed, res.Program.Len(), len(spec.Shapes))
		}
	}
}

// randomShapeSpec builds a small random shape quotient: a few "record"
// shapes with random attribute subsets and a few cross links.
func randomShapeSpec(rng *rand.Rand) *synth.ShapeSpec {
	attrs := []string{"name", "addr", "phone", "mail"}
	spec := &synth.ShapeSpec{Name: "rand", Seed: rng.Int63()}
	nShapes := 3 + rng.Intn(4)
	for i := 0; i < nShapes; i++ {
		sh := synth.Shape{
			Name:  "s" + string(rune('0'+i)),
			Role:  "r" + string(rune('0'+i%2)),
			Count: 2 + rng.Intn(3),
		}
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				sh.Atoms = append(sh.Atoms, a)
			}
		}
		if i > 0 && rng.Intn(2) == 0 {
			sh.Links = append(sh.Links, synth.ShapeLink{
				Label:  "ref",
				Target: "s" + string(rune('0'+rng.Intn(i))),
			})
		}
		spec.Shapes = append(spec.Shapes, sh)
	}
	return spec
}

func TestFigure2Classes(t *testing.T) {
	db := graph.New()
	db.Link("g", "m", "is-manager-of")
	db.Link("j", "a", "is-manager-of")
	db.Link("m", "g", "is-managed-by")
	db.Link("a", "j", "is-managed-by")
	db.LinkAtom("g", "name", "gn", "Gates")
	db.LinkAtom("j", "name", "jn", "Jobs")
	db.LinkAtom("m", "name", "mn", "Microsoft")
	db.LinkAtom("a", "name", "an", "Apple")
	res, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 2 {
		t.Fatalf("Figure 2 data should yield 2 classes (person, firm), got %d:\n%s",
			res.Program.Len(), res.Program)
	}
	if res.Home[db.Lookup("g")] != res.Home[db.Lookup("j")] {
		t.Error("g and j should share a class")
	}
	if res.Home[db.Lookup("m")] != res.Home[db.Lookup("a")] {
		t.Error("m and a should share a class")
	}
	if res.Home[db.Lookup("g")] == res.Home[db.Lookup("m")] {
		t.Error("persons and firms should be distinct classes")
	}
}

func TestDefaultClassName(t *testing.T) {
	db := graph.New()
	db.Link("root", "p1", "person")
	db.Link("root", "p2", "person")
	name := DefaultClassName(db, []graph.ObjectID{db.Lookup("p1"), db.Lookup("p2")}, 0)
	if name != "person" {
		t.Fatalf("DefaultClassName = %q, want person", name)
	}
	// No incoming edges: falls back to classN.
	if got := DefaultClassName(db, []graph.ObjectID{db.Lookup("root")}, 7); got != "class7" {
		t.Fatalf("fallback name = %q, want class7", got)
	}
}

func TestNameCollisionsDisambiguated(t *testing.T) {
	// Two classes whose members share the dominant incoming label must not
	// produce duplicate type names.
	db := graph.New()
	db.Link("root", "x1", "item")
	db.Link("root", "x2", "item")
	db.LinkAtom("x2", "extra", "e1", "v")
	res, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("program with colliding names invalid: %v", err)
	}
}

func TestRelationalDataOneTypePerRelation(t *testing.T) {
	// §2's first justification: relational data represented with link and
	// atomic yields one type per relation (assuming distinct attribute
	// sets).
	db := graph.New()
	for i := 0; i < 5; i++ {
		row := "emp" + string(rune('0'+i))
		db.LinkAtom(row, "ename", row+".n", "name")
		db.LinkAtom(row, "salary", row+".s", "100")
	}
	for i := 0; i < 4; i++ {
		row := "dept" + string(rune('0'+i))
		db.LinkAtom(row, "dname", row+".n", "name")
		db.LinkAtom(row, "budget", row+".b", "1000")
	}
	res, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 2 {
		t.Fatalf("relational data should give one type per relation (2), got %d", res.Program.Len())
	}
}
