package perfect

import (
	"strings"
	"testing"

	"schemex/internal/graph"
)

// TestValueLabelsSplitClasses exercises the value-predicate extension end to
// end through Stage 1: persons identical except for their sex value split
// into two classes when "sex" is a value label.
func TestValueLabelsSplitClasses(t *testing.T) {
	db := graph.New()
	add := func(name, sex string) {
		db.LinkAtom(name, "name", name+".n", "x")
		db.Atom(name+".s", sex)
		db.Link(name, name+".s", "sex")
	}
	add("a", "Male")
	add("b", "Male")
	add("c", "Female")

	plain, err := Minimal(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Program.Len() != 1 {
		t.Fatalf("without value labels: %d classes, want 1", plain.Program.Len())
	}

	valued, err := Minimal(db, Options{ValueLabels: []string{"sex"}})
	if err != nil {
		t.Fatal(err)
	}
	if valued.Program.Len() != 2 {
		t.Fatalf("with value labels: %d classes, want 2\n%s", valued.Program.Len(), valued.Program)
	}
	if valued.Home[db.Lookup("a")] != valued.Home[db.Lookup("b")] {
		t.Error("same-sex objects split")
	}
	if valued.Home[db.Lookup("a")] == valued.Home[db.Lookup("c")] {
		t.Error("different-sex objects merged")
	}
	s := valued.Program.String()
	if !strings.Contains(s, `->sex[0="Male"]`) || !strings.Contains(s, `->sex[0="Female"]`) {
		t.Fatalf("program missing value predicates:\n%s", s)
	}
}

func TestValueLabelsWithSorts(t *testing.T) {
	db := graph.New()
	for _, r := range []string{"r1", "r2"} {
		id := db.Intern(r + ".v")
		if err := db.SetAtomic(id, graph.Value{Sort: graph.SortInt, Text: "42"}); err != nil {
			t.Fatal(err)
		}
		db.Link(r, r+".v", "grade")
	}
	res, err := Minimal(db, Options{UseSorts: true, ValueLabels: []string{"grade"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Len() != 1 {
		t.Fatalf("classes = %d, want 1", res.Program.Len())
	}
	s := res.Program.String()
	if !strings.Contains(s, `->grade[0:int="42"]`) {
		t.Fatalf("combined sort+value rendering missing:\n%s", s)
	}
}
