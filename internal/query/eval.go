package query

import (
	"sort"

	"schemex/internal/graph"
)

// Match reports whether object o has at least one outgoing path matching p.
// The path may end at a complex or atomic object.
func Match(db *graph.DB, o graph.ObjectID, p Path) bool {
	type state struct {
		o   graph.ObjectID
		pos int
	}
	seen := make(map[state]bool)
	var dfs func(o graph.ObjectID, pos int) bool
	dfs = func(o graph.ObjectID, pos int) bool {
		if pos == len(p) {
			return true
		}
		st := state{o, pos}
		if seen[st] {
			return false
		}
		seen[st] = true
		step := p[pos]
		if step.Closure {
			// Zero-length match.
			if dfs(o, pos+1) {
				return true
			}
			for _, e := range db.Out(o) {
				if dfs(e.To, pos) {
					return true
				}
			}
			return false
		}
		for _, e := range db.Out(o) {
			if step.Label != "" && e.Label != step.Label {
				continue
			}
			if dfs(e.To, pos+1) {
				return true
			}
		}
		return false
	}
	return dfs(o, 0)
}

// Find returns every complex object with an outgoing path matching p, in ID
// order — the naive evaluator: each object is tested against the data.
func Find(db *graph.DB, p Path) []graph.ObjectID {
	var out []graph.ObjectID
	for _, o := range db.ComplexObjects() {
		if Match(db, o, p) {
			out = append(out, o)
		}
	}
	return out
}

// Targets returns the set of objects reachable from the start set along p
// (frontier semantics; useful for select-style queries). Results are in ID
// order.
func Targets(db *graph.DB, start []graph.ObjectID, p Path) []graph.ObjectID {
	frontier := make(map[graph.ObjectID]bool, len(start))
	for _, o := range start {
		frontier[o] = true
	}
	for _, step := range p {
		next := make(map[graph.ObjectID]bool)
		if step.Closure {
			// Closure: reachability over all labels, including zero steps.
			var stack []graph.ObjectID
			for o := range frontier {
				next[o] = true
				stack = append(stack, o)
			}
			for len(stack) > 0 {
				o := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, e := range db.Out(o) {
					if !next[e.To] {
						next[e.To] = true
						stack = append(stack, e.To)
					}
				}
			}
		} else {
			for o := range frontier {
				for _, e := range db.Out(o) {
					if step.Label == "" || e.Label == step.Label {
						next[e.To] = true
					}
				}
			}
		}
		frontier = next
	}
	out := make([]graph.ObjectID, 0, len(frontier))
	for o := range frontier {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Values returns the values of the atomic objects reachable along p from
// the start set, sorted.
func Values(db *graph.DB, start []graph.ObjectID, p Path) []string {
	var out []string
	for _, o := range Targets(db, start, p) {
		if v, ok := db.AtomicValue(o); ok {
			out = append(out, v.Text)
		}
	}
	sort.Strings(out)
	return out
}
