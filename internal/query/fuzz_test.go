package query

import "testing"

// FuzzParsePath checks the path parser never panics and accepted paths
// round-trip through the printer.
func FuzzParsePath(f *testing.F) {
	for _, s := range []string{
		"a.b.c", "a.*.c", "#.x", `"dotted.label".x`, "#", "*",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePath(src)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := ParsePath(rendered)
		if err != nil {
			t.Fatalf("canonical path does not re-parse: %v (%q)", err, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("print/parse not stable: %q vs %q", rendered, p2.String())
		}
	})
}
