package query

import (
	"sort"

	"schemex/internal/bitset"
	"schemex/internal/graph"
	"schemex/internal/typing"
)

// Guide answers path queries with the help of an extracted typing: the
// query is first solved over the schema (which types can realize the path
// at all), and only objects assigned to those types are fetched and
// verified against the data. This is the paper's §1 motivation made
// concrete — the typing plays the role of an index/DataGuide for query
// processing.
//
// Guarantees: guided results are always a subset of the naive evaluator's
// (every candidate is verified on the data). They are equal whenever every
// link fact is justified by the typing — in particular for the minimal
// perfect typing, whose excess is zero. Under an approximate typing,
// matches that rely on excess edges (edges the schema does not describe)
// can be missed; that information loss is exactly what the paper's defect
// measures.
type Guide struct {
	db     *graph.DB
	prog   *typing.Program
	member []*bitset.Set
	// outLinks[t] are the outgoing typed links of type t.
	outLinks [][]typing.TypedLink
}

// NewGuide builds a guide from a typing program and a membership (an
// Extent's Member or an Assignment's Membership over the same program).
func NewGuide(db *graph.DB, prog *typing.Program, member []*bitset.Set) *Guide {
	g := &Guide{db: db, prog: prog, member: member}
	g.outLinks = make([][]typing.TypedLink, len(prog.Types))
	for ti, t := range prog.Types {
		for _, l := range t.Links {
			if l.Dir == typing.Out {
				g.outLinks[ti] = append(g.outLinks[ti], l)
			}
		}
	}
	return g
}

// realizability computes, for every type and path position, whether the
// schema admits a matching suffix starting at an object of that type.
// atomic[pos] covers paths continuing from an atomic object (only closure
// steps can be satisfied there, by matching the empty sequence).
func (g *Guide) realizability(p Path) (types [][]bool, atomic []bool) {
	n := len(g.prog.Types)
	types = make([][]bool, len(p)+1)
	atomic = make([]bool, len(p)+1)
	for pos := range types {
		types[pos] = make([]bool, n)
	}
	// Base: the empty suffix is realizable everywhere.
	for t := 0; t < n; t++ {
		types[len(p)][t] = true
	}
	atomic[len(p)] = true

	for pos := len(p) - 1; pos >= 0; pos-- {
		step := p[pos]
		if step.Closure {
			// atomic: closure can match the empty sequence.
			atomic[pos] = atomic[pos+1]
			// Seed with the zero-length interpretation, then propagate the
			// "take one edge, stay at this position" closure to a fixpoint.
			for t := 0; t < n; t++ {
				types[pos][t] = types[pos+1][t]
			}
			for changed := true; changed; {
				changed = false
				for t := 0; t < n; t++ {
					if types[pos][t] {
						continue
					}
					for _, l := range g.outLinks[t] {
						ok := false
						if l.Target == typing.AtomicTarget {
							ok = atomic[pos]
						} else {
							ok = types[pos][l.Target]
						}
						if ok {
							types[pos][t] = true
							changed = true
							break
						}
					}
				}
			}
			continue
		}
		// A labeled (or '*') step never matches from an atomic object:
		// atomic objects have no outgoing edges.
		atomic[pos] = false
		for t := 0; t < n; t++ {
			for _, l := range g.outLinks[t] {
				if step.Label != "" && l.Label != step.Label {
					continue
				}
				ok := false
				if l.Target == typing.AtomicTarget {
					ok = atomic[pos+1]
				} else {
					ok = types[pos+1][l.Target]
				}
				if ok {
					types[pos][t] = true
					break
				}
			}
		}
	}
	return types, atomic
}

// CandidateTypes returns the types whose definitions can realize the path.
func (g *Guide) CandidateTypes(p Path) []int {
	types, _ := g.realizability(p)
	var out []int
	for t, ok := range types[0] {
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// Find returns the complex objects with a matching outgoing path, searching
// only objects whose assigned types can realize the path and verifying each
// candidate against the data.
func (g *Guide) Find(p Path) []graph.ObjectID {
	candidates := bitset.New(g.db.NumObjects())
	types, _ := g.realizability(p)
	for t, ok := range types[0] {
		if !ok {
			continue
		}
		g.member[t].ForEach(func(o int) { candidates.Set(o) })
	}
	var out []graph.ObjectID
	candidates.ForEach(func(oi int) {
		o := graph.ObjectID(oi)
		if Match(g.db, o, p) {
			out = append(out, o)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindTrusted is Find without the per-object verification step. It is exact
// when member is a greatest-fixpoint extent of the program: every member of
// a type then witnesses every typed link of its definition (recursively),
// so schema realizability alone proves the data match. For arbitrary
// assignments — e.g. a Stage 3 recast, whose objects may satisfy their
// types only approximately — use Find, which verifies candidates.
func (g *Guide) FindTrusted(p Path) []graph.ObjectID {
	candidates := bitset.New(g.db.NumObjects())
	types, _ := g.realizability(p)
	for t, ok := range types[0] {
		if !ok {
			continue
		}
		g.member[t].ForEach(func(o int) { candidates.Set(o) })
	}
	out := make([]graph.ObjectID, 0, candidates.Count())
	candidates.ForEach(func(oi int) { out = append(out, graph.ObjectID(oi)) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CandidateCount reports how many objects the guided search would inspect —
// the work saved versus scanning every complex object.
func (g *Guide) CandidateCount(p Path) int {
	candidates := bitset.New(g.db.NumObjects())
	types, _ := g.realizability(p)
	for t, ok := range types[0] {
		if !ok {
			continue
		}
		g.member[t].ForEach(func(o int) { candidates.Set(o) })
	}
	return candidates.Count()
}
