// Package query implements a small Lorel-style path-query engine over the
// semistructured graph, in two flavours: a naive evaluator that walks the
// data, and a schema-guided evaluator that first solves the query over the
// extracted typing program and only then touches the data. The package is
// the executable form of the paper's motivation (§1): "performance is
// greatly improved by taking advantage of the existing structure, e.g., via
// indexes" — the typing acts as the index.
package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Step is one component of a path expression.
type Step struct {
	// Label is the edge label to follow. Empty means any single edge (the
	// '*' wildcard) when Closure is false.
	Label string
	// Closure marks the '#' wildcard: any path of length >= 0.
	Closure bool
}

func (s Step) String() string {
	if s.Closure {
		return "#"
	}
	if s.Label == "" {
		return "*"
	}
	if s.Label == "#" || s.Label == "*" || strings.ContainsAny(s.Label, `."`) ||
		strings.IndexFunc(s.Label, func(r rune) bool { return unicode.IsSpace(r) || unicode.IsControl(r) }) >= 0 {
		return fmt.Sprintf("%q", s.Label)
	}
	return s.Label
}

// Path is a sequence of steps, matched along outgoing edges.
type Path []Step

func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, ".")
}

// ParsePath parses a dotted path expression:
//
//	member.publication.conference
//	member.*.year
//	#.postscript
//
// Components are edge labels; '*' matches any single edge; '#' matches any
// (possibly empty) sequence of edges. Labels containing dots or spaces can
// be double-quoted.
func ParsePath(src string) (Path, error) {
	var path Path
	i := 0
	n := len(src)
	for i < n {
		for i < n && (src[i] == ' ' || src[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		var comp string
		if src[i] == '"' {
			j := i + 1
			for j < n {
				if src[j] == '\\' {
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("query: unterminated quote in path %q", src)
			}
			unq, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("query: bad quoted component in path %q: %v", src, err)
			}
			comp = unq
			i = j + 1
			path = append(path, Step{Label: comp})
		} else {
			j := i
			for j < n && src[j] != '.' {
				j++
			}
			comp = strings.TrimSpace(src[i:j])
			i = j
			switch comp {
			case "":
				return nil, fmt.Errorf("query: empty path component in %q", src)
			case "*":
				path = append(path, Step{})
			case "#":
				path = append(path, Step{Closure: true})
			default:
				path = append(path, Step{Label: comp})
			}
		}
		// Skip the separating dot.
		for i < n && (src[i] == ' ' || src[i] == '\t') {
			i++
		}
		if i < n {
			if src[i] != '.' {
				return nil, fmt.Errorf("query: expected '.' at %q", src[i:])
			}
			i++
		}
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("query: empty path")
	}
	return path, nil
}

// MustParsePath is ParsePath but panics on error.
func MustParsePath(src string) Path {
	p, err := ParsePath(src)
	if err != nil {
		panic(err)
	}
	return p
}
