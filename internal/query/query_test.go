package query

import (
	"math/rand"
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/synth"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a.b.c", "a.b.c"},
		{"a.*.c", "a.*.c"},
		{"#.c", "#.c"},
		{`"dotted.label".x`, `"dotted.label".x`},
		{" a . b ", "a.b"},
	}
	for _, c := range cases {
		p, err := ParsePath(c.src)
		if err != nil {
			t.Errorf("ParsePath(%q): %v", c.src, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParsePath(%q) = %q, want %q", c.src, p, c.want)
		}
	}
	for _, bad := range []string{"", "a..b", `a."unterminated`, "."} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", bad)
		}
	}
}

func queryDB() *graph.DB {
	db := graph.New()
	db.Link("group", "alice", "member")
	db.Link("group", "bob", "member")
	db.Link("alice", "p1", "publication")
	db.Link("bob", "p2", "publication")
	db.LinkAtom("p1", "conference", "p1.c", "SIGMOD")
	db.LinkAtom("p2", "title", "p2.t", "Untitled")
	db.LinkAtom("alice", "name", "alice.n", "Alice")
	db.LinkAtom("bob", "name", "bob.n", "Bob")
	return db
}

func TestMatchAndFind(t *testing.T) {
	db := queryDB()
	cases := []struct {
		path string
		want []string
	}{
		{"member.publication.conference", []string{"group"}},
		{"publication.conference", []string{"alice"}},
		{"publication.*", []string{"alice", "bob"}},
		{"#.conference", []string{"group", "alice", "p1"}}, // ID (creation) order
		{"name", []string{"alice", "bob"}},
		{"#.nothing", nil},
	}
	for _, c := range cases {
		got := Find(db, MustParsePath(c.path))
		names := make([]string, len(got))
		for i, o := range got {
			names[i] = db.Name(o)
		}
		if !equalStrings(names, c.want) {
			t.Errorf("Find(%s) = %v, want %v", c.path, names, c.want)
		}
	}
}

func TestTargetsAndValues(t *testing.T) {
	db := queryDB()
	root := []graph.ObjectID{db.Lookup("group")}
	vals := Values(db, root, MustParsePath("member.name"))
	if !equalStrings(vals, []string{"Alice", "Bob"}) {
		t.Fatalf("Values = %v", vals)
	}
	// Closure targets include the frontier itself.
	ts := Targets(db, root, MustParsePath("#"))
	if len(ts) != db.NumObjects() {
		t.Fatalf("closure from root reached %d of %d objects", len(ts), db.NumObjects())
	}
	vals = Values(db, root, MustParsePath("#.conference"))
	if !equalStrings(vals, []string{"SIGMOD"}) {
		t.Fatalf("Values(#.conference) = %v", vals)
	}
}

func TestMatchHandlesCycles(t *testing.T) {
	db := graph.New()
	db.Link("a", "b", "next")
	db.Link("b", "a", "next")
	if !Match(db, db.Lookup("a"), MustParsePath("next.next.next")) {
		t.Fatal("cycle traversal failed")
	}
	if Match(db, db.Lookup("a"), MustParsePath("#.nothing")) {
		t.Fatal("matched nonexistent label through cycle")
	}
}

// guideFor builds a Guide from the minimal perfect typing of db.
func guideFor(t *testing.T, db *graph.DB) *Guide {
	t.Helper()
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewGuide(db, res.Program, res.Extent.Member)
}

// TestGuidedEqualsNaiveOnPerfectTyping: with a zero-excess typing the
// schema-guided evaluator returns exactly the naive results.
func TestGuidedEqualsNaiveOnPerfectTyping(t *testing.T) {
	db := queryDB()
	g := guideFor(t, db)
	for _, path := range []string{
		"member.publication.conference",
		"publication.*",
		"#.conference",
		"name",
		"member.#.title",
		"#.nothing",
	} {
		p := MustParsePath(path)
		naive := Find(db, p)
		guided := g.Find(p)
		if !equalIDs(naive, guided) {
			t.Errorf("path %s: naive %v != guided %v", path, names(db, naive), names(db, guided))
		}
	}
}

// TestGuidedEqualsNaiveOnDBG is the same property on the full DBG dataset,
// and checks that guidance actually prunes the candidate set.
func TestGuidedEqualsNaiveOnDBG(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	g := guideFor(t, db)
	total := len(db.ComplexObjects())
	pruned := false
	for _, path := range []string{
		"birthday.month",
		"degree.school",
		"project.name",
		"publication.conference",
		"advisor.birthday.year",
		"#.postscript",
	} {
		p := MustParsePath(path)
		naive := Find(db, p)
		guided := g.Find(p)
		if !equalIDs(naive, guided) {
			t.Errorf("path %s: naive %d objects, guided %d", path, len(naive), len(guided))
		}
		if g.CandidateCount(p) < total {
			pruned = true
		}
	}
	if !pruned {
		t.Error("guidance never pruned any candidates on DBG")
	}
}

// TestGuidedSubsetOnApproximateTyping: under a clustered (approximate)
// typing the guided evaluator can miss excess-edge matches but never
// invents results.
func TestGuidedSubsetOnApproximateTyping(t *testing.T) {
	preset := synth.Presets()[6] // non-bipartite, overlapping
	db, err := preset.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuide(db, res.Program, res.Extent.Member)
	for _, path := range []string{"works-on.name", "advisor.name", "#.budget"} {
		p := MustParsePath(path)
		naive := toSet(Find(db, p))
		for _, o := range g.Find(p) {
			if !naive[o] {
				t.Errorf("path %s: guided invented %s", path, db.Name(o))
			}
		}
	}
}

// TestFindTrustedEqualsFindOnExtents: with GFP-extent membership the
// unverified (trusted) evaluator returns exactly the verified results —
// every member of a realizable type witnesses its definition recursively.
func TestFindTrustedEqualsFindOnExtents(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	g := guideFor(t, db)
	for _, path := range []string{
		"birthday.month", "degree.school", "#.postscript",
		"advisor.birthday.year", "project.project-member.name", "*.month",
	} {
		p := MustParsePath(path)
		verified := g.Find(p)
		trusted := g.FindTrusted(p)
		if !equalIDs(verified, trusted) {
			t.Errorf("path %s: verified %d objects, trusted %d", path, len(verified), len(trusted))
		}
		if !equalIDs(verified, Find(db, p)) {
			t.Errorf("path %s: guided differs from naive", path)
		}
	}
}

// TestGuidedRandomShapeProperty: on random shape-quotient data (perfect
// typing, zero excess) guided == naive for random paths.
func TestGuidedRandomShapeProperty(t *testing.T) {
	labels := []string{"ref", "name", "addr", "phone", "mail"}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		spec := randomShapeSpec(rng)
		db, _, err := spec.GenerateShapes()
		if err != nil {
			t.Fatal(err)
		}
		g := guideFor(t, db)
		for q := 0; q < 6; q++ {
			var p Path
			for s := 0; s < 1+rng.Intn(3); s++ {
				switch rng.Intn(4) {
				case 0:
					p = append(p, Step{Closure: true})
				case 1:
					p = append(p, Step{})
				default:
					p = append(p, Step{Label: labels[rng.Intn(len(labels))]})
				}
			}
			naive := Find(db, p)
			guided := g.Find(p)
			if !equalIDs(naive, guided) {
				t.Fatalf("trial %d path %s: naive %d != guided %d",
					trial, p, len(naive), len(guided))
			}
		}
	}
}

func randomShapeSpec(rng *rand.Rand) *synth.ShapeSpec {
	attrs := []string{"name", "addr", "phone", "mail"}
	spec := &synth.ShapeSpec{Name: "rand", Seed: rng.Int63()}
	nShapes := 3 + rng.Intn(4)
	for i := 0; i < nShapes; i++ {
		sh := synth.Shape{
			Name:  "s" + string(rune('0'+i)),
			Count: 2 + rng.Intn(3),
		}
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				sh.Atoms = append(sh.Atoms, a)
			}
		}
		if i > 0 && rng.Intn(2) == 0 {
			sh.Links = append(sh.Links, synth.ShapeLink{
				Label:  "ref",
				Target: "s" + string(rune('0'+rng.Intn(i))),
			})
		}
		spec.Shapes = append(spec.Shapes, sh)
	}
	return spec
}

func TestCandidateTypes(t *testing.T) {
	db := queryDB()
	res, err := perfect.Minimal(db, perfect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuide(db, res.Program, res.Extent.Member)
	// Only the group class can realize member.publication.conference.
	cands := g.CandidateTypes(MustParsePath("member.publication.conference"))
	if len(cands) != 1 {
		t.Fatalf("candidate types = %v, want exactly the group class", cands)
	}
	if got := res.Program.Types[cands[0]].Name; got == "" {
		t.Fatal("unnamed candidate")
	}
	// Every type realizes '#'.
	if got := len(g.CandidateTypes(MustParsePath("#"))); got != res.Program.Len() {
		t.Fatalf("closure candidates = %d, want all %d", got, res.Program.Len())
	}
}

func toSet(ids []graph.ObjectID) map[graph.ObjectID]bool {
	m := make(map[graph.ObjectID]bool, len(ids))
	for _, o := range ids {
		m[o] = true
	}
	return m
}

func equalIDs(a, b []graph.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func names(db *graph.DB, ids []graph.ObjectID) []string {
	out := make([]string, len(ids))
	for i, o := range ids {
		out[i] = db.Name(o)
	}
	return out
}
