// Package recast implements Stage 3 of the paper's method (§6): recasting
// the original data within the reduced set of types. Objects are assigned to
// every type whose predicate they satisfy completely; objects that fit no
// type exactly are assigned to the closest type under the simple Manhattan
// distance d, or left unclassified past a cutoff. The package also types new
// objects that arrive after extraction.
package recast

import (
	"math"

	"schemex/internal/bitset"
	"schemex/internal/cluster"
	"schemex/internal/compile"
	"schemex/internal/defect"
	"schemex/internal/graph"
	"schemex/internal/par"
	"schemex/internal/typing"
)

// Options configure recasting.
type Options struct {
	// KeepHome also assigns each object the cluster its Stage 1 home type
	// was merged into, even when the object does not satisfy that cluster's
	// definition (the "links suggested by their home type" alternative of
	// §6). The missing links surface as deficit.
	KeepHome bool
	// NoClosest disables the closest-type fallback: objects satisfying no
	// type exactly stay unclassified unless KeepHome covers them.
	NoClosest bool
	// MaxDistance, when >= 0, leaves an object unclassified if its closest
	// type is farther than this (the empty-type cutoff of Example 5.3).
	// Negative means no cutoff. Note that 0 is a real cutoff; use -1 for
	// "no cutoff".
	MaxDistance int
	// UseSorts makes local pictures carry atomic sort constraints, so
	// programs extracted with sorts (Remark 2.1) can be matched.
	UseSorts bool
	// ValueLabels lists labels whose atomic values appear in local
	// pictures, matching value-predicate definitions.
	ValueLabels []string
	// Check, if non-nil, is a cooperative cancellation checkpoint consulted
	// periodically while classifying objects. A non-nil return aborts the
	// recast (RecastErr returns the error; Recast returns nil). Checks never
	// alter any classification decision.
	Check func() error
	// Parallelism bounds the worker goroutines that classify objects;
	// <= 0 means one per CPU, 1 runs serially. Per-object decisions are
	// independent and are applied to the assignment in object order, so the
	// result is identical at any setting.
	Parallelism int
}

func (o Options) pictureOpts() typing.PictureOpts {
	po := typing.PictureOpts{UseSorts: o.UseSorts}
	if len(o.ValueLabels) > 0 {
		po.ValueLabels = make(map[string]bool, len(o.ValueLabels))
		for _, l := range o.ValueLabels {
			po.ValueLabels[l] = true
		}
	}
	return po
}

// DefaultOptions returns the configuration used by the paper's experiments:
// home types are kept, the closest-type fallback is on, and there is no
// distance cutoff.
func DefaultOptions() Options { return Options{KeepHome: true, MaxDistance: -1} }

// Result is a recast typing: the assignment and its defect.
type Result struct {
	Assignment *typing.Assignment
	Defect     defect.Report
	// Unclassified counts complex objects assigned no type.
	Unclassified int
}

// Recast assigns every complex object of db to types of prog.
//
// homes maps each complex object to its home types in prog (for an object
// whose Stage 1 class was merged into cluster c, that is {c}; objects
// retired to the empty type have no entry or an empty slice). Local pictures
// are computed with neighbour classes taken from homes, following the
// paper's sliding-scale procedure: Stage 1 fixed each object's class, and
// Stage 2 merged classes, so the home mapping is the available evidence
// about neighbours.
func Recast(db *graph.DB, prog *typing.Program, homes map[graph.ObjectID][]int, opts Options) *Result {
	res, _ := RecastErr(db, prog, homes, opts)
	return res
}

// checkEvery is the per-object checkpoint stride of the classification loop.
const checkEvery = 1024

// RecastErr is Recast with cancellation: when Options.Check reports an error
// mid-pass, all workers are joined and the error is returned with a nil
// result.
//
// It compiles a throwaway snapshot of db and delegates to RecastSnapErr;
// callers recasting repeatedly over one database should compile once.
func RecastErr(db *graph.DB, prog *typing.Program, homes map[graph.ObjectID][]int, opts Options) (*Result, error) {
	snap, err := compile.CompileCheck(db, par.Workers(opts.Parallelism), opts.Check)
	if err != nil {
		return nil, err
	}
	return RecastSnapErr(snap, prog, homes, opts)
}

// RecastSnapErr is RecastErr over a pre-compiled snapshot: local pictures
// are computed in CSR form through the snapshot's label table, and the
// defect measurement reuses the same snapshot.
func RecastSnapErr(snap *compile.Snapshot, prog *typing.Program, homes map[graph.ObjectID][]int, opts Options) (*Result, error) {
	res, _, err := RecastSnapWarm(snap, prog, homes, opts, nil)
	return res, err
}

// Warm carries a parent recast for dirty-object re-entry. It is sound only
// when the parent assignment was produced over an equivalent input: the same
// program (per-index identical link lists — names and weights do not feed
// classification), the same Options, and homes that agree with the current
// ones on every clean object and its neighbours. The caller establishes
// those invariants (core does, by diffing homes and closing over the delta's
// touched objects); RecastSnapWarm only consumes them.
type Warm struct {
	// Assignment is the parent extraction's final assignment, keyed by
	// ObjectID, so it remains addressable across snapshots.
	Assignment *typing.Assignment
	// Dirty marks positions in snap.Complex whose object must be
	// reclassified; clean positions copy the parent's row verbatim. An
	// object is dirty when its own edges, its homes, or a neighbour's homes
	// (either direction — local pictures read both) changed, or when it did
	// not exist in the parent.
	Dirty []bool
}

// RecastSnapWarm is RecastSnapErr with an optional warm start: only objects
// w marks dirty are classified, every other object reuses its parent row.
// The second return value counts the objects actually classified. Because a
// clean object's local picture and the type definitions are unchanged, the
// copied rows equal what classification would have produced, and the result
// is bit-identical to a cold recast at any Parallelism; the defect is always
// measured in full against the fresh assignment. A nil w classifies
// everything (exactly RecastSnapErr).
func RecastSnapWarm(snap *compile.Snapshot, prog *typing.Program, homes map[graph.ObjectID][]int, opts Options, w *Warm) (*Result, int, error) {
	db := snap.DB()
	a := typing.NewAssignment(prog, db)
	classesOf := func(x graph.ObjectID) []int { return homes[x] }
	workers := par.Workers(opts.Parallelism)

	// Intern the program's typed links to dense bit positions: every type
	// definition becomes a bitset over that universe. An object's local
	// picture splits into in-universe bits plus an out-of-universe count, so
	// the §6 tests collapse to popcount kernels: t fits exactly iff
	// |t \ local| = 0 (AndNotCount), and d(local, t) = extra + |local Δ t|
	// restricted to the universe (XorCount) — links the program never
	// mentions contribute the same constant to every distance.
	linkID := make(map[typing.TypedLink]int)
	for _, t := range prog.Types {
		for _, l := range t.Links {
			if _, ok := linkID[l]; !ok {
				linkID[l] = len(linkID)
			}
		}
	}
	nT := len(prog.Types)
	typeSet := bitset.NewBlock(nT, len(linkID))
	typeLen := make([]int, nT)
	for ti, t := range prog.Types {
		for _, l := range t.Links {
			typeSet[ti].Set(linkID[l])
		}
		typeLen[ti] = typeSet[ti].Count()
	}

	// Classify objects in parallel chunks; each slot of assigned is written
	// only by its owner. Assignments are applied serially afterwards, in
	// object order, exactly as the serial loop would issue them. A warm
	// start skips clean positions inside the same chunk schedule, so the
	// work drops to the dirty set while the per-object decisions (and their
	// application order) stay untouched.
	objs := snap.Complex
	po := opts.pictureOpts()
	assigned := make([][]int, len(objs))
	classified := 0
	if w != nil {
		for _, d := range w.Dirty {
			if d {
				classified++
			}
		}
	} else {
		classified = len(objs)
	}
	err := par.DoErr(workers, len(objs), func(lo, hi int) error {
		local := bitset.New(len(linkID)) // per-chunk scratch
		for i := lo; i < hi; i++ {
			if opts.Check != nil && i%checkEvery == 0 {
				if err := opts.Check(); err != nil {
					return err
				}
			}
			if w != nil && !w.Dirty[i] {
				continue
			}
			o := objs[i]
			picture := typing.LocalLinksSnapOpts(snap, o, classesOf, po)
			local.Reset()
			extra := 0
			for _, l := range picture {
				if id, ok := linkID[l]; ok {
					local.Set(id)
				} else {
					extra++
				}
			}
			var out []int
			for ti := 0; ti < nT; ti++ {
				if typeLen[ti] == 0 {
					continue // the empty definition carries no evidence
				}
				if typeSet[ti].AndNotCount(local) == 0 {
					out = append(out, ti)
				}
			}
			if opts.KeepHome {
				out = append(out, homes[o]...)
			}
			if len(out) == 0 && !opts.NoClosest {
				// Closest type under the simple distance d (§6); ties go to
				// the smallest index, as in the serial scan.
				best, bestD := -1, math.MaxInt32
				for ti := 0; ti < nT; ti++ {
					d := extra + local.XorCount(typeSet[ti])
					if d < bestD {
						best, bestD = ti, d
					}
				}
				if best >= 0 && (opts.MaxDistance < 0 || bestD <= opts.MaxDistance) {
					out = append(out, best)
				}
			}
			assigned[i] = out
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for i, out := range assigned {
		if w != nil && !w.Dirty[i] {
			a.Reuse(objs[i], w.Assignment.Types[objs[i]])
			continue
		}
		for _, ti := range out {
			a.Assign(objs[i], ti)
		}
	}

	res := &Result{Assignment: a}
	res.Defect = defect.MeasureSnap(a, snap)
	res.Unclassified = len(a.Unclassified())
	return res, classified, nil
}

func containsAll(set typing.LinkSet, links []typing.TypedLink) bool {
	for _, l := range links {
		if !set[l] {
			return false
		}
	}
	return true
}

// TypeNewObject classifies an object that was not used to derive the typing
// (§6): it is assigned every type it satisfies completely under the current
// membership, and the closest type by d when none fits. The membership of
// the object's neighbours is taken from assign.
func TypeNewObject(assign *typing.Assignment, o graph.ObjectID, maxDistance int) []int {
	prog, db := assign.Program, assign.DB
	local := typing.LocalLinks(db, o, func(x graph.ObjectID) []int { return assign.Of(x) })
	localSet := typing.NewLinkSet(local)
	var out []int
	for ti, t := range prog.Types {
		if len(t.Links) > 0 && containsAll(localSet, t.Links) {
			out = append(out, ti)
		}
	}
	if len(out) > 0 {
		return out
	}
	best, bestD := -1, math.MaxInt32
	for ti, t := range prog.Types {
		d := cluster.ManhattanSlices(local, t.Links)
		if d < bestD {
			best, bestD = ti, d
		}
	}
	if best >= 0 && (maxDistance < 0 || bestD <= maxDistance) {
		return []int{best}
	}
	return nil
}
