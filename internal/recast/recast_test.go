package recast

import (
	"testing"

	"schemex/internal/graph"
	"schemex/internal/typing"
)

// testDB builds a small record database: three "person" records (two full,
// one missing the mail attribute) and one unrelated record.
func testDB() *graph.DB {
	db := graph.New()
	for _, n := range []string{"p1", "p2"} {
		db.LinkAtom(n, "name", n+".n", "x")
		db.LinkAtom(n, "mail", n+".m", "x")
	}
	db.LinkAtom("p3", "name", "p3.n", "x")
	db.LinkAtom("q", "qq", "q.q", "x")
	return db
}

func personProgram() *typing.Program {
	return typing.MustParse(`
		type person = ->name[0] & ->mail[0]
		type other  = ->qq[0]
	`)
}

func homesFor(db *graph.DB, m map[string]int) map[graph.ObjectID][]int {
	out := make(map[graph.ObjectID][]int)
	for name, h := range m {
		out[db.Lookup(name)] = []int{h}
	}
	return out
}

func TestRecastExactFit(t *testing.T) {
	db := testDB()
	p := personProgram()
	homes := homesFor(db, map[string]int{"p1": 0, "p2": 0, "p3": 0, "q": 1})
	res := Recast(db, p, homes, Options{KeepHome: false, MaxDistance: -1})
	a := res.Assignment
	if !a.Has(db.Lookup("p1"), 0) || !a.Has(db.Lookup("p2"), 0) {
		t.Fatal("full records should satisfy person exactly")
	}
	if !a.Has(db.Lookup("q"), 1) {
		t.Fatal("q should satisfy other exactly")
	}
	// p3 misses mail: no exact fit, assigned the closest type (person at
	// d=1 vs other at d=3).
	if !a.Has(db.Lookup("p3"), 0) {
		t.Fatalf("p3 should fall back to closest type person; got %v", a.Of(db.Lookup("p3")))
	}
	// Defect: p3's missing mail is a deficit of 1; no excess.
	if res.Defect.Deficit != 1 || res.Defect.Excess != 0 {
		t.Fatalf("defect = %+v, want deficit 1, excess 0", res.Defect)
	}
	if res.Unclassified != 0 {
		t.Fatalf("unclassified = %d, want 0", res.Unclassified)
	}
}

func TestRecastMaxDistanceCutoff(t *testing.T) {
	db := testDB()
	p := personProgram()
	homes := map[graph.ObjectID][]int{} // no home evidence
	res := Recast(db, p, homes, Options{KeepHome: false, MaxDistance: 0})
	// p3 fits nothing exactly and the cutoff forbids approximation.
	if got := res.Assignment.Of(db.Lookup("p3")); len(got) != 0 {
		t.Fatalf("p3 assigned %v despite cutoff", got)
	}
	if res.Unclassified != 1 {
		t.Fatalf("unclassified = %d, want 1", res.Unclassified)
	}
}

func TestRecastKeepHome(t *testing.T) {
	db := testDB()
	p := personProgram()
	// Give p3 home type "other" — absurd on purpose; KeepHome must keep it
	// and the missing qq link must surface as deficit.
	homes := homesFor(db, map[string]int{"p1": 0, "p2": 0, "p3": 1, "q": 1})
	res := Recast(db, p, homes, Options{KeepHome: true, MaxDistance: -1})
	if !res.Assignment.Has(db.Lookup("p3"), 1) {
		t.Fatal("KeepHome did not keep the home type")
	}
	if res.Defect.Deficit == 0 {
		t.Fatal("keeping an unsatisfied home type must cost deficit")
	}
}

func TestRecastNoClosest(t *testing.T) {
	db := testDB()
	p := personProgram()
	res := Recast(db, p, map[graph.ObjectID][]int{}, Options{KeepHome: false, NoClosest: true, MaxDistance: -1})
	if got := res.Assignment.Of(db.Lookup("p3")); len(got) != 0 {
		t.Fatalf("NoClosest still assigned %v", got)
	}
}

func TestRecastMultipleExactFits(t *testing.T) {
	// An object satisfying two types is assigned both (§6: "we assign the
	// new objects to all types that it satisfies completely").
	db := graph.New()
	db.LinkAtom("rich", "name", "r.n", "x")
	db.LinkAtom("rich", "mail", "r.m", "x")
	db.LinkAtom("rich", "fax", "r.f", "x")
	p := typing.MustParse(`
		type named  = ->name[0]
		type mailed = ->mail[0] & ->name[0]
	`)
	res := Recast(db, p, map[graph.ObjectID][]int{}, Options{KeepHome: false, MaxDistance: -1})
	got := res.Assignment.Of(db.Lookup("rich"))
	if len(got) != 2 {
		t.Fatalf("rich assigned %v, want both types", got)
	}
}

func TestRecastUsesHomeEvidenceForNeighbors(t *testing.T) {
	// Typed links with complex targets resolve through the neighbours' home
	// classes: person -> project[proj] only fits when the target's home is
	// proj.
	db := graph.New()
	db.Link("alice", "lore", "project")
	db.LinkAtom("alice", "name", "a.n", "x")
	db.LinkAtom("lore", "title", "l.t", "x")
	p := typing.MustParse(`
		type member = ->name[0] & ->project[proj]
		type proj   = <-project[member] & ->title[0]
	`)
	homes := homesFor(db, map[string]int{"alice": 0, "lore": 1})
	res := Recast(db, p, homes, Options{KeepHome: false, MaxDistance: -1})
	if !res.Assignment.Has(db.Lookup("alice"), 0) {
		t.Fatal("alice should satisfy member via lore's home class")
	}
	if !res.Assignment.Has(db.Lookup("lore"), 1) {
		t.Fatal("lore should satisfy proj via alice's home class")
	}
	if res.Defect.Total() != 0 {
		t.Fatalf("defect = %+v, want 0", res.Defect)
	}
}

func TestTypeNewObject(t *testing.T) {
	db := testDB()
	p := personProgram()
	homes := homesFor(db, map[string]int{"p1": 0, "p2": 0, "p3": 0, "q": 1})
	res := Recast(db, p, homes, Options{KeepHome: false, MaxDistance: -1})

	// A new full person arrives.
	db.LinkAtom("p4", "name", "p4.n", "x")
	db.LinkAtom("p4", "mail", "p4.m", "x")
	got := TypeNewObject(res.Assignment, db.Lookup("p4"), -1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("new full person typed as %v, want [person]", got)
	}
	// A new partial person: closest-type fallback.
	db.LinkAtom("p5", "name", "p5.n", "x")
	got = TypeNewObject(res.Assignment, db.Lookup("p5"), -1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("new partial person typed as %v, want [person]", got)
	}
	// With a tight cutoff it stays unclassified.
	db.LinkAtom("p6", "zzz", "p6.z", "x")
	got = TypeNewObject(res.Assignment, db.Lookup("p6"), 0)
	if len(got) != 0 {
		t.Fatalf("alien object typed as %v despite cutoff", got)
	}
}
