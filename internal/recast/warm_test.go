package recast

import (
	"reflect"
	"testing"

	"schemex/internal/compile"
)

// TestRecastWarmMatchesCold: a warm recast that reclassifies only the dirty
// positions and copies the rest from a parent assignment is bit-identical to
// the cold recast, for every dirty mask shape, at serial and parallel
// execution.
func TestRecastWarmMatchesCold(t *testing.T) {
	db := testDB()
	snap := compile.Compile(db)
	p := personProgram()
	homes := homesFor(db, map[string]int{"p1": 0, "p2": 0, "p3": 0, "q": 1})
	opts := Options{KeepHome: true, MaxDistance: -1}

	cold, err := RecastSnapErr(snap, p, homes, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := len(snap.Complex)
	masks := [][]bool{
		make([]bool, n), // all clean: pure row copy
		func() []bool { // one dirty object
			m := make([]bool, n)
			m[0] = true
			return m
		}(),
		func() []bool { // everything dirty: degenerates to a cold run
			m := make([]bool, n)
			for i := range m {
				m[i] = true
			}
			return m
		}(),
	}
	for mi, mask := range masks {
		for _, par := range []int{1, 0} {
			o := opts
			o.Parallelism = par
			warm, classified, err := RecastSnapWarm(snap, p, homes, o, &Warm{
				Assignment: cold.Assignment, Dirty: mask,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, d := range mask {
				if d {
					want++
				}
			}
			if classified != want {
				t.Fatalf("mask %d: classified %d objects, want %d", mi, classified, want)
			}
			if !reflect.DeepEqual(warm.Assignment.Types, cold.Assignment.Types) {
				t.Fatalf("mask %d (par=%d): warm assignment differs from cold", mi, par)
			}
			if warm.Defect != cold.Defect || warm.Unclassified != cold.Unclassified {
				t.Fatalf("mask %d (par=%d): warm defect %+v/%d != cold %+v/%d",
					mi, par, warm.Defect, warm.Unclassified, cold.Defect, cold.Unclassified)
			}
		}
	}
}

// TestRecastWarmCopiedRowsIndependent: copied rows are deep copies — mutating
// the warm result must not reach back into the parent assignment.
func TestRecastWarmCopiedRowsIndependent(t *testing.T) {
	db := testDB()
	snap := compile.Compile(db)
	p := personProgram()
	homes := homesFor(db, map[string]int{"p1": 0, "p2": 0, "p3": 0, "q": 1})
	opts := Options{KeepHome: true, MaxDistance: -1}
	cold, err := RecastSnapErr(snap, p, homes, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := RecastSnapWarm(snap, p, homes, opts, &Warm{
		Assignment: cold.Assignment, Dirty: make([]bool, len(snap.Complex)),
	})
	if err != nil {
		t.Fatal(err)
	}
	o := db.Lookup("p1")
	parentRow := append([]int(nil), cold.Assignment.Types[o]...)
	row := warm.Assignment.Types[o]
	if len(row) == 0 {
		t.Fatal("p1 has no copied row")
	}
	row[0] = 99
	if !reflect.DeepEqual(cold.Assignment.Types[o], parentRow) {
		t.Fatal("mutating a copied row leaked into the parent assignment")
	}
}
