package synth

import (
	"fmt"
	"math/rand"

	"schemex/internal/graph"
)

// Cartographic models the second motivating scenario of the paper's
// introduction: "cartographic data servers … typically have thousands of
// records with hundreds of properties, most of which are null for any given
// object." Records belong to a handful of latent feature kinds (road,
// river, city, …), each kind drawing its attributes from a wide property
// vocabulary: a few core properties are nearly always present, a long tail
// is mostly null. The result is extremely sparse bipartite data on which
// the perfect typing explodes combinatorially while the approximate typing
// recovers the latent kinds.
type CartographicOptions struct {
	// Records per feature kind (default 250).
	RecordsPerKind int
	// Kinds is the number of latent feature kinds (default 8).
	Kinds int
	// TailProperties is the size of each kind's long-tail vocabulary
	// (default 30; each tail property is present with probability TailProb).
	TailProperties int
	// TailProb is the presence probability of a tail property (default
	// 0.08).
	TailProb float64
	// Seed for deterministic generation.
	Seed int64
}

func (o CartographicOptions) withDefaults() CartographicOptions {
	if o.RecordsPerKind == 0 {
		o.RecordsPerKind = 250
	}
	if o.Kinds == 0 {
		o.Kinds = 8
	}
	if o.TailProperties == 0 {
		o.TailProperties = 30
	}
	if o.TailProb == 0 {
		o.TailProb = 0.08
	}
	return o
}

var cartographicKinds = []string{
	"road", "river", "city", "lake", "railway", "peak", "forest", "border",
	"bridge", "tunnel", "island", "harbor",
}

// Cartographic generates the dataset and the latent kind of every record.
func Cartographic(opts CartographicOptions) (*graph.DB, map[graph.ObjectID]int, error) {
	opts = opts.withDefaults()
	if opts.Kinds > len(cartographicKinds) {
		return nil, nil, fmt.Errorf("synth: at most %d cartographic kinds", len(cartographicKinds))
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	db := graph.New()
	kinds := make(map[graph.ObjectID]int)

	nAtom := 0
	attach := func(o graph.ObjectID, label string) error {
		nAtom++
		a := db.Intern(fmt.Sprintf("v%d", nAtom))
		if err := db.SetAtomic(a, graph.Value{Sort: graph.SortString, Text: label}); err != nil {
			return err
		}
		return db.AddLink(o, a, label)
	}

	for k := 0; k < opts.Kinds; k++ {
		kind := cartographicKinds[k]
		core := []string{"id", kind + "-class", "geometry"}
		for i := 0; i < opts.RecordsPerKind; i++ {
			o := db.Intern(fmt.Sprintf("%s#%d", kind, i))
			kinds[o] = k
			for _, label := range core {
				if err := attach(o, label); err != nil {
					return nil, nil, err
				}
			}
			// Frequent-but-optional attributes.
			if rng.Float64() < 0.7 {
				if err := attach(o, kind+"-name"); err != nil {
					return nil, nil, err
				}
			}
			// The long tail: mostly null.
			for t := 0; t < opts.TailProperties; t++ {
				if rng.Float64() < opts.TailProb {
					if err := attach(o, fmt.Sprintf("%s-prop%02d", kind, t)); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	return db, kinds, nil
}
