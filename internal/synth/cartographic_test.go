package synth

import (
	"testing"

	"schemex/internal/core"
)

func TestCartographicShape(t *testing.T) {
	db, kinds, err := Cartographic(CartographicOptions{RecordsPerKind: 60, Kinds: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if !db.IsBipartite() {
		t.Fatal("cartographic records must be bipartite")
	}
	complexCount := db.NumObjects() - db.NumAtomic()
	if complexCount != 300 {
		t.Fatalf("records = %d, want 300", complexCount)
	}
	if len(kinds) != 300 {
		t.Fatalf("kinds covers %d records", len(kinds))
	}
	// Sparsity: far fewer links per record than the property vocabulary.
	perRecord := float64(db.NumLinks()) / 300
	if perRecord > 10 {
		t.Fatalf("links per record = %.1f; the long tail should be mostly null", perRecord)
	}
}

// TestCartographicExtraction is the intro scenario end to end: the perfect
// typing explodes (the long tail makes records nearly unique) while the
// approximate typing at k = kinds recovers the latent feature kinds with
// pure clusters.
func TestCartographicExtraction(t *testing.T) {
	const nKinds = 5
	db, kinds, err := Cartographic(CartographicOptions{RecordsPerKind: 60, Kinds: nKinds, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Extract(db, core.Options{K: nKinds})
	if err != nil {
		t.Fatal(err)
	}
	records := db.NumObjects() - db.NumAtomic()
	if res.PerfectTypes < records/3 {
		t.Fatalf("perfect typing has only %d types for %d sparse records (expected explosion)",
			res.PerfectTypes, records)
	}
	if res.Program.Len() != nKinds {
		t.Fatalf("approximate typing has %d types, want %d", res.Program.Len(), nKinds)
	}
	// Cluster purity: no final type is home to records of two latent kinds.
	perCluster := make(map[int]map[int]bool)
	for o, hs := range res.Homes {
		k, ok := kinds[o]
		if !ok {
			continue
		}
		for _, h := range hs {
			if perCluster[h] == nil {
				perCluster[h] = make(map[int]bool)
			}
			perCluster[h][k] = true
		}
	}
	for h, ks := range perCluster {
		if len(ks) != 1 {
			t.Errorf("cluster %d mixes latent kinds %v", h, ks)
		}
	}
}

func TestCartographicErrors(t *testing.T) {
	if _, _, err := Cartographic(CartographicOptions{Kinds: 100}); err == nil {
		t.Fatal("too many kinds accepted")
	}
}
