package synth

import "schemex/internal/graph"

// Preset is one of the eight synthetic datasets of Table 1. The paper gives
// the datasets' summary statistics but not their full specifications, so the
// specs below are calibrated to land near the published object/link counts;
// what the experiment must reproduce is the published shape (perturbation
// blows up the number of perfect types while barely moving the optimal
// typing, and bipartite data yields far fewer perfect types than
// non-bipartite data).
type Preset struct {
	DBNo    int
	Spec    *Spec
	Perturb bool
	DeleteN int
	AddN    int
	Seed    int64 // perturbation seed
	// Paper values from Table 1, for side-by-side reporting.
	Paper PaperRow
}

// PaperRow records the published Table 1 row.
type PaperRow struct {
	Objects      int
	Links        int
	PerfectTypes int
	OptimalTypes int
	Defect       int
}

// Bipartite reports whether the preset's intended types are bipartite.
func (p Preset) Bipartite() bool { return p.Spec.Bipartite() }

// Overlap reports whether the preset's intended types share typed links.
func (p Preset) Overlap() bool { return p.Spec.Overlapping() }

// Intended returns the number of intended types.
func (p Preset) Intended() int { return p.Spec.Intended() }

// Build generates the dataset (with perturbation where the preset calls for
// it). Deterministic.
func (p Preset) Build() (*graph.DB, error) {
	db, err := p.Spec.Generate()
	if err != nil {
		return nil, err
	}
	if p.Perturb {
		db = Perturb(db, p.DeleteN, p.AddN, p.Seed)
	}
	return db, nil
}

// bipartiteNoOverlap is the 10-type specification behind DB1/DB2: each type
// has its own disjoint label set, all links point to atomic values.
func bipartiteNoOverlap() *Spec {
	mk := func(name string, labels []string, probs []float64) TypeSpec {
		t := TypeSpec{Name: name, Count: 100}
		for i, l := range labels {
			t.Links = append(t.Links, ProbLink{Label: l, Prob: probs[i]})
		}
		return t
	}
	names := []string{"emp", "dept", "proj", "item", "order", "cust", "supp", "inv", "ship", "acct"}
	var types []TypeSpec
	for i, n := range names {
		labels := []string{n + "-a", n + "-b", n + "-c", n + "-d"}
		probs := []float64{1.0, 1.0, 0.9, 0.0}
		// A few types carry a rare fourth attribute, creating irregularity.
		if i%3 == 0 {
			probs[3] = 0.1
		}
		types = append(types, mk(n, labels, probs))
	}
	return &Spec{Name: "bipartite-noov", Types: types, AtomicPool: 13, Seed: 101}
}

// bipartiteOverlap is the 6-type specification behind DB3/DB4: all types
// share the "name" and "id" attributes; neighbours in the type list share
// one further attribute.
func bipartiteOverlap() *Spec {
	names := []string{"person", "student", "staff", "course", "room", "book"}
	shared := []string{"name", "id"}
	var types []TypeSpec
	for i, n := range names {
		t := TypeSpec{Name: n, Count: 100}
		for _, s := range shared {
			t.Links = append(t.Links, ProbLink{Label: s, Prob: 1.0})
		}
		// Overlapping attribute with the next type in the list.
		t.Links = append(t.Links, ProbLink{Label: "grp" + string(rune('a'+i%3)), Prob: 0.95})
		// Own attribute.
		t.Links = append(t.Links, ProbLink{Label: n + "-own", Prob: 0.9})
		// Rare own attribute.
		t.Links = append(t.Links, ProbLink{Label: n + "-opt", Prob: 0.2})
		types = append(types, t)
	}
	return &Spec{Name: "bipartite-ov", Types: types, AtomicPool: 18, Seed: 103}
}

// graphNoOverlap is the 5-type specification behind DB5/DB6: links between
// complex objects, disjoint (label, target) pairs per type.
func graphNoOverlap() *Spec {
	return &Spec{
		Name: "graph-noov",
		Types: []TypeSpec{
			{Name: "group", Count: 30, Links: []ProbLink{
				{Label: "gname", Prob: 1.0},
				{Label: "leader", Target: "person", Prob: 0.9},
			}},
			{Name: "person", Count: 110, Links: []ProbLink{
				{Label: "pname", Prob: 1.0},
				{Label: "in-group", Target: "group", Prob: 0.9},
				{Label: "authored", Target: "paper", Prob: 0.7},
			}},
			{Name: "paper", Count: 110, Links: []ProbLink{
				{Label: "title", Prob: 1.0},
				{Label: "venue", Target: "conf", Prob: 0.85},
			}},
			{Name: "conf", Count: 40, Links: []ProbLink{
				{Label: "cname", Prob: 1.0},
				{Label: "series", Prob: 0.6},
			}},
			{Name: "grant", Count: 60, Links: []ProbLink{
				{Label: "amount", Prob: 1.0},
				{Label: "funds", Target: "group", Prob: 0.8},
			}},
		},
		AtomicPool: 10,
		Seed:       105,
	}
}

// graphOverlap is the 5-type specification behind DB7/DB8: types share
// typed links (every type has ->name[0]; advisors and authors both point at
// person).
func graphOverlap() *Spec {
	return &Spec{
		Name: "graph-ov",
		Types: []TypeSpec{
			{Name: "person", Count: 110, Links: []ProbLink{
				{Label: "name", Prob: 1.0},
				{Label: "works-on", Target: "project", Prob: 0.8},
				{Label: "wrote", Target: "doc", Prob: 0.5},
			}},
			{Name: "student", Count: 70, Links: []ProbLink{
				{Label: "name", Prob: 1.0},
				{Label: "works-on", Target: "project", Prob: 0.7},
				{Label: "advisor", Target: "person", Prob: 0.9},
			}},
			{Name: "project", Count: 60, Links: []ProbLink{
				{Label: "name", Prob: 1.0},
				{Label: "budget", Prob: 0.7},
			}},
			{Name: "doc", Count: 80, Links: []ProbLink{
				{Label: "name", Prob: 1.0},
				{Label: "about", Target: "project", Prob: 0.6},
			}},
			{Name: "lab", Count: 30, Links: []ProbLink{
				{Label: "name", Prob: 1.0},
				{Label: "hosts", Target: "project", Prob: 0.9},
				{Label: "head", Target: "person", Prob: 0.8},
			}},
		},
		AtomicPool: 25,
		Seed:       107,
	}
}

// Presets returns the eight Table 1 datasets in order.
func Presets() []Preset {
	return []Preset{
		{DBNo: 1, Spec: bipartiteNoOverlap(),
			Paper: PaperRow{1500, 2909, 30, 10, 225}},
		{DBNo: 2, Spec: bipartiteNoOverlap(), Perturb: true, DeleteN: 25, AddN: 74, Seed: 202,
			Paper: PaperRow{1500, 2958, 52, 10, 307}},
		{DBNo: 3, Spec: bipartiteOverlap(),
			Paper: PaperRow{950, 2409, 19, 6, 239}},
		{DBNo: 4, Spec: bipartiteOverlap(), Perturb: true, DeleteN: 20, AddN: 53, Seed: 204,
			Paper: PaperRow{950, 2442, 35, 6, 283}},
		{DBNo: 5, Spec: graphNoOverlap(),
			Paper: PaperRow{400, 726, 317, 5, 181}},
		{DBNo: 6, Spec: graphNoOverlap(), Perturb: true, DeleteN: 10, AddN: 33, Seed: 206,
			Paper: PaperRow{400, 749, 341, 5, 310}},
		{DBNo: 7, Spec: graphOverlap(),
			Paper: PaperRow{400, 775, 375, 5, 291}},
		{DBNo: 8, Spec: graphOverlap(), Perturb: true, DeleteN: 10, AddN: 30, Seed: 208,
			Paper: PaperRow{400, 795, 381, 5, 333}},
	}
}
