package synth

import (
	"fmt"
	"math/rand"

	"schemex/internal/graph"
)

// This file implements a shape-quotient generator: data is produced from an
// explicit small quotient graph (the "shapes"), so the minimal perfect
// typing of the generated database is, by construction, (at most) one type
// per shape. The trick is that typed links are sets — multiplicity never
// splits a class, only the presence or absence of a (label, neighbour-class)
// kind does — so the generator guarantees coverage: every object carries at
// least one instance of each link kind its shape declares, in both
// directions, and any extra random links only repeat existing kinds.
//
// The DBG reconstruction (internal/dbg) and several tests build on this.

// Shape describes one class of objects in the quotient.
type Shape struct {
	// Name is the unique shape identifier.
	Name string
	// Role is the semantic role (several shapes usually share one role);
	// used as ground truth when scoring clustering.
	Role string
	// Count is the number of objects to instantiate. It must be 0 for
	// shapes used as owned children (their population is derived from their
	// parents).
	Count int
	// Atoms lists atomic attribute labels; each instance gets one fresh
	// atomic child per label.
	Atoms []string
	// Links lists shared links to other shapes (coverage in both
	// directions is guaranteed).
	Links []ShapeLink
	// Children lists owned sub-objects (each instance owns its own child
	// per ChildSpec, e.g. a person's birthday).
	Children []ChildSpec
}

// ShapeLink is a shared link kind between two shapes.
type ShapeLink struct {
	Label string
	// Target is the target shape name.
	Target string
	// Reciprocal, when nonempty, adds a reverse edge with this label for
	// every emitted link (e.g. project-member as the reciprocal of project).
	Reciprocal string
	// Extra adds this many random additional links of the same kind beyond
	// the coverage minimum.
	Extra int
}

// ChildSpec is an owned sub-object: each parent instance gets Repeat fresh
// instances of the child shape, linked under Label.
type ChildSpec struct {
	Label string
	Shape string
	// Repeat is the number of children per parent (default 1).
	Repeat int
}

// ShapeSpec is a full shape-quotient specification.
type ShapeSpec struct {
	Name   string
	Shapes []Shape
	Seed   int64
}

// shapeIndex returns the shape with the given name.
func (s *ShapeSpec) shapeIndex() (map[string]*Shape, error) {
	idx := make(map[string]*Shape, len(s.Shapes))
	for i := range s.Shapes {
		sh := &s.Shapes[i]
		if sh.Name == "" {
			return nil, fmt.Errorf("synth: shape %d has no name", i)
		}
		if _, dup := idx[sh.Name]; dup {
			return nil, fmt.Errorf("synth: duplicate shape name %q", sh.Name)
		}
		idx[sh.Name] = sh
	}
	return idx, nil
}

// Validate checks referential integrity of the spec.
func (s *ShapeSpec) Validate() error {
	idx, err := s.shapeIndex()
	if err != nil {
		return err
	}
	child := make(map[string]bool)
	for _, sh := range s.Shapes {
		for _, c := range sh.Children {
			cs, ok := idx[c.Shape]
			if !ok {
				return fmt.Errorf("synth: shape %q owns unknown child shape %q", sh.Name, c.Shape)
			}
			if cs.Count != 0 {
				return fmt.Errorf("synth: child shape %q must have Count 0 (population is derived)", c.Shape)
			}
			if len(cs.Children) > 0 {
				return fmt.Errorf("synth: child shape %q may not own children of its own", c.Shape)
			}
			child[c.Shape] = true
		}
		for _, l := range sh.Links {
			if _, ok := idx[l.Target]; !ok {
				return fmt.Errorf("synth: shape %q links to unknown shape %q", sh.Name, l.Target)
			}
		}
	}
	for _, sh := range s.Shapes {
		if sh.Count == 0 && !child[sh.Name] {
			return fmt.Errorf("synth: shape %q has Count 0 but is not owned by any parent", sh.Name)
		}
		if sh.Count > 0 && child[sh.Name] {
			return fmt.Errorf("synth: shape %q is owned as a child but has Count %d", sh.Name, sh.Count)
		}
	}
	return nil
}

// GenerateShapes instantiates the spec. It returns the database and the
// ground-truth role of every complex object.
func (s *ShapeSpec) GenerateShapes() (*graph.DB, map[graph.ObjectID]string, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	idx, _ := s.shapeIndex()
	rng := rand.New(rand.NewSource(s.Seed))
	db := graph.New()
	roles := make(map[graph.ObjectID]string)
	instances := make(map[string][]graph.ObjectID)
	nAtoms := 0

	newObj := func(sh *Shape, i int) graph.ObjectID {
		id := db.Intern(fmt.Sprintf("%s#%d", sh.Name, i))
		role := sh.Role
		if role == "" {
			role = sh.Name
		}
		roles[id] = role
		instances[sh.Name] = append(instances[sh.Name], id)
		return id
	}
	addAtoms := func(o graph.ObjectID, labels []string) error {
		for _, label := range labels {
			nAtoms++
			a := db.Intern(fmt.Sprintf("v:%s:%d", label, nAtoms))
			if err := db.SetAtomic(a, graph.Value{Sort: graph.SortString, Text: fmt.Sprintf("%s-%d", label, nAtoms)}); err != nil {
				return err
			}
			if err := db.AddLink(o, a, label); err != nil {
				return err
			}
		}
		return nil
	}

	// Instantiate top-level shapes, then owned children per parent.
	for i := range s.Shapes {
		sh := &s.Shapes[i]
		for k := 0; k < sh.Count; k++ {
			o := newObj(sh, k)
			if err := addAtoms(o, sh.Atoms); err != nil {
				return nil, nil, err
			}
		}
	}
	for i := range s.Shapes {
		sh := &s.Shapes[i]
		if len(sh.Children) == 0 {
			continue
		}
		for _, parent := range instances[sh.Name] {
			for _, c := range sh.Children {
				cs := idx[c.Shape]
				repeat := c.Repeat
				if repeat <= 0 {
					repeat = 1
				}
				for r := 0; r < repeat; r++ {
					child := newObj(cs, len(instances[cs.Name]))
					if err := addAtoms(child, cs.Atoms); err != nil {
						return nil, nil, err
					}
					if err := db.AddLink(parent, child, c.Label); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}

	// Shared links with two-sided coverage: the i'th emission pairs source
	// i mod |S| with target i mod |T|, so every source carries the outgoing
	// kind and every target the incoming kind.
	emit := func(from, to graph.ObjectID, l ShapeLink) error {
		if from == to {
			return nil
		}
		if err := db.AddLink(from, to, l.Label); err != nil {
			return err
		}
		if l.Reciprocal != "" {
			if err := db.AddLink(to, from, l.Reciprocal); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range s.Shapes {
		sh := &s.Shapes[i]
		srcs := instances[sh.Name]
		if len(srcs) == 0 {
			continue
		}
		for _, l := range sh.Links {
			tgts := instances[l.Target]
			if len(tgts) == 0 {
				return nil, nil, fmt.Errorf("synth: shape %q links to shape %q which has no instances", sh.Name, l.Target)
			}
			m := len(srcs)
			if len(tgts) > m {
				m = len(tgts)
			}
			// Random rotation keeps the pairing from being identical across
			// link kinds while preserving coverage.
			off := rng.Intn(len(tgts))
			for k := 0; k < m; k++ {
				if err := emit(srcs[k%len(srcs)], tgts[(k+off)%len(tgts)], l); err != nil {
					return nil, nil, err
				}
			}
			for e := 0; e < l.Extra; e++ {
				if err := emit(srcs[rng.Intn(len(srcs))], tgts[rng.Intn(len(tgts))], l); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return db, roles, nil
}

// Coverage check caveat: when a link's source and target shapes coincide and
// the shape has a single instance, the self-link is skipped and the kind is
// simply absent; specs should not rely on self-linking singletons.
