package synth

import (
	"testing"

	"schemex/internal/graph"
)

func shapeSpecFixture() *ShapeSpec {
	return &ShapeSpec{
		Name: "fixture",
		Seed: 5,
		Shapes: []Shape{
			{Name: "emp", Role: "employee", Count: 5, Atoms: []string{"name", "salary"},
				Links: []ShapeLink{{Label: "works-in", Target: "dept", Reciprocal: "has-member", Extra: 3}}},
			{Name: "boss", Role: "employee", Count: 2, Atoms: []string{"name", "salary", "bonus"},
				Links:    []ShapeLink{{Label: "runs", Target: "dept"}},
				Children: []ChildSpec{{Label: "review", Shape: "rev", Repeat: 2}}},
			{Name: "dept", Role: "department", Count: 3, Atoms: []string{"dname"}},
			{Name: "rev", Role: "review", Atoms: []string{"year", "score"}},
		},
	}
}

func TestShapeSpecValidate(t *testing.T) {
	if err := shapeSpecFixture().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := shapeSpecFixture()
	bad.Shapes[0].Links[0].Target = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("unknown link target accepted")
	}
	bad2 := shapeSpecFixture()
	bad2.Shapes[3].Count = 7
	if err := bad2.Validate(); err == nil {
		t.Error("owned child with nonzero Count accepted")
	}
	bad3 := shapeSpecFixture()
	bad3.Shapes[3].Children = []ChildSpec{{Label: "sub", Shape: "dept"}}
	if err := bad3.Validate(); err == nil {
		t.Error("child owning children accepted")
	}
	bad4 := shapeSpecFixture()
	bad4.Shapes = append(bad4.Shapes, Shape{Name: "orphan"})
	if err := bad4.Validate(); err == nil {
		t.Error("count-0 non-child shape accepted")
	}
	bad5 := shapeSpecFixture()
	bad5.Shapes = append(bad5.Shapes, Shape{Name: "emp", Count: 1})
	if err := bad5.Validate(); err == nil {
		t.Error("duplicate shape name accepted")
	}
}

func TestGenerateShapesPopulations(t *testing.T) {
	db, roles, err := shapeSpecFixture().GenerateShapes()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, role := range roles {
		count[role]++
	}
	if count["employee"] != 7 || count["department"] != 3 {
		t.Fatalf("role counts = %v", count)
	}
	// Each boss owns 2 reviews.
	if count["review"] != 4 {
		t.Fatalf("reviews = %d, want 4", count["review"])
	}
}

// TestCoverageBothSides is the generator's key guarantee: every source
// object of a shape carries each declared outgoing kind, and every target
// object carries the corresponding incoming kind.
func TestCoverageBothSides(t *testing.T) {
	db, _, err := shapeSpecFixture().GenerateShapes()
	if err != nil {
		t.Fatal(err)
	}
	hasOut := func(o graph.ObjectID, label string) bool {
		for _, e := range db.Out(o) {
			if e.Label == label {
				return true
			}
		}
		return false
	}
	hasIn := func(o graph.ObjectID, label string) bool {
		for _, e := range db.In(o) {
			if e.Label == label {
				return true
			}
		}
		return false
	}
	for i := 0; i < 5; i++ {
		o := db.Lookup("emp#" + string(rune('0'+i)))
		if !hasOut(o, "works-in") {
			t.Errorf("emp#%d missing works-in", i)
		}
		if !hasIn(o, "has-member") {
			t.Errorf("emp#%d missing reciprocal has-member", i)
		}
	}
	for i := 0; i < 3; i++ {
		d := db.Lookup("dept#" + string(rune('0'+i)))
		if !hasIn(d, "works-in") {
			t.Errorf("dept#%d missing incoming works-in (coverage)", i)
		}
		if !hasOut(d, "has-member") {
			t.Errorf("dept#%d missing outgoing has-member (reciprocal coverage)", i)
		}
		if !hasIn(d, "runs") {
			t.Errorf("dept#%d missing incoming runs", i)
		}
	}
}

func TestGenerateShapesDeterministic(t *testing.T) {
	a, _, err := shapeSpecFixture().GenerateShapes()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := shapeSpecFixture().GenerateShapes()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() || a.NumObjects() != b.NumObjects() {
		t.Fatal("shape generation not deterministic")
	}
}
