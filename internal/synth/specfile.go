package synth

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec files let users drive the §7.1 generator from the command line
// (schemex gen -spec file.json). The JSON encoding mirrors the Spec struct:
//
//	{
//	  "name": "mydata",
//	  "seed": 42,
//	  "atomicPool": 10,
//	  "types": [
//	    {"name": "person", "count": 100, "links": [
//	      {"label": "name", "prob": 1.0},
//	      {"label": "friend", "target": "person", "prob": 0.4}
//	    ]}
//	  ]
//	}

type specJSON struct {
	Name       string         `json:"name"`
	Seed       int64          `json:"seed"`
	AtomicPool int            `json:"atomicPool"`
	Types      []typeSpecJSON `json:"types"`
}

type typeSpecJSON struct {
	Name  string         `json:"name"`
	Count int            `json:"count"`
	Links []probLinkJSON `json:"links"`
}

type probLinkJSON struct {
	Label  string  `json:"label"`
	Target string  `json:"target,omitempty"`
	Prob   float64 `json:"prob"`
}

// ReadSpec parses a JSON spec file.
func ReadSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("synth: spec: %v", err)
	}
	s := &Spec{Name: sj.Name, Seed: sj.Seed, AtomicPool: sj.AtomicPool}
	for _, tj := range sj.Types {
		t := TypeSpec{Name: tj.Name, Count: tj.Count}
		if t.Name == "" {
			return nil, fmt.Errorf("synth: spec: type with no name")
		}
		for _, lj := range tj.Links {
			if lj.Label == "" {
				return nil, fmt.Errorf("synth: spec: type %q has a link with no label", tj.Name)
			}
			t.Links = append(t.Links, ProbLink{Label: lj.Label, Target: lj.Target, Prob: lj.Prob})
		}
		s.Types = append(s.Types, t)
	}
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("synth: spec: no types")
	}
	return s, nil
}

// WriteSpec serializes a spec as JSON (indented, deterministic).
func WriteSpec(w io.Writer, s *Spec) error {
	sj := specJSON{Name: s.Name, Seed: s.Seed, AtomicPool: s.AtomicPool}
	for _, t := range s.Types {
		tj := typeSpecJSON{Name: t.Name, Count: t.Count}
		for _, l := range t.Links {
			tj.Links = append(tj.Links, probLinkJSON{Label: l.Label, Target: l.Target, Prob: l.Prob})
		}
		sj.Types = append(sj.Types, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sj)
}
