package synth

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecRoundtrip(t *testing.T) {
	s := simpleSpec()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.Seed != s.Seed || back.AtomicPool != s.AtomicPool {
		t.Fatalf("header changed: %+v vs %+v", back, s)
	}
	if len(back.Types) != len(s.Types) {
		t.Fatalf("types = %d, want %d", len(back.Types), len(s.Types))
	}
	for i, ty := range back.Types {
		if ty.Name != s.Types[i].Name || ty.Count != s.Types[i].Count || len(ty.Links) != len(s.Types[i].Links) {
			t.Fatalf("type %d changed: %+v vs %+v", i, ty, s.Types[i])
		}
	}
	// Generation from the round-tripped spec is identical.
	a, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumObjects() != b.NumObjects() || a.NumLinks() != b.NumLinks() {
		t.Fatal("round-tripped spec generates different data")
	}
}

func TestReadSpecErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"bad json", `{`},
		{"unknown field", `{"types": [], "frobnitz": 1}`},
		{"no types", `{"name": "x", "types": []}`},
		{"unnamed type", `{"types": [{"count": 1}]}`},
		{"unlabeled link", `{"types": [{"name": "t", "count": 1, "links": [{"prob": 0.5}]}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadSpec(strings.NewReader(c.src)); err == nil {
				t.Fatalf("ReadSpec(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestReadSpecValidatedAtGenerate(t *testing.T) {
	// Structural errors the reader cannot see (bad probability, dangling
	// target) surface at Generate.
	s, err := ReadSpec(strings.NewReader(
		`{"types": [{"name": "t", "count": 1, "links": [{"label": "a", "target": "nope", "prob": 0.5}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate(); err == nil {
		t.Fatal("dangling target accepted at generation")
	}
}
